// Diff-alignment properties, swept across the chaos matrix's seeds:
//
//  1. Self-diff is always empty — any log, clean or faulted, crashed or
//     salvaged, diffed against itself must come back Identical.
//  2. Replay determinism closes the loop with the diff: two runs of the
//     same program under the same seeded fault plan (where the workload
//     is per-rank deterministic — lab2 and collisions; thumbnail routes
//     through AnyOf selects and is schedule-dependent) must diff clean.
//
// Property 2 is what makes `pilot-analyze -diff` trustworthy: a
// divergence it reports is a real behavioural difference, never replay
// noise.
package repro_test

import (
	"fmt"
	"io"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/analyze"
	"repro/internal/collisions"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/thumbnail"
)

// corpusCollisions runs the collisions workload (fixed assignment, so
// per-rank deterministic) with MPE logging and an optional fault spec.
func corpusCollisions(t *testing.T, name, clog, spec string) string {
	t.Helper()
	var plan *mpi.FaultPlan
	if spec != "" {
		p, err := mpi.ParseFaultPlan(spec)
		if err != nil {
			t.Fatalf("%s: bad spec %q: %v", name, spec, err)
		}
		plan = p
	}
	cfg := collisions.Config{Workers: 3, Rows: 1500, Seed: 3, QueryCost: 5}
	cfg.Core = core.Config{
		Services:     "j",
		CheckLevel:   3,
		ArrowSpread:  -1,
		JumpshotPath: clog,
		NativePath:   clog + ".log",
		Stderr:       io.Discard,
		Faults:       plan,
	}
	runErr := withDeadline(t, name, 90*time.Second, func() error {
		_, err := collisions.RunFixed(cfg)
		return err
	})
	return classify(runErr)
}

// mustSelfDiffEmpty asserts property 1 for one log.
func mustSelfDiffEmpty(t *testing.T, name, clog string) {
	t.Helper()
	rep, err := analyze.DiffFiles(clog, clog, analyze.DiffOptions{})
	if err != nil {
		t.Fatalf("%s: self-diff: %v", name, err)
	}
	if !rep.Identical || len(rep.Divergences) != 0 {
		t.Fatalf("%s: self-diff not empty:\n%s", name, rep.Format())
	}
}

// mustReplayDiffClean asserts property 2 for a pair of same-seed runs.
func mustReplayDiffClean(t *testing.T, name, a, b string) {
	t.Helper()
	rep, err := analyze.DiffFiles(a, b, analyze.DiffOptions{})
	if err != nil {
		t.Fatalf("%s: diff: %v", name, err)
	}
	if !rep.Identical {
		t.Fatalf("%s: identically-seeded replays diverged (diff is reporting replay noise):\n%s",
			name, rep.Format())
	}
}

// TestAnalyzeDiffPropLab2 sweeps the lab2 chaos matrix's non-crash seeds
// (the same lab2Spec plans as TestChaosLab2Sweep, seeds 1..20): each
// seed runs twice with MPE logging, the two logs must diff clean, and
// each log must self-diff empty.
func TestAnalyzeDiffPropLab2(t *testing.T) {
	dir := t.TempDir()
	for seed := 1; seed <= 20; seed++ {
		seed := seed
		spec, crash := lab2Spec(seed)
		if crash {
			continue // crash seeds replay per-rank only; covered by the corpus diff tests
		}
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			name := fmt.Sprintf("diff-prop lab2 seed %d", seed)
			a := filepath.Join(dir, fmt.Sprintf("lab2-%d-a.clog2", seed))
			b := filepath.Join(dir, fmt.Sprintf("lab2-%d-b.clog2", seed))
			if outcome := corpusLab2(t, name, a, spec, "j", false); outcome != "clean" {
				t.Fatalf("%s: run A ended %q", name, outcome)
			}
			if outcome := corpusLab2(t, name+" (replay)", b, spec, "j", false); outcome != "clean" {
				t.Fatalf("%s: run B ended %q", name, outcome)
			}
			mustSelfDiffEmpty(t, name, a)
			mustReplayDiffClean(t, name, a, b)
		})
	}
}

// TestAnalyzeDiffPropCollisions sweeps the collisions chaos matrix's
// non-crash seeds (odd seeds of TestChaosCollisions' 200..205 range).
func TestAnalyzeDiffPropCollisions(t *testing.T) {
	dir := t.TempDir()
	for _, seed := range []int{201, 203, 205} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			spec := fmt.Sprintf("seed=%d;delay:prob=0.15,dur=200us;rendezvous:prob=0.15;stall:rank=1,op=2,dur=2ms", seed)
			name := fmt.Sprintf("diff-prop collisions seed %d", seed)
			a := filepath.Join(dir, fmt.Sprintf("col-%d-a.clog2", seed))
			b := filepath.Join(dir, fmt.Sprintf("col-%d-b.clog2", seed))
			if outcome := corpusCollisions(t, name, a, spec); outcome != "clean" {
				t.Fatalf("%s: run A ended %q", name, outcome)
			}
			if outcome := corpusCollisions(t, name+" (replay)", b, spec); outcome != "clean" {
				t.Fatalf("%s: run B ended %q", name, outcome)
			}
			mustSelfDiffEmpty(t, name, a)
			mustReplayDiffClean(t, name, a, b)
		})
	}
}

// TestAnalyzeDiffPropThumbnail holds the self-diff property on the
// schedule-dependent workload (AnyOf selects make cross-run op
// sequences legitimately differ, so only property 1 applies there).
func TestAnalyzeDiffPropThumbnail(t *testing.T) {
	dir := t.TempDir()
	for _, seed := range []int{101, 103, 105} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			spec := fmt.Sprintf("seed=%d;delay:prob=0.1,dur=200us;stall:rank=2,op=3,dur=2ms", seed)
			name := fmt.Sprintf("diff-prop thumbnail seed %d", seed)
			clog := filepath.Join(dir, fmt.Sprintf("thumb-%d.clog2", seed))
			cfg := thumbnail.Config{
				Workers: 3, NumImages: 12, ImageW: 64, ImageH: 48, Seed: 3,
			}
			plan, err := mpi.ParseFaultPlan(spec)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Core = core.Config{
				Services:     "j",
				CheckLevel:   3,
				ArrowSpread:  -1,
				JumpshotPath: clog,
				NativePath:   clog + ".log",
				Stderr:       io.Discard,
				Faults:       plan,
			}
			runErr := withDeadline(t, name, 90*time.Second, func() error {
				_, err := thumbnail.Run(cfg)
				return err
			})
			if outcome := classify(runErr); outcome != "clean" {
				t.Fatalf("%s: run ended %q", name, outcome)
			}
			mustSelfDiffEmpty(t, name, clog)
		})
	}
}
