// Multi-process transport tests at the Pilot level: the same programs the
// in-process suite runs, with every rank spawned as its own OS process
// over the socket transport. The children are this test binary re-invoked
// on a child test function; each child joins the world through the
// PILOT_MPI_* environment, runs its one rank inside PI_StartAll, and
// exits. Code after PI_StartAll only ever executes in the rank-0 parent,
// exactly as with a real mpirun.
package repro_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/clog2"
	"repro/internal/core"
	"repro/internal/lab2"
	"repro/internal/mpi"
	"repro/internal/slog2"
	"repro/vis"
)

const multiprocPrefixEnv = "PILOT_MULTIPROC_PREFIX"

// lab2SocketConfig is the one lab2 configuration both halves of the
// end-to-end test build, so the spawned ranks wire up the identical
// program the parent orchestrates.
func lab2SocketConfig(prefix string) lab2.Config {
	return lab2.Config{
		W:    3,
		NUM:  3000,
		Seed: 42,
		Core: core.Config{
			Services:     string(core.SvcJumpshot),
			JumpshotPath: prefix,
			Transport:    mpi.TransportSocket,
			SpawnCommand: []string{os.Args[0], "-test.run=^TestMultiprocLab2Child$"},
			SpawnEnv:     []string{multiprocPrefixEnv + "=" + prefix},
		},
	}
}

// TestMultiprocLab2Child hosts one spawned lab2 rank. Inert under a
// normal `go test`; when launched with the join environment it enters
// lab2.Run, which exits the process from inside PI_StartAll.
func TestMultiprocLab2Child(t *testing.T) {
	if !mpi.Spawned() {
		t.Skip("spawned rank body; run via TestMultiprocLab2Socket")
	}
	_, err := lab2.Run(lab2SocketConfig(os.Getenv(multiprocPrefixEnv)))
	// Only reachable if the join or configuration failed — a successful
	// rank never returns from PI_StartAll.
	t.Fatalf("spawned lab2 rank returned: %v", err)
}

// TestMultiprocLab2Socket runs the paper's lab2 exercise with its workers
// as separate OS processes and checks the full pipeline end to end: the
// grand total is right, the MPE merge collected every rank's CLOG-2
// stream over the wire, and the merged log converts to a writable SLOG-2.
func TestMultiprocLab2Socket(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns rank processes; skipped in -short")
	}
	prefix := filepath.Join(t.TempDir(), "lab2.clog2")
	cfg := lab2SocketConfig(prefix)
	res, err := lab2.Run(cfg)
	if err != nil {
		t.Fatalf("lab2 over sockets: %v", err)
	}
	if res.Total != res.Expected {
		t.Fatalf("grand total %d != expected %d", res.Total, res.Expected)
	}
	if len(res.Subtotals) != cfg.W {
		t.Fatalf("got %d subtotals, want %d", len(res.Subtotals), cfg.W)
	}

	f, err := os.Open(prefix)
	if err != nil {
		t.Fatalf("merged CLOG-2 missing: %v", err)
	}
	cf, err := clog2.Read(f)
	f.Close()
	if err != nil {
		t.Fatalf("merged CLOG-2 does not parse: %v", err)
	}
	// Every rank's stream crossed the wire into the merge.
	ranksSeen := map[int32]bool{}
	for _, b := range cf.Blocks {
		if len(b.Records) > 0 {
			ranksSeen[b.Rank] = true
		}
	}
	for rank := 0; rank <= cfg.W; rank++ {
		if !ranksSeen[int32(rank)] {
			t.Errorf("merged log has no records from rank %d", rank)
		}
	}

	sf, _, err := vis.ConvertFile(prefix, vis.ConvertOptions{})
	if err != nil {
		t.Fatalf("merged log does not convert: %v", err)
	}
	var out bytes.Buffer
	if err := slog2.Write(&out, sf); err != nil {
		t.Fatalf("converted SLOG-2 does not serialize: %v", err)
	}
	if out.Len() == 0 {
		t.Fatal("empty SLOG-2")
	}
}

const chaosRankWorkers = 2

// multiprocChaosProgram is a deliberately long-running master/worker
// program under RobustLog: each worker streams row numbers to PI_MAIN
// forever, so the parent can kill one worker's process mid-flight.
// afterStart runs only in the rank-0 parent, once the runtime handle can
// hand out child PIDs. It returns PI_StopMain's verdict.
func multiprocChaosProgram(prefix string, afterStart func(r *core.Runtime)) error {
	cfg := core.Config{
		NumProcs:     chaosRankWorkers + 1,
		Services:     string(core.SvcJumpshot),
		RobustLog:    true,
		JumpshotPath: prefix,
		Transport:    mpi.TransportSocket,
		SpawnCommand: []string{os.Args[0], "-test.run=^TestMultiprocChaosChild$"},
		SpawnEnv:     []string{multiprocPrefixEnv + "=" + prefix},
	}
	r, err := core.NewRuntime(cfg)
	if err != nil {
		return err
	}
	results := make([]*core.Channel, chaosRankWorkers)
	worker := func(self *core.Self, index int, arg any) int {
		for i := 0; ; i++ {
			if err := results[index].Write("%d", i); err != nil {
				return 1
			}
			time.Sleep(200 * time.Microsecond)
		}
	}
	for i := 0; i < chaosRankWorkers; i++ {
		p, err := r.CreateProcess(worker, i, nil)
		if err != nil {
			return err
		}
		if results[i], err = r.CreateChannel(p, r.MainProc()); err != nil {
			return err
		}
	}
	if _, err := r.StartAll(); err != nil {
		return err
	}
	// Parent only from here on: spawned ranks exited inside StartAll.
	if afterStart != nil {
		afterStart(r)
	}
	for i := 0; ; i++ {
		var v int
		if err := results[i%chaosRankWorkers].Read("%d", &v); err != nil {
			break // the kill landed; StopMain explains
		}
	}
	return r.StopMain(0)
}

// TestMultiprocChaosChild hosts one spawned chaos worker rank.
func TestMultiprocChaosChild(t *testing.T) {
	if !mpi.Spawned() {
		t.Skip("spawned rank body; run via TestMultiprocKillRankSalvage")
	}
	err := multiprocChaosProgram(os.Getenv(multiprocPrefixEnv), nil)
	t.Fatalf("spawned chaos rank returned: %v", err)
}

// TestMultiprocKillRankSalvage SIGKILLs one worker's OS process mid-run.
// The hub must diagnose the vanished rank as a crash (FaultAbortCode) and
// tear the world down, and the RobustLog salvage must still produce a
// convertible CLOG-2 containing the dead rank's spilled records.
func TestMultiprocKillRankSalvage(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns rank processes; skipped in -short")
	}
	dir := t.TempDir()
	prefix := filepath.Join(dir, "chaos.clog2")
	const victim = 1

	err := multiprocChaosProgram(prefix, func(r *core.Runtime) {
		pid := r.World().ChildPID(victim)
		if pid <= 0 {
			t.Errorf("ChildPID(%d) = %d, want a live process", victim, pid)
			r.World().Rank(0).Abort(mpi.FaultAbortCode)
			return
		}
		go func() {
			// Let the victim spill real records first, then kill it cold.
			deadline := time.Now().Add(60 * time.Second)
			for victimSpillBytes(prefix, victim) < 600 {
				if time.Now().After(deadline) {
					break
				}
				time.Sleep(time.Millisecond)
			}
			if p, err := os.FindProcess(pid); err == nil {
				p.Kill()
			}
		}()
	})
	if err == nil {
		t.Fatal("StopMain returned nil after a rank was killed")
	}
	want := fmt.Sprintf("aborted with code %d", mpi.FaultAbortCode)
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("StopMain diagnosis %q does not contain %q", err, want)
	}

	// The salvage replaced the lost merge: the log parses, converts, and
	// still carries the dead rank's records.
	f, err := os.Open(prefix)
	if err != nil {
		t.Fatalf("salvaged CLOG-2 missing: %v", err)
	}
	cf, _, err := clog2.ReadLenient(f)
	f.Close()
	if err != nil {
		t.Fatalf("salvaged CLOG-2 does not parse: %v", err)
	}
	victimRecs := 0
	for _, b := range cf.Blocks {
		if b.Rank == victim {
			victimRecs += len(b.Records)
		}
	}
	if victimRecs == 0 {
		t.Fatal("salvage recovered no records from the killed rank")
	}
	if _, _, err := vis.ConvertFile(prefix, vis.ConvertOptions{}); err != nil {
		t.Fatalf("salvaged log does not convert: %v", err)
	}
}

// victimSpillBytes returns the on-disk size of one rank's spill fragment.
func victimSpillBytes(prefix string, rank int) int64 {
	fi, err := os.Stat(fmt.Sprintf("%s.rank%d.spill", prefix, rank))
	if err != nil {
		return 0
	}
	return fi.Size()
}
