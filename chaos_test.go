// The acceptance gate for deterministic fault injection: sweeping seeds
// over the three example workloads (lab2, thumbnail, collisions), every
// faulted run must terminate within its deadline in a diagnosed state —
// a clean exit, a deadlock report, or an ErrAborted unwind — never an
// undiagnosed hang; and replaying a seed must reproduce the identical
// outcome and, where the workload itself is deterministic, the identical
// MPE event sequence.
package repro_test

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/clog2"
	"repro/internal/collisions"
	"repro/internal/core"
	"repro/internal/lab2"
	"repro/internal/mpi"
	"repro/internal/thumbnail"
	"repro/vis"
)

// classify buckets a run's error into the three diagnosed terminal
// states the issue demands.
func classify(err error) string {
	if err == nil {
		return "clean"
	}
	s := err.Error()
	switch {
	case strings.Contains(s, "deadlock"):
		return "deadlock"
	case strings.Contains(s, "abort"):
		return "aborted"
	default:
		return "error: " + s
	}
}

// withDeadline runs f off the test goroutine and fails the test if it
// does not terminate — the "no undiagnosed hang" half of the acceptance
// criterion. Deadlines are generous because -race slows everything down.
func withDeadline(t *testing.T, name string, d time.Duration, f func() error) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- f() }()
	select {
	case err := <-done:
		return err
	case <-time.After(d):
		t.Fatalf("%s: undiagnosed hang — run did not terminate within %v", name, d)
		return nil
	}
}

// faultStrings renders fault events for comparison; FaultEvent.String is
// a pure function of the deterministic decision, so string equality is
// event equality.
func faultStrings(evs []mpi.FaultEvent) []string {
	out := make([]string, len(evs))
	for i, ev := range evs {
		out[i] = ev.String()
	}
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// lab2Spec builds the fault plan for one sweep seed: background message
// delays and forced rendezvous for everyone, plus one seed-dependent
// headline fault. Workers in the W=4 lab2 world are ranks 1..4 and
// execute exactly three faultable operations each (read size, read data,
// write subtotal).
func lab2Spec(seed int) (spec string, crash bool) {
	spec = fmt.Sprintf("seed=%d;delay:prob=0.2,dur=300us;rendezvous:prob=0.2", seed)
	switch seed % 3 {
	case 0:
		spec += fmt.Sprintf(";crash:rank=2,op=%d", 2+(seed/3)%2)
		crash = true
	case 1:
		spec += ";stall:rank=1,op=2,dur=5ms"
	default:
		spec += ";jump:rank=3,op=2,sec=0.25"
	}
	return spec, crash
}

// runLab2Chaos executes one faulted lab2 run under a deadline and
// returns its diagnosed outcome plus the injected-fault trace.
func runLab2Chaos(t *testing.T, name, spec string, services, clog string) (string, []mpi.FaultEvent, *lab2.Result) {
	t.Helper()
	plan, err := mpi.ParseFaultPlan(spec)
	if err != nil {
		t.Fatalf("%s: bad spec %q: %v", name, spec, err)
	}
	cfg := lab2.Config{W: 4, NUM: 400, Seed: 1}
	cfg.Core = core.Config{
		Services:      services,
		CheckLevel:    3,
		DeadlockGrace: 250 * time.Millisecond,
		ArrowSpread:   -1,
		JumpshotPath:  clog,
		NativePath:    clog + ".log",
		Stderr:        io.Discard,
		Faults:        plan,
	}
	var res *lab2.Result
	runErr := withDeadline(t, name, 60*time.Second, func() error {
		r, err := lab2.Run(cfg)
		res = r
		return err
	})
	outcome := classify(runErr)
	var evs []mpi.FaultEvent
	if res != nil && res.Runtime != nil {
		evs = res.Runtime.World().FaultEvents()
	}
	return outcome, evs, res
}

// TestChaosLab2Sweep drives ≥20 distinct seeds through lab2 with the
// deadlock detector on. Every run must end diagnosed within its
// deadline: crash seeds as a deadlock report (CrashAuto resolves to
// CrashStop under the detector), fault-only seeds as a clean, correct
// total. Replaying a seed must reproduce the identical outcome; for
// non-crash seeds the full fault trace replays exactly, and for crash
// seeds the crashed rank's own trace replays exactly (abort timing may
// truncate how far *other* ranks get).
func TestChaosLab2Sweep(t *testing.T) {
	dir := t.TempDir()
	for seed := 1; seed <= 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			spec, crash := lab2Spec(seed)
			name := fmt.Sprintf("lab2 seed %d", seed)
			clog := filepath.Join(dir, fmt.Sprintf("sweep-%d.clog2", seed))
			outcome, evs, res := runLab2Chaos(t, name, spec, "d", clog)

			if crash {
				if outcome != "deadlock" {
					t.Fatalf("%s (%s): outcome %q, want a diagnosed deadlock", name, spec, outcome)
				}
			} else {
				if outcome != "clean" {
					t.Fatalf("%s (%s): outcome %q, want clean", name, spec, outcome)
				}
				if res == nil || res.Total != res.Expected {
					t.Fatalf("%s: wrong total under faults: %+v", name, res)
				}
				if len(evs) == 0 {
					t.Fatalf("%s: plan %q injected no faults", name, spec)
				}
			}

			// Replay: same plan, same seed, second world.
			outcome2, evs2, _ := runLab2Chaos(t, name+" (replay)", spec, "d", clog+".replay")
			if outcome2 != outcome {
				t.Fatalf("%s: replay outcome %q differs from original %q", name, outcome2, outcome)
			}
			a, b := evs, evs2
			if crash {
				a = crashedOnly(a, 2)
				b = crashedOnly(b, 2)
			}
			if sa, sb := faultStrings(a), faultStrings(b); !equalStrings(sa, sb) {
				t.Fatalf("%s: replay fault trace differs:\n  first: %v\n  replay: %v", name, sa, sb)
			}
		})
	}
}

// crashedOnly filters a fault trace down to one rank's events.
func crashedOnly(evs []mpi.FaultEvent, rank int) []mpi.FaultEvent {
	var out []mpi.FaultEvent
	for _, ev := range evs {
		if ev.Rank == rank {
			out = append(out, ev)
		}
	}
	return out
}

// mpeSignature reduces a CLOG-2 file to the per-rank record sequences
// that are deterministic under replay: record type, ids, aux fields,
// direction, cargo text, and definition name/colour — everything except
// wall-clock timestamps. Clock-sync TimeShift records are timing
// artefacts and are excluded entirely.
func mpeSignature(t *testing.T, path string) map[int32][]string {
	t.Helper()
	fh, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fh.Close()
	f, err := clog2.Read(fh)
	if err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	sig := make(map[int32][]string)
	for _, b := range f.Blocks {
		for _, r := range b.Records {
			if r.Type == clog2.RecTimeShift {
				continue
			}
			sig[b.Rank] = append(sig[b.Rank],
				fmt.Sprintf("%s|%d|%d|%d|%d|%d|%s|%s|%s|%s",
					r.Type, r.ID, r.Aux1, r.Aux2, r.Aux3, r.Dir, r.Name, r.Color, r.Text, r.CargoText()))
		}
	}
	return sig
}

// TestChaosLab2ReplayMPE replays non-crash fault plans with MPE logging
// on and requires the identical per-rank MPE event sequence both times,
// and that the injected faults are visible as FaultInjected solo events
// in the converted SLOG-2 — the issue's timeline-visibility criterion.
func TestChaosLab2ReplayMPE(t *testing.T) {
	dir := t.TempDir()
	for i, seed := range []int{2, 4, 5} {
		seed := seed
		checkSlog := i == 0
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			spec, crash := lab2Spec(seed)
			if crash {
				t.Fatalf("seed %d is a crash seed; the MPE replay test needs full runs", seed)
			}
			name := fmt.Sprintf("lab2 mpe seed %d", seed)
			clogA := filepath.Join(dir, fmt.Sprintf("mpe-%d-a.clog2", seed))
			clogB := filepath.Join(dir, fmt.Sprintf("mpe-%d-b.clog2", seed))
			outcomeA, evsA, _ := runLab2Chaos(t, name, spec, "j", clogA)
			outcomeB, evsB, _ := runLab2Chaos(t, name+" (replay)", spec, "j", clogB)
			if outcomeA != "clean" || outcomeB != "clean" {
				t.Fatalf("%s: outcomes %q / %q, want clean", name, outcomeA, outcomeB)
			}
			if sa, sb := faultStrings(evsA), faultStrings(evsB); !equalStrings(sa, sb) {
				t.Fatalf("%s: replay fault trace differs:\n  first: %v\n  replay: %v", name, sa, sb)
			}

			sigA, sigB := mpeSignature(t, clogA), mpeSignature(t, clogB)
			if len(sigA) != len(sigB) {
				t.Fatalf("%s: replay logged %d ranks, original %d", name, len(sigB), len(sigA))
			}
			for rank, recs := range sigA {
				if !equalStrings(recs, sigB[rank]) {
					i := 0
					for i < len(recs) && i < len(sigB[rank]) && recs[i] == sigB[rank][i] {
						i++
					}
					a, b := "<missing>", "<missing>"
					if i < len(recs) {
						a = recs[i]
					}
					if i < len(sigB[rank]) {
						b = sigB[rank][i]
					}
					t.Fatalf("%s: rank %d MPE sequence diverges at record %d (of %d vs %d):\n  first: %s\n  replay: %s",
						name, rank, i, len(recs), len(sigB[rank]), a, b)
				}
			}

			if !checkSlog {
				return
			}
			f, _, err := vis.ConvertFile(clogA, vis.ConvertOptions{})
			if err != nil {
				t.Fatal(err)
			}
			cat := f.CategoryIndex("FaultInjected")
			if cat < 0 {
				t.Fatalf("%s: converted SLOG-2 has no FaultInjected category", name)
			}
			_, _, events := f.All()
			n := 0
			for _, e := range events {
				if e.Cat == cat {
					n++
				}
			}
			if n != len(evsA) {
				t.Fatalf("%s: converted SLOG-2 shows %d FaultInjected events, injected %d", name, n, len(evsA))
			}
		})
	}
}

// TestChaosThumbnail sweeps seeds over the thumbnail pipeline with the
// detector on. The pipeline routes work through AnyOf selects, so which
// rank performs which op when is schedule-dependent; the invariant under
// chaos is purely the diagnosed-termination one: crash seeds must end in
// an error (the detector names the stranded pipeline stages), fault-only
// seeds must still produce every thumbnail.
func TestChaosThumbnail(t *testing.T) {
	for seed := 100; seed < 106; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			crash := seed%2 == 0
			spec := fmt.Sprintf("seed=%d;delay:prob=0.1,dur=200us", seed)
			if crash {
				spec += fmt.Sprintf(";crash:rank=%d,op=%d", 1+seed%4, 3+seed%5)
			} else {
				spec += ";stall:rank=2,op=3,dur=2ms;rendezvous:prob=0.1"
			}
			plan, err := mpi.ParseFaultPlan(spec)
			if err != nil {
				t.Fatalf("bad spec %q: %v", spec, err)
			}
			cfg := thumbnail.Config{
				Workers: 3, NumImages: 12, ImageW: 64, ImageH: 48, Seed: 3,
				Core: core.Config{
					Services:      "d",
					CheckLevel:    3,
					DeadlockGrace: 250 * time.Millisecond,
					Stderr:        io.Discard,
					Faults:        plan,
				},
			}
			name := fmt.Sprintf("thumbnail seed %d", seed)
			var res *thumbnail.Result
			runErr := withDeadline(t, name, 90*time.Second, func() error {
				r, err := thumbnail.Run(cfg)
				res = r
				return err
			})
			if crash {
				if runErr == nil {
					t.Fatalf("%s (%s): crashed pipeline finished cleanly", name, spec)
				}
			} else {
				if runErr != nil {
					t.Fatalf("%s (%s): %v", name, spec, runErr)
				}
				if res.Thumbnails != cfg.NumImages {
					t.Fatalf("%s: produced %d thumbnails, want %d", name, res.Thumbnails, cfg.NumImages)
				}
			}
		})
	}
}

// TestChaosCollisions sweeps seeds over the collisions workload with the
// detector on: a crashed query worker strands PI_MAIN's all-writes /
// all-reads rounds and must surface as a diagnosed error, never a hang.
func TestChaosCollisions(t *testing.T) {
	for seed := 200; seed < 206; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			crash := seed%2 == 0
			spec := fmt.Sprintf("seed=%d;delay:prob=0.15,dur=200us;rendezvous:prob=0.15", seed)
			if crash {
				spec += fmt.Sprintf(";crash:rank=%d,op=%d", 1+seed%3, 2+seed%3)
			} else {
				spec += ";stall:rank=1,op=2,dur=2ms"
			}
			plan, err := mpi.ParseFaultPlan(spec)
			if err != nil {
				t.Fatalf("bad spec %q: %v", spec, err)
			}
			cfg := collisions.Config{Workers: 3, Rows: 1500, Seed: 3, QueryCost: 5}
			cfg.Core = core.Config{
				Services:      "d",
				CheckLevel:    3,
				DeadlockGrace: 250 * time.Millisecond,
				Stderr:        io.Discard,
				Faults:        plan,
			}
			name := fmt.Sprintf("collisions seed %d", seed)
			var res *collisions.Result
			runErr := withDeadline(t, name, 90*time.Second, func() error {
				r, err := collisions.RunFixed(cfg)
				res = r
				return err
			})
			if crash {
				if runErr == nil {
					t.Fatalf("%s (%s): crashed run finished cleanly", name, spec)
				}
			} else {
				if runErr != nil {
					t.Fatalf("%s (%s): %v", name, spec, runErr)
				}
				if len(res.Answers) == 0 {
					t.Fatalf("%s: no query answers", name)
				}
			}
		})
	}
}
