// Package repro's root benchmarks regenerate the paper's tables and
// figures under `go test -bench`, one benchmark family per artefact:
//
//	BenchmarkT1_*   Section III.E overhead table cells
//	BenchmarkF1_*   Fig. 1 pipeline log: conversion and rendering
//	BenchmarkF3_*   Fig. 3 lab2 run
//	BenchmarkF4_*   Fig. 4 fixed vs instance A
//	BenchmarkF5_*   Fig. 5 instance B
//	BenchmarkA1_*   arrow-spread ablation
//	BenchmarkA2_*   frame-size ablation
//	Benchmark micro-costs: per-event logging, channel round trips, codec,
//	CSV parsing
//
// cmd/pilot-bench prints the full tables with shape checks against the
// paper; these benchmarks give the same workloads testing.B treatment.
package repro_test

import (
	"bytes"
	"fmt"
	"io"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/collisions"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/jpeglite"
	"repro/internal/lab2"
	"repro/internal/mpe"
	"repro/internal/mpi"
	"repro/internal/slog2"
	"repro/internal/thumbnail"
	"repro/vis"
)

// benchThumb runs one overhead-table cell per iteration.
func benchThumb(b *testing.B, workProcs int, services string) {
	b.Helper()
	dir := b.TempDir()
	for i := 0; i < b.N; i++ {
		cfg := thumbnail.Config{
			Workers:    workProcs - 1,
			NumImages:  24,
			ImageW:     96,
			ImageH:     64,
			Seed:       int64(i),
			StageDelay: 2 * time.Millisecond,
			Core: core.Config{
				Services:     services,
				CheckLevel:   3,
				JumpshotPath: filepath.Join(dir, "bench.clog2"),
				NativePath:   filepath.Join(dir, "bench.log"),
			},
		}
		if services == "c" {
			cfg.Workers = workProcs - 2 // service rank displaces a worker
		}
		res, err := thumbnail.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Thumbnails != cfg.NumImages {
			b.Fatalf("%d thumbnails", res.Thumbnails)
		}
	}
}

func BenchmarkT1_NoLog_5(b *testing.B)   { benchThumb(b, 5, "") }
func BenchmarkT1_MPE_5(b *testing.B)     { benchThumb(b, 5, "j") }
func BenchmarkT1_Native_5(b *testing.B)  { benchThumb(b, 5, "c") }
func BenchmarkT1_NoLog_10(b *testing.B)  { benchThumb(b, 10, "") }
func BenchmarkT1_MPE_10(b *testing.B)    { benchThumb(b, 10, "j") }
func BenchmarkT1_Native_10(b *testing.B) { benchThumb(b, 10, "c") }

// fig1CLOG produces one Fig. 1-style log for the conversion benchmarks.
func fig1CLOG(b *testing.B) string {
	b.Helper()
	dir := b.TempDir()
	clog := filepath.Join(dir, "fig1.clog2")
	cfg := thumbnail.Config{
		Workers:   9,
		NumImages: 60,
		ImageW:    96,
		ImageH:    64,
		Core: core.Config{
			Services:     "j",
			CheckLevel:   3,
			JumpshotPath: clog,
		},
	}
	if _, err := thumbnail.Run(cfg); err != nil {
		b.Fatal(err)
	}
	return clog
}

func BenchmarkF1_ConvertCLOGToSLOG(b *testing.B) {
	clog := fig1CLOG(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, rep, err := vis.ConvertFile(clog, vis.ConvertOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if rep.NestingErrors != 0 {
			b.Fatal("conversion errors")
		}
	}
}

func BenchmarkF1_RenderSVG(b *testing.B) {
	clog := fig1CLOG(b)
	f, _, err := vis.ConvertFile(clog, vis.ConvertOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := vis.RenderSVG(f, vis.View{}); len(out) == 0 {
			b.Fatal("empty render")
		}
	}
}

func BenchmarkF2_RenderZoomed(b *testing.B) {
	clog := fig1CLOG(b)
	f, _, err := vis.ConvertFile(clog, vis.ConvertOptions{})
	if err != nil {
		b.Fatal(err)
	}
	span := f.End - f.Start
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vis.RenderSVG(f, vis.View{From: f.Start + span*0.45, To: f.Start + span*0.55})
	}
}

func BenchmarkF3_Lab2(b *testing.B) {
	dir := b.TempDir()
	for i := 0; i < b.N; i++ {
		cfg := lab2.Config{W: 5, NUM: 10000, Seed: int64(i)}
		cfg.Core.Services = "j"
		cfg.Core.JumpshotPath = filepath.Join(dir, "lab2.clog2")
		if _, err := lab2.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func benchCollisions(b *testing.B, run func(collisions.Config) (*collisions.Result, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		cfg := collisions.Config{
			Workers: 4, Rows: 8000, Seed: 7,
			QueryCost: 10, QuerySleepPerRow: 2 * time.Microsecond,
			ReadSleepPerRow: time.Microsecond,
		}
		res, err := run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Answers) == 0 {
			b.Fatal("no answers")
		}
	}
}

func BenchmarkF4_Fixed(b *testing.B)     { benchCollisions(b, collisions.RunFixed) }
func BenchmarkF4_InstanceA(b *testing.B) { benchCollisions(b, collisions.RunInstanceA) }
func BenchmarkF5_InstanceB(b *testing.B) { benchCollisions(b, collisions.RunInstanceB) }

func BenchmarkA1_ArrowSpread(b *testing.B) {
	// A broadcast/gather round over 4 workers: the collective fan-out the
	// spread delay actually applies to. "off" vs "1ms" quantifies the
	// workaround's cost (paper: "the injected delay hardly impacts the
	// program's execution" against compute-bound work).
	for _, spread := range []struct {
		name  string
		value time.Duration
	}{{"off", -1}, {"1ms", time.Millisecond}} {
		b.Run(spread.name, func(b *testing.B) {
			dir := b.TempDir()
			for i := 0; i < b.N; i++ {
				const W = 4
				cfg := core.Config{
					NumProcs:     W + 1,
					Services:     "j",
					ArrowSpread:  spread.value,
					JumpshotPath: filepath.Join(dir, "a1.clog2"),
				}
				r, err := core.NewRuntime(cfg)
				if err != nil {
					b.Fatal(err)
				}
				to := make([]*core.Channel, W)
				from := make([]*core.Channel, W)
				worker := func(self *core.Self, index int, arg any) int {
					var v int
					if err := to[index].Read("%d", &v); err != nil {
						return 1
					}
					if err := from[index].Write("%*d", 1, []int{v * 2}); err != nil {
						return 1
					}
					return 0
				}
				for j := 0; j < W; j++ {
					p, err := r.CreateProcess(worker, j, nil)
					if err != nil {
						b.Fatal(err)
					}
					if to[j], err = r.CreateChannel(r.MainProc(), p); err != nil {
						b.Fatal(err)
					}
					if from[j], err = r.CreateChannel(p, r.MainProc()); err != nil {
						b.Fatal(err)
					}
				}
				bc, err := r.CreateBundle(core.UsageBroadcast, to...)
				if err != nil {
					b.Fatal(err)
				}
				ga, err := r.CreateBundle(core.UsageGather, from...)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := r.StartAll(); err != nil {
					b.Fatal(err)
				}
				if err := bc.Broadcast("%d", i); err != nil {
					b.Fatal(err)
				}
				buf := make([]int, W)
				if err := ga.Gather("%*d", W, buf); err != nil {
					b.Fatal(err)
				}
				if err := r.StopMain(0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkA2_FrameSize(b *testing.B) {
	clog := fig1CLOG(b)
	for _, capacity := range []int{16, 64, 256, 1024, 4096} {
		b.Run(fmt.Sprintf("capacity=%d", capacity), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				f, _, err := vis.ConvertFile(clog, vis.ConvertOptions{FrameCapacity: capacity})
				if err != nil {
					b.Fatal(err)
				}
				span := f.End - f.Start
				f.Query(f.Start+span*0.45, f.Start+span*0.55)
			}
		})
	}
}

// BenchmarkConvertParallel measures CLOG-2 → SLOG-2 conversion at several
// worker-pool sizes over the Fig. 1 log. The output is byte-identical at
// every setting, so only ns/op and allocs/op move.
func BenchmarkConvertParallel(b *testing.B) {
	clog := fig1CLOG(b)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, rep, err := vis.ConvertFile(clog, vis.ConvertOptions{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				if rep.NestingErrors != 0 {
					b.Fatal("conversion errors")
				}
			}
		})
	}
}

// BenchmarkMPE_FinishMerge exercises the collective wrap-up: every rank
// logs a fixed load of state pairs, then Finish syncs clocks and merges
// all buffers into one CLOG-2 stream on rank 0. The merge path (encode
// buffers, block decode, string cargo) dominates allocs/op.
func BenchmarkMPE_FinishMerge(b *testing.B) {
	const ranks = 8
	const recsPerRank = 1000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := mpi.NewWorld(ranks, mpi.Options{})
		g := mpe.NewGroup(w, true)
		sid := g.DescribeState("PI_Write", "green")
		errs := w.Run(func(r *mpi.Rank) error {
			l := g.Logger(r.ID())
			for j := 0; j < recsPerRank; j++ {
				l.StateStart(sid, "line: bench.go:1")
				l.StateEnd(sid, "cargo")
			}
			if r.ID() == 0 {
				return l.Finish(io.Discard)
			}
			return l.Finish(nil)
		})
		for _, err := range errs {
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}

// ---- micro-benchmarks: the costs the overhead table aggregates ----

func BenchmarkMPE_StateStartEnd(b *testing.B) {
	w := mpi.NewWorld(1, mpi.Options{})
	g := mpe.NewGroup(w, true)
	sid := g.DescribeState("PI_Write", "green")
	l := g.Logger(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.StateStart(sid, "line: x.go:1")
		l.StateEnd(sid, "")
	}
}

func BenchmarkMPE_Disabled(b *testing.B) {
	w := mpi.NewWorld(1, mpi.Options{})
	g := mpe.NewGroup(w, false)
	sid := g.DescribeState("PI_Write", "green")
	l := g.Logger(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.StateStart(sid, "line: x.go:1")
		l.StateEnd(sid, "")
	}
}

func BenchmarkChannelRoundTrip(b *testing.B) {
	for _, logged := range []string{"", "j"} {
		name := "nolog"
		if logged == "j" {
			name = "mpe"
		}
		b.Run(name, func(b *testing.B) {
			cfg := core.Config{NumProcs: 2, Services: logged,
				JumpshotPath: filepath.Join(b.TempDir(), "x.clog2")}
			r, err := core.NewRuntime(cfg)
			if err != nil {
				b.Fatal(err)
			}
			var toW, fromW *core.Channel
			p, _ := r.CreateProcess(func(self *core.Self, index int, arg any) int {
				var v int
				for {
					if err := toW.Read("%d", &v); err != nil {
						return 1
					}
					if v < 0 {
						return 0
					}
					if err := fromW.Write("%d", v+1); err != nil {
						return 1
					}
				}
			}, 0, nil)
			toW, _ = r.CreateChannel(r.MainProc(), p)
			fromW, _ = r.CreateChannel(p, r.MainProc())
			if _, err := r.StartAll(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var v int
				if err := toW.Write("%d", i); err != nil {
					b.Fatal(err)
				}
				if err := fromW.Read("%d", &v); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			toW.Write("%d", -1)
			r.StopMain(0)
		})
	}
}

func BenchmarkJpegliteEncode(b *testing.B) {
	im := jpeglite.Synthetic(192, 128, 1)
	b.SetBytes(int64(len(im.Pix)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		jpeglite.Encode(im, 75)
	}
}

func BenchmarkJpegliteDecode(b *testing.B) {
	data := jpeglite.Encode(jpeglite.Synthetic(192, 128, 1), 75)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := jpeglite.Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCollisionsParse(b *testing.B) {
	data := collisions.GenerateCSV(10000, 1)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := collisions.ParseSegment(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSLOG2WriteRead(b *testing.B) {
	clog := fig1CLOG(b)
	f, _, err := vis.ConvertFile(clog, vis.ConvertOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := slog2.Write(&buf, f); err != nil {
			b.Fatal(err)
		}
		if _, err := slog2.Read(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// TestExperimentsSmall runs the full experiment suite at a reduced scale:
// the regression test that every table and figure still regenerates.
func TestExperimentsSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite")
	}
	opt := experiments.Options{
		OutDir:     t.TempDir(),
		Runs:       2,
		Images:     30,
		Rows:       10000,
		StageDelay: 2 * time.Millisecond,
	}
	rows, err := experiments.RunT1(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("T1 rows = %d", len(rows))
	}
	f1, err := experiments.RunF1(opt)
	if err != nil {
		t.Fatal(err)
	}
	if f1.ConversionErrors != 0 {
		t.Errorf("F1 conversion errors: %d", f1.ConversionErrors)
	}
	if f1.Ranks != 11 {
		t.Errorf("F1 ranks = %d, want 11", f1.Ranks)
	}
	f2, err := experiments.RunF2(opt, f1)
	if err != nil {
		t.Fatal(err)
	}
	if f2.ComputeFraction < 0.3 {
		t.Errorf("F2 compute fraction %.2f", f2.ComputeFraction)
	}
	f3, err := experiments.RunF3(opt)
	if err != nil {
		t.Fatal(err)
	}
	if f3.Arrows != 15 || f3.Timelines != 6 || !f3.SequencesOK {
		t.Errorf("F3 %+v", f3)
	}
	f4, err := experiments.RunF4(opt)
	if err != nil {
		t.Fatal(err)
	}
	if f4.OverlapA >= f4.OverlapFixed {
		t.Errorf("F4 overlap A=%.3f fixed=%.3f", f4.OverlapA, f4.OverlapFixed)
	}
	f5, err := experiments.RunF5(opt)
	if err != nil {
		t.Fatal(err)
	}
	if f5.ReadShare < 0.5 {
		t.Errorf("F5 read share %.2f", f5.ReadShare)
	}
	a1, err := experiments.RunA1(opt)
	if err != nil {
		t.Fatal(err)
	}
	if a1.EqualDrawablesNoSpread == 0 || a1.EqualDrawablesSpread != 0 {
		t.Errorf("A1 %+v", a1)
	}
	a2, err := experiments.RunA2(opt, f1)
	if err != nil {
		t.Fatal(err)
	}
	if len(a2) != 5 || a2[0].TreeDepth < a2[len(a2)-1].TreeDepth {
		t.Errorf("A2 %+v", a2)
	}
	a3, err := experiments.RunA3(opt)
	if err != nil {
		t.Fatal(err)
	}
	if a3.MPELogExists || !a3.NativeLogExists {
		t.Errorf("A3 %+v", a3)
	}
}
