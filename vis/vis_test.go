package vis_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lab2"
	"repro/internal/serve"
	"repro/vis"
)

// runLab2 produces a fresh CLOG-2 for the pipeline tests.
func runLab2(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "lab2.clog2")
	cfg := lab2.Config{W: 3, NUM: 1000, Seed: 4}
	cfg.Core.Services = "j"
	cfg.Core.JumpshotPath = path
	cfg.Core.CheckLevel = 3
	if _, err := lab2.Run(cfg); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestPipelineAllStages(t *testing.T) {
	clog := runLab2(t)
	dir := filepath.Dir(clog)
	slogPath := filepath.Join(dir, "out.slog2")
	svgPath := filepath.Join(dir, "out.svg")
	f, rep, err := vis.Pipeline(clog, slogPath, svgPath, vis.ConvertOptions{}, vis.View{Title: "t"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.States == 0 || f.NumRanks != 4 {
		t.Fatalf("rep=%+v ranks=%d", rep, f.NumRanks)
	}
	for _, p := range []string{slogPath, svgPath} {
		if _, err := os.Stat(p); err != nil {
			t.Errorf("%s not written: %v", p, err)
		}
	}
	// Skipping stages works too.
	if _, _, err := vis.Pipeline(clog, "", "", vis.ConvertOptions{}, vis.View{}); err != nil {
		t.Fatal(err)
	}
	// SLOG-2 roundtrip through the facade.
	g, err := vis.ReadSLOG2(slogPath)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumRanks != f.NumRanks {
		t.Fatalf("roundtrip ranks %d vs %d", g.NumRanks, f.NumRanks)
	}
}

func TestPipelineErrors(t *testing.T) {
	if _, _, err := vis.Pipeline("no-such-file.clog2", "", "", vis.ConvertOptions{}, vis.View{}); err == nil {
		t.Fatal("missing input accepted")
	}
	clog := runLab2(t)
	if _, _, err := vis.Pipeline(clog, "/no/such/dir/x.slog2", "", vis.ConvertOptions{}, vis.View{}); err == nil {
		t.Fatal("unwritable slog output accepted")
	}
	if _, _, err := vis.Pipeline(clog, "", "/no/such/dir/x.svg", vis.ConvertOptions{}, vis.View{}); err == nil {
		t.Fatal("unwritable svg output accepted")
	}
}

func TestFacadeRenderers(t *testing.T) {
	clog := runLab2(t)
	f, _, err := vis.ConvertFile(clog, vis.ConvertOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if s := vis.RenderASCII(f, vis.View{Width: 60}); !strings.Contains(s, "PI_MAIN") {
		t.Error("ascii facade broken")
	}
	if s := vis.RenderHTML(f, vis.View{}); !strings.Contains(s, "<!DOCTYPE html>") {
		t.Error("html facade broken")
	}
	if s := vis.RenderStatsSVG(f, f.Start, f.End, ""); !strings.Contains(s, "<svg") {
		t.Error("stats svg facade broken")
	}
	htmlPath := filepath.Join(t.TempDir(), "v.html")
	if err := vis.RenderHTMLFile(htmlPath, f, vis.View{}); err != nil {
		t.Fatal(err)
	}
	legend := vis.Legend(f, f.Start, f.End)
	vis.SortLegend(legend, "count")
	if out := vis.FormatLegend(legend); !strings.Contains(out, "count") {
		t.Error("legend facade broken")
	}
	stats := vis.Stats(f, f.Start, f.End)
	if out := vis.FormatStats(f, stats); out == "" {
		t.Error("stats facade broken")
	}
	if frac := vis.CategoryFraction(f, "Compute", f.Start, f.End); frac <= 0 {
		t.Errorf("compute fraction %v", frac)
	}
	if hits := vis.Search(f, vis.SearchOptions{Name: "arrow", Rank: -1}); len(hits) != 9 {
		t.Errorf("arrows = %d, want 9 (3 workers x 3 messages)", len(hits))
	}
	if r := vis.BusyOverlapRatio(f, []int{1, 2, 3}, f.Start, f.End); r < 0 || r > 1.2 {
		t.Errorf("overlap ratio %v", r)
	}
	if v := vis.LoadImbalance(f, "Compute", []int{1, 2, 3}, f.Start, f.End); v < 1 {
		t.Errorf("imbalance %v", v)
	}
	// PI_MAIN's Compute spans the whole run, so it overlaps any worker's.
	if o := vis.Overlap(f, "Compute", 0, 1, f.Start, f.End); o <= 0 {
		t.Errorf("overlap %v", o)
	}
}

func TestPipelineToRepo(t *testing.T) {
	clog := runLab2(t)
	repoDir := t.TempDir()
	f, rep, p, err := vis.PipelineToRepo(clog, repoDir, "lab2-run", vis.ConvertOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.States == 0 || p == nil || f.NumRanks != 4 {
		t.Fatalf("rep=%+v profile=%v ranks=%d", rep, p != nil, f.NumRanks)
	}
	for _, name := range []string{"lab2-run.slog2", "lab2-run.profile.json"} {
		if _, err := os.Stat(filepath.Join(repoDir, name)); err != nil {
			t.Errorf("%s not registered: %v", name, err)
		}
	}
	// The registered trace must round-trip through the serve repository.
	repo, err := serve.NewRepo(repoDir, 2)
	if err != nil {
		t.Fatal(err)
	}
	infos, err := repo.List()
	if err != nil || len(infos) != 1 || infos[0].ID != "lab2-run" || !infos[0].HasProfile {
		t.Fatalf("repo list = %+v, %v", infos, err)
	}
	tr, err := repo.Open("lab2-run")
	if err != nil {
		t.Fatal(err)
	}
	if tr.File.NumRanks != f.NumRanks {
		t.Fatalf("served trace ranks %d vs %d", tr.File.NumRanks, f.NumRanks)
	}
	// Invalid ids and a missing repo dir must be rejected up front.
	for _, id := range []string{"", "a/b", "..", ".hidden"} {
		if _, _, _, err := vis.PipelineToRepo(clog, repoDir, id, vis.ConvertOptions{}); err == nil {
			t.Errorf("id %q accepted", id)
		}
	}
	if _, _, _, err := vis.PipelineToRepo(clog, filepath.Join(repoDir, "nope"), "x", vis.ConvertOptions{}); err == nil {
		t.Error("missing repo dir accepted")
	}
}
