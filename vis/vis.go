// Package vis is the public face of the log-visualization pipeline: the
// paper's CLOG-2 → SLOG-2 → Jumpshot display chain. It wraps
// internal/clog2, internal/slog2 and internal/jumpshot into the few calls
// a tool or test needs:
//
//	sf, rep, err := vis.ConvertFile("pilot.clog2", vis.ConvertOptions{})
//	svg := vis.RenderSVG(sf, vis.View{Title: "my run"})
//	fmt.Print(vis.FormatLegend(vis.Legend(sf, sf.Start, sf.End)))
package vis

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analyze"
	"repro/internal/idx"
	"repro/internal/jumpshot"
	"repro/internal/slog2"
	"repro/internal/stats"
)

// Re-exported pipeline types.
type (
	// File is a parsed SLOG-2 visualization log.
	File = slog2.File
	// ConvertOptions tunes CLOG-2 → SLOG-2 conversion (frame size, worker
	// count; output is byte-identical at any worker count).
	ConvertOptions = slog2.ConvertOptions
	// Report carries conversion diagnostics (Equal Drawables and friends).
	Report = slog2.Report
	// View controls timeline rendering (viewport, size, previews).
	View = jumpshot.View
	// Annotation is one verdict marker overlaid on a rendered timeline.
	Annotation = jumpshot.Annotation
	// LegendEntry is one row of the legend table.
	LegendEntry = jumpshot.LegendEntry
	// RankStats is one timeline's duration statistics.
	RankStats = jumpshot.RankStats
	// Hit is one search-and-scan result.
	Hit = jumpshot.Hit
	// SearchOptions narrows a search.
	SearchOptions = jumpshot.SearchOptions
)

// Convert turns a CLOG-2 stream into an SLOG-2 file. Blocks are streamed
// from r one at a time (clog2.BlockReader), so the raw log is never fully
// materialized; the per-rank pairing phases run on a worker pool sized by
// opts.Workers (0 = GOMAXPROCS).
func Convert(r io.Reader, opts ConvertOptions) (*File, *Report, error) {
	return slog2.ConvertReader(r, opts)
}

// ConvertFile converts the CLOG-2 file at path.
func ConvertFile(path string, opts ConvertOptions) (*File, *Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return Convert(f, opts)
}

// WriteSLOG2 serialises an SLOG-2 file to path.
func WriteSLOG2(path string, f *File) error { return slog2.WriteFile(path, f) }

// ReadSLOG2 parses the SLOG-2 file at path.
func ReadSLOG2(path string) (*File, error) { return slog2.ReadFile(path) }

// RenderSVG draws the log Jumpshot-style as an SVG document.
func RenderSVG(f *File, v View) string { return jumpshot.RenderSVG(f, v) }

// RenderSVGFile renders straight to a file.
func RenderSVGFile(path string, f *File, v View) error {
	return os.WriteFile(path, []byte(RenderSVG(f, v)), 0o644)
}

// RenderHTML wraps the timeline in a self-contained interactive page:
// wheel zoom, drag scroll, hover popups, legend table.
func RenderHTML(f *File, v View) string { return jumpshot.RenderHTML(f, v) }

// RenderHTMLFile renders the interactive page straight to a file.
func RenderHTMLFile(path string, f *File, v View) error {
	return os.WriteFile(path, []byte(RenderHTML(f, v)), 0o644)
}

// RenderStatsSVG draws the duration-statistics view (stacked bars per
// rank) over [t0, t1].
func RenderStatsSVG(f *File, t0, t1 float64, title string) string {
	return jumpshot.RenderStatsSVG(f, t0, t1, title)
}

// RenderChromeTrace exports the log as Chrome trace-event JSON
// (chrome://tracing, Perfetto).
func RenderChromeTrace(f *File) ([]byte, error) { return jumpshot.RenderChromeTrace(f) }

// At describes the drawables under a (rank, time) point — the click-popup
// primitive.
func At(f *File, rank int, t float64) []string { return jumpshot.At(f, rank, t) }

// RenderASCII draws the log as text timelines for terminals.
func RenderASCII(f *File, v View) string { return jumpshot.RenderASCII(f, v) }

// Legend computes the legend statistics (count, incl, excl) over a window.
func Legend(f *File, t0, t1 float64) []LegendEntry { return jumpshot.Legend(f, t0, t1) }

// SortLegend orders legend entries by "name", "count", "incl" or "excl".
func SortLegend(entries []LegendEntry, key string) { jumpshot.SortLegend(entries, key) }

// FormatLegend renders the legend as an aligned text table.
func FormatLegend(entries []LegendEntry) string { return jumpshot.FormatLegend(entries) }

// Stats computes per-rank category statistics over a selected duration.
func Stats(f *File, t0, t1 float64) []RankStats { return jumpshot.Stats(f, t0, t1) }

// FormatStats renders rank statistics as a table.
func FormatStats(f *File, stats []RankStats) string { return jumpshot.FormatStats(f, stats) }

// CategoryFraction reports the share of state time the named category
// occupies in [t0, t1].
func CategoryFraction(f *File, name string, t0, t1 float64) float64 {
	return jumpshot.CategoryFraction(f, name, t0, t1)
}

// Overlap reports how much of the named category's time runs concurrently
// on two ranks — the serialization metric behind the paper's Fig. 4
// diagnosis.
func Overlap(f *File, name string, rankA, rankB int, t0, t1 float64) float64 {
	return jumpshot.Overlap(f, name, rankA, rankB, t0, t1)
}

// LoadImbalance reports max/min per-rank time in the named category.
func LoadImbalance(f *File, name string, ranks []int, t0, t1 float64) float64 {
	return jumpshot.LoadImbalance(f, name, ranks, t0, t1)
}

// BusyOverlapRatio quantifies how parallel a set of ranks really ran:
// mean pairwise overlap of busy (computing, non-blocked) time over mean
// busy time. ~1 = parallel workers, ~0 = serialized (the paper's
// instance A pattern).
func BusyOverlapRatio(f *File, ranks []int, t0, t1 float64) float64 {
	return jumpshot.BusyOverlapRatio(f, ranks, t0, t1)
}

// PathSeg is one link of the critical path.
type PathSeg = jumpshot.PathSeg

// CriticalPath extracts the compute/message chain that determined the
// program's wall-clock time.
func CriticalPath(f *File) []PathSeg { return jumpshot.CriticalPath(f) }

// FormatCriticalPath renders the path with per-segment shares.
func FormatCriticalPath(path []PathSeg) string { return jumpshot.FormatCriticalPath(path) }

// WaitEdge is one cell of the who-waits-on-whom matrix.
type WaitEdge = jumpshot.WaitEdge

// WaitMatrix attributes every blocked input operation to the rank whose
// message resolved it — the debugging question behind the paper's Figs.
// 4–5, as a table instead of a picture.
func WaitMatrix(f *File, t0, t1 float64) []WaitEdge { return jumpshot.WaitMatrix(f, t0, t1) }

// FormatWaitMatrix renders wait edges as a table, longest waits first.
func FormatWaitMatrix(edges []WaitEdge) string { return jumpshot.FormatWaitMatrix(edges) }

// Search scans the log for drawables matching opts.
func Search(f *File, opts SearchOptions) []Hit { return jumpshot.Search(f, opts) }

// FormatHits renders search hits as a text listing.
func FormatHits(hits []Hit) string { return jumpshot.FormatHits(hits) }

// Pipeline runs the whole chain for one program run: convert the CLOG-2 at
// clogPath, optionally persist the SLOG-2, render an SVG, and return the
// conversion report. Empty output paths skip that stage.
func Pipeline(clogPath, slogPath, svgPath string, opts ConvertOptions, v View) (*File, *Report, error) {
	f, rep, err := ConvertFile(clogPath, opts)
	if err != nil {
		return nil, nil, err
	}
	if slogPath != "" {
		if err := WriteSLOG2(slogPath, f); err != nil {
			return nil, nil, fmt.Errorf("vis: writing %s: %w", slogPath, err)
		}
	}
	if svgPath != "" {
		if err := RenderSVGFile(svgPath, f, v); err != nil {
			return nil, nil, fmt.Errorf("vis: writing %s: %w", svgPath, err)
		}
	}
	return f, rep, nil
}

// Annotations turns an analyzer verdict report into timeline markers:
// rank-scoped findings become flags on their rank's timeline at the
// finding's timestamp, unscoped ones become banner chips. Feed the
// result to View.Annotations to draw findings where the paper's users
// look.
func Annotations(rep *analyze.Report) []Annotation {
	var out []Annotation
	for _, f := range rep.Findings {
		label := f.Detector
		if f.Channel >= 0 {
			label = fmt.Sprintf("%s ch%d", f.Detector, f.Channel)
		}
		out = append(out, Annotation{
			Rank:   f.Rank,
			Time:   f.Time,
			Label:  label,
			Detail: f.Detail,
		})
	}
	return out
}

// Profile is the post-run statistics report computed from a CLOG-2
// stream (see stats.ComputeProfile): per-channel and per-rank message
// totals, per-state duration quantiles, busy-vs-blocked breakdown.
type Profile = stats.Profile

// ComputeProfile profiles the CLOG-2 stream in r.
func ComputeProfile(r io.Reader) (*Profile, error) { return stats.ComputeProfile(r) }

// ComputeProfileFile profiles the CLOG-2 file at path.
func ComputeProfileFile(path string) (*Profile, error) { return stats.ComputeProfileFile(path) }

// ProfilePath derives the profile sidecar name for an SLOG-2 output
// path: "run.slog2" → "run.profile.json".
func ProfilePath(slogPath string) string {
	return strings.TrimSuffix(slogPath, ".slog2") + ".profile.json"
}

// PipelineWithProfile is Pipeline plus the observability hook: after a
// successful conversion it recomputes a stats.Profile from the same
// CLOG-2 and drops it as JSON next to the SLOG-2 (ProfilePath). An empty
// slogPath writes no profile, matching Pipeline's skip semantics.
func PipelineWithProfile(clogPath, slogPath, svgPath string, opts ConvertOptions, v View) (*File, *Report, *Profile, error) {
	f, rep, err := Pipeline(clogPath, slogPath, svgPath, opts, v)
	if err != nil {
		return nil, nil, nil, err
	}
	p, err := ComputeProfileFile(clogPath)
	if err != nil {
		return nil, nil, nil, err
	}
	if slogPath != "" {
		if err := p.WriteJSON(ProfilePath(slogPath)); err != nil {
			return nil, nil, nil, fmt.Errorf("vis: writing profile: %w", err)
		}
	}
	return f, rep, p, nil
}

// PipelineToRepo converts the CLOG-2 at clogPath and registers the run
// in a pilot-serve trace repository: repoDir/<id>.slog2 plus the
// repoDir/<id>.profile.json sidecar, and — so the service can answer
// windowed queries without streaming the whole raw log — a copy of the
// raw CLOG-2 as repoDir/<id>.clog2 with its ".idx" index sidecar built
// beside it. The id must be a valid pilot-serve trace id (no
// separators, no leading dot). Raw-log registration is best-effort: a
// failure copying or indexing never fails the registration, it only
// costs the service its windowed fast path.
func PipelineToRepo(clogPath, repoDir, id string, opts ConvertOptions) (*File, *Report, *Profile, error) {
	if id == "" || strings.ContainsAny(id, "/\\") || strings.Contains(id, "..") || id[0] == '.' {
		return nil, nil, nil, fmt.Errorf("vis: invalid repository trace id %q", id)
	}
	info, err := os.Stat(repoDir)
	if err != nil {
		return nil, nil, nil, err
	}
	if !info.IsDir() {
		return nil, nil, nil, fmt.Errorf("vis: %s is not a directory", repoDir)
	}
	f, rep, p, err := PipelineWithProfile(clogPath, filepath.Join(repoDir, id+".slog2"), "", opts, View{})
	if err != nil {
		return nil, nil, nil, err
	}
	registerRawLog(clogPath, filepath.Join(repoDir, id+".clog2"))
	return f, rep, p, nil
}

// registerRawLog copies the raw CLOG-2 to dst and builds its index
// sidecar there. Best-effort by design: the sidecar is an accelerator
// and every consumer degrades to the full scan without it.
func registerRawLog(src, dst string) {
	in, err := os.Open(src)
	if err != nil {
		return
	}
	defer in.Close()
	out, err := os.Create(dst)
	if err != nil {
		return
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		os.Remove(dst)
		return
	}
	if err := out.Close(); err != nil {
		os.Remove(dst)
		return
	}
	ix, err := idx.BuildFile(dst)
	if err != nil {
		return
	}
	_ = idx.WriteFileFor(dst, ix)
}
