// The wire-fault chaos harness: real example programs (lab2, thumbnail,
// collisions) run over the multi-process socket transport while the
// seeded wire-fault injector abuses every link — delayed, corrupted,
// duplicated, dropped, torn and stalled frames. The contract under test
// is the transport's failure posture: every run must terminate within a
// deadline in one of exactly two states — transparent recovery with the
// same user-visible outcome as a clean run, or a diagnosed abort
// (FaultAbortCode) whose RobustLog salvage still yields a convertible
// log. Hangs and silent corruption are the only failures.
//
// Every decision the injector makes is a pure function of (seed, rules,
// link frame sequence), so a failing cell replays its exact fault
// schedule with -run 'TestChaosWireSweep/<cell>'.
package repro_test

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/collisions"
	"repro/internal/core"
	"repro/internal/lab2"
	"repro/internal/mpi"
	"repro/internal/thumbnail"
	"repro/vis"
)

const (
	chaosWireProgramEnv = "PILOT_CHAOSWIRE_PROGRAM"
	chaosWireFaultsEnv  = "PILOT_CHAOSWIRE_FAULTS"
	chaosWirePrefixEnv  = "PILOT_CHAOSWIRE_PREFIX"
)

// chaosWireCore builds the Pilot config shared by the rank-0 parent and
// every spawned rank: socket transport, RobustLog (so a diagnosed abort
// still salvages a log), and the identical fault plan — each process
// derives its own injection decisions from the same seed and rules.
func chaosWireCore(program, prefix, faults string) (core.Config, error) {
	plan, err := mpi.ParseFaultPlan(faults)
	if err != nil {
		return core.Config{}, err
	}
	return core.Config{
		Services:     string(core.SvcJumpshot),
		RobustLog:    true,
		JumpshotPath: prefix,
		Transport:    mpi.TransportSocket,
		Faults:       plan,
		SpawnCommand: []string{os.Args[0], "-test.run=^TestChaosWireChild$"},
		SpawnEnv: []string{
			chaosWireProgramEnv + "=" + program,
			chaosWireFaultsEnv + "=" + faults,
			chaosWirePrefixEnv + "=" + prefix,
		},
	}, nil
}

// chaosWireRun executes one program over the faulted wire and returns
// the program error plus a program-specific outcome check (run only on
// success, against a clean-run expectation).
func chaosWireRun(program, prefix, faults string) (err error, check func() error) {
	cc, err := chaosWireCore(program, prefix, faults)
	if err != nil {
		return err, nil
	}
	switch program {
	case "lab2":
		res, err := lab2.Run(lab2.Config{W: 2, NUM: 1500, Seed: 42, Core: cc})
		return err, func() error {
			if res.Total != res.Expected {
				return fmt.Errorf("lab2 total %d != expected %d", res.Total, res.Expected)
			}
			return nil
		}
	case "thumbnail":
		res, err := thumbnail.Run(thumbnail.Config{
			Workers: 1, NumImages: 6, ImageW: 64, ImageH: 48, Seed: 1, Core: cc,
		})
		return err, func() error {
			if res.Thumbnails != 6 {
				return fmt.Errorf("thumbnail produced %d/6 images", res.Thumbnails)
			}
			return nil
		}
	case "collisions":
		res, err := collisions.RunFixed(collisions.Config{Workers: 2, Rows: 300, Seed: 7, Core: cc})
		return err, func() error {
			want := cleanCollisionsAnswers()
			if !reflect.DeepEqual(res.Answers, want) {
				return fmt.Errorf("collisions answers diverged from the clean run:\ngot  %v\nwant %v", res.Answers, want)
			}
			return nil
		}
	default:
		return fmt.Errorf("unknown chaos-wire program %q", program), nil
	}
}

// cleanCollisionsAnswers computes the fault-free in-process reference
// outcome once; recovered wire runs must reproduce it exactly.
var cleanCollisionsAnswers = sync.OnceValue(func() []collisions.QueryResult {
	res, err := collisions.RunFixed(collisions.Config{Workers: 2, Rows: 300, Seed: 7})
	if err != nil {
		panic(fmt.Sprintf("clean collisions reference run failed: %v", err))
	}
	return res.Answers
})

// TestChaosWireChild hosts one spawned rank of whichever program the
// sweep is running. Inert under a normal `go test`.
func TestChaosWireChild(t *testing.T) {
	if !mpi.Spawned() {
		t.Skip("spawned rank body; run via TestChaosWireSweep")
	}
	err, _ := chaosWireRun(os.Getenv(chaosWireProgramEnv),
		os.Getenv(chaosWirePrefixEnv), os.Getenv(chaosWireFaultsEnv))
	// A successful spawned rank exits inside PI_StartAll; reaching here
	// means the world tore down (diagnosed abort) or setup failed.
	t.Fatalf("spawned chaos-wire rank returned: %v", err)
}

// chaosWireOnce runs one (program, fault-kind, seed) cell and asserts
// the failure posture.
func chaosWireOnce(t *testing.T, program, faults string) {
	t.Helper()
	prefix := filepath.Join(t.TempDir(), "chaoswire.clog2")

	type outcome struct {
		err   error
		check func() error
	}
	done := make(chan outcome, 1)
	go func() {
		err, check := chaosWireRun(program, prefix, faults)
		done <- outcome{err, check}
	}()
	var got outcome
	select {
	case got = <-done:
	case <-time.After(120 * time.Second):
		t.Fatalf("%s under %q did not terminate in 120s: that is a hang, the one forbidden outcome", program, faults)
	}

	if got.err != nil {
		// The diagnosed-abort bucket: the error must name the abort code,
		// and the salvage must still have produced a convertible log.
		want := fmt.Sprintf("aborted with code %d", mpi.FaultAbortCode)
		if !strings.Contains(got.err.Error(), want) {
			t.Fatalf("%s under %q failed undiagnosed: %v (want %q)", program, faults, got.err, want)
		}
		// When the abort landed late enough for salvage to run, the log it
		// left must convert; an abort before any logging leaves no file.
		if _, statErr := os.Stat(prefix); statErr == nil {
			if _, _, err := vis.ConvertFile(prefix, vis.ConvertOptions{}); err != nil {
				t.Fatalf("%s under %q: salvaged log does not convert: %v", program, faults, err)
			}
		}
		return
	}
	// The transparent-recovery bucket: same outcome as a clean run, and
	// the merged log converts.
	if err := got.check(); err != nil {
		t.Fatalf("%s under %q recovered but corrupted the outcome: %v", program, faults, err)
	}
	if _, _, err := vis.ConvertFile(prefix, vis.ConvertOptions{}); err != nil {
		t.Fatalf("%s under %q: merged log does not convert: %v", program, faults, err)
	}
}

// TestChaosWireSweep is the seeded sweep: each program crossed with each
// wire-fault kind, sequentially (each cell spawns its own rank
// processes; the CI box is single-core). Cell names replay with -run.
func TestChaosWireSweep(t *testing.T) {
	if mpi.Spawned() {
		t.Skip("spawned rank")
	}
	if testing.Short() {
		t.Skip("spawns rank processes; skipped in -short")
	}
	kinds := []struct{ name, rule string }{
		{"wiredelay", "wiredelay:rank=*,prob=0.1,dur=5ms"},
		{"wirecorrupt", "wirecorrupt:rank=*,prob=0.05"},
		{"wiredup", "wiredup:rank=*,prob=0.1"},
		{"wiredrop", "wiredrop:rank=*,prob=0.04"},
		{"wirereset", "wirereset:rank=*,prob=0.04"},
		{"wirestall", "wirestall:rank=*,prob=0.05,dur=10ms"},
	}
	seed := 100
	for _, program := range []string{"lab2", "thumbnail", "collisions"} {
		for _, k := range kinds {
			seed++
			spec := fmt.Sprintf("seed=%d;%s", seed, k.rule)
			t.Run(fmt.Sprintf("%s/%s/seed=%d", program, k.name, seed), func(t *testing.T) {
				chaosWireOnce(t, program, spec)
			})
		}
	}
	// Saturation: corrupt every first transmission. Nothing gets through
	// except retransmits (which are never re-faulted), so completing at
	// all proves the CRC-detect → fail → resume → retransmit loop makes
	// forward progress under total wire hostility.
	t.Run("lab2/saturate-corrupt/seed=999", func(t *testing.T) {
		chaosWireOnce(t, "lab2", "seed=999;wirecorrupt:rank=*,prob=1")
	})
}

// TestChaosWireReplay runs one faulted cell twice with the same seed:
// determinism means the second run must land in the same bucket with the
// same outcome — the property that makes a failing seed debuggable.
func TestChaosWireReplay(t *testing.T) {
	if mpi.Spawned() {
		t.Skip("spawned rank")
	}
	if testing.Short() {
		t.Skip("spawns rank processes; skipped in -short")
	}
	const spec = "seed=4242;wiredrop:rank=*,prob=0.04;wiredup:rank=*,prob=0.1"
	run := func() (error, int) {
		prefix := filepath.Join(t.TempDir(), "replay.clog2")
		cc, err := chaosWireCore("lab2", prefix, spec)
		if err != nil {
			t.Fatal(err)
		}
		res, err := lab2.Run(lab2.Config{W: 2, NUM: 1500, Seed: 42, Core: cc})
		if err != nil {
			return err, 0
		}
		return nil, res.Total
	}
	err1, total1 := run()
	err2, total2 := run()
	if (err1 == nil) != (err2 == nil) {
		t.Fatalf("replay changed buckets: %v vs %v", err1, err2)
	}
	if err1 == nil && total1 != total2 {
		t.Fatalf("replay changed the outcome: total %d vs %d", total1, total2)
	}
}
