// Command pilot-salvage merges the spill fragments left by an aborted
// RobustLog run into a complete CLOG-2 file — the manual form of the
// automatic salvage PI_StopMain performs, for the cases where the whole
// process died before StopMain (panic, kill, power loss).
//
// Usage:
//
//	pilot-salvage [-o out.clog2] [-keep] PREFIX
//
// PREFIX is the JumpshotPath of the dead run; the tool reads
// PREFIX.defs.spill and PREFIX.rank<N>.spill.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/mpe"
)

func main() {
	out := flag.String("o", "", "output CLOG-2 path (default: PREFIX itself)")
	keep := flag.Bool("keep", false, "keep the spill fragments after salvaging")
	ranks := flag.Int("ranks", 256, "maximum rank number to look for when cleaning up")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pilot-salvage [-o out.clog2] [-keep] PREFIX")
		os.Exit(2)
	}
	prefix := flag.Arg(0)
	dst := *out
	if dst == "" {
		dst = prefix
	}
	f, err := os.Create(dst)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	n, err := mpe.Salvage(prefix, f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(dst)
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("salvaged %d rank fragment(s) -> %s\n", n, dst)
	if !*keep {
		mpe.RemoveSpills(prefix, *ranks)
	}
}
