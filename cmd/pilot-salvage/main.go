// Command pilot-salvage merges the spill fragments left by an aborted
// RobustLog run into a complete CLOG-2 file — the manual form of the
// automatic salvage PI_StopMain performs, for the cases where the whole
// process died before StopMain (panic, kill, power loss).
//
// Usage:
//
//	pilot-salvage [-o out.clog2] [-keep] [-q] PREFIX
//
// PREFIX is the JumpshotPath of the dead run; the tool discovers
// PREFIX.defs.spill and every PREFIX.rank<N>.spill by globbing, so no
// rank is out of range. It prints a per-rank damage report and exits 0
// on a full recovery, 4 when records were recovered but something was
// lost (corrupted segments, quarantined bytes, synthesized definitions),
// and 1 when nothing could be salvaged at all.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/idx"
	"repro/internal/mpe"
)

func main() {
	out := flag.String("o", "", "output CLOG-2 path (default: PREFIX itself)")
	keep := flag.Bool("keep", false, "keep the spill fragments after salvaging")
	quiet := flag.Bool("q", false, "suppress the per-rank report (errors still print)")
	ranks := flag.Int("ranks", 0, "deprecated, ignored: fragments are discovered by globbing")
	flag.Parse()
	_ = *ranks
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pilot-salvage [-o out.clog2] [-keep] [-q] PREFIX")
		os.Exit(2)
	}
	prefix := flag.Arg(0)
	dst := *out
	if dst == "" {
		dst = prefix
	}
	f, err := os.Create(dst)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rep, err := mpe.SalvageWithReport(prefix, f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(dst)
		fmt.Fprintln(os.Stderr, "pilot-salvage:", err)
		os.Exit(1)
	}
	if rep.RanksRecovered == 0 {
		os.Remove(dst)
		fmt.Fprintln(os.Stderr, "pilot-salvage: no records recovered from any rank fragment")
		os.Exit(1)
	}
	// Rebuild the index sidecar for the salvaged log, like the normal
	// merge does inline. Best-effort: the sidecar is an accelerator and
	// every consumer degrades to the full scan without it.
	if ix, ierr := idx.BuildFile(dst); ierr == nil {
		if werr := idx.WriteFileFor(dst, ix); werr == nil && !*quiet {
			fmt.Printf("index -> %s\n", idx.SidecarPath(dst))
		}
	}
	if !*quiet {
		fmt.Println(rep)
	}
	fmt.Printf("salvaged %s -> %s\n", rep.Summary(), dst)
	if !*keep {
		mpe.RemoveSpills(prefix, 0)
	}
	if !rep.Clean() {
		os.Exit(4)
	}
}
