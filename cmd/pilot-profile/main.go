// Command pilot-profile computes a post-run statistics report from a
// CLOG-2 log: per-channel and per-rank message totals, per-state
// duration quantiles (p50/p95/max) and a busy-vs-blocked breakdown —
// the numbers a timeline shows as pictures, as text or JSON.
//
// Usage:
//
//	pilot-profile [-json] [-o out] [-t0 T] [-t1 T] run.clog2
//
// By default the report prints as aligned text tables; -json emits the
// machine-readable form (schema "pilot-profile/1"). -o writes to a file
// instead of stdout. -t0/-t1 restrict the profile to records whose
// timestamps fall in the inclusive window [t0, t1] — the windowed
// profile of a long run without streaming the world: when a valid
// ".idx" sidecar sits next to the log, only the blocks the window can
// touch are decoded (falling back to the full scan when the sidecar is
// absent, stale, or invalid; the answers are identical either way).
// Definition records always pass the window, so state classification
// does not depend on where it lands. Exits 0 on success, 1 on a read or
// decode error, 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/stats"
)

func main() {
	asJSON := flag.Bool("json", false, "emit the profile as JSON instead of text tables")
	out := flag.String("o", "", "write the report to this file (default: stdout)")
	t0 := flag.Float64("t0", math.Inf(-1), "profile only records at or after this timestamp")
	t1 := flag.Float64("t1", math.Inf(1), "profile only records at or before this timestamp")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pilot-profile [-json] [-o out] [-t0 T] [-t1 T] run.clog2")
		os.Exit(2)
	}

	p, _, err := stats.ComputeProfileFileWindowed(flag.Arg(0), *t0, *t1)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pilot-profile:", err)
		os.Exit(1)
	}

	var data []byte
	if *asJSON {
		data, err = p.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "pilot-profile:", err)
			os.Exit(1)
		}
	} else {
		data = []byte(p.Format())
	}

	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "pilot-profile:", err)
		os.Exit(1)
	}
}
