// Command pilotlog analyses Pilot's native text log (the -pisvc=c
// facility): it separates the conglomerated stream per process, counts
// calls, greps, and scores how interleaved the raw log is — a working
// illustration of why the paper replaced eyeballing this file with
// Jumpshot.
//
// Usage:
//
//	pilotlog [-proc NAME] [-grep PATTERN] [-summary] pilot.log
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/nativelog"
)

func main() {
	proc := flag.String("proc", "", "only entries from this process name")
	pattern := flag.String("grep", "", "only entries matching this pattern")
	summary := flag.Bool("summary", false, "print per-process call counts instead of entries")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pilotlog [-proc NAME] [-grep PATTERN] [-summary] pilot.log")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	entries, err := nativelog.Parse(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *summary {
		fmt.Print(nativelog.FormatSummary(entries))
		fmt.Printf("entries: %d, interleaving: %.0f%% of adjacent lines switch process\n",
			len(entries), nativelog.Interleaving(entries)*100)
		return
	}
	sel := entries
	if *pattern != "" {
		sel = nativelog.Grep(sel, *pattern)
	}
	if *proc != "" {
		sel = nativelog.ByProc(sel)[*proc]
	}
	for _, e := range sel {
		fmt.Printf("[%12.6f] %-10s %-18s %s\n", e.ArrivalTime, e.Proc, e.Op, e.Detail)
	}
	fmt.Printf("%d entr(ies)\n", len(sel))
}
