// Command pilot-serve hosts a repository of SLOG-2 traces over HTTP:
// tile queries (time×rank window at a zoom level, JSON or SVG) answered
// by walking only the frames intersecting the viewport, the legend and
// search endpoints, the .profile.json sidecars, and a built-in browser
// viewer at /. Production posture: LRU caches with singleflight
// collapse, ETag revalidation, gzip, graceful shutdown on
// SIGINT/SIGTERM, expvar at /debug/vars and pprof at /debug/pprof/.
//
// Usage:
//
//	pilot-serve -repo DIR [-addr :8080] [-max-traces N] [-max-tiles N]
//	pilot-serve -repo DIR -smoke
//
// -smoke starts the server on an ephemeral port, runs an end-to-end
// client check (tiles byte-agree with a direct render, legend, search,
// ETag revalidation, corrupt-file handling), then exits; it is what
// `make smoke-serve` runs against the golden traces.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"repro/internal/jumpshot"
	"repro/internal/serve"
	"repro/internal/slog2"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		repoDir   = flag.String("repo", "", "trace repository directory (required)")
		maxTraces = flag.Int("max-traces", 8, "decoded-trace LRU size")
		maxTiles  = flag.Int("max-tiles", 4096, "rendered-tile LRU size")
		smoke     = flag.Bool("smoke", false, "start on an ephemeral port, self-test, exit")
		quiet     = flag.Bool("q", false, "suppress per-error request logging")
	)
	flag.Parse()
	if *repoDir == "" {
		fmt.Fprintln(os.Stderr, "usage: pilot-serve -repo DIR [-addr :8080] [-smoke]")
		os.Exit(2)
	}

	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	srv, err := serve.New(serve.Config{
		RepoDir:   *repoDir,
		MaxTraces: *maxTraces,
		MaxTiles:  *maxTiles,
		Logf:      logf,
	})
	if err != nil {
		log.Fatal(err)
	}

	if *smoke {
		if err := runSmoke(srv, *repoDir); err != nil {
			log.Fatalf("smoke: FAIL: %v", err)
		}
		fmt.Println("smoke: ok")
		return
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	log.Printf("pilot-serve: serving %s on http://%s/", *repoDir, ln.Addr())
	if err := srv.Serve(ctx, ln); err != nil {
		log.Fatal(err)
	}
	log.Print("pilot-serve: drained, bye")
}

// runSmoke drives the server end to end through a real TCP client:
// every trace's tile must byte-agree with a direct Query+render, the
// legend and search endpoints must answer, ETag revalidation must 304,
// and a corrupt file must come back as an HTTP error, not a dead
// server.
func runSmoke(srv *serve.Server, repoDir string) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()
	base := "http://" + ln.Addr().String()

	get := func(path string, hdr map[string]string) (*http.Response, []byte, error) {
		req, err := http.NewRequest("GET", base+path, nil)
		if err != nil {
			return nil, nil, err
		}
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return nil, nil, err
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, body, err
	}

	check := func() error {
		traces, err := srv.Repo().List()
		if err != nil {
			return err
		}
		if len(traces) == 0 {
			return fmt.Errorf("repository %s holds no .slog2 traces", repoDir)
		}
		for _, info := range traces {
			f, err := slog2.ReadFile(filepath.Join(repoDir, info.ID+".slog2"))
			if err != nil {
				return fmt.Errorf("%s: direct decode: %v", info.ID, err)
			}
			tr := &serve.Trace{ID: info.ID, File: f}
			mid := f.Start + (f.End-f.Start)/2
			win := jumpshot.Window{T0: f.Start, T1: mid, RankLo: 0, RankHi: -1}
			tileURL := fmt.Sprintf("/trace/%s/tile?t0=%v&t1=%v", info.ID, win.T0, win.T1)

			resp, body, err := get(tileURL, nil)
			if err != nil {
				return err
			}
			if resp.StatusCode != 200 {
				return fmt.Errorf("%s: tile status %d", info.ID, resp.StatusCode)
			}
			want, err := serve.RenderTileJSON(tr, win)
			if err != nil {
				return err
			}
			if !bytes.Equal(body, want) {
				return fmt.Errorf("%s: served tile differs from direct Query+render", info.ID)
			}
			etag := resp.Header.Get("ETag")
			if etag == "" {
				return fmt.Errorf("%s: tile has no ETag", info.ID)
			}
			resp, body, err = get(tileURL, map[string]string{"If-None-Match": etag})
			if err != nil {
				return err
			}
			if resp.StatusCode != 304 || len(body) != 0 {
				return fmt.Errorf("%s: revalidation got %d with %d bytes, want empty 304",
					info.ID, resp.StatusCode, len(body))
			}
			if resp, _, err = get(tileURL+"&format=svg&zoom=1", nil); err != nil || resp.StatusCode != 200 {
				return fmt.Errorf("%s: svg tile status %v %v", info.ID, resp.StatusCode, err)
			}
			if resp, _, err = get("/trace/"+info.ID+"/legend", nil); err != nil || resp.StatusCode != 200 {
				return fmt.Errorf("%s: legend status %v %v", info.ID, resp.StatusCode, err)
			}
			if resp, _, err = get("/search?trace="+info.ID+"&limit=3", nil); err != nil || resp.StatusCode != 200 {
				return fmt.Errorf("%s: search status %v %v", info.ID, resp.StatusCode, err)
			}
		}
		// Hostile input must be an HTTP error, never a dead server.
		resp, _, err := get("/trace/no-such-trace/tile", nil)
		if err != nil {
			return err
		}
		if resp.StatusCode != 404 {
			return fmt.Errorf("missing trace: status %d, want 404", resp.StatusCode)
		}
		resp, _, err = get("/trace/"+traces[0].ID+"/tile?zoom=99", nil)
		if err != nil {
			return err
		}
		if resp.StatusCode != 400 {
			return fmt.Errorf("bad zoom: status %d, want 400", resp.StatusCode)
		}
		if resp, _, err = get("/healthz", nil); err != nil || resp.StatusCode != 200 {
			return fmt.Errorf("healthz: %v %v", resp.StatusCode, err)
		}
		return nil
	}

	checkErr := check()
	cancel()
	if err := <-done; err != nil && checkErr == nil {
		checkErr = fmt.Errorf("graceful shutdown: %v", err)
	}
	return checkErr
}
