// Command pilot-collisions runs the paper's Section IV.B assignment: a
// parallel scan of a synthetic automotive-collision CSV followed by a
// series of queries. The -variant flag selects the intended solution
// ("fixed") or one of the two student submissions the paper diagnoses
// with the visual log: "a" serializes query processing by interleaving
// PI_Write/PI_Read pairs (Fig. 4); "b" makes PI_MAIN read the whole file
// while the workers idle (Fig. 5).
//
// Usage:
//
//	pilot-collisions [-pisvc=cdj] [-variant fixed|a|b] [-w 4] [-rows 200000]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/collisions"
	"repro/internal/core"
)

func main() {
	cfg := collisions.Config{}
	rest, err := core.ParseArgs(&cfg.Core, os.Args[1:])
	if err != nil {
		fatal(err)
	}
	var variant string
	fs := flag.NewFlagSet("pilot-collisions", flag.ExitOnError)
	fs.StringVar(&variant, "variant", "fixed", "program variant: fixed, a (serialized queries), b (sequential read)")
	fs.IntVar(&cfg.Workers, "w", 4, "number of worker processes")
	fs.IntVar(&cfg.Rows, "rows", 200000, "dataset rows (synthetic stand-in for the 316 MB file)")
	fs.IntVar(&cfg.QueryCost, "cost", 40, "per-row query work factor")
	fs.Int64Var(&cfg.Seed, "seed", 7, "dataset seed")
	fs.StringVar(&cfg.Core.JumpshotPath, "clog", "collisions.clog2", "CLOG-2 output path (with -pisvc=j)")
	fs.StringVar(&cfg.Core.NativePath, "log", "collisions.log", "native log path (with -pisvc=c)")
	if err := fs.Parse(rest); err != nil {
		fatal(err)
	}
	if cfg.Core.CheckLevel == 0 {
		cfg.Core.CheckLevel = 3
	}

	var res *collisions.Result
	switch variant {
	case "fixed":
		res, err = collisions.RunFixed(cfg)
	case "a":
		res, err = collisions.RunInstanceA(cfg)
	case "b":
		res, err = collisions.RunInstanceB(cfg)
	default:
		fatal(fmt.Errorf("unknown variant %q (want fixed, a, or b)", variant))
	}
	if err != nil {
		fatal(err)
	}
	for qi, a := range res.Answers {
		fmt.Printf("query %d: rows=%d fatalities=%d vehicles=%d\n", qi, a.Rows, a.Fatalities, a.Vehicles)
	}
	fmt.Printf("variant=%s workers=%d rows=%d: read %v, queries %v, total %v\n",
		variant, cfg.Workers, cfg.Rows, res.ReadPhase, res.QueryPhase, res.Elapsed)
	if res.Runtime.WrapUpTime() > 0 {
		fmt.Printf("log wrap-up %v -> %s\n", res.Runtime.WrapUpTime(), cfg.Core.JumpshotPath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
