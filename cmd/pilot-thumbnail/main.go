// Command pilot-thumbnail runs the paper's demonstration application
// (Section III.D): a PI_MAIN → decompressors → compressor → PI_MAIN
// pipeline producing thumbnails for a batch of synthetic JPEG-like
// images. This is the workload behind Figs. 1–2 and the Section III.E
// overhead table.
//
// Usage:
//
//	pilot-thumbnail [-pisvc=cdj] [-picheck=N] [-w 9] [-n 1058] [-out DIR] [-clog thumb.clog2]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/thumbnail"
)

func main() {
	cfg := thumbnail.Config{}
	rest, err := core.ParseArgs(&cfg.Core, os.Args[1:])
	if err != nil {
		fatal(err)
	}
	fs := flag.NewFlagSet("pilot-thumbnail", flag.ExitOnError)
	fs.IntVar(&cfg.Workers, "w", 9, "number of decompressor processes (the paper's Fig. 1 uses 9)")
	fs.IntVar(&cfg.NumImages, "n", 1058, "number of input images (the paper used 1058)")
	fs.IntVar(&cfg.ImageW, "iw", 192, "source image width")
	fs.IntVar(&cfg.ImageH, "ih", 128, "source image height")
	fs.IntVar(&cfg.Quality, "q", 75, "codec quality 1-100")
	fs.Int64Var(&cfg.Seed, "seed", 42, "image generator seed")
	fs.StringVar(&cfg.OutDir, "out", "", "directory for thumbnail files (empty = in-memory)")
	fs.StringVar(&cfg.Core.JumpshotPath, "clog", "thumb.clog2", "CLOG-2 output path (with -pisvc=j)")
	fs.StringVar(&cfg.Core.NativePath, "log", "thumb.log", "native log path (with -pisvc=c)")
	if err := fs.Parse(rest); err != nil {
		fatal(err)
	}
	if cfg.Core.CheckLevel == 0 {
		cfg.Core.CheckLevel = 3
	}

	res, err := thumbnail.Run(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("thumbnails: %d  input: %d B  output: %d B (%.1fx smaller)\n",
		res.Thumbnails, res.InputBytes, res.OutputBytes,
		float64(res.InputBytes)/float64(res.OutputBytes))
	traffic := res.Runtime.Traffic()
	fmt.Printf("messages: %d (%d B on the wire)\n", traffic.Sent, traffic.SentBytes)
	fmt.Printf("elapsed %v", res.Elapsed)
	if res.WrapUp > 0 {
		fmt.Printf(", log wrap-up %v -> %s", res.WrapUp, cfg.Core.JumpshotPath)
	}
	fmt.Println()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
