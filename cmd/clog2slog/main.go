// Command clog2slog converts a CLOG-2 logfile to SLOG-2 — the paper's
// "preferred" two-step pipeline, whose conversion step surfaces problems
// with the log contents (unmatched messages, nesting errors, and the
// "Equal Drawables" warning caused by limited clock resolution) and
// exposes the frame-size parameter that governs how much data the viewer
// initially displays.
//
// Usage:
//
//	clog2slog [-framesize N] [-workers N] [-o out.slog2] in.clog2
//
// -workers sizes the conversion worker pool (0 = one per CPU); the output
// is byte-identical at any worker count. Unless -noindex is given, the
// conversion also rebuilds the input's ".idx" index sidecar when it is
// missing or stale, so converted logs answer windowed queries fast.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/idx"
	"repro/vis"
)

func main() {
	frameSize := flag.Int("framesize", 0, "maximum drawables per frame (0 = default 256)")
	workers := flag.Int("workers", 0, "conversion worker-pool size (0 = one per CPU)")
	out := flag.String("o", "", "output path (default: input with .slog2 suffix)")
	quiet := flag.Bool("q", false, "suppress per-warning output")
	profile := flag.Bool("profile", false, "also write a stats profile next to the SLOG-2 (*.profile.json)")
	noIndex := flag.Bool("noindex", false, "do not rebuild the input's .idx index sidecar")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: clog2slog [-framesize N] [-workers N] [-o out.slog2] [-profile] in.clog2")
		os.Exit(2)
	}
	in := flag.Arg(0)
	dst := *out
	if dst == "" {
		dst = in + ".slog2"
	}

	f, rep, err := vis.ConvertFile(in, vis.ConvertOptions{FrameCapacity: *frameSize, Workers: *workers})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := vis.WriteSLOG2(dst, f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s: %d states, %d arrows, %d events over [%.6f, %.6f]s, %d ranks -> %s\n",
		in, rep.States, rep.Arrows, rep.Events, f.Start, f.End, f.NumRanks, dst)
	// Rebuild the input's index sidecar when it is missing or stale.
	// Best-effort (the sidecar only accelerates; consumers degrade to the
	// full scan without it), and skipped when a valid one already exists.
	if !*noIndex && idx.Probe(in) != idx.StatusOK {
		if ix, ierr := idx.BuildFile(in); ierr == nil {
			if werr := idx.WriteFileFor(in, ix); werr == nil && !*quiet {
				fmt.Printf("index -> %s\n", idx.SidecarPath(in))
			}
		}
	}
	if *profile {
		p, err := vis.ComputeProfileFile(in)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		pp := vis.ProfilePath(dst)
		if err := p.WriteJSON(pp); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("profile -> %s\n", pp)
	}
	if !*quiet {
		for _, w := range rep.Warnings {
			fmt.Fprintf(os.Stderr, "warning: %s\n", w)
		}
	}
	if rep.EqualDrawables > 0 {
		fmt.Fprintf(os.Stderr, "warning: %d Equal Drawables (consider enabling the arrow-spread delay)\n", rep.EqualDrawables)
	}
	if rep.UnmatchedSends+rep.UnmatchedRecvs+rep.NestingErrors > 0 {
		os.Exit(3) // non-well-behaved log, as the paper warns can happen
	}
}
