// Command pilot-lab2 runs the paper's Fig. 3 hands-on exercise: W workers
// sum portions of an array and report subtotals to PI_MAIN. With
// -pisvc=j it writes the CLOG-2 visual log; pipe it through clog2slog and
// jumpshot to regenerate Fig. 3.
//
// Usage:
//
//	pilot-lab2 [-pisvc=cdj] [-picheck=N] [-w 5] [-num 10000] [-caret] [-clog lab2.clog2]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/lab2"
)

func main() {
	cfg := lab2.Config{}
	rest, err := core.ParseArgs(&cfg.Core, os.Args[1:])
	if err != nil {
		fatal(err)
	}
	fs := flag.NewFlagSet("pilot-lab2", flag.ExitOnError)
	fs.IntVar(&cfg.W, "w", 5, "number of workers")
	fs.IntVar(&cfg.NUM, "num", 10000, "data array size")
	fs.Int64Var(&cfg.Seed, "seed", 1, "random seed")
	fs.BoolVar(&cfg.UseCaret, "caret", false, "use the V2.1 %^d single-call form (footnote 3)")
	fs.StringVar(&cfg.Core.JumpshotPath, "clog", "lab2.clog2", "CLOG-2 output path (with -pisvc=j)")
	fs.StringVar(&cfg.Core.NativePath, "log", "lab2.log", "native log path (with -pisvc=c)")
	if err := fs.Parse(rest); err != nil {
		fatal(err)
	}
	if cfg.Core.CheckLevel == 0 {
		cfg.Core.CheckLevel = 3
	}

	res, err := lab2.Run(cfg)
	if err != nil {
		fatal(err)
	}
	for i, s := range res.Subtotals {
		fmt.Printf("Worker #%d reports sum = %d\n", i, s)
	}
	fmt.Printf("Grand total = %d\n", res.Total)
	fmt.Printf("elapsed %v", res.Elapsed)
	if res.Runtime.WrapUpTime() > 0 {
		fmt.Printf(", log wrap-up %v -> %s", res.Runtime.WrapUpTime(), cfg.Core.JumpshotPath)
	}
	fmt.Println()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
