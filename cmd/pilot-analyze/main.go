// Command pilot-analyze turns a CLOG-2 log into verdicts: a detector
// catalogue for communication pathologies (hotspot channels, send/recv
// imbalance, barrier stragglers, mailbox backlog, blocked-time
// dominators, injected-fault correlation), or a diff of two runs of the
// same program localizing the first divergent rank/op.
//
// Usage:
//
//	pilot-analyze [-json] [-o out] [-t0 T] [-t1 T] [-svg out.svg] [-html out.html] run.clog2
//	pilot-analyze -diff [-json] [-o out] clean.clog2 faulted.clog2
//
// By default the verdict prints as text; -json emits the
// machine-readable form (schema "pilot-analyze/1", or
// "pilot-analyze-diff/1" with -diff). -o writes to a file instead of
// stdout. -t0/-t1 restrict the analysis window like pilot-profile; a
// matching ".profile.json" sidecar is reused for whole-run analyses and
// a ".idx" sidecar accelerates windowed ones. -svg/-html additionally
// render the run's timeline with each finding drawn as an annotation
// where it happened. Exits 0 when the run is clean (or the diff is
// identical), 3 when findings or a divergence were reported, 1 on a
// read or decode error, 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/analyze"
	"repro/vis"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "pilot-analyze:", err)
	os.Exit(1)
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: pilot-analyze [-json] [-o out] [-t0 T] [-t1 T] [-svg out.svg] [-html out.html] run.clog2")
	fmt.Fprintln(os.Stderr, "       pilot-analyze -diff [-json] [-o out] clean.clog2 faulted.clog2")
	os.Exit(2)
}

func emit(data []byte, out string) {
	if out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fail(err)
	}
}

func main() {
	diff := flag.Bool("diff", false, "diff two runs by per-rank op sequence instead of analyzing one")
	asJSON := flag.Bool("json", false, "emit the verdict as JSON instead of text")
	out := flag.String("o", "", "write the report to this file (default: stdout)")
	t0 := flag.Float64("t0", math.Inf(-1), "analyze only records at or after this timestamp")
	t1 := flag.Float64("t1", math.Inf(1), "analyze only records at or before this timestamp")
	svgOut := flag.String("svg", "", "also render the timeline with findings annotated to this SVG file")
	htmlOut := flag.String("html", "", "also render the interactive timeline with findings annotated to this HTML file")
	flag.Parse()

	if *diff {
		if flag.NArg() != 2 || *svgOut != "" || *htmlOut != "" {
			usage()
		}
		rep, err := analyze.DiffFiles(flag.Arg(0), flag.Arg(1), analyze.DiffOptions{})
		if err != nil {
			fail(err)
		}
		var data []byte
		if *asJSON {
			data, err = rep.JSON()
			if err != nil {
				fail(err)
			}
		} else {
			data = []byte(rep.Format())
		}
		emit(data, *out)
		if !rep.Identical {
			os.Exit(3)
		}
		return
	}

	if flag.NArg() != 1 {
		usage()
	}
	path := flag.Arg(0)
	rep, err := analyze.AnalyzeFile(path, analyze.Options{T0: *t0, T1: *t1})
	if err != nil {
		fail(err)
	}

	var data []byte
	if *asJSON {
		data, err = rep.JSON()
		if err != nil {
			fail(err)
		}
	} else {
		data = []byte(rep.Format())
	}
	emit(data, *out)

	if *svgOut != "" || *htmlOut != "" {
		f, _, err := vis.ConvertFile(path, vis.ConvertOptions{})
		if err != nil {
			fail(err)
		}
		v := vis.View{Title: path, Annotations: vis.Annotations(rep)}
		if *svgOut != "" {
			if err := vis.RenderSVGFile(*svgOut, f, v); err != nil {
				fail(err)
			}
		}
		if *htmlOut != "" {
			if err := vis.RenderHTMLFile(*htmlOut, f, v); err != nil {
				fail(err)
			}
		}
	}

	if !rep.Clean {
		os.Exit(3)
	}
}
