// Command pilot-bench regenerates every table and figure in the paper's
// evaluation:
//
//	t1  Section III.E overhead table (no-log / MPE / native; 5 and 10
//	    work processes; error-level sweep; wrap-up times)
//	f1  Fig. 1 — thumbnail application, full timeline
//	f2  Fig. 2 — thumbnail application, zoomed in
//	f3  Fig. 3 — lab2 visual log
//	f4  Fig. 4 — student instance A (serialized query processing)
//	f5  Fig. 5 — student instance B (sequential initialization)
//	a1  ablation: arrow spread vs Equal Drawables (Section III.C)
//	a2  ablation: conversion frame size (Section II.A)
//	a3  ablation: log survival across PI_Abort (Section III.B)
//
// Figures are written as SVG into -out. Absolute times depend on the
// machine; pilot-bench prints shape checks against the paper's
// qualitative claims.
//
// pilot-bench -overhead runs the logging-overhead harness instead: micro
// benchmarks of single MPE calls plus ping-pong workload cells at
// increasing rank/message counts, with logging on and off, written as
// BENCH_overhead.json (-overhead-out). -transport adds raw ping-pong
// rows per rank substrate (in-process goroutines vs spawned OS processes
// over unix sockets or TCP); the spawned ranks are this binary
// re-executed, detected via mpi.Spawned at the top of main. With
// -compare baseline.json it also diffs against a committed baseline and
// exits 1 when a micro row's ns/op regressed past 2x (above the
// shared-machine noise band — tight budgets are gated within a single
// run, where both sides see the same machine conditions).
// -index-mb sizes the synthesized log the index-query rows measure
// seek-vs-scan windowed queries on (0 skips them); the run itself gates
// the inline index emission to at most 5% merge time and no extra
// steady-state allocations.
//
// Usage:
//
//	pilot-bench [-exp all|t1|f1|f2|f3|f4|f5|a1|a2|a3] [-out out] [-runs 5] [-images 120] [-rows 60000] [-workers 0]
//	pilot-bench -overhead [-overhead-out BENCH_overhead.json] [-compare BENCH_overhead.json] [-transport inproc,socket,tcp] [-index-mb 256]
package main

import (
	_ "expvar" // registers /debug/vars on the default mux
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/mpi"
)

func main() {
	if mpi.Spawned() {
		// This process is a spawned rank of a multi-process benchmark
		// world (the -overhead transport rows re-execute this binary):
		// become that rank instead of parsing flags and orchestrating.
		if err := experiments.TransportPingPongChild(); err != nil {
			fmt.Fprintf(os.Stderr, "pilot-bench: spawned rank: %v\n", err)
			os.Exit(1)
		}
		return
	}
	var (
		exp     = flag.String("exp", "all", "experiment id or comma list: t1,f1,f2,f3,f4,f5,a1,a2,a3")
		outDir  = flag.String("out", "out", "output directory for figures and logs")
		runs    = flag.Int("runs", 5, "repetitions per timed cell (paper: 10)")
		images  = flag.Int("images", 120, "thumbnail batch size (paper: 1058)")
		rows    = flag.Int("rows", 60000, "collision dataset rows")
		workers = flag.Int("workers", 0, "CLOG-2 -> SLOG-2 conversion worker-pool size (0 = one per CPU)")
		faults  = flag.String("faults", "", "fault-injection plan, e.g. 'seed=7;delay:rank=*,prob=0.1,dur=2ms;crash:rank=2,op=40'")

		metricsAddr = flag.String("metrics-addr", "", "serve live metrics over HTTP on this address (expvar /debug/vars, pprof /debug/pprof); also enables the stats collector in every run")

		overhead    = flag.Bool("overhead", false, "run the logging-overhead harness and write a BENCH_overhead.json report")
		overheadOut = flag.String("overhead-out", "BENCH_overhead.json", "output path for the -overhead report")
		compare     = flag.String("compare", "", "baseline BENCH_overhead.json to diff against (exit 1 on >2x micro ns/op regression)")
		transports  = flag.String("transport", "inproc,socket", "comma list of rank substrates the -overhead harness times ping-pong rows on: inproc,socket,tcp")
		indexMB     = flag.Int("index-mb", 256, "size of the synthesized log the -overhead index-query rows run seek-vs-scan queries on (0 = skip)")

		analyzeBench = flag.Bool("analyze", false, "run the analyzer-throughput harness (pilot-analyze verdict and self-diff passes over a synthesized log, ns per MB) and merge the rows into -overhead-out")
		analyzeMB    = flag.Int("analyze-mb", 64, "size of the synthesized log the -analyze harness measures verdict/diff passes on")

		serveLoad    = flag.Bool("serve", false, "run the tile-service load harness (cold vs cached tile latency, singleflight check) and merge the rows into -overhead-out")
		serveRepo    = flag.String("serve-repo", "", "trace repository the -serve harness serves (empty = synthesize a dense one)")
		serveClients = flag.Int("serve-clients", 32, "concurrent clients for the -serve harness")
		serveReqs    = flag.Int("serve-requests", 16, "tile requests per client per phase for the -serve harness")
	)
	flag.Parse()
	opt := experiments.Options{
		OutDir:  *outDir,
		Runs:    *runs,
		Images:  *images,
		Rows:    *rows,
		Workers: *workers,
		Log:     os.Stdout,
	}
	if *faults != "" {
		plan, err := mpi.ParseFaultPlan(*faults)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pilot-bench: bad -faults spec: %v\n", err)
			os.Exit(2)
		}
		opt.Faults = plan
	}
	if *metricsAddr != "" {
		opt.Metrics = true
		ln, err := newMetricsListener(*metricsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pilot-bench: -metrics-addr: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("metrics: http://%s/debug/vars (pilot_stats), /debug/pprof\n", ln.Addr())
		go func() {
			// The default mux already carries expvar and pprof via the
			// blank imports above; the live collector appears there as
			// "pilot_stats" once the first run publishes it.
			if err := http.Serve(ln, nil); err != nil {
				fmt.Fprintf(os.Stderr, "pilot-bench: metrics server: %v\n", err)
			}
		}()
	}

	if *analyzeBench {
		runAnalyzeBench(opt, *analyzeMB, *overheadOut)
		return
	}

	if *serveLoad {
		runServeLoad(*serveRepo, *serveClients, *serveReqs, *overheadOut)
		return
	}

	if *overhead {
		for _, tr := range strings.Split(*transports, ",") {
			if tr = strings.TrimSpace(tr); tr != "" {
				opt.Transports = append(opt.Transports, tr)
			}
		}
		runOverhead(opt, *overheadOut, *compare, *indexMB)
		return
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var f1 *experiments.F1Result
	if all || want["t1"] {
		fmt.Println("== T1: overhead table (Section III.E) ==")
		rows, err := experiments.RunT1(opt)
		if err != nil {
			fail(err)
		}
		fmt.Println("-- shape checks vs paper --")
		for _, line := range experiments.T1Shape(rows) {
			fmt.Println(line)
		}
	}
	if all || want["f1"] || want["f2"] || want["a2"] {
		fmt.Println("== F1: thumbnail full timeline (Fig. 1) ==")
		var err error
		if f1, err = experiments.RunF1(opt); err != nil {
			fail(err)
		}
		if f1.ConversionErrors != 0 {
			fmt.Printf("MISS conversion errors = %d, paper reports none\n", f1.ConversionErrors)
		} else {
			fmt.Println("OK   clean CLOG-2 -> SLOG-2 conversion")
		}
	}
	if all || want["f2"] {
		fmt.Println("== F2: zoomed view (Fig. 2) ==")
		r, err := experiments.RunF2(opt, f1)
		if err != nil {
			fail(err)
		}
		verdict("compute dominates the zoomed window", r.ComputeFraction > 0.5,
			fmt.Sprintf("compute %.1f%%, I/O %.1f%%", r.ComputeFraction*100, r.IOFraction*100))
	}
	if all || want["f3"] {
		fmt.Println("== F3: lab2 visual log (Fig. 3) ==")
		r, err := experiments.RunF3(opt)
		if err != nil {
			fail(err)
		}
		verdict("6 timelines, 15/15/15 reads/writes/arrows",
			r.Timelines == 6 && r.Reads == 15 && r.Writes == 15 && r.Arrows == 15,
			fmt.Sprintf("timelines=%d reads=%d writes=%d arrows=%d", r.Timelines, r.Reads, r.Writes, r.Arrows))
		verdict("worker pattern red,red,green", r.SequencesOK, "")
		verdict("execution under ~3 ms", r.ElapsedMS < 30,
			fmt.Sprintf("%.3f ms (paper: under 3 ms on 2016 hardware)", r.ElapsedMS))
	}
	if all || want["f4"] {
		fmt.Println("== F4: instance A, serialized queries (Fig. 4) ==")
		r, err := experiments.RunF4(opt)
		if err != nil {
			fail(err)
		}
		verdict("instance A near-zero worker overlap", r.OverlapA < 0.45 && r.OverlapA < r.OverlapFixed,
			fmt.Sprintf("overlap A=%.3f vs fixed=%.3f", r.OverlapA, r.OverlapFixed))
		verdict("instance A slower than fixed", r.ElapsedASec > r.ElapsedFixedSec,
			fmt.Sprintf("A=%.3fs fixed=%.3fs", r.ElapsedASec, r.ElapsedFixedSec))
	}
	if all || want["f5"] {
		fmt.Println("== F5: instance B, sequential init (Fig. 5) ==")
		r, err := experiments.RunF5(opt)
		if err != nil {
			fail(err)
		}
		flat := r.ElapsedByWorkers[2]/r.ElapsedByWorkers[8] < 1.5
		verdict("instance B runtime flat vs workers", flat,
			fmt.Sprintf("w2=%.3fs w4=%.3fs w8=%.3fs", r.ElapsedByWorkers[2], r.ElapsedByWorkers[4], r.ElapsedByWorkers[8]))
		verdict("read phase dominates instance B", r.ReadShare > 0.5,
			fmt.Sprintf("read share %.0f%% (paper: 11 s init before fast queries)", r.ReadShare*100))
		verdict("fixed program does speed up", r.FixedSpeedup > 1.5,
			fmt.Sprintf("fixed 2->8 workers speedup %.2fx", r.FixedSpeedup))
	}
	if all || want["a1"] {
		fmt.Println("== A1: arrow spread vs Equal Drawables (Section III.C) ==")
		r, err := experiments.RunA1(opt)
		if err != nil {
			fail(err)
		}
		verdict("no spread -> Equal Drawables", r.EqualDrawablesNoSpread > 0,
			fmt.Sprintf("%d collisions", r.EqualDrawablesNoSpread))
		verdict("1 ms spread eliminates them", r.EqualDrawablesSpread == 0,
			fmt.Sprintf("%d collisions", r.EqualDrawablesSpread))
	}
	if all || want["a2"] {
		fmt.Println("== A2: conversion frame-size ablation (Section II.A) ==")
		rows, err := experiments.RunA2(opt, f1)
		if err != nil {
			fail(err)
		}
		deeper := rows[0].TreeDepth > rows[len(rows)-1].TreeDepth
		verdict("smaller frames -> deeper tree, bounded frames", deeper, "")
	}
	if all || want["a3"] {
		fmt.Println("== A3: log survival across PI_Abort (Section III.B) ==")
		r, err := experiments.RunA3(opt)
		if err != nil {
			fail(err)
		}
		verdict("MPE log lost on abort", !r.MPELogExists, "")
		verdict("native log survives abort", r.NativeLogExists,
			fmt.Sprintf("%d bytes", r.NativeLogBytes))
		verdict("future work: RobustLog salvages the visual log", r.SalvagedLogUsable,
			fmt.Sprintf("%d states recovered", r.SalvagedStates))
	}
	fmt.Printf("outputs in %s\n", *outDir)
}

// runOverhead runs the logging-overhead harness, writes the JSON report,
// and optionally diffs it against a committed baseline.
func runOverhead(opt experiments.Options, outPath, comparePath string, indexMB int) {
	fmt.Println("== overhead: logging hot-path micro/workload harness ==")
	rep, err := experiments.RunOverhead(opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if indexMB > 0 {
		fmt.Printf("== index_query: seek-vs-scan on a synthesized %d MB log ==\n", indexMB)
		rep.IndexQuery, err = experiments.RunIndexQuery(opt, indexMB, 5)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if err := rep.WriteJSON(outPath); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("report written to %s\n", outPath)
	if comparePath == "" {
		return
	}
	baseline, err := experiments.ReadOverheadReport(comparePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pilot-bench: reading baseline: %v\n", err)
		os.Exit(1)
	}
	// Cross-run ns/op comparison on a shared CI box is noisy at a level
	// no per-run statistic fixes: the machine moves between fast and
	// slow periods that swing identical-code measurements by up to ~60%
	// (CPU frequency modes for sub-100ns loops, I/O latency for spill
	// rows, scheduling for the multi-goroutine merge). Budgets that need
	// to be tight are therefore gated *within* one run, where both sides
	// see the same machine mode (the <=5% index-emission budget inside
	// RunOverhead, the exact 0-alloc gates); this cross-run gate sits
	// above the mode gap and catches the 2x+ regressions that survive
	// those in-run checks.
	const tolPct = 100
	fmt.Printf("-- vs baseline %s (micro rows gated at +%d%% ns/op) --\n", comparePath, tolPct)
	deltas, regressed := experiments.CompareOverhead(baseline, rep, tolPct)
	for _, d := range deltas {
		fmt.Println(d)
	}
	if regressed {
		fmt.Fprintln(os.Stderr, "pilot-bench: logging hot path regressed beyond tolerance")
		os.Exit(1)
	}
	fmt.Println("no regression beyond tolerance")
}

// runAnalyzeBench runs the analyzer-throughput harness and merges its
// rows into the BENCH_overhead.json report at outPath, updating the
// analyze section in place when the report already exists so the other
// sections survive a re-run.
func runAnalyzeBench(opt experiments.Options, sizeMB int, outPath string) {
	fmt.Println("== analyze: verdict/diff throughput harness ==")
	rows, err := experiments.RunAnalyzeBench(opt, sizeMB, 5)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rep, err := experiments.ReadOverheadReport(outPath)
	if err != nil {
		if !os.IsNotExist(err) {
			fmt.Fprintf(os.Stderr, "pilot-bench: reading %s: %v\n", outPath, err)
			os.Exit(1)
		}
		rep = &experiments.OverheadReport{}
	}
	rep.Analyze = rows
	if err := rep.WriteJSON(outPath); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("analyze rows merged into %s\n", outPath)
}

// runServeLoad runs the tile-service load harness and merges its rows
// into the BENCH_overhead.json report at outPath — updating the serve
// section in place when the report already exists, so the logging rows
// survive a -serve re-run (and vice versa).
func runServeLoad(repoDir string, clients, perClient int, outPath string) {
	fmt.Println("== serve: tile-service load harness ==")
	rows, err := experiments.RunServeLoad(experiments.ServeLoadOptions{
		RepoDir:   repoDir,
		Clients:   clients,
		PerClient: perClient,
		Logf: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rep, err := experiments.ReadOverheadReport(outPath)
	if err != nil {
		if !os.IsNotExist(err) {
			fmt.Fprintf(os.Stderr, "pilot-bench: reading %s: %v\n", outPath, err)
			os.Exit(1)
		}
		rep = &experiments.OverheadReport{}
	}
	rep.Serve = rows
	if err := rep.WriteJSON(outPath); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("serve rows merged into %s\n", outPath)
	cold, cached := rows[0], rows[1]
	verdict("singleflight: one decode per trace", cold.Decodes == int64(cold.Traces),
		fmt.Sprintf("%d decodes / %d traces at %d clients", cold.Decodes, cold.Traces, cold.Clients))
	verdict("cached p50 at least 5x faster than cold", cached.P50Ms*5 <= cold.P50Ms,
		fmt.Sprintf("cold %.3f ms vs cached %.3f ms (%.1fx)", cold.P50Ms, cached.P50Ms, cold.P50Ms/cached.P50Ms))
}

// newMetricsListener binds the -metrics-addr endpoint up front so a bad
// address fails fast instead of surfacing mid-run from the goroutine.
func newMetricsListener(addr string) (net.Listener, error) {
	return net.Listen("tcp", addr)
}

func verdict(name string, ok bool, detail string) {
	v := "OK  "
	if !ok {
		v = "MISS"
	}
	if detail != "" {
		fmt.Printf("%s %-40s %s\n", v, name, detail)
	} else {
		fmt.Printf("%s %s\n", v, name)
	}
}
