// coverfloor holds per-package statement coverage above checked-in
// floors. It parses a `go test -coverprofile` file directly — no
// `go tool cover` dependency — aggregates covered statements per
// package, and exits nonzero when any -floor package falls below its
// threshold (or vanishes from the profile entirely, which usually means
// a package was renamed without updating the Makefile).
//
// Usage:
//
//	coverfloor -floor repro/internal/stats=85 [-floor pkg=pct ...] cover.out
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path"
	"sort"
	"strconv"
	"strings"
)

// floorFlag collects repeated -floor pkg=pct arguments.
type floorFlag struct {
	pkgs []string
	pcts map[string]float64
}

func (f *floorFlag) String() string { return fmt.Sprint(f.pkgs) }

func (f *floorFlag) Set(v string) error {
	pkg, pctStr, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want pkg=pct, got %q", v)
	}
	pct, err := strconv.ParseFloat(pctStr, 64)
	if err != nil || pct < 0 || pct > 100 {
		return fmt.Errorf("bad percentage in %q", v)
	}
	if f.pcts == nil {
		f.pcts = map[string]float64{}
	}
	if _, dup := f.pcts[pkg]; !dup {
		f.pkgs = append(f.pkgs, pkg)
	}
	f.pcts[pkg] = pct
	return nil
}

type pkgCover struct{ covered, total int64 }

type block struct {
	stmts int64
	hit   bool
}

// parseProfile aggregates statement counts per package directory. A
// profile produced by `go test ./...` repeats every block once per test
// binary (most with zero hits), so blocks are deduplicated by position
// and a block counts as covered when any occurrence has hits.
func parseProfile(p string) (map[string]*pkgCover, error) {
	f, err := os.Open(p)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	blocks := map[string]*block{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "mode:") {
			continue
		}
		// file.go:sl.sc,el.ec numStmts hitCount
		pos, counts, ok := cutLast(line, " ")
		pos, stmtStr, ok2 := cutLast(pos, " ")
		if !ok || !ok2 {
			return nil, fmt.Errorf("%s:%d: want `pos stmts hits`, got %q", p, lineNo, line)
		}
		stmts, err := strconv.ParseInt(stmtStr, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad statement count: %v", p, lineNo, err)
		}
		hits, err := strconv.ParseInt(counts, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad hit count: %v", p, lineNo, err)
		}
		b := blocks[pos]
		if b == nil {
			b = &block{stmts: stmts}
			blocks[pos] = b
		}
		b.hit = b.hit || hits > 0
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	pkgs := map[string]*pkgCover{}
	for pos, b := range blocks {
		file, _, ok := strings.Cut(pos, ":")
		if !ok {
			return nil, fmt.Errorf("%s: block position %q has no file", p, pos)
		}
		pkg := path.Dir(file)
		pc := pkgs[pkg]
		if pc == nil {
			pc = &pkgCover{}
			pkgs[pkg] = pc
		}
		pc.total += b.stmts
		if b.hit {
			pc.covered += b.stmts
		}
	}
	return pkgs, nil
}

// cutLast splits around the final occurrence of sep.
func cutLast(s, sep string) (before, after string, found bool) {
	i := strings.LastIndex(s, sep)
	if i < 0 {
		return s, "", false
	}
	return s[:i], s[i+len(sep):], true
}

func pct(c *pkgCover) float64 {
	if c == nil || c.total == 0 {
		return 0
	}
	return 100 * float64(c.covered) / float64(c.total)
}

func main() {
	var floors floorFlag
	flag.Var(&floors, "floor", "pkg=pct minimum statement coverage (repeatable)")
	all := flag.Bool("all", false, "also print packages without a floor")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: coverfloor [-floor pkg=pct ...] [-all] cover.out")
		os.Exit(2)
	}
	pkgs, err := parseProfile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "coverfloor:", err)
		os.Exit(1)
	}

	failed := false
	for _, pkg := range floors.pkgs {
		floor := floors.pcts[pkg]
		pc, ok := pkgs[pkg]
		switch {
		case !ok:
			fmt.Printf("FAIL %-32s absent from profile (floor %.0f%%)\n", pkg, floor)
			failed = true
		case pct(pc) < floor:
			fmt.Printf("FAIL %-32s %6.1f%% < floor %.0f%% (%d/%d stmts)\n",
				pkg, pct(pc), floor, pc.covered, pc.total)
			failed = true
		default:
			fmt.Printf("ok   %-32s %6.1f%% >= floor %.0f%% (%d/%d stmts)\n",
				pkg, pct(pc), floor, pc.covered, pc.total)
		}
	}
	if *all {
		var rest []string
		for pkg := range pkgs {
			if _, ok := floors.pcts[pkg]; !ok {
				rest = append(rest, pkg)
			}
		}
		sort.Strings(rest)
		for _, pkg := range rest {
			fmt.Printf("     %-32s %6.1f%%\n", pkg, pct(pkgs[pkg]))
		}
	}
	if failed {
		os.Exit(1)
	}
}
