// Command clogdump prints the raw records of a CLOG-2 file — the
// diagnostic use the paper gives for keeping the two-step conversion
// pipeline: "the conversion step can be useful for diagnosing problems
// with the log contents, say, due to improper use of MPE's API".
//
// Usage:
//
//	clogdump [-rank N] [-type NAME] [-defs] in.clog2
//
// Works on spill fragments from aborted runs too (lenient parsing).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/clog2"
)

func main() {
	rank := flag.Int("rank", -1, "only records from this rank")
	typ := flag.String("type", "", "only records of this type (StateDef, CargoEvt, MsgEvt, ...)")
	defsOnly := flag.Bool("defs", false, "only definition records")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: clogdump [-rank N] [-type NAME] [-defs] in.clog2")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	log, complete, err := clog2.ReadLenient(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if !complete {
		fmt.Fprintln(os.Stderr, "warning: file is torn (no end-log marker); showing complete blocks only")
	}
	fmt.Printf("ranks: %d, blocks: %d\n", log.NumRanks, len(log.Blocks))
	n := 0
	for _, b := range log.Blocks {
		for _, rec := range b.Records {
			if *rank >= 0 && int(rec.Rank) != *rank {
				continue
			}
			if *typ != "" && !strings.EqualFold(rec.Type.String(), *typ) {
				continue
			}
			isDef := rec.Type == clog2.RecStateDef || rec.Type == clog2.RecEventDef || rec.Type == clog2.RecConstDef
			if *defsOnly && !isDef {
				continue
			}
			fmt.Println(formatRecord(rec))
			n++
		}
	}
	fmt.Printf("%d record(s)\n", n)
}

func formatRecord(r clog2.Record) string {
	base := fmt.Sprintf("[%14.6f] r%-3d %-9s", r.Time, r.Rank, r.Type)
	switch r.Type {
	case clog2.RecStateDef:
		return fmt.Sprintf("%s id=%d start=%d end=%d color=%s name=%q", base, r.ID, r.Aux1, r.Aux2, r.Color, r.Name)
	case clog2.RecEventDef:
		return fmt.Sprintf("%s etype=%d color=%s name=%q", base, r.ID, r.Color, r.Name)
	case clog2.RecConstDef:
		return fmt.Sprintf("%s etype=%d value=%d name=%q", base, r.ID, r.Aux1, r.Name)
	case clog2.RecBareEvt:
		return fmt.Sprintf("%s etype=%d", base, r.ID)
	case clog2.RecCargoEvt:
		return fmt.Sprintf("%s etype=%d cargo=%q", base, r.ID, r.CargoText())
	case clog2.RecMsgEvt:
		dir := "send"
		if r.Dir == clog2.DirRecv {
			dir = "recv"
		}
		return fmt.Sprintf("%s %s peer=%d tag=%d size=%d", base, dir, r.Aux1, r.Aux2, r.Aux3)
	case clog2.RecTimeShift:
		return fmt.Sprintf("%s shift=%+.9f", base, r.Shift)
	case clog2.RecSrcLoc:
		return fmt.Sprintf("%s line=%d file=%q", base, r.Aux1, r.Text)
	}
	return base
}
