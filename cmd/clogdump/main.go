// Command clogdump prints the raw records of a CLOG-2 file — the
// diagnostic use the paper gives for keeping the two-step conversion
// pipeline: "the conversion step can be useful for diagnosing problems
// with the log contents, say, due to improper use of MPE's API".
//
// Usage:
//
//	clogdump [-rank N] [-type NAME] [-defs] [-t0 T] [-t1 T] [-channel C] [-noindex] in.clog2
//
// -t0/-t1 bound the time window (inclusive; definition records are
// metadata and always pass the window), -rank keeps one rank's records,
// -channel keeps message events on one channel (tag). When a valid
// ".idx" sidecar sits next to the file, filtered dumps seek straight to
// the blocks the query can touch instead of decoding the whole log; the
// output is identical either way, and -noindex forces the full scan.
// Works on spill fragments from aborted runs too (lenient parsing).
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"repro/internal/clog2"
	"repro/internal/idx"
)

func main() {
	rank := flag.Int("rank", -1, "only records from this rank")
	typ := flag.String("type", "", "only records of this type (StateDef, CargoEvt, MsgEvt, ...)")
	defsOnly := flag.Bool("defs", false, "only definition records")
	t0 := flag.Float64("t0", math.Inf(-1), "only records at or after this timestamp (defs always pass)")
	t1 := flag.Float64("t1", math.Inf(1), "only records at or before this timestamp (defs always pass)")
	channel := flag.Int("channel", -1, "only message events on this channel (tag)")
	noIndex := flag.Bool("noindex", false, "ignore any .idx sidecar and scan the whole file")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: clogdump [-rank N] [-type NAME] [-defs] [-t0 T] [-t1 T] [-channel C] [-noindex] in.clog2")
		os.Exit(2)
	}
	path := flag.Arg(0)

	q := idx.Query{T0: *t0, T1: *t1, Rank: int32(*rank), Chan: int32(*channel), IncludeDefs: true}
	match := func(rec *clog2.Record) bool {
		if !q.Matches(rec) {
			return false
		}
		if *typ != "" && !strings.EqualFold(rec.Type.String(), *typ) {
			return false
		}
		if *defsOnly {
			switch rec.Type {
			case clog2.RecStateDef, clog2.RecEventDef, clog2.RecConstDef:
			default:
				return false
			}
		}
		return true
	}

	if !*noIndex {
		if ix, err := idx.Load(path); err == nil {
			if dumpIndexed(path, ix, q, match) {
				return
			}
			// The index validated but disagreed with the file mid-scan;
			// fall through to the authoritative full scan.
		}
	}
	dumpScan(path, match)
}

// dumpIndexed seeks through only the blocks the query can touch. Output
// is buffered until the scan completes so a mid-scan index/file mismatch
// can fall back to the full scan without half a dump already printed;
// filtered dumps are small by construction (that is the point of the
// filters).
func dumpIndexed(path string, ix *idx.Index, q idx.Query, match func(*clog2.Record) bool) bool {
	var out bytes.Buffer
	fmt.Fprintf(&out, "ranks: %d, blocks: %d\n", ix.NumRanks, len(ix.Blocks))
	n := 0
	err := idx.ScanFile(path, ix, ix.Select(q), func(b clog2.Block) error {
		for i := range b.Records {
			if match(&b.Records[i]) {
				fmt.Fprintln(&out, formatRecord(b.Records[i]))
				n++
			}
		}
		return nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "warning: index disagrees with the file (%v); re-answering with a full scan\n", err)
		return false
	}
	fmt.Fprintf(&out, "%d record(s)\n", n)
	io.Copy(os.Stdout, &out)
	return true
}

// dumpScan is the authoritative full scan: every block decoded in file
// order, lenient about torn tails from aborted runs.
func dumpScan(path string, match func(*clog2.Record) bool) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	log, complete, err := clog2.ReadLenient(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if !complete {
		fmt.Fprintln(os.Stderr, "warning: file is torn (no end-log marker); showing complete blocks only")
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintf(w, "ranks: %d, blocks: %d\n", log.NumRanks, len(log.Blocks))
	n := 0
	for _, b := range log.Blocks {
		for i := range b.Records {
			if match(&b.Records[i]) {
				fmt.Fprintln(w, formatRecord(b.Records[i]))
				n++
			}
		}
	}
	fmt.Fprintf(w, "%d record(s)\n", n)
}

func formatRecord(r clog2.Record) string {
	base := fmt.Sprintf("[%14.6f] r%-3d %-9s", r.Time, r.Rank, r.Type)
	switch r.Type {
	case clog2.RecStateDef:
		return fmt.Sprintf("%s id=%d start=%d end=%d color=%s name=%q", base, r.ID, r.Aux1, r.Aux2, r.Color, r.Name)
	case clog2.RecEventDef:
		return fmt.Sprintf("%s etype=%d color=%s name=%q", base, r.ID, r.Color, r.Name)
	case clog2.RecConstDef:
		return fmt.Sprintf("%s etype=%d value=%d name=%q", base, r.ID, r.Aux1, r.Name)
	case clog2.RecBareEvt:
		return fmt.Sprintf("%s etype=%d", base, r.ID)
	case clog2.RecCargoEvt:
		return fmt.Sprintf("%s etype=%d cargo=%q", base, r.ID, r.CargoText())
	case clog2.RecMsgEvt:
		dir := "send"
		if r.Dir == clog2.DirRecv {
			dir = "recv"
		}
		return fmt.Sprintf("%s %s peer=%d tag=%d size=%d", base, dir, r.Aux1, r.Aux2, r.Aux3)
	case clog2.RecTimeShift:
		return fmt.Sprintf("%s shift=%+.9f", base, r.Shift)
	case clog2.RecSrcLoc:
		return fmt.Sprintf("%s line=%d file=%q", base, r.Aux1, r.Text)
	}
	return base
}
