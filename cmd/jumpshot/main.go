// Command jumpshot renders SLOG-2 logfiles the way the Jumpshot-4 viewer
// displays them: timelines with coloured state rectangles, event bubbles
// and message arrows (SVG), plus the legend window's statistics, duration
// statistics for a selected window, search-and-scan, and a terminal ASCII
// view.
//
// Usage:
//
//	jumpshot [-from T -to T] [-svg out.svg] [-ascii] [-legend] [-stats] [-search NAME] in.slog2
//
// A .clog2 input is converted on the fly (the integrated logfile
// converter the paper mentions).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/vis"
)

func main() {
	var (
		from     = flag.Float64("from", 0, "viewport start (seconds)")
		to       = flag.Float64("to", 0, "viewport end (0 = whole log)")
		svgOut   = flag.String("svg", "", "write an SVG rendering to this path")
		htmlOut  = flag.String("html", "", "write a self-contained interactive HTML viewer to this path")
		ascii    = flag.Bool("ascii", false, "print an ASCII timeline")
		legend   = flag.Bool("legend", false, "print the legend table (count/incl/excl)")
		stats    = flag.Bool("stats", false, "print per-rank duration statistics for the viewport")
		search   = flag.String("search", "", "search drawables by category name substring")
		sortKey  = flag.String("sort", "name", "legend sort key: name, count, incl, excl")
		width    = flag.Int("width", 1200, "SVG width / ASCII columns")
		title    = flag.String("title", "", "SVG title")
		statsSVG = flag.String("stats-svg", "", "write the duration-statistics chart to this path")
		order    = flag.String("order", "", "timeline cut/paste: comma-separated rank order, e.g. 0,3,1")
		expand   = flag.String("expand", "", "vertical expansion, e.g. 1=3,4=2 (rank=multiplier)")
		chrome   = flag.String("chrome", "", "export Chrome trace-event JSON (chrome://tracing, Perfetto) to this path")
		at       = flag.String("at", "", "describe drawables under RANK:TIME, e.g. -at 3:0.0012")
		waits    = flag.Bool("waits", false, "print the who-waits-on-whom matrix for the viewport")
		critpath = flag.Bool("critpath", false, "print the critical path (the chain determining wall-clock time)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: jumpshot [options] in.slog2|in.clog2")
		os.Exit(2)
	}
	in := flag.Arg(0)

	var f *vis.File
	var err error
	if strings.HasSuffix(in, ".clog2") {
		var rep *vis.Report
		f, rep, err = vis.ConvertFile(in, vis.ConvertOptions{})
		if err == nil {
			for _, w := range rep.Warnings {
				fmt.Fprintf(os.Stderr, "convert warning: %s\n", w)
			}
		}
	} else {
		f, err = vis.ReadSLOG2(in)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	t0, t1 := *from, *to
	if t1 <= t0 {
		t0, t1 = f.Start, f.End
	}
	view := vis.View{From: t0, To: t1, Width: *width, Title: *title}
	if *order != "" {
		for _, part := range strings.Split(*order, ",") {
			var r int
			if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &r); err == nil {
				view.RankOrder = append(view.RankOrder, r)
			}
		}
	}
	if *expand != "" {
		view.Expand = map[int]int{}
		for _, part := range strings.Split(*expand, ",") {
			var r, m int
			if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d=%d", &r, &m); err == nil {
				view.Expand[r] = m
			}
		}
	}

	did := false
	if *htmlOut != "" {
		if err := vis.RenderHTMLFile(*htmlOut, f, view); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (interactive: wheel zoom, drag scroll)\n", *htmlOut)
		did = true
	}
	if *svgOut != "" {
		if err := vis.RenderSVGFile(*svgOut, f, view); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (viewport [%.6f, %.6f]s, %d ranks)\n", *svgOut, t0, t1, f.NumRanks)
		did = true
	}
	if *ascii {
		fmt.Print(vis.RenderASCII(f, view))
		did = true
	}
	if *legend {
		entries := vis.Legend(f, t0, t1)
		vis.SortLegend(entries, *sortKey)
		fmt.Print(vis.FormatLegend(entries))
		did = true
	}
	if *stats {
		fmt.Print(vis.FormatStats(f, vis.Stats(f, t0, t1)))
		did = true
	}
	if *statsSVG != "" {
		svg := vis.RenderStatsSVG(f, t0, t1, *title)
		if err := os.WriteFile(*statsSVG, []byte(svg), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *statsSVG)
		did = true
	}
	if *search != "" {
		hits := vis.Search(f, vis.SearchOptions{Name: *search, Rank: -1, From: t0, To: t1})
		fmt.Print(vis.FormatHits(hits))
		fmt.Printf("%d hit(s)\n", len(hits))
		did = true
	}
	if *waits {
		fmt.Print(vis.FormatWaitMatrix(vis.WaitMatrix(f, t0, t1)))
		did = true
	}
	if *critpath {
		fmt.Print(vis.FormatCriticalPath(vis.CriticalPath(f)))
		did = true
	}
	if *chrome != "" {
		data, err := vis.RenderChromeTrace(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*chrome, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (open in chrome://tracing or Perfetto)\n", *chrome)
		did = true
	}
	if *at != "" {
		var rank int
		var tm float64
		if _, err := fmt.Sscanf(*at, "%d:%g", &rank, &tm); err != nil {
			fmt.Fprintf(os.Stderr, "bad -at value %q (want RANK:TIME)\n", *at)
			os.Exit(2)
		}
		for _, line := range vis.At(f, rank, tm) {
			fmt.Println(line)
		}
		did = true
	}
	if !did {
		// Default: a quick summary plus the ASCII view.
		fmt.Printf("%s: %d ranks, [%.6f, %.6f]s, %d categories, %d warnings\n",
			in, f.NumRanks, f.Start, f.End, len(f.Categories), len(f.Warnings))
		fmt.Print(vis.RenderASCII(f, view))
	}
}
