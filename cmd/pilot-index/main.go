// Command pilot-index manages the ".idx" index sidecars that let
// CLOG-2 consumers seek to the blocks a time/rank/channel query can
// touch instead of streaming the whole log.
//
// Usage:
//
//	pilot-index build  run.clog2   rebuild the sidecar (full scan)
//	pilot-index info   run.clog2   print the sidecar's state and summary
//	pilot-index verify run.clog2   prove indexed == full-scan answers
//
// verify builds a sidecar if none is valid, then replays a battery of
// windowed profile and record-selection queries through both the
// indexed and full-scan paths and exits 1 on any disagreement — the
// equality contract the whole index design rests on, checkable on any
// log. Exits 0 on success, 1 on error or mismatch, 2 on usage errors.
package main

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/clog2"
	"repro/internal/idx"
	"repro/internal/stats"
)

func main() {
	if len(os.Args) != 3 {
		usage()
	}
	cmd, path := os.Args[1], os.Args[2]
	var err error
	switch cmd {
	case "build":
		err = runBuild(path)
	case "info":
		err = runInfo(path)
	case "verify":
		err = runVerify(path)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pilot-index:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: pilot-index build|info|verify run.clog2")
	os.Exit(2)
}

func runBuild(path string) error {
	ix, err := idx.BuildFile(path)
	if err != nil {
		return err
	}
	if err := idx.WriteFileFor(path, ix); err != nil {
		return err
	}
	fmt.Printf("%s: %d block(s), %d record(s), %d channel(s), %d etype(s) -> %s\n",
		path, len(ix.Blocks), ix.TotalRecords, len(ix.Channels), len(ix.Etypes),
		idx.SidecarPath(path))
	return nil
}

func runInfo(path string) error {
	st := idx.Probe(path)
	fmt.Printf("sidecar: %s (%s)\n", idx.SidecarPath(path), st)
	if st != idx.StatusOK {
		return nil
	}
	ix, err := idx.Load(path)
	if err != nil {
		return err
	}
	tmin, tmax := timeSpan(ix)
	fmt.Printf("ranks: %d, blocks: %d, records: %d\n", ix.NumRanks, len(ix.Blocks), ix.TotalRecords)
	if tmin <= tmax {
		fmt.Printf("time span: [%.6f, %.6f]s\n", tmin, tmax)
	}
	for _, c := range ix.Channels {
		fmt.Printf("chan C%-4d %8d send(s) / %8d recv(s), %10d / %10d byte(s)\n",
			c.Chan, c.Sends, c.Recvs, c.SendBytes, c.RecvBytes)
	}
	fmt.Printf("%d etype(s) counted\n", len(ix.Etypes))
	return nil
}

// timeSpan folds the block fences into the whole-file event time span.
func timeSpan(ix *idx.Index) (tmin, tmax float64) {
	tmin, tmax = math.Inf(1), math.Inf(-1)
	for i := range ix.Blocks {
		b := &ix.Blocks[i]
		if b.Records <= b.Defs {
			continue
		}
		tmin = math.Min(tmin, b.TMin)
		tmax = math.Max(tmax, b.TMax)
	}
	return tmin, tmax
}

func runVerify(path string) error {
	ix, err := idx.Load(path)
	if err != nil {
		fmt.Printf("sidecar %s: %v; rebuilding\n", idx.SidecarPath(path), err)
		if ix, err = idx.BuildFile(path); err != nil {
			return err
		}
		if err := idx.WriteFileFor(path, ix); err != nil {
			return err
		}
	}
	// Invariant 1: the sidecar on disk must equal a from-scratch rebuild
	// (modulo the generation stamp) — inline merge emission and the
	// full-scan rebuild describe the same file identically.
	rebuilt, err := idx.BuildFile(path)
	if err != nil {
		return err
	}
	rebuilt.SourceSize, rebuilt.SourceModNanos = ix.SourceSize, ix.SourceModNanos
	if !bytes.Equal(idx.Encode(rebuilt), idx.Encode(ix)) {
		return fmt.Errorf("%s: sidecar does not match a full-scan rebuild", path)
	}

	// Invariant 2: windowed profiles agree between the indexed and
	// full-scan paths, across a battery of windows derived from the
	// file's own time span (plus an empty window past the end).
	tmin, tmax := timeSpan(ix)
	if tmin > tmax {
		tmin, tmax = 0, 0
	}
	mid := tmin + (tmax-tmin)/2
	windows := [][2]float64{
		{math.Inf(-1), math.Inf(1)},
		{tmin, tmax},
		{tmin, mid},
		{mid, tmax},
		{tmin + (tmax-tmin)/4, tmin + 3*(tmax-tmin)/4},
		{tmax + 1, tmax + 2}, // empty
	}
	checked := 0
	for _, w := range windows {
		if err := verifyProfileWindow(path, ix, w[0], w[1]); err != nil {
			return err
		}
		checked++
	}

	// Invariant 3: record selection (the clogdump filters) agrees for
	// time, rank and channel queries.
	queries := []idx.Query{}
	for r := 0; r < ix.NumRanks && r < 8; r++ {
		q := idx.MatchAll()
		q.Rank = int32(r)
		q.IncludeDefs = true
		queries = append(queries, q)
	}
	for i, c := range ix.Channels {
		if i == 8 {
			break
		}
		q := idx.MatchAll()
		q.Chan = c.Chan
		q.IncludeDefs = true
		queries = append(queries, q)
	}
	for _, w := range windows {
		q := idx.MatchAll()
		q.T0, q.T1 = w[0], w[1]
		q.IncludeDefs = true
		queries = append(queries, q)
	}
	for _, q := range queries {
		if err := verifySelection(path, ix, q); err != nil {
			return err
		}
		checked++
	}
	fmt.Printf("%s: %d indexed quer(ies) byte-identical to the full scan\n", path, checked)
	return nil
}

func verifyProfileWindow(path string, ix *idx.Index, t0, t1 float64) error {
	indexed, err := profileIndexed(path, ix, t0, t1)
	if err != nil {
		return fmt.Errorf("indexed profile [%g,%g]: %w", t0, t1, err)
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	scanned, err := stats.ComputeProfileWindowed(f, t0, t1)
	f.Close()
	if err != nil {
		return err
	}
	a, err := indexed.JSON()
	if err != nil {
		return err
	}
	b, err := scanned.JSON()
	if err != nil {
		return err
	}
	if !bytes.Equal(a, b) {
		return fmt.Errorf("window [%g,%g]: indexed profile differs from full scan", t0, t1)
	}
	return nil
}

// profileIndexed forces the index path (unlike ComputeProfileFileWindowed,
// which silently falls back — useless for proving equality).
func profileIndexed(path string, ix *idx.Index, t0, t1 float64) (*stats.Profile, error) {
	return stats.ComputeProfileIndexed(path, ix, t0, t1)
}

func verifySelection(path string, ix *idx.Index, q idx.Query) error {
	var indexed []clog2.Record
	err := idx.ScanFile(path, ix, ix.Select(q), func(b clog2.Block) error {
		for i := range b.Records {
			if q.Matches(&b.Records[i]) {
				indexed = append(indexed, b.Records[i])
			}
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("indexed selection %+v: %w", q, err)
	}
	var scanned []clog2.Record
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	br, err := clog2.NewBlockReader(f)
	if err != nil {
		return err
	}
	for {
		b, err := br.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		for i := range b.Records {
			if q.Matches(&b.Records[i]) {
				scanned = append(scanned, b.Records[i])
			}
		}
	}
	if len(indexed) != len(scanned) {
		return fmt.Errorf("query %+v: indexed selected %d record(s), full scan %d", q, len(indexed), len(scanned))
	}
	for i := range indexed {
		if indexed[i] != scanned[i] {
			return fmt.Errorf("query %+v: record %d differs between indexed and full scan", q, i)
		}
	}
	return nil
}
