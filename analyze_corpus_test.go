// The labelled corpus behind pilot-analyze: the three example programs
// run under seeded fault plans (op-level and wire-level), each plan
// labelled with the pathology it plants, and the analyzer must achieve
// recall 1.0 — every planted pathology flagged by its detector — while
// staying completely quiet on clean runs (zero false positives). The
// diff half of the tool is held to the acceptance criterion directly:
// for a seeded stall, crash and wire-fault scenario, `-diff` against a
// clean twin must localize the first divergent rank/op.
//
// Wired into CI as `make smoke-analyze`.
package repro_test

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/analyze"
	"repro/internal/core"
	"repro/internal/lab2"
	"repro/internal/mpi"
	"repro/internal/thumbnail"
)

// corpusLab2 runs one lab2 configuration (W=4, so ranks 0..4) with the
// given fault spec ("" = clean) and returns the diagnosed outcome. The
// CLOG-2 lands at clog; robust turns on spill-file salvage so crashed
// runs still leave a log.
func corpusLab2(t *testing.T, name, clog, spec, services string, robust bool) string {
	t.Helper()
	var plan *mpi.FaultPlan
	if spec != "" {
		p, err := mpi.ParseFaultPlan(spec)
		if err != nil {
			t.Fatalf("%s: bad spec %q: %v", name, spec, err)
		}
		plan = p
	}
	cfg := lab2.Config{W: 4, NUM: 400, Seed: 1}
	cfg.Core = core.Config{
		Services:      services,
		CheckLevel:    3,
		DeadlockGrace: 250 * time.Millisecond,
		ArrowSpread:   -1,
		RobustLog:     robust,
		JumpshotPath:  clog,
		NativePath:    clog + ".log",
		Stderr:        io.Discard,
		Faults:        plan,
	}
	runErr := withDeadline(t, name, 60*time.Second, func() error {
		_, err := lab2.Run(cfg)
		return err
	})
	return classify(runErr)
}

// corpusThumbnail runs the thumbnail pipeline (rank 0 = PI_MAIN, rank 1
// = the compressor C, ranks 2.. = decompressors D_i).
func corpusThumbnail(t *testing.T, name, clog, spec string, workers, images int) string {
	t.Helper()
	var plan *mpi.FaultPlan
	if spec != "" {
		p, err := mpi.ParseFaultPlan(spec)
		if err != nil {
			t.Fatalf("%s: bad spec %q: %v", name, spec, err)
		}
		plan = p
	}
	cfg := thumbnail.Config{
		Workers: workers, NumImages: images, ImageW: 64, ImageH: 48, Seed: 3,
		Core: core.Config{
			Services:     "j",
			CheckLevel:   3,
			ArrowSpread:  -1,
			JumpshotPath: clog,
			NativePath:   clog + ".log",
			Stderr:       io.Discard,
			Faults:       plan,
		},
	}
	runErr := withDeadline(t, name, 90*time.Second, func() error {
		_, err := thumbnail.Run(cfg)
		return err
	})
	return classify(runErr)
}

// mustAnalyze analyzes one corpus log, failing the test on any decode or
// analysis error — a corpus log that cannot be analyzed is itself a bug.
func mustAnalyze(t *testing.T, name, clog string) *analyze.Report {
	t.Helper()
	rep, err := analyze.AnalyzeFile(clog, analyze.Options{})
	if err != nil {
		t.Fatalf("%s: analyze %s: %v", name, clog, err)
	}
	return rep
}

// TestAnalyzeCorpusCleanRuns is the zero-false-positive half of the
// corpus: each example program, run fault-free with MPE logging, must
// analyze to a completely clean verdict.
func TestAnalyzeCorpusCleanRuns(t *testing.T) {
	t.Run("lab2", func(t *testing.T) {
		t.Parallel()
		clog := filepath.Join(t.TempDir(), "clean-lab2.clog2")
		if outcome := corpusLab2(t, "clean lab2", clog, "", "j", false); outcome != "clean" {
			t.Fatalf("clean lab2 run ended %q", outcome)
		}
		assertCleanVerdict(t, "clean lab2", clog)
	})
	t.Run("thumbnail", func(t *testing.T) {
		t.Parallel()
		clog := filepath.Join(t.TempDir(), "clean-thumbnail.clog2")
		if outcome := corpusThumbnail(t, "clean thumbnail", clog, "", 3, 12); outcome != "clean" {
			t.Fatalf("clean thumbnail run ended %q", outcome)
		}
		assertCleanVerdict(t, "clean thumbnail", clog)
	})
	t.Run("collisions", func(t *testing.T) {
		t.Parallel()
		clog := filepath.Join(t.TempDir(), "clean-collisions.clog2")
		if outcome := corpusCollisions(t, "clean collisions", clog, ""); outcome != "clean" {
			t.Fatalf("clean collisions run ended %q", outcome)
		}
		assertCleanVerdict(t, "clean collisions", clog)
	})
}

func assertCleanVerdict(t *testing.T, name, clog string) {
	t.Helper()
	rep := mustAnalyze(t, name, clog)
	if !rep.Clean || len(rep.Findings) != 0 {
		t.Fatalf("%s: detector false positive(s) on a fault-free run:\n%s", name, rep.Format())
	}
}

// analyzeCorpusCells is the labelled fault corpus: each cell is a seeded
// fault plan plus the detectors its pathology must trip. A cell may trip
// detectors beyond its label (a stalled rank is also a straggler to its
// peers); recall is what is asserted, per label.
var analyzeCorpusCells = []struct {
	name string
	// plants are the detectors that MUST fire on this cell's log.
	plants []string
	// outcome is the required diagnosed terminal state of the run.
	outcome string
	gen     func(t *testing.T, dir string) string
}{
	{
		// A 500ms stall at worker rank 2's third op (write subtotal)
		// parks that rank inside PI_Write while the master sits in
		// PI_Read waiting for it: a single outlier in each state cohort
		// (straggler, both sides) and an Output-blocked rank (dominator).
		name:    "stall-lab2",
		plants:  []string{analyze.DetStraggler, analyze.DetDominator, analyze.DetFault},
		outcome: "clean",
		gen: func(t *testing.T, dir string) string {
			clog := filepath.Join(dir, "stall-lab2.clog2")
			outcome := corpusLab2(t, "stall-lab2", clog,
				"seed=1;stall:rank=2,op=3,dur=500ms", "j", false)
			if outcome != "clean" {
				t.Fatalf("stall-lab2 ended %q, want clean", outcome)
			}
			return clog
		},
	},
	{
		// A delivery delay on worker rank 2's sends holds its subtotal
		// inside the write — the rank spends its whole wall Output-blocked
		// (dominator) and both it and the waiting master are cohort
		// outliers (straggler).
		name:    "delay-lab2",
		plants:  []string{analyze.DetStraggler, analyze.DetDominator, analyze.DetFault},
		outcome: "clean",
		gen: func(t *testing.T, dir string) string {
			clog := filepath.Join(dir, "delay-lab2.clog2")
			outcome := corpusLab2(t, "delay-lab2", clog,
				"seed=2;delay:rank=2,prob=1,dur=400ms", "j", false)
			if outcome != "clean" {
				t.Fatalf("delay-lab2 ended %q, want clean", outcome)
			}
			return clog
		},
	},
	{
		// Forcing the master's sends to rendezvous while its first
		// receiver sits in a 400ms stall blocks the master inside
		// PI_Write for nearly its whole wall time — the blocked-time
		// dominator signature on an Output state.
		name:    "rendezvous-lab2",
		plants:  []string{analyze.DetDominator, analyze.DetFault},
		outcome: "clean",
		gen: func(t *testing.T, dir string) string {
			clog := filepath.Join(dir, "rendezvous-lab2.clog2")
			outcome := corpusLab2(t, "rendezvous-lab2", clog,
				"seed=3;rendezvous:rank=0,prob=1;stall:rank=2,op=1,dur=400ms", "j", false)
			if outcome != "clean" {
				t.Fatalf("rendezvous-lab2 ended %q, want clean", outcome)
			}
			return clog
		},
	},
	{
		// One decompressor feeding a compressor that stalls 800ms before
		// its first read: PI_MAIN keeps dispatching (the D worker's
		// forwarding writes are eager), so the raw-pixel channel
		// accumulates a standing backlog deeper than the threshold and
		// carries nearly all of the run's in-flight latency (hotspot).
		name:    "backlog-thumbnail",
		plants:  []string{analyze.DetBacklog, analyze.DetHotspot, analyze.DetFault},
		outcome: "clean",
		gen: func(t *testing.T, dir string) string {
			clog := filepath.Join(dir, "backlog-thumbnail.clog2")
			outcome := corpusThumbnail(t, "backlog-thumbnail", clog,
				"seed=5;stall:rank=1,op=1,dur=800ms", 1, 12)
			if outcome != "clean" {
				t.Fatalf("backlog-thumbnail ended %q, want clean", outcome)
			}
			return clog
		},
	},
	{
		// Worker rank 2 dies at its first op (before reading anything).
		// The master's eager writes to it are already in the log, the
		// matching reads never happen, and the deadlock detector's
		// diagnosis events land in the salvaged log — imbalance plus
		// fault correlation.
		name:    "crash-lab2",
		plants:  []string{analyze.DetImbalance, analyze.DetFault},
		outcome: "deadlock",
		gen: func(t *testing.T, dir string) string {
			clog := filepath.Join(dir, "crash-lab2.clog2")
			outcome := corpusLab2(t, "crash-lab2", clog,
				"seed=4;crash:rank=2,op=1", "dj", true)
			if outcome != "deadlock" {
				t.Fatalf("crash-lab2 ended %q, want deadlock", outcome)
			}
			return clog
		},
	},
}

// TestAnalyzeCorpusRecall is the recall-1.0 half of the corpus: every
// cell's planted pathologies must be flagged by their detectors.
func TestAnalyzeCorpusRecall(t *testing.T) {
	for _, cell := range analyzeCorpusCells {
		cell := cell
		t.Run(cell.name, func(t *testing.T) {
			t.Parallel()
			clog := cell.gen(t, t.TempDir())
			rep := mustAnalyze(t, cell.name, clog)
			if rep.Clean {
				t.Fatalf("%s: planted %v but the verdict is clean", cell.name, cell.plants)
			}
			for _, det := range cell.plants {
				if !rep.HasDetector(det) {
					t.Errorf("%s: planted pathology %q not flagged (recall < 1.0)", cell.name, det)
				}
			}
			if t.Failed() {
				t.Logf("%s verdict:\n%s", cell.name, rep.Format())
			}
		})
	}
}

// TestAnalyzeCorpusDiffStall: acceptance criterion, stall scenario. A
// stall-faulted lab2 run differs from its clean twin only by the
// FaultInjected event recorded on the stalled rank, so the diff must
// localize the first divergence to rank 2 exactly.
func TestAnalyzeCorpusDiffStall(t *testing.T) {
	dir := t.TempDir()
	clean := filepath.Join(dir, "clean.clog2")
	faulted := filepath.Join(dir, "faulted.clog2")
	if outcome := corpusLab2(t, "diff-stall clean twin", clean, "", "j", false); outcome != "clean" {
		t.Fatalf("clean twin ended %q", outcome)
	}
	if outcome := corpusLab2(t, "diff-stall faulted", faulted,
		"seed=1;stall:rank=2,op=3,dur=500ms", "j", false); outcome != "clean" {
		t.Fatalf("faulted run ended %q", outcome)
	}
	rep, err := analyze.DiffFiles(clean, faulted, analyze.DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Identical {
		t.Fatal("stall-faulted run diffed identical to its clean twin")
	}
	if rep.First == nil {
		t.Fatal("divergent diff reported no first divergence")
	}
	if rep.First.Rank != 2 {
		t.Fatalf("first divergence at rank %d op %d (%s), want rank 2:\n%s",
			rep.First.Rank, rep.First.Op, rep.First.Kind, rep.Format())
	}
	t.Logf("stall localized: rank %d op %d (%s)", rep.First.Rank, rep.First.Op, rep.First.Kind)
}

// TestAnalyzeCorpusDiffCrash: acceptance criterion, crash scenario. The
// crashed rank's op sequence truncates where it died; the diff against a
// clean twin must report that rank's divergence.
func TestAnalyzeCorpusDiffCrash(t *testing.T) {
	dir := t.TempDir()
	clean := filepath.Join(dir, "clean.clog2")
	faulted := filepath.Join(dir, "faulted.clog2")
	if outcome := corpusLab2(t, "diff-crash clean twin", clean, "", "dj", true); outcome != "clean" {
		t.Fatalf("clean twin ended %q", outcome)
	}
	if outcome := corpusLab2(t, "diff-crash faulted", faulted,
		"seed=4;crash:rank=2,op=1", "dj", true); outcome != "deadlock" {
		t.Fatalf("faulted run ended %q, want deadlock", outcome)
	}
	rep, err := analyze.DiffFiles(clean, faulted, analyze.DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Identical {
		t.Fatal("crashed run diffed identical to its clean twin")
	}
	if rep.First == nil {
		t.Fatal("divergent diff reported no first divergence")
	}
	found := false
	for _, d := range rep.Divergences {
		if d.Rank == 2 {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no divergence reported for the crashed rank 2:\n%s", rep.Format())
	}
	t.Logf("crash localized: first divergence rank %d op %d (%s)",
		rep.First.Rank, rep.First.Op, rep.First.Kind)
}

// TestAnalyzeCorpusWireFault: acceptance criterion, wire scenario. lab2
// runs over the multi-process socket transport while the injector
// resets rank 2's link; with the reconnect window collapsed to 1ns the
// transport cannot resume, so the run must end in the diagnosed
// FaultAbortCode abort, its RobustLog salvage must still analyze, and
// the diff against a clean socket twin must localize where the
// truncated run diverged. Reuses the chaos-wire spawn plumbing
// (TestChaosWireChild hosts the spawned ranks).
func TestAnalyzeCorpusWireFault(t *testing.T) {
	if mpi.Spawned() {
		t.Skip("spawned rank")
	}
	if testing.Short() {
		t.Skip("spawns rank processes; skipped in -short")
	}
	dir := t.TempDir()

	// Clean twin first, before the reconnect window is collapsed. The
	// spawn plumbing requires a parseable plan, so the twin carries one
	// rule that can never fire (frame op far beyond the run's traffic).
	clean := filepath.Join(dir, "clean.clog2")
	if err, check := chaosWireRun("lab2", clean, "seed=6;wiredelay:rank=1,op=999999,dur=1ms"); err != nil {
		t.Fatalf("clean socket twin failed: %v", err)
	} else if err := check(); err != nil {
		t.Fatalf("clean socket twin wrong outcome: %v", err)
	}

	// Collapse the reconnect window (inherited by the spawned ranks), so
	// the first wire reset on rank 2's link is unrecoverable. prob=1
	// resets rank 2's link on its very first sequenced frame: the rank
	// is starved of its input data before it can log any progress, so
	// its salvaged op sequence is guaranteed shorter than the clean
	// twin's (a lower probability can let the abort land after every
	// rank already spilled its full sequence, diffing identical).
	t.Setenv("PILOT_MPI_RECONNECT_WINDOW", "1ns")
	faulted := filepath.Join(dir, "faulted.clog2")
	runErr, _ := chaosWireRun("lab2", faulted, "seed=6;wirereset:rank=2,prob=1")
	if runErr == nil {
		t.Fatal("wire-faulted run with a 1ns reconnect window completed cleanly")
	}
	want := fmt.Sprintf("aborted with code %d", mpi.FaultAbortCode)
	if !strings.Contains(runErr.Error(), want) {
		t.Fatalf("wire-faulted run failed undiagnosed: %v (want %q)", runErr, want)
	}
	if _, err := os.Stat(faulted); err != nil {
		t.Fatalf("no salvaged log after diagnosed abort: %v", err)
	}

	// The salvaged, truncated log must analyze without error.
	rep := mustAnalyze(t, "wire-fault salvage", faulted)
	t.Logf("wire-fault salvage verdict:\n%s", rep.Format())

	diff, err := analyze.DiffFiles(clean, faulted, analyze.DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if diff.Identical {
		t.Fatal("aborted wire run diffed identical to its clean twin")
	}
	if diff.First == nil {
		t.Fatal("divergent diff reported no first divergence")
	}
	t.Logf("wire fault localized: first divergence rank %d op %d (%s)",
		diff.First.Rank, diff.First.Op, diff.First.Kind)
}
