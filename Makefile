# Repro of "Log Visualization Tool for Message-Passing Programming in
# Pilot". `make ci` is the tier-1 gate: build, vet, and the full test
# suite under the race detector.

GO ?= go

.PHONY: all build vet test race ci cover bench bench-compare fuzz fuzz-smoke smoke-multiproc smoke-serve smoke-index smoke-analyze chaos chaos-wire clean

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

ci: build vet race fuzz-smoke cover smoke-multiproc smoke-serve smoke-index smoke-analyze chaos-wire

# Multi-process smoke: the lab2 exercise with every rank as its own OS
# process over the socket transport (-pitransport=socket re-executes the
# binary per rank), then the merged CLOG-2 — collected over the wire by
# rank 0 — must still convert to SLOG-2.
smoke-multiproc:
	@mkdir -p out
	$(GO) build -o out/pilot-lab2 ./cmd/pilot-lab2
	./out/pilot-lab2 -pisvc=j -pitransport=socket -w 3 -num 3000 -clog out/lab2-multiproc.clog2
	$(GO) run ./cmd/clog2slog -q -o out/lab2-multiproc.slog2 out/lab2-multiproc.clog2

# Trace-service smoke: stand pilot-serve up on a repository of the three
# golden traces (ephemeral port) and run its end-to-end self-test —
# tiles byte-agree with a direct Query+render, legend/search answer,
# ETag revalidation 304s, and hostile requests get HTTP errors instead
# of killing the server.
smoke-serve:
	@mkdir -p out/serve-repo
	cp testdata/golden/*.slog2 testdata/golden/*.profile.json out/serve-repo/
	$(GO) run ./cmd/pilot-serve -repo out/serve-repo -smoke -q

# Index-sidecar smoke: build a ".idx" for each golden trace and prove
# every indexed answer (windowed profiles, filtered record selections)
# byte-identical to the full scan; pilot-index exits 1 on the first
# disagreement. Runs on copies so the goldens stay pristine.
smoke-index:
	@mkdir -p out/idx-smoke
	cp testdata/golden/*.clog2 out/idx-smoke/
	$(GO) build -o out/pilot-index ./cmd/pilot-index
	./out/pilot-index build out/idx-smoke/lab2.clog2
	./out/pilot-index build out/idx-smoke/collisions.clog2
	./out/pilot-index build out/idx-smoke/thumbnail.clog2
	./out/pilot-index verify out/idx-smoke/lab2.clog2
	./out/pilot-index verify out/idx-smoke/collisions.clog2
	./out/pilot-index verify out/idx-smoke/thumbnail.clog2

# Analyzer corpus smoke: the labelled chaos corpus. Each cell runs a
# real example program under a seeded fault plan and asserts its
# planted pathologies are all flagged (recall = 1.0), clean runs of all
# three programs produce zero findings (no false positives), and
# `pilot-analyze -diff` localizes a seeded stall, crash, and wire fault
# to the faulted rank. The diff-alignment properties (self-diff empty,
# identically-seeded replays diff clean) sweep the chaos matrix seeds.
# Race-clean.
smoke-analyze:
	$(GO) test -race -run '^TestAnalyzeCorpus|^TestAnalyzeDiffProp' -v .

# Statement-coverage floors: run the whole suite with cross-package
# instrumentation, then hold the observability-critical packages above
# their checked-in minimums (coverfloor exits 1 below a floor).
cover:
	@mkdir -p out
	$(GO) test -coverprofile out/cover.out -coverpkg ./... ./... > /dev/null
	$(GO) run ./cmd/coverfloor \
		-floor repro/internal/stats=90 \
		-floor repro/internal/mpi=88 \
		-floor repro/internal/clog2=87 \
		-floor repro/internal/idx=85 \
		-floor repro/internal/analyze=85 \
		out/cover.out

# The logging-overhead harness (ns/op, B/op, allocs/op per Pilot call,
# with and without logging — BENCH_overhead.json), then the conversion
# and merge benchmarks: the parallel CLOG-2 -> SLOG-2 pipeline at
# several worker counts, plus the MPE wrap-up merge.
bench:
	$(GO) run ./cmd/pilot-bench -overhead -overhead-out BENCH_overhead.json
	$(GO) test -run '^$$' -bench 'BenchmarkConvertParallel|BenchmarkMPE_FinishMerge|BenchmarkF1_ConvertCLOGToSLOG' -benchmem .
	$(GO) test -run '^$$' -bench 'BenchmarkMailbox' -benchmem ./internal/mpi/

# Re-measure the logging hot path and diff against the committed
# BENCH_overhead.json baseline; fails when a micro row's ns/op regressed
# past 2x. The tolerance sits above the shared-machine noise band
# (identical code swings up to ~60% between machine load modes); tight
# budgets — the <=5% index-emission cost, the 0-alloc hot paths — are
# gated within a single run instead, where both sides see the same
# machine conditions.
bench-compare:
	$(GO) run ./cmd/pilot-bench -overhead -overhead-out out/BENCH_overhead.json -compare BENCH_overhead.json

# Short fuzz pass over the CLOG-2 reader (seed corpus runs in plain
# `make test` as well).
fuzz:
	$(GO) test ./internal/clog2/ -fuzz FuzzReadFile -fuzztime 30s
	$(GO) test ./internal/slog2/ -fuzz FuzzReadSLOG2 -fuzztime 30s
	$(GO) test ./internal/idx/ -fuzz FuzzReadIndex -fuzztime 30s
	$(GO) test ./internal/analyze/ -fuzz FuzzAnalyze -fuzztime 30s

# CI fuzz smoke: 5 seconds of coverage-guided fuzzing per target. Go only
# accepts one -fuzz target per invocation, hence one line per target.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzReadFile$$' -fuzztime 5s ./internal/clog2/
	$(GO) test -run '^$$' -fuzz '^FuzzSalvageSegments$$' -fuzztime 5s ./internal/clog2/
	$(GO) test -run '^$$' -fuzz '^FuzzSalvageFragment$$' -fuzztime 5s ./internal/mpe/
	$(GO) test -run '^$$' -fuzz '^FuzzReadSLOG2$$' -fuzztime 5s ./internal/slog2/
	$(GO) test -run '^$$' -fuzz '^FuzzReadIndex$$' -fuzztime 5s ./internal/idx/
	$(GO) test -run '^$$' -fuzz '^FuzzAnalyze$$' -fuzztime 5s ./internal/analyze/

# The kill/corrupt chaos harness: a real example under RobustLog is
# SIGKILLed at seeded points, its spill files further damaged, and every
# seed must still salvage into a convertible SLOG-2. Race-clean.
chaos:
	$(GO) test -race -run '^TestChaosKillSalvage$$' -v .

# The wire-fault chaos harness: lab2, thumbnail and collisions run over
# the multi-process socket transport while the seeded injector delays,
# corrupts, duplicates, drops, tears and stalls frames on every link.
# Every cell must terminate diagnosed within its deadline — transparent
# recovery with the clean-run outcome, or a FaultAbortCode abort whose
# salvaged log still converts — and a replayed seed must reproduce the
# same bucket and outcome. Cells run sequentially (each spawns its own
# rank processes). Race-clean.
chaos-wire:
	$(GO) test -race -run '^TestChaosWireSweep$$|^TestChaosWireReplay$$' -v .

clean:
	rm -rf out
