# Repro of "Log Visualization Tool for Message-Passing Programming in
# Pilot". `make ci` is the tier-1 gate: build, vet, and the full test
# suite under the race detector.

GO ?= go

.PHONY: all build vet test race ci bench fuzz clean

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

ci: build vet race

# Conversion and merge benchmarks with allocation counts: the parallel
# CLOG-2 -> SLOG-2 pipeline at several worker counts, plus the MPE
# wrap-up merge.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkConvertParallel|BenchmarkMPE_FinishMerge|BenchmarkF1_ConvertCLOGToSLOG' -benchmem .
	$(GO) test -run '^$$' -bench 'BenchmarkMailbox' -benchmem ./internal/mpi/

# Short fuzz pass over the CLOG-2 reader (seed corpus runs in plain
# `make test` as well).
fuzz:
	$(GO) test ./internal/clog2/ -fuzz FuzzReadFile -fuzztime 30s

clean:
	rm -rf out
