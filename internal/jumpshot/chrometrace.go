package jumpshot

import (
	"encoding/json"
	"fmt"

	"repro/internal/slog2"
)

// traceEvent is one Chrome trace-event record (the chrome://tracing and
// Perfetto JSON format).
type traceEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"` // microseconds
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	ID    int            `json:"id,omitempty"`
	BP    string         `json:"bp,omitempty"`
	Cat   string         `json:"cat,omitempty"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// RenderChromeTrace exports the log as Chrome trace-event JSON, openable
// in chrome://tracing or Perfetto: states become complete ("X") slices on
// one thread per rank, message arrows become flow events ("s"/"f"), and
// bubbles become instant events. The modern descendant of viewing an
// SLOG-2 in Jumpshot — same data, today's viewer.
func RenderChromeTrace(f *slog2.File) ([]byte, error) {
	states, arrows, events := f.All()
	toUS := func(t float64) float64 { return (t - f.Start) * 1e6 }

	out := make([]traceEvent, 0, len(states)+2*len(arrows)+len(events)+f.NumRanks)
	// Thread names: rank 0 = PI_MAIN, like the timeline labels.
	for r := 0; r < f.NumRanks; r++ {
		name := fmt.Sprintf("P%d", r)
		if r == 0 {
			name = "PI_MAIN"
		}
		out = append(out, traceEvent{
			Name: "thread_name", Phase: "M", PID: 0, TID: r,
			Args: map[string]any{"name": name},
		})
	}
	for _, s := range states {
		cat := f.Categories[s.Cat]
		ev := traceEvent{
			Name: cat.Name, Phase: "X", Cat: "state",
			TS: toUS(s.Start), Dur: toUS(s.End) - toUS(s.Start),
			PID: 0, TID: s.Rank,
		}
		if s.StartCargo != "" {
			ev.Args = map[string]any{"cargo": s.StartCargo}
		}
		out = append(out, ev)
	}
	for i, a := range arrows {
		args := map[string]any{"tag": a.Tag, "size": a.Size}
		out = append(out,
			traceEvent{Name: "message", Phase: "s", Cat: "msg",
				TS: toUS(a.Start), PID: 0, TID: a.SrcRank, ID: i + 1, Args: args},
			traceEvent{Name: "message", Phase: "f", BP: "e", Cat: "msg",
				TS: toUS(a.End), PID: 0, TID: a.DstRank, ID: i + 1, Args: args},
		)
	}
	for _, e := range events {
		ev := traceEvent{
			Name: f.Categories[e.Cat].Name, Phase: "i", Scope: "t",
			TS: toUS(e.Time), PID: 0, TID: e.Rank, Cat: "event",
		}
		if e.Cargo != "" {
			ev.Args = map[string]any{"cargo": e.Cargo}
		}
		out = append(out, ev)
	}
	return json.MarshalIndent(map[string]any{
		"traceEvents":     out,
		"displayTimeUnit": "ms",
	}, "", " ")
}

// At returns a popup-style description of the drawables at (rank, t) —
// the primitive behind "coloured bars and yellow bubbles can be clicked
// for detailed information". States are reported innermost first.
func At(f *slog2.File, rank int, t float64) []string {
	const eventSlop = 1e-6
	states, arrows, events := f.Query(t-eventSlop, t+eventSlop)
	var out []string
	// Innermost = shortest containing state first.
	var containing []slog2.State
	for _, s := range states {
		if s.Rank == rank && s.Start <= t && t <= s.End {
			containing = append(containing, s)
		}
	}
	for i := 0; i < len(containing); i++ {
		for j := i + 1; j < len(containing); j++ {
			if containing[j].Duration() < containing[i].Duration() {
				containing[i], containing[j] = containing[j], containing[i]
			}
		}
	}
	for _, s := range containing {
		out = append(out, fmt.Sprintf("state %s start: %.6f end: %.6f dur: %.6f %s",
			f.Categories[s.Cat].Name, s.Start, s.End, s.Duration(), s.StartCargo))
	}
	for _, e := range events {
		if e.Rank == rank {
			out = append(out, fmt.Sprintf("event %s t: %.6f %s",
				f.Categories[e.Cat].Name, e.Time, e.Cargo))
		}
	}
	for _, a := range arrows {
		if (a.SrcRank == rank && withinSlop(a.Start, t, eventSlop)) ||
			(a.DstRank == rank && withinSlop(a.End, t, eventSlop)) {
			out = append(out, fmt.Sprintf("message P%d->P%d start: %.6f end: %.6f dur: %.6f tag: %d size: %d",
				a.SrcRank, a.DstRank, a.Start, a.End, a.End-a.Start, a.Tag, a.Size))
		}
	}
	return out
}

func withinSlop(a, b, slop float64) bool {
	d := a - b
	return d <= slop && d >= -slop
}
