package jumpshot

import (
	"math"
	"strings"
	"testing"

	"repro/internal/clog2"
	"repro/internal/slog2"
)

// waitLog: rank 1 blocks in two reads; one resolved by rank 0 (arrival at
// 2.8 inside read [2,3]), the other by rank 2 (arrival 5.5 inside [5,6]).
func waitLog(t *testing.T) *slog2.File {
	t.Helper()
	cf := &clog2.File{NumRanks: 3}
	defs := []clog2.Record{
		{Type: clog2.RecStateDef, ID: 1, Aux1: 2, Aux2: 3, Color: "red", Name: "PI_Read"},
	}
	r1 := []clog2.Record{
		{Type: clog2.RecCargoEvt, Time: 2, Rank: 1, ID: 2},
		{Type: clog2.RecMsgEvt, Time: 2.8, Rank: 1, Dir: clog2.DirRecv, Aux1: 0, Aux2: 1, Aux3: 8},
		{Type: clog2.RecCargoEvt, Time: 3, Rank: 1, ID: 3},
		{Type: clog2.RecCargoEvt, Time: 5, Rank: 1, ID: 2},
		{Type: clog2.RecMsgEvt, Time: 5.5, Rank: 1, Dir: clog2.DirRecv, Aux1: 2, Aux2: 2, Aux3: 8},
		{Type: clog2.RecCargoEvt, Time: 6, Rank: 1, ID: 3},
	}
	r0 := []clog2.Record{
		{Type: clog2.RecMsgEvt, Time: 2.1, Rank: 0, Dir: clog2.DirSend, Aux1: 1, Aux2: 1, Aux3: 8},
	}
	r2 := []clog2.Record{
		{Type: clog2.RecMsgEvt, Time: 5.1, Rank: 2, Dir: clog2.DirSend, Aux1: 1, Aux2: 2, Aux3: 8},
	}
	cf.Blocks = []clog2.Block{
		{Rank: 0, Records: append(defs, r0...)},
		{Rank: 1, Records: r1},
		{Rank: 2, Records: r2},
	}
	sf, rep, err := slog2.Convert(cf, slog2.ConvertOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Arrows != 2 || rep.States != 2 {
		t.Fatalf("fixture: %+v", rep)
	}
	return sf
}

func TestWaitMatrixAttribution(t *testing.T) {
	f := waitLog(t)
	edges := WaitMatrix(f, f.Start, f.End)
	if len(edges) != 2 {
		t.Fatalf("edges %+v", edges)
	}
	bySender := map[int]WaitEdge{}
	for _, e := range edges {
		if e.Waiter != 1 {
			t.Fatalf("unexpected waiter %d", e.Waiter)
		}
		bySender[e.Sender] = e
	}
	if e := bySender[0]; math.Abs(e.Blocked-1) > 1e-9 || e.Count != 1 {
		t.Fatalf("edge on P0: %+v", e)
	}
	if e := bySender[2]; math.Abs(e.Blocked-1) > 1e-9 || e.Count != 1 {
		t.Fatalf("edge on P2: %+v", e)
	}
	out := FormatWaitMatrix(edges)
	if !strings.Contains(out, "waiter") || !strings.Contains(out, "P1") {
		t.Fatalf("format:\n%s", out)
	}
}

func TestWaitMatrixWindowed(t *testing.T) {
	f := waitLog(t)
	// Only the first read is inside [0, 4].
	edges := WaitMatrix(f, 0, 4)
	if len(edges) != 1 || edges[0].Sender != 0 {
		t.Fatalf("windowed edges %+v", edges)
	}
}

func TestTopBlocker(t *testing.T) {
	f := waitLog(t)
	sender, blocked := TopBlocker(f, 1, f.Start, f.End)
	// Both edges tie at 1 s; deterministic tie-break prefers lower sender.
	if sender != 0 || math.Abs(blocked-1) > 1e-9 {
		t.Fatalf("top blocker = P%d (%v)", sender, blocked)
	}
	if s, b := TopBlocker(f, 0, f.Start, f.End); s != -1 || b != 0 {
		t.Fatalf("non-waiter top blocker = %d %v", s, b)
	}
}

func TestWaitMatrixUnattributed(t *testing.T) {
	// A read with no arrival inside it goes to sender -1.
	cf := &clog2.File{NumRanks: 2}
	cf.Blocks = []clog2.Block{{Rank: 0, Records: []clog2.Record{
		{Type: clog2.RecStateDef, ID: 1, Aux1: 2, Aux2: 3, Color: "salmon", Name: "PI_Select"},
		{Type: clog2.RecCargoEvt, Time: 1, Rank: 0, ID: 2},
		{Type: clog2.RecCargoEvt, Time: 2, Rank: 0, ID: 3},
	}}}
	sf, _, err := slog2.Convert(cf, slog2.ConvertOptions{})
	if err != nil {
		t.Fatal(err)
	}
	edges := WaitMatrix(sf, sf.Start, sf.End)
	if len(edges) != 1 || edges[0].Sender != -1 {
		t.Fatalf("edges %+v", edges)
	}
	if out := FormatWaitMatrix(edges); !strings.Contains(out, "-") {
		t.Fatalf("unattributed sender not marked:\n%s", out)
	}
}
