package jumpshot

import (
	"math"
	"strings"
	"testing"

	"repro/internal/clog2"
	"repro/internal/slog2"
)

func TestCriticalPathSimpleChain(t *testing.T) {
	// waitLog: rank 1 reads resolve at 2.8 (from P0's send at 2.1) and 5.5
	// (from P2's send at 5.1); reads end at 3 and 6. The path ends at the
	// latest state end (6 on rank 1).
	f := waitLog(t)
	path := CriticalPath(f)
	if len(path) == 0 {
		t.Fatal("empty path")
	}
	// Chronological and contiguous-ish: each segment starts no later than
	// the next begins.
	for i := 1; i < len(path); i++ {
		if path[i].Start < path[i-1].Start-1e-9 {
			t.Fatalf("path not chronological: %+v", path)
		}
	}
	last := path[len(path)-1]
	if last.End != 6 || last.Rank != 1 {
		t.Fatalf("path does not end at the final state: %+v", last)
	}
	// The chain must include the message hop from P2 (send 5.1 -> read end 6).
	foundHop := false
	for _, s := range path {
		if s.Kind == "message" && s.SrcRank == 2 && s.Rank == 1 {
			foundHop = true
			if math.Abs(s.Start-5.1) > 1e-9 || math.Abs(s.End-6) > 1e-9 {
				t.Fatalf("hop bounds %+v", s)
			}
		}
	}
	if !foundHop {
		t.Fatalf("missing P2->P1 hop in %+v", path)
	}
	out := FormatCriticalPath(path)
	if !strings.Contains(out, "critical path:") || !strings.Contains(out, "message P2->P1") {
		t.Fatalf("format:\n%s", out)
	}
}

func TestCriticalPathNoInputs(t *testing.T) {
	// A single compute state: the whole run is one local segment.
	f := makeLogOneState(t)
	path := CriticalPath(f)
	if len(path) != 1 || path[0].Kind != "compute" {
		t.Fatalf("path %+v", path)
	}
	if path[0].Start != f.Start || path[0].End != f.End {
		t.Fatalf("segment bounds %+v over [%v,%v]", path[0], f.Start, f.End)
	}
}

func TestCriticalPathEmptyLog(t *testing.T) {
	if p := CriticalPath(&emptySlog); p != nil {
		t.Fatalf("path on empty log: %+v", p)
	}
	if out := FormatCriticalPath(nil); !strings.Contains(out, "empty") {
		t.Fatalf("format of empty path: %q", out)
	}
}

// makeLogOneState builds a log with a single Compute state on rank 0.
func makeLogOneState(t *testing.T) *slog2.File {
	t.Helper()
	cf := &clog2.File{NumRanks: 1}
	cf.Blocks = []clog2.Block{{Rank: 0, Records: []clog2.Record{
		{Type: clog2.RecStateDef, ID: 1, Aux1: 2, Aux2: 3, Color: "gray", Name: "Compute"},
		{Type: clog2.RecCargoEvt, Time: 1, Rank: 0, ID: 2},
		{Type: clog2.RecCargoEvt, Time: 4, Rank: 0, ID: 3},
	}}}
	sf, _, err := slog2.Convert(cf, slog2.ConvertOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return sf
}

var emptySlog = slog2.File{Root: &slog2.Frame{}}
