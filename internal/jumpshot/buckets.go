package jumpshot

import (
	"sort"

	"repro/internal/slog2"
)

// exclusiveBuckets distributes one rank's states over n equal buckets of
// width span starting at from, returning per-bucket, per-category
// *exclusive* time: a nested state's time is subtracted from its immediate
// parent, so an instant is attributed to the innermost state covering it.
// This is what makes a PI_Read visible inside a long Compute rectangle in
// the downsampled views.
func exclusiveBuckets(rs []slog2.State, from, span float64, n int) []map[int]float64 {
	buckets := make([]map[int]float64, n)
	if n == 0 || span <= 0 {
		return buckets
	}
	to := from + span*float64(n)
	addRange := func(cat int, lo, hi, sign float64) {
		if lo < from {
			lo = from
		}
		if hi > to {
			hi = to
		}
		if hi <= lo {
			return
		}
		b0 := int((lo - from) / span)
		b1 := int((hi - from) / span)
		if b1 >= n {
			b1 = n - 1
		}
		for bi := b0; bi <= b1; bi++ {
			bLo := from + float64(bi)*span
			bHi := bLo + span
			l, h := lo, hi
			if l < bLo {
				l = bLo
			}
			if h > bHi {
				h = bHi
			}
			if h <= l {
				continue
			}
			if buckets[bi] == nil {
				buckets[bi] = map[int]float64{}
			}
			buckets[bi][cat] += sign * (h - l)
		}
	}

	sorted := append([]slog2.State(nil), rs...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Start != sorted[j].Start {
			return sorted[i].Start < sorted[j].Start
		}
		return sorted[i].End > sorted[j].End
	})
	type openIv struct {
		cat int
		end float64
	}
	var stack []openIv
	for _, s := range sorted {
		for len(stack) > 0 && stack[len(stack)-1].end <= s.Start {
			stack = stack[:len(stack)-1]
		}
		addRange(s.Cat, s.Start, s.End, +1)
		if len(stack) > 0 && stack[len(stack)-1].end >= s.End {
			addRange(stack[len(stack)-1].cat, s.Start, s.End, -1)
		}
		stack = append(stack, openIv{cat: s.Cat, end: s.End})
	}
	// Clamp tiny negative residues from floating arithmetic.
	for _, m := range buckets {
		for cat, d := range m {
			if d < 0 {
				if d > -1e-9 {
					m[cat] = 0
				}
			}
		}
	}
	return buckets
}
