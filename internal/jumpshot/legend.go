// Package jumpshot is a deterministic re-implementation of the Jumpshot-4
// viewer's drawing and analysis logic for SLOG-2 logs: timeline rendering
// to SVG and ASCII, the legend table with count/inclusive/exclusive
// statistics, duration statistics (histogram) views, search-and-scan, and
// the zoomed-out preview striping that shows category proportions when
// states are too numerous to draw individually.
//
// Jumpshot itself is a Java GUI; everything the paper relies on — the
// colour plan, nesting, bubbles, arrows, legend statistics — is about what
// gets drawn, which this package reproduces without a GUI.
package jumpshot

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/slog2"
)

// LegendEntry is one row of Jumpshot's legend window: "the coloured icon,
// the name, and some simple statistics: a count of the number of instances
// ... and two durations marked incl and excl."
type LegendEntry struct {
	Name  string
	Color string
	Kind  slog2.CategoryKind
	// Count is the number of instances (states or events) of the category.
	Count int
	// Incl is the summed duration of all state instances — "equal to
	// adding the widths of all its state rectangles".
	Incl float64
	// Excl is Incl minus directly nested states — "the time spent
	// computing purely in the state and not in its substates".
	Excl float64
}

// Legend computes the legend table over the drawables intersecting
// [t0, t1] (pass f.Start, f.End for the whole log). Entries appear in
// category order.
func Legend(f *slog2.File, t0, t1 float64) []LegendEntry {
	states, _, events := f.Query(t0, t1)
	entries := make([]LegendEntry, len(f.Categories))
	for i, c := range f.Categories {
		entries[i] = LegendEntry{Name: c.Name, Color: c.Color, Kind: c.Kind}
	}
	for _, s := range states {
		entries[s.Cat].Count++
		entries[s.Cat].Incl += s.Duration()
		entries[s.Cat].Excl += s.Duration()
	}
	for _, e := range events {
		entries[e.Cat].Count++
	}
	// Subtract directly nested children from their parents' exclusive
	// time, per rank, with a containment stack.
	perRank := map[int][]slog2.State{}
	for _, s := range states {
		perRank[s.Rank] = append(perRank[s.Rank], s)
	}
	for _, rs := range perRank {
		sort.SliceStable(rs, func(i, j int) bool {
			if rs[i].Start != rs[j].Start {
				return rs[i].Start < rs[j].Start
			}
			return rs[i].End > rs[j].End // outer first on ties
		})
		var stack []slog2.State
		for _, s := range rs {
			for len(stack) > 0 && stack[len(stack)-1].End <= s.Start {
				stack = stack[:len(stack)-1]
			}
			if len(stack) > 0 && containsState(stack[len(stack)-1], s) {
				parent := stack[len(stack)-1]
				entries[parent.Cat].Excl -= s.Duration()
			}
			stack = append(stack, s)
		}
	}
	return entries
}

func containsState(outer, inner slog2.State) bool {
	return outer.Start <= inner.Start && inner.End <= outer.End
}

// SortLegend orders entries by the given key ("name", "count", "incl",
// "excl"), descending for the numeric keys — the legend window's sortable
// columns.
func SortLegend(entries []LegendEntry, key string) {
	switch key {
	case "count":
		sort.SliceStable(entries, func(i, j int) bool { return entries[i].Count > entries[j].Count })
	case "incl":
		sort.SliceStable(entries, func(i, j int) bool { return entries[i].Incl > entries[j].Incl })
	case "excl":
		sort.SliceStable(entries, func(i, j int) bool { return entries[i].Excl > entries[j].Excl })
	default:
		sort.SliceStable(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	}
}

// FormatLegend renders the legend as an aligned text table.
func FormatLegend(entries []LegendEntry) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %-12s %8s %12s %12s\n", "name", "color", "count", "incl (s)", "excl (s)")
	for _, e := range entries {
		kind := "state"
		if e.Kind == slog2.KindEvent {
			kind = "event"
		}
		if e.Kind == slog2.KindEvent {
			fmt.Fprintf(&b, "%-14s %-12s %8d %12s %12s  (%s)\n", e.Name, e.Color, e.Count, "-", "-", kind)
			continue
		}
		fmt.Fprintf(&b, "%-14s %-12s %8d %12.6f %12.6f  (%s)\n", e.Name, e.Color, e.Count, e.Incl, e.Excl, kind)
	}
	return b.String()
}
