package jumpshot

import (
	"fmt"
	"strings"

	"repro/internal/slog2"
)

// RenderASCII draws the log as one text row per rank, for terminals and
// quick structural tests. Each column is a time bucket showing the initial
// letter of the category occupying most of that bucket ('.' = idle,
// '*' = an event bubble with no surrounding state dominance).
func RenderASCII(f *slog2.File, v View) string {
	v = v.normalized(f)
	cols := v.Width
	if cols > 200 {
		cols = 120
	}
	if cols < 10 {
		cols = 10
	}
	span := (v.To - v.From) / float64(cols)
	if span <= 0 {
		span = 1e-9
	}
	states, _, events := f.Query(v.From, v.To)

	byRank := make([][]slog2.State, f.NumRanks)
	for _, s := range states {
		if s.Rank >= 0 && s.Rank < f.NumRanks {
			byRank[s.Rank] = append(byRank[s.Rank], s)
		}
	}
	grid := make([][]map[int]float64, f.NumRanks)
	hasEvent := make([][]bool, f.NumRanks)
	for r := range grid {
		grid[r] = exclusiveBuckets(byRank[r], v.From, span, cols)
		hasEvent[r] = make([]bool, cols)
	}
	colOf := func(t float64) int {
		c := int((t - v.From) / span)
		if c < 0 {
			c = 0
		}
		if c >= cols {
			c = cols - 1
		}
		return c
	}
	for _, e := range events {
		if e.Rank >= 0 && e.Rank < f.NumRanks {
			hasEvent[e.Rank][colOf(e.Time)] = true
		}
	}

	initial := func(cat int) byte {
		name := f.Categories[cat].Name
		name = strings.TrimPrefix(name, "PI_")
		if name == "" {
			return '?'
		}
		return name[0]
	}

	var b strings.Builder
	fmt.Fprintf(&b, "time %.6fs .. %.6fs, %d columns of %.6fs\n", v.From, v.To, cols, span)
	for r := 0; r < f.NumRanks; r++ {
		row := make([]byte, cols)
		empty := true
		for c := 0; c < cols; c++ {
			cell := grid[r][c]
			switch {
			case len(cell) > 0:
				best, bestD := -1, 0.0
				for cat, d := range cell {
					if d > bestD || (d == bestD && (best < 0 || cat < best)) {
						best, bestD = cat, d
					}
				}
				row[c] = initial(best)
				empty = false
			case hasEvent[r][c]:
				row[c] = '*'
				empty = false
			default:
				row[c] = '.'
			}
		}
		if empty && v.HideEmptyRanks {
			continue
		}
		label := v.RankNames[r]
		if label == "" {
			if r == 0 {
				label = "PI_MAIN"
			} else {
				label = fmt.Sprintf("P%d", r)
			}
		}
		fmt.Fprintf(&b, "%-8s |%s|\n", label, row)
	}
	return b.String()
}
