package jumpshot

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/colors"
	"repro/internal/slog2"
)

// WaitEdge is one cell of the wait matrix: how long a rank spent blocked
// in input operations whose message ultimately came from a given sender.
type WaitEdge struct {
	Waiter, Sender int
	// Blocked is the total time Waiter spent inside input states that were
	// resolved by a message from Sender.
	Blocked float64
	// Count is the number of such blocked operations.
	Count int
}

// WaitMatrix attributes every input-category state (PI_Read, PI_Gather,
// PI_Reduce, PI_Select) on every rank to the sender whose message arrived
// inside it, answering the debugging question the paper's Section IV.B
// figures pose visually: who is everyone waiting for? Edges are returned
// sorted by blocked time, longest first.
//
// States containing no arrival (e.g. a PI_Select that returned without a
// message record) are attributed to sender -1.
func WaitMatrix(f *slog2.File, t0, t1 float64) []WaitEdge {
	states, arrows, _ := f.Query(t0, t1)
	type key struct{ waiter, sender int }
	acc := map[key]*WaitEdge{}
	add := func(waiter, sender int, d float64) {
		k := key{waiter, sender}
		e := acc[k]
		if e == nil {
			e = &WaitEdge{Waiter: waiter, Sender: sender}
			acc[k] = e
		}
		e.Blocked += d
		e.Count++
	}

	// Arrows ending on a rank, sorted by arrival time for binary search.
	arrivals := map[int][]slog2.Arrow{}
	for _, a := range arrows {
		arrivals[a.DstRank] = append(arrivals[a.DstRank], a)
	}
	for r := range arrivals {
		as := arrivals[r]
		sort.Slice(as, func(i, j int) bool { return as[i].End < as[j].End })
	}

	for _, s := range states {
		if colors.CategoryOf(f.Categories[s.Cat].Name) != colors.Input {
			continue
		}
		sender := -1
		as := arrivals[s.Rank]
		// First arrival inside [s.Start, s.End].
		i := sort.Search(len(as), func(i int) bool { return as[i].End >= s.Start })
		if i < len(as) && as[i].End <= s.End {
			sender = as[i].SrcRank
		}
		add(s.Rank, sender, s.Duration())
	}

	out := make([]WaitEdge, 0, len(acc))
	for _, e := range acc {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Blocked != out[j].Blocked {
			return out[i].Blocked > out[j].Blocked
		}
		if out[i].Waiter != out[j].Waiter {
			return out[i].Waiter < out[j].Waiter
		}
		return out[i].Sender < out[j].Sender
	})
	return out
}

// FormatWaitMatrix renders the wait edges as a table, longest waits first.
func FormatWaitMatrix(edges []WaitEdge) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-8s %12s %8s\n", "waiter", "on", "blocked (s)", "ops")
	for _, e := range edges {
		sender := fmt.Sprintf("P%d", e.Sender)
		if e.Sender < 0 {
			sender = "-"
		}
		fmt.Fprintf(&b, "P%-7d %-8s %12.6f %8d\n", e.Waiter, sender, e.Blocked, e.Count)
	}
	return b.String()
}

// TopBlocker returns the rank the given waiter spends the most blocked
// time on within [t0, t1], with that time; sender -1 means unattributed.
func TopBlocker(f *slog2.File, waiter int, t0, t1 float64) (sender int, blocked float64) {
	sender = -1
	for _, e := range WaitMatrix(f, t0, t1) {
		if e.Waiter == waiter {
			return e.Sender, e.Blocked
		}
	}
	return sender, 0
}
