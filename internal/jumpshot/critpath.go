package jumpshot

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/colors"
	"repro/internal/slog2"
)

// PathSeg is one link of the critical path: either local computation on a
// rank, or a message hop that transferred control of the path between
// ranks.
type PathSeg struct {
	// Kind is "compute" or "message".
	Kind string
	// Rank is the computing rank; for messages, the destination.
	Rank int
	// SrcRank is the sending rank for message segments (-1 otherwise).
	SrcRank    int
	Start, End float64
}

// Duration returns the segment length.
func (s PathSeg) Duration() float64 { return s.End - s.Start }

// CriticalPath walks backwards from the end of the log to its start,
// alternating local computation with the message dependencies that gated
// it: at each point, if the rank was blocked in an input state whose
// message arrived from another rank, the path hops to the sender at the
// send instant. The result — earliest segment first — is the chain that
// determined the program's wall-clock time; shortening anything on it
// shortens the run, shortening anything off it does not. This turns the
// paper's "diagnosing logic that impedes parallelism" from visual
// inspection into a number per segment.
func CriticalPath(f *slog2.File) []PathSeg {
	states, arrows, _ := f.All()
	if len(states) == 0 {
		return nil
	}
	// The path ends at the latest state end.
	endRank, endT := states[0].Rank, states[0].End
	for _, s := range states {
		if s.End > endT {
			endRank, endT = s.Rank, s.End
		}
	}
	// Input states per rank, sorted by end time; arrows per destination.
	inputs := map[int][]slog2.State{}
	for _, s := range states {
		if colors.CategoryOf(f.Categories[s.Cat].Name) == colors.Input {
			inputs[s.Rank] = append(inputs[s.Rank], s)
		}
	}
	for r := range inputs {
		sort.Slice(inputs[r], func(i, j int) bool { return inputs[r][i].End < inputs[r][j].End })
	}
	arrivesIn := func(st slog2.State) (slog2.Arrow, bool) {
		for _, a := range arrows {
			if a.DstRank == st.Rank && a.End >= st.Start && a.End <= st.End {
				return a, true
			}
		}
		return slog2.Arrow{}, false
	}

	var rev []PathSeg
	rank, t := endRank, endT
	for steps := 0; steps < 10000 && t > f.Start; steps++ {
		// Latest input state on this rank ending at or before t.
		var dep *slog2.State
		for i := len(inputs[rank]) - 1; i >= 0; i-- {
			s := inputs[rank][i]
			if s.End <= t+1e-12 {
				dep = &inputs[rank][i]
				break
			}
		}
		if dep == nil {
			rev = append(rev, PathSeg{Kind: "compute", Rank: rank, SrcRank: -1, Start: f.Start, End: t})
			break
		}
		if dep.End < t {
			rev = append(rev, PathSeg{Kind: "compute", Rank: rank, SrcRank: -1, Start: dep.End, End: t})
		}
		a, ok := arrivesIn(*dep)
		if !ok {
			// Blocked wait with no recorded message (e.g. select): charge
			// it locally and continue before the state began.
			rev = append(rev, PathSeg{Kind: "compute", Rank: rank, SrcRank: -1, Start: dep.Start, End: dep.End})
			t = dep.Start
			continue
		}
		rev = append(rev, PathSeg{Kind: "message", Rank: rank, SrcRank: a.SrcRank, Start: a.Start, End: dep.End})
		rank, t = a.SrcRank, a.Start
	}
	// Reverse into chronological order and merge zero-length noise.
	var out []PathSeg
	for i := len(rev) - 1; i >= 0; i-- {
		if rev[i].Duration() > 1e-12 {
			out = append(out, rev[i])
		}
	}
	return out
}

// FormatCriticalPath renders the path with per-segment durations and the
// share of total wall-clock each segment accounts for.
func FormatCriticalPath(path []PathSeg) string {
	if len(path) == 0 {
		return "empty critical path\n"
	}
	total := path[len(path)-1].End - path[0].Start
	var b strings.Builder
	fmt.Fprintf(&b, "critical path: %.6fs across %d segment(s)\n", total, len(path))
	for _, s := range path {
		share := 0.0
		if total > 0 {
			share = s.Duration() / total * 100
		}
		switch s.Kind {
		case "message":
			fmt.Fprintf(&b, "  [%12.6f, %12.6f] message P%d->P%d %10.6fs (%4.1f%%)\n",
				s.Start, s.End, s.SrcRank, s.Rank, s.Duration(), share)
		default:
			fmt.Fprintf(&b, "  [%12.6f, %12.6f] compute P%-12d %10.6fs (%4.1f%%)\n",
				s.Start, s.End, s.Rank, s.Duration(), share)
		}
	}
	return b.String()
}
