package jumpshot

import (
	"strings"
	"testing"
)

// Timeline cut-and-paste: RankOrder selects and orders the timelines.
func TestRankOrderCutAndPaste(t *testing.T) {
	f := makeLog(t) // ranks 0, 1
	// Only rank 1 shown.
	svg := RenderSVG(f, View{RankOrder: []int{1}})
	if strings.Contains(svg, ">PI_MAIN<") {
		t.Error("dropped timeline still labelled")
	}
	if !strings.Contains(svg, ">P1<") {
		t.Error("kept timeline missing")
	}
	// An arrow touching a hidden rank must not be drawn.
	if strings.Contains(svg, "message P0-&gt;P1") {
		t.Error("arrow to hidden timeline drawn")
	}
	// Reordered: both shown, P1 first.
	svg = RenderSVG(f, View{RankOrder: []int{1, 0}})
	p1 := strings.Index(svg, ">P1<")
	p0 := strings.Index(svg, ">PI_MAIN<")
	if p1 < 0 || p0 < 0 || p1 > p0 {
		t.Errorf("timeline order not honoured: P1@%d PI_MAIN@%d", p1, p0)
	}
	// Out-of-range ranks are ignored, not fatal.
	svg = RenderSVG(f, View{RankOrder: []int{0, 99, -2}})
	if !strings.Contains(svg, ">PI_MAIN<") {
		t.Error("valid rank dropped alongside invalid ones")
	}
}

// Vertical expansion: an expanded timeline grows the canvas.
func TestVerticalExpansion(t *testing.T) {
	f := makeLog(t)
	plain := RenderSVG(f, View{})
	expanded := RenderSVG(f, View{Expand: map[int]int{1: 3}})
	hOf := func(svg string) string {
		i := strings.Index(svg, `height="`)
		rest := svg[i+len(`height="`):]
		return rest[:strings.Index(rest, `"`)]
	}
	if hOf(plain) == hOf(expanded) {
		t.Errorf("expansion did not change canvas height (%s)", hOf(plain))
	}
}

func TestRenderStatsSVG(t *testing.T) {
	f := makeLog(t)
	svg := RenderStatsSVG(f, f.Start, f.End, "load balance")
	for _, want := range []string{
		"<svg", "</svg>", "load balance",
		"PI_MAIN", "P1",
		"Compute:", // tooltip with category name
		"100%",     // percentage grid
		"#808080",  // compute gray segment
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("stats SVG missing %q", want)
		}
	}
	// Default title includes the window.
	svg = RenderStatsSVG(f, 0, 10, "")
	if !strings.Contains(svg, "duration statistics") {
		t.Error("default title missing")
	}
}
