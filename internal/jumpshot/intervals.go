package jumpshot

import (
	"sort"

	"repro/internal/colors"
	"repro/internal/slog2"
)

// Interval is a closed time span.
type Interval struct {
	Start, End float64
}

// BusyIntervals returns the spans within [t0, t1] where the rank is
// actually computing: inside a Compute state but not blocked in an
// input-category state (PI_Read, PI_Select, PI_Gather, PI_Reduce). This
// is what the eye extracts from the paper's figures — "the partial
// overlapping of gray bars" — turned into a number.
func BusyIntervals(f *slog2.File, rank int, t0, t1 float64) []Interval {
	states, _, _ := f.Query(t0, t1)
	var compute, blocked []Interval
	for _, s := range states {
		if s.Rank != rank {
			continue
		}
		iv := Interval{clampF(s.Start, t0, t1), clampF(s.End, t0, t1)}
		if iv.End <= iv.Start {
			continue
		}
		name := f.Categories[s.Cat].Name
		switch {
		case name == "Compute":
			compute = append(compute, iv)
		case colors.CategoryOf(name) == colors.Input:
			blocked = append(blocked, iv)
		}
	}
	return subtractIntervals(normalizeIntervals(compute), normalizeIntervals(blocked))
}

// normalizeIntervals sorts and merges overlapping intervals.
func normalizeIntervals(ivs []Interval) []Interval {
	if len(ivs) == 0 {
		return nil
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].Start < ivs[j].Start })
	out := []Interval{ivs[0]}
	for _, iv := range ivs[1:] {
		last := &out[len(out)-1]
		if iv.Start <= last.End {
			if iv.End > last.End {
				last.End = iv.End
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

// subtractIntervals removes b from a (both normalised).
func subtractIntervals(a, b []Interval) []Interval {
	var out []Interval
	bi := 0
	for _, iv := range a {
		cur := iv
		for bi < len(b) && b[bi].End <= cur.Start {
			bi++
		}
		j := bi
		for j < len(b) && b[j].Start < cur.End {
			if b[j].Start > cur.Start {
				out = append(out, Interval{cur.Start, b[j].Start})
			}
			if b[j].End >= cur.End {
				cur.Start = cur.End
				break
			}
			cur.Start = b[j].End
			j++
		}
		if cur.End > cur.Start {
			out = append(out, cur)
		}
	}
	return out
}

// IntervalOverlap returns the total intersection length of two normalised
// interval sets.
func IntervalOverlap(a, b []Interval) float64 {
	var total float64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		lo := a[i].Start
		if b[j].Start > lo {
			lo = b[j].Start
		}
		hi := a[i].End
		if b[j].End < hi {
			hi = b[j].End
		}
		if hi > lo {
			total += hi - lo
		}
		if a[i].End < b[j].End {
			i++
		} else {
			j++
		}
	}
	return total
}

// IntervalTotal returns the summed length of an interval set.
func IntervalTotal(ivs []Interval) float64 {
	var total float64
	for _, iv := range ivs {
		total += iv.End - iv.Start
	}
	return total
}

// BusyOverlapRatio quantifies how parallel a set of ranks really ran in
// [t0, t1]: the mean pairwise busy-time overlap divided by the mean busy
// time. Near 1 = fully parallel workers; near 0 = the serialized pattern
// of the paper's instance A, where "the workers never did query
// processing in parallel at all".
func BusyOverlapRatio(f *slog2.File, ranks []int, t0, t1 float64) float64 {
	busy := make([][]Interval, len(ranks))
	var meanBusy float64
	for i, r := range ranks {
		busy[i] = BusyIntervals(f, r, t0, t1)
		meanBusy += IntervalTotal(busy[i])
	}
	if len(ranks) < 2 || meanBusy == 0 {
		return 0
	}
	meanBusy /= float64(len(ranks))
	var sum float64
	var pairs int
	for i := 0; i < len(ranks); i++ {
		for j := i + 1; j < len(ranks); j++ {
			sum += IntervalOverlap(busy[i], busy[j])
			pairs++
		}
	}
	return (sum / float64(pairs)) / meanBusy
}
