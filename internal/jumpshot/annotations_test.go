package jumpshot

import (
	"strings"
	"testing"
)

func TestRenderSVGAnnotations(t *testing.T) {
	f := makeLog(t)
	svg := RenderSVG(f, View{Annotations: []Annotation{
		{Rank: 1, Time: 2.5, Label: "barrier-straggler", Detail: "rank 1 took 2.5s <&>"},
		{Rank: -1, Label: "send-recv-imbalance ch5", Detail: "channel 5: 2 sends vs 1 recvs"},
	}})
	for _, want := range []string{
		"barrier-straggler",              // rank flag label
		"send-recv-imbalance ch5",        // banner chip label
		`stroke-dasharray="3,2"`,         // drop line
		"rank 1 took 2.5s &lt;&amp;&gt;", // detail escaped into the popup
		"channel 5: 2 sends vs 1 recvs",  // banner popup
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// Annotations on hidden ranks are dropped, not misdrawn.
	cut := RenderSVG(f, View{
		RankOrder: []int{0},
		Annotations: []Annotation{
			{Rank: 1, Time: 2.5, Label: "ghost-marker", Detail: "should not render"},
		},
	})
	if strings.Contains(cut, "ghost-marker") {
		t.Error("annotation rendered for a rank cut from the view")
	}
	// No annotations: no marker markup at all.
	plain := RenderSVG(f, View{})
	if strings.Contains(plain, "stroke-dasharray") {
		t.Error("plain view contains annotation markup")
	}
}

func TestRenderHTMLCarriesAnnotations(t *testing.T) {
	f := makeLog(t)
	html := RenderHTML(f, View{Annotations: []Annotation{
		{Rank: 0, Time: 1, Label: "blocked-dominator", Detail: "rank 0 blocked"},
	}})
	if !strings.Contains(html, "blocked-dominator") {
		t.Error("HTML page lost the annotation")
	}
}
