package jumpshot

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/colors"
	"repro/internal/slog2"
)

// View controls a timeline rendering: the zoom viewport, canvas size, and
// the preview threshold beyond which a timeline degrades to Jumpshot's
// striped proportional rectangles.
type View struct {
	// From/To bound the viewport; if To <= From the whole log is shown.
	From, To float64
	// Width is the canvas width in pixels (default 1200).
	Width int
	// RowHeight is the per-timeline height in pixels (default 36).
	RowHeight int
	// PreviewThreshold is the per-rank state count above which the rank is
	// drawn as striped previews instead of individual rectangles (default
	// 512, 0 = default; negative disables previews).
	PreviewThreshold int
	// HideArrows/HideEvents suppress those drawable kinds.
	HideArrows bool
	HideEvents bool
	// HideEmptyRanks drops timelines with no drawables in the viewport
	// (Pilot's service rank logs nothing, like the real thing).
	HideEmptyRanks bool
	// Title is drawn above the canvas.
	Title string
	// RankNames optionally labels timelines (default "P<rank>", rank 0
	// labelled PI_MAIN as in the paper's figures).
	RankNames map[int]string
	// RankOrder, when non-nil, selects and orders the timelines shown —
	// Jumpshot's "timeline cut and paste". Ranks not listed are dropped.
	RankOrder []int
	// Expand multiplies individual timeline heights — Jumpshot's
	// "vertical expansion of timelines". Missing entries default to 1.
	Expand map[int]int
	// Annotations overlays analyzer verdicts on the canvas: rank-scoped
	// markers pinned to their timeline at a timestamp, and banner chips
	// along the top margin for unscoped findings.
	Annotations []Annotation
}

// Annotation is one verdict marker (typically from internal/analyze).
type Annotation struct {
	// Rank anchors the marker to a timeline; negative means a banner
	// chip across the top margin instead.
	Rank int
	// Time positions rank-scoped markers on the axis.
	Time float64
	// Label is the short marker text; Detail goes into the hover popup.
	Label  string
	Detail string
}

const (
	marginLeft   = 74
	marginTop    = 34
	marginBottom = 26
	marginRight  = 14
)

func (v View) normalized(f *slog2.File) View {
	if v.To <= v.From {
		v.From, v.To = f.Start, f.End
	}
	if v.To <= v.From {
		v.To = v.From + 1e-9
	}
	if v.Width <= 0 {
		v.Width = 1200
	}
	if v.RowHeight <= 0 {
		v.RowHeight = 36
	}
	if v.PreviewThreshold == 0 {
		v.PreviewThreshold = 512
	}
	return v
}

// RenderSVG draws the log under the given view as a standalone SVG
// document on a dark canvas, Jumpshot-style: timelines per rank (rank 0 =
// PI_MAIN at the top), coloured state rectangles with nesting insets,
// yellow event bubbles, white message arrows, an axis in global seconds,
// and popup details as SVG tooltips.
func RenderSVG(f *slog2.File, v View) string {
	v = v.normalized(f)
	states, arrows, events := f.Query(v.From, v.To)

	// Decide which ranks to draw and in what order (timeline cut/paste).
	present := map[int]bool{}
	for _, s := range states {
		present[s.Rank] = true
	}
	for _, e := range events {
		present[e.Rank] = true
	}
	for _, a := range arrows {
		present[a.SrcRank] = true
		present[a.DstRank] = true
	}
	var ranks []int
	if v.RankOrder != nil {
		for _, r := range v.RankOrder {
			if r >= 0 && r < f.NumRanks {
				ranks = append(ranks, r)
			}
		}
	} else {
		for r := 0; r < f.NumRanks; r++ {
			if present[r] || !v.HideEmptyRanks {
				ranks = append(ranks, r)
			}
		}
	}
	shown := map[int]bool{}
	for _, r := range ranks {
		shown[r] = true
	}
	// Per-timeline heights (vertical expansion) and row layout.
	heightOf := func(rank int) int {
		mul := v.Expand[rank]
		if mul < 1 {
			mul = 1
		}
		return v.RowHeight * mul
	}
	rowTops := map[int]float64{}
	rowHeights := map[int]int{}
	y := marginTop
	for _, r := range ranks {
		rowTops[r] = float64(y)
		rowHeights[r] = heightOf(r)
		y += rowHeights[r]
	}

	width := v.Width
	height := y + marginBottom
	plotW := float64(width - marginLeft - marginRight)
	xOf := func(t float64) float64 {
		return float64(marginLeft) + plotW*(t-v.From)/(v.To-v.From)
	}
	rowTop := func(rank int) float64 { return rowTops[rank] }
	rowMid := func(rank int) float64 { return rowTops[rank] + float64(rowHeights[rank])/2 }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="11">`+"\n", width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="#101010"/>`+"\n", width, height)
	if v.Title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="16" fill="#e0e0e0" font-size="13">%s</text>`+"\n", marginLeft, esc(v.Title))
	}

	// Row separators and labels.
	for _, r := range ranks {
		y := rowTop(r)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#303030"/>`+"\n",
			marginLeft, y, width-marginRight, y)
		label := v.RankNames[r]
		if label == "" {
			if r == 0 {
				label = "PI_MAIN"
			} else {
				label = fmt.Sprintf("P%d", r)
			}
		}
		fmt.Fprintf(&b, `<text x="6" y="%.1f" fill="#c0c0c0">%s</text>`+"\n", rowMid(r)+4, esc(label))
	}

	// Axis ticks.
	for i := 0; i <= 8; i++ {
		t := v.From + (v.To-v.From)*float64(i)/8
		x := xOf(t)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#404040"/>`+"\n",
			x, marginTop, x, height-marginBottom)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" fill="#909090" text-anchor="middle">%.4gs</text>`+"\n",
			x, height-8, t)
	}

	// States per rank, individually or as striped previews.
	byRank := map[int][]slog2.State{}
	for _, s := range states {
		byRank[s.Rank] = append(byRank[s.Rank], s)
	}
	for _, r := range ranks {
		rs := byRank[r]
		if len(rs) == 0 {
			continue
		}
		if v.PreviewThreshold > 0 && len(rs) > v.PreviewThreshold {
			b.WriteString(renderPreviewRow(f, rs, v, xOf, rowTop(r), rowHeights[r]))
			continue
		}
		b.WriteString(renderStateRow(f, rs, v, xOf, rowTop(r), rowHeights[r]))
	}

	// Arrows: white, drawn over states, with the popup the paper lists.
	if !v.HideArrows {
		for _, a := range arrows {
			if !shown[a.SrcRank] || !shown[a.DstRank] {
				continue
			}
			x1, y1 := xOf(a.Start), rowMid(a.SrcRank)
			x2, y2 := xOf(a.End), rowMid(a.DstRank)
			fmt.Fprintf(&b, `<g><line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1"/>`,
				x1, y1, x2, y2, colors.ArrowColor.Hex())
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="1.6" fill="%s"/>`, x2, y2, colors.ArrowColor.Hex())
			fmt.Fprintf(&b, `<title>message P%d-&gt;P%d start: %.6f end: %.6f dur: %.6f tag: %d size: %d</title></g>`+"\n",
				a.SrcRank, a.DstRank, a.Start, a.End, a.End-a.Start, a.Tag, a.Size)
		}
	}

	// Event bubbles on top.
	if !v.HideEvents {
		for _, e := range events {
			if !shown[e.Rank] {
				continue
			}
			fmt.Fprintf(&b, `<g><circle cx="%.1f" cy="%.1f" r="2.6" fill="%s" stroke="#806000"/>`,
				xOf(e.Time), rowMid(e.Rank), hexOf(f.Categories[e.Cat].Color))
			fmt.Fprintf(&b, `<title>%s t: %.6f %s</title></g>`+"\n",
				esc(f.Categories[e.Cat].Name), e.Time, esc(e.Cargo))
		}
	}

	// Verdict annotations over everything else, so findings land where
	// the viewer is already looking.
	if len(v.Annotations) > 0 {
		b.WriteString(renderAnnotations(v, xOf, rowTop, rowHeights, shown, width))
	}

	b.WriteString(renderInlineLegend(f, width, height))
	b.WriteString("</svg>\n")
	return b.String()
}

// renderAnnotations draws verdict markers: an orange flag plus a dashed
// drop line on the annotated rank's timeline, or a banner chip in the
// top margin when the finding is not scoped to a rank.
func renderAnnotations(v View, xOf func(float64) float64, rowTop func(int) float64,
	rowHeights map[int]int, shown map[int]bool, width int) string {
	var b strings.Builder
	hex := colors.FaultEventColor.Hex()
	bannerX := marginLeft
	for _, a := range v.Annotations {
		if a.Rank < 0 {
			if bannerX > width-160 {
				continue // out of banner room; remaining chips are in the report anyway
			}
			fmt.Fprintf(&b, `<g><rect x="%d" y="19" width="9" height="9" fill="%s"/>`, bannerX, hex)
			fmt.Fprintf(&b, `<text x="%d" y="27" fill="%s">%s</text>`, bannerX+12, hex, esc(a.Label))
			fmt.Fprintf(&b, `<title>%s</title></g>`+"\n", esc(a.Detail))
			bannerX += 13 + 7*len(a.Label) + 12
			continue
		}
		if !shown[a.Rank] {
			continue
		}
		x := xOf(clampF(a.Time, v.From, v.To))
		top := rowTop(a.Rank)
		bot := top + float64(rowHeights[a.Rank])
		fmt.Fprintf(&b, `<g><line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-dasharray="3,2"/>`,
			x, top, x, bot, hex)
		fmt.Fprintf(&b, `<path d="M %.1f %.1f L %.1f %.1f L %.1f %.1f Z" fill="%s"/>`,
			x, top, x+8, top+3, x, top+7, hex)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" fill="%s">%s</text>`,
			x+10, top+10, hex, esc(a.Label))
		fmt.Fprintf(&b, `<title>%s</title></g>`+"\n", esc(a.Detail))
	}
	return b.String()
}

// renderStateRow draws one rank's states as nested rectangles: outer
// states first, each nesting level inset vertically, exactly how Jumpshot
// shows "state B fully nested within A ... as another rectangle within A".
func renderStateRow(f *slog2.File, rs []slog2.State, v View, xOf func(float64) float64, top float64, rowHeight int) string {
	sort.SliceStable(rs, func(i, j int) bool {
		if rs[i].Start != rs[j].Start {
			return rs[i].Start < rs[j].Start
		}
		return rs[i].End > rs[j].End
	})
	var b strings.Builder
	type openIv struct{ end float64 }
	var stack []openIv
	for _, s := range rs {
		for len(stack) > 0 && stack[len(stack)-1].end <= s.Start {
			stack = stack[:len(stack)-1]
		}
		depth := len(stack)
		stack = append(stack, openIv{end: s.End})

		inset := float64(depth * 4)
		maxInset := float64(rowHeight)/2 - 4
		if inset > maxInset {
			inset = maxInset
		}
		x1, x2 := xOf(clampF(s.Start, v.From, v.To)), xOf(clampF(s.End, v.From, v.To))
		w := x2 - x1
		if w < 0.5 {
			w = 0.5
		}
		y := top + 3 + inset
		h := float64(rowHeight) - 6 - 2*inset
		if h < 2 {
			h = 2
		}
		cat := f.Categories[s.Cat]
		fmt.Fprintf(&b, `<g><rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" stroke="#000000" stroke-width="0.4"/>`,
			x1, y, w, h, hexOf(cat.Color))
		fmt.Fprintf(&b, `<title>%s start: %.6f end: %.6f dur: %.6f %s</title></g>`+"\n",
			esc(cat.Name), s.Start, s.End, s.Duration(), esc(s.StartCargo))
	}
	return b.String()
}

// renderPreviewRow draws one rank's states as Jumpshot's zoomed-out
// preview: outline rectangles per bucket containing horizontal stripes
// whose thicknesses "indicate the relative proportions of each colour
// within that interval".
func renderPreviewRow(f *slog2.File, rs []slog2.State, v View, xOf func(float64) float64, top float64, rowHeight int) string {
	const bucketPx = 10.0
	plotW := xOf(v.To) - xOf(v.From)
	nBuckets := int(plotW / bucketPx)
	if nBuckets < 1 {
		nBuckets = 1
	}
	span := (v.To - v.From) / float64(nBuckets)
	// Per bucket, per category, exclusive (innermost-wins) state time, so
	// the stripes show the proportions a viewer actually perceives.
	buckets := exclusiveBuckets(rs, v.From, span, nBuckets)
	var b strings.Builder
	rowH := float64(rowHeight) - 6
	for bi, m := range buckets {
		if m == nil {
			continue
		}
		x := xOf(v.From + float64(bi)*span)
		w := plotW / float64(nBuckets)
		var total float64
		var cats []int
		for cat, d := range m {
			total += d
			cats = append(cats, cat)
		}
		if total <= 0 {
			continue
		}
		sort.Ints(cats)
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="none" stroke="#707070" stroke-width="0.5"/>`+"\n",
			x, top+3, w, rowH)
		y := top + 3.0
		for _, cat := range cats {
			frac := m[cat] / total
			h := rowH * frac
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
				x, y, w, h, hexOf(f.Categories[cat].Color))
			y += h
		}
	}
	return b.String()
}

// renderInlineLegend draws colour swatches along the bottom margin.
func renderInlineLegend(f *slog2.File, width, height int) string {
	var b strings.Builder
	x := marginLeft
	y := height - 8
	for _, c := range f.Categories {
		if c.Kind != slog2.KindState {
			continue
		}
		if x > width-140 {
			break
		}
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="9" height="9" fill="%s"/>`, x, y-9, hexOf(c.Color))
		fmt.Fprintf(&b, `<text x="%d" y="%d" fill="#909090">%s</text>`+"\n", x+12, y, esc(c.Name))
		x += 13 + 7*len(c.Name) + 10
	}
	return b.String()
}

// hexOf maps a colour name from the log to a hex value via the palette,
// falling back to the name itself (SVG understands X11 names).
func hexOf(name string) string {
	for _, c := range []colors.Color{colors.Red, colors.Green, colors.ForestGreen,
		colors.DarkGreen, colors.IndianRed, colors.Firebrick, colors.Salmon,
		colors.Bisque, colors.Gray, colors.Yellow, colors.White,
		colors.Orange, colors.Magenta} {
		if c.Name == name {
			return c.Hex()
		}
	}
	return name
}

func clampF(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
