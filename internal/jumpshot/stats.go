package jumpshot

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/slog2"
)

// RankStats summarises one timeline over a user-selected duration —
// Jumpshot's "picture from user-selected duration which allows for ease of
// data analysis on the statistics of a logfile", the paper's example being
// "easy detection of load imbalance across processes".
type RankStats struct {
	Rank int
	// Time[cat] is the state time of that category clipped to the window.
	Time map[int]float64
	// Fraction[cat] is Time[cat] divided by the window length.
	Fraction map[int]float64
	// Busy is the fraction of the window covered by any state other than
	// the ones named in the idle set (none by default).
	Busy float64
}

// Stats computes per-rank category statistics over [t0, t1]. Ranks with no
// drawables in the window are omitted.
func Stats(f *slog2.File, t0, t1 float64) []RankStats {
	if t1 <= t0 {
		return nil
	}
	states, _, _ := f.Query(t0, t1)
	window := t1 - t0
	byRank := map[int]*RankStats{}
	for _, s := range states {
		rs := byRank[s.Rank]
		if rs == nil {
			rs = &RankStats{Rank: s.Rank, Time: map[int]float64{}, Fraction: map[int]float64{}}
			byRank[s.Rank] = rs
		}
		lo, hi := s.Start, s.End
		if lo < t0 {
			lo = t0
		}
		if hi > t1 {
			hi = t1
		}
		if hi > lo {
			rs.Time[s.Cat] += hi - lo
		}
	}
	out := make([]RankStats, 0, len(byRank))
	for _, rs := range byRank {
		for cat, d := range rs.Time {
			rs.Fraction[cat] = d / window
			_ = cat
		}
		out = append(out, *rs)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rank < out[j].Rank })
	return out
}

// CategoryFraction returns the total fraction of (rank-summed) state time
// spent in the named category over [t0, t1], relative to all state time in
// the window. Figure-level assertions use it: e.g. "most of the execution
// time is used for computation (the gray state rectangles)".
func CategoryFraction(f *slog2.File, name string, t0, t1 float64) float64 {
	idx := f.CategoryIndex(name)
	if idx < 0 {
		return 0
	}
	stats := Stats(f, t0, t1)
	var total, named float64
	for _, rs := range stats {
		for cat, d := range rs.Time {
			total += d
			if cat == idx {
				named += d
			}
		}
	}
	if total == 0 {
		return 0
	}
	return named / total
}

// LoadImbalance returns the ratio of the maximum to the minimum per-rank
// time in the named category across the given ranks (1.0 = perfectly
// balanced). Ranks absent from the window count as zero, yielding +Inf.
func LoadImbalance(f *slog2.File, name string, ranks []int, t0, t1 float64) float64 {
	idx := f.CategoryIndex(name)
	if idx < 0 || len(ranks) == 0 {
		return 0
	}
	stats := Stats(f, t0, t1)
	byRank := map[int]float64{}
	for _, rs := range stats {
		byRank[rs.Rank] = rs.Time[idx]
	}
	min, max := -1.0, 0.0
	for _, r := range ranks {
		v := byRank[r]
		if v > max {
			max = v
		}
		if min < 0 || v < min {
			min = v
		}
	}
	if min <= 0 {
		if max == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return max / min
}

// FormatStats renders per-rank statistics as an aligned table with one
// column per category present.
func FormatStats(f *slog2.File, stats []RankStats) string {
	present := map[int]bool{}
	for _, rs := range stats {
		for cat := range rs.Time {
			present[cat] = true
		}
	}
	var cats []int
	for cat := range present {
		cats = append(cats, cat)
	}
	sort.Ints(cats)
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s", "rank")
	for _, cat := range cats {
		fmt.Fprintf(&b, " %14s", f.Categories[cat].Name)
	}
	b.WriteByte('\n')
	for _, rs := range stats {
		fmt.Fprintf(&b, "P%-5d", rs.Rank)
		for _, cat := range cats {
			fmt.Fprintf(&b, " %13.1f%%", rs.Fraction[cat]*100)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Overlap measures how much the named category's states on two ranks run
// concurrently within [t0,t1]: the summed intersection of their intervals.
// The student "instance A" diagnosis rests on this: serialized query
// processing shows ~zero pairwise overlap of worker Compute states.
func Overlap(f *slog2.File, name string, rankA, rankB int, t0, t1 float64) float64 {
	idx := f.CategoryIndex(name)
	if idx < 0 {
		return 0
	}
	states, _, _ := f.Query(t0, t1)
	var as, bs []slog2.State
	for _, s := range states {
		if s.Cat != idx {
			continue
		}
		switch s.Rank {
		case rankA:
			as = append(as, s)
		case rankB:
			bs = append(bs, s)
		}
	}
	var total float64
	for _, a := range as {
		for _, b := range bs {
			lo, hi := a.Start, a.End
			if b.Start > lo {
				lo = b.Start
			}
			if b.End < hi {
				hi = b.End
			}
			if lo < t0 {
				lo = t0
			}
			if hi > t1 {
				hi = t1
			}
			if hi > lo {
				total += hi - lo
			}
		}
	}
	return total
}
