package jumpshot

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestRenderChromeTrace(t *testing.T) {
	f := makeLog(t)
	data, err := RenderChromeTrace(f)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	var slices, flowStarts, flowEnds, instants, meta int
	threadNames := map[float64]string{}
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			slices++
			if ev["dur"].(float64) < 0 {
				t.Errorf("negative duration in %v", ev)
			}
		case "s":
			flowStarts++
		case "f":
			flowEnds++
		case "i":
			instants++
		case "M":
			meta++
			args := ev["args"].(map[string]any)
			threadNames[ev["tid"].(float64)] = args["name"].(string)
		}
	}
	// makeLog: 4 states, 1 arrow, 1 event, 2 ranks.
	if slices != 4 || flowStarts != 1 || flowEnds != 1 || instants != 1 || meta != 2 {
		t.Fatalf("slices=%d s=%d f=%d i=%d meta=%d", slices, flowStarts, flowEnds, instants, meta)
	}
	if threadNames[0] != "PI_MAIN" || threadNames[1] != "P1" {
		t.Fatalf("thread names %v", threadNames)
	}
	// Timestamps are relative to the log start (first event at ts=0).
	if !strings.Contains(string(data), `"ts": 0`) {
		t.Error("no zero-based timestamp found")
	}
}

func TestAtPopupLookup(t *testing.T) {
	f := makeLog(t)
	// t=2.5 on rank 1: inside Compute [0,10] and PI_Read [2,3].
	hits := At(f, 1, 2.5)
	if len(hits) != 2 {
		t.Fatalf("hits at (1, 2.5): %v", hits)
	}
	// Innermost first: the read before the compute.
	if !strings.Contains(hits[0], "PI_Read") || !strings.Contains(hits[1], "Compute") {
		t.Fatalf("ordering wrong: %v", hits)
	}
	if !strings.Contains(hits[0], "line: y.go:9") {
		t.Errorf("popup cargo missing: %s", hits[0])
	}
	// At the bubble instant on rank 1: event + arrow endpoint + states.
	hits = At(f, 1, 2.8)
	var haveEvent, haveArrow bool
	for _, h := range hits {
		if strings.HasPrefix(h, "event MsgArrival") {
			haveEvent = true
		}
		if strings.HasPrefix(h, "message P0->P1") {
			haveArrow = true
		}
	}
	if !haveEvent || !haveArrow {
		t.Fatalf("bubble lookup: %v", hits)
	}
	// Empty spot.
	if hits := At(f, 0, 99); len(hits) != 0 {
		t.Fatalf("hits in empty region: %v", hits)
	}
}
