package jumpshot

import (
	"math"
	"strings"
	"testing"

	"repro/internal/clog2"
	"repro/internal/slog2"
)

// makeLog builds a small SLOG-2 file directly (bypassing conversion):
// Compute [0,10] on ranks 0 and 1, a Read nested [2,3] on rank 1, a Write
// [2,2.5] on rank 0, one arrow 0->1, and one event bubble.
func cargoRec(time float64, rank, id int32, cargo string) clog2.Record {
	r := clog2.Record{Type: clog2.RecCargoEvt, Time: time, Rank: rank, ID: id}
	r.SetCargo(cargo)
	return r
}

func makeLog(t *testing.T) *slog2.File {
	t.Helper()
	b := struct {
		f *clog2.File
	}{f: &clog2.File{NumRanks: 2}}
	defs := []clog2.Record{
		{Type: clog2.RecStateDef, ID: 1, Aux1: 2, Aux2: 3, Color: "gray", Name: "Compute"},
		{Type: clog2.RecStateDef, ID: 2, Aux1: 4, Aux2: 5, Color: "red", Name: "PI_Read"},
		{Type: clog2.RecStateDef, ID: 3, Aux1: 6, Aux2: 7, Color: "green", Name: "PI_Write"},
		{Type: clog2.RecEventDef, ID: 1<<20 + 1, Color: "yellow", Name: "MsgArrival"},
	}
	r0 := []clog2.Record{
		cargoRec(0, 0, 2, "proc: PI_MAIN"),
		cargoRec(2, 0, 6, "line: x.go:5"),
		{Type: clog2.RecMsgEvt, Time: 2.1, Rank: 0, Dir: clog2.DirSend, Aux1: 1, Aux2: 9, Aux3: 100},
		{Type: clog2.RecCargoEvt, Time: 2.5, Rank: 0, ID: 7},
		{Type: clog2.RecCargoEvt, Time: 10, Rank: 0, ID: 3},
	}
	r1 := []clog2.Record{
		cargoRec(0, 1, 2, "proc: P1"),
		cargoRec(2, 1, 4, "line: y.go:9"),
		{Type: clog2.RecMsgEvt, Time: 2.8, Rank: 1, Dir: clog2.DirRecv, Aux1: 0, Aux2: 9, Aux3: 100},
		cargoRec(2.8, 1, 1<<20+1, "chan: C1"),
		{Type: clog2.RecCargoEvt, Time: 3, Rank: 1, ID: 5},
		{Type: clog2.RecCargoEvt, Time: 10, Rank: 1, ID: 3},
	}
	b.f.Blocks = []clog2.Block{{Rank: 0, Records: append(defs, r0...)}, {Rank: 1, Records: r1}}
	sf, rep, err := slog2.Convert(b.f, slog2.ConvertOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.NestingErrors != 0 || rep.UnmatchedSends != 0 {
		t.Fatalf("bad fixture: %+v", rep)
	}
	return sf
}

func TestLegendCountsInclExcl(t *testing.T) {
	f := makeLog(t)
	entries := Legend(f, f.Start, f.End)
	byName := map[string]LegendEntry{}
	for _, e := range entries {
		byName[e.Name] = e
	}
	comp := byName["Compute"]
	if comp.Count != 2 {
		t.Errorf("Compute count = %d, want 2", comp.Count)
	}
	if math.Abs(comp.Incl-20) > 1e-9 {
		t.Errorf("Compute incl = %v, want 20", comp.Incl)
	}
	// Exclusive subtracts the nested Read (1 s) and Write (0.5 s):
	// "the inclusive time minus any nested states".
	if math.Abs(comp.Excl-18.5) > 1e-9 {
		t.Errorf("Compute excl = %v, want 18.5", comp.Excl)
	}
	read := byName["PI_Read"]
	if read.Count != 1 || math.Abs(read.Incl-1) > 1e-9 || math.Abs(read.Excl-1) > 1e-9 {
		t.Errorf("PI_Read entry %+v", read)
	}
	ev := byName["MsgArrival"]
	if ev.Count != 1 || ev.Kind != slog2.KindEvent {
		t.Errorf("MsgArrival entry %+v", ev)
	}
}

func TestLegendWindowed(t *testing.T) {
	f := makeLog(t)
	// Window [5,10]: only the two Compute states intersect.
	entries := Legend(f, 5, 10)
	for _, e := range entries {
		switch e.Name {
		case "Compute":
			if e.Count != 2 {
				t.Errorf("windowed Compute count = %d", e.Count)
			}
		case "PI_Read", "PI_Write", "MsgArrival":
			if e.Count != 0 {
				t.Errorf("windowed %s count = %d, want 0", e.Name, e.Count)
			}
		}
	}
}

func TestSortLegend(t *testing.T) {
	f := makeLog(t)
	entries := Legend(f, f.Start, f.End)
	SortLegend(entries, "incl")
	if entries[0].Name != "Compute" {
		t.Errorf("sort by incl: first = %s", entries[0].Name)
	}
	SortLegend(entries, "name")
	for i := 1; i < len(entries); i++ {
		if entries[i-1].Name > entries[i].Name {
			t.Fatalf("sort by name broken at %d", i)
		}
	}
	text := FormatLegend(entries)
	if !strings.Contains(text, "Compute") || !strings.Contains(text, "incl") {
		t.Errorf("FormatLegend output:\n%s", text)
	}
}

func TestStatsFractions(t *testing.T) {
	f := makeLog(t)
	stats := Stats(f, 0, 10)
	if len(stats) != 2 {
		t.Fatalf("stats for %d ranks", len(stats))
	}
	compIdx := f.CategoryIndex("Compute")
	readIdx := f.CategoryIndex("PI_Read")
	if math.Abs(stats[0].Fraction[compIdx]-1.0) > 1e-9 {
		t.Errorf("rank 0 compute fraction = %v", stats[0].Fraction[compIdx])
	}
	if math.Abs(stats[1].Fraction[readIdx]-0.1) > 1e-9 {
		t.Errorf("rank 1 read fraction = %v", stats[1].Fraction[readIdx])
	}
	// Clipped window [2,3]: read occupies all of it on rank 1.
	stats = Stats(f, 2, 3)
	for _, rs := range stats {
		if rs.Rank == 1 && math.Abs(rs.Fraction[readIdx]-1.0) > 1e-9 {
			t.Errorf("clipped read fraction = %v", rs.Fraction[readIdx])
		}
	}
	if got := FormatStats(f, stats); !strings.Contains(got, "PI_Read") {
		t.Errorf("FormatStats output:\n%s", got)
	}
}

func TestCategoryFraction(t *testing.T) {
	f := makeLog(t)
	// Compute dominates: 20s of 21.5s total state time.
	frac := CategoryFraction(f, "Compute", f.Start, f.End)
	if math.Abs(frac-20.0/21.5) > 1e-9 {
		t.Errorf("compute fraction = %v", frac)
	}
	if got := CategoryFraction(f, "NoSuch", 0, 10); got != 0 {
		t.Errorf("unknown category fraction = %v", got)
	}
}

func TestLoadImbalance(t *testing.T) {
	f := makeLog(t)
	// Compute time equal on both ranks → ratio 1.
	if got := LoadImbalance(f, "Compute", []int{0, 1}, 0, 10); math.Abs(got-1) > 1e-9 {
		t.Errorf("balanced imbalance = %v", got)
	}
	// Read time exists only on rank 1 → infinite imbalance.
	if got := LoadImbalance(f, "PI_Read", []int{0, 1}, 0, 10); !math.IsInf(got, 1) {
		t.Errorf("one-sided imbalance = %v", got)
	}
}

func TestOverlap(t *testing.T) {
	f := makeLog(t)
	// Compute [0,10] on both ranks: full overlap.
	if got := Overlap(f, "Compute", 0, 1, 0, 10); math.Abs(got-10) > 1e-9 {
		t.Errorf("compute overlap = %v", got)
	}
	// Read on rank 1 only: zero overlap with rank 0.
	if got := Overlap(f, "PI_Read", 0, 1, 0, 10); got != 0 {
		t.Errorf("read overlap = %v", got)
	}
}

func TestSearch(t *testing.T) {
	f := makeLog(t)
	hits := Search(f, SearchOptions{Name: "read", Rank: -1})
	if len(hits) != 1 || hits[0].Name != "PI_Read" || hits[0].Rank != 1 {
		t.Fatalf("hits %+v", hits)
	}
	hits = Search(f, SearchOptions{Name: "arrow", Rank: -1})
	if len(hits) != 1 || hits[0].Kind != "arrow" {
		t.Fatalf("arrow hits %+v", hits)
	}
	if !strings.Contains(hits[0].Detail, "tag: 9") || !strings.Contains(hits[0].Detail, "size: 100") {
		t.Errorf("arrow popup incomplete: %s", hits[0].Detail)
	}
	// Rank filter.
	hits = Search(f, SearchOptions{Rank: 0})
	for _, h := range hits {
		if h.Kind != "arrow" && h.Rank != 0 {
			t.Errorf("rank filter leaked %+v", h)
		}
	}
	// Duration filter: only the 10s Computes survive 5s minimum.
	hits = Search(f, SearchOptions{Rank: -1, MinDuration: 5})
	if len(hits) != 2 {
		t.Fatalf("duration filter hits %+v", hits)
	}
	// Cargo search.
	hits = Search(f, SearchOptions{Rank: -1, Cargo: "y.go:9"})
	if len(hits) != 1 || hits[0].Name != "PI_Read" {
		t.Fatalf("cargo hits %+v", hits)
	}
	// Limit.
	hits = Search(f, SearchOptions{Rank: -1, Limit: 1})
	if len(hits) != 1 {
		t.Fatalf("limit ignored: %d hits", len(hits))
	}
	if out := FormatHits(hits); !strings.Contains(out, "P") {
		t.Errorf("FormatHits output %q", out)
	}
}

func TestRenderSVGStructure(t *testing.T) {
	f := makeLog(t)
	svg := RenderSVG(f, View{Title: "test run"})
	for _, want := range []string{
		"<svg", "</svg>", "test run",
		"PI_MAIN",            // rank 0 label
		"P1",                 // rank 1 label
		"#ff0000", "#00ff00", // read red, write green
		"#808080",           // compute gray
		`stroke="#ffffff"`,  // white arrow
		"message P0-&gt;P1", // arrow popup
		"MsgArrival",        // bubble popup
		"dur:",              // state popup duration
		"line: y.go:9",      // cargo in popup
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
}

func TestRenderSVGViewportClips(t *testing.T) {
	f := makeLog(t)
	full := RenderSVG(f, View{})
	zoomed := RenderSVG(f, View{From: 5, To: 6})
	if strings.Contains(zoomed, "PI_Read") && strings.Contains(full, "PI_Read") == false {
		t.Fatal("full view missing read")
	}
	// The read [2,3] lies outside [5,6].
	if strings.Contains(zoomed, ">PI_Read ") {
		t.Error("zoomed view still contains out-of-window read state")
	}
}

func TestRenderSVGPreviewMode(t *testing.T) {
	// Build a log with many tiny states on one rank to force previews.
	cf := &clog2.File{NumRanks: 1}
	recs := []clog2.Record{
		{Type: clog2.RecStateDef, ID: 1, Aux1: 2, Aux2: 3, Color: "gray", Name: "Compute"},
	}
	for i := 0; i < 2000; i++ {
		t0 := float64(i) * 0.01
		recs = append(recs,
			clog2.Record{Type: clog2.RecCargoEvt, Time: t0, Rank: 0, ID: 2},
			clog2.Record{Type: clog2.RecCargoEvt, Time: t0 + 0.005, Rank: 0, ID: 3},
		)
	}
	cf.Blocks = []clog2.Block{{Rank: 0, Records: recs}}
	sf, _, err := slog2.Convert(cf, slog2.ConvertOptions{})
	if err != nil {
		t.Fatal(err)
	}
	svg := RenderSVG(sf, View{PreviewThreshold: 100})
	// Preview mode draws outline rectangles (fill="none").
	if !strings.Contains(svg, `fill="none"`) {
		t.Error("preview mode did not engage for 2000 states")
	}
	// With a huge threshold the same log draws individual rectangles.
	svg = RenderSVG(sf, View{PreviewThreshold: 10000})
	if strings.Contains(svg, `fill="none"`) {
		t.Error("individual mode drew preview outlines")
	}
}

func TestRenderASCII(t *testing.T) {
	f := makeLog(t)
	out := RenderASCII(f, View{Width: 40})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 { // header + 2 ranks
		t.Fatalf("ascii output:\n%s", out)
	}
	if !strings.Contains(lines[1], "PI_MAIN") || !strings.Contains(lines[2], "P1") {
		t.Fatalf("ascii labels missing:\n%s", out)
	}
	// Rank 1's row should be dominated by Compute 'C' with an 'R' in the
	// read window.
	if !strings.Contains(lines[2], "C") {
		t.Errorf("no compute cells in:\n%s", out)
	}
	if !strings.Contains(lines[2], "R") {
		t.Errorf("no read cell in:\n%s", out)
	}
}

func TestRenderSVGEscapesCargo(t *testing.T) {
	cf := &clog2.File{NumRanks: 1}
	cf.Blocks = []clog2.Block{{Rank: 0, Records: []clog2.Record{
		{Type: clog2.RecStateDef, ID: 1, Aux1: 2, Aux2: 3, Color: "red", Name: "S<evil>"},
		cargoRec(0, 0, 2, `<script>"x"&`),
		{Type: clog2.RecCargoEvt, Time: 1, Rank: 0, ID: 3},
	}}}
	sf, _, err := slog2.Convert(cf, slog2.ConvertOptions{})
	if err != nil {
		t.Fatal(err)
	}
	svg := RenderSVG(sf, View{})
	if strings.Contains(svg, "<script>") || strings.Contains(svg, "S<evil>") {
		t.Error("SVG output not escaped")
	}
}
