package jumpshot

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/slog2"
)

// RenderStatsSVG draws the duration-statistics view as a horizontal
// stacked-bar chart, one bar per rank, segment widths proportional to the
// category time fractions within [t0, t1] — Jumpshot's "picture from
// user-selected duration", which makes load imbalance across processes
// visible at a glance.
func RenderStatsSVG(f *slog2.File, t0, t1 float64, title string) string {
	stats := Stats(f, t0, t1)
	const (
		width   = 900
		barH    = 22
		gap     = 6
		left    = 74
		topPad  = 40
		botPad  = 40
		plotWpx = width - left - 30
	)
	height := topPad + len(stats)*(barH+gap) + botPad

	present := map[int]bool{}
	for _, rs := range stats {
		for cat := range rs.Time {
			present[cat] = true
		}
	}
	var cats []int
	for cat := range present {
		cats = append(cats, cat)
	}
	sort.Ints(cats)

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="11">`+"\n", width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="#101010"/>`+"\n", width, height)
	if title == "" {
		title = fmt.Sprintf("duration statistics [%.6f, %.6f]s", t0, t1)
	}
	fmt.Fprintf(&b, `<text x="%d" y="18" fill="#e0e0e0" font-size="13">%s</text>`+"\n", left, esc(title))

	// Percentage grid.
	for pct := 0; pct <= 100; pct += 25 {
		x := float64(left) + float64(plotWpx)*float64(pct)/100
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#303030"/>`+"\n",
			x, topPad-6, x, height-botPad+6)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" fill="#909090" text-anchor="middle">%d%%</text>`+"\n",
			x, height-botPad+20, pct)
	}

	for i, rs := range stats {
		y := topPad + i*(barH+gap)
		label := fmt.Sprintf("P%d", rs.Rank)
		if rs.Rank == 0 {
			label = "PI_MAIN"
		}
		fmt.Fprintf(&b, `<text x="6" y="%d" fill="#c0c0c0">%s</text>`+"\n", y+barH-6, esc(label))
		x := float64(left)
		for _, cat := range cats {
			frac := rs.Fraction[cat]
			if frac <= 0 {
				continue
			}
			w := float64(plotWpx) * frac
			fmt.Fprintf(&b, `<g><rect x="%.1f" y="%d" width="%.1f" height="%d" fill="%s" stroke="#000" stroke-width="0.4"/>`,
				x, y, w, barH, hexOf(f.Categories[cat].Color))
			fmt.Fprintf(&b, `<title>%s: %.1f%% (%0.6fs)</title></g>`+"\n",
				esc(f.Categories[cat].Name), frac*100, rs.Time[cat])
			x += w
		}
	}

	// Legend swatches.
	x := left
	ly := height - 10
	for _, cat := range cats {
		name := f.Categories[cat].Name
		if x > width-140 {
			break
		}
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="9" height="9" fill="%s"/>`, x, ly-9, hexOf(f.Categories[cat].Color))
		fmt.Fprintf(&b, `<text x="%d" y="%d" fill="#909090">%s</text>`+"\n", x+12, ly, esc(name))
		x += 13 + 7*len(name) + 10
	}
	b.WriteString("</svg>\n")
	return b.String()
}
