package jumpshot

import (
	"fmt"
	"strings"

	"repro/internal/slog2"
)

// RenderHTML wraps the timeline SVG in a self-contained interactive page:
// wheel to zoom around the cursor, drag to scroll — Jumpshot's "seamless
// scrolling at any zoom level of an entire logfile plus dragged-zoom,
// grasp and scroll" without a Java runtime. The page also embeds the
// legend table (with its count/incl/excl statistics) and any conversion
// warnings. Pure stdlib output: one .html file, no external assets.
func RenderHTML(f *slog2.File, v View) string {
	v = v.normalized(f)
	svg := RenderSVG(f, v)
	legend := Legend(f, v.From, v.To)
	SortLegend(legend, "incl")

	var b strings.Builder
	b.WriteString(`<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>`)
	b.WriteString(esc(pageTitle(v)))
	b.WriteString(`</title>
<style>
body { background:#181818; color:#d0d0d0; font-family:monospace; margin:1em; }
#viewport { overflow:hidden; border:1px solid #333; cursor:grab; }
#viewport:active { cursor:grabbing; }
table { border-collapse:collapse; margin-top:1em; }
td, th { border:1px solid #333; padding:2px 8px; text-align:right; }
td:first-child, th:first-child { text-align:left; }
.swatch { display:inline-block; width:10px; height:10px; margin-right:4px; }
.warn { color:#e0a000; }
h2 { font-size:14px; }
</style></head><body>
<h2>`)
	b.WriteString(esc(pageTitle(v)))
	b.WriteString(`</h2>
<p>wheel: zoom around cursor &middot; drag: scroll &middot; double-click: reset &middot; hover: popups</p>
<div id="viewport">`)
	b.WriteString(svg)
	b.WriteString(`</div>
<script>
(function() {
  const vp = document.getElementById('viewport');
  const svg = vp.querySelector('svg');
  const w = parseFloat(svg.getAttribute('width'));
  const h = parseFloat(svg.getAttribute('height'));
  svg.setAttribute('viewBox', '0 0 ' + w + ' ' + h);
  svg.removeAttribute('width'); svg.removeAttribute('height');
  svg.style.width = '100%';
  let vb = {x: 0, y: 0, w: w, h: h};
  const apply = () => svg.setAttribute('viewBox', vb.x+' '+vb.y+' '+vb.w+' '+vb.h);
  vp.addEventListener('wheel', e => {
    e.preventDefault();
    const r = svg.getBoundingClientRect();
    const fx = (e.clientX - r.left) / r.width;
    const scale = e.deltaY > 0 ? 1.2 : 1/1.2;
    const nw = Math.min(w, Math.max(w/4096, vb.w * scale));
    vb.x = Math.max(0, Math.min(w - nw, vb.x + (vb.w - nw) * fx));
    vb.w = nw;
    apply();
  }, {passive: false});
  let drag = null;
  vp.addEventListener('mousedown', e => { drag = {x: e.clientX, vx: vb.x}; });
  window.addEventListener('mousemove', e => {
    if (!drag) return;
    const r = svg.getBoundingClientRect();
    vb.x = Math.max(0, Math.min(w - vb.w, drag.vx - (e.clientX - drag.x) * vb.w / r.width));
    apply();
  });
  window.addEventListener('mouseup', () => { drag = null; });
  vp.addEventListener('dblclick', () => { vb = {x: 0, y: 0, w: w, h: h}; apply(); });
})();
</script>
<h2>legend</h2>
<table><tr><th>name</th><th>kind</th><th>count</th><th>incl (s)</th><th>excl (s)</th></tr>
`)
	for _, e := range legend {
		kind := "state"
		incl := fmt.Sprintf("%.6f", e.Incl)
		excl := fmt.Sprintf("%.6f", e.Excl)
		if e.Kind == slog2.KindEvent {
			kind, incl, excl = "event", "-", "-"
		}
		fmt.Fprintf(&b, `<tr><td><span class="swatch" style="background:%s"></span>%s</td><td>%s</td><td>%d</td><td>%s</td><td>%s</td></tr>`+"\n",
			hexOf(e.Color), esc(e.Name), kind, e.Count, incl, excl)
	}
	b.WriteString("</table>\n")
	if len(f.Warnings) > 0 {
		b.WriteString("<h2>conversion warnings</h2>\n<ul>\n")
		for _, wmsg := range f.Warnings {
			fmt.Fprintf(&b, `<li class="warn">%s</li>`+"\n", esc(wmsg))
		}
		b.WriteString("</ul>\n")
	}
	b.WriteString("</body></html>\n")
	return b.String()
}

func pageTitle(v View) string {
	if v.Title != "" {
		return v.Title
	}
	return "Pilot visual log"
}
