package jumpshot

import (
	"math/rand"
	"testing"

	"repro/internal/slog2"
)

// randomTileFile builds a multi-rank frame tree straight from slog2
// structures (the jumpshot tests' usual shortcut).
func randomTileFile(t *testing.T, seed int64, nranks, n int) *slog2.File {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	f := &slog2.File{
		NumRanks: nranks,
		Start:    0, End: 100,
		Categories: []slog2.Category{
			{Name: "A", Color: "red"},
			{Name: "B", Color: "green"},
			{Name: "E", Color: "yellow", Kind: slog2.KindEvent},
		},
	}
	root := &slog2.Frame{Start: 0, End: 100}
	for i := 0; i < n; i++ {
		rank := rng.Intn(nranks)
		t0 := rng.Float64() * 95
		root.States = append(root.States, slog2.State{
			Rank: rank, Cat: rng.Intn(2), Start: t0, End: t0 + rng.Float64()*5,
		})
		if rng.Intn(3) == 0 {
			root.Events = append(root.Events, slog2.Event{Rank: rank, Cat: 2, Time: t0})
		}
		if rng.Intn(4) == 0 {
			root.Arrows = append(root.Arrows, slog2.Arrow{
				SrcRank: rank, DstRank: rng.Intn(nranks),
				Start: t0, End: t0 + rng.Float64(),
			})
		}
	}
	f.Root = root
	return f
}

// Property: Tile equals brute-force filtering of All over random time
// and rank windows — the contract the pilot-serve tile handler relies
// on for correctness.
func TestTileMatchesBruteForce(t *testing.T) {
	f := randomTileFile(t, 3, 6, 800)
	all := struct {
		s []slog2.State
		a []slog2.Arrow
		e []slog2.Event
	}{}
	all.s, all.a, all.e = f.All()
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 120; trial++ {
		t0 := rng.Float64() * 100
		t1 := t0 + rng.Float64()*(100-t0)
		lo := rng.Intn(f.NumRanks)
		hi := lo + rng.Intn(f.NumRanks-lo)
		w := Window{T0: t0, T1: t1, RankLo: lo, RankHi: hi}
		if trial%10 == 0 {
			w.RankLo, w.RankHi = 0, -1 // all ranks
		}
		qs, qa, qe := Tile(f, w)
		var ws, wa, we int
		for _, s := range all.s {
			if s.End >= t0 && s.Start <= t1 && w.contains(s.Rank) {
				ws++
			}
		}
		for _, a := range all.a {
			alo, ahi := a.Start, a.End
			if ahi < alo {
				alo, ahi = ahi, alo
			}
			if ahi >= t0 && alo <= t1 && (w.contains(a.SrcRank) || w.contains(a.DstRank)) {
				wa++
			}
		}
		for _, e := range all.e {
			if e.Time >= t0 && e.Time <= t1 && w.contains(e.Rank) {
				we++
			}
		}
		if len(qs) != ws || len(qa) != wa || len(qe) != we {
			t.Fatalf("window %+v: Tile %d/%d/%d, brute force %d/%d/%d",
				w, len(qs), len(qa), len(qe), ws, wa, we)
		}
	}
}

func TestTileRankOrder(t *testing.T) {
	f := &slog2.File{NumRanks: 5, Root: &slog2.Frame{}}
	got := TileRankOrder(f, Window{RankLo: 0, RankHi: -1})
	if len(got) != 5 || got[0] != 0 || got[4] != 4 {
		t.Fatalf("all-ranks order %v", got)
	}
	got = TileRankOrder(f, Window{RankLo: 2, RankHi: 3})
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("window order %v", got)
	}
	// Out-of-range windows clamp to the file's ranks.
	got = TileRankOrder(f, Window{RankLo: 3, RankHi: 99})
	if len(got) != 2 || got[0] != 3 || got[1] != 4 {
		t.Fatalf("clamped order %v", got)
	}
}
