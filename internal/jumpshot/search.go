package jumpshot

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/slog2"
)

// Hit is one result of the search-and-scan facility, which "helps locate
// graphical objects which are hard to find".
type Hit struct {
	// Kind is "state", "event" or "arrow".
	Kind string
	// Name is the category name ("arrow" for arrows).
	Name string
	Rank int // for arrows, the source rank
	// Start and End bound the drawable (equal for events).
	Start, End float64
	// Detail is the popup-style description.
	Detail string
}

// SearchOptions narrows a search.
type SearchOptions struct {
	// Name, if non-empty, matches category names case-insensitively by
	// substring.
	Name string
	// Rank, if non-negative, restricts hits to one timeline.
	Rank int
	// From/To bound the scan window; zero values mean the whole log.
	From, To float64
	// MinDuration drops states shorter than this (seconds).
	MinDuration float64
	// Cargo, if non-empty, matches popup text by substring.
	Cargo string
	// Limit caps the number of hits (0 = unlimited).
	Limit int
}

// Search scans the log for drawables matching opts, returning hits in
// start-time order.
func Search(f *slog2.File, opts SearchOptions) []Hit {
	t0, t1 := opts.From, opts.To
	if t1 <= t0 {
		t0, t1 = f.Start, f.End
	}
	nameMatch := func(name string) bool {
		if opts.Name == "" {
			return true
		}
		return strings.Contains(strings.ToLower(name), strings.ToLower(opts.Name))
	}
	cargoMatch := func(cargo string) bool {
		if opts.Cargo == "" {
			return true
		}
		return strings.Contains(strings.ToLower(cargo), strings.ToLower(opts.Cargo))
	}
	rankMatch := func(rank int) bool { return opts.Rank < 0 || rank == opts.Rank }

	states, arrows, events := f.Query(t0, t1)
	var hits []Hit
	for _, s := range states {
		name := f.Categories[s.Cat].Name
		if !nameMatch(name) || !rankMatch(s.Rank) || s.Duration() < opts.MinDuration {
			continue
		}
		if !cargoMatch(s.StartCargo) && !cargoMatch(s.EndCargo) {
			continue
		}
		hits = append(hits, Hit{
			Kind: "state", Name: name, Rank: s.Rank, Start: s.Start, End: s.End,
			Detail: fmt.Sprintf("dur: %.6fs %s", s.Duration(), s.StartCargo),
		})
	}
	for _, e := range events {
		name := f.Categories[e.Cat].Name
		if !nameMatch(name) || !rankMatch(e.Rank) || !cargoMatch(e.Cargo) || opts.MinDuration > 0 {
			continue
		}
		hits = append(hits, Hit{
			Kind: "event", Name: name, Rank: e.Rank, Start: e.Time, End: e.Time,
			Detail: e.Cargo,
		})
	}
	if nameMatch("arrow") && opts.Cargo == "" {
		for _, a := range arrows {
			if !rankMatch(a.SrcRank) && !rankMatch(a.DstRank) {
				continue
			}
			if a.End-a.Start < opts.MinDuration {
				continue
			}
			// The arrow popup: "the start and end times of the
			// transmission, its duration, the MPI tag, and message size."
			hits = append(hits, Hit{
				Kind: "arrow", Name: "arrow", Rank: a.SrcRank, Start: a.Start, End: a.End,
				Detail: fmt.Sprintf("dur: %.6fs to: P%d tag: %d size: %d",
					a.End-a.Start, a.DstRank, a.Tag, a.Size),
			})
		}
	}
	sort.SliceStable(hits, func(i, j int) bool { return hits[i].Start < hits[j].Start })
	if opts.Limit > 0 && len(hits) > opts.Limit {
		hits = hits[:opts.Limit]
	}
	return hits
}

// FormatHits renders hits as an aligned text listing.
func FormatHits(hits []Hit) string {
	var b strings.Builder
	for _, h := range hits {
		fmt.Fprintf(&b, "%-6s %-14s P%-3d [%12.6f, %12.6f] %s\n",
			h.Kind, h.Name, h.Rank, h.Start, h.End, h.Detail)
	}
	return b.String()
}
