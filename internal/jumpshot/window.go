package jumpshot

import "repro/internal/slog2"

// Window is a tile query: a time window crossed with a rank window —
// the unit a trace-serving viewer fetches. RankLo/RankHi of (0, -1)
// mean "all ranks".
type Window struct {
	T0, T1         float64
	RankLo, RankHi int
}

// AllRanks reports whether the window does not cut by rank.
func (w Window) AllRanks() bool { return w.RankHi < w.RankLo }

// contains reports whether rank falls inside the window's rank cut.
func (w Window) contains(rank int) bool {
	return w.AllRanks() || (rank >= w.RankLo && rank <= w.RankHi)
}

// Tile fetches the drawables of one tile: Query over the time window,
// then the rank-window cut. States and events need their own rank
// inside the window; an arrow stays when either endpoint does, so a
// tile never shows a message stub without its context.
func Tile(f *slog2.File, w Window) (states []slog2.State, arrows []slog2.Arrow, events []slog2.Event) {
	states, arrows, events = f.Query(w.T0, w.T1)
	if w.AllRanks() {
		return states, arrows, events
	}
	return FilterRanks(states, arrows, events, w.RankLo, w.RankHi)
}

// FilterRanks narrows query results to ranks in [lo, hi]. The inputs
// are filtered in place-style copies; order is preserved.
func FilterRanks(states []slog2.State, arrows []slog2.Arrow, events []slog2.Event, lo, hi int) ([]slog2.State, []slog2.Arrow, []slog2.Event) {
	w := Window{RankLo: lo, RankHi: hi}
	fs := make([]slog2.State, 0, len(states))
	for _, s := range states {
		if w.contains(s.Rank) {
			fs = append(fs, s)
		}
	}
	fa := make([]slog2.Arrow, 0, len(arrows))
	for _, a := range arrows {
		if w.contains(a.SrcRank) || w.contains(a.DstRank) {
			fa = append(fa, a)
		}
	}
	fe := make([]slog2.Event, 0, len(events))
	for _, e := range events {
		if w.contains(e.Rank) {
			fe = append(fe, e)
		}
	}
	return fs, fa, fe
}

// TileRankOrder lists the ranks a tile's SVG rendering shows, in
// timeline order — the View.RankOrder for a rank-windowed render.
func TileRankOrder(f *slog2.File, w Window) []int {
	lo, hi := 0, f.NumRanks-1
	if !w.AllRanks() {
		if w.RankLo > lo {
			lo = w.RankLo
		}
		if w.RankHi < hi {
			hi = w.RankHi
		}
	}
	var ranks []int
	for r := lo; r <= hi; r++ {
		ranks = append(ranks, r)
	}
	return ranks
}
