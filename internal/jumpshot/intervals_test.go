package jumpshot

import (
	"math"
	"math/rand"
	"testing"
)

func TestNormalizeIntervals(t *testing.T) {
	got := normalizeIntervals([]Interval{{5, 7}, {1, 3}, {2, 4}, {7, 9}})
	want := []Interval{{1, 4}, {5, 9}}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if normalizeIntervals(nil) != nil {
		t.Fatal("nil input should stay nil")
	}
}

func TestSubtractIntervals(t *testing.T) {
	a := []Interval{{0, 10}}
	b := []Interval{{2, 3}, {5, 7}}
	got := subtractIntervals(a, b)
	want := []Interval{{0, 2}, {3, 5}, {7, 10}}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	// Subtrahend covering everything leaves nothing.
	if got := subtractIntervals([]Interval{{1, 2}}, []Interval{{0, 5}}); len(got) != 0 {
		t.Fatalf("covered subtraction left %v", got)
	}
	// Empty subtrahend is identity.
	if got := subtractIntervals(a, nil); len(got) != 1 || got[0] != a[0] {
		t.Fatalf("identity subtraction broke: %v", got)
	}
}

func TestIntervalOverlapAndTotal(t *testing.T) {
	a := []Interval{{0, 5}, {10, 15}}
	b := []Interval{{3, 12}}
	if got := IntervalOverlap(a, b); math.Abs(got-4) > 1e-12 {
		t.Fatalf("overlap = %v, want 4", got)
	}
	if got := IntervalTotal(a); got != 10 {
		t.Fatalf("total = %v", got)
	}
	if got := IntervalOverlap(a, nil); got != 0 {
		t.Fatalf("overlap with empty = %v", got)
	}
}

// Property: subtract/overlap agree with a brute-force point sampling.
func TestIntervalAlgebraProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	genSet := func() []Interval {
		n := rng.Intn(5)
		var ivs []Interval
		for i := 0; i < n; i++ {
			s := rng.Float64() * 10
			ivs = append(ivs, Interval{s, s + rng.Float64()*3})
		}
		return normalizeIntervals(ivs)
	}
	contains := func(ivs []Interval, x float64) bool {
		for _, iv := range ivs {
			if x >= iv.Start && x < iv.End {
				return true
			}
		}
		return false
	}
	for trial := 0; trial < 100; trial++ {
		a, b := genSet(), genSet()
		diff := subtractIntervals(a, b)
		// Sample points: membership in diff == in a and not in b.
		for s := 0; s < 200; s++ {
			x := rng.Float64() * 14
			want := contains(a, x) && !contains(b, x)
			if got := contains(diff, x); got != want {
				t.Fatalf("trial %d x=%v: diff=%v want=%v (a=%v b=%v d=%v)", trial, x, got, want, a, b, diff)
			}
		}
		// Overlap via sampling (coarse agreement).
		const steps = 20000
		var approx float64
		for s := 0; s < steps; s++ {
			x := 14 * float64(s) / steps
			if contains(a, x) && contains(b, x) {
				approx += 14.0 / steps
			}
		}
		if got := IntervalOverlap(a, b); math.Abs(got-approx) > 0.05 {
			t.Fatalf("trial %d: overlap %v vs sampled %v", trial, got, approx)
		}
	}
}

func TestBusyIntervalsFromLog(t *testing.T) {
	f := makeLog(t) // Compute [0,10] both ranks; Read [2,3] on rank 1
	busy := BusyIntervals(f, 1, 0, 10)
	// Rank 1: busy = [0,2] + [3,10].
	if got := IntervalTotal(busy); math.Abs(got-9) > 1e-9 {
		t.Fatalf("rank 1 busy = %v (%v), want 9", got, busy)
	}
	busy0 := BusyIntervals(f, 0, 0, 10)
	if got := IntervalTotal(busy0); math.Abs(got-10) > 1e-9 {
		t.Fatalf("rank 0 busy = %v, want 10 (writes do not block)", got)
	}
	ratio := BusyOverlapRatio(f, []int{0, 1}, 0, 10)
	if ratio < 0.85 || ratio > 1.05 {
		t.Fatalf("overlap ratio = %v for almost fully parallel ranks", ratio)
	}
}
