package jumpshot

import (
	"strings"
	"testing"
)

func TestRenderHTMLSelfContained(t *testing.T) {
	f := makeLog(t)
	f.Warnings = append(f.Warnings, "Equal Drawables: demo warning")
	html := RenderHTML(f, View{Title: "demo run"})
	for _, want := range []string{
		"<!DOCTYPE html>",
		"demo run",
		"<svg",             // embedded timeline
		"viewBox",          // zoom script wiring
		"addEventListener", // interaction script
		"legend",
		"Compute",
		"incl (s)",
		"Equal Drawables: demo warning",
		"</html>",
	} {
		if !strings.Contains(html, want) {
			t.Errorf("HTML missing %q", want)
		}
	}
	// Self-contained: no external references (the SVG xmlns is a
	// namespace identifier, never fetched).
	stripped := strings.ReplaceAll(html, `xmlns="http://www.w3.org/2000/svg"`, "")
	for _, banned := range []string{"http://", "https://", "src=", "href="} {
		if strings.Contains(stripped, banned) {
			t.Errorf("HTML references external resource via %q", banned)
		}
	}
}

func TestRenderHTMLEscapes(t *testing.T) {
	f := makeLog(t)
	f.Warnings = append(f.Warnings, `<script>alert("x")</script>`)
	html := RenderHTML(f, View{Title: `<img onerror=x>`})
	if strings.Contains(html, `<script>alert`) || strings.Contains(html, "<img onerror") {
		t.Error("HTML output not escaped")
	}
}

func TestRenderHTMLDefaultTitle(t *testing.T) {
	f := makeLog(t)
	html := RenderHTML(f, View{})
	if !strings.Contains(html, "Pilot visual log") {
		t.Error("default title missing")
	}
}
