package collisions

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/vis"
)

func TestGenerateCSVDeterministicAndParseable(t *testing.T) {
	a := GenerateCSV(500, 1)
	b := GenerateCSV(500, 1)
	c := GenerateCSV(500, 2)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed differs")
	}
	if bytes.Equal(a, c) {
		t.Fatal("different seeds identical")
	}
	recs, err := ParseSegment(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 500 {
		t.Fatalf("parsed %d rows", len(recs))
	}
	for _, r := range recs {
		if r.Year < MinYear || r.Year > MaxYear || r.Severity < 1 || r.Severity > 5 {
			t.Fatalf("implausible record %+v", r)
		}
	}
}

func TestParseSegmentErrors(t *testing.T) {
	cases := []string{
		"1,2,3\n",
		"a,b,c,d,e,f\n",
		"1,2,3,4,5,6,7\n",
	}
	for _, c := range cases {
		if _, err := ParseSegment([]byte(c)); err == nil {
			t.Errorf("ParseSegment(%q) succeeded", c)
		}
	}
	// Header-only and empty inputs parse to zero rows.
	if recs, err := ParseSegment([]byte("id,year,severity,vehicles,fatalities,region\n")); err != nil || len(recs) != 0 {
		t.Errorf("header-only parse: %v %v", recs, err)
	}
}

func TestSegmentOffsetsCoverEverything(t *testing.T) {
	data := GenerateCSV(1000, 3)
	for _, n := range []int{1, 2, 3, 7, 16} {
		offs := SegmentOffsets(data, n)
		if len(offs) != n {
			t.Fatalf("n=%d: %d segments", n, len(offs))
		}
		total := 0
		for i, o := range offs {
			recs, err := ParseSegment(data[o[0]:o[1]])
			if err != nil {
				t.Fatalf("n=%d segment %d: %v", n, i, err)
			}
			total += len(recs)
			if i > 0 && o[0] != offs[i-1][1] {
				t.Fatalf("n=%d: gap between segments %d and %d", n, i-1, i)
			}
		}
		if total != 1000 {
			t.Fatalf("n=%d: segments cover %d rows", n, total)
		}
	}
}

func TestRunQueryFilters(t *testing.T) {
	recs := []Record{
		{ID: 1, Year: 2000, Severity: 1, Vehicles: 2, Fatalities: 0},
		{ID: 2, Year: 2005, Severity: 4, Vehicles: 1, Fatalities: 2},
		{ID: 3, Year: 2010, Severity: 4, Vehicles: 3, Fatalities: 1},
	}
	res := RunQuery(recs, Query{Severity: 4, YearFrom: 2000, YearTo: 2007, Cost: 0})
	if res.Rows != 1 || res.Fatalities != 2 || res.Vehicles != 1 {
		t.Fatalf("filtered result %+v", res)
	}
	all := RunQuery(recs, Query{YearFrom: MinYear, YearTo: MaxYear, Cost: 0})
	if all.Rows != 3 || all.Fatalities != 3 {
		t.Fatalf("unfiltered result %+v", all)
	}
}

func testCfg(t *testing.T, workers int, services string) Config {
	t.Helper()
	dir := t.TempDir()
	return Config{
		Workers:   workers,
		Rows:      4000,
		Seed:      7,
		QueryCost: 10,
		Core: core.Config{
			Services:     services,
			CheckLevel:   3,
			JumpshotPath: filepath.Join(dir, "col.clog2"),
			NativePath:   filepath.Join(dir, "col.log"),
			ArrowSpread:  -1,
		},
	}
}

// All three variants must give identical answers: the bugs are
// parallelization bugs, not correctness bugs.
func TestVariantsAgree(t *testing.T) {
	fixed, err := RunFixed(testCfg(t, 3, ""))
	if err != nil {
		t.Fatal(err)
	}
	instA, err := RunInstanceA(testCfg(t, 3, ""))
	if err != nil {
		t.Fatal(err)
	}
	instB, err := RunInstanceB(testCfg(t, 3, ""))
	if err != nil {
		t.Fatal(err)
	}
	if len(fixed.Answers) == 0 {
		t.Fatal("no answers")
	}
	for qi := range fixed.Answers {
		a, b, c := fixed.Answers[qi], instA.Answers[qi], instB.Answers[qi]
		if a.Rows != b.Rows || a.Rows != c.Rows ||
			a.Fatalities != b.Fatalities || a.Fatalities != c.Fatalities {
			t.Fatalf("query %d disagrees: %+v %+v %+v", qi, a, b, c)
		}
		if math.Abs(a.Checksum-b.Checksum) > 1e-6 || math.Abs(a.Checksum-c.Checksum) > 1e-6 {
			t.Fatalf("query %d checksums disagree", qi)
		}
	}
	// Sanity: the whole dataset is seen.
	var rows int
	for qi := 0; qi < 5; qi++ { // severities 1..5 partition all rows
		rows += fixed.Answers[qi].Rows
	}
	if rows != 4000 {
		t.Fatalf("severity queries cover %d rows, want 4000", rows)
	}
}

// Workers answer different segments, so partials must differ from the
// merged result — guards against every worker scanning the whole file.
func TestWorkDivision(t *testing.T) {
	one, err := RunFixed(testCfg(t, 1, ""))
	if err != nil {
		t.Fatal(err)
	}
	four, err := RunFixed(testCfg(t, 4, ""))
	if err != nil {
		t.Fatal(err)
	}
	for qi := range one.Answers {
		if one.Answers[qi].Rows != four.Answers[qi].Rows {
			t.Fatalf("query %d: %d rows with 1 worker, %d with 4", qi,
				one.Answers[qi].Rows, four.Answers[qi].Rows)
		}
	}
}

// The Fig. 4 metric: instance A's query-phase busy overlap collapses
// toward zero while the fixed program's workers genuinely overlap.
func TestInstanceASerializesQueries(t *testing.T) {
	cfg := testCfg(t, 3, "j")
	cfg.Rows = 6000
	cfg.QueryCost = 2500
	fixed, err := RunFixed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fFixed, _, err := vis.ConvertFile(cfg.Core.JumpshotPath, vis.ConvertOptions{})
	if err != nil {
		t.Fatal(err)
	}

	cfgA := testCfg(t, 3, "j")
	cfgA.Rows = 6000
	cfgA.QueryCost = 2500
	instA, err := RunInstanceA(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	fA, _, err := vis.ConvertFile(cfgA.Core.JumpshotPath, vis.ConvertOptions{})
	if err != nil {
		t.Fatal(err)
	}

	workers := []int{1, 2, 3}
	// Query phase = the tail of the run after the read phase.
	qFrac := func(f *vis.File, res *Result) float64 {
		total := res.ReadPhase + res.QueryPhase
		t0 := f.Start + (f.End-f.Start)*float64(res.ReadPhase)/float64(total)
		return vis.BusyOverlapRatio(f, workers, t0, f.End)
	}
	rFixed := qFrac(fFixed, fixed)
	rA := qFrac(fA, instA)
	if rA >= rFixed {
		t.Errorf("instance A overlap %.3f not below fixed %.3f", rA, rFixed)
	}
	if rA > 0.45 {
		t.Errorf("instance A overlap %.3f; expected near-serialized execution", rA)
	}
}

// The Fig. 5 metric: instance B's read phase dwarfs the fixed program's,
// and its total barely improves with more workers.
func TestInstanceBMainDoesAllTheReading(t *testing.T) {
	mk := func(w int) Config {
		c := testCfg(t, w, "")
		c.Rows = 20000
		c.QueryCost = 1
		// Deterministic read cost (think time): PI_MAIN parses everything
		// itself in instance B, so its runtime is pinned by this sleep
		// regardless of scheduler noise.
		c.ReadSleepPerRow = 10 * time.Microsecond
		return c
	}
	b2, err := RunInstanceB(mk(2))
	if err != nil {
		t.Fatal(err)
	}
	b4, err := RunInstanceB(mk(4))
	if err != nil {
		t.Fatal(err)
	}
	// Total runtime nearly flat as workers scale.
	ratio := float64(b2.Elapsed) / float64(b4.Elapsed)
	if ratio > 1.6 || ratio < 0.6 {
		t.Errorf("instance B scaled with workers: 2w=%v 4w=%v", b2.Elapsed, b4.Elapsed)
	}
	// Read phase dominates.
	if b4.ReadPhase < b4.QueryPhase {
		t.Errorf("instance B read phase %v not dominant over query phase %v", b4.ReadPhase, b4.QueryPhase)
	}
}

func TestFlattenRoundtrip(t *testing.T) {
	recs, err := ParseSegment(GenerateCSV(50, 9))
	if err != nil {
		t.Fatal(err)
	}
	back := unflattenRecords(flattenRecords(recs))
	if len(back) != len(recs) {
		t.Fatalf("roundtrip %d vs %d", len(back), len(recs))
	}
	for i := range recs {
		if recs[i] != back[i] {
			t.Fatalf("record %d changed: %+v vs %+v", i, recs[i], back[i])
		}
	}
}
