// Package collisions reproduces the paper's second course assignment
// (Section IV.B): read a large CSV of automotive-collision records in
// parallel, "with different worker processes starting from different file
// offsets, and then carry out a series of queries in parallel, merging
// the results". The paper used a 316 MB Canadian collision dataset; this
// package generates a synthetic equivalent whose parsing cost plays the
// same role.
//
// Three program variants are provided:
//
//   - RunFixed — the intended solution: workers parse their own file
//     segment concurrently, and each query round issues all PI_Writes
//     before any PI_Read.
//   - RunInstanceA — the first student bug (Fig. 4): file segments are
//     shipped to workers one at a time (partially overlapping I/O), and
//     query processing interleaves a PI_Write/PI_Read pair per worker,
//     inadvertently serializing the calculations.
//   - RunInstanceB — the second student bug (Fig. 5): PI_MAIN parses the
//     whole file itself during a long initialisation while the workers
//     sit idle, so the total run time barely changes with worker count.
//
// All three produce identical query answers — "these were not bugs in the
// sense of causing incorrect results, but they were bugs in
// parallelization".
package collisions

import (
	"bytes"
	"fmt"
	"math"
	"strconv"
	"time"

	"repro/internal/core"
)

// Record is one collision row.
type Record struct {
	ID         int
	Year       int
	Severity   int // 1..5
	Vehicles   int
	Fatalities int
	Region     int // 0..12
}

// Years covered by the synthetic dataset.
const (
	MinYear = 1999
	MaxYear = 2014
)

// GenerateCSV produces n deterministic collision rows as CSV bytes with a
// header line, standing in for the paper's 316 MB dataset.
func GenerateCSV(n int, seed int64) []byte {
	var b bytes.Buffer
	b.Grow(n * 32)
	b.WriteString("id,year,severity,vehicles,fatalities,region\n")
	s := uint64(seed)*0x9e3779b97f4a7c15 + 1
	next := func(mod uint64) uint64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return s % mod
	}
	for i := 0; i < n; i++ {
		year := MinYear + int(next(MaxYear-MinYear+1))
		sev := 1 + int(next(5))
		veh := 1 + int(next(4))
		fat := 0
		if sev >= 4 {
			fat = int(next(3))
		}
		region := int(next(13))
		fmt.Fprintf(&b, "%d,%d,%d,%d,%d,%d\n", i, year, sev, veh, fat, region)
	}
	return b.Bytes()
}

// ParseSegment parses the CSV rows fully contained in data (which must
// begin at a line boundary). This is the workers' "file reading" compute.
func ParseSegment(data []byte) ([]Record, error) {
	var out []Record
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		var line []byte
		if nl < 0 {
			line, data = data, nil
		} else {
			line, data = data[:nl], data[nl+1:]
		}
		if len(line) == 0 || line[0] == 'i' { // header or blank
			continue
		}
		rec, err := parseLine(line)
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
	return out, nil
}

func parseLine(line []byte) (Record, error) {
	var fields [6]int
	fi := 0
	start := 0
	for i := 0; i <= len(line); i++ {
		if i == len(line) || line[i] == ',' {
			if fi >= 6 {
				return Record{}, fmt.Errorf("collisions: too many fields in %q", line)
			}
			v, err := strconv.Atoi(string(line[start:i]))
			if err != nil {
				return Record{}, fmt.Errorf("collisions: bad field %d in %q: %v", fi, line, err)
			}
			fields[fi] = v
			fi++
			start = i + 1
		}
	}
	if fi != 6 {
		return Record{}, fmt.Errorf("collisions: %d fields in %q, want 6", fi, line)
	}
	return Record{ID: fields[0], Year: fields[1], Severity: fields[2],
		Vehicles: fields[3], Fatalities: fields[4], Region: fields[5]}, nil
}

// SegmentOffsets splits data into n segments aligned to line boundaries,
// skipping the header: the "different file offsets" the assignment calls
// for. It returns n [start, end) pairs covering all rows.
func SegmentOffsets(data []byte, n int) [][2]int {
	header := bytes.IndexByte(data, '\n') + 1
	body := data[header:]
	out := make([][2]int, 0, n)
	prev := header
	for i := 1; i <= n; i++ {
		target := header + len(body)*i/n
		if i == n {
			target = len(data)
		} else {
			// Advance to the next line boundary.
			for target < len(data) && data[target-1] != '\n' {
				target++
			}
		}
		if target < prev {
			target = prev
		}
		out = append(out, [2]int{prev, target})
		prev = target
	}
	return out
}

// Query is one analysis over the dataset. The paper's assignment ran "a
// series of queries in parallel, merging the results".
type Query struct {
	// Severity filters rows (0 = all).
	Severity int
	// YearFrom/YearTo bound the year range inclusive.
	YearFrom, YearTo int
	// Cost adds per-matching-row floating-point work so query time is
	// measurable (the knob that makes instance A's serialization visible).
	Cost int
	// SleepPerRow adds per-matching-row think time. Floating-point burn
	// cannot show wall-clock parallelism on a machine with fewer cores
	// than workers; think time can, so the scaling experiments use it.
	SleepPerRow time.Duration
}

// QueryResult is a partial or merged query answer.
type QueryResult struct {
	Rows       int
	Fatalities int
	Vehicles   int
	// Checksum accumulates the artificial per-row work so it cannot be
	// optimised away.
	Checksum float64
}

// Merge combines partial results.
func (q *QueryResult) Merge(o QueryResult) {
	q.Rows += o.Rows
	q.Fatalities += o.Fatalities
	q.Vehicles += o.Vehicles
	q.Checksum += o.Checksum
}

// RunQuery evaluates one query over a record slice.
func RunQuery(recs []Record, q Query) QueryResult {
	var res QueryResult
	for _, r := range recs {
		if q.Severity != 0 && r.Severity != q.Severity {
			continue
		}
		if r.Year < q.YearFrom || r.Year > q.YearTo {
			continue
		}
		res.Rows++
		res.Fatalities += r.Fatalities
		res.Vehicles += r.Vehicles
		x := float64(r.ID%97) + 1
		for k := 0; k < q.Cost; k++ {
			x = math.Sqrt(x*1.7 + float64(k))
		}
		res.Checksum += x
	}
	if q.SleepPerRow > 0 && res.Rows > 0 {
		time.Sleep(time.Duration(res.Rows) * q.SleepPerRow)
	}
	return res
}

// StandardQueries returns the assignment's query series.
func StandardQueries(cost int) []Query {
	qs := make([]Query, 0, 6)
	for sev := 1; sev <= 5; sev++ {
		qs = append(qs, Query{Severity: sev, YearFrom: MinYear, YearTo: MaxYear, Cost: cost})
	}
	qs = append(qs, Query{YearFrom: 2005, YearTo: 2010, Cost: cost})
	return qs
}

// Config sizes one run.
type Config struct {
	// Workers is the number of query processes.
	Workers int
	// Rows is the dataset size (the paper's file scaled down).
	Rows int
	// Seed varies the dataset.
	Seed int64
	// QueryCost is per-row artificial work (default 40).
	QueryCost int
	// QuerySleepPerRow is per-matching-row think time during queries; see
	// Query.SleepPerRow.
	QuerySleepPerRow time.Duration
	// ReadSleepPerRow adds per-row think time to segment parsing,
	// modelling the I/O cost of the paper's 316 MB file on top of the
	// real strconv work.
	ReadSleepPerRow time.Duration
	// Core carries Pilot options; NumProcs is computed.
	Core core.Config
}

// Result reports one run.
type Result struct {
	// Elapsed excludes the MPE wrap-up, as in the paper's tables.
	Elapsed time.Duration
	// ReadPhase and QueryPhase split the run the way Fig. 4's caption
	// does ("file reading runs from 0 to 1.1 seconds, then query
	// processing continues on to 2 seconds").
	ReadPhase  time.Duration
	QueryPhase time.Duration
	// Answers are the merged query results, identical across variants.
	Answers []QueryResult
	// Runtime exposes the finished Pilot runtime.
	Runtime *core.Runtime
}

func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = 1
	}
	if c.Rows < c.Workers {
		c.Rows = c.Workers
	}
	if c.QueryCost == 0 {
		c.QueryCost = 40
	}
	return c
}

func (c Config) numProcs() int {
	n := 1 + c.Workers
	if c.Core.HasService(core.SvcNativeLog) || c.Core.HasService(core.SvcDeadlock) {
		n++
	}
	return n
}
