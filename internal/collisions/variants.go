package collisions

import (
	"fmt"
	"time"

	"repro/internal/core"
)

// harness wires W workers with one channel in each direction and runs the
// common lifecycle around a variant's main body.
type harness struct {
	r     *core.Runtime
	toW   []*core.Channel
	fromW []*core.Channel
}

func newHarness(cfg Config, fn core.WorkFunc) (*harness, error) {
	cc := cfg.Core
	cc.NumProcs = cfg.numProcs()
	r, err := core.NewRuntime(cc)
	if err != nil {
		return nil, err
	}
	h := &harness{r: r,
		toW:   make([]*core.Channel, cfg.Workers),
		fromW: make([]*core.Channel, cfg.Workers)}
	for i := 0; i < cfg.Workers; i++ {
		p, err := r.CreateProcess(fn, i, nil)
		if err != nil {
			return nil, err
		}
		p.SetName(fmt.Sprintf("W%d", i+1))
		if h.toW[i], err = r.CreateChannel(r.MainProc(), p); err != nil {
			return nil, err
		}
		if h.fromW[i], err = r.CreateChannel(p, r.MainProc()); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// workerQueryLoop answers nq queries on the given record slice; shared by
// every variant (the bugs are all on PI_MAIN's side).
func workerQueryLoop(toW, fromW *core.Channel, recs []Record) error {
	var nq int
	if err := toW.Read("%d", &nq); err != nil {
		return err
	}
	for q := 0; q < nq; q++ {
		var sev, yFrom, yTo, cost int
		var sleepNS int64
		if err := toW.Read("%d %d %d %d %ld", &sev, &yFrom, &yTo, &cost, &sleepNS); err != nil {
			return err
		}
		res := RunQuery(recs, Query{Severity: sev, YearFrom: yFrom, YearTo: yTo,
			Cost: cost, SleepPerRow: time.Duration(sleepNS)})
		if err := fromW.Write("%d %d %d %lf", res.Rows, res.Fatalities, res.Vehicles, res.Checksum); err != nil {
			return err
		}
	}
	return nil
}

func sendQuery(toW *core.Channel, q Query) error {
	return toW.Write("%d %d %d %d %ld", q.Severity, q.YearFrom, q.YearTo, q.Cost, int64(q.SleepPerRow))
}

func recvPartial(fromW *core.Channel) (QueryResult, error) {
	var res QueryResult
	err := fromW.Read("%d %d %d %lf", &res.Rows, &res.Fatalities, &res.Vehicles, &res.Checksum)
	return res, err
}

// RunFixed is the intended solution: workers parse their file segments
// concurrently (each starting from its own offset), and every query round
// issues all the PI_Writes before any PI_Read, so the workers compute in
// parallel.
func RunFixed(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	data := GenerateCSV(cfg.Rows, cfg.Seed)
	offsets := SegmentOffsets(data, cfg.Workers)
	queries := StandardQueries(cfg.QueryCost)
	for i := range queries {
		queries[i].SleepPerRow = cfg.QuerySleepPerRow
	}

	var h *harness
	worker := func(self *core.Self, index int, arg any) int {
		var start, end int
		if err := h.toW[index].Read("%d %d", &start, &end); err != nil {
			return 1
		}
		// "Different worker processes starting from different file
		// offsets": the shared byte slice stands in for the file on disk.
		recs, err := ParseSegment(data[start:end])
		if err != nil {
			self.Abort(3, err.Error())
			return 1
		}
		readSleep(cfg, len(recs))
		if err := h.fromW[index].Write("%d", len(recs)); err != nil {
			return 1
		}
		if err := workerQueryLoop(h.toW[index], h.fromW[index], recs); err != nil {
			return 1
		}
		return 0
	}
	var err error
	if h, err = newHarness(cfg, worker); err != nil {
		return nil, err
	}
	if _, err := h.r.StartAll(); err != nil {
		return nil, err
	}
	start := time.Now()

	// Read phase: all offsets out, then all acknowledgements in.
	for i := 0; i < cfg.Workers; i++ {
		if err := h.toW[i].Write("%d %d", offsets[i][0], offsets[i][1]); err != nil {
			return nil, err
		}
	}
	totalRows := 0
	for i := 0; i < cfg.Workers; i++ {
		var rows int
		if err := h.fromW[i].Read("%d", &rows); err != nil {
			return nil, err
		}
		totalRows += rows
	}
	readPhase := time.Since(start)
	if totalRows != cfg.Rows {
		return nil, fmt.Errorf("collisions: workers parsed %d rows, dataset has %d", totalRows, cfg.Rows)
	}

	// Query phase: all writes before all reads, per round.
	qStart := time.Now()
	answers, err := runQueriesParallel(h, cfg.Workers, queries)
	if err != nil {
		return nil, err
	}
	queryPhase := time.Since(qStart)

	if err := h.r.StopMain(0); err != nil {
		return nil, err
	}
	return &Result{
		Elapsed:    time.Since(start) - h.r.WrapUpTime(),
		ReadPhase:  readPhase,
		QueryPhase: queryPhase,
		Answers:    answers,
		Runtime:    h.r,
	}, nil
}

func runQueriesParallel(h *harness, workers int, queries []Query) ([]QueryResult, error) {
	for i := 0; i < workers; i++ {
		if err := h.toW[i].Write("%d", len(queries)); err != nil {
			return nil, err
		}
	}
	answers := make([]QueryResult, len(queries))
	for qi, q := range queries {
		for i := 0; i < workers; i++ {
			if err := sendQuery(h.toW[i], q); err != nil {
				return nil, err
			}
		}
		for i := 0; i < workers; i++ {
			part, err := recvPartial(h.fromW[i])
			if err != nil {
				return nil, err
			}
			answers[qi].Merge(part)
		}
	}
	return answers, nil
}

// RunInstanceA is the first student submission (Fig. 4): PI_MAIN ships
// each worker's file segment over its channel one worker at a time, so
// the read phase only partially overlaps; and during query processing it
// calls a PI_Write/PI_Read pair per worker in a loop "instead of all the
// PI_Writes followed by all the PI_Reads. Thus, the program inadvertently
// serialized the calculations and the workers never did query processing
// in parallel at all."
func RunInstanceA(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	data := GenerateCSV(cfg.Rows, cfg.Seed)
	offsets := SegmentOffsets(data, cfg.Workers)
	queries := StandardQueries(cfg.QueryCost)
	for i := range queries {
		queries[i].SleepPerRow = cfg.QuerySleepPerRow
	}

	var h *harness
	worker := func(self *core.Self, index int, arg any) int {
		var seg []byte
		if err := h.toW[index].Read("%^c", &seg); err != nil {
			return 1
		}
		recs, err := ParseSegment(seg)
		if err != nil {
			self.Abort(3, err.Error())
			return 1
		}
		readSleep(cfg, len(recs))
		if err := h.fromW[index].Write("%d", len(recs)); err != nil {
			return 1
		}
		if err := workerQueryLoop(h.toW[index], h.fromW[index], recs); err != nil {
			return 1
		}
		return 0
	}
	var err error
	if h, err = newHarness(cfg, worker); err != nil {
		return nil, err
	}
	if _, err := h.r.StartAll(); err != nil {
		return nil, err
	}
	start := time.Now()

	// Read phase, the I/O bug: big rendezvous transfers one at a time, so
	// worker i+1 cannot start receiving before worker i has its data.
	totalRows := 0
	for i := 0; i < cfg.Workers; i++ {
		seg := data[offsets[i][0]:offsets[i][1]]
		if err := h.toW[i].Write("%^c", seg); err != nil {
			return nil, err
		}
	}
	for i := 0; i < cfg.Workers; i++ {
		var rows int
		if err := h.fromW[i].Read("%d", &rows); err != nil {
			return nil, err
		}
		totalRows += rows
	}
	readPhase := time.Since(start)
	if totalRows != cfg.Rows {
		return nil, fmt.Errorf("collisions: workers parsed %d rows, dataset has %d", totalRows, cfg.Rows)
	}

	// Query phase, the serialization bug: write/read pairs per worker.
	qStart := time.Now()
	for i := 0; i < cfg.Workers; i++ {
		if err := h.toW[i].Write("%d", len(queries)); err != nil {
			return nil, err
		}
	}
	answers := make([]QueryResult, len(queries))
	for qi, q := range queries {
		for i := 0; i < cfg.Workers; i++ {
			if err := sendQuery(h.toW[i], q); err != nil {
				return nil, err
			}
			part, err := recvPartial(h.fromW[i]) // <- the bug: immediate read
			if err != nil {
				return nil, err
			}
			answers[qi].Merge(part)
		}
	}
	queryPhase := time.Since(qStart)

	if err := h.r.StopMain(0); err != nil {
		return nil, err
	}
	return &Result{
		Elapsed:    time.Since(start) - h.r.WrapUpTime(),
		ReadPhase:  readPhase,
		QueryPhase: queryPhase,
		Answers:    answers,
		Runtime:    h.r,
	}, nil
}

// RunInstanceB is the second student submission (Fig. 5): "the workers
// were kept waiting till PI_MAIN did 11 seconds of initialization" — main
// parses the entire file itself, then distributes the parsed records, so
// "the total run time always stayed nearly the same (since the
// calculations were fast)".
func RunInstanceB(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	data := GenerateCSV(cfg.Rows, cfg.Seed)
	queries := StandardQueries(cfg.QueryCost)
	for i := range queries {
		queries[i].SleepPerRow = cfg.QuerySleepPerRow
	}

	var h *harness
	worker := func(self *core.Self, index int, arg any) int {
		var flat []int
		if err := h.toW[index].Read("%^d", &flat); err != nil {
			return 1
		}
		recs := unflattenRecords(flat)
		if err := h.fromW[index].Write("%d", len(recs)); err != nil {
			return 1
		}
		if err := workerQueryLoop(h.toW[index], h.fromW[index], recs); err != nil {
			return 1
		}
		return 0
	}
	var err error
	if h, err = newHarness(cfg, worker); err != nil {
		return nil, err
	}
	if _, err := h.r.StartAll(); err != nil {
		return nil, err
	}
	start := time.Now()

	// The bug: PI_MAIN does all the reading itself while workers idle.
	recs, err := ParseSegment(data)
	if err != nil {
		return nil, err
	}
	readSleep(cfg, len(recs))
	totalRows := 0
	per := len(recs) / cfg.Workers
	for i := 0; i < cfg.Workers; i++ {
		lo := i * per
		hi := lo + per
		if i == cfg.Workers-1 {
			hi = len(recs)
		}
		if err := h.toW[i].Write("%^d", flattenRecords(recs[lo:hi])); err != nil {
			return nil, err
		}
	}
	for i := 0; i < cfg.Workers; i++ {
		var rows int
		if err := h.fromW[i].Read("%d", &rows); err != nil {
			return nil, err
		}
		totalRows += rows
	}
	readPhase := time.Since(start)
	if totalRows != cfg.Rows {
		return nil, fmt.Errorf("collisions: workers got %d rows, dataset has %d", totalRows, cfg.Rows)
	}

	qStart := time.Now()
	answers, err := runQueriesParallel(h, cfg.Workers, queries)
	if err != nil {
		return nil, err
	}
	queryPhase := time.Since(qStart)

	if err := h.r.StopMain(0); err != nil {
		return nil, err
	}
	return &Result{
		Elapsed:    time.Since(start) - h.r.WrapUpTime(),
		ReadPhase:  readPhase,
		QueryPhase: queryPhase,
		Answers:    answers,
		Runtime:    h.r,
	}, nil
}

func flattenRecords(recs []Record) []int {
	out := make([]int, 0, len(recs)*6)
	for _, r := range recs {
		out = append(out, r.ID, r.Year, r.Severity, r.Vehicles, r.Fatalities, r.Region)
	}
	return out
}

func unflattenRecords(flat []int) []Record {
	out := make([]Record, 0, len(flat)/6)
	for i := 0; i+5 < len(flat); i += 6 {
		out = append(out, Record{ID: flat[i], Year: flat[i+1], Severity: flat[i+2],
			Vehicles: flat[i+3], Fatalities: flat[i+4], Region: flat[i+5]})
	}
	return out
}

// readSleep models the file-I/O share of segment reading: think time
// proportional to rows parsed (see Config.ReadSleepPerRow).
func readSleep(cfg Config, rows int) {
	if cfg.ReadSleepPerRow > 0 && rows > 0 {
		time.Sleep(time.Duration(rows) * cfg.ReadSleepPerRow)
	}
}
