// Package fmtspec parses and applies Pilot's fscanf/fprintf-style format
// strings, the signature feature of the Pilot API ("made easy to learn by
// borrowing C's well-known fprintf and fscanf format syntax").
//
// A format is a whitespace-separated list of conversion specs. Each spec
// transfers one value or array and — exactly as in Pilot — travels as its
// own wire message, so the format "%d %100f" produces two messages (and,
// in the visual log, two arrival bubbles inside the PI_Read rectangle).
//
// Supported kinds: %c (byte), %hd (int16), %d (int), %ld (int64),
// %hu (uint16), %u (uint), %lu (uint64), %f (float32), %lf (float64),
// %s (string). Array forms for every kind except %s:
//
//	%25d  fixed-length array of 25
//	%*d   array whose length is passed as a preceding argument at run time
//	%^d   variable-length array: the writer's length travels on the wire and
//	      the reader's slice is allocated to fit (Pilot V2.1)
package fmtspec

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind identifies the element type of a conversion spec.
type Kind uint8

// Element kinds, in wire-format order. The zero Kind is invalid so that a
// zero Spec is detectably empty.
const (
	KindInvalid Kind = iota
	KindChar         // %c  — Go byte
	KindInt16        // %hd — Go int16
	KindInt          // %d  — Go int (8 bytes on the wire)
	KindInt64        // %ld — Go int64
	KindUint16       // %hu — Go uint16
	KindUint         // %u  — Go uint (8 bytes on the wire)
	KindUint64       // %lu — Go uint64
	KindFloat32      // %f  — Go float32
	KindFloat64      // %lf — Go float64
	KindString       // %s  — Go string, scalar only
)

// Mode identifies the array form of a conversion spec.
type Mode uint8

// Array modes.
const (
	Scalar Mode = iota // one value
	Fixed              // %Nk: array of exactly N elements
	Star               // %*k: array length passed as a run-time argument
	Caret              // %^k: array length carried on the wire (auto-alloc on read)
)

// Spec is one parsed conversion.
type Spec struct {
	Kind Kind
	Mode Mode
	// N is the element count for Fixed mode and 0 otherwise.
	N int
}

var kindLetters = map[string]Kind{
	"c":  KindChar,
	"hd": KindInt16,
	"d":  KindInt,
	"ld": KindInt64,
	"hu": KindUint16,
	"u":  KindUint,
	"lu": KindUint64,
	"f":  KindFloat32,
	"lf": KindFloat64,
	"s":  KindString,
}

// letter returns the conversion letters for k.
func (k Kind) letter() string {
	for s, kk := range kindLetters {
		if kk == k {
			return s
		}
	}
	return "?"
}

// ElemSize returns the wire size in bytes of one element, or 0 for strings
// (variable).
func (k Kind) ElemSize() int {
	switch k {
	case KindChar:
		return 1
	case KindInt16, KindUint16:
		return 2
	case KindFloat32:
		return 4
	case KindInt, KindInt64, KindUint, KindUint64, KindFloat64:
		return 8
	default:
		return 0
	}
}

// String renders the spec back in format syntax, e.g. "%*d" or "%25f".
func (s Spec) String() string {
	switch s.Mode {
	case Scalar:
		return "%" + s.Kind.letter()
	case Fixed:
		return fmt.Sprintf("%%%d%s", s.N, s.Kind.letter())
	case Star:
		return "%*" + s.Kind.letter()
	case Caret:
		return "%^" + s.Kind.letter()
	}
	return "%?"
}

// Parse splits format into conversion specs. It rejects malformed formats
// with an error naming the offending token, in the spirit of Pilot's
// extensive error checking.
func Parse(format string) ([]Spec, error) {
	fields := strings.Fields(format)
	if len(fields) == 0 {
		return nil, fmt.Errorf("fmtspec: empty format %q", format)
	}
	specs := make([]Spec, 0, len(fields))
	for _, tok := range fields {
		s, err := parseToken(tok)
		if err != nil {
			return nil, err
		}
		specs = append(specs, s)
	}
	return specs, nil
}

func parseToken(tok string) (Spec, error) {
	if len(tok) < 2 || tok[0] != '%' {
		return Spec{}, fmt.Errorf("fmtspec: token %q does not start with %%", tok)
	}
	body := tok[1:]
	var s Spec
	switch body[0] {
	case '*':
		s.Mode = Star
		body = body[1:]
	case '^':
		s.Mode = Caret
		body = body[1:]
	default:
		if body[0] >= '0' && body[0] <= '9' {
			s.Mode = Fixed
			n := 0
			i := 0
			for i < len(body) && body[i] >= '0' && body[i] <= '9' {
				n = n*10 + int(body[i]-'0')
				i++
			}
			if n <= 0 {
				return Spec{}, fmt.Errorf("fmtspec: token %q has non-positive array length", tok)
			}
			s.N = n
			body = body[i:]
		}
	}
	kind, ok := kindLetters[body]
	if !ok {
		return Spec{}, fmt.Errorf("fmtspec: token %q has unknown conversion %q", tok, body)
	}
	if kind == KindString && s.Mode != Scalar {
		return Spec{}, fmt.Errorf("fmtspec: token %q: %%s does not support array forms", tok)
	}
	s.Kind = kind
	return s, nil
}

// Canonical renders specs back to a normalised format string; two formats
// with equal Canonical forms are identical.
func Canonical(specs []Spec) string {
	parts := make([]string, len(specs))
	for i, s := range specs {
		parts[i] = s.String()
	}
	return strings.Join(parts, " ")
}

// Compatible reports whether a writer using w may talk to a reader using r.
// This is the check behind Pilot's error level 2 ("verifying that reader
// and writer format strings match"). Kinds and positions must agree
// exactly; Fixed and Star array forms are mutually compatible because the
// element count is verified again at transfer time, but Caret only matches
// Caret (the wire layout differs).
func Compatible(w, r []Spec) error {
	if len(w) != len(r) {
		return fmt.Errorf("fmtspec: writer has %d conversions, reader has %d", len(w), len(r))
	}
	for i := range w {
		a, b := w[i], r[i]
		if a.Kind != b.Kind {
			return fmt.Errorf("fmtspec: conversion %d: writer %s vs reader %s", i+1, a, b)
		}
		if !modesCompatible(a.Mode, b.Mode) {
			return fmt.Errorf("fmtspec: conversion %d: writer %s vs reader %s (array forms incompatible)", i+1, a, b)
		}
		if a.Mode == Fixed && b.Mode == Fixed && a.N != b.N {
			return fmt.Errorf("fmtspec: conversion %d: writer %s vs reader %s (lengths differ)", i+1, a, b)
		}
	}
	return nil
}

func modesCompatible(a, b Mode) bool {
	if a == b {
		return true
	}
	arrayish := func(m Mode) bool { return m == Fixed || m == Star }
	return arrayish(a) && arrayish(b)
}

// ArgsWrite returns how many caller arguments the spec consumes on the
// write side: Star consumes a count plus the slice; everything else one.
func (s Spec) ArgsWrite() int {
	if s.Mode == Star {
		return 2
	}
	return 1
}

// ArgsRead returns how many caller arguments the spec consumes on the read
// side (same rule as ArgsWrite; Caret reads into a single *[]T).
func (s Spec) ArgsRead() int {
	if s.Mode == Star {
		return 2
	}
	return 1
}

// ---- encoding ----

func putElem(dst []byte, k Kind, v any) error {
	switch k {
	case KindChar:
		b, ok := v.(byte)
		if !ok {
			return typeErr(k, "byte", v)
		}
		dst[0] = b
	case KindInt16:
		x, ok := v.(int16)
		if !ok {
			return typeErr(k, "int16", v)
		}
		binary.LittleEndian.PutUint16(dst, uint16(x))
	case KindUint16:
		x, ok := v.(uint16)
		if !ok {
			return typeErr(k, "uint16", v)
		}
		binary.LittleEndian.PutUint16(dst, x)
	case KindInt:
		x, ok := v.(int)
		if !ok {
			return typeErr(k, "int", v)
		}
		binary.LittleEndian.PutUint64(dst, uint64(x))
	case KindInt64:
		x, ok := v.(int64)
		if !ok {
			return typeErr(k, "int64", v)
		}
		binary.LittleEndian.PutUint64(dst, uint64(x))
	case KindUint:
		x, ok := v.(uint)
		if !ok {
			return typeErr(k, "uint", v)
		}
		binary.LittleEndian.PutUint64(dst, uint64(x))
	case KindUint64:
		x, ok := v.(uint64)
		if !ok {
			return typeErr(k, "uint64", v)
		}
		binary.LittleEndian.PutUint64(dst, x)
	case KindFloat32:
		x, ok := v.(float32)
		if !ok {
			return typeErr(k, "float32", v)
		}
		binary.LittleEndian.PutUint32(dst, math.Float32bits(x))
	case KindFloat64:
		x, ok := v.(float64)
		if !ok {
			return typeErr(k, "float64", v)
		}
		binary.LittleEndian.PutUint64(dst, math.Float64bits(x))
	default:
		return fmt.Errorf("fmtspec: cannot encode kind %v as element", k)
	}
	return nil
}

func typeErr(k Kind, want string, got any) error {
	return fmt.Errorf("fmtspec: %%%s requires %s argument, got %T", k.letter(), want, got)
}

// sliceLen returns the length of a slice argument of the kind's element
// type, or an error if v is not such a slice.
func sliceInfo(k Kind, v any) (length int, get func(i int) any, err error) {
	switch k {
	case KindChar:
		s, ok := v.([]byte)
		if !ok {
			return 0, nil, typeErr(k, "[]byte", v)
		}
		return len(s), func(i int) any { return s[i] }, nil
	case KindInt16:
		s, ok := v.([]int16)
		if !ok {
			return 0, nil, typeErr(k, "[]int16", v)
		}
		return len(s), func(i int) any { return s[i] }, nil
	case KindUint16:
		s, ok := v.([]uint16)
		if !ok {
			return 0, nil, typeErr(k, "[]uint16", v)
		}
		return len(s), func(i int) any { return s[i] }, nil
	case KindInt:
		s, ok := v.([]int)
		if !ok {
			return 0, nil, typeErr(k, "[]int", v)
		}
		return len(s), func(i int) any { return s[i] }, nil
	case KindInt64:
		s, ok := v.([]int64)
		if !ok {
			return 0, nil, typeErr(k, "[]int64", v)
		}
		return len(s), func(i int) any { return s[i] }, nil
	case KindUint:
		s, ok := v.([]uint)
		if !ok {
			return 0, nil, typeErr(k, "[]uint", v)
		}
		return len(s), func(i int) any { return s[i] }, nil
	case KindUint64:
		s, ok := v.([]uint64)
		if !ok {
			return 0, nil, typeErr(k, "[]uint64", v)
		}
		return len(s), func(i int) any { return s[i] }, nil
	case KindFloat32:
		s, ok := v.([]float32)
		if !ok {
			return 0, nil, typeErr(k, "[]float32", v)
		}
		return len(s), func(i int) any { return s[i] }, nil
	case KindFloat64:
		s, ok := v.([]float64)
		if !ok {
			return 0, nil, typeErr(k, "[]float64", v)
		}
		return len(s), func(i int) any { return s[i] }, nil
	}
	return 0, nil, fmt.Errorf("fmtspec: kind %v has no array form", k)
}

// Encode serialises the spec's value(s) drawn from args into a wire
// payload, returning the payload and the number of arguments consumed.
func Encode(s Spec, args []any) (payload []byte, consumed int, err error) {
	need := s.ArgsWrite()
	if len(args) < need {
		return nil, 0, fmt.Errorf("fmtspec: %s needs %d argument(s), %d left", s, need, len(args))
	}
	switch s.Mode {
	case Scalar:
		if s.Kind == KindString {
			str, ok := args[0].(string)
			if !ok {
				return nil, 0, typeErr(s.Kind, "string", args[0])
			}
			return []byte(str), 1, nil
		}
		buf := make([]byte, s.Kind.ElemSize())
		if err := putElem(buf, s.Kind, args[0]); err != nil {
			return nil, 0, err
		}
		return buf, 1, nil

	case Fixed:
		n, get, err := sliceInfo(s.Kind, args[0])
		if err != nil {
			return nil, 0, err
		}
		if n < s.N {
			return nil, 0, fmt.Errorf("fmtspec: %s requires at least %d elements, slice has %d", s, s.N, n)
		}
		return encodeElems(s.Kind, s.N, get, 0)

	case Star:
		count, ok := args[0].(int)
		if !ok {
			return nil, 0, fmt.Errorf("fmtspec: %s requires an int count before the slice, got %T", s, args[0])
		}
		if count < 0 {
			return nil, 0, fmt.Errorf("fmtspec: %s with negative count %d", s, count)
		}
		n, get, err := sliceInfo(s.Kind, args[1])
		if err != nil {
			return nil, 0, err
		}
		if n < count {
			return nil, 0, fmt.Errorf("fmtspec: %s count %d exceeds slice length %d", s, count, n)
		}
		p, _, err := encodeElems(s.Kind, count, get, 0)
		return p, 2, err

	case Caret:
		n, get, err := sliceInfo(s.Kind, args[0])
		if err != nil {
			return nil, 0, err
		}
		header := make([]byte, 4)
		binary.LittleEndian.PutUint32(header, uint32(n))
		body, _, err := encodeElems(s.Kind, n, get, 0)
		if err != nil {
			return nil, 0, err
		}
		return append(header, body...), 1, nil
	}
	return nil, 0, fmt.Errorf("fmtspec: unknown mode %v", s.Mode)
}

func encodeElems(k Kind, n int, get func(i int) any, consumed int) ([]byte, int, error) {
	es := k.ElemSize()
	buf := make([]byte, n*es)
	for i := 0; i < n; i++ {
		if err := putElem(buf[i*es:], k, get(i)); err != nil {
			return nil, 0, err
		}
	}
	return buf, consumed + 1, nil
}

// ---- decoding ----

func getElem(src []byte, k Kind, dst any) error {
	switch k {
	case KindChar:
		p, ok := dst.(*byte)
		if !ok {
			return typeErr(k, "*byte", dst)
		}
		*p = src[0]
	case KindInt16:
		p, ok := dst.(*int16)
		if !ok {
			return typeErr(k, "*int16", dst)
		}
		*p = int16(binary.LittleEndian.Uint16(src))
	case KindUint16:
		p, ok := dst.(*uint16)
		if !ok {
			return typeErr(k, "*uint16", dst)
		}
		*p = binary.LittleEndian.Uint16(src)
	case KindInt:
		p, ok := dst.(*int)
		if !ok {
			return typeErr(k, "*int", dst)
		}
		*p = int(binary.LittleEndian.Uint64(src))
	case KindInt64:
		p, ok := dst.(*int64)
		if !ok {
			return typeErr(k, "*int64", dst)
		}
		*p = int64(binary.LittleEndian.Uint64(src))
	case KindUint:
		p, ok := dst.(*uint)
		if !ok {
			return typeErr(k, "*uint", dst)
		}
		*p = uint(binary.LittleEndian.Uint64(src))
	case KindUint64:
		p, ok := dst.(*uint64)
		if !ok {
			return typeErr(k, "*uint64", dst)
		}
		*p = binary.LittleEndian.Uint64(src)
	case KindFloat32:
		p, ok := dst.(*float32)
		if !ok {
			return typeErr(k, "*float32", dst)
		}
		*p = math.Float32frombits(binary.LittleEndian.Uint32(src))
	case KindFloat64:
		p, ok := dst.(*float64)
		if !ok {
			return typeErr(k, "*float64", dst)
		}
		*p = math.Float64frombits(binary.LittleEndian.Uint64(src))
	default:
		return fmt.Errorf("fmtspec: cannot decode kind %v as element", k)
	}
	return nil
}

// sliceSet returns length and element-setter for a destination slice.
func sliceSet(k Kind, v any) (length int, set func(i int, src []byte) error, err error) {
	wrap := func(n int, f func(i int, src []byte)) (int, func(int, []byte) error, error) {
		return n, func(i int, src []byte) error { f(i, src); return nil }, nil
	}
	switch k {
	case KindChar:
		s, ok := v.([]byte)
		if !ok {
			return 0, nil, typeErr(k, "[]byte", v)
		}
		return wrap(len(s), func(i int, src []byte) { s[i] = src[0] })
	case KindInt16:
		s, ok := v.([]int16)
		if !ok {
			return 0, nil, typeErr(k, "[]int16", v)
		}
		return wrap(len(s), func(i int, src []byte) { s[i] = int16(binary.LittleEndian.Uint16(src)) })
	case KindUint16:
		s, ok := v.([]uint16)
		if !ok {
			return 0, nil, typeErr(k, "[]uint16", v)
		}
		return wrap(len(s), func(i int, src []byte) { s[i] = binary.LittleEndian.Uint16(src) })
	case KindInt:
		s, ok := v.([]int)
		if !ok {
			return 0, nil, typeErr(k, "[]int", v)
		}
		return wrap(len(s), func(i int, src []byte) { s[i] = int(binary.LittleEndian.Uint64(src)) })
	case KindInt64:
		s, ok := v.([]int64)
		if !ok {
			return 0, nil, typeErr(k, "[]int64", v)
		}
		return wrap(len(s), func(i int, src []byte) { s[i] = int64(binary.LittleEndian.Uint64(src)) })
	case KindUint:
		s, ok := v.([]uint)
		if !ok {
			return 0, nil, typeErr(k, "[]uint", v)
		}
		return wrap(len(s), func(i int, src []byte) { s[i] = uint(binary.LittleEndian.Uint64(src)) })
	case KindUint64:
		s, ok := v.([]uint64)
		if !ok {
			return 0, nil, typeErr(k, "[]uint64", v)
		}
		return wrap(len(s), func(i int, src []byte) { s[i] = binary.LittleEndian.Uint64(src) })
	case KindFloat32:
		s, ok := v.([]float32)
		if !ok {
			return 0, nil, typeErr(k, "[]float32", v)
		}
		return wrap(len(s), func(i int, src []byte) { s[i] = math.Float32frombits(binary.LittleEndian.Uint32(src)) })
	case KindFloat64:
		s, ok := v.([]float64)
		if !ok {
			return 0, nil, typeErr(k, "[]float64", v)
		}
		return wrap(len(s), func(i int, src []byte) { s[i] = math.Float64frombits(binary.LittleEndian.Uint64(src)) })
	}
	return 0, nil, fmt.Errorf("fmtspec: kind %v has no array form", k)
}

// makeSlice allocates a fresh slice of n elements of the kind's type and
// stores it through the caret-mode destination pointer (*[]T). It returns
// the setter for filling elements.
func makeSlice(k Kind, n int, dst any) (set func(i int, src []byte) error, err error) {
	switch k {
	case KindChar:
		p, ok := dst.(*[]byte)
		if !ok {
			return nil, typeErr(k, "*[]byte", dst)
		}
		*p = make([]byte, n)
		_, set, err := sliceSet(k, *p)
		return set, err
	case KindInt16:
		p, ok := dst.(*[]int16)
		if !ok {
			return nil, typeErr(k, "*[]int16", dst)
		}
		*p = make([]int16, n)
		_, set, err := sliceSet(k, *p)
		return set, err
	case KindUint16:
		p, ok := dst.(*[]uint16)
		if !ok {
			return nil, typeErr(k, "*[]uint16", dst)
		}
		*p = make([]uint16, n)
		_, set, err := sliceSet(k, *p)
		return set, err
	case KindInt:
		p, ok := dst.(*[]int)
		if !ok {
			return nil, typeErr(k, "*[]int", dst)
		}
		*p = make([]int, n)
		_, set, err := sliceSet(k, *p)
		return set, err
	case KindInt64:
		p, ok := dst.(*[]int64)
		if !ok {
			return nil, typeErr(k, "*[]int64", dst)
		}
		*p = make([]int64, n)
		_, set, err := sliceSet(k, *p)
		return set, err
	case KindUint:
		p, ok := dst.(*[]uint)
		if !ok {
			return nil, typeErr(k, "*[]uint", dst)
		}
		*p = make([]uint, n)
		_, set, err := sliceSet(k, *p)
		return set, err
	case KindUint64:
		p, ok := dst.(*[]uint64)
		if !ok {
			return nil, typeErr(k, "*[]uint64", dst)
		}
		*p = make([]uint64, n)
		_, set, err := sliceSet(k, *p)
		return set, err
	case KindFloat32:
		p, ok := dst.(*[]float32)
		if !ok {
			return nil, typeErr(k, "*[]float32", dst)
		}
		*p = make([]float32, n)
		_, set, err := sliceSet(k, *p)
		return set, err
	case KindFloat64:
		p, ok := dst.(*[]float64)
		if !ok {
			return nil, typeErr(k, "*[]float64", dst)
		}
		*p = make([]float64, n)
		_, set, err := sliceSet(k, *p)
		return set, err
	}
	return nil, fmt.Errorf("fmtspec: kind %v has no array form", k)
}

// Decode deserialises payload into the destination argument(s) drawn from
// args, returning the number of arguments consumed.
func Decode(s Spec, payload []byte, args []any) (consumed int, err error) {
	need := s.ArgsRead()
	if len(args) < need {
		return 0, fmt.Errorf("fmtspec: %s needs %d argument(s), %d left", s, need, len(args))
	}
	es := s.Kind.ElemSize()
	switch s.Mode {
	case Scalar:
		if s.Kind == KindString {
			p, ok := args[0].(*string)
			if !ok {
				return 0, typeErr(s.Kind, "*string", args[0])
			}
			*p = string(payload)
			return 1, nil
		}
		if len(payload) != es {
			return 0, fmt.Errorf("fmtspec: %s expected %d payload bytes, got %d", s, es, len(payload))
		}
		if err := getElem(payload, s.Kind, args[0]); err != nil {
			return 0, err
		}
		return 1, nil

	case Fixed:
		want := s.N * es
		if len(payload) != want {
			return 0, fmt.Errorf("fmtspec: %s expected %d payload bytes, got %d", s, want, len(payload))
		}
		n, set, err := sliceSet(s.Kind, args[0])
		if err != nil {
			return 0, err
		}
		if n < s.N {
			return 0, fmt.Errorf("fmtspec: %s requires at least %d elements, slice has %d", s, s.N, n)
		}
		return 1, fillElems(s.Kind, s.N, payload, set)

	case Star:
		count, ok := args[0].(int)
		if !ok {
			return 0, fmt.Errorf("fmtspec: %s requires an int count before the slice, got %T", s, args[0])
		}
		if count < 0 {
			return 0, fmt.Errorf("fmtspec: %s with negative count %d", s, count)
		}
		want := count * es
		if len(payload) != want {
			return 0, fmt.Errorf("fmtspec: %s reader count %d (=%d bytes) but writer sent %d bytes", s, count, want, len(payload))
		}
		n, set, err := sliceSet(s.Kind, args[1])
		if err != nil {
			return 0, err
		}
		if n < count {
			return 0, fmt.Errorf("fmtspec: %s count %d exceeds slice length %d", s, count, n)
		}
		return 2, fillElems(s.Kind, count, payload, set)

	case Caret:
		if len(payload) < 4 {
			return 0, fmt.Errorf("fmtspec: %s payload missing length header", s)
		}
		n := int(binary.LittleEndian.Uint32(payload))
		body := payload[4:]
		if len(body) != n*es {
			return 0, fmt.Errorf("fmtspec: %s header says %d elements (%d bytes), payload has %d bytes", s, n, n*es, len(body))
		}
		set, err := makeSlice(s.Kind, n, args[0])
		if err != nil {
			return 0, err
		}
		return 1, fillElems(s.Kind, n, body, set)
	}
	return 0, fmt.Errorf("fmtspec: unknown mode %v", s.Mode)
}

func fillElems(k Kind, n int, payload []byte, set func(i int, src []byte) error) error {
	es := k.ElemSize()
	for i := 0; i < n; i++ {
		if err := set(i, payload[i*es:]); err != nil {
			return err
		}
	}
	return nil
}

// DescribeMax bounds the length of any Describe summary: "len: " plus a
// 20-digit count, " first: ", and a worst-case quoted 8-byte prefix
// (4 bytes per escaped byte, the quotes, and the ellipsis) stay well
// under it, so callers can hand AppendDescribe a stack buffer of this
// size and know the append never spills to the heap.
const DescribeMax = 96

// Describe summarises an encoded payload for a log-bubble popup: the data
// length and the value of the first element, as in the paper's PI_Write
// bubbles. The returned text begins with literal words — the paper's
// Jumpshot popup workaround ("Lines: %d" rather than "%d lines").
func Describe(s Spec, payload []byte) string {
	var buf [DescribeMax]byte
	return string(AppendDescribe(buf[:0], s, payload))
}

// AppendDescribe appends Describe's summary to dst, byte-identical to the
// fmt-based formatting but without allocating: Pilot's MsgDeparture
// bubble builds its cargo through here on every PI_Write, so the hot
// path must not pay fmt's interface boxing.
func AppendDescribe(dst []byte, s Spec, payload []byte) []byte {
	es := s.Kind.ElemSize()
	switch {
	case s.Kind == KindString:
		dst = append(dst, "len: "...)
		dst = strconv.AppendInt(dst, int64(len(payload)), 10)
		dst = append(dst, " first: "...)
		return appendQuotedPrefix(dst, payload, 8)
	case s.Mode == Scalar:
		dst = append(dst, "val: "...)
		return appendFirstElem(dst, s.Kind, payload)
	case s.Mode == Caret:
		if len(payload) < 4 {
			return append(dst, "len: 0"...)
		}
		n := int(binary.LittleEndian.Uint32(payload))
		dst = append(dst, "len: "...)
		dst = strconv.AppendInt(dst, int64(n), 10)
		dst = append(dst, " first: "...)
		return appendFirstElem(dst, s.Kind, payload[4:])
	default:
		n := 0
		if es > 0 {
			n = len(payload) / es
		}
		dst = append(dst, "len: "...)
		dst = strconv.AppendInt(dst, int64(n), 10)
		dst = append(dst, " first: "...)
		return appendFirstElem(dst, s.Kind, payload)
	}
}

// appendQuotedPrefix quotes at most max bytes of b as fmt's %q would
// quote truncStr(string(b), max): the whole value when it fits, else the
// prefix with an ellipsis inside the quotes.
func appendQuotedPrefix(dst, b []byte, max int) []byte {
	if len(b) <= max {
		return strconv.AppendQuote(dst, string(b))
	}
	var tmp [16]byte // max prefix bytes + the 3-byte ellipsis
	n := copy(tmp[:], b[:max])
	n += copy(tmp[n:], "…")
	return strconv.AppendQuote(dst, string(tmp[:n]))
}

func appendFirstElem(dst []byte, k Kind, payload []byte) []byte {
	es := k.ElemSize()
	if len(payload) < es || es == 0 {
		return append(dst, '-')
	}
	switch k {
	case KindChar:
		return strconv.AppendQuoteRune(dst, rune(payload[0]))
	case KindInt16:
		return strconv.AppendInt(dst, int64(int16(binary.LittleEndian.Uint16(payload))), 10)
	case KindUint16:
		return strconv.AppendUint(dst, uint64(binary.LittleEndian.Uint16(payload)), 10)
	case KindInt, KindInt64:
		return strconv.AppendInt(dst, int64(binary.LittleEndian.Uint64(payload)), 10)
	case KindUint, KindUint64:
		return strconv.AppendUint(dst, binary.LittleEndian.Uint64(payload), 10)
	case KindFloat32:
		return strconv.AppendFloat(dst, float64(math.Float32frombits(binary.LittleEndian.Uint32(payload))), 'g', -1, 32)
	case KindFloat64:
		return strconv.AppendFloat(dst, math.Float64frombits(binary.LittleEndian.Uint64(payload)), 'g', -1, 64)
	}
	return append(dst, '-')
}
