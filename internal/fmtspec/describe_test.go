package fmtspec

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// legacyDescribe is the fmt.Sprintf implementation AppendDescribe
// replaced; the golden tests pin the new path to its exact bytes.
func legacyDescribe(s Spec, payload []byte) string {
	es := s.Kind.ElemSize()
	switch {
	case s.Kind == KindString:
		str := string(payload)
		if len(str) > 8 {
			str = str[:8] + "…"
		}
		return fmt.Sprintf("len: %d first: %q", len(payload), str)
	case s.Mode == Scalar:
		return "val: " + legacyFirstElem(s.Kind, payload)
	case s.Mode == Caret:
		if len(payload) < 4 {
			return "len: 0"
		}
		n := int(binary.LittleEndian.Uint32(payload))
		return fmt.Sprintf("len: %d first: %s", n, legacyFirstElem(s.Kind, payload[4:]))
	default:
		n := 0
		if es > 0 {
			n = len(payload) / es
		}
		return fmt.Sprintf("len: %d first: %s", n, legacyFirstElem(s.Kind, payload))
	}
}

func legacyFirstElem(k Kind, payload []byte) string {
	es := k.ElemSize()
	if len(payload) < es || es == 0 {
		return "-"
	}
	switch k {
	case KindChar:
		return fmt.Sprintf("%q", payload[0])
	case KindInt16:
		return fmt.Sprint(int16(binary.LittleEndian.Uint16(payload)))
	case KindUint16:
		return fmt.Sprint(binary.LittleEndian.Uint16(payload))
	case KindInt, KindInt64:
		return fmt.Sprint(int64(binary.LittleEndian.Uint64(payload)))
	case KindUint, KindUint64:
		return fmt.Sprint(binary.LittleEndian.Uint64(payload))
	case KindFloat32:
		return fmt.Sprintf("%g", math.Float32frombits(binary.LittleEndian.Uint32(payload)))
	case KindFloat64:
		return fmt.Sprintf("%g", math.Float64frombits(binary.LittleEndian.Uint64(payload)))
	}
	return "-"
}

// Every kind and mode, scalar/array/caret/empty/short payloads: the
// append path must match the fmt path byte for byte.
func TestAppendDescribeMatchesLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	kinds := []Kind{KindChar, KindInt16, KindUint16, KindInt, KindInt64,
		KindUint, KindUint64, KindFloat32, KindFloat64}
	modes := []Mode{Scalar, Fixed, Star, Caret}
	check := func(s Spec, payload []byte) {
		t.Helper()
		want := legacyDescribe(s, payload)
		got := string(AppendDescribe(nil, s, payload))
		if got != want {
			t.Errorf("AppendDescribe(%v, %d bytes) = %q, want %q", s, len(payload), got, want)
		}
		if d := Describe(s, payload); d != want {
			t.Errorf("Describe(%v, %d bytes) = %q, want %q", s, len(payload), d, want)
		}
		if len(want) > DescribeMax {
			t.Errorf("Describe(%v) output %d bytes exceeds DescribeMax", s, len(want))
		}
	}
	for _, k := range kinds {
		es := k.ElemSize()
		for _, m := range modes {
			for trial := 0; trial < 50; trial++ {
				n := rng.Intn(5)
				body := make([]byte, n*es)
				rng.Read(body)
				payload := body
				if m == Caret {
					payload = make([]byte, 4+len(body))
					binary.LittleEndian.PutUint32(payload, uint32(n))
					copy(payload[4:], body)
				}
				check(Spec{Kind: k, Mode: m, N: n}, payload)
			}
			// Degenerate payloads: empty and shorter than one element.
			check(Spec{Kind: k, Mode: m}, nil)
			check(Spec{Kind: k, Mode: m}, make([]byte, es/2))
		}
	}
	// Strings: short, exactly at the 8-byte preview, truncated, with
	// escapes, and with a multibyte rune straddling the preview cut.
	for _, s := range []string{"", "hi", "12345678", "123456789",
		"tab\tand\x00nul", "héllo wörld", "日本語テキスト"} {
		check(Spec{Kind: KindString, Mode: Scalar}, []byte(s))
	}
	// Special floats.
	for _, f := range []float64{0, math.Inf(1), math.Inf(-1), math.NaN(), 1e300, -1.5e-10} {
		var p [8]byte
		binary.LittleEndian.PutUint64(p[:], math.Float64bits(f))
		check(Spec{Kind: KindFloat64, Mode: Scalar}, p[:])
	}
}

// The MsgDeparture hot path hands AppendDescribe a stack buffer; the
// append must stay inside it and allocate nothing.
func TestAppendDescribeAllocFree(t *testing.T) {
	var p [8]byte
	binary.LittleEndian.PutUint64(p[:], 42)
	spec := Spec{Kind: KindInt, Mode: Scalar}
	if n := testing.AllocsPerRun(200, func() {
		var buf [DescribeMax]byte
		out := AppendDescribe(buf[:0], spec, p[:])
		if len(out) == 0 {
			t.Fatal("empty describe")
		}
	}); n != 0 {
		t.Errorf("AppendDescribe allocates %.1f per run, want 0", n)
	}
}
