package fmtspec

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func mustParse(t *testing.T, f string) []Spec {
	t.Helper()
	s, err := Parse(f)
	if err != nil {
		t.Fatalf("Parse(%q): %v", f, err)
	}
	return s
}

func TestParseScalars(t *testing.T) {
	specs := mustParse(t, "%c %hd %d %ld %hu %u %lu %f %lf %s")
	wantKinds := []Kind{KindChar, KindInt16, KindInt, KindInt64, KindUint16,
		KindUint, KindUint64, KindFloat32, KindFloat64, KindString}
	if len(specs) != len(wantKinds) {
		t.Fatalf("got %d specs, want %d", len(specs), len(wantKinds))
	}
	for i, s := range specs {
		if s.Kind != wantKinds[i] || s.Mode != Scalar {
			t.Errorf("spec %d = %+v, want kind %v scalar", i, s, wantKinds[i])
		}
	}
}

func TestParseArrayForms(t *testing.T) {
	specs := mustParse(t, "%25d %*f %^lf %3c")
	want := []Spec{
		{Kind: KindInt, Mode: Fixed, N: 25},
		{Kind: KindFloat32, Mode: Star},
		{Kind: KindFloat64, Mode: Caret},
		{Kind: KindChar, Mode: Fixed, N: 3},
	}
	if !reflect.DeepEqual(specs, want) {
		t.Fatalf("got %+v, want %+v", specs, want)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"   ",
		"d",
		"%",
		"%q",
		"%0d",
		"%*s",
		"%^s",
		"%5s",
		"%d %zz",
		"100",
		"%-3d",
	}
	for _, f := range bad {
		if _, err := Parse(f); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", f)
		}
	}
}

func TestCanonicalRoundtrip(t *testing.T) {
	formats := []string{
		"%d",
		"%d %100f",
		"%c %hd %d %ld %hu %u %lu %f %lf %s",
		"%25d %*f %^lf",
	}
	for _, f := range formats {
		specs := mustParse(t, f)
		canon := Canonical(specs)
		specs2 := mustParse(t, canon)
		if !reflect.DeepEqual(specs, specs2) {
			t.Errorf("Canonical roundtrip changed %q: %+v vs %+v", f, specs, specs2)
		}
	}
}

// Property: any parseable format survives Canonical → Parse unchanged.
func TestCanonicalParseProperty(t *testing.T) {
	kinds := []string{"c", "hd", "d", "ld", "hu", "u", "lu", "f", "lf"}
	gen := func(rng *rand.Rand) string {
		n := rng.Intn(5) + 1
		toks := make([]string, n)
		for i := range toks {
			k := kinds[rng.Intn(len(kinds))]
			switch rng.Intn(4) {
			case 0:
				toks[i] = "%" + k
			case 1:
				toks[i] = "%*" + k
			case 2:
				toks[i] = "%^" + k
			default:
				toks[i] = "%" + itoa(rng.Intn(99)+1) + k
			}
		}
		return strings.Join(toks, " ")
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		f := gen(rng)
		specs, err := Parse(f)
		if err != nil {
			t.Fatalf("Parse(%q): %v", f, err)
		}
		again, err := Parse(Canonical(specs))
		if err != nil || !reflect.DeepEqual(specs, again) {
			t.Fatalf("roundtrip failed for %q", f)
		}
	}
}

func itoa(n int) string {
	return string(rune('0'+n/10)) + string(rune('0'+n%10))
}

func TestCompatible(t *testing.T) {
	ok := [][2]string{
		{"%d", "%d"},
		{"%d %100f", "%d %100f"},
		{"%*d", "%5d"},
		{"%5d", "%*d"},
		{"%^d", "%^d"},
	}
	for _, p := range ok {
		if err := Compatible(mustParse(t, p[0]), mustParse(t, p[1])); err != nil {
			t.Errorf("Compatible(%q, %q): %v", p[0], p[1], err)
		}
	}
	bad := [][2]string{
		{"%d", "%f"},
		{"%d %d", "%d"},
		{"%5d", "%6d"},
		{"%^d", "%*d"},
		{"%^d", "%d"},
		{"%d", "%ld"},
	}
	for _, p := range bad {
		if err := Compatible(mustParse(t, p[0]), mustParse(t, p[1])); err == nil {
			t.Errorf("Compatible(%q, %q) succeeded, want error", p[0], p[1])
		}
	}
}

func encodeOne(t *testing.T, format string, args ...any) []byte {
	t.Helper()
	specs := mustParse(t, format)
	if len(specs) != 1 {
		t.Fatalf("encodeOne wants single-spec format, got %q", format)
	}
	p, n, err := Encode(specs[0], args)
	if err != nil {
		t.Fatalf("Encode(%q, %v): %v", format, args, err)
	}
	if n != len(args) {
		t.Fatalf("Encode consumed %d args, want %d", n, len(args))
	}
	return p
}

func TestScalarRoundtrips(t *testing.T) {
	var (
		c  byte
		h  int16
		d  int
		l  int64
		hu uint16
		u  uint
		lu uint64
		f  float32
		lf float64
		s  string
	)
	cases := []struct {
		format string
		in     any
		out    any
		check  func() bool
	}{
		{"%c", byte('x'), &c, func() bool { return c == 'x' }},
		{"%hd", int16(-1234), &h, func() bool { return h == -1234 }},
		{"%d", int(-987654321), &d, func() bool { return d == -987654321 }},
		{"%ld", int64(1) << 60, &l, func() bool { return l == 1<<60 }},
		{"%hu", uint16(65535), &hu, func() bool { return hu == 65535 }},
		{"%u", uint(42), &u, func() bool { return u == 42 }},
		{"%lu", uint64(1) << 63, &lu, func() bool { return lu == 1<<63 }},
		{"%f", float32(3.25), &f, func() bool { return f == 3.25 }},
		{"%lf", 2.718281828, &lf, func() bool { return lf == 2.718281828 }},
		{"%s", "hello world", &s, func() bool { return s == "hello world" }},
	}
	for _, tc := range cases {
		payload := encodeOne(t, tc.format, tc.in)
		spec := mustParse(t, tc.format)[0]
		if _, err := Decode(spec, payload, []any{tc.out}); err != nil {
			t.Errorf("Decode %q: %v", tc.format, err)
			continue
		}
		if !tc.check() {
			t.Errorf("%q roundtrip produced wrong value", tc.format)
		}
	}
}

func TestFixedArrayRoundtrip(t *testing.T) {
	in := []int{10, 20, 30}
	payload := encodeOne(t, "%3d", in)
	out := make([]int, 3)
	if _, err := Decode(mustParse(t, "%3d")[0], payload, []any{out}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("got %v, want %v", out, in)
	}
}

func TestStarArrayRoundtrip(t *testing.T) {
	in := []float64{1.5, -2.5, 99, 0}
	payload := encodeOne(t, "%*lf", 4, in)
	out := make([]float64, 10)
	n, err := Decode(mustParse(t, "%*lf")[0], payload, []any{4, out})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("consumed %d args, want 2", n)
	}
	if !reflect.DeepEqual(in, out[:4]) {
		t.Fatalf("got %v, want %v", out[:4], in)
	}
}

func TestStarCountExceedsSlice(t *testing.T) {
	specs := mustParse(t, "%*d")
	if _, _, err := Encode(specs[0], []any{5, []int{1, 2}}); err == nil {
		t.Fatal("Encode with count > len succeeded")
	}
}

func TestStarCountMismatchOnDecode(t *testing.T) {
	payload := encodeOne(t, "%*d", 3, []int{1, 2, 3})
	out := make([]int, 10)
	if _, err := Decode(mustParse(t, "%*d")[0], payload, []any{4, out}); err == nil {
		t.Fatal("Decode with mismatched reader count succeeded")
	}
}

func TestCaretRoundtripAutoAllocates(t *testing.T) {
	in := []int{7, 8, 9, 10, 11}
	payload := encodeOne(t, "%^d", in)
	var out []int
	if _, err := Decode(mustParse(t, "%^d")[0], payload, []any{&out}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("got %v, want %v", out, in)
	}
}

func TestCaretEmptySlice(t *testing.T) {
	payload := encodeOne(t, "%^f", []float32{})
	var out []float32
	if _, err := Decode(mustParse(t, "%^f")[0], payload, []any{&out}); err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 || out == nil {
		t.Fatalf("got %v (nil=%v), want allocated empty slice", out, out == nil)
	}
}

func TestEncodeTypeMismatch(t *testing.T) {
	cases := []struct {
		format string
		args   []any
	}{
		{"%d", []any{int64(3)}}, // %d wants int, not int64
		{"%ld", []any{3}},       // %ld wants int64
		{"%f", []any{3.0}},      // %f wants float32
		{"%lf", []any{float32(1)}},
		{"%s", []any{[]byte("x")}},
		{"%3d", []any{[]int64{1, 2, 3}}},
		{"%*d", []any{"three", []int{1, 2, 3}}},
		{"%*d", []any{-1, []int{1}}},
	}
	for _, tc := range cases {
		specs := mustParse(t, tc.format)
		if _, _, err := Encode(specs[0], tc.args); err == nil {
			t.Errorf("Encode(%q, %v) succeeded, want error", tc.format, tc.args)
		}
	}
}

func TestDecodeTypeMismatch(t *testing.T) {
	payload := encodeOne(t, "%d", 7)
	spec := mustParse(t, "%d")[0]
	var f float64
	if _, err := Decode(spec, payload, []any{&f}); err == nil {
		t.Fatal("Decode into wrong pointer type succeeded")
	}
	var v int
	if _, err := Decode(spec, payload, []any{v}); err == nil {
		t.Fatal("Decode into non-pointer succeeded")
	}
}

func TestDecodePayloadSizeMismatch(t *testing.T) {
	spec := mustParse(t, "%d")[0]
	var v int
	if _, err := Decode(spec, []byte{1, 2, 3}, []any{&v}); err == nil {
		t.Fatal("Decode with short payload succeeded")
	}
}

func TestDecodeMissingArgs(t *testing.T) {
	spec := mustParse(t, "%*d")[0]
	if _, err := Decode(spec, nil, []any{3}); err == nil {
		t.Fatal("Decode with missing slice arg succeeded")
	}
	if _, _, err := Encode(spec, []any{3}); err == nil {
		t.Fatal("Encode with missing slice arg succeeded")
	}
}

// Property: int slices of any content roundtrip through %^d.
func TestCaretIntProperty(t *testing.T) {
	f := func(in []int) bool {
		spec := Spec{Kind: KindInt, Mode: Caret}
		payload, _, err := Encode(spec, []any{in})
		if err != nil {
			return false
		}
		var out []int
		if _, err := Decode(spec, payload, []any{&out}); err != nil {
			return false
		}
		if len(in) == 0 {
			return len(out) == 0
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: float64 values roundtrip exactly through %lf.
func TestFloat64Property(t *testing.T) {
	f := func(x float64) bool {
		spec := Spec{Kind: KindFloat64, Mode: Scalar}
		payload, _, err := Encode(spec, []any{x})
		if err != nil {
			return false
		}
		var out float64
		if _, err := Decode(spec, payload, []any{&out}); err != nil {
			return false
		}
		return out == x || (out != out && x != x) // NaN-safe
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDescribe(t *testing.T) {
	p := encodeOne(t, "%d", 42)
	if got := Describe(mustParse(t, "%d")[0], p); got != "val: 42" {
		t.Errorf("Describe scalar = %q", got)
	}
	p = encodeOne(t, "%3lf", []float64{1.5, 2, 3})
	if got := Describe(mustParse(t, "%3lf")[0], p); got != "len: 3 first: 1.5" {
		t.Errorf("Describe fixed = %q", got)
	}
	p = encodeOne(t, "%^d", []int{9, 8})
	if got := Describe(mustParse(t, "%^d")[0], p); got != "len: 2 first: 9" {
		t.Errorf("Describe caret = %q", got)
	}
	p = encodeOne(t, "%s", "hello world!")
	got := Describe(mustParse(t, "%s")[0], p)
	if !strings.HasPrefix(got, "len: 12 first:") {
		t.Errorf("Describe string = %q", got)
	}
	// Popup-text convention from the paper: begin with literal text, never
	// with a substitution.
	for _, d := range []string{got} {
		if strings.HasPrefix(d, "%") || d[0] >= '0' && d[0] <= '9' {
			t.Errorf("Describe output %q violates literal-prefix convention", d)
		}
	}
}

func TestElemSizes(t *testing.T) {
	want := map[Kind]int{
		KindChar: 1, KindInt16: 2, KindUint16: 2, KindFloat32: 4,
		KindInt: 8, KindInt64: 8, KindUint: 8, KindUint64: 8, KindFloat64: 8,
		KindString: 0,
	}
	for k, n := range want {
		if got := k.ElemSize(); got != n {
			t.Errorf("ElemSize(%v) = %d, want %d", k, got, n)
		}
	}
}
