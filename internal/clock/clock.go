// Package clock provides the wallclock substrate for the simulated MPI
// world. Real MPI programs read MPI_Wtime from per-node clocks that differ
// by offset and drift and that tick with limited resolution; MPE's
// Log_sync_clocks exists to undo exactly that. This package reproduces those
// properties so the logging pipeline has something real to synchronise.
//
// All readings are in seconds, as with MPI_Wtime.
package clock

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// Source yields wallclock readings in seconds. Implementations must be safe
// for concurrent use.
type Source interface {
	// Now returns the current reading of this clock in seconds. Readings
	// are non-decreasing for well-formed sources.
	Now() float64
}

// Real is a Source backed by the process monotonic clock. All Real sources
// created from the same Epoch agree exactly, which models ranks running on
// a single node.
type Real struct {
	epoch time.Time
}

// NewReal returns a Real source whose zero is the moment of the call.
func NewReal() *Real { return &Real{epoch: time.Now()} }

// NewRealAt returns a Real source with an explicit epoch so several sources
// can share one time base.
func NewRealAt(epoch time.Time) *Real { return &Real{epoch: epoch} }

// Now implements Source.
func (r *Real) Now() float64 { return time.Since(r.epoch).Seconds() }

// Epoch returns the source's zero instant.
func (r *Real) Epoch() time.Time { return r.epoch }

// Skewed wraps a base Source and distorts it the way a remote node's clock
// is distorted relative to "true" time:
//
//	reading = truncate((base + Offset) * (1 + Drift), Resolution)
//
// Offset is in seconds. Drift is dimensionless (5e-6 means the clock gains
// 5 microseconds per second). Resolution, if positive, truncates readings to
// a multiple of itself — this reproduces the limited resolution of
// MPI_Wtime that the paper identifies as the cause of the "Equal Drawables"
// conversion warning.
type Skewed struct {
	Base       Source
	Offset     float64
	Drift      float64
	Resolution float64
}

// NewSkewed builds a Skewed source over base.
func NewSkewed(base Source, offset, drift, resolution float64) *Skewed {
	return &Skewed{Base: base, Offset: offset, Drift: drift, Resolution: resolution}
}

// Now implements Source.
func (s *Skewed) Now() float64 {
	t := (s.Base.Now() + s.Offset) * (1 + s.Drift)
	return Truncate(t, s.Resolution)
}

// Truncate rounds t down to a multiple of res. A non-positive res leaves t
// unchanged.
func Truncate(t, res float64) float64 {
	if res <= 0 {
		return t
	}
	return math.Floor(t/res) * res
}

// Manual is a hand-driven Source for deterministic tests. Its readings only
// move when Set or Advance is called.
type Manual struct {
	mu  sync.Mutex
	now float64
}

// NewManual returns a Manual source initialised to start seconds.
func NewManual(start float64) *Manual { return &Manual{now: start} }

// Now implements Source.
func (m *Manual) Now() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// Set moves the clock to t. Set panics if t would move time backwards;
// tests that need a broken clock should build their own Source.
func (m *Manual) Set(t float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if t < m.now {
		panic(fmt.Sprintf("clock: Manual.Set moving backwards: %v -> %v", m.now, t))
	}
	m.now = t
}

// Advance moves the clock forward by d seconds.
func (m *Manual) Advance(d float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if d < 0 {
		panic(fmt.Sprintf("clock: Manual.Advance by negative %v", d))
	}
	m.now += d
}

// Monotonic wraps any Source and clamps readings so they never decrease.
// Useful when a Skewed source with negative drift is sampled around a
// resolution boundary.
type Monotonic struct {
	Base Source

	mu   sync.Mutex
	last float64
}

// NewMonotonic wraps base in a Monotonic clamp.
func NewMonotonic(base Source) *Monotonic { return &Monotonic{Base: base} }

// Now implements Source.
func (m *Monotonic) Now() float64 {
	t := m.Base.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	if t < m.last {
		t = m.last
	}
	m.last = t
	return t
}

// SyncResult describes the correction computed for one clock by Sync.
type SyncResult struct {
	// Offset is the estimated value of (local - reference) at the moment of
	// synchronisation: subtract it from local readings to map them onto the
	// reference timebase.
	Offset float64
	// RTT is the round-trip time observed for the best estimation exchange,
	// an error bound on Offset.
	RTT float64
}

// Sync estimates the offset of local relative to ref using the classic
// ping-pong scheme MPE employs in MPE_Log_sync_clocks: sample ref, sample
// local, sample ref again, and take the local reading against the midpoint
// of the two ref readings. rounds exchanges are performed and the one with
// the smallest round trip wins.
//
// In the simulated world both sources are cheap to read, so this converges
// with tiny RTTs; the algorithm is nevertheless the real one.
func Sync(ref, local Source, rounds int) SyncResult {
	if rounds < 1 {
		rounds = 1
	}
	best := SyncResult{RTT: math.Inf(1)}
	for i := 0; i < rounds; i++ {
		t0 := ref.Now()
		l := local.Now()
		t1 := ref.Now()
		rtt := t1 - t0
		if rtt < best.RTT {
			best = SyncResult{Offset: l - (t0+t1)/2, RTT: rtt}
		}
	}
	return best
}
