package clock

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestRealMonotone(t *testing.T) {
	r := NewReal()
	prev := r.Now()
	for i := 0; i < 1000; i++ {
		now := r.Now()
		if now < prev {
			t.Fatalf("Real went backwards: %v -> %v", prev, now)
		}
		prev = now
	}
}

func TestRealSharedEpochAgree(t *testing.T) {
	epoch := time.Now()
	a := NewRealAt(epoch)
	b := NewRealAt(epoch)
	if d := math.Abs(a.Now() - b.Now()); d > 0.05 {
		t.Fatalf("shared-epoch clocks disagree by %v s", d)
	}
	if !a.Epoch().Equal(epoch) {
		t.Fatalf("Epoch() = %v, want %v", a.Epoch(), epoch)
	}
}

func TestManual(t *testing.T) {
	m := NewManual(3)
	if got := m.Now(); got != 3 {
		t.Fatalf("Now() = %v, want 3", got)
	}
	m.Advance(1.5)
	if got := m.Now(); got != 4.5 {
		t.Fatalf("after Advance, Now() = %v, want 4.5", got)
	}
	m.Set(10)
	if got := m.Now(); got != 10 {
		t.Fatalf("after Set, Now() = %v, want 10", got)
	}
}

func TestManualPanicsOnBackwardsSet(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Set backwards did not panic")
		}
	}()
	m := NewManual(5)
	m.Set(4)
}

func TestManualPanicsOnNegativeAdvance(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Advance did not panic")
		}
	}()
	NewManual(0).Advance(-1)
}

func TestSkewedOffsetAndDrift(t *testing.T) {
	base := NewManual(100)
	s := NewSkewed(base, 2.0, 0.01, 0)
	want := (100 + 2.0) * 1.01
	if got := s.Now(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestSkewedResolutionTruncates(t *testing.T) {
	base := NewManual(1.23456)
	s := NewSkewed(base, 0, 0, 1e-3)
	if got := s.Now(); got != 1.234 {
		t.Fatalf("Now() = %v, want 1.234", got)
	}
	// Two nearby instants collapse to the same tick: the root cause of the
	// paper's "Equal Drawables" warning.
	base.Advance(0.0002)
	if got := s.Now(); got != 1.234 {
		t.Fatalf("Now() after tiny advance = %v, want 1.234", got)
	}
	base.Advance(0.001)
	if got := s.Now(); got != 1.235 {
		t.Fatalf("Now() after 1ms advance = %v, want 1.235", got)
	}
}

func TestTruncate(t *testing.T) {
	cases := []struct{ t, res, want float64 }{
		{1.9999, 1e-3, 1.999},
		{1.9999, 0, 1.9999},
		{1.9999, -1, 1.9999},
		{0, 1e-3, 0},
		{2.5, 0.5, 2.5},
		{2.74, 0.5, 2.5},
	}
	for _, c := range cases {
		if got := Truncate(c.t, c.res); got != c.want {
			t.Errorf("Truncate(%v, %v) = %v, want %v", c.t, c.res, got, c.want)
		}
	}
}

func TestMonotonicClampsBackwardSteps(t *testing.T) {
	m := NewManual(0)
	// A skewed clock with strong negative drift plus a manual base that we
	// sample before and after an offset-induced step could go backwards;
	// emulate directly with a wrapper source.
	seq := []float64{1, 2, 1.5, 3}
	i := 0
	src := sourceFunc(func() float64 { v := seq[i%len(seq)]; i++; return v })
	mono := NewMonotonic(src)
	var prev float64
	for j := 0; j < len(seq); j++ {
		now := mono.Now()
		if now < prev {
			t.Fatalf("Monotonic went backwards: %v -> %v", prev, now)
		}
		prev = now
	}
	_ = m
}

type sourceFunc func() float64

func (f sourceFunc) Now() float64 { return f() }

func TestSyncRecoversOffset(t *testing.T) {
	base := NewReal()
	const trueOffset = 1.75
	local := NewSkewed(base, trueOffset, 0, 0)
	res := Sync(base, local, 10)
	if math.Abs(res.Offset-trueOffset) > 1e-3 {
		t.Fatalf("Sync offset = %v, want ~%v (rtt %v)", res.Offset, trueOffset, res.RTT)
	}
	if res.RTT < 0 {
		t.Fatalf("negative RTT %v", res.RTT)
	}
}

func TestSyncRoundsClamped(t *testing.T) {
	base := NewManual(10)
	local := NewSkewed(base, 0.5, 0, 0)
	res := Sync(base, local, 0) // clamps to 1 round
	if math.Abs(res.Offset-0.5) > 1e-9 {
		t.Fatalf("Sync offset = %v, want 0.5", res.Offset)
	}
}

// Property: for random offsets (drift-free), Sync recovers the offset to
// within the observed RTT.
func TestSyncOffsetProperty(t *testing.T) {
	f := func(raw int16) bool {
		offset := float64(raw) / 100 // -327.68 .. 327.67 s
		base := NewReal()
		local := NewSkewed(base, offset, 0, 0)
		res := Sync(base, local, 5)
		return math.Abs(res.Offset-offset) <= res.RTT+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Skewed with positive resolution always yields a multiple of the
// resolution (within floating error).
func TestSkewedResolutionProperty(t *testing.T) {
	f := func(ms uint16, off int8) bool {
		base := NewManual(float64(ms) / 7)
		s := NewSkewed(base, float64(off)/13, 0, 1e-3)
		v := s.Now()
		q := v / 1e-3
		return math.Abs(q-math.Round(q)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
