package slog2

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/clog2"
)

// buildCLOG assembles a clog2.File in memory. States are defined with
// sequential IDs beginning at 1 (etypes 2/3, 4/5, ...), events at solo
// etypes.
type clogBuilder struct {
	nranks int
	defs   []clog2.Record
	blocks map[int32][]clog2.Record
}

func newCLOG(nranks int) *clogBuilder {
	return &clogBuilder{nranks: nranks, blocks: map[int32][]clog2.Record{}}
}

func (b *clogBuilder) defState(id int32, name, color string) {
	b.defs = append(b.defs, clog2.Record{
		Type: clog2.RecStateDef, ID: id, Aux1: id * 2, Aux2: id*2 + 1,
		Color: color, Name: name,
	})
}

func (b *clogBuilder) defEvent(id int32, name, color string) {
	b.defs = append(b.defs, clog2.Record{
		Type: clog2.RecEventDef, ID: 1<<20 + id, Color: color, Name: name,
	})
}

func cargoEvt(time float64, rank, id int32, cargo string) clog2.Record {
	r := clog2.Record{Type: clog2.RecCargoEvt, Time: time, Rank: rank, ID: id}
	r.SetCargo(cargo)
	return r
}

func (b *clogBuilder) state(rank int32, id int32, t0, t1 float64, cargo string) {
	b.blocks[rank] = append(b.blocks[rank],
		cargoEvt(t0, rank, id*2, cargo),
		cargoEvt(t1, rank, id*2+1, ""),
	)
}

func (b *clogBuilder) event(rank int32, id int32, t float64, cargo string) {
	b.blocks[rank] = append(b.blocks[rank], cargoEvt(t, rank, 1<<20+id, cargo))
}

func (b *clogBuilder) send(rank, dst, tag int32, t float64, size int32) {
	b.blocks[rank] = append(b.blocks[rank],
		clog2.Record{Type: clog2.RecMsgEvt, Time: t, Rank: rank, Dir: clog2.DirSend, Aux1: dst, Aux2: tag, Aux3: size})
}

func (b *clogBuilder) recv(rank, src, tag int32, t float64, size int32) {
	b.blocks[rank] = append(b.blocks[rank],
		clog2.Record{Type: clog2.RecMsgEvt, Time: t, Rank: rank, Dir: clog2.DirRecv, Aux1: src, Aux2: tag, Aux3: size})
}

func (b *clogBuilder) file() *clog2.File {
	f := &clog2.File{NumRanks: b.nranks}
	f.Blocks = append(f.Blocks, clog2.Block{Rank: 0, Records: b.defs})
	for r := int32(0); r < int32(b.nranks); r++ {
		if recs, ok := b.blocks[r]; ok {
			f.Blocks = append(f.Blocks, clog2.Block{Rank: r, Records: recs})
		}
	}
	return f
}

func TestConvertBasicStatesAndArrow(t *testing.T) {
	b := newCLOG(2)
	b.defState(1, "PI_Write", "green")
	b.defState(2, "PI_Read", "red")
	b.defEvent(1, "MsgArrival", "yellow")
	b.state(0, 1, 1.0, 1.2, "line: 10")
	b.state(1, 2, 0.9, 1.5, "line: 20")
	b.send(0, 1, 7, 1.05, 64)
	b.recv(1, 0, 7, 1.4, 64)
	b.event(1, 1, 1.4, "chan: C1")

	f, rep, err := Convert(b.file(), ConvertOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.States != 2 || rep.Arrows != 1 || rep.Events != 1 {
		t.Fatalf("report %+v", rep)
	}
	if rep.EqualDrawables != 0 || rep.NestingErrors != 0 || rep.UnmatchedSends != 0 {
		t.Fatalf("unexpected warnings: %+v", rep)
	}
	states, arrows, events := f.All()
	if len(states) != 2 || len(arrows) != 1 || len(events) != 1 {
		t.Fatalf("drawables %d/%d/%d", len(states), len(arrows), len(events))
	}
	a := arrows[0]
	if a.SrcRank != 0 || a.DstRank != 1 || a.Start != 1.05 || a.End != 1.4 || a.Tag != 7 || a.Size != 64 {
		t.Fatalf("arrow %+v", a)
	}
	wi := f.CategoryIndex("PI_Write")
	ri := f.CategoryIndex("PI_Read")
	if wi < 0 || ri < 0 {
		t.Fatalf("categories missing: %v", f.Categories)
	}
	if f.Categories[wi].Color != "green" || f.Categories[ri].Color != "red" {
		t.Fatal("category colours lost")
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if f.Start != 0.9 || f.End != 1.5 {
		t.Fatalf("bounds [%v,%v]", f.Start, f.End)
	}
}

func TestConvertNestedStates(t *testing.T) {
	b := newCLOG(1)
	b.defState(1, "Compute", "gray")
	b.defState(2, "PI_Read", "red")
	// Read nested within Compute: start order C, R; end order R, C.
	b.blocks[0] = append(b.blocks[0],
		clog2.Record{Type: clog2.RecCargoEvt, Time: 1, Rank: 0, ID: 2},  // Compute start
		clog2.Record{Type: clog2.RecCargoEvt, Time: 2, Rank: 0, ID: 4},  // Read start
		clog2.Record{Type: clog2.RecCargoEvt, Time: 3, Rank: 0, ID: 5},  // Read end
		clog2.Record{Type: clog2.RecCargoEvt, Time: 10, Rank: 0, ID: 3}, // Compute end
	)
	f, rep, err := Convert(b.file(), ConvertOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.NestingErrors != 0 {
		t.Fatalf("nesting errors: %v", rep.Warnings)
	}
	states, _, _ := f.All()
	if len(states) != 2 {
		t.Fatalf("states %+v", states)
	}
	var comp, read *State
	for i := range states {
		switch f.Categories[states[i].Cat].Name {
		case "Compute":
			comp = &states[i]
		case "PI_Read":
			read = &states[i]
		}
	}
	if comp == nil || read == nil {
		t.Fatal("missing states")
	}
	if !(read.Start >= comp.Start && read.End <= comp.End) {
		t.Fatalf("nesting broken: %+v in %+v", read, comp)
	}
}

func TestConvertNestingErrors(t *testing.T) {
	b := newCLOG(1)
	b.defState(1, "A", "red")
	b.defState(2, "B", "green")
	b.blocks[0] = append(b.blocks[0],
		clog2.Record{Type: clog2.RecCargoEvt, Time: 1, Rank: 0, ID: 2}, // A start
		clog2.Record{Type: clog2.RecCargoEvt, Time: 2, Rank: 0, ID: 5}, // B end (mismatch)
		clog2.Record{Type: clog2.RecCargoEvt, Time: 3, Rank: 0, ID: 5}, // B end, stack empty
		clog2.Record{Type: clog2.RecCargoEvt, Time: 4, Rank: 0, ID: 4}, // B start, never closed
	)
	_, rep, err := Convert(b.file(), ConvertOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.NestingErrors != 3 {
		t.Fatalf("nesting errors = %d, want 3 (%v)", rep.NestingErrors, rep.Warnings)
	}
}

func TestConvertUnmatchedMessages(t *testing.T) {
	b := newCLOG(2)
	b.defState(1, "S", "red")
	b.state(0, 1, 0, 1, "")
	b.send(0, 1, 1, 0.1, 8)
	b.send(0, 1, 1, 0.2, 8)
	b.recv(1, 0, 1, 0.5, 8)
	b.recv(1, 0, 2, 0.6, 8) // tag 2 never sent
	_, rep, err := Convert(b.file(), ConvertOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Arrows != 1 || rep.UnmatchedSends != 1 || rep.UnmatchedRecvs != 1 {
		t.Fatalf("report %+v", rep)
	}
}

func TestConvertSizeMismatchWarns(t *testing.T) {
	b := newCLOG(2)
	b.defState(1, "S", "red")
	b.state(0, 1, 0, 1, "")
	b.send(0, 1, 1, 0.1, 8)
	b.recv(1, 0, 1, 0.5, 16)
	_, rep, err := Convert(b.file(), ConvertOptions{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, w := range rep.Warnings {
		if strings.Contains(w, "send size 8 != recv size 16") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no size-mismatch warning in %v", rep.Warnings)
	}
}

// The paper's "Equal Drawables" warning: drawables of one category with
// identical start and end times, caused by limited clock resolution.
func TestEqualDrawablesDetected(t *testing.T) {
	b := newCLOG(3)
	b.defState(1, "PI_Write", "green")
	// Three arrows logged at exactly the same (truncated) instants.
	for dst := int32(1); dst <= 2; dst++ {
		b.send(0, dst, 5, 1.000, 8)
	}
	b.send(0, 1, 6, 1.000, 8)
	b.recv(1, 0, 5, 1.001, 8)
	b.recv(2, 0, 5, 1.001, 8)
	b.recv(1, 0, 6, 1.001, 8)
	b.state(0, 1, 1.000, 1.001, "")
	f, rep, err := Convert(b.file(), ConvertOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Arrows 0->1 tag5, 0->1 tag6 differ in tag but (src,dst) pair 0->1 has
	// two arrows with identical times → at least one equal drawable.
	if rep.EqualDrawables < 1 {
		t.Fatalf("EqualDrawables = %d, want >= 1", rep.EqualDrawables)
	}
	hasWarning := false
	for _, w := range f.Warnings {
		if strings.Contains(w, "Equal Drawables") {
			hasWarning = true
		}
	}
	if !hasWarning {
		t.Fatalf("no Equal Drawables warning in %v", f.Warnings)
	}
}

func TestEqualDrawablesAbsentWhenSpread(t *testing.T) {
	b := newCLOG(3)
	b.defState(1, "PI_Write", "green")
	b.state(0, 1, 1.0, 1.01, "")
	// Same fan-out but spread by 1 ms, the paper's usleep workaround.
	b.send(0, 1, 5, 1.000, 8)
	b.send(0, 2, 5, 1.001, 8)
	b.recv(1, 0, 5, 1.002, 8)
	b.recv(2, 0, 5, 1.003, 8)
	_, rep, err := Convert(b.file(), ConvertOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.EqualDrawables != 0 {
		t.Fatalf("EqualDrawables = %d with spread timestamps", rep.EqualDrawables)
	}
}

func TestFrameTreeSplitsAndQuery(t *testing.T) {
	b := newCLOG(4)
	b.defState(1, "S", "red")
	rng := rand.New(rand.NewSource(7))
	const n = 2000
	for i := 0; i < n; i++ {
		rank := int32(rng.Intn(4))
		t0 := rng.Float64() * 100
		b.state(rank, 1, t0, t0+rng.Float64(), "")
	}
	f, rep, err := Convert(b.file(), ConvertOptions{FrameCapacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	if rep.States != n {
		t.Fatalf("states = %d", rep.States)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if d := f.Depth(); d < 3 {
		t.Fatalf("tree depth %d; capacity 64 with %d drawables should split", d, n)
	}
	// Query returns exactly the states intersecting the window.
	states, _, _ := f.Query(25, 30)
	all, _, _ := f.All()
	want := 0
	for _, s := range all {
		if s.End >= 25 && s.Start <= 30 {
			want++
		}
	}
	if len(states) != want {
		t.Fatalf("Query returned %d states, want %d", len(states), want)
	}
	for _, s := range states {
		if s.End < 25 || s.Start > 30 {
			t.Fatalf("state [%v,%v] outside query window", s.Start, s.End)
		}
	}
	// Total drawables preserved.
	if len(all) != n {
		t.Fatalf("All() returned %d states, want %d", len(all), n)
	}
}

func TestFrameCapacityControlsDepth(t *testing.T) {
	mk := func(capacity int) int {
		b := newCLOG(2)
		b.defState(1, "S", "red")
		for i := 0; i < 500; i++ {
			t0 := float64(i)
			b.state(0, 1, t0, t0+0.5, "")
		}
		f, _, err := Convert(b.file(), ConvertOptions{FrameCapacity: capacity})
		if err != nil {
			t.Fatal(err)
		}
		if err := f.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		return f.Depth()
	}
	small := mk(16)
	large := mk(1024)
	if small <= large {
		t.Fatalf("depth(capacity=16)=%d should exceed depth(capacity=1024)=%d", small, large)
	}
	if large != 1 {
		t.Fatalf("capacity 1024 over 500 drawables should not split, depth=%d", large)
	}
}

func TestPreviewFractions(t *testing.T) {
	b := newCLOG(1)
	b.defState(1, "Compute", "gray")
	b.defState(2, "PI_Read", "red")
	// 8 s of compute, 2 s of read within [0,10].
	b.state(0, 1, 0, 8, "")
	b.state(0, 2, 8, 10, "")
	f, _, err := Convert(b.file(), ConvertOptions{})
	if err != nil {
		t.Fatal(err)
	}
	root := f.Root
	comp := f.CategoryIndex("Compute")
	read := f.CategoryIndex("PI_Read")
	if got := root.Preview[0][comp]; got != 8 {
		t.Fatalf("compute preview = %v", got)
	}
	if got := root.Preview[0][read]; got != 2 {
		t.Fatalf("read preview = %v", got)
	}
}

func TestConvertEmptyLog(t *testing.T) {
	b := newCLOG(2)
	b.defState(1, "S", "red")
	f, rep, err := Convert(b.file(), ConvertOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.States != 0 || f.Root == nil {
		t.Fatalf("empty conversion: rep=%+v root=%v", rep, f.Root)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteReadRoundtrip(t *testing.T) {
	b := newCLOG(3)
	b.defState(1, "PI_Write", "green")
	b.defState(2, "PI_Read", "red")
	b.defEvent(1, "MsgArrival", "yellow")
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		rank := int32(rng.Intn(3))
		t0 := rng.Float64() * 50
		b.state(rank, int32(rng.Intn(2)+1), t0, t0+rng.Float64(), "cargo")
		b.event(rank, 1, t0, "ev")
	}
	b.send(0, 1, 1, 3, 10)
	b.recv(1, 0, 1, 4, 10)
	f, _, err := Convert(b.file(), ConvertOptions{FrameCapacity: 50})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	g, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumRanks != f.NumRanks || g.Start != f.Start || g.End != f.End {
		t.Fatalf("header changed: %+v vs %+v", g, f)
	}
	if len(g.Categories) != len(f.Categories) {
		t.Fatalf("categories %d vs %d", len(g.Categories), len(f.Categories))
	}
	for i := range g.Categories {
		if g.Categories[i] != f.Categories[i] {
			t.Fatalf("category %d changed: %+v vs %+v", i, g.Categories[i], f.Categories[i])
		}
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	s1, a1, e1 := f.All()
	s2, a2, e2 := g.All()
	if len(s1) != len(s2) || len(a1) != len(a2) || len(e1) != len(e2) {
		t.Fatalf("drawable counts changed: %d/%d/%d vs %d/%d/%d",
			len(s1), len(a1), len(e1), len(s2), len(a2), len(e2))
	}
	if g.Depth() != f.Depth() {
		t.Fatalf("tree depth changed: %d vs %d", g.Depth(), f.Depth())
	}
}

func TestWriteFileReadFile(t *testing.T) {
	b := newCLOG(1)
	b.defState(1, "S", "red")
	b.state(0, 1, 0, 1, "x")
	f, _, err := Convert(b.file(), ConvertOptions{})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/x.slog2"
	if err := WriteFile(path, f); err != nil {
		t.Fatal(err)
	}
	g, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not-slog"))); err == nil {
		t.Fatal("garbage read succeeded")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty read succeeded")
	}
}

func TestReadRejectsTruncated(t *testing.T) {
	b := newCLOG(2)
	b.defState(1, "S", "red")
	for i := 0; i < 50; i++ {
		b.state(0, 1, float64(i), float64(i)+0.5, "cargo")
	}
	f, _, err := Convert(b.file(), ConvertOptions{FrameCapacity: 10})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := len(Magic); cut < len(full)-1; cut += 13 {
		if _, err := Read(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncated read at %d succeeded", cut)
		}
	}
}

func TestWriteNilFileFails(t *testing.T) {
	if err := Write(&bytes.Buffer{}, nil); err == nil {
		t.Fatal("Write(nil) succeeded")
	}
	if err := Write(&bytes.Buffer{}, &File{}); err == nil {
		t.Fatal("Write(no root) succeeded")
	}
}

// Property: Query over random windows equals a brute-force filter of
// All — the agreement the pilot-serve tile handler relies on.
func TestQueryMatchesBruteForceRandomWindows(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	b := newCLOG(5)
	b.defState(1, "A", "red")
	b.defState(2, "B", "green")
	b.defEvent(1, "E", "yellow")
	for i := 0; i < 1500; i++ {
		rank := int32(rng.Intn(5))
		t0 := rng.Float64() * 60
		b.state(rank, int32(rng.Intn(2)+1), t0, t0+rng.Float64()*2, "")
		if rng.Intn(4) == 0 {
			b.event(rank, 1, t0, "")
		}
		if rng.Intn(6) == 0 {
			dst := int32(rng.Intn(5))
			tm := rng.Float64() * 60
			b.send(rank, dst, int32(i), tm, 8)
			b.recv(dst, rank, int32(i), tm+rng.Float64(), 8)
		}
	}
	f, _, err := Convert(b.file(), ConvertOptions{FrameCapacity: 32})
	if err != nil {
		t.Fatal(err)
	}
	states, arrows, events := f.All()
	for trial := 0; trial < 200; trial++ {
		t0 := f.Start + rng.Float64()*(f.End-f.Start)
		t1 := t0 + rng.Float64()*(f.End-t0)
		qs, qa, qe := f.Query(t0, t1)
		var ws, wa, we int
		for _, s := range states {
			if s.End >= t0 && s.Start <= t1 {
				ws++
			}
		}
		for _, a := range arrows {
			lo, hi := a.Start, a.End
			if hi < lo {
				lo, hi = hi, lo
			}
			if hi >= t0 && lo <= t1 {
				wa++
			}
		}
		for _, e := range events {
			if e.Time >= t0 && e.Time <= t1 {
				we++
			}
		}
		if len(qs) != ws || len(qa) != wa || len(qe) != we {
			t.Fatalf("window [%v,%v]: Query %d/%d/%d, brute force %d/%d/%d",
				t0, t1, len(qs), len(qa), len(qe), ws, wa, we)
		}
		for i := 1; i < len(qs); i++ {
			if qs[i].Start < qs[i-1].Start {
				t.Fatal("Query states out of start order")
			}
		}
	}
}

// Property: random logs convert to invariant-satisfying trees that
// preserve every drawable, at several frame capacities.
func TestConvertRandomProperty(t *testing.T) {
	for _, capacity := range []int{1, 8, 64, 4096} {
		for seed := int64(0); seed < 8; seed++ {
			rng := rand.New(rand.NewSource(seed))
			nr := rng.Intn(6) + 1
			b := newCLOG(nr)
			b.defState(1, "A", "red")
			b.defState(2, "B", "green")
			b.defEvent(1, "E", "yellow")
			n := rng.Intn(300)
			for i := 0; i < n; i++ {
				rank := int32(rng.Intn(nr))
				t0 := rng.Float64() * 10
				b.state(rank, int32(rng.Intn(2)+1), t0, t0+rng.Float64()*0.2, "")
				if rng.Intn(3) == 0 {
					b.event(rank, 1, t0, "")
				}
			}
			f, rep, err := Convert(b.file(), ConvertOptions{FrameCapacity: capacity})
			if err != nil {
				t.Fatalf("capacity=%d seed=%d: %v", capacity, seed, err)
			}
			if err := f.CheckInvariants(); err != nil {
				t.Fatalf("capacity=%d seed=%d: %v", capacity, seed, err)
			}
			s, _, e := f.All()
			if len(s) != rep.States || len(e) != rep.Events {
				t.Fatalf("capacity=%d seed=%d: drawables lost", capacity, seed)
			}
		}
	}
}
