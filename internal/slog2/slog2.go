// Package slog2 implements an SLOG-2-style visualization logfile: the
// frame-tree format Jumpshot displays, produced by converting a raw CLOG-2
// log. The conversion pairs state start/end events into interval drawables,
// pairs message send/receive halves into arrows, detects the "Equal
// Drawables" condition (distinct drawables with identical timestamps, a
// symptom of limited MPI_Wtime resolution), and organises everything into
// a binary bounding-box tree of frames whose capacity — the "frame size"
// conversion parameter — controls how much data a viewer touches at any
// zoom level. Internal tree nodes carry preview summaries: per-rank,
// per-category time fractions, which Jumpshot renders as the striped
// rectangles seen in zoomed-out views.
package slog2

import (
	"fmt"
	"sort"
)

// CategoryKind distinguishes state categories from event categories.
type CategoryKind uint8

// Category kinds.
const (
	KindState CategoryKind = iota
	KindEvent
)

// Category is a legend entry: one kind of drawable with display
// properties. The legend table in Jumpshot is exactly this list plus
// statistics computed from the drawables.
type Category struct {
	Name  string
	Color string
	Kind  CategoryKind
}

// State is an interval drawable on one rank's timeline: one call of a
// Pilot function, or a phase like Compute.
type State struct {
	Rank       int
	Cat        int // index into File.Categories
	Start, End float64
	// StartCargo/EndCargo carry the popup text logged with the state's
	// start and end events (line number, process name, worker index...).
	StartCargo string
	EndCargo   string
}

// Duration returns End-Start.
func (s State) Duration() float64 { return s.End - s.Start }

// Arrow is a message drawable from a send on one timeline to the matching
// receive on another. Its popup shows start and end times, duration, MPI
// tag and message size — and, as the paper notes, nothing else can be
// attached.
type Arrow struct {
	SrcRank, DstRank int
	Start, End       float64
	Tag, Size        int
}

// Event is a solo drawable — a bubble.
type Event struct {
	Rank  int
	Cat   int // index into File.Categories
	Time  float64
	Cargo string
}

// Frame is one node of the bounding-box tree. Drawables live in the
// deepest frame whose interval fully contains them; an interval spanning a
// split point stays in the parent.
type Frame struct {
	Start, End float64
	States     []State
	Arrows     []Arrow
	Events     []Event
	// Preview summarises the whole subtree: Preview[rank][cat] is the total
	// state time of that category on that rank within this frame's subtree.
	Preview map[int]map[int]float64
	Left    *Frame
	Right   *Frame
}

// leaf reports whether the frame has no children.
func (fr *Frame) leaf() bool { return fr.Left == nil && fr.Right == nil }

// File is a complete SLOG-2 log.
type File struct {
	NumRanks   int
	Start, End float64
	Categories []Category
	Root       *Frame
	// Warnings carries conversion diagnostics, including the Equal
	// Drawables warnings.
	Warnings []string
}

// Walk visits every frame depth-first (parent before children).
func (f *File) Walk(visit func(*Frame)) {
	var rec func(*Frame)
	rec = func(fr *Frame) {
		if fr == nil {
			return
		}
		visit(fr)
		rec(fr.Left)
		rec(fr.Right)
	}
	rec(f.Root)
}

// Query returns the drawables intersecting [t0, t1], in start-time order.
// This is the viewer's fetch path: only frames overlapping the viewport
// are touched, which is the point of the frame tree.
func (f *File) Query(t0, t1 float64) (states []State, arrows []Arrow, events []Event) {
	var rec func(fr *Frame)
	rec = func(fr *Frame) {
		if fr == nil || fr.End < t0 || fr.Start > t1 {
			return
		}
		for _, s := range fr.States {
			if s.End >= t0 && s.Start <= t1 {
				states = append(states, s)
			}
		}
		for _, a := range fr.Arrows {
			lo, hi := a.Start, a.End
			if hi < lo {
				lo, hi = hi, lo
			}
			if hi >= t0 && lo <= t1 {
				arrows = append(arrows, a)
			}
		}
		for _, e := range fr.Events {
			if e.Time >= t0 && e.Time <= t1 {
				events = append(events, e)
			}
		}
		rec(fr.Left)
		rec(fr.Right)
	}
	rec(f.Root)
	sort.SliceStable(states, func(i, j int) bool { return states[i].Start < states[j].Start })
	sort.SliceStable(arrows, func(i, j int) bool { return arrows[i].Start < arrows[j].Start })
	sort.SliceStable(events, func(i, j int) bool { return events[i].Time < events[j].Time })
	return states, arrows, events
}

// All returns every drawable in the file.
func (f *File) All() (states []State, arrows []Arrow, events []Event) {
	f.Walk(func(fr *Frame) {
		states = append(states, fr.States...)
		arrows = append(arrows, fr.Arrows...)
		events = append(events, fr.Events...)
	})
	return
}

// CategoryIndex returns the index of the named category, or -1.
func (f *File) CategoryIndex(name string) int {
	for i, c := range f.Categories {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Depth returns the height of the frame tree.
func (f *File) Depth() int {
	var rec func(fr *Frame) int
	rec = func(fr *Frame) int {
		if fr == nil {
			return 0
		}
		l, r := rec(fr.Left), rec(fr.Right)
		if r > l {
			l = r
		}
		return l + 1
	}
	return rec(f.Root)
}

// CheckInvariants verifies structural soundness: every drawable fully
// inside its frame's interval, children inside parents, previews
// consistent with subtree contents. Tests and the converter's self-check
// use it; a well-behaved producer never trips it.
func (f *File) CheckInvariants() error {
	if f.Root == nil {
		return fmt.Errorf("slog2: nil root frame")
	}
	const eps = 1e-9
	var rec func(fr *Frame) error
	rec = func(fr *Frame) error {
		if fr == nil {
			return nil
		}
		if fr.End < fr.Start {
			return fmt.Errorf("slog2: frame [%v,%v] inverted", fr.Start, fr.End)
		}
		for _, s := range fr.States {
			if s.Start < fr.Start-eps || s.End > fr.End+eps {
				return fmt.Errorf("slog2: state [%v,%v] escapes frame [%v,%v]", s.Start, s.End, fr.Start, fr.End)
			}
			if s.End < s.Start {
				return fmt.Errorf("slog2: state [%v,%v] inverted", s.Start, s.End)
			}
			if s.Cat < 0 || s.Cat >= len(f.Categories) {
				return fmt.Errorf("slog2: state category %d out of range", s.Cat)
			}
		}
		for _, e := range fr.Events {
			if e.Time < fr.Start-eps || e.Time > fr.End+eps {
				return fmt.Errorf("slog2: event at %v escapes frame [%v,%v]", e.Time, fr.Start, fr.End)
			}
			if e.Cat < 0 || e.Cat >= len(f.Categories) {
				return fmt.Errorf("slog2: event category %d out of range", e.Cat)
			}
		}
		for _, a := range fr.Arrows {
			lo, hi := a.Start, a.End
			if hi < lo {
				lo, hi = hi, lo
			}
			if lo < fr.Start-eps || hi > fr.End+eps {
				return fmt.Errorf("slog2: arrow [%v,%v] escapes frame [%v,%v]", lo, hi, fr.Start, fr.End)
			}
		}
		for _, child := range []*Frame{fr.Left, fr.Right} {
			if child == nil {
				continue
			}
			if child.Start < fr.Start-eps || child.End > fr.End+eps {
				return fmt.Errorf("slog2: child frame [%v,%v] escapes parent [%v,%v]", child.Start, child.End, fr.Start, fr.End)
			}
			if err := rec(child); err != nil {
				return err
			}
		}
		// Preview equals subtree state time per (rank, cat).
		want := map[int]map[int]float64{}
		var sum func(x *Frame)
		sum = func(x *Frame) {
			if x == nil {
				return
			}
			for _, s := range x.States {
				if want[s.Rank] == nil {
					want[s.Rank] = map[int]float64{}
				}
				want[s.Rank][s.Cat] += s.Duration()
			}
			sum(x.Left)
			sum(x.Right)
		}
		sum(fr)
		for rank, cats := range want {
			for cat, d := range cats {
				got := 0.0
				if fr.Preview[rank] != nil {
					got = fr.Preview[rank][cat]
				}
				if diff := got - d; diff > 1e-6 || diff < -1e-6 {
					return fmt.Errorf("slog2: preview[%d][%d] = %v, subtree has %v", rank, cat, got, d)
				}
			}
		}
		return nil
	}
	return rec(f.Root)
}
