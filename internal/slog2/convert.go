package slog2

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/clog2"
	"repro/internal/mpe"
)

// DefaultFrameCapacity is the default "frame size": the maximum number of
// drawables stored in one frame before it splits. The paper notes this
// conversion parameter governs "the amount of data initially displayed by
// the visualization tool".
const DefaultFrameCapacity = 256

// MaxTreeDepth bounds tree height regardless of capacity.
const MaxTreeDepth = 24

// ConvertOptions tunes the CLOG-2 → SLOG-2 conversion.
type ConvertOptions struct {
	// FrameCapacity is the maximum drawable count per frame (0 = default).
	FrameCapacity int
	// Workers is the worker-pool size for the per-rank phases (record
	// partitioning, state/arrow pairing) and for concurrent sibling-frame
	// construction. 0 means runtime.GOMAXPROCS(0); 1 runs fully
	// sequentially. The output is byte-identical at every worker count:
	// drawables are ordered by (rank, time, sequence) before frame
	// insertion, so parallelism never changes the result.
	Workers int
}

// workers resolves the effective worker count.
func (o ConvertOptions) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Report carries conversion diagnostics, mirroring the chatty output of
// the real clog2TOslog2 tool.
type Report struct {
	States         int
	Arrows         int
	Events         int
	EqualDrawables int // drawables sharing category and identical times
	UnmatchedSends int
	UnmatchedRecvs int
	NestingErrors  int // mismatched state start/end pairs
	Warnings       []string
}

func (r *Report) warnf(format string, args ...any) {
	r.Warnings = append(r.Warnings, fmt.Sprintf(format, args...))
}

// partition is the phase-1 product: definition records in file order and
// each rank's timed records in file order (the per-rank sequence used as
// the sort tie-break).
type partition struct {
	numRanks  int
	stateDefs []clog2.Record
	eventDefs []clog2.Record
	perRank   map[int][]clog2.Record
}

func newPartition(numRanks int) *partition {
	return &partition{numRanks: numRanks, perRank: map[int][]clog2.Record{}}
}

func (p *partition) addBlock(b *clog2.Block) {
	for _, rec := range b.Records {
		switch rec.Type {
		case clog2.RecStateDef:
			p.stateDefs = append(p.stateDefs, rec)
			continue
		case clog2.RecEventDef:
			p.eventDefs = append(p.eventDefs, rec)
			continue
		case clog2.RecConstDef, clog2.RecTimeShift, clog2.RecSrcLoc:
			continue
		}
		p.perRank[int(rec.Rank)] = append(p.perRank[int(rec.Rank)], rec)
	}
}

// Convert builds an SLOG-2 file from a parsed CLOG-2 log.
func Convert(in *clog2.File, opts ConvertOptions) (*File, *Report, error) {
	p := newPartition(in.NumRanks)
	for i := range in.Blocks {
		p.addBlock(&in.Blocks[i])
	}
	return convertPartitioned(p, opts)
}

// ConvertReader streams a CLOG-2 file from r straight into the conversion,
// one block at a time, without materializing clog2.File.Blocks — the
// low-memory path used by vis.Convert and the command-line tools.
func ConvertReader(r io.Reader, opts ConvertOptions) (*File, *Report, error) {
	br, err := clog2.NewBlockReader(r)
	if err != nil {
		return nil, nil, err
	}
	p := newPartition(br.NumRanks())
	for {
		b, err := br.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, err
		}
		p.addBlock(&b)
	}
	return convertPartitioned(p, opts)
}

// endpoint is one half of a message: a send or receive instant.
type endpoint struct {
	t    float64
	size int
}

// msgKey identifies a FIFO message queue per MPE's matching rule.
type msgKey struct{ src, dst, tag int }

// rankResult is one rank's phase-2 output: paired states, events, message
// halves and diagnostics, all in deterministic (time, sequence) order.
type rankResult struct {
	states   []State
	events   []Event
	sends    map[msgKey][]endpoint
	recvs    map[msgKey][]endpoint
	nesting  int
	warnings []string
}

func (rr *rankResult) warnf(format string, args ...any) {
	rr.warnings = append(rr.warnings, fmt.Sprintf(format, args...))
}

// processRank runs the per-rank pairing phase: sort the rank's records by
// (time, original sequence) and fold start/end pairs into states, solo
// events into events, and message halves into per-key FIFO queues.
// stateCat/eventCat are read-only shared tables, so many processRank calls
// may run concurrently.
func processRank(rank int, recs []clog2.Record, stateCat map[mpe.StateID]int, eventCat map[mpe.EventID]int) *rankResult {
	// Index sort: ties on Time resolve to original record sequence, so a
	// state-end and the next state-start logged at an identical (coarse-
	// resolution) timestamp can never reorder and desynchronize the
	// pairing stack.
	order := make([]int, len(recs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ra, rb := &recs[order[a]], &recs[order[b]]
		if ra.Time != rb.Time {
			return ra.Time < rb.Time
		}
		return order[a] < order[b]
	})

	rr := &rankResult{}
	type open struct {
		sid   mpe.StateID
		start float64
		cargo string
	}
	var stack []open
	for _, i := range order {
		rec := &recs[i]
		switch rec.Type {
		case clog2.RecBareEvt, clog2.RecCargoEvt:
			if sid, ok := mpe.IsStartEtype(rec.ID); ok {
				stack = append(stack, open{sid: sid, start: rec.Time, cargo: rec.CargoText()})
				continue
			}
			if sid, ok := mpe.IsEndEtype(rec.ID); ok {
				if len(stack) == 0 {
					rr.nesting++
					rr.warnf("rank %d: end of state %d at %v with no open state", rank, sid, rec.Time)
					continue
				}
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if top.sid != sid {
					rr.nesting++
					rr.warnf("rank %d: state %d closed while %d open at %v", rank, sid, top.sid, rec.Time)
				}
				endCargo := rec.CargoText()
				if endCargo == mpe.SyntheticEndCargo {
					// The logger closed this state for us at wrap-up; it is
					// still a nesting error in the program being debugged.
					rr.nesting++
					rr.warnf("rank %d: state %d left open, closed synthetically at %v", rank, sid, rec.Time)
				}
				cat, ok := stateCat[top.sid]
				if !ok {
					rr.warnf("rank %d: state %d has no definition", rank, top.sid)
					continue
				}
				rr.states = append(rr.states, State{
					Rank: rank, Cat: cat,
					Start: top.start, End: rec.Time,
					StartCargo: top.cargo, EndCargo: endCargo,
				})
				continue
			}
			if eid, ok := mpe.IsSoloEtype(rec.ID); ok {
				cat, ok := eventCat[eid]
				if !ok {
					rr.warnf("rank %d: event %d has no definition", rank, eid)
					continue
				}
				rr.events = append(rr.events, Event{Rank: rank, Cat: cat, Time: rec.Time, Cargo: rec.CargoText()})
				continue
			}
			rr.warnf("rank %d: unclassifiable etype %d", rank, rec.ID)

		case clog2.RecMsgEvt:
			if rec.Dir == clog2.DirSend {
				k := msgKey{src: rank, dst: int(rec.Aux1), tag: int(rec.Aux2)}
				if rr.sends == nil {
					rr.sends = map[msgKey][]endpoint{}
				}
				rr.sends[k] = append(rr.sends[k], endpoint{t: rec.Time, size: int(rec.Aux3)})
			} else {
				k := msgKey{src: int(rec.Aux1), dst: rank, tag: int(rec.Aux2)}
				if rr.recvs == nil {
					rr.recvs = map[msgKey][]endpoint{}
				}
				rr.recvs[k] = append(rr.recvs[k], endpoint{t: rec.Time, size: int(rec.Aux3)})
			}
		}
	}
	for _, o := range stack {
		rr.nesting++
		rr.warnf("rank %d: state %d opened at %v never closed", rank, o.sid, o.start)
	}
	return rr
}

// convertPartitioned runs phases 2..4: per-rank pairing on a worker pool,
// the cross-rank arrow join, and the frame-tree build. Every merge step
// iterates ranks and message keys in sorted order, so the output — down to
// warning order — is identical at any worker count.
func convertPartitioned(p *partition, opts ConvertOptions) (*File, *Report, error) {
	capacity := opts.FrameCapacity
	if capacity <= 0 {
		capacity = DefaultFrameCapacity
	}
	workers := opts.workers()
	rep := &Report{}

	// Category table: states first, then events, keyed by their etypes.
	var cats []Category
	stateCat := map[mpe.StateID]int{} // state id -> category index
	eventCat := map[mpe.EventID]int{} // event id -> category index
	for _, d := range p.stateDefs {
		sid, ok := mpe.IsStartEtype(d.Aux1)
		if !ok {
			return nil, nil, fmt.Errorf("slog2: state def %q has non-start etype %d", d.Name, d.Aux1)
		}
		stateCat[sid] = len(cats)
		cats = append(cats, Category{Name: d.Name, Color: d.Color, Kind: KindState})
	}
	for _, d := range p.eventDefs {
		eid, ok := mpe.IsSoloEtype(d.ID)
		if !ok {
			return nil, nil, fmt.Errorf("slog2: event def %q has non-solo etype %d", d.Name, d.ID)
		}
		eventCat[eid] = len(cats)
		cats = append(cats, Category{Name: d.Name, Color: d.Color, Kind: KindEvent})
	}

	// Phase 2: per-rank pairing, fanned out over the worker pool. Ranks
	// are processed in any order but collected in ascending rank order.
	ranks := make([]int, 0, len(p.perRank))
	for rank := range p.perRank {
		ranks = append(ranks, rank)
	}
	sort.Ints(ranks)
	results := make([]*rankResult, len(ranks))
	if w := len(ranks); workers > w {
		workers = w
	}
	if workers <= 1 {
		for i, rank := range ranks {
			results[i] = processRank(rank, p.perRank[rank], stateCat, eventCat)
		}
	} else {
		var next int64 = -1
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(atomic.AddInt64(&next, 1))
					if i >= len(ranks) {
						return
					}
					rank := ranks[i]
					results[i] = processRank(rank, p.perRank[rank], stateCat, eventCat)
				}
			}()
		}
		wg.Wait()
	}

	// Merge rank results in rank order. Per-rank slices are already in
	// (time, sequence) order, so concatenation yields the global
	// (rank, time, sequence) order required for deterministic frames.
	var states []State
	var events []Event
	sendQ := map[msgKey][]endpoint{}
	recvQ := map[msgKey][]endpoint{}
	for _, rr := range results {
		states = append(states, rr.states...)
		events = append(events, rr.events...)
		rep.NestingErrors += rr.nesting
		rep.Warnings = append(rep.Warnings, rr.warnings...)
		// A send key's src and a recv key's dst are the logging rank, so
		// no two ranks ever contribute to the same map entry.
		for k, v := range rr.sends {
			sendQ[k] = v
		}
		for k, v := range rr.recvs {
			recvQ[k] = v
		}
	}

	// Phase 3 — the only cross-rank join: pair sends with receives FIFO
	// per (src, dst, tag), MPE's matching rule ("called in pairs with
	// matching tag number and length"). Keys are visited in sorted order
	// so arrows and warnings come out deterministically.
	keySet := map[msgKey]struct{}{}
	for k := range sendQ {
		keySet[k] = struct{}{}
	}
	for k := range recvQ {
		keySet[k] = struct{}{}
	}
	keys := make([]msgKey, 0, len(keySet))
	for k := range keySet {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.src != b.src {
			return a.src < b.src
		}
		if a.dst != b.dst {
			return a.dst < b.dst
		}
		return a.tag < b.tag
	})
	var arrows []Arrow
	for _, k := range keys {
		sends, recvs := sendQ[k], recvQ[k]
		n := len(sends)
		if len(recvs) < n {
			n = len(recvs)
		}
		for i := 0; i < n; i++ {
			if sends[i].size != recvs[i].size {
				rep.warnf("message %d->%d tag %d: send size %d != recv size %d",
					k.src, k.dst, k.tag, sends[i].size, recvs[i].size)
			}
			arrows = append(arrows, Arrow{
				SrcRank: k.src, DstRank: k.dst,
				Start: sends[i].t, End: recvs[i].t,
				Tag: k.tag, Size: sends[i].size,
			})
		}
		if extra := len(sends) - n; extra > 0 {
			rep.UnmatchedSends += extra
			rep.warnf("message %d->%d tag %d: %d send(s) without receive", k.src, k.dst, k.tag, extra)
		}
	}
	for _, k := range keys {
		if extra := len(recvQ[k]) - len(sendQ[k]); extra > 0 {
			rep.UnmatchedRecvs += extra
			rep.warnf("message %d->%d tag %d: %d receive(s) without send", k.src, k.dst, k.tag, extra)
		}
	}
	sort.SliceStable(arrows, func(i, j int) bool { return arrows[i].Start < arrows[j].Start })

	rep.EqualDrawables = countEqualDrawables(states, arrows, events, rep)

	// Time bounds.
	minT, maxT := bounds(states, arrows, events)
	f := &File{
		NumRanks:   p.numRanks,
		Start:      minT,
		End:        maxT,
		Categories: cats,
		Warnings:   rep.Warnings,
	}
	fb := newFrameBuilder(capacity, workers)
	f.Root = fb.build(minT, maxT, states, arrows, events, 0)
	fb.wait()
	computePreviews(f.Root)

	rep.States = len(states)
	rep.Arrows = len(arrows)
	rep.Events = len(events)
	return f, rep, nil
}

func bounds(states []State, arrows []Arrow, events []Event) (minT, maxT float64) {
	first := true
	upd := func(lo, hi float64) {
		if first {
			minT, maxT = lo, hi
			first = false
			return
		}
		if lo < minT {
			minT = lo
		}
		if hi > maxT {
			maxT = hi
		}
	}
	for _, s := range states {
		upd(s.Start, s.End)
	}
	for _, a := range arrows {
		lo, hi := a.Start, a.End
		if hi < lo {
			lo, hi = hi, lo
		}
		upd(lo, hi)
	}
	for _, e := range events {
		upd(e.Time, e.Time)
	}
	if first {
		return 0, 0
	}
	return minT, maxT
}

// countEqualDrawables reproduces the converter's "Equal Drawables" warning:
// it counts drawables beyond the first in any group sharing a category and
// identical start and end times.
func countEqualDrawables(states []State, arrows []Arrow, events []Event, rep *Report) int {
	count := 0
	type key struct {
		kind     int
		cat      int
		lo, hi   float64
		src, dst int
	}
	// States and events collide only on the same timeline; arrows collide
	// when the same endpoints get identical times (the collective fan-out
	// case the paper hit).
	seen := map[key]int{}
	for _, s := range states {
		seen[key{kind: 0, cat: s.Cat, lo: s.Start, hi: s.End, src: s.Rank}]++
	}
	for _, a := range arrows {
		seen[key{kind: 1, lo: a.Start, hi: a.End, src: a.SrcRank, dst: a.DstRank}]++
	}
	for _, e := range events {
		seen[key{kind: 2, cat: e.Cat, lo: e.Time, hi: e.Time, src: e.Rank}]++
	}
	groups := 0
	for _, n := range seen {
		if n > 1 {
			count += n - 1
			groups++
		}
	}
	if count > 0 {
		rep.warnf("Equal Drawables: %d drawable(s) in %d group(s) share identical timestamps (limited clock resolution?)", count, groups)
	}
	return count
}

// frameBuilder constructs the bounding-box tree, building sibling subtrees
// concurrently when spare worker tokens are available. The tree's shape
// and contents depend only on its inputs, never on scheduling.
type frameBuilder struct {
	capacity int
	sem      chan struct{} // spare-worker tokens (nil/empty = sequential)
	wg       sync.WaitGroup
}

func newFrameBuilder(capacity, workers int) *frameBuilder {
	fb := &frameBuilder{capacity: capacity}
	if workers > 1 {
		fb.sem = make(chan struct{}, workers-1)
	}
	return fb
}

func (fb *frameBuilder) wait() { fb.wg.Wait() }

// build constructs the subtree for [start, end]. Drawables fully inside a
// half go down; spanners stay at this node.
func (fb *frameBuilder) build(start, end float64, states []State, arrows []Arrow, events []Event, depth int) *Frame {
	fr := &Frame{Start: start, End: end}
	total := len(states) + len(arrows) + len(events)
	if total <= fb.capacity || depth >= MaxTreeDepth || end <= start {
		fr.States, fr.Arrows, fr.Events = states, arrows, events
		return fr
	}
	mid := (start + end) / 2
	var lStates, rStates, here []State
	for _, s := range states {
		switch {
		case s.End <= mid:
			lStates = append(lStates, s)
		case s.Start >= mid:
			rStates = append(rStates, s)
		default:
			here = append(here, s)
		}
	}
	var lArrows, rArrows, hereA []Arrow
	for _, a := range arrows {
		lo, hi := a.Start, a.End
		if hi < lo {
			lo, hi = hi, lo
		}
		switch {
		case hi <= mid:
			lArrows = append(lArrows, a)
		case lo >= mid:
			rArrows = append(rArrows, a)
		default:
			hereA = append(hereA, a)
		}
	}
	var lEvents, rEvents []Event
	for _, e := range events {
		if e.Time < mid {
			lEvents = append(lEvents, e)
		} else {
			rEvents = append(rEvents, e)
		}
	}
	fr.States, fr.Arrows = here, hereA
	left := len(lStates)+len(lArrows)+len(lEvents) > 0
	right := len(rStates)+len(rArrows)+len(rEvents) > 0
	buildLeft := func() { fr.Left = fb.build(start, mid, lStates, lArrows, lEvents, depth+1) }
	if left && right && fb.sem != nil {
		// Both siblings have work: hand the left one to a spare worker if
		// a token is free, otherwise build inline.
		select {
		case fb.sem <- struct{}{}:
			fb.wg.Add(1)
			go func() {
				defer fb.wg.Done()
				defer func() { <-fb.sem }()
				buildLeft()
			}()
		default:
			buildLeft()
		}
	} else if left {
		buildLeft()
	}
	if right {
		fr.Right = fb.build(mid, end, rStates, rArrows, rEvents, depth+1)
	}
	return fr
}

// computePreviews fills each frame's per-rank, per-category state-time
// summary from its subtree (exact, bottom-up).
func computePreviews(fr *Frame) map[int]map[int]float64 {
	if fr == nil {
		return nil
	}
	p := map[int]map[int]float64{}
	add := func(rank, cat int, d float64) {
		if p[rank] == nil {
			p[rank] = map[int]float64{}
		}
		p[rank][cat] += d
	}
	for _, s := range fr.States {
		add(s.Rank, s.Cat, s.Duration())
	}
	for _, child := range []map[int]map[int]float64{computePreviews(fr.Left), computePreviews(fr.Right)} {
		for rank, cats := range child {
			for cat, d := range cats {
				add(rank, cat, d)
			}
		}
	}
	fr.Preview = p
	return p
}
