package slog2

import (
	"fmt"
	"sort"

	"repro/internal/clog2"
	"repro/internal/mpe"
)

// DefaultFrameCapacity is the default "frame size": the maximum number of
// drawables stored in one frame before it splits. The paper notes this
// conversion parameter governs "the amount of data initially displayed by
// the visualization tool".
const DefaultFrameCapacity = 256

// MaxTreeDepth bounds tree height regardless of capacity.
const MaxTreeDepth = 24

// ConvertOptions tunes the CLOG-2 → SLOG-2 conversion.
type ConvertOptions struct {
	// FrameCapacity is the maximum drawable count per frame (0 = default).
	FrameCapacity int
}

// Report carries conversion diagnostics, mirroring the chatty output of
// the real clog2TOslog2 tool.
type Report struct {
	States         int
	Arrows         int
	Events         int
	EqualDrawables int // drawables sharing category and identical times
	UnmatchedSends int
	UnmatchedRecvs int
	NestingErrors  int // mismatched state start/end pairs
	Warnings       []string
}

func (r *Report) warnf(format string, args ...any) {
	r.Warnings = append(r.Warnings, fmt.Sprintf(format, args...))
}

// Convert builds an SLOG-2 file from a parsed CLOG-2 log.
func Convert(in *clog2.File, opts ConvertOptions) (*File, *Report, error) {
	capacity := opts.FrameCapacity
	if capacity <= 0 {
		capacity = DefaultFrameCapacity
	}
	rep := &Report{}

	// Category table: states first, then events, keyed by their etypes.
	var cats []Category
	stateCat := map[mpe.StateID]int{} // state id -> category index
	eventCat := map[mpe.EventID]int{} // event id -> category index
	for _, d := range in.StateDefs() {
		sid, ok := mpe.IsStartEtype(d.Aux1)
		if !ok {
			return nil, nil, fmt.Errorf("slog2: state def %q has non-start etype %d", d.Name, d.Aux1)
		}
		stateCat[sid] = len(cats)
		cats = append(cats, Category{Name: d.Name, Color: d.Color, Kind: KindState})
	}
	for _, d := range in.EventDefs() {
		eid, ok := mpe.IsSoloEtype(d.ID)
		if !ok {
			return nil, nil, fmt.Errorf("slog2: event def %q has non-solo etype %d", d.Name, d.ID)
		}
		eventCat[eid] = len(cats)
		cats = append(cats, Category{Name: d.Name, Color: d.Color, Kind: KindEvent})
	}

	// Gather per-rank record streams in time order.
	perRank := map[int][]clog2.Record{}
	for _, b := range in.Blocks {
		for _, rec := range b.Records {
			switch rec.Type {
			case clog2.RecStateDef, clog2.RecEventDef, clog2.RecConstDef,
				clog2.RecTimeShift, clog2.RecSrcLoc:
				continue
			}
			perRank[int(rec.Rank)] = append(perRank[int(rec.Rank)], rec)
		}
	}
	for rank := range perRank {
		recs := perRank[rank]
		sort.SliceStable(recs, func(i, j int) bool { return recs[i].Time < recs[j].Time })
	}

	var states []State
	var events []Event
	type sendRec struct {
		t    float64
		size int
	}
	type msgKey struct{ src, dst, tag int }
	sendQ := map[msgKey][]sendRec{}
	type recvRec struct {
		t    float64
		size int
	}
	recvQ := map[msgKey][]recvRec{}

	type open struct {
		sid   mpe.StateID
		start float64
		cargo string
	}
	for rank, recs := range perRank {
		var stack []open
		for _, rec := range recs {
			switch rec.Type {
			case clog2.RecBareEvt, clog2.RecCargoEvt:
				if sid, ok := mpe.IsStartEtype(rec.ID); ok {
					stack = append(stack, open{sid: sid, start: rec.Time, cargo: rec.Text})
					continue
				}
				if sid, ok := mpe.IsEndEtype(rec.ID); ok {
					if len(stack) == 0 {
						rep.NestingErrors++
						rep.warnf("rank %d: end of state %d at %v with no open state", rank, sid, rec.Time)
						continue
					}
					top := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					if top.sid != sid {
						rep.NestingErrors++
						rep.warnf("rank %d: state %d closed while %d open at %v", rank, sid, top.sid, rec.Time)
					}
					cat, ok := stateCat[top.sid]
					if !ok {
						rep.warnf("rank %d: state %d has no definition", rank, top.sid)
						continue
					}
					states = append(states, State{
						Rank: rank, Cat: cat,
						Start: top.start, End: rec.Time,
						StartCargo: top.cargo, EndCargo: rec.Text,
					})
					continue
				}
				if eid, ok := mpe.IsSoloEtype(rec.ID); ok {
					cat, ok := eventCat[eid]
					if !ok {
						rep.warnf("rank %d: event %d has no definition", rank, eid)
						continue
					}
					events = append(events, Event{Rank: rank, Cat: cat, Time: rec.Time, Cargo: rec.Text})
					continue
				}
				rep.warnf("rank %d: unclassifiable etype %d", rank, rec.ID)

			case clog2.RecMsgEvt:
				if rec.Dir == clog2.DirSend {
					k := msgKey{src: rank, dst: int(rec.Aux1), tag: int(rec.Aux2)}
					sendQ[k] = append(sendQ[k], sendRec{t: rec.Time, size: int(rec.Aux3)})
				} else {
					k := msgKey{src: int(rec.Aux1), dst: rank, tag: int(rec.Aux2)}
					recvQ[k] = append(recvQ[k], recvRec{t: rec.Time, size: int(rec.Aux3)})
				}
			}
		}
		for _, o := range stack {
			rep.NestingErrors++
			rep.warnf("rank %d: state %d opened at %v never closed", rank, o.sid, o.start)
		}
	}

	// Pair sends with receives FIFO per (src, dst, tag) — MPE's matching
	// rule ("called in pairs with matching tag number and length").
	var arrows []Arrow
	for k, sends := range sendQ {
		recvs := recvQ[k]
		n := len(sends)
		if len(recvs) < n {
			n = len(recvs)
		}
		for i := 0; i < n; i++ {
			if sends[i].size != recvs[i].size {
				rep.warnf("message %d->%d tag %d: send size %d != recv size %d",
					k.src, k.dst, k.tag, sends[i].size, recvs[i].size)
			}
			arrows = append(arrows, Arrow{
				SrcRank: k.src, DstRank: k.dst,
				Start: sends[i].t, End: recvs[i].t,
				Tag: k.tag, Size: sends[i].size,
			})
		}
		if extra := len(sends) - n; extra > 0 {
			rep.UnmatchedSends += extra
			rep.warnf("message %d->%d tag %d: %d send(s) without receive", k.src, k.dst, k.tag, extra)
		}
	}
	for k, recvs := range recvQ {
		if extra := len(recvs) - len(sendQ[k]); extra > 0 {
			rep.UnmatchedRecvs += extra
			rep.warnf("message %d->%d tag %d: %d receive(s) without send", k.src, k.dst, k.tag, extra)
		}
	}
	sort.SliceStable(arrows, func(i, j int) bool { return arrows[i].Start < arrows[j].Start })

	rep.EqualDrawables = countEqualDrawables(states, arrows, events, rep)

	// Time bounds.
	minT, maxT := bounds(states, arrows, events)
	f := &File{
		NumRanks:   in.NumRanks,
		Start:      minT,
		End:        maxT,
		Categories: cats,
		Warnings:   rep.Warnings,
	}
	f.Root = buildFrame(minT, maxT, states, arrows, events, capacity, 0)
	computePreviews(f.Root)

	rep.States = len(states)
	rep.Arrows = len(arrows)
	rep.Events = len(events)
	return f, rep, nil
}

func bounds(states []State, arrows []Arrow, events []Event) (minT, maxT float64) {
	first := true
	upd := func(lo, hi float64) {
		if first {
			minT, maxT = lo, hi
			first = false
			return
		}
		if lo < minT {
			minT = lo
		}
		if hi > maxT {
			maxT = hi
		}
	}
	for _, s := range states {
		upd(s.Start, s.End)
	}
	for _, a := range arrows {
		lo, hi := a.Start, a.End
		if hi < lo {
			lo, hi = hi, lo
		}
		upd(lo, hi)
	}
	for _, e := range events {
		upd(e.Time, e.Time)
	}
	if first {
		return 0, 0
	}
	return minT, maxT
}

// countEqualDrawables reproduces the converter's "Equal Drawables" warning:
// it counts drawables beyond the first in any group sharing a category and
// identical start and end times.
func countEqualDrawables(states []State, arrows []Arrow, events []Event, rep *Report) int {
	count := 0
	type key struct {
		kind     int
		cat      int
		lo, hi   float64
		src, dst int
	}
	// States and events collide only on the same timeline; arrows collide
	// when the same endpoints get identical times (the collective fan-out
	// case the paper hit).
	seen := map[key]int{}
	for _, s := range states {
		seen[key{kind: 0, cat: s.Cat, lo: s.Start, hi: s.End, src: s.Rank}]++
	}
	for _, a := range arrows {
		seen[key{kind: 1, lo: a.Start, hi: a.End, src: a.SrcRank, dst: a.DstRank}]++
	}
	for _, e := range events {
		seen[key{kind: 2, cat: e.Cat, lo: e.Time, hi: e.Time, src: e.Rank}]++
	}
	groups := 0
	for _, n := range seen {
		if n > 1 {
			count += n - 1
			groups++
		}
	}
	if count > 0 {
		rep.warnf("Equal Drawables: %d drawable(s) in %d group(s) share identical timestamps (limited clock resolution?)", count, groups)
	}
	return count
}

// buildFrame constructs the bounding-box tree. Drawables fully inside a
// half go down; spanners stay at this node.
func buildFrame(start, end float64, states []State, arrows []Arrow, events []Event, capacity, depth int) *Frame {
	fr := &Frame{Start: start, End: end}
	total := len(states) + len(arrows) + len(events)
	if total <= capacity || depth >= MaxTreeDepth || end <= start {
		fr.States, fr.Arrows, fr.Events = states, arrows, events
		return fr
	}
	mid := (start + end) / 2
	var lStates, rStates, here []State
	for _, s := range states {
		switch {
		case s.End <= mid:
			lStates = append(lStates, s)
		case s.Start >= mid:
			rStates = append(rStates, s)
		default:
			here = append(here, s)
		}
	}
	var lArrows, rArrows, hereA []Arrow
	for _, a := range arrows {
		lo, hi := a.Start, a.End
		if hi < lo {
			lo, hi = hi, lo
		}
		switch {
		case hi <= mid:
			lArrows = append(lArrows, a)
		case lo >= mid:
			rArrows = append(rArrows, a)
		default:
			hereA = append(hereA, a)
		}
	}
	var lEvents, rEvents []Event
	for _, e := range events {
		if e.Time < mid {
			lEvents = append(lEvents, e)
		} else {
			rEvents = append(rEvents, e)
		}
	}
	fr.States, fr.Arrows = here, hereA
	if len(lStates)+len(lArrows)+len(lEvents) > 0 {
		fr.Left = buildFrame(start, mid, lStates, lArrows, lEvents, capacity, depth+1)
	}
	if len(rStates)+len(rArrows)+len(rEvents) > 0 {
		fr.Right = buildFrame(mid, end, rStates, rArrows, rEvents, capacity, depth+1)
	}
	return fr
}

// computePreviews fills each frame's per-rank, per-category state-time
// summary from its subtree (exact, bottom-up).
func computePreviews(fr *Frame) map[int]map[int]float64 {
	if fr == nil {
		return nil
	}
	p := map[int]map[int]float64{}
	add := func(rank, cat int, d float64) {
		if p[rank] == nil {
			p[rank] = map[int]float64{}
		}
		p[rank][cat] += d
	}
	for _, s := range fr.States {
		add(s.Rank, s.Cat, s.Duration())
	}
	for _, child := range []map[int]map[int]float64{computePreviews(fr.Left), computePreviews(fr.Right)} {
		for rank, cats := range child {
			for cat, d := range cats {
				add(rank, cat, d)
			}
		}
	}
	fr.Preview = p
	return p
}
