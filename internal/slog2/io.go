package slog2

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/clog2"
)

// Magic begins every SLOG-2 file; the digits are this format's version.
const Magic = "SLOG-R0206"

// maxFrameDepth bounds the frame-tree recursion while decoding. The
// converter builds a height-balanced tree (depth ~ log2(drawables /
// capacity)), so any legitimate file stays far below this; a crafted
// left-spine chain that would otherwise exhaust the goroutine stack is
// rejected as corrupt instead.
const maxFrameDepth = 64

// maxRanks bounds NumRanks on the read side; the same ceiling the
// category count already gets.
const maxRanks = 1 << 24

// Write serialises f onto w.
func Write(w io.Writer, f *File) error {
	if f == nil || f.Root == nil {
		return fmt.Errorf("slog2: cannot write file without a root frame")
	}
	e := &encoder{w: bufio.NewWriter(w)}
	e.raw([]byte(Magic))
	e.i32(int32(f.NumRanks))
	e.f64(f.Start)
	e.f64(f.End)
	e.i32(int32(len(f.Categories)))
	for _, c := range f.Categories {
		e.b(uint8(c.Kind))
		e.str(c.Color)
		e.str(c.Name)
	}
	e.i32(int32(len(f.Warnings)))
	for _, s := range f.Warnings {
		e.str(s)
	}
	e.frame(f.Root)
	if e.err != nil {
		return e.err
	}
	return e.w.Flush()
}

// WriteFile serialises f to a file at path. The bytes land in a
// temporary file in the same directory which is renamed over path only
// after a successful write, so a mid-write failure (full disk, crash)
// never leaves a truncated .slog2 where a serve repository would pick
// it up.
func WriteFile(path string, f *File) error {
	return writeFileAtomic(path, func(w io.Writer) error { return Write(w, f) })
}

// writeFileAtomic streams fill into a temp file next to path and
// renames it into place on success; on any error the temp file is
// removed and path is left untouched.
func writeFileAtomic(path string, fill func(io.Writer) error) error {
	dir, base := filepath.Split(path)
	tmp, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return err
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err := fill(tmp); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		tmp = nil
		return err
	}
	name := tmp.Name()
	tmp = nil
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	return nil
}

// Read parses a complete SLOG-2 file.
func Read(r io.Reader) (*File, error) {
	d := &decoder{r: bufio.NewReader(r)}
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(d.r, magic); err != nil {
		return nil, fmt.Errorf("slog2: reading magic: %w", err)
	}
	if string(magic) != Magic {
		return nil, fmt.Errorf("slog2: bad magic %q (not an SLOG-2 file?)", magic)
	}
	f := &File{}
	f.NumRanks = int(d.i32())
	if d.err == nil && (f.NumRanks < 0 || f.NumRanks > maxRanks) {
		return nil, fmt.Errorf("slog2: implausible rank count %d", f.NumRanks)
	}
	f.Start = d.f64()
	f.End = d.f64()
	ncats := d.i32()
	if d.err == nil && (ncats < 0 || ncats > 1<<20) {
		return nil, fmt.Errorf("slog2: implausible category count %d", ncats)
	}
	for i := int32(0); i < ncats && d.err == nil; i++ {
		var c Category
		c.Kind = CategoryKind(d.b())
		c.Color = d.str()
		c.Name = d.str()
		f.Categories = append(f.Categories, c)
	}
	nwarn := d.i32()
	if d.err == nil && (nwarn < 0 || nwarn > 1<<24) {
		return nil, fmt.Errorf("slog2: implausible warning count %d", nwarn)
	}
	for i := int32(0); i < nwarn && d.err == nil; i++ {
		f.Warnings = append(f.Warnings, d.str())
	}
	// The frame decoder validates every drawable's category and rank
	// against the header so downstream consumers (search, legend, tile
	// rendering) can index f.Categories without rechecking.
	d.ncats = int(ncats)
	d.nranks = f.NumRanks
	f.Root = d.frame(0)
	if d.err != nil {
		return nil, d.err
	}
	// Write refuses to serialise a file without a root frame, so a
	// root-less stream can only be hand-crafted: reject it for symmetry.
	if f.Root == nil {
		return nil, fmt.Errorf("slog2: file has no root frame")
	}
	return f, nil
}

// ReadFile parses the SLOG-2 file at path.
func ReadFile(path string) (*File, error) {
	in, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer in.Close()
	return Read(in)
}

type encoder struct {
	w   *bufio.Writer
	err error
}

func (e *encoder) fail(err error) {
	if e.err == nil {
		e.err = err
	}
}

func (e *encoder) raw(b []byte) {
	if e.err != nil {
		return
	}
	_, err := e.w.Write(b)
	e.fail(err)
}

func (e *encoder) b(v uint8) {
	if e.err != nil {
		return
	}
	e.fail(e.w.WriteByte(v))
}

func (e *encoder) i32(v int32) {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], uint32(v))
	e.raw(buf[:])
}

func (e *encoder) f64(v float64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
	e.raw(buf[:])
}

func (e *encoder) str(s string) {
	// Rune-safe truncation: a multibyte rune straddling the length limit
	// is dropped whole instead of leaking invalid UTF-8 into cargo.
	s = clog2.Trunc(s, math.MaxUint16)
	var buf [2]byte
	binary.LittleEndian.PutUint16(buf[:], uint16(len(s)))
	e.raw(buf[:])
	e.raw([]byte(s))
}

func (e *encoder) frame(fr *Frame) {
	if fr == nil {
		e.b(0)
		return
	}
	e.b(1)
	e.f64(fr.Start)
	e.f64(fr.End)
	e.i32(int32(len(fr.States)))
	for _, s := range fr.States {
		e.i32(int32(s.Rank))
		e.i32(int32(s.Cat))
		e.f64(s.Start)
		e.f64(s.End)
		e.str(s.StartCargo)
		e.str(s.EndCargo)
	}
	e.i32(int32(len(fr.Arrows)))
	for _, a := range fr.Arrows {
		e.i32(int32(a.SrcRank))
		e.i32(int32(a.DstRank))
		e.f64(a.Start)
		e.f64(a.End)
		e.i32(int32(a.Tag))
		e.i32(int32(a.Size))
	}
	e.i32(int32(len(fr.Events)))
	for _, ev := range fr.Events {
		e.i32(int32(ev.Rank))
		e.i32(int32(ev.Cat))
		e.f64(ev.Time)
		e.str(ev.Cargo)
	}
	// Preview in deterministic (rank, cat) order.
	ranks := make([]int, 0, len(fr.Preview))
	for rank := range fr.Preview {
		ranks = append(ranks, rank)
	}
	sort.Ints(ranks)
	e.i32(int32(len(ranks)))
	for _, rank := range ranks {
		cats := make([]int, 0, len(fr.Preview[rank]))
		for cat := range fr.Preview[rank] {
			cats = append(cats, cat)
		}
		sort.Ints(cats)
		e.i32(int32(rank))
		e.i32(int32(len(cats)))
		for _, cat := range cats {
			e.i32(int32(cat))
			e.f64(fr.Preview[rank][cat])
		}
	}
	e.frame(fr.Left)
	e.frame(fr.Right)
}

type decoder struct {
	r   *bufio.Reader
	err error
	// ncats and nranks bound drawable category and rank indices while
	// decoding frames (set from the header before the root frame).
	ncats  int
	nranks int
}

func (d *decoder) fail(err error) {
	if d.err == nil {
		d.err = fmt.Errorf("slog2: truncated or corrupt file: %w", err)
	}
}

func (d *decoder) b() uint8 {
	if d.err != nil {
		return 0
	}
	v, err := d.r.ReadByte()
	if err != nil {
		d.fail(err)
		return 0
	}
	return v
}

func (d *decoder) i32() int32 {
	if d.err != nil {
		return 0
	}
	var buf [4]byte
	if _, err := io.ReadFull(d.r, buf[:]); err != nil {
		d.fail(err)
		return 0
	}
	return int32(binary.LittleEndian.Uint32(buf[:]))
}

func (d *decoder) f64() float64 {
	if d.err != nil {
		return 0
	}
	var buf [8]byte
	if _, err := io.ReadFull(d.r, buf[:]); err != nil {
		d.fail(err)
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
}

func (d *decoder) str() string {
	if d.err != nil {
		return ""
	}
	var buf [2]byte
	if _, err := io.ReadFull(d.r, buf[:]); err != nil {
		d.fail(err)
		return ""
	}
	n := binary.LittleEndian.Uint16(buf[:])
	s := make([]byte, n)
	if _, err := io.ReadFull(d.r, s); err != nil {
		d.fail(err)
		return ""
	}
	return string(s)
}

func (d *decoder) count(limit int32) int32 {
	n := d.i32()
	if d.err == nil && (n < 0 || n > limit) {
		d.err = fmt.Errorf("slog2: implausible count %d", n)
	}
	return n
}

// cat reads a drawable's category index and rejects anything the
// header's category table cannot satisfy — the index that made
// jumpshot.Search panic on hostile files.
func (d *decoder) cat() int {
	c := int(d.i32())
	if d.err == nil && (c < 0 || c >= d.ncats) {
		d.err = fmt.Errorf("slog2: drawable category %d out of range [0,%d)", c, d.ncats)
	}
	return c
}

// rank reads a drawable's rank and rejects negatives and ranks beyond
// the header's NumRanks.
func (d *decoder) rank() int {
	r := int(d.i32())
	if d.err == nil && (r < 0 || r >= d.nranks) {
		d.err = fmt.Errorf("slog2: drawable rank %d out of range [0,%d)", r, d.nranks)
	}
	return r
}

func (d *decoder) frame(depth int) *Frame {
	if d.err != nil {
		return nil
	}
	if depth > maxFrameDepth {
		d.err = fmt.Errorf("slog2: frame tree deeper than %d (corrupt or hostile file)", maxFrameDepth)
		return nil
	}
	present := d.b()
	if present == 0 || d.err != nil {
		return nil
	}
	fr := &Frame{}
	fr.Start = d.f64()
	fr.End = d.f64()
	ns := d.count(1 << 28)
	for i := int32(0); i < ns && d.err == nil; i++ {
		var s State
		s.Rank = d.rank()
		s.Cat = d.cat()
		s.Start = d.f64()
		s.End = d.f64()
		s.StartCargo = d.str()
		s.EndCargo = d.str()
		fr.States = append(fr.States, s)
	}
	na := d.count(1 << 28)
	for i := int32(0); i < na && d.err == nil; i++ {
		var a Arrow
		a.SrcRank = d.rank()
		a.DstRank = d.rank()
		a.Start = d.f64()
		a.End = d.f64()
		a.Tag = int(d.i32())
		a.Size = int(d.i32())
		fr.Arrows = append(fr.Arrows, a)
	}
	ne := d.count(1 << 28)
	for i := int32(0); i < ne && d.err == nil; i++ {
		var ev Event
		ev.Rank = d.rank()
		ev.Cat = d.cat()
		ev.Time = d.f64()
		ev.Cargo = d.str()
		fr.Events = append(fr.Events, ev)
	}
	nr := d.count(1 << 24)
	if nr > 0 {
		fr.Preview = map[int]map[int]float64{}
	}
	for i := int32(0); i < nr && d.err == nil; i++ {
		rank := d.rank()
		nc := d.count(1 << 20)
		m := map[int]float64{}
		for j := int32(0); j < nc && d.err == nil; j++ {
			cat := d.cat()
			m[cat] = d.f64()
		}
		fr.Preview[rank] = m
	}
	fr.Left = d.frame(depth + 1)
	fr.Right = d.frame(depth + 1)
	if d.err != nil {
		return nil
	}
	return fr
}
