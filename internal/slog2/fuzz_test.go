package slog2

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzReadSLOG2 hammers the SLOG-2 decoder with mutated inputs, seeded
// from the three golden traces. Read may reject (the usual outcome for
// mutations) but must never panic; anything it accepts must then be
// safe for every consumer path — Query, All, Depth and re-encoding —
// because pilot-serve runs exactly those over files it did not write.
func FuzzReadSLOG2(f *testing.F) {
	for _, name := range []string{"lab2", "thumbnail", "collisions"} {
		data, err := os.ReadFile(filepath.Join("..", "..", "testdata", "golden", name+".slog2"))
		if err != nil {
			f.Fatalf("golden seed: %v", err)
		}
		f.Add(data)
	}
	f.Add([]byte(Magic))
	f.Add([]byte(Magic + "\x01\x00\x00\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		sf, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		states, arrows, events := sf.All()
		span := sf.End - sf.Start
		for _, w := range []struct{ a, b float64 }{
			{sf.Start, sf.End},
			{sf.Start + span/4, sf.End - span/4},
			{sf.End, sf.Start}, // inverted window
		} {
			qs, qa, qe := sf.Query(w.a, w.b)
			if len(qs) > len(states) || len(qa) > len(arrows) || len(qe) > len(events) {
				t.Fatalf("Query returned more drawables than All")
			}
		}
		_ = sf.Depth()
		var buf bytes.Buffer
		if werr := Write(&buf, sf); werr != nil {
			t.Fatalf("re-encoding a parsed file failed: %v", werr)
		}
		if _, rerr := Read(&buf); rerr != nil {
			t.Fatalf("re-encoded file does not parse: %v", rerr)
		}
	})
}
