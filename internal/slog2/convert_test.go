package slog2

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/clog2"
	"repro/internal/mpe"
)

// randomCLOG builds a messy multi-rank log: states, events, fan-out
// messages, duplicate timestamps, and a few nesting errors — everything
// the converter has diagnostics for.
func randomCLOG(seed int64, nranks int) *clog2.File {
	rng := rand.New(rand.NewSource(seed))
	b := newCLOG(nranks)
	b.defState(1, "PI_Write", "green")
	b.defState(2, "PI_Read", "red")
	b.defState(3, "Compute", "gray")
	b.defEvent(1, "MsgArrival", "yellow")
	n := 200 + rng.Intn(400)
	for i := 0; i < n; i++ {
		rank := int32(rng.Intn(nranks))
		t0 := float64(rng.Intn(500)) / 50 // coarse clock: lots of ties
		b.state(rank, int32(rng.Intn(3)+1), t0, t0+float64(rng.Intn(10))/50, "cargo")
		if rng.Intn(4) == 0 {
			b.event(rank, 1, t0, "ev")
		}
		if nranks > 1 && rng.Intn(3) == 0 {
			src := rank
			dst := int32(rng.Intn(nranks))
			if dst == src {
				dst = (dst + 1) % int32(nranks)
			}
			tag := int32(rng.Intn(4))
			b.send(src, dst, tag, t0, 8)
			if rng.Intn(5) != 0 { // some sends stay unmatched
				b.recv(dst, src, tag, t0+0.01, 8)
			}
		}
	}
	// A dangling end and an unclosed start exercise the error paths.
	b.blocks[0] = append(b.blocks[0],
		clog2.Record{Type: clog2.RecCargoEvt, Time: 99, Rank: 0, ID: 3},
		clog2.Record{Type: clog2.RecCargoEvt, Time: 99.5, Rank: 0, ID: 2},
	)
	return b.file()
}

func encodeSLOG(t *testing.T, f *File) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// The tentpole guarantee: parallel conversion output is byte-identical to
// sequential output, including warning order, at every worker count.
func TestConvertParallelByteIdentical(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		cf := randomCLOG(seed, 1+int(seed))
		ref, refRep, err := Convert(cf, ConvertOptions{Workers: 1})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		refBytes := encodeSLOG(t, ref)
		for _, workers := range []int{2, 4, 8} {
			got, gotRep, err := Convert(cf, ConvertOptions{Workers: workers})
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			if gotRep.States != refRep.States || gotRep.Arrows != refRep.Arrows ||
				gotRep.Events != refRep.Events || gotRep.NestingErrors != refRep.NestingErrors ||
				gotRep.UnmatchedSends != refRep.UnmatchedSends || gotRep.UnmatchedRecvs != refRep.UnmatchedRecvs ||
				gotRep.EqualDrawables != refRep.EqualDrawables {
				t.Fatalf("seed %d workers %d: report %+v != %+v", seed, workers, gotRep, refRep)
			}
			if len(gotRep.Warnings) != len(refRep.Warnings) {
				t.Fatalf("seed %d workers %d: %d warnings != %d", seed, workers, len(gotRep.Warnings), len(refRep.Warnings))
			}
			for i := range gotRep.Warnings {
				if gotRep.Warnings[i] != refRep.Warnings[i] {
					t.Fatalf("seed %d workers %d: warning %d %q != %q", seed, workers, i, gotRep.Warnings[i], refRep.Warnings[i])
				}
			}
			if !bytes.Equal(encodeSLOG(t, got), refBytes) {
				t.Fatalf("seed %d workers %d: serialized output differs from sequential", seed, workers)
			}
			if err := got.CheckInvariants(); err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
		}
	}
}

// Sequential conversion itself must be deterministic run to run (the old
// map-iteration code was not): convert the same log twice, compare bytes.
func TestConvertDeterministicAcrossRuns(t *testing.T) {
	cf := randomCLOG(42, 5)
	a, repA, err := Convert(cf, ConvertOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, repB, err := Convert(cf, ConvertOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeSLOG(t, a), encodeSLOG(t, b)) {
		t.Fatal("two sequential conversions of the same log differ")
	}
	if len(repA.Warnings) != len(repB.Warnings) {
		t.Fatalf("warning counts differ: %d vs %d", len(repA.Warnings), len(repB.Warnings))
	}
	for i := range repA.Warnings {
		if repA.Warnings[i] != repB.Warnings[i] {
			t.Fatalf("warning %d differs: %q vs %q", i, repA.Warnings[i], repB.Warnings[i])
		}
	}
}

// ConvertReader (streaming blocks from the wire format) must agree with
// Convert over the parsed file, byte for byte.
func TestConvertReaderMatchesConvert(t *testing.T) {
	cf := randomCLOG(7, 4)
	// Serialize the clog to its wire format.
	var wire bytes.Buffer
	w, err := clog2.NewWriter(&wire, cf.NumRanks)
	if err != nil {
		t.Fatal(err)
	}
	for _, blk := range cf.Blocks {
		if err := w.WriteBlock(blk.Rank, blk.Records); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	fromFile, repF, err := Convert(cf, ConvertOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fromStream, repS, err := ConvertReader(&wire, ConvertOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if repF.States != repS.States || repF.Arrows != repS.Arrows || repF.Events != repS.Events {
		t.Fatalf("reports differ: %+v vs %+v", repF, repS)
	}
	if !bytes.Equal(encodeSLOG(t, fromFile), encodeSLOG(t, fromStream)) {
		t.Fatal("streaming conversion differs from in-memory conversion")
	}
}

// Regression for the coarse-clock tie-break: a state-end and the next
// state-start logged at an identical timestamp must keep their original
// record order, or pairing desynchronizes and reports spurious nesting
// errors and Equal Drawables.
func TestConvertCoarseClockTieBreak(t *testing.T) {
	b := newCLOG(1)
	b.defState(1, "S", "red")
	// 100 back-to-back states on a clock so coarse that each end shares
	// its timestamp with the next start (and several full states collapse
	// to the same instant pair).
	const n = 100
	for i := 0; i < n; i++ {
		t0 := float64(i / 4) // plateaus of 4 states per tick
		t1 := float64((i + 1) / 4)
		b.blocks[0] = append(b.blocks[0],
			clog2.Record{Type: clog2.RecCargoEvt, Time: t0, Rank: 0, ID: 2},
			clog2.Record{Type: clog2.RecCargoEvt, Time: t1, Rank: 0, ID: 3},
		)
	}
	f, rep, err := Convert(b.file(), ConvertOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.NestingErrors != 0 {
		t.Fatalf("coarse clock produced %d spurious nesting errors: %v", rep.NestingErrors, rep.Warnings)
	}
	if rep.States != n {
		t.Fatalf("states = %d, want %d", rep.States, n)
	}
	states, _, _ := f.All()
	for _, s := range states {
		if s.End < s.Start {
			t.Fatalf("inverted state [%v,%v]", s.Start, s.End)
		}
	}
}

// Same tie-break, cross-checked at several worker counts: identical
// timestamps must not let the parallel path reorder records either.
func TestConvertCoarseClockTieBreakParallel(t *testing.T) {
	b := newCLOG(4)
	b.defState(1, "S", "red")
	for rank := int32(0); rank < 4; rank++ {
		for i := 0; i < 50; i++ {
			tick := float64(i / 5)
			b.blocks[rank] = append(b.blocks[rank],
				clog2.Record{Type: clog2.RecCargoEvt, Time: tick, Rank: rank, ID: 2},
				clog2.Record{Type: clog2.RecCargoEvt, Time: tick, Rank: rank, ID: 3},
			)
		}
	}
	for _, workers := range []int{1, 2, 8} {
		_, rep, err := Convert(b.file(), ConvertOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if rep.NestingErrors != 0 {
			t.Fatalf("workers=%d: %d spurious nesting errors: %v", workers, rep.NestingErrors, rep.Warnings[:min(3, len(rep.Warnings))])
		}
		if rep.States != 200 {
			t.Fatalf("workers=%d: states = %d, want 200", workers, rep.States)
		}
	}
}

// A synthetic end fabricated by mpe.Logger.Finish closes the state but
// still counts as a nesting error — the program being debugged left it
// open.
func TestConvertSyntheticEndCounted(t *testing.T) {
	b := newCLOG(1)
	b.defState(1, "S", "red")
	b.blocks[0] = append(b.blocks[0],
		cargoEvt(1, 0, 2, "line: 5"),
		cargoEvt(9, 0, 3, mpe.SyntheticEndCargo),
	)
	f, rep, err := Convert(b.file(), ConvertOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.States != 1 {
		t.Fatalf("states = %d, want the synthetically closed state kept", rep.States)
	}
	if rep.NestingErrors != 1 {
		t.Fatalf("NestingErrors = %d, want 1 for the synthetic close", rep.NestingErrors)
	}
	found := false
	for _, w := range rep.Warnings {
		if strings.Contains(w, "closed synthetically") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no synthetic-close warning in %v", rep.Warnings)
	}
	states, _, _ := f.All()
	if len(states) != 1 || states[0].Start != 1 || states[0].End != 9 {
		t.Fatalf("state %+v", states)
	}
}
