package slog2

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"unicode/utf8"

	"repro/internal/clog2"
)

// smallFile builds a tiny valid File via the converter, as a base for
// corruption.
func smallFile(t *testing.T) *File {
	t.Helper()
	b := newCLOG(2)
	b.defState(1, "PI_Write", "green")
	b.defEvent(1, "MsgArrival", "yellow")
	b.state(0, 1, 1.0, 2.0, "line: 1")
	b.event(1, 1, 1.5, "chan: C1")
	b.send(0, 1, 3, 1.1, 16)
	b.recv(1, 0, 3, 1.6, 16)
	f, _, err := Convert(b.file(), ConvertOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// reread serialises f and parses it back, returning the decode error.
func reread(f *File) error {
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		return fmt.Errorf("write: %w", err)
	}
	_, err := Read(&buf)
	return err
}

// The encoder writes whatever indices the in-memory File carries, so
// mutating a valid file before Write crafts exactly the hostile inputs
// the decoder must reject: out-of-range categories and ranks used to
// flow through Read and panic jumpshot.Search / legend / stats.
func TestReadRejectsOutOfRangeIndices(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(f *File)
	}{
		{"state cat too big", func(f *File) { f.Root.States[0].Cat = len(f.Categories) }},
		{"state cat negative", func(f *File) { f.Root.States[0].Cat = -1 }},
		{"state rank negative", func(f *File) { f.Root.States[0].Rank = -2 }},
		{"state rank too big", func(f *File) { f.Root.States[0].Rank = f.NumRanks }},
		{"event cat too big", func(f *File) { f.Root.Events[0].Cat = len(f.Categories) + 7 }},
		{"event rank negative", func(f *File) { f.Root.Events[0].Rank = -1 }},
		{"arrow src rank too big", func(f *File) { f.Root.Arrows[0].SrcRank = f.NumRanks + 3 }},
		{"arrow dst rank negative", func(f *File) { f.Root.Arrows[0].DstRank = -5 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			f := smallFile(t)
			if len(f.Root.States) == 0 || len(f.Root.Events) == 0 || len(f.Root.Arrows) == 0 {
				t.Fatal("fixture lost drawables")
			}
			c.mutate(f)
			if err := reread(f); err == nil {
				t.Fatal("hostile file parsed cleanly")
			}
		})
	}
	// Control: the unmutated fixture still round-trips.
	if err := reread(smallFile(t)); err != nil {
		t.Fatalf("control roundtrip failed: %v", err)
	}
}

// A crafted left-spine chain of frames must be rejected before it can
// exhaust the stack; a plausibly deep (but bounded) tree still parses.
func TestReadRejectsExcessiveFrameDepth(t *testing.T) {
	chain := func(depth int) *File {
		f := &File{NumRanks: 1, Start: 0, End: 1,
			Categories: []Category{{Name: "S", Color: "red"}}}
		root := &Frame{Start: 0, End: 1}
		cur := root
		for i := 0; i < depth; i++ {
			next := &Frame{Start: 0, End: 1}
			cur.Left = next
			cur = next
		}
		f.Root = root
		return f
	}
	if err := reread(chain(maxFrameDepth - 1)); err != nil {
		t.Fatalf("depth %d rejected: %v", maxFrameDepth-1, err)
	}
	err := reread(chain(maxFrameDepth + 10))
	if err == nil {
		t.Fatal("left-spine chain parsed cleanly")
	}
	if !strings.Contains(err.Error(), "deeper than") {
		t.Fatalf("wrong error: %v", err)
	}
}

// encoder.str sliced at MaxUint16 bytes mid-rune, emitting invalid
// UTF-8 into cargo. The boundary cut must drop a straddling rune whole.
func TestEncoderStrRuneSafeAtBoundary(t *testing.T) {
	const limit = math.MaxUint16
	cases := []struct {
		name string
		in   string
	}{
		{"ascii at limit", strings.Repeat("x", limit)},
		{"2-byte rune straddles", strings.Repeat("x", limit-1) + "é"},
		{"3-byte rune straddles", strings.Repeat("x", limit-2) + "世界"},
		{"4-byte rune straddles", strings.Repeat("x", limit-3) + "🙂🙂"},
		{"multibyte run over limit", strings.Repeat("é", limit)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			f := smallFile(t)
			f.Root.States[0].StartCargo = c.in
			var buf bytes.Buffer
			if err := Write(&buf, f); err != nil {
				t.Fatal(err)
			}
			g, err := Read(&buf)
			if err != nil {
				t.Fatal(err)
			}
			states, _, _ := g.All()
			got := states[0].StartCargo
			if states[0].Start != f.Root.States[0].Start {
				// All() order is frame order; the fixture has one state.
				t.Fatal("fixture has more states than expected")
			}
			want := clog2.Trunc(c.in, limit)
			if got != want {
				t.Fatalf("cargo len %d, want %d", len(got), len(want))
			}
			if !utf8.ValidString(got) {
				t.Fatalf("cargo is invalid UTF-8 after truncation")
			}
		})
	}
}

// failAfter errors once n bytes have been written — the injected
// mid-write failure of the torn-write test.
type failAfter struct {
	w io.Writer
	n int
}

var errInjected = errors.New("injected write failure")

func (f *failAfter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errInjected
	}
	if len(p) > f.n {
		n, _ := f.w.Write(p[:f.n])
		f.n = 0
		return n, errInjected
	}
	f.n -= len(p)
	return f.w.Write(p)
}

// A failed WriteFile must leave neither a truncated destination nor a
// stranded temp file; a successful one must replace an existing file.
func TestWriteFileAtomicOnError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.slog2")
	f := smallFile(t)

	// Seed a good file, then fail a rewrite mid-stream at several cut
	// points: the original must survive byte-identical every time.
	if err := WriteFile(path, f); err != nil {
		t.Fatal(err)
	}
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 1, len(Magic), len(orig) / 2, len(orig) - 1} {
		err := writeFileAtomic(path, func(w io.Writer) error {
			return Write(&failAfter{w: w, n: cut}, f)
		})
		if !errors.Is(err, errInjected) {
			t.Fatalf("cut %d: err = %v, want injected failure", cut, err)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("cut %d: original destroyed: %v", cut, err)
		}
		if !bytes.Equal(got, orig) {
			t.Fatalf("cut %d: destination modified by failed write", cut)
		}
	}

	// Fresh destination + failure: no partial file appears at all.
	fresh := filepath.Join(dir, "fresh.slog2")
	err = writeFileAtomic(fresh, func(w io.Writer) error {
		return Write(&failAfter{w: w, n: 32}, f)
	})
	if !errors.Is(err, errInjected) {
		t.Fatalf("err = %v", err)
	}
	if _, err := os.Stat(fresh); !os.IsNotExist(err) {
		t.Fatalf("partial file left behind: stat err = %v", err)
	}

	// No temp droppings either way.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.Name() != "run.slog2" {
			t.Fatalf("stray file %q left in directory", e.Name())
		}
	}

	// And the success path still replaces an existing file.
	f.End += 1
	if err := WriteFile(path, f); err != nil {
		t.Fatal(err)
	}
	g, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.End != f.End {
		t.Fatal("rewrite did not land")
	}
}
