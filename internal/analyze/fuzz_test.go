package analyze

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// FuzzAnalyze hammers the full analysis pass (collection scan, profile
// recomputation, detector catalogue, diff normalization, JSON render)
// with mutated inputs, seeded from the three golden CLOG-2 traces.
// Contract: hostile bytes produce a diagnosed error, never a panic, a
// hang, or a report that fails to marshal.
func FuzzAnalyze(f *testing.F) {
	for _, name := range []string{"lab2", "thumbnail", "collisions"} {
		data, err := os.ReadFile(filepath.Join("..", "..", "testdata", "golden", name+".clog2"))
		if err != nil {
			f.Fatalf("golden seed: %v", err)
		}
		f.Add(data)
	}
	f.Add([]byte{})
	f.Add(newTB(f, 2).withReadWrite().bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		// Keep the pass bounded: mutated inputs can declare absurd
		// message counts, and the default cap is sized for real traces.
		rep, err := AnalyzeBytes(data, Options{MaxMsgEvents: 1 << 12})
		if err != nil {
			return // diagnosed rejection is the expected outcome
		}
		out, jerr := rep.JSON()
		if jerr != nil {
			t.Fatalf("accepted input produced unmarshalable report: %v", jerr)
		}
		var round Report
		if err := json.Unmarshal(out, &round); err != nil {
			t.Fatalf("report JSON does not round-trip: %v", err)
		}
		if round.Schema != Schema {
			t.Fatalf("schema %q, want %q", round.Schema, Schema)
		}
		// Anything analyzable must also self-diff clean.
		d, derr := DiffBytes(data, data, "a", "a", DiffOptions{})
		if derr != nil {
			t.Fatalf("analyzable input failed to diff: %v", derr)
		}
		if !d.Identical {
			t.Fatalf("self-diff diverged: %+v", d.Divergences)
		}
	})
}
