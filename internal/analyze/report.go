// Package analyze turns a merged CLOG-2 trace into verdicts: a
// streaming pathology-detection pass in the spirit of Sulzmann &
// Stadtmüller's trace-based analysis of message-passing programs, plus
// trace diffing à la Okita et al.'s fault-localization tool (diff.go).
//
// The detector catalogue covers the communication pathologies the
// fault-injection machinery can plant deterministically — hotspot
// channels, send/recv imbalance, barrier stragglers, growing mailbox
// backlogs, blocked-time critical-path dominators, and injected-fault
// correlation — and every detector is validated against a labelled
// chaos corpus: seeded fault plans with known pathologies must be
// flagged (recall 1.0) and clean runs must stay silent (zero false
// positives). Where a number already exists in the post-run profile
// (channel totals, per-state histograms), the pass reuses
// stats.ComputeProfile instead of re-deriving it; the analyzer's own
// scan only adds what the profile does not keep — per-(rank,state)
// outlier attribution, per-channel message timing, and fault events.
package analyze

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Schema versions the Report JSON so downstream consumers can detect
// drift; bump on any incompatible change.
const Schema = "pilot-analyze/1"

// Detector names, as they appear in Finding.Detector. Stable strings:
// the labelled corpus keys its recall assertions on them.
const (
	// DetHotspot: one channel carries most of the run's in-flight
	// message latency (messages sit unread in a mailbox).
	DetHotspot = "hotspot-channel"
	// DetImbalance: a channel's send count differs from its recv count —
	// on a completed run, a structural loss (crashed reader, aborted
	// writer, truncated log).
	DetImbalance = "send-recv-imbalance"
	// DetStraggler: one occurrence of a blocking state ran far longer
	// than every other occurrence of the same state (a straggling rank
	// holding up its cohort).
	DetStraggler = "barrier-straggler"
	// DetBacklog: a channel's outstanding (sent-but-unread) message
	// count grew past a floor and the reader stayed silent — the
	// growing-mailbox pattern of a stalled consumer.
	DetBacklog = "mailbox-backlog"
	// DetDominator: a rank spent a dominating share of its wall time
	// blocked in output operations — the critical-path signature of a
	// slow link or delayed sends (clean Pilot writes are eager and
	// near-instant, so output-blocked time is structurally ~0).
	DetDominator = "blocked-dominator"
	// DetFault: the trace carries injected-fault or deadlock events;
	// each is correlated to its rank and op for the report.
	DetFault = "fault-correlation"
)

// Options tunes the detectors. The zero value means "defaults", which
// are calibrated against the labelled chaos corpus: low enough that
// every seeded pathology fires, high enough that clean runs of the
// example programs stay silent on a loaded CI machine.
type Options struct {
	// T0/T1 bound the analysis window (inclusive), like the windowed
	// profile. Both zero means the whole run.
	T0, T1 float64

	// HotspotMinSec is the minimum total in-flight latency (sum of
	// recv-send over matched messages) a channel needs before it can be
	// a hotspot; HotspotShare is the minimum fraction of the whole
	// run's in-flight latency it must carry.
	HotspotMinSec float64
	HotspotShare  float64

	// StragglerMinSec is the absolute floor on the outlier occurrence;
	// StragglerFactor is how many times longer than the baseline (the
	// larger of the state's second-longest occurrence and its p50) the
	// outlier must run.
	StragglerMinSec float64
	StragglerFactor float64

	// BacklogMin is the outstanding-message floor; BacklogDwellSec is
	// how long the backlog must sit at or above that floor with the
	// reader silent.
	BacklogMin      int
	BacklogDwellSec float64

	// DominatorShare is the minimum fraction of a rank's wall time
	// spent output-blocked; DominatorMinSec the absolute floor.
	DominatorShare  float64
	DominatorMinSec float64

	// MaxMsgEvents caps how many per-channel message timestamps the
	// pass records (memory bound on hostile or enormous traces); past
	// the cap the timing detectors run on the prefix and the report is
	// marked truncated.
	MaxMsgEvents int
}

func (o Options) withDefaults() Options {
	if o.T0 == 0 && o.T1 == 0 {
		o.T0, o.T1 = negInf, posInf
	}
	if o.HotspotMinSec == 0 {
		o.HotspotMinSec = 0.1
	}
	if o.HotspotShare == 0 {
		o.HotspotShare = 0.6
	}
	if o.StragglerMinSec == 0 {
		o.StragglerMinSec = 0.15
	}
	if o.StragglerFactor == 0 {
		o.StragglerFactor = 8
	}
	if o.BacklogMin == 0 {
		o.BacklogMin = 8
	}
	if o.BacklogDwellSec == 0 {
		o.BacklogDwellSec = 0.05
	}
	if o.DominatorShare == 0 {
		o.DominatorShare = 0.4
	}
	if o.DominatorMinSec == 0 {
		o.DominatorMinSec = 0.1
	}
	if o.MaxMsgEvents == 0 {
		o.MaxMsgEvents = 1 << 22
	}
	return o
}

// Thresholds echoes the effective detector tuning into the report, so
// a verdict is reproducible from its own JSON.
type Thresholds struct {
	HotspotMinSec   float64 `json:"hotspot_min_sec"`
	HotspotShare    float64 `json:"hotspot_share"`
	StragglerMinSec float64 `json:"straggler_min_sec"`
	StragglerFactor float64 `json:"straggler_factor"`
	BacklogMin      int     `json:"backlog_min"`
	BacklogDwellSec float64 `json:"backlog_dwell_sec"`
	DominatorShare  float64 `json:"dominator_share"`
	DominatorMinSec float64 `json:"dominator_min_sec"`
}

// Finding is one detector verdict. Rank and Channel are -1 when the
// finding is not scoped to one.
type Finding struct {
	Detector string `json:"detector"`
	// Severity is "warning" for detected pathologies and "info" for
	// fault-correlation entries (the fault is the cause being
	// reported, not a symptom).
	Severity string  `json:"severity"`
	Rank     int     `json:"rank"`
	Channel  int     `json:"channel"`
	State    string  `json:"state,omitempty"`
	Time     float64 `json:"time,omitempty"`
	// Value is the measured magnitude (seconds or count, per
	// detector); Threshold the floor it crossed.
	Value     float64 `json:"value,omitempty"`
	Threshold float64 `json:"threshold,omitempty"`
	Detail    string  `json:"detail"`
}

// Report is the schema-versioned verdict document.
type Report struct {
	Schema   string `json:"schema"`
	NumRanks int    `json:"num_ranks"`
	// Records counts the non-definition records analyzed (matches the
	// profile's totals.records accounting).
	Records int64 `json:"records"`
	// WallSec spans the earliest to latest analyzed record timestamp.
	WallSec float64 `json:"wall_sec"`
	// Window is present on windowed analyses only.
	Window *Window `json:"window,omitempty"`
	// ProfileSource is "computed" (profile derived from the trace) or
	// "sidecar" (a matching .profile.json was reused).
	ProfileSource string `json:"profile_source"`
	// UsedIndex reports whether a windowed profile was answered
	// through the ".idx" sidecar.
	UsedIndex bool `json:"used_index,omitempty"`
	// ClockSuspect means matched messages were observed with recv
	// timestamps before their send (skewed or synthetic clocks); the
	// message-timing detectors (hotspot, backlog) are skipped because
	// their arithmetic would be meaningless.
	ClockSuspect bool `json:"clock_suspect,omitempty"`
	// MsgEventsTruncated means the per-channel timing capture hit
	// Options.MaxMsgEvents; timing detectors ran on the prefix.
	MsgEventsTruncated bool `json:"msg_events_truncated,omitempty"`

	Thresholds Thresholds `json:"thresholds"`
	Findings   []Finding  `json:"findings"`
	Clean      bool       `json:"clean"`
}

// Window mirrors the profile's windowed-query bounds.
type Window struct {
	T0 *float64 `json:"t0,omitempty"`
	T1 *float64 `json:"t1,omitempty"`
}

// sortFindings orders findings deterministically for stable JSON and
// golden snapshots.
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Detector != b.Detector {
			return a.Detector < b.Detector
		}
		if a.Rank != b.Rank {
			return a.Rank < b.Rank
		}
		if a.Channel != b.Channel {
			return a.Channel < b.Channel
		}
		if a.State != b.State {
			return a.State < b.State
		}
		return a.Time < b.Time
	})
}

// HasDetector reports whether any finding came from the named
// detector — the corpus recall assertions' primitive.
func (r *Report) HasDetector(name string) bool {
	for _, f := range r.Findings {
		if f.Detector == name {
			return true
		}
	}
	return false
}

// Detectors returns the distinct detector names that fired, sorted.
func (r *Report) Detectors() []string {
	seen := map[string]bool{}
	for _, f := range r.Findings {
		seen[f.Detector] = true
	}
	out := make([]string, 0, len(seen))
	for d := range seen {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// JSON renders the report indented with a trailing newline, like the
// profile sidecars.
func (r *Report) JSON() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// WriteJSON writes the JSON form to path.
func (r *Report) WriteJSON(path string) error {
	data, err := r.JSON()
	if err != nil {
		return err
	}
	return writeFile(path, data)
}

// Format renders the report as human-readable text.
func (r *Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pilot-analyze report (%s)\n", r.Schema)
	fmt.Fprintf(&b, "ranks %d  records %d  wall %.6fs  profile %s\n",
		r.NumRanks, r.Records, r.WallSec, r.ProfileSource)
	if r.ClockSuspect {
		b.WriteString("note: non-causal message timestamps; timing detectors skipped\n")
	}
	if r.MsgEventsTruncated {
		b.WriteString("note: message-timing capture truncated at the cap\n")
	}
	if r.Clean {
		b.WriteString("clean: no pathologies detected\n")
		return b.String()
	}
	fmt.Fprintf(&b, "%d finding(s):\n", len(r.Findings))
	for _, f := range r.Findings {
		loc := ""
		if f.Rank >= 0 {
			loc += fmt.Sprintf(" rank=%d", f.Rank)
		}
		if f.Channel >= 0 {
			loc += fmt.Sprintf(" chan=%d", f.Channel)
		}
		if f.State != "" {
			loc += " state=" + f.State
		}
		fmt.Fprintf(&b, "  [%s] %s%s: %s\n", f.Severity, f.Detector, loc, f.Detail)
	}
	return b.String()
}
