package analyze

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/clog2"
)

func TestDiffIdentical(t *testing.T) {
	b := newTB(t, 2).withReadWrite()
	b.msg(0, 0.1, clog2.DirSend, 1, 5, 8)
	b.msg(1, 0.2, clog2.DirRecv, 0, 5, 8)
	b.state(0, 0, 0.01, 4, 5)
	data := b.bytes()
	rep, err := DiffBytes(data, data, "a.clog2", "b.clog2", DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Identical || len(rep.Divergences) != 0 || rep.First != nil {
		t.Fatalf("self-diff not identical: %+v", rep)
	}
	if !strings.Contains(rep.Format(), "identical") {
		t.Fatalf("Format:\n%s", rep.Format())
	}
}

func TestDiffIgnoresTimestamps(t *testing.T) {
	// Same op sequence, shifted clocks: must diff clean.
	mk := func(shift float64) []byte {
		b := newTB(t, 2).withReadWrite()
		b.msg(0, 0.1+shift, clog2.DirSend, 1, 5, 8)
		b.msg(1, 0.2+shift, clog2.DirRecv, 0, 5, 8)
		b.state(1, shift, 0.01+shift, 2, 3)
		return b.bytes()
	}
	rep, err := DiffBytes(mk(0), mk(10.5), "a", "b", DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Identical {
		t.Fatalf("clock-shifted twin diverged: %+v", rep.Divergences)
	}
}

func TestDiffMismatch(t *testing.T) {
	mk := func(ch int32) []byte {
		b := newTB(t, 2).withReadWrite()
		b.msg(0, 0.1, clog2.DirSend, 1, 5, 8)
		b.msg(0, 0.2, clog2.DirSend, 1, ch, 8)
		b.msg(1, 0.3, clog2.DirRecv, 0, 5, 8)
		return b.bytes()
	}
	rep, err := DiffBytes(mk(6), mk(7), "clean.clog2", "faulted.clog2", DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Identical || rep.First == nil {
		t.Fatalf("mismatch not reported")
	}
	f := rep.First
	if f.Rank != 0 || f.Op != 1 || f.Kind != "mismatch" {
		t.Fatalf("first divergence %+v, want rank 0 op 1 mismatch", f)
	}
	if len(f.ContextA) == 0 || len(f.ContextB) == 0 {
		t.Fatalf("divergence carries no context: %+v", f)
	}
	if !strings.Contains(rep.Format(), "rank 0 op 1") {
		t.Fatalf("Format:\n%s", rep.Format())
	}
}

func TestDiffTruncation(t *testing.T) {
	mk := func(n int) []byte {
		b := newTB(t, 2).withReadWrite()
		for i := 0; i < n; i++ {
			b.msg(1, 0.1*float64(i), clog2.DirSend, 0, 5, 8)
		}
		b.state(0, 0, 0.01, 2, 3)
		return b.bytes()
	}
	rep, err := DiffBytes(mk(5), mk(3), "full", "truncated", DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Identical {
		t.Fatalf("truncation not detected")
	}
	f := rep.First
	if f.Rank != 1 || f.Op != 3 || f.Kind != "b-short" {
		t.Fatalf("first divergence %+v, want rank 1 op 3 b-short", f)
	}
	if f.LenA != 5 || f.LenB != 3 {
		t.Fatalf("lengths %d/%d, want 5/3", f.LenA, f.LenB)
	}
}

func TestDiffMissingRank(t *testing.T) {
	mk := func(withRank1 bool) []byte {
		b := newTB(t, 2).withReadWrite()
		b.state(0, 0, 0.01, 2, 3)
		if withRank1 {
			b.state(1, 0, 0.01, 4, 5)
		}
		return b.bytes()
	}
	rep, err := DiffBytes(mk(true), mk(false), "a", "b", DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Identical || rep.First.Kind != "b-missing-rank" || rep.First.Rank != 1 {
		t.Fatalf("missing rank not reported: %+v", rep.First)
	}
	// And symmetrically.
	rep, err = DiffBytes(mk(false), mk(true), "a", "b", DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Identical || rep.First.Kind != "a-missing-rank" {
		t.Fatalf("missing rank (mirrored) not reported: %+v", rep.First)
	}
}

func TestDiffFirstPicksEarliestOp(t *testing.T) {
	// Rank 2 diverges at op 0, rank 0 at op 1: First must be rank 2.
	a := map[int32][]string{0: {"x", "y"}, 2: {"p"}}
	b := map[int32][]string{0: {"x", "z"}, 2: {"q"}}
	rep := Diff(a, b, "a", "b", DiffOptions{})
	if rep.First.Rank != 2 || rep.First.Op != 0 {
		t.Fatalf("First = %+v, want rank 2 op 0", rep.First)
	}
	if len(rep.Divergences) != 2 {
		t.Fatalf("divergences %d, want 2", len(rep.Divergences))
	}
}

func TestDiffFilesAndJSON(t *testing.T) {
	dir := t.TempDir()
	b := newTB(t, 2).withReadWrite()
	b.msg(0, 0.1, clog2.DirSend, 1, 5, 8)
	data := b.bytes()
	pa := filepath.Join(dir, "a.clog2")
	pb := filepath.Join(dir, "b.clog2")
	os.WriteFile(pa, data, 0o644)
	os.WriteFile(pb, data, 0o644)
	rep, err := DiffFiles(pa, pb, DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Identical || rep.FileA != "a.clog2" || rep.FileB != "b.clog2" {
		t.Fatalf("DiffFiles report %+v", rep)
	}
	j, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(j), DiffSchema) {
		t.Fatalf("JSON missing schema:\n%s", j)
	}
}

func TestDiffCorruptInputErrors(t *testing.T) {
	good := newTB(t, 1).withReadWrite().bytes()
	if _, err := DiffBytes(good, []byte("garbage"), "a", "b", DiffOptions{}); err == nil {
		t.Fatalf("corrupt input accepted")
	}
	if _, err := DiffFiles("/nonexistent/a.clog2", "/nonexistent/b.clog2", DiffOptions{}); err == nil {
		t.Fatalf("missing files accepted")
	}
}
