// The detector catalogue: each detector is a pure function of the
// collection pass plus the reused profile, tuned by Options and
// emitting Findings. Calibration contract (enforced by the labelled
// corpus in the repo root): every seeded pathology fires its detector,
// and clean runs of the example programs produce zero findings.
package analyze

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/colors"
	"repro/internal/stats"
)

// buildReport runs every detector and assembles the Report.
func buildReport(c *collector, prof *stats.Profile, opts Options, profileSource string, usedIndex bool) *Report {
	rep := &Report{
		Schema:        Schema,
		NumRanks:      c.numRanks,
		Records:       c.records,
		WallSec:       c.wallSec(),
		ProfileSource: profileSource,
		UsedIndex:     usedIndex,
		Thresholds: Thresholds{
			HotspotMinSec:   opts.HotspotMinSec,
			HotspotShare:    opts.HotspotShare,
			StragglerMinSec: opts.StragglerMinSec,
			StragglerFactor: opts.StragglerFactor,
			BacklogMin:      opts.BacklogMin,
			BacklogDwellSec: opts.BacklogDwellSec,
			DominatorShare:  opts.DominatorShare,
			DominatorMinSec: opts.DominatorMinSec,
		},
		MsgEventsTruncated: c.truncated,
		Findings:           []Finding{},
	}
	if !math.IsInf(opts.T0, -1) || !math.IsInf(opts.T1, 1) {
		w := &Window{}
		if !math.IsInf(opts.T0, -1) {
			t0 := opts.T0
			w.T0 = &t0
		}
		if !math.IsInf(opts.T1, 1) {
			t1 := opts.T1
			w.T1 = &t1
		}
		rep.Window = w
	}

	pairs := matchChannels(c)
	rep.ClockSuspect = pairs.nonCausal > 0

	var fs []Finding
	fs = append(fs, detectImbalance(prof)...)
	fs = append(fs, detectStraggler(c, prof, opts)...)
	fs = append(fs, detectDominator(c, opts)...)
	fs = append(fs, detectFaults(c)...)
	if !rep.ClockSuspect {
		fs = append(fs, detectHotspot(pairs, opts)...)
		fs = append(fs, detectBacklog(c, opts)...)
	}
	for _, f := range fs {
		if math.IsNaN(f.Value) || math.IsInf(f.Value, 0) {
			continue
		}
		rep.Findings = append(rep.Findings, f)
	}
	sortFindings(rep.Findings)
	rep.Clean = len(rep.Findings) == 0
	return rep
}

// channelPairs is the FIFO send/recv matching over every channel's
// recorded timestamps.
type channelPairs struct {
	// inflight is each channel's summed matched recv-send latency.
	inflight map[int32]float64
	total    float64
	matched  map[int32]int
	// nonCausal counts matched pairs whose recv precedes its send by
	// more than clock-sync tolerance — the signature of synthetic or
	// unsynchronized clocks, which invalidates timing analysis.
	nonCausal int
}

// causalSlack absorbs the small cross-process clock skew the socket
// transport's sync leaves behind.
const causalSlack = 1e-3

// matchChannels pairs each channel's k-th send with its k-th recv in
// time order — exact for Pilot's point-to-point FIFO channels.
func matchChannels(c *collector) *channelPairs {
	ps := &channelPairs{inflight: map[int32]float64{}, matched: map[int32]int{}}
	for ch, cp := range c.chans {
		sends := append([]float64(nil), cp.sends...)
		recvs := append([]float64(nil), cp.recvs...)
		sort.Float64s(sends)
		sort.Float64s(recvs)
		n := len(sends)
		if len(recvs) < n {
			n = len(recvs)
		}
		ps.matched[ch] = n
		for i := 0; i < n; i++ {
			d := recvs[i] - sends[i]
			if d < -causalSlack {
				ps.nonCausal++
			}
			if d > 0 {
				ps.inflight[ch] += d
			}
		}
		ps.total += ps.inflight[ch]
	}
	return ps
}

// detectImbalance flags channels whose send and recv counts disagree —
// on a completed run, a crashed reader or truncated log. Reuses the
// profile's channel table.
func detectImbalance(prof *stats.Profile) []Finding {
	var fs []Finding
	for _, ch := range prof.Channels {
		if ch.Sends == ch.Recvs {
			continue
		}
		diff := ch.Sends - ch.Recvs
		kind := "unread send(s)"
		if diff < 0 {
			diff, kind = -diff, "recv(s) without a send"
		}
		fs = append(fs, Finding{
			Detector: DetImbalance,
			Severity: "warning",
			Rank:     -1,
			Channel:  ch.Chan,
			Value:    float64(diff),
			Detail: fmt.Sprintf("channel %d: %d sends vs %d recvs (%d %s)",
				ch.Chan, ch.Sends, ch.Recvs, diff, kind),
		})
	}
	return fs
}

// detectStraggler flags a blocking state whose longest occurrence ran
// both past an absolute floor and far beyond its cohort baseline (the
// larger of the second-longest occurrence and the state's p50 from
// the profile histogram).
func detectStraggler(c *collector, prof *stats.Profile, opts Options) []Finding {
	p50 := map[string]float64{}
	count := map[string]int64{}
	for _, sp := range prof.States {
		p50[sp.Name] = sp.P50Sec
		count[sp.Name] = sp.Count
	}
	// Global top-2 occurrences per state across ranks, from the
	// per-rank (max, second) pairs.
	type top struct {
		max, second float64
		rank        int32
		start       float64
		name        string
	}
	tops := map[int32]*top{}
	rankIDs := sortedRanks(c)
	for _, r := range rankIDs {
		rp := c.ranks[r]
		for id, st := range rp.states {
			t := tops[id]
			if t == nil {
				t = &top{name: st.name}
				tops[id] = t
			}
			for _, d := range []float64{st.max, st.second} {
				if d > t.max {
					t.second = t.max
					t.max = d
					if d == st.max {
						t.rank, t.start = rp.rank, st.maxStart
					}
				} else if d > t.second {
					t.second = d
				}
			}
		}
	}
	var fs []Finding
	for _, t := range tops {
		switch colors.CategoryOf(t.name) {
		case colors.Input, colors.Output:
		default:
			continue // stragglers are a blocking-operation pathology
		}
		if count[t.name] < 2 {
			continue // no cohort to straggle from
		}
		baseline := t.second
		if p := p50[t.name]; p > baseline {
			baseline = p
		}
		if t.max < opts.StragglerMinSec || t.max < opts.StragglerFactor*baseline {
			continue
		}
		fs = append(fs, Finding{
			Detector:  DetStraggler,
			Severity:  "warning",
			Rank:      int(t.rank),
			Channel:   -1,
			State:     t.name,
			Time:      t.start,
			Value:     t.max,
			Threshold: opts.StragglerMinSec,
			Detail: fmt.Sprintf("rank %d: one %s took %.3fs vs %.6fs for the rest of the cohort (%.0fx floor %gs)",
				t.rank, t.name, t.max, baseline, opts.StragglerFactor, opts.StragglerMinSec),
		})
	}
	return fs
}

// detectDominator flags ranks whose output-blocked self-time dominates
// their wall time. Clean Pilot writes are eager and near-instant, so
// any substantial output-blocked share means senders were held up —
// the critical-path signature of a slow or faulted link.
func detectDominator(c *collector, opts Options) []Finding {
	var fs []Finding
	for _, r := range sortedRanks(c) {
		rp := c.ranks[r]
		if !rp.haveWall {
			continue
		}
		wall := rp.wall1 - rp.wall0
		if rp.outBlockedSec < opts.DominatorMinSec || rp.outBlockedSec < opts.DominatorShare*wall {
			continue
		}
		fs = append(fs, Finding{
			Detector:  DetDominator,
			Severity:  "warning",
			Rank:      int(rp.rank),
			Channel:   -1,
			Value:     rp.outBlockedSec,
			Threshold: opts.DominatorMinSec,
			Detail: fmt.Sprintf("rank %d spent %.3fs of %.3fs wall (%.0f%%) blocked in output operations",
				rp.rank, rp.outBlockedSec, wall, 100*rp.outBlockedSec/math.Max(wall, 1e-12)),
		})
	}
	return fs
}

// detectHotspot flags the channel carrying a dominating share of the
// run's total in-flight message latency.
func detectHotspot(pairs *channelPairs, opts Options) []Finding {
	var fs []Finding
	chans := make([]int32, 0, len(pairs.inflight))
	for ch := range pairs.inflight {
		chans = append(chans, ch)
	}
	sort.Slice(chans, func(i, j int) bool { return chans[i] < chans[j] })
	for _, ch := range chans {
		lat := pairs.inflight[ch]
		if lat < opts.HotspotMinSec || pairs.matched[ch] == 0 {
			continue
		}
		share := lat / pairs.total
		if share < opts.HotspotShare {
			continue
		}
		fs = append(fs, Finding{
			Detector:  DetHotspot,
			Severity:  "warning",
			Rank:      -1,
			Channel:   int(ch),
			Value:     lat,
			Threshold: opts.HotspotMinSec,
			Detail: fmt.Sprintf("channel %d carried %.3fs of in-flight latency over %d messages (%.0f%% of the run's total)",
				ch, lat, pairs.matched[ch], 100*share),
		})
	}
	return fs
}

// detectBacklog flags channels whose outstanding (sent-but-unread)
// count rose past the floor and sat there with the reader silent.
func detectBacklog(c *collector, opts Options) []Finding {
	var fs []Finding
	chans := make([]int32, 0, len(c.chans))
	for ch := range c.chans {
		chans = append(chans, ch)
	}
	sort.Slice(chans, func(i, j int) bool { return chans[i] < chans[j] })
	for _, ch := range chans {
		cp := c.chans[ch]
		peak, peakT, dwell := backlogWalk(cp.sends, cp.recvs, opts.BacklogMin, c.wall1)
		if peak < opts.BacklogMin || dwell < opts.BacklogDwellSec {
			continue
		}
		fs = append(fs, Finding{
			Detector:  DetBacklog,
			Severity:  "warning",
			Rank:      -1,
			Channel:   int(ch),
			Time:      peakT,
			Value:     float64(peak),
			Threshold: float64(opts.BacklogMin),
			Detail: fmt.Sprintf("channel %d backlog peaked at %d unread messages and held >=%d for %.3fs with the reader silent",
				ch, peak, opts.BacklogMin, dwell),
		})
	}
	return fs
}

// backlogWalk merges a channel's send (+1) and recv (-1) timestamps in
// time order (recvs first on ties) and returns the peak outstanding
// count, its timestamp, and the longest contiguous span the
// outstanding count stayed at or above min. A trace that ends with the
// backlog still standing (crashed reader) extends the span to the last
// record timestamp in the trace.
func backlogWalk(sends, recvs []float64, min int, endOfTrace float64) (peak int, peakT, maxDwell float64) {
	s := append([]float64(nil), sends...)
	r := append([]float64(nil), recvs...)
	sort.Float64s(s)
	sort.Float64s(r)
	outstanding := 0
	spanStart := 0.0
	inSpan := false
	closeSpan := func(t float64) {
		if inSpan {
			if d := t - spanStart; d > maxDwell {
				maxDwell = d
			}
			inSpan = false
		}
	}
	i, j := 0, 0
	for i < len(s) || j < len(r) {
		var t float64
		isRecv := false
		switch {
		case i >= len(s):
			isRecv = true
		case j >= len(r):
		default:
			isRecv = r[j] <= s[i]
		}
		if isRecv {
			t = r[j]
			j++
			if outstanding > 0 {
				outstanding--
			}
		} else {
			t = s[i]
			i++
			outstanding++
		}
		if outstanding > peak {
			peak = outstanding
			peakT = t
		}
		if outstanding >= min && !inSpan {
			spanStart, inSpan = t, true
		} else if outstanding < min {
			closeSpan(t)
		}
	}
	if endOfTrace > spanStart {
		closeSpan(endOfTrace)
	} else {
		closeSpan(spanStart)
	}
	return peak, peakT, maxDwell
}

// detectFaults correlates the trace's FaultInjected/Deadlock solo
// events into per-(rank, fault-kind) findings, so a verdict names the
// injected cause alongside the detected symptoms.
func detectFaults(c *collector) []Finding {
	type key struct {
		rank int32
		kind string
	}
	type agg struct {
		count int
		first faultEvent
	}
	byKey := map[key]*agg{}
	var keys []key
	for _, ev := range c.faults {
		kind := ev.name
		if ev.name == faultEventName {
			// Cargo is FaultEvent.String(), e.g. "stall rank=1 op=2";
			// the first token is the fault kind.
			if f := strings.Fields(ev.cargo); len(f) > 0 {
				kind = f[0]
			}
		}
		k := key{ev.rank, kind}
		a := byKey[k]
		if a == nil {
			a = &agg{first: ev}
			byKey[k] = a
			keys = append(keys, k)
		}
		a.count++
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].rank != keys[j].rank {
			return keys[i].rank < keys[j].rank
		}
		return keys[i].kind < keys[j].kind
	})
	var fs []Finding
	for _, k := range keys {
		a := byKey[k]
		noun := "fault event(s)"
		if k.kind == deadlockEventName {
			noun = "deadlock diagnosis event(s)"
		}
		detail := fmt.Sprintf("rank %d: %d %q %s", k.rank, a.count, k.kind, noun)
		if a.first.cargo != "" {
			detail += fmt.Sprintf(" (first: %q)", a.first.cargo)
		}
		fs = append(fs, Finding{
			Detector: DetFault,
			Severity: "info",
			Rank:     int(k.rank),
			Channel:  -1,
			State:    k.kind,
			Time:     a.first.time,
			Value:    float64(a.count),
			Detail:   detail,
		})
	}
	return fs
}

// sortedRanks returns the collector's rank ids ascending, for
// deterministic detector iteration.
func sortedRanks(c *collector) []int32 {
	ids := make([]int32, 0, len(c.ranks))
	for r := range c.ranks {
		ids = append(ids, r)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
