// Trace diffing: align two runs of the same program by per-rank
// operation sequence and localize the first divergence — Okita et
// al.'s debugging approach, made exact here by the runtime's
// deterministic replay. Sequences are normalized the way the chaos
// suite's replay determinism is stated: wall-clock timestamps,
// clock-sync TimeShift records, and definition metadata are dropped,
// leaving the per-rank order of events, state transitions and message
// halves — the part of a trace that is a pure function of (program,
// seed) for deterministic workloads.
package analyze

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/clog2"
)

// DiffSchema versions the DiffReport JSON.
const DiffSchema = "pilot-analyze-diff/1"

// DiffOptions tunes the diff.
type DiffOptions struct {
	// Context is how many ops of surrounding context each divergence
	// carries (default 3).
	Context int
}

func (o DiffOptions) withDefaults() DiffOptions {
	if o.Context == 0 {
		o.Context = 3
	}
	return o
}

// Divergence is one rank's first point of disagreement.
type Divergence struct {
	Rank int `json:"rank"`
	// Op is the index into the rank's normalized op sequence where the
	// two runs first disagree.
	Op int `json:"op"`
	// Kind is "mismatch" (both have an op there, different), "a-short"
	// / "b-short" (one run's sequence ends early — truncation), or
	// "a-missing-rank" / "b-missing-rank" (the rank logged nothing at
	// all in one run).
	Kind string `json:"kind"`
	// A and B are the normalized ops at the divergence ("" past the
	// end of a truncated sequence).
	A string `json:"a,omitempty"`
	B string `json:"b,omitempty"`
	// ContextA/ContextB are the ops surrounding the divergence
	// (including it), one line per op, prefixed with its index.
	ContextA []string `json:"context_a,omitempty"`
	ContextB []string `json:"context_b,omitempty"`
	// LenA/LenB are the full sequence lengths.
	LenA int `json:"len_a"`
	LenB int `json:"len_b"`
}

// DiffReport is the schema-versioned diff document.
type DiffReport struct {
	Schema string `json:"schema"`
	// FileA/FileB are base names only, so reports are path-independent.
	FileA     string `json:"file_a"`
	FileB     string `json:"file_b"`
	Identical bool   `json:"identical"`
	// Divergences holds each diverging rank's first divergence,
	// ordered by rank.
	Divergences []Divergence `json:"divergences"`
	// First is the divergence with the smallest op index (ties to the
	// smallest rank) — the localized first faulty rank/op.
	First *Divergence `json:"first,omitempty"`
}

// opSignature renders one record as a timestamp-free op string, the
// same field set the chaos suite's replay-determinism assertions use.
func opSignature(r *clog2.Record) string {
	return fmt.Sprintf("%s|%d|%d|%d|%d|%d|%s|%s|%s|%s",
		r.Type, r.ID, r.Aux1, r.Aux2, r.Aux3, r.Dir, r.Name, r.Color, r.Text, r.CargoText())
}

// opSequences reduces a CLOG-2 stream to per-rank normalized op
// sequences: events, state transitions and message halves in rank
// order; definitions, timeshifts and block markers are metadata and
// excluded.
func opSequences(r io.Reader) (map[int32][]string, error) {
	br, err := clog2.NewBlockReader(r)
	if err != nil {
		return nil, err
	}
	seqs := map[int32][]string{}
	for {
		b, err := br.Next()
		if err == io.EOF {
			return seqs, nil
		}
		if err != nil {
			return nil, err
		}
		for i := range b.Records {
			rec := &b.Records[i]
			switch rec.Type {
			case clog2.RecBareEvt, clog2.RecCargoEvt, clog2.RecMsgEvt:
				seqs[rec.Rank] = append(seqs[rec.Rank], opSignature(rec))
			}
		}
	}
}

// Diff aligns two per-rank op-sequence maps and reports each rank's
// first divergence.
func Diff(a, b map[int32][]string, nameA, nameB string, opts DiffOptions) *DiffReport {
	opts = opts.withDefaults()
	rep := &DiffReport{
		Schema:      DiffSchema,
		FileA:       nameA,
		FileB:       nameB,
		Divergences: []Divergence{},
	}
	ranks := map[int32]bool{}
	for r := range a {
		ranks[r] = true
	}
	for r := range b {
		ranks[r] = true
	}
	ids := make([]int32, 0, len(ranks))
	for r := range ranks {
		ids = append(ids, r)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	for _, rank := range ids {
		sa, sb := a[rank], b[rank]
		if d := diffRank(int(rank), sa, sb, opts.Context); d != nil {
			rep.Divergences = append(rep.Divergences, *d)
		}
	}
	rep.Identical = len(rep.Divergences) == 0
	if !rep.Identical {
		first := rep.Divergences[0]
		for _, d := range rep.Divergences[1:] {
			if d.Op < first.Op || (d.Op == first.Op && d.Rank < first.Rank) {
				first = d
			}
		}
		rep.First = &first
	}
	return rep
}

// diffRank finds one rank's first divergence, or nil when the
// sequences agree completely.
func diffRank(rank int, sa, sb []string, context int) *Divergence {
	switch {
	case len(sa) == 0 && len(sb) == 0:
		return nil
	case len(sa) == 0:
		return &Divergence{Rank: rank, Op: 0, Kind: "a-missing-rank",
			B: sb[0], ContextB: contextLines(sb, 0, context), LenA: 0, LenB: len(sb)}
	case len(sb) == 0:
		return &Divergence{Rank: rank, Op: 0, Kind: "b-missing-rank",
			A: sa[0], ContextA: contextLines(sa, 0, context), LenA: len(sa), LenB: 0}
	}
	n := len(sa)
	if len(sb) < n {
		n = len(sb)
	}
	for i := 0; i < n; i++ {
		if sa[i] != sb[i] {
			return &Divergence{Rank: rank, Op: i, Kind: "mismatch",
				A: sa[i], B: sb[i],
				ContextA: contextLines(sa, i, context),
				ContextB: contextLines(sb, i, context),
				LenA:     len(sa), LenB: len(sb)}
		}
	}
	switch {
	case len(sa) < len(sb):
		return &Divergence{Rank: rank, Op: n, Kind: "a-short",
			B: sb[n], ContextB: contextLines(sb, n, context),
			ContextA: contextLines(sa, n, context),
			LenA:     len(sa), LenB: len(sb)}
	case len(sb) < len(sa):
		return &Divergence{Rank: rank, Op: n, Kind: "b-short",
			A: sa[n], ContextA: contextLines(sa, n, context),
			ContextB: contextLines(sb, n, context),
			LenA:     len(sa), LenB: len(sb)}
	}
	return nil
}

// contextLines renders ops [i-context, i+context] with indices; i may
// sit one past the end for truncation divergences.
func contextLines(seq []string, i, context int) []string {
	lo := i - context
	if lo < 0 {
		lo = 0
	}
	hi := i + context
	if hi >= len(seq) {
		hi = len(seq) - 1
	}
	var out []string
	for k := lo; k <= hi; k++ {
		marker := " "
		if k == i {
			marker = ">"
		}
		out = append(out, fmt.Sprintf("%s op %d: %s", marker, k, seq[k]))
	}
	return out
}

// DiffBytes diffs two in-memory CLOG-2 images.
func DiffBytes(a, b []byte, nameA, nameB string, opts DiffOptions) (*DiffReport, error) {
	sa, err := opSequences(bytes.NewReader(a))
	if err != nil {
		return nil, fmt.Errorf("analyze: diff %s: %w", nameA, err)
	}
	sb, err := opSequences(bytes.NewReader(b))
	if err != nil {
		return nil, fmt.Errorf("analyze: diff %s: %w", nameB, err)
	}
	return Diff(sa, sb, nameA, nameB, opts), nil
}

// DiffFiles diffs two CLOG-2 files.
func DiffFiles(pathA, pathB string, opts DiffOptions) (*DiffReport, error) {
	seqOf := func(path string) (map[int32][]string, error) {
		fh, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer fh.Close()
		s, err := opSequences(fh)
		if err != nil {
			return nil, fmt.Errorf("analyze: diff %s: %w", path, err)
		}
		return s, nil
	}
	sa, err := seqOf(pathA)
	if err != nil {
		return nil, err
	}
	sb, err := seqOf(pathB)
	if err != nil {
		return nil, err
	}
	return Diff(sa, sb, filepath.Base(pathA), filepath.Base(pathB), opts), nil
}

// JSON renders the diff report indented with a trailing newline.
func (d *DiffReport) JSON() ([]byte, error) {
	data, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Format renders the diff report as human-readable text.
func (d *DiffReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pilot-analyze diff (%s)\n%s vs %s\n", d.Schema, d.FileA, d.FileB)
	if d.Identical {
		b.WriteString("identical: per-rank op sequences agree\n")
		return b.String()
	}
	f := d.First
	fmt.Fprintf(&b, "first divergence: rank %d op %d (%s)\n", f.Rank, f.Op, f.Kind)
	for _, dv := range d.Divergences {
		fmt.Fprintf(&b, "rank %d diverges at op %d (%s; %d vs %d ops)\n",
			dv.Rank, dv.Op, dv.Kind, dv.LenA, dv.LenB)
		if len(dv.ContextA) > 0 {
			fmt.Fprintf(&b, "  %s:\n", d.FileA)
			for _, l := range dv.ContextA {
				fmt.Fprintf(&b, "    %s\n", l)
			}
		}
		if len(dv.ContextB) > 0 {
			fmt.Fprintf(&b, "  %s:\n", d.FileB)
			for _, l := range dv.ContextB {
				fmt.Fprintf(&b, "    %s\n", l)
			}
		}
	}
	return b.String()
}
