package analyze

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/clog2"
	"repro/internal/stats"
)

// tb builds a synthetic CLOG-2 image in memory: one block per rank,
// records appended in call order.
type tb struct {
	t        testing.TB
	numRanks int
	recs     map[int32][]clog2.Record
	defs     []clog2.Record
}

func newTB(t testing.TB, numRanks int) *tb {
	return &tb{t: t, numRanks: numRanks, recs: map[int32][]clog2.Record{}}
}

func (b *tb) stateDef(id, startE, endE int32, name string) *tb {
	b.defs = append(b.defs, clog2.Record{Type: clog2.RecStateDef, ID: id, Aux1: startE, Aux2: endE, Name: name, Color: "green"})
	return b
}

func (b *tb) eventDef(etype int32, name string) *tb {
	b.defs = append(b.defs, clog2.Record{Type: clog2.RecEventDef, ID: etype, Name: name, Color: "orange"})
	return b
}

func (b *tb) bare(rank int32, t float64, etype int32) *tb {
	b.recs[rank] = append(b.recs[rank], clog2.Record{Type: clog2.RecBareEvt, Rank: rank, Time: t, ID: etype})
	return b
}

func (b *tb) cargo(rank int32, t float64, etype int32, text string) *tb {
	r := clog2.Record{Type: clog2.RecCargoEvt, Rank: rank, Time: t, ID: etype}
	r.SetCargo(text)
	b.recs[rank] = append(b.recs[rank], r)
	return b
}

// state logs a start/end pair for a state occupying [t0, t1].
func (b *tb) state(rank int32, t0, t1 float64, startE, endE int32) *tb {
	return b.bare(rank, t0, startE).bare(rank, t1, endE)
}

func (b *tb) msg(rank int32, t float64, dir uint8, peer, ch, size int32) *tb {
	b.recs[rank] = append(b.recs[rank], clog2.Record{
		Type: clog2.RecMsgEvt, Rank: rank, Time: t, Dir: dir, Aux1: peer, Aux2: ch, Aux3: size,
	})
	return b
}

func (b *tb) bytes() []byte {
	var buf bytes.Buffer
	w, err := clog2.NewWriter(&buf, b.numRanks)
	if err != nil {
		b.t.Fatalf("NewWriter: %v", err)
	}
	for rank := int32(0); rank < int32(b.numRanks); rank++ {
		recs := b.recs[rank]
		if rank == 0 {
			recs = append(append([]clog2.Record(nil), b.defs...), recs...)
		}
		if len(recs) == 0 {
			continue
		}
		if err := w.WriteBlock(rank, recs); err != nil {
			b.t.Fatalf("WriteBlock: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		b.t.Fatalf("Close: %v", err)
	}
	return buf.Bytes()
}

func (b *tb) analyze(opts Options) *Report {
	b.t.Helper()
	rep, err := AnalyzeBytes(b.bytes(), opts)
	if err != nil {
		b.t.Fatalf("AnalyzeBytes: %v", err)
	}
	return rep
}

// withReadWrite installs the canonical blocking-state defs: PI_Read
// (Input) as state 1 (etypes 2/3) and PI_Write (Output) as state 2
// (etypes 4/5).
func (b *tb) withReadWrite() *tb {
	return b.stateDef(1, 2, 3, "PI_Read").stateDef(2, 4, 5, "PI_Write")
}

func TestCleanTraceIsClean(t *testing.T) {
	b := newTB(t, 2).withReadWrite()
	// Balanced causal messages, short states.
	b.msg(0, 0.10, clog2.DirSend, 1, 7, 8)
	b.msg(1, 0.11, clog2.DirRecv, 0, 7, 8)
	b.state(0, 0.0, 0.001, 4, 5)
	b.state(1, 0.1, 0.101, 2, 3)
	rep := b.analyze(Options{})
	if !rep.Clean || len(rep.Findings) != 0 {
		t.Fatalf("expected clean report, got findings %+v", rep.Findings)
	}
	if rep.ClockSuspect {
		t.Fatalf("causal trace flagged clock-suspect")
	}
	if rep.NumRanks != 2 {
		t.Fatalf("NumRanks = %d, want 2", rep.NumRanks)
	}
}

func TestDetectImbalance(t *testing.T) {
	b := newTB(t, 2).withReadWrite()
	b.msg(0, 0.1, clog2.DirSend, 1, 5, 8)
	b.msg(0, 0.2, clog2.DirSend, 1, 5, 8)
	b.msg(1, 0.3, clog2.DirRecv, 0, 5, 8)
	rep := b.analyze(Options{})
	if !rep.HasDetector(DetImbalance) {
		t.Fatalf("imbalance not detected: %v", rep.Detectors())
	}
	var f Finding
	for _, x := range rep.Findings {
		if x.Detector == DetImbalance {
			f = x
		}
	}
	if f.Channel != 5 || f.Value != 1 {
		t.Fatalf("imbalance finding %+v, want channel 5 value 1", f)
	}
	if !strings.Contains(f.Detail, "unread send") {
		t.Fatalf("detail %q", f.Detail)
	}
}

func TestDetectStraggler(t *testing.T) {
	b := newTB(t, 3).withReadWrite()
	// A cohort of quick PI_Reads plus one 2s outlier on rank 1.
	b.state(0, 0.00, 0.01, 2, 3)
	b.state(0, 0.02, 0.03, 2, 3)
	b.state(2, 0.00, 0.01, 2, 3)
	b.state(1, 0.00, 2.00, 2, 3)
	rep := b.analyze(Options{})
	if !rep.HasDetector(DetStraggler) {
		t.Fatalf("straggler not detected: %v", rep.Detectors())
	}
	for _, f := range rep.Findings {
		if f.Detector == DetStraggler {
			if f.Rank != 1 || f.State != "PI_Read" {
				t.Fatalf("straggler attributed to %+v, want rank 1 PI_Read", f)
			}
			if f.Time != 0 {
				t.Fatalf("straggler start time %v, want 0", f.Time)
			}
		}
	}
}

func TestStragglerIgnoresNonBlockingStates(t *testing.T) {
	b := newTB(t, 2)
	b.stateDef(1, 2, 3, "Compute") // Admin category
	b.state(0, 0, 0.01, 2, 3)
	b.state(1, 0, 5.0, 2, 3)
	rep := b.analyze(Options{})
	if rep.HasDetector(DetStraggler) {
		t.Fatalf("straggler fired on a non-blocking state")
	}
}

func TestStragglerNeedsCohort(t *testing.T) {
	b := newTB(t, 1).withReadWrite()
	b.state(0, 0, 5.0, 2, 3) // single occurrence: nothing to straggle from
	rep := b.analyze(Options{})
	if rep.HasDetector(DetStraggler) {
		t.Fatalf("straggler fired with count < 2")
	}
}

func TestDetectDominator(t *testing.T) {
	b := newTB(t, 2).withReadWrite()
	// Rank 1 wall [0, 2.0], of which 1.5s blocked in PI_Write.
	b.state(1, 0.0, 1.5, 4, 5)
	b.bare(1, 2.0, 6) // solo-ish unmatched etype to extend wall; etype 6 = state 3 start (parity), stays open
	b.state(0, 0.0, 0.001, 4, 5)
	rep := b.analyze(Options{})
	if !rep.HasDetector(DetDominator) {
		t.Fatalf("dominator not detected: %v", rep.Detectors())
	}
	for _, f := range rep.Findings {
		if f.Detector == DetDominator && f.Rank != 1 {
			t.Fatalf("dominator rank %d, want 1", f.Rank)
		}
	}
}

func TestDominatorIgnoresInputBlocking(t *testing.T) {
	// Input-blocked time is normal (a reader waiting for work); only
	// output-blocked time dominates.
	b := newTB(t, 1).withReadWrite()
	b.state(0, 0.0, 2.0, 2, 3) // PI_Read
	rep := b.analyze(Options{})
	if rep.HasDetector(DetDominator) {
		t.Fatalf("dominator fired on input-blocked time")
	}
}

func TestDetectHotspot(t *testing.T) {
	b := newTB(t, 2).withReadWrite()
	// Channel 9 holds messages in flight for 1s each; channel 10 is fast.
	b.msg(0, 0.0, clog2.DirSend, 1, 9, 8)
	b.msg(1, 1.0, clog2.DirRecv, 0, 9, 8)
	b.msg(0, 1.1, clog2.DirSend, 1, 10, 8)
	b.msg(1, 1.101, clog2.DirRecv, 0, 10, 8)
	rep := b.analyze(Options{})
	if !rep.HasDetector(DetHotspot) {
		t.Fatalf("hotspot not detected: %v", rep.Detectors())
	}
	for _, f := range rep.Findings {
		if f.Detector == DetHotspot && f.Channel != 9 {
			t.Fatalf("hotspot channel %d, want 9", f.Channel)
		}
	}
}

func TestDetectBacklog(t *testing.T) {
	b := newTB(t, 2).withReadWrite()
	// Ten sends pile up on channel 4 before the reader drains them.
	for i := 0; i < 10; i++ {
		b.msg(0, 0.001*float64(i), clog2.DirSend, 1, 4, 8)
	}
	for i := 0; i < 10; i++ {
		b.msg(1, 1.0+0.001*float64(i), clog2.DirRecv, 0, 4, 8)
	}
	rep := b.analyze(Options{})
	if !rep.HasDetector(DetBacklog) {
		t.Fatalf("backlog not detected: %v", rep.Detectors())
	}
	for _, f := range rep.Findings {
		if f.Detector == DetBacklog {
			if f.Channel != 4 || f.Value != 10 {
				t.Fatalf("backlog finding %+v, want channel 4 peak 10", f)
			}
		}
	}
}

func TestBacklogStandingAtEndOfTrace(t *testing.T) {
	// A crashed reader: sends pile up and nothing drains them; the
	// dwell must extend to the end of the trace.
	b := newTB(t, 2).withReadWrite()
	for i := 0; i < 9; i++ {
		b.msg(0, 0.001*float64(i), clog2.DirSend, 1, 4, 8)
	}
	b.bare(0, 2.0, 2) // trace extends well past the pile-up
	rep := b.analyze(Options{})
	if !rep.HasDetector(DetBacklog) {
		t.Fatalf("standing backlog not detected: %v", rep.Detectors())
	}
}

func TestDetectFaults(t *testing.T) {
	b := newTB(t, 2).withReadWrite()
	const faultE = soloBase + 1
	b.eventDef(faultE, "FaultInjected")
	b.cargo(1, 0.5, faultE, "stall rank=1 op=2")
	b.cargo(1, 0.6, faultE, "stall rank=1 op=3")
	b.state(0, 0, 0.001, 4, 5)
	rep := b.analyze(Options{})
	if !rep.HasDetector(DetFault) {
		t.Fatalf("fault correlation missing: %v", rep.Detectors())
	}
	for _, f := range rep.Findings {
		if f.Detector == DetFault {
			if f.Rank != 1 || f.State != "stall" || f.Value != 2 || f.Severity != "info" {
				t.Fatalf("fault finding %+v", f)
			}
		}
	}
}

func TestDeadlockEventCorrelated(t *testing.T) {
	b := newTB(t, 1)
	const dlE = soloBase + 2
	b.eventDef(dlE, "Deadlock")
	b.cargo(0, 0.1, dlE, "cycle: 0 -> 1 -> 0")
	rep := b.analyze(Options{})
	if !rep.HasDetector(DetFault) {
		t.Fatalf("deadlock event not correlated")
	}
	f := rep.Findings[0]
	if f.State != "Deadlock" || !strings.Contains(f.Detail, "deadlock diagnosis") {
		t.Fatalf("deadlock finding %+v", f)
	}
}

func TestClockSuspectSkipsTimingDetectors(t *testing.T) {
	b := newTB(t, 2).withReadWrite()
	// Recv before its send: synthetic clocks. The same shape would be a
	// screaming hotspot with sane clocks.
	b.msg(0, 5.0, clog2.DirSend, 1, 9, 8)
	b.msg(1, 0.0, clog2.DirRecv, 0, 9, 8)
	for i := 0; i < 10; i++ {
		b.msg(0, 5.0, clog2.DirSend, 1, 4, 8)
		b.msg(1, 0.0, clog2.DirRecv, 0, 4, 8)
	}
	rep := b.analyze(Options{})
	if !rep.ClockSuspect {
		t.Fatalf("non-causal pairs not flagged")
	}
	if rep.HasDetector(DetHotspot) || rep.HasDetector(DetBacklog) {
		t.Fatalf("timing detectors ran on clock-suspect trace: %v", rep.Detectors())
	}
}

func TestEmptyTrace(t *testing.T) {
	b := newTB(t, 1)
	rep := b.analyze(Options{})
	if !rep.Clean || rep.Records != 0 || rep.WallSec != 0 {
		t.Fatalf("empty trace report %+v", rep)
	}
}

func TestAllDefsTrace(t *testing.T) {
	b := newTB(t, 1).withReadWrite()
	b.eventDef(soloBase+1, "FaultInjected")
	rep := b.analyze(Options{})
	if !rep.Clean || rep.Records != 0 {
		t.Fatalf("defs-only trace report: clean=%v records=%d", rep.Clean, rep.Records)
	}
}

func TestDefsLessParityFallback(t *testing.T) {
	// Salvaged logs can lose the definition table; the parity fallback
	// must still pair etype 2k/2k+1 into state k.
	b := newTB(t, 2)
	b.state(0, 0, 0.01, 2, 3)
	b.state(1, 0, 2.0, 2, 3)
	rep := b.analyze(Options{})
	// "state 1" has category Other, so no straggler — but pairing must
	// produce sane records/wall accounting without panicking.
	if rep.Records != 4 {
		t.Fatalf("records = %d, want 4", rep.Records)
	}
	if math.Abs(rep.WallSec-2.0) > 1e-9 {
		t.Fatalf("wall = %v, want 2.0", rep.WallSec)
	}
}

func TestSingleRankTrace(t *testing.T) {
	b := newTB(t, 1).withReadWrite()
	b.state(0, 0, 0.01, 2, 3)
	b.state(0, 0.02, 0.03, 4, 5)
	rep := b.analyze(Options{})
	if !rep.Clean {
		t.Fatalf("single-rank clean trace produced findings: %v", rep.Findings)
	}
}

func TestHostileTimestampsDropped(t *testing.T) {
	b := newTB(t, 1).withReadWrite()
	b.bare(0, math.NaN(), 2)
	b.bare(0, math.Inf(1), 3)
	b.state(0, 0, 0.01, 2, 3)
	rep := b.analyze(Options{})
	if rep.Records != 2 {
		t.Fatalf("records = %d, want 2 (non-finite dropped)", rep.Records)
	}
	if _, err := rep.JSON(); err != nil {
		t.Fatalf("JSON: %v", err)
	}
}

func TestWindowedAnalysis(t *testing.T) {
	b := newTB(t, 1).withReadWrite()
	b.state(0, 0, 0.01, 2, 3)
	b.state(0, 10, 10.01, 2, 3)
	rep := b.analyze(Options{T0: math.Inf(-1), T1: 5})
	if rep.Records != 2 {
		t.Fatalf("windowed records = %d, want 2", rep.Records)
	}
	if rep.Window == nil || rep.Window.T1 == nil || *rep.Window.T1 != 5 {
		t.Fatalf("window not echoed: %+v", rep.Window)
	}
}

func TestMsgEventCapTruncates(t *testing.T) {
	b := newTB(t, 2).withReadWrite()
	for i := 0; i < 6; i++ {
		b.msg(0, 0.001*float64(i), clog2.DirSend, 1, 4, 8)
		b.msg(1, 0.002*float64(i), clog2.DirRecv, 0, 4, 8)
	}
	rep := b.analyze(Options{MaxMsgEvents: 4})
	if !rep.MsgEventsTruncated {
		t.Fatalf("truncation not reported")
	}
}

func TestAnalyzeFileSidecarReuse(t *testing.T) {
	b := newTB(t, 2).withReadWrite()
	b.state(0, 0, 0.001, 4, 5)
	b.state(1, 0.1, 0.101, 2, 3)
	data := b.bytes()

	dir := t.TempDir()
	clog := filepath.Join(dir, "run.clog2")
	if err := os.WriteFile(clog, data, 0o644); err != nil {
		t.Fatal(err)
	}
	// Without a sidecar: computed.
	rep, err := AnalyzeFile(clog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ProfileSource != "computed" {
		t.Fatalf("profile source %q, want computed", rep.ProfileSource)
	}
	// With a matching sidecar: reused.
	prof, err := stats.ComputeProfile(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	pj, err := prof.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "run.profile.json"), pj, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err = AnalyzeFile(clog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ProfileSource != "sidecar" {
		t.Fatalf("profile source %q, want sidecar", rep.ProfileSource)
	}
	// A stale sidecar (wrong record count) is rejected.
	prof.Totals.Records += 7
	pj, _ = prof.JSON()
	os.WriteFile(filepath.Join(dir, "run.profile.json"), pj, 0o644)
	rep, err = AnalyzeFile(clog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ProfileSource != "computed" {
		t.Fatalf("stale sidecar reused (source %q)", rep.ProfileSource)
	}
}

func TestFormatRendersFindings(t *testing.T) {
	b := newTB(t, 2).withReadWrite()
	b.msg(0, 0.1, clog2.DirSend, 1, 5, 8)
	rep := b.analyze(Options{})
	out := rep.Format()
	if !strings.Contains(out, DetImbalance) || !strings.Contains(out, "chan=5") {
		t.Fatalf("Format output:\n%s", out)
	}
	clean := newTB(t, 1).withReadWrite().analyze(Options{})
	if !strings.Contains(clean.Format(), "clean") {
		t.Fatalf("clean Format output:\n%s", clean.Format())
	}
}

func TestAnalyzeReaderMatchesBytes(t *testing.T) {
	b := newTB(t, 2).withReadWrite()
	b.msg(0, 0.1, clog2.DirSend, 1, 5, 8)
	data := b.bytes()
	r1, err := Analyze(bytes.NewReader(data), Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := AnalyzeBytes(data, Options{})
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := r1.JSON()
	j2, _ := r2.JSON()
	if !bytes.Equal(j1, j2) {
		t.Fatalf("Analyze and AnalyzeBytes disagree")
	}
}

func TestAnalyzeCorruptInputErrors(t *testing.T) {
	if _, err := AnalyzeBytes([]byte("not a clog2 file at all"), Options{}); err == nil {
		t.Fatalf("corrupt input accepted")
	}
}
