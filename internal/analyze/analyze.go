// The streaming collection pass: one BlockReader scan gathering what
// the post-run profile does not keep — per-(rank,state) outlier
// attribution, per-channel message timing, per-rank category
// self-times, and injected-fault events — plus the entry points that
// pair it with a reused or recomputed stats.Profile and run the
// detector catalogue over both.
package analyze

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"repro/internal/clog2"
	"repro/internal/colors"
	"repro/internal/stats"
)

var (
	negInf = math.Inf(-1)
	posInf = math.Inf(1)
)

// soloBase mirrors the mpe etype split: solo (non-state) event etypes
// live at 1<<20 and above, state start/end etypes below it.
const soloBase = 1 << 20

// faultEventName / deadlockEventName are the runtime's solo-event
// definitions for injected faults and deadlock diagnoses.
const (
	faultEventName    = "FaultInjected"
	deadlockEventName = "Deadlock"
)

// openState is one entry of a rank's in-flight state stack.
type openState struct {
	etype    int32
	start    float64
	childSec float64
}

// rankPass accumulates one rank's analyzer-side numbers.
type rankPass struct {
	rank  int32
	stack []openState
	// Self-time split one level finer than the profile's busy/blocked:
	// output-blocked is its own bucket because clean Pilot writes are
	// eager (≈0s), making it the dominator detector's zero-FP signal.
	outBlockedSec float64
	inBlockedSec  float64
	busySec       float64
	wall0, wall1  float64
	haveWall      bool
	states        map[int32]*rankState
}

// rankState tracks one state's occurrences on one rank: enough to
// attribute a global outlier to its rank and start time.
type rankState struct {
	name     string
	count    int64
	max      float64
	maxStart float64
	second   float64
}

// chanPass records one channel's message timing.
type chanPass struct {
	ch        int32
	sends     []float64
	recvs     []float64
	sendCount int64
	recvCount int64
	sendRanks map[int32]bool
	recvRanks map[int32]bool
}

// faultEvent is one FaultInjected/Deadlock solo event from the trace.
type faultEvent struct {
	time  float64
	rank  int32
	name  string // event def name
	cargo string
}

// collector is the analyzer's one-pass state.
type collector struct {
	opts     Options
	numRanks int
	records  int64
	wall0    float64
	wall1    float64
	haveWall bool

	startOf   map[int32]int32
	endOf     map[int32]int32
	stateName map[int32]string
	eventName map[int32]string

	ranks     map[int32]*rankPass
	chans     map[int32]*chanPass
	msgEvents int
	truncated bool
	faults    []faultEvent
}

func newCollector(opts Options) *collector {
	return &collector{
		opts:      opts,
		startOf:   map[int32]int32{},
		endOf:     map[int32]int32{},
		stateName: map[int32]string{},
		eventName: map[int32]string{},
		ranks:     map[int32]*rankPass{},
		chans:     map[int32]*chanPass{},
	}
}

func (c *collector) rank(id int32) *rankPass {
	rp := c.ranks[id]
	if rp == nil {
		rp = &rankPass{rank: id, states: map[int32]*rankState{}}
		c.ranks[id] = rp
	}
	return rp
}

func (c *collector) channel(id int32) *chanPass {
	cp := c.chans[id]
	if cp == nil {
		cp = &chanPass{ch: id, sendRanks: map[int32]bool{}, recvRanks: map[int32]bool{}}
		c.chans[id] = cp
	}
	return cp
}

// classify maps a state-space etype to (state ID, isStart, name) with
// the same parity fallback the profiler and salvage use, so defs-less
// logs still pair.
func (c *collector) classify(etype int32) (int32, bool, string) {
	if id, ok := c.startOf[etype]; ok {
		return id, true, c.stateName[id]
	}
	if id, ok := c.endOf[etype]; ok {
		return id, false, c.stateName[id]
	}
	id := etype / 2
	name := fmt.Sprintf("state %d", id)
	return id, etype%2 == 0, name
}

func (c *collector) addRecord(rec *clog2.Record) {
	switch rec.Type {
	case clog2.RecStateDef:
		c.startOf[rec.Aux1] = rec.ID
		c.endOf[rec.Aux2] = rec.ID
		c.stateName[rec.ID] = rec.Name
		return
	case clog2.RecEventDef:
		c.eventName[rec.ID] = rec.Name
		return
	case clog2.RecConstDef, clog2.RecSrcLoc, clog2.RecEndBlock, clog2.RecEndLog:
		return
	}
	// Hostile traces can carry NaN/Inf timestamps; every timing
	// computation below assumes finite time, so drop such records the
	// way a window drops out-of-range ones.
	if math.IsNaN(rec.Time) || math.IsInf(rec.Time, 0) {
		return
	}
	if rec.Time < c.opts.T0 || rec.Time > c.opts.T1 {
		return
	}
	c.records++
	if !c.haveWall || rec.Time < c.wall0 {
		c.wall0 = rec.Time
	}
	if !c.haveWall || rec.Time > c.wall1 {
		c.wall1 = rec.Time
	}
	c.haveWall = true

	rp := c.rank(rec.Rank)
	if !rp.haveWall || rec.Time < rp.wall0 {
		rp.wall0 = rec.Time
	}
	if !rp.haveWall || rec.Time > rp.wall1 {
		rp.wall1 = rec.Time
	}
	rp.haveWall = true

	switch rec.Type {
	case clog2.RecMsgEvt:
		cp := c.channel(rec.Aux2)
		if rec.Dir == clog2.DirSend {
			cp.sendCount++
			cp.sendRanks[rec.Rank] = true
		} else {
			cp.recvCount++
			cp.recvRanks[rec.Rank] = true
		}
		if c.msgEvents >= c.opts.MaxMsgEvents {
			c.truncated = true
			return
		}
		c.msgEvents++
		if rec.Dir == clog2.DirSend {
			cp.sends = append(cp.sends, rec.Time)
		} else {
			cp.recvs = append(cp.recvs, rec.Time)
		}
	case clog2.RecBareEvt, clog2.RecCargoEvt:
		etype := rec.ID
		if etype >= soloBase {
			switch c.eventName[etype] {
			case faultEventName, deadlockEventName:
				c.faults = append(c.faults, faultEvent{
					time:  rec.Time,
					rank:  rec.Rank,
					name:  c.eventName[etype],
					cargo: rec.CargoText(),
				})
			}
			return
		}
		id, isStart, name := c.classify(etype)
		if isStart {
			rp.stack = append(rp.stack, openState{etype: etype, start: rec.Time})
			return
		}
		n := len(rp.stack)
		if n == 0 {
			return // unpaired end; the profile already accounts for it
		}
		top := rp.stack[n-1]
		rp.stack = rp.stack[:n-1]
		dur := rec.Time - top.start
		if dur < 0 {
			dur = 0
		}
		self := dur - top.childSec
		if self < 0 {
			self = 0
		}
		if len(rp.stack) > 0 {
			rp.stack[len(rp.stack)-1].childSec += dur
		}
		st := rp.states[id]
		if st == nil {
			st = &rankState{name: name}
			rp.states[id] = st
		}
		st.count++
		if dur > st.max {
			st.second = st.max
			st.max = dur
			st.maxStart = top.start
		} else if dur > st.second {
			st.second = dur
		}
		switch colors.CategoryOf(name) {
		case colors.Output:
			rp.outBlockedSec += self
		case colors.Input:
			rp.inBlockedSec += self
		default:
			rp.busySec += self
		}
	}
}

// scan feeds every record of the CLOG-2 stream through the collector.
func (c *collector) scan(r io.Reader) error {
	br, err := clog2.NewBlockReader(r)
	if err != nil {
		return err
	}
	c.numRanks = br.NumRanks()
	var buf []clog2.Record
	for {
		b, err := br.NextReuse(buf)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		buf = b.Records
		for i := range b.Records {
			c.addRecord(&b.Records[i])
		}
	}
}

// wallSec is the whole-trace record time span.
func (c *collector) wallSec() float64 {
	if !c.haveWall {
		return 0
	}
	return c.wall1 - c.wall0
}

// Analyze runs the detector catalogue over a CLOG-2 stream. The
// profile is computed from the same stream (the reader must deliver
// the whole file); use AnalyzeFile to reuse sidecars and the index.
func Analyze(r io.Reader, opts Options) (*Report, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return AnalyzeBytes(data, opts)
}

// AnalyzeBytes analyzes an in-memory CLOG-2 image: the collection pass
// plus a profile recomputation over the same bytes.
func AnalyzeBytes(data []byte, opts Options) (*Report, error) {
	opts = opts.withDefaults()
	c := newCollector(opts)
	if err := c.scan(bytes.NewReader(data)); err != nil {
		return nil, fmt.Errorf("analyze: %w", err)
	}
	prof, err := stats.ComputeProfileWindowed(bytes.NewReader(data), opts.T0, opts.T1)
	if err != nil {
		return nil, fmt.Errorf("analyze: profile: %w", err)
	}
	return buildReport(c, prof, opts, "computed", false), nil
}

// AnalyzeFile analyzes a CLOG-2 file. For whole-run analyses a
// matching "<base>.profile.json" sidecar is reused instead of
// recomputing the profile (validated against the trace's own record
// count); windowed analyses go through stats' index-accelerated
// windowed profile, falling back to the full scan like every other
// ".idx" consumer.
func AnalyzeFile(path string, opts Options) (*Report, error) {
	opts = opts.withDefaults()
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	c := newCollector(opts)
	scanErr := c.scan(fh)
	fh.Close()
	if scanErr != nil {
		return nil, fmt.Errorf("analyze: %s: %w", path, scanErr)
	}

	wholeRun := math.IsInf(opts.T0, -1) && math.IsInf(opts.T1, 1)
	if wholeRun {
		if prof := sidecarProfile(path, c.records); prof != nil {
			return buildReport(c, prof, opts, "sidecar", false), nil
		}
	}
	prof, usedIndex, err := stats.ComputeProfileFileWindowed(path, opts.T0, opts.T1)
	if err != nil {
		return nil, fmt.Errorf("analyze: %s: profile: %w", path, err)
	}
	return buildReport(c, prof, opts, "computed", usedIndex), nil
}

// sidecarProfile loads "<base>.profile.json" next to a ".clog2" when
// it exists, parses, and agrees with the trace's record count;
// anything else returns nil and the profile is recomputed.
func sidecarProfile(clogPath string, wantRecords int64) *stats.Profile {
	base, ok := strings.CutSuffix(clogPath, ".clog2")
	if !ok {
		return nil
	}
	data, err := os.ReadFile(base + ".profile.json")
	if err != nil {
		return nil
	}
	var p stats.Profile
	if err := json.Unmarshal(data, &p); err != nil {
		return nil
	}
	if p.Schema != stats.ProfileSchema || p.Totals.Records != wantRecords {
		return nil
	}
	return &p
}

func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
