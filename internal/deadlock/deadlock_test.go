package deadlock

import (
	"math/rand"
	"strings"
	"testing"
)

func TestNoWaitsNoDeadlock(t *testing.T) {
	g := New()
	if rep := g.Check(); rep != nil {
		t.Fatalf("empty graph reported deadlock: %v", rep)
	}
}

func TestSingleWaitOnRunningPeer(t *testing.T) {
	g := New()
	g.SetWait(1, Wait{Op: "PI_Read", Peers: []int{2}})
	if rep := g.Check(); rep != nil {
		t.Fatalf("wait on running peer reported deadlock: %v", rep)
	}
}

func TestTwoCycle(t *testing.T) {
	// The classic: A reads from B while B reads from A.
	g := New()
	g.SetWait(1, Wait{Op: "PI_Read", Peers: []int{2}})
	g.SetWait(2, Wait{Op: "PI_Read", Peers: []int{1}})
	rep := g.Check()
	if rep == nil {
		t.Fatal("read/read cycle not detected")
	}
	if len(rep.Procs) != 2 || rep.Procs[0] != 1 || rep.Procs[1] != 2 {
		t.Fatalf("stuck set %v, want [1 2]", rep.Procs)
	}
}

func TestThreeCycle(t *testing.T) {
	g := New()
	g.SetWait(1, Wait{Op: "PI_Read", Peers: []int{2}})
	g.SetWait(2, Wait{Op: "PI_Read", Peers: []int{3}})
	g.SetWait(3, Wait{Op: "PI_Write", Peers: []int{1}})
	rep := g.Check()
	if rep == nil || len(rep.Procs) != 3 {
		t.Fatalf("3-cycle: %v", rep)
	}
}

func TestChainIntoCycleDragsTail(t *testing.T) {
	// 4 waits on 1; 1 and 2 are cyclic: all three are stuck.
	g := New()
	g.SetWait(1, Wait{Peers: []int{2}})
	g.SetWait(2, Wait{Peers: []int{1}})
	g.SetWait(4, Wait{Peers: []int{1}})
	rep := g.Check()
	if rep == nil || len(rep.Procs) != 3 {
		t.Fatalf("chain into cycle: %v", rep)
	}
}

func TestWaitOnExited(t *testing.T) {
	g := New()
	g.SetExited(5)
	g.SetWait(1, Wait{Op: "PI_Read", Peers: []int{5}, Loc: "app.go:42"})
	rep := g.Check()
	if rep == nil || len(rep.Procs) != 1 || rep.Procs[0] != 1 {
		t.Fatalf("wait on exited: %v", rep)
	}
	if !strings.Contains(rep.String(), "app.go:42") {
		t.Errorf("report lacks source location: %q", rep.String())
	}
	if !strings.Contains(rep.String(), "PI_Read") {
		t.Errorf("report lacks op name: %q", rep.String())
	}
}

func TestClearWaitResolves(t *testing.T) {
	g := New()
	g.SetWait(1, Wait{Peers: []int{2}})
	g.SetWait(2, Wait{Peers: []int{1}})
	g.ClearWait(2)
	if rep := g.Check(); rep != nil {
		t.Fatalf("cleared wait still deadlocked: %v", rep)
	}
}

func TestSelectAnyOfNeedsAllPeersStuck(t *testing.T) {
	g := New()
	// P1 selects on {2,3}. P2 is stuck in a cycle with P4, but P3 runs.
	g.SetWait(1, Wait{Op: "PI_Select", Peers: []int{2, 3}, AnyOf: true})
	g.SetWait(2, Wait{Peers: []int{4}})
	g.SetWait(4, Wait{Peers: []int{2}})
	rep := g.Check()
	if rep == nil {
		t.Fatal("cycle 2<->4 not detected")
	}
	for _, p := range rep.Procs {
		if p == 1 {
			t.Fatal("select with a live peer flagged as stuck")
		}
	}
	// Now P3 exits: every select peer is unable to act.
	g.SetExited(3)
	rep = g.Check()
	found := false
	for _, p := range rep.Procs {
		if p == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("select with all peers stuck not flagged: %v", rep.Procs)
	}
}

func TestAllOfCollectiveWait(t *testing.T) {
	g := New()
	// Gather endpoint 0 waits on workers 1, 2, 3; worker 2 waits on 0:
	// a collective cycle.
	g.SetWait(0, Wait{Op: "PI_Gather", Peers: []int{1, 2, 3}})
	g.SetWait(2, Wait{Op: "PI_Read", Peers: []int{0}})
	rep := g.Check()
	if rep == nil {
		t.Fatal("collective cycle not detected")
	}
	if len(rep.Procs) != 2 {
		t.Fatalf("stuck set %v, want [0 2]", rep.Procs)
	}
}

func TestSelectEmptyPeers(t *testing.T) {
	g := New()
	g.SetWait(1, Wait{Op: "PI_Select", AnyOf: true})
	if rep := g.Check(); rep == nil {
		t.Fatal("select on nothing should be stuck")
	}
}

func TestExitedProcessIsNotItselfStuck(t *testing.T) {
	g := New()
	g.SetWait(3, Wait{Peers: []int{4}})
	g.SetExited(3)
	if rep := g.Check(); rep != nil {
		t.Fatalf("exited process reported stuck: %v", rep)
	}
}

func TestWaitingQuery(t *testing.T) {
	g := New()
	if g.Waiting(1) {
		t.Fatal("fresh graph reports waiting")
	}
	g.SetWait(1, Wait{Peers: []int{2}})
	if !g.Waiting(1) {
		t.Fatal("SetWait not visible")
	}
	g.ClearWait(1)
	if g.Waiting(1) {
		t.Fatal("ClearWait not visible")
	}
}

// Property test on single-wait graphs: a waiting process is stuck exactly
// when following its wait chain reaches a cycle or an exited process.
func TestSingleWaitChainsProperty(t *testing.T) {
	const n = 12
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := New()
		target := make([]int, n) // -1 = running
		exited := make([]bool, n)
		for p := 0; p < n; p++ {
			switch rng.Intn(3) {
			case 0:
				target[p] = -1
			case 1:
				target[p] = -1
				exited[p] = true
				g.SetExited(p)
			default:
				q := rng.Intn(n)
				for q == p {
					q = rng.Intn(n)
				}
				target[p] = q
				g.SetWait(p, Wait{Peers: []int{q}})
			}
		}
		// Reference: follow the chain.
		stuckRef := func(p int) bool {
			if target[p] < 0 {
				return false
			}
			seen := map[int]bool{}
			cur := p
			for {
				if seen[cur] {
					return true // cycle
				}
				seen[cur] = true
				nxt := target[cur]
				if exited[cur] && cur != p {
					return true
				}
				if nxt < 0 {
					// cur is running (or exited); p is stuck iff cur exited
					return exited[cur]
				}
				cur = nxt
			}
		}
		rep := g.Check()
		got := map[int]bool{}
		if rep != nil {
			for _, p := range rep.Procs {
				got[p] = true
			}
		}
		for p := 0; p < n; p++ {
			if exited[p] || target[p] < 0 {
				if got[p] {
					t.Fatalf("seed %d: non-waiting P%d flagged", seed, p)
				}
				continue
			}
			want := stuckRef(p)
			if got[p] != want {
				t.Fatalf("seed %d: P%d stuck=%v, want %v (targets=%v exited=%v)",
					seed, p, got[p], want, target, exited)
			}
		}
	}
}

// Regression: an all-of wait with an empty Peers list is a wait on nobody
// — it resolves immediately and must not be reported as deadlocked. Before
// the fix, Check marked every empty-peer non-AnyOf wait permanently
// unjustifiable.
func TestEmptyPeersAllOfNotDeadlocked(t *testing.T) {
	g := New()
	g.SetWait(1, Wait{Op: "PI_Write", Peers: nil})
	if rep := g.Check(); rep != nil {
		t.Fatalf("empty all-of wait reported deadlocked:\n%s", rep)
	}
	// And it must still justify processes waiting on it transitively.
	g.SetWait(2, Wait{Op: "PI_Read", Peers: []int{1}})
	if rep := g.Check(); rep != nil {
		t.Fatalf("wait on an empty-wait process reported deadlocked:\n%s", rep)
	}
}

// An any-of wait with no peers can never be resolved by anyone: it is a
// PI_Select over nothing and stays stuck.
func TestEmptyPeersAnyOfIsDeadlocked(t *testing.T) {
	g := New()
	g.SetWait(1, Wait{Op: "PI_Select", Peers: nil, AnyOf: true})
	rep := g.Check()
	if rep == nil || len(rep.Procs) != 1 || rep.Procs[0] != 1 {
		t.Fatalf("empty any-of wait: got %v, want P1 stuck", rep)
	}
}
