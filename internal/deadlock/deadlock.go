// Package deadlock implements the wait-for-graph analysis behind Pilot's
// integrated deadlock detector ("not reliant on any third-party tools").
// Pilot runs the detector in a dedicated service process that receives an
// event before each potentially blocking operation and after it completes;
// this package is the pure analysis those events feed.
//
// The model: each process is either running, waiting, or exited. A wait
// names the peer processes that must act for the operation to complete —
// all of them for a point-to-point or collective operation, any one of
// them for PI_Select. A set of processes is deadlocked when none of its
// members can ever move: classic read/read cycles, writes waiting on each
// other through rendezvous, and reads from processes that have already
// exited are all caught by the same fixpoint.
package deadlock

import (
	"fmt"
	"sort"
	"strings"
)

// Wait describes one blocked operation.
type Wait struct {
	// Op is the Pilot operation name, e.g. "PI_Read".
	Op string
	// Peers are the processes that must act for this wait to resolve.
	Peers []int
	// AnyOf marks waits resolved by any single peer (PI_Select); when
	// false every peer must act (point-to-point and collectives).
	AnyOf bool
	// Loc is the source location of the call, for diagnostics.
	Loc string
}

// Graph tracks the current wait state of every process.
type Graph struct {
	waits  map[int]Wait
	exited map[int]bool
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{waits: map[int]Wait{}, exited: map[int]bool{}}
}

// SetWait records that proc is blocked on w, replacing any previous wait.
func (g *Graph) SetWait(proc int, w Wait) {
	g.waits[proc] = w
}

// ClearWait records that proc's blocking operation completed.
func (g *Graph) ClearWait(proc int) {
	delete(g.waits, proc)
}

// SetExited records that proc's work function returned; it will never act
// again, so waits on it can only be satisfied by traffic already in
// flight.
func (g *Graph) SetExited(proc int) {
	g.exited[proc] = true
	delete(g.waits, proc)
}

// Waiting reports whether proc currently has a recorded wait.
func (g *Graph) Waiting(proc int) bool {
	_, ok := g.waits[proc]
	return ok
}

// Report describes a detected deadlock.
type Report struct {
	// Procs is the sorted set of stuck processes.
	Procs []int
	// Waits maps each stuck process to its blocked operation.
	Waits map[int]Wait
}

// String renders the report as the multi-line diagnostic Pilot prints.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "DEADLOCK: %d process(es) cannot proceed:\n", len(r.Procs))
	for _, p := range r.Procs {
		w := r.Waits[p]
		mode := "all of"
		if w.AnyOf {
			mode = "any of"
		}
		fmt.Fprintf(&b, "  P%d blocked in %s waiting on %s %v", p, w.Op, mode, w.Peers)
		if w.Loc != "" {
			fmt.Fprintf(&b, " at %s", w.Loc)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Check runs the fixpoint and returns a report of stuck processes, or nil
// when every waiting process can still make progress.
//
// The analysis computes the least fixpoint of "can move": running
// processes can move; exited processes cannot act; a waiting process can
// move once all (or, for AnyOf, at least one) of its peers are known to be
// able to move. Progress must therefore be justified transitively from a
// running process — members of a wait cycle never acquire it, and neither
// do processes waiting on the exited. Waiting processes left outside the
// fixpoint are deadlocked.
func (g *Graph) Check() *Report {
	// false until justified; absent = running (movable) unless exited.
	canMove := map[int]bool{}
	for p := range g.waits {
		canMove[p] = false
	}
	peerCanMove := func(q int) bool {
		if g.exited[q] {
			return false
		}
		if cm, ok := canMove[q]; ok {
			return cm
		}
		return true // not waiting, not exited: running
	}
	for changed := true; changed; {
		changed = false
		for p, w := range g.waits {
			if canMove[p] {
				continue
			}
			// An all-of wait with no peers is vacuously satisfied — a wait
			// on nobody resolves immediately and must never be reported as
			// deadlocked. An any-of wait with no peers is the opposite: no
			// peer can ever act, so it stays unjustified (and stuck).
			ok := !w.AnyOf
			if w.AnyOf {
				for _, q := range w.Peers {
					if peerCanMove(q) {
						ok = true
						break
					}
				}
			} else {
				for _, q := range w.Peers {
					if !peerCanMove(q) {
						ok = false
						break
					}
				}
			}
			if ok {
				canMove[p] = true
				changed = true
			}
		}
	}
	var stuck []int
	for p := range g.waits {
		if !canMove[p] {
			stuck = append(stuck, p)
		}
	}
	if len(stuck) == 0 {
		return nil
	}
	sort.Ints(stuck)
	rep := &Report{Procs: stuck, Waits: map[int]Wait{}}
	for _, p := range stuck {
		rep.Waits[p] = g.waits[p]
	}
	return rep
}
