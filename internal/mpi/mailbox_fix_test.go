package mpi

// Regression tests for the mailbox matching fixes: the put wake-pass must
// never hand a consumed envelope to a probe waiter, take must not pin a
// consumed envelope through the compacted queue's tail slot, and the
// receive side must validate its arguments as strictly as the send side
// (a typo'd tag must fail fast, not block forever).

import (
	"strings"
	"testing"
	"time"
)

// waitForWaiters polls until the mailbox has n registered waiters.
func waitForWaiters(t *testing.T, b *mailbox, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		b.mu.Lock()
		got := len(b.waiters)
		b.mu.Unlock()
		if got == n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("mailbox never reached %d waiters (have %d)", n, got)
		}
		time.Sleep(time.Millisecond)
	}
}

// A probe waiter registered behind a take waiter must not be woken by the
// envelope the take consumes: probe promises that a subsequent receive
// can match what it reported, and a consumed envelope no longer exists.
func TestPutDoesNotHandConsumedEnvelopeToProbe(t *testing.T) {
	b := newMailbox()

	takeGot := make(chan *Envelope, 1)
	go func() {
		if env, ok := b.take(CtxUser, 0, 5); ok {
			takeGot <- env
		}
	}()
	waitForWaiters(t, b, 1)

	probeGot := make(chan Status, 1)
	go func() {
		if st, ok := b.probe(CtxUser, 0, 5, true); ok {
			probeGot <- st
		}
	}()
	waitForWaiters(t, b, 2)

	if !b.put(&Envelope{Ctx: CtxUser, Src: 0, Tag: 5, Data: []byte("one")}) {
		t.Fatal("put failed")
	}
	select {
	case env := <-takeGot:
		if string(env.Data) != "one" {
			t.Fatalf("take got %q, want %q", env.Data, "one")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("take waiter never woke")
	}
	select {
	case st := <-probeGot:
		t.Fatalf("probe reported %+v for an envelope the take had already consumed", st)
	case <-time.After(50 * time.Millisecond):
	}

	// A second envelope satisfies the probe AND stays receivable.
	if !b.put(&Envelope{Ctx: CtxUser, Src: 0, Tag: 5, Data: []byte("two")}) {
		t.Fatal("second put failed")
	}
	select {
	case st := <-probeGot:
		if st.Source != 0 || st.Tag != 5 || st.Len != 3 {
			t.Fatalf("probe status %+v", st)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("probe never woke for the second envelope")
	}
	env, ok := b.take(CtxUser, 0, 5)
	if !ok || string(env.Data) != "two" {
		t.Fatalf("probed envelope not receivable: ok=%v data=%q", ok, env.Data)
	}
}

// In the reverse registration order one put may serve both: the probe
// observes the envelope and the take behind it consumes it — exactly the
// queue semantics (a queued envelope is probed, then received).
func TestPutServesProbeRegisteredBeforeTake(t *testing.T) {
	b := newMailbox()

	probeGot := make(chan Status, 1)
	go func() {
		if st, ok := b.probe(CtxUser, AnySource, AnyTag, true); ok {
			probeGot <- st
		}
	}()
	waitForWaiters(t, b, 1)

	takeGot := make(chan *Envelope, 1)
	go func() {
		if env, ok := b.take(CtxUser, AnySource, AnyTag); ok {
			takeGot <- env
		}
	}()
	waitForWaiters(t, b, 2)

	if !b.put(&Envelope{Ctx: CtxUser, Src: 2, Tag: 9, Data: []byte("both")}) {
		t.Fatal("put failed")
	}
	select {
	case st := <-probeGot:
		if st.Source != 2 || st.Tag != 9 || st.Len != 4 {
			t.Fatalf("probe status %+v", st)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("probe waiter never woke")
	}
	select {
	case env := <-takeGot:
		if string(env.Data) != "both" {
			t.Fatalf("take got %q", env.Data)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("take waiter never woke")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.queue) != 0 {
		t.Fatalf("consumed envelope still queued (%d entries)", len(b.queue))
	}
}

// Taking from the middle of the queue must nil the vacated tail slot so
// the consumed envelope's payload is not pinned until the slot is reused.
func TestTakeCompactionClearsVacatedSlot(t *testing.T) {
	b := newMailbox()
	for tag := 0; tag < 3; tag++ {
		if !b.put(&Envelope{Ctx: CtxUser, Src: 0, Tag: tag, Data: []byte{byte(tag)}}) {
			t.Fatalf("put tag %d failed", tag)
		}
	}
	env, ok := b.take(CtxUser, 0, 1) // the middle one
	if !ok || env.Tag != 1 {
		t.Fatalf("take = %+v, %v", env, ok)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.queue) != 2 {
		t.Fatalf("queue length %d, want 2", len(b.queue))
	}
	if tail := b.queue[:3][2]; tail != nil {
		t.Fatalf("vacated tail slot still pins the envelope with tag %d", tail.Tag)
	}
}

// The receive side must reject bad tags and contexts as promptly as the
// send side does: before the fix, Recv(1, -2) registered an unmatchable
// waiter and blocked forever.
func TestRecvSideValidation(t *testing.T) {
	w := NewWorld(2, Options{})
	r := w.Rank(0)
	cases := []struct {
		name string
		call func() error
		want string
	}{
		{"recv negative tag", func() error { _, err := r.Recv(1, -2); return err }, "invalid tag -2"},
		{"recv context too high", func() error { _, err := r.RecvCtx(numCtx, 1, 0); return err }, "invalid context"},
		{"recv negative context", func() error { _, err := r.RecvCtx(-1, 1, 0); return err }, "invalid context"},
		{"probe negative tag", func() error { _, err := r.Probe(1, -2); return err }, "invalid tag -2"},
		{"iprobe negative tag", func() error { _, _, err := r.Iprobe(1, -3); return err }, "invalid tag -3"},
		{"iprobe bad context", func() error { _, _, err := r.IprobeCtx(99, 1, 0); return err }, "invalid context 99"},
	}
	for _, tc := range cases {
		done := make(chan error, 1)
		go func() { done <- tc.call() }()
		select {
		case err := <-done:
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("%s: error %v, want one containing %q", tc.name, err, tc.want)
			}
		case <-time.After(2 * time.Second):
			t.Errorf("%s: blocked instead of failing fast", tc.name)
		}
	}
	// The wildcards themselves remain valid receive arguments.
	if _, ok, err := r.Iprobe(AnySource, AnyTag); err != nil || ok {
		t.Errorf("Iprobe(AnySource, AnyTag) on empty mailbox: ok=%v err=%v", ok, err)
	}
}
