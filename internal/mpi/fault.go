// Deterministic fault injection for the simulated MPI world.
//
// A FaultPlan, installed via Options.Faults, lets tests and demos provoke
// the failure modes a message-passing runtime is really about: delayed
// messages, a rank stalling or crashing at its Nth operation, per-rank
// clocks jumping mid-run, and eager sends forced into rendezvous. Every
// decision is drawn from a per-rank splitmix64 stream seeded from
// (Plan.Seed, rank), and probabilistic rules are evaluated in rule order
// once per counted operation — so a rank's fault decisions are a pure
// function of (seed, rules, that rank's own operation sequence), and any
// failing run replays exactly regardless of goroutine scheduling.
//
// Only user and collective context operations (Send, Recv, Barrier in
// CtxUser/CtxColl) are counted and faulted. Service traffic (deadlock
// detector) and the log-collection merge are never perturbed: the
// observers must stay reliable so an injected fault ends in a diagnosis,
// not in a corrupted diagnosis pipeline.
package mpi

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/clock"
)

// ErrRankCrashed is returned from every user/collective operation of a
// rank that a FaultPlan has crashed. In CrashStop mode only the crashed
// rank sees it; its peers must be diagnosed by the deadlock detector.
var ErrRankCrashed = errors.New("mpi: rank crashed by fault injection")

// FaultAbortCode is the abort code used when an injected crash tears down
// the whole world (CrashAbort mode, or any crash of rank 0).
const FaultAbortCode = 137

// AnyRank targets a FaultRule at every rank.
const AnyRank = -1

// FaultKind enumerates the injectable faults.
type FaultKind uint8

// The fault kinds.
const (
	// FaultDelay delays delivery of a message: the sender blocks for the
	// drawn duration before the message is enqueued (a slow link).
	FaultDelay FaultKind = iota + 1
	// FaultStall pauses the rank at the start of an operation.
	FaultStall
	// FaultCrash kills the rank at the start of an operation: every
	// subsequent user/collective operation fails with ErrRankCrashed.
	FaultCrash
	// FaultClockJump shifts the rank's wallclock by JumpSec seconds.
	// Negative jumps are clamped monotonic (the clock freezes until real
	// time catches up), as a real clock-step under NTP would be.
	FaultClockJump
	// FaultRendezvous forces an eager send to rendezvous, so the sender
	// blocks until the receiver matches the message.
	FaultRendezvous

	// The wire-level kinds below target the multi-process socket
	// transport's links rather than rank operations: Rank selects the
	// link (the non-hub rank it connects), Op the link-level frame
	// sequence number, and each decision is a pure function of (seed,
	// rule, link, direction, frame seq) — see wirefault.go. They are
	// no-ops on the in-process transport.

	// FaultWireDelay delays one frame's transmission on the wire.
	FaultWireDelay
	// FaultWireCorrupt flips bytes in a frame's body on the wire; the
	// link-layer CRC detects it and the frame is recovered by
	// retransmission.
	FaultWireCorrupt
	// FaultWireDup transmits a frame twice; the receiver's sequence
	// dedup drops the replay.
	FaultWireDup
	// FaultWireDrop closes the connection instead of transmitting the
	// frame (a clean connection kill; the frame stays in the unacked
	// window for retransmission after resume).
	FaultWireDrop
	// FaultWireReset writes a torn prefix of the frame and then closes
	// the connection (a mid-frame connection reset).
	FaultWireReset
	// FaultWireStall pauses the receiver after reading the selected
	// frame, so backpressure builds toward the writer.
	FaultWireStall
)

// wire reports whether the kind targets the socket transport's links.
func (k FaultKind) wire() bool { return k >= FaultWireDelay && k <= FaultWireStall }

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	switch k {
	case FaultDelay:
		return "delay"
	case FaultStall:
		return "stall"
	case FaultCrash:
		return "crash"
	case FaultClockJump:
		return "jump"
	case FaultRendezvous:
		return "rendezvous"
	case FaultWireDelay:
		return "wiredelay"
	case FaultWireCorrupt:
		return "wirecorrupt"
	case FaultWireDup:
		return "wiredup"
	case FaultWireDrop:
		return "wiredrop"
	case FaultWireReset:
		return "wirereset"
	case FaultWireStall:
		return "wirestall"
	}
	return fmt.Sprintf("FaultKind(%d)", uint8(k))
}

// CrashMode selects what an injected FaultCrash does to the rest of the
// job.
type CrashMode uint8

// The crash modes.
const (
	// CrashAuto lets the layer above decide; the mpi layer treats it as
	// CrashAbort so a crash can never leave an undiagnosable hang by
	// default. Pilot's runtime switches to CrashStop when the deadlock
	// detector is on, so the crash is *diagnosed* instead of unwound.
	CrashAuto CrashMode = iota
	// CrashStop silently stops the crashed rank; peers keep running (and
	// potentially blocking on it). Rank 0 crashes still abort: as in a
	// real MPI job, losing the rank that drives the program tears the job
	// down.
	CrashStop
	// CrashAbort tears down the whole world (MPI job teardown): every
	// blocked operation on every rank fails with ErrAborted.
	CrashAbort
)

// FaultRule is one injection rule. Rules fire per rank: Op-indexed rules
// fire exactly once, at the rank's Op'th counted operation; probabilistic
// rules (Op == 0) draw once per applicable operation.
type FaultRule struct {
	// Kind selects the fault.
	Kind FaultKind
	// Rank targets one rank, or AnyRank for all.
	Rank int
	// Op fires the rule at the target rank's Op'th counted operation
	// (1-based). 0 means probabilistic: see Prob.
	Op int
	// Prob is the per-operation firing probability for Op == 0 rules.
	Prob float64
	// Delay is the stall duration (FaultStall) or the maximum delivery
	// delay (FaultDelay; the drawn delay is uniform in [Delay/2, Delay]).
	Delay time.Duration
	// JumpSec is the clock shift for FaultClockJump, in seconds.
	JumpSec float64
}

// opGranular reports whether the rule fires at operation granularity
// (any counted op) rather than only on sends.
func (f FaultRule) opGranular() bool {
	return f.Kind == FaultStall || f.Kind == FaultCrash || f.Kind == FaultClockJump
}

func (f FaultRule) appliesTo(rank int) bool {
	return f.Rank == AnyRank || f.Rank == rank
}

// FaultPlan is a deterministic fault-injection schedule for a World.
type FaultPlan struct {
	// Seed feeds the per-rank decision PRNGs. The same (Seed, Rules) on
	// the same program replays the same faults.
	Seed int64
	// Rules are evaluated in order on every counted operation.
	Rules []FaultRule
	// Mode selects crash teardown behaviour (see CrashMode).
	Mode CrashMode
	// OnFault, when non-nil, is called on the faulting rank's goroutine
	// at the moment each fault fires (before any sleep or teardown).
	OnFault func(FaultEvent)
}

func (p *FaultPlan) hasKind(k FaultKind) bool {
	for _, r := range p.Rules {
		if r.Kind == k {
			return true
		}
	}
	return false
}

// FaultEvent records one fired fault.
type FaultEvent struct {
	Kind FaultKind
	// Rank is the faulted rank; Op its counted operation index (1-based)
	// at the moment of firing; Rule the index of the rule that fired.
	Rank, Rule int
	Op         int64
	// Delay is the applied delay/stall; JumpSec the applied clock shift.
	Delay   time.Duration
	JumpSec float64
}

// String renders the event compactly (and deterministically: no
// wallclock), e.g. "crash rank=2 op=40" or "delay rank=1 op=7 d=1.5ms".
func (e FaultEvent) String() string {
	s := fmt.Sprintf("%s rank=%d op=%d", e.Kind, e.Rank, e.Op)
	if e.Delay > 0 {
		s += fmt.Sprintf(" d=%s", e.Delay)
	}
	if e.JumpSec != 0 {
		s += fmt.Sprintf(" sec=%+g", e.JumpSec)
	}
	return s
}

// faultState is the per-world injection state.
type faultState struct {
	plan    FaultPlan
	perRank []*rankFaults

	mu     sync.Mutex
	events []FaultEvent
}

// rankFaults is one rank's decision stream. All fields are guarded by mu;
// operations of a rank normally run on one goroutine, but the lock keeps
// the layer race-clean under any use.
type rankFaults struct {
	mu      sync.Mutex
	rng     uint64
	op      int64
	crashed bool
	fired   []bool // per-rule, for Op-indexed once-only rules
}

func newFaultState(plan FaultPlan, size int) *faultState {
	fs := &faultState{plan: plan, perRank: make([]*rankFaults, size)}
	for i := range fs.perRank {
		// Distinct, seed-derived stream per rank; one warmup scramble so
		// small seeds and ranks do not yield correlated streams.
		st := uint64(plan.Seed)*0x9e3779b97f4a7c15 + uint64(i+1)*0xbf58476d1ce4e5b9
		splitmix(&st)
		fs.perRank[i] = &rankFaults{rng: st, fired: make([]bool, len(plan.Rules))}
	}
	return fs
}

// splitmix advances a splitmix64 state and returns the next value.
func splitmix(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// unitFrom draws a float64 in [0, 1) from a splitmix64 state.
func unitFrom(state *uint64) float64 {
	return float64(splitmix(state)>>11) / (1 << 53)
}

// unit draws a float64 in [0, 1).
func (rf *rankFaults) unit() float64 { return unitFrom(&rf.rng) }

func (fs *faultState) record(ev FaultEvent) {
	fs.mu.Lock()
	fs.events = append(fs.events, ev)
	fs.mu.Unlock()
	if fs.plan.OnFault != nil {
		fs.plan.OnFault(ev)
	}
}

// recordWire logs a wire-level fault event. Unlike record it never calls
// plan.OnFault: wire faults fire on transport goroutines, not on the
// faulting rank's own goroutine, and OnFault implementations (the
// runtime's MPE fault logger) assume the latter. Wire events still show
// up in FaultEvents for replay assertions.
func (fs *faultState) recordWire(ev FaultEvent) {
	fs.mu.Lock()
	fs.events = append(fs.events, ev)
	fs.mu.Unlock()
}

// FaultEvents returns every fault fired so far, sorted by (rank, op,
// rule) — a scheduling-independent order, so two runs of the same seeded
// plan over the same program yield identical slices.
func (w *World) FaultEvents() []FaultEvent {
	if w.faults == nil {
		return nil
	}
	w.faults.mu.Lock()
	out := append([]FaultEvent(nil), w.faults.events...)
	w.faults.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Rank != b.Rank {
			return a.Rank < b.Rank
		}
		if a.Op != b.Op {
			return a.Op < b.Op
		}
		return a.Rule < b.Rule
	})
	return out
}

// faulted reports whether ctx operations are subject to injection.
func faultedCtx(ctx int) bool { return ctx == CtxUser || ctx == CtxColl }

// crashedErr is the cheap check used by non-counted operations (Probe,
// Iprobe): a crashed rank can do nothing in the user world.
func (w *World) crashedErr(id, ctx int) error {
	if w.faults == nil || !faultedCtx(ctx) {
		return nil
	}
	rf := w.faults.perRank[id]
	rf.mu.Lock()
	crashed := rf.crashed
	rf.mu.Unlock()
	if crashed {
		return ErrRankCrashed
	}
	return nil
}

// faultDecision is what one counted operation must apply.
type faultDecision struct {
	crash      bool
	stall      time.Duration
	delay      time.Duration
	jump       float64
	rendezvous bool
	events     []FaultEvent
}

// decide counts one operation on rank id and evaluates the rules.
// isSend enables the message-granular kinds (delay, rendezvous).
func (fs *faultState) decide(id int, isSend bool) (faultDecision, error) {
	rf := fs.perRank[id]
	rf.mu.Lock()
	if rf.crashed {
		rf.mu.Unlock()
		return faultDecision{}, ErrRankCrashed
	}
	rf.op++
	var d faultDecision
	for i, rule := range fs.plan.Rules {
		if rule.Kind.wire() {
			continue // injected by the transport's links, not here
		}
		if !rule.appliesTo(id) {
			continue
		}
		if !rule.opGranular() && !isSend {
			continue
		}
		fire := false
		if rule.Op > 0 {
			fire = int64(rule.Op) == rf.op && !rf.fired[i]
		} else if rule.Prob > 0 {
			// Always consume exactly one draw per applicable op so the
			// stream position is a function of the op sequence alone.
			fire = rf.unit() < rule.Prob
		}
		if !fire {
			continue
		}
		rf.fired[i] = true
		ev := FaultEvent{Kind: rule.Kind, Rank: id, Rule: i, Op: rf.op}
		switch rule.Kind {
		case FaultCrash:
			rf.crashed = true
			d.crash = true
		case FaultStall:
			ev.Delay = rule.Delay
			d.stall += rule.Delay
		case FaultDelay:
			// Uniform in [Delay/2, Delay]: jittered but bounded.
			ev.Delay = rule.Delay/2 + time.Duration(rf.unit()*float64(rule.Delay)/2)
			d.delay += ev.Delay
		case FaultClockJump:
			ev.JumpSec = rule.JumpSec
			d.jump += rule.JumpSec
		case FaultRendezvous:
			d.rendezvous = true
		}
		d.events = append(d.events, ev)
		if d.crash {
			break // nothing after death
		}
	}
	rf.mu.Unlock()
	return d, nil
}

// faultOp applies the fault plan at the start of one counted operation.
// It returns ErrRankCrashed when the rank has (just or previously)
// crashed; the caller surfaces that error from the operation.
func (w *World) faultOp(id, ctx int, isSend bool) (delay time.Duration, rendezvous bool, err error) {
	if w.faults == nil || !faultedCtx(ctx) {
		return 0, false, nil
	}
	d, err := w.faults.decide(id, isSend)
	if err != nil {
		return 0, false, err
	}
	for _, ev := range d.events {
		w.faults.record(ev)
		w.metrics.FaultInjected(id)
	}
	if d.jump != 0 {
		if fc, ok := w.clocks[id].(*faultClock); ok {
			fc.jump(d.jump)
		}
	}
	if d.stall > 0 {
		w.faultSleep(d.stall)
	}
	if d.crash {
		if w.faults.plan.Mode != CrashStop || id == 0 {
			w.abort(FaultAbortCode)
		}
		return 0, false, ErrRankCrashed
	}
	return d.delay, d.rendezvous, nil
}

// faultSleep pauses without outliving the world: an abort cuts the sleep
// short so injected stalls never delay teardown.
func (w *World) faultSleep(d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-w.abortCh:
	}
}

// faultClock wraps a rank's clock so FaultClockJump can shift it mid-run.
// Readings are clamped monotonic, so a negative jump freezes the clock
// until the base catches up instead of running it backwards.
type faultClock struct {
	base clock.Source

	mu     sync.Mutex
	offset float64
	last   float64
}

// Now implements clock.Source.
func (c *faultClock) Now() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.base.Now() + c.offset
	if t < c.last {
		t = c.last
	}
	c.last = t
	return t
}

func (c *faultClock) jump(d float64) {
	c.mu.Lock()
	c.offset += d
	c.mu.Unlock()
}

// ParseFaultPlan parses the -faults spec grammar:
//
//	plan   := clause (';' clause)*
//	clause := "seed=" int
//	        | "mode=" ("auto" | "stop" | "abort")
//	        | kind [':' param (',' param)*]
//	kind   := "delay" | "stall" | "crash" | "jump" | "rendezvous"
//	        | "wiredelay" | "wirecorrupt" | "wiredup"
//	        | "wiredrop" | "wirereset" | "wirestall"
//	param  := "rank=" (int | '*')   target rank (wire kinds: link)  (default *)
//	        | "op=" int             fire at Nth op (wire kinds: at link
//	                                frame seq N)   (default: probabilistic)
//	        | "prob=" float         per-op probability
//	        | "dur=" duration       delay/stall length (Go syntax: 2ms, 1s)
//	        | "sec=" float          clock jump seconds
//
// The wire* kinds target the socket transport's links (see wirefault.go)
// and are inert on the in-process transport.
//
// Examples:
//
//	seed=42;delay:prob=0.25,dur=2ms;crash:rank=2,op=40;jump:rank=1,op=10,sec=0.5
//	seed=7;wirecorrupt:rank=1,prob=0.01;wiredrop:rank=*,op=20
func ParseFaultPlan(spec string) (*FaultPlan, error) {
	plan := &FaultPlan{}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		if v, ok := strings.CutPrefix(clause, "seed="); ok {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("mpi: fault spec: bad seed %q", v)
			}
			plan.Seed = n
			continue
		}
		if v, ok := strings.CutPrefix(clause, "mode="); ok {
			switch v {
			case "auto":
				plan.Mode = CrashAuto
			case "stop":
				plan.Mode = CrashStop
			case "abort":
				plan.Mode = CrashAbort
			default:
				return nil, fmt.Errorf("mpi: fault spec: unknown mode %q (auto, stop, abort)", v)
			}
			continue
		}
		rule, err := parseFaultRule(clause)
		if err != nil {
			return nil, err
		}
		plan.Rules = append(plan.Rules, rule)
	}
	if len(plan.Rules) == 0 {
		return nil, fmt.Errorf("mpi: fault spec %q has no rules", spec)
	}
	return plan, nil
}

func parseFaultRule(clause string) (FaultRule, error) {
	name, params, _ := strings.Cut(clause, ":")
	rule := FaultRule{Rank: AnyRank}
	switch strings.TrimSpace(name) {
	case "delay":
		rule.Kind = FaultDelay
	case "stall":
		rule.Kind = FaultStall
	case "crash":
		rule.Kind = FaultCrash
	case "jump":
		rule.Kind = FaultClockJump
	case "rendezvous":
		rule.Kind = FaultRendezvous
	case "wiredelay":
		rule.Kind = FaultWireDelay
	case "wirecorrupt":
		rule.Kind = FaultWireCorrupt
	case "wiredup":
		rule.Kind = FaultWireDup
	case "wiredrop":
		rule.Kind = FaultWireDrop
	case "wirereset":
		rule.Kind = FaultWireReset
	case "wirestall":
		rule.Kind = FaultWireStall
	default:
		return rule, fmt.Errorf("mpi: fault spec: unknown fault kind %q", name)
	}
	if params != "" {
		for _, p := range strings.Split(params, ",") {
			key, val, ok := strings.Cut(strings.TrimSpace(p), "=")
			if !ok {
				return rule, fmt.Errorf("mpi: fault spec: bad parameter %q in %q", p, clause)
			}
			var err error
			switch key {
			case "rank":
				if val == "*" {
					rule.Rank = AnyRank
				} else {
					rule.Rank, err = strconv.Atoi(val)
				}
			case "op":
				rule.Op, err = strconv.Atoi(val)
			case "prob":
				rule.Prob, err = strconv.ParseFloat(val, 64)
			case "dur":
				rule.Delay, err = time.ParseDuration(val)
			case "sec":
				rule.JumpSec, err = strconv.ParseFloat(val, 64)
			default:
				return rule, fmt.Errorf("mpi: fault spec: unknown parameter %q in %q", key, clause)
			}
			if err != nil {
				return rule, fmt.Errorf("mpi: fault spec: bad value %q for %q in %q", val, key, clause)
			}
		}
	}
	return rule, validateFaultRule(rule)
}

func validateFaultRule(r FaultRule) error {
	if r.Op < 0 {
		return fmt.Errorf("mpi: fault spec: negative op %d", r.Op)
	}
	if r.Prob < 0 || r.Prob > 1 {
		return fmt.Errorf("mpi: fault spec: probability %g out of [0,1]", r.Prob)
	}
	if r.Op == 0 && r.Prob == 0 {
		return fmt.Errorf("mpi: fault spec: %s rule needs op= or prob=", r.Kind)
	}
	switch r.Kind {
	case FaultDelay, FaultStall, FaultWireDelay, FaultWireStall:
		if r.Delay <= 0 {
			return fmt.Errorf("mpi: fault spec: %s rule needs dur= > 0", r.Kind)
		}
	case FaultClockJump:
		if r.JumpSec == 0 {
			return fmt.Errorf("mpi: fault spec: jump rule needs sec= != 0")
		}
	}
	if r.Kind.wire() && r.JumpSec != 0 {
		return fmt.Errorf("mpi: fault spec: %s rule takes no sec=", r.Kind)
	}
	return nil
}
