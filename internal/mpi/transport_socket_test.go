package mpi

// Socket transport tests that keep every rank inside this test process:
// the orchestrator listens with NoSpawn and the other ranks join over the
// unix socket from their own goroutines. One address space puts the
// join/orchestrate/routing paths under the race detector and the coverage
// profile; the spawned-process paths are exercised by the transport
// conformance tests.

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// socketWorlds starts an n-rank socket world in-process, one World per
// rank, and registers a cleanup that shuts the ranks down children-first
// (so the orchestrator's readers drain instead of waiting out the grace
// period).
func socketWorlds(t *testing.T, n int, opts Options) []*World {
	t.Helper()
	sock := filepath.Join(t.TempDir(), "world.sock")
	worlds := make([]*World, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for rank := 0; rank < n; rank++ {
		o := opts
		o.Transport = TransportSocket
		if rank == 0 {
			o.ListenAddr = sock
			o.NoSpawn = true
		} else {
			o.JoinAddr = "unix:" + sock
			o.JoinRank = rank
		}
		wg.Add(1)
		go func(rank int, o Options) {
			defer wg.Done()
			worlds[rank], errs[rank] = Start(n, o)
		}(rank, o)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d start: %v", rank, err)
		}
	}
	t.Cleanup(func() {
		for rank := n - 1; rank >= 0; rank-- {
			worlds[rank].Shutdown()
		}
	})
	return worlds
}

// runSocketRanks runs f as each world's local rank concurrently and
// returns the per-rank errors.
func runSocketRanks(t *testing.T, worlds []*World, f func(r *Rank) error) []error {
	t.Helper()
	out := make([]error, len(worlds))
	var wg sync.WaitGroup
	for rank, w := range worlds {
		wg.Add(1)
		go func(rank int, w *World) {
			defer wg.Done()
			out[rank] = w.Run(f)[rank]
		}(rank, w)
	}
	wg.Wait()
	return out
}

// Point-to-point over the wire: child-to-hub delivery, hub-relayed
// child-to-child delivery, wildcard matching, probe and iprobe, and a
// full barrier.
func TestSocketWorldBasics(t *testing.T) {
	worlds := socketWorlds(t, 3, Options{})
	if addr := worlds[0].Addr(); addr == "" {
		t.Error("orchestrator Addr() is empty")
	}
	errs := runSocketRanks(t, worlds, func(r *Rank) error {
		switch r.ID() {
		case 0:
			st, err := r.Probe(1, 7)
			if err != nil {
				return err
			}
			if st.Source != 1 || st.Tag != 7 || st.Len != 7 {
				return fmt.Errorf("probe status %+v", st)
			}
			m, err := r.Recv(st.Source, st.Tag)
			if err != nil {
				return err
			}
			if string(m.Data) != "to-zero" {
				return fmt.Errorf("got %q, want %q", m.Data, "to-zero")
			}
			if _, ok, err := r.Iprobe(AnySource, AnyTag); err != nil || ok {
				return fmt.Errorf("iprobe after drain: ok=%v err=%v", ok, err)
			}
		case 1:
			if err := r.Send(0, 7, []byte("to-zero")); err != nil {
				return err
			}
			if err := r.Send(2, 9, []byte("relayed")); err != nil {
				return err
			}
		case 2:
			m, err := r.Recv(AnySource, AnyTag)
			if err != nil {
				return err
			}
			if m.Source != 1 || m.Tag != 9 || string(m.Data) != "relayed" {
				return fmt.Errorf("relay delivered %+v %q", m.Status, m.Data)
			}
		}
		return r.Barrier()
	})
	for rank, err := range errs {
		if err != nil {
			t.Errorf("rank %d: %v", rank, err)
		}
	}
}

// Rendezvous semantics must survive the wire: a forced-rendezvous send
// may not return before the receiver has matched the message.
func TestSocketWorldRendezvous(t *testing.T) {
	worlds := socketWorlds(t, 2, Options{EagerLimit: -1})
	var matched atomic.Bool
	errs := runSocketRanks(t, worlds, func(r *Rank) error {
		if r.ID() == 0 {
			if err := r.Send(1, 1, []byte("rendezvous")); err != nil {
				return err
			}
			if !matched.Load() {
				return errors.New("rendezvous send returned before the receive matched")
			}
			return nil
		}
		r.Sleep(50 * time.Millisecond)
		matched.Store(true)
		m, err := r.Recv(0, 1)
		if err != nil {
			return err
		}
		if string(m.Data) != "rendezvous" {
			return fmt.Errorf("got %q", m.Data)
		}
		return nil
	})
	for rank, err := range errs {
		if err != nil {
			t.Errorf("rank %d: %v", rank, err)
		}
	}
}

// Collectives are built on SendCtx/RecvCtx, so they must work unchanged
// over the socket transport.
func TestSocketWorldCollectives(t *testing.T) {
	worlds := socketWorlds(t, 3, Options{})
	errs := runSocketRanks(t, worlds, func(r *Rank) error {
		got, err := r.Bcast(0, []byte("seed"))
		if err != nil {
			return err
		}
		if string(got) != "seed" {
			return fmt.Errorf("bcast delivered %q", got)
		}
		all, err := r.Gather(0, []byte{byte('a' + r.ID())})
		if err != nil {
			return err
		}
		if r.ID() == 0 {
			joined := ""
			for _, part := range all {
				joined += string(part)
			}
			if joined != "abc" {
				return fmt.Errorf("gather assembled %q", joined)
			}
		}
		return nil
	})
	for rank, err := range errs {
		if err != nil {
			t.Errorf("rank %d: %v", rank, err)
		}
	}
}

// An abort raised by any rank must fan out: every blocked operation on
// every rank fails with ErrAborted and every World records the code.
func TestSocketWorldAbortFanOut(t *testing.T) {
	worlds := socketWorlds(t, 3, Options{})
	errs := runSocketRanks(t, worlds, func(r *Rank) error {
		switch r.ID() {
		case 1:
			r.Sleep(30 * time.Millisecond)
			r.Abort(42)
			return nil
		default:
			_, err := r.Recv((r.ID()+2)%3, 1) // blocks until the abort lands
			return err
		}
	})
	if !errors.Is(errs[0], ErrAborted) || !errors.Is(errs[2], ErrAborted) {
		t.Errorf("blocked ranks returned %v / %v, want ErrAborted", errs[0], errs[2])
	}
	for rank, w := range worlds {
		if !w.Aborted() || w.AbortCode() != 42 {
			t.Errorf("world %d: aborted=%v code=%d, want code 42", rank, w.Aborted(), w.AbortCode())
		}
	}
}

// A clean goodbye carries the rank's traffic counters, so after every
// rank has shut down the orchestrator's totals are complete.
func TestSocketWorldTrafficFolding(t *testing.T) {
	worlds := socketWorlds(t, 3, Options{})
	errs := runSocketRanks(t, worlds, func(r *Rank) error {
		payload := []byte("0123456789")
		switch r.ID() {
		case 0:
			for got := 0; got < 5; got++ {
				if _, err := r.Recv(AnySource, AnyTag); err != nil {
					return err
				}
			}
		case 1:
			for i := 0; i < 3; i++ {
				if err := r.Send(0, 1, payload); err != nil {
					return err
				}
			}
		case 2:
			for i := 0; i < 2; i++ {
				if err := r.Send(0, 2, payload); err != nil {
					return err
				}
			}
		}
		return nil
	})
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	// Goodbyes first, then the orchestrator waits out its readers — after
	// which the remote counters must have been folded in.
	for rank := 2; rank >= 0; rank-- {
		if err := worlds[rank].Shutdown(); err != nil {
			t.Fatalf("rank %d shutdown: %v", rank, err)
		}
	}
	tot := worlds[0].TotalTraffic()
	if tot.Sent != 5 || tot.SentBytes != 50 || tot.Received != 5 || tot.RecvBytes != 50 {
		t.Errorf("TotalTraffic = %+v, want 5 msgs / 50 bytes each way", tot)
	}
	if tr := worlds[0].Traffic(1); tr.Sent != 3 || tr.SentBytes != 30 {
		t.Errorf("Traffic(1) = %+v, want 3 sends / 30 bytes folded from the BYE", tr)
	}
}

// A connection that drops without a BYE is a lost rank: the hub must
// abort the world with FaultAbortCode — the same code an injected crash
// uses, so the layers above fall back to spill salvage identically.
func TestSocketWorldLostRankAborts(t *testing.T) {
	worlds := socketWorlds(t, 2, Options{})
	done := make(chan error, 1)
	go func() {
		_, err := worlds[0].Rank(0).Recv(1, 1)
		done <- err
	}()
	// Sever rank 1's connection without a goodbye: a crash, as the hub
	// sees it.
	worlds[1].t.(*socketTransport).hub.c.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrAborted) {
			t.Fatalf("recv after lost rank: %v, want ErrAborted", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("lost rank did not abort the world")
	}
	if code := worlds[0].AbortCode(); code != FaultAbortCode {
		t.Fatalf("abort code %d, want FaultAbortCode %d", code, FaultAbortCode)
	}
}
