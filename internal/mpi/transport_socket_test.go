package mpi

// Socket transport tests that keep every rank inside this test process:
// the orchestrator listens with NoSpawn and the other ranks join over the
// unix socket from their own goroutines. One address space puts the
// join/orchestrate/routing paths under the race detector and the coverage
// profile; the spawned-process paths are exercised by the transport
// conformance tests.

import (
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/stats"
)

// socketWorlds starts an n-rank socket world in-process, one World per
// rank, and registers a cleanup that shuts the ranks down children-first
// (so the orchestrator's readers drain instead of waiting out the grace
// period).
func socketWorlds(t *testing.T, n int, opts Options) []*World {
	t.Helper()
	sock := filepath.Join(t.TempDir(), "world.sock")
	worlds := make([]*World, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for rank := 0; rank < n; rank++ {
		o := opts
		o.Transport = TransportSocket
		if rank == 0 {
			o.ListenAddr = sock
			o.NoSpawn = true
		} else {
			o.JoinAddr = "unix:" + sock
			o.JoinRank = rank
		}
		wg.Add(1)
		go func(rank int, o Options) {
			defer wg.Done()
			worlds[rank], errs[rank] = Start(n, o)
		}(rank, o)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d start: %v", rank, err)
		}
	}
	t.Cleanup(func() {
		for rank := n - 1; rank >= 0; rank-- {
			worlds[rank].Shutdown()
		}
	})
	return worlds
}

// runSocketRanks runs f as each world's local rank concurrently and
// returns the per-rank errors.
func runSocketRanks(t *testing.T, worlds []*World, f func(r *Rank) error) []error {
	t.Helper()
	out := make([]error, len(worlds))
	var wg sync.WaitGroup
	for rank, w := range worlds {
		wg.Add(1)
		go func(rank int, w *World) {
			defer wg.Done()
			out[rank] = w.Run(f)[rank]
		}(rank, w)
	}
	wg.Wait()
	return out
}

// Point-to-point over the wire: child-to-hub delivery, hub-relayed
// child-to-child delivery, wildcard matching, probe and iprobe, and a
// full barrier.
func TestSocketWorldBasics(t *testing.T) {
	worlds := socketWorlds(t, 3, Options{})
	if addr := worlds[0].Addr(); addr == "" {
		t.Error("orchestrator Addr() is empty")
	}
	errs := runSocketRanks(t, worlds, func(r *Rank) error {
		switch r.ID() {
		case 0:
			st, err := r.Probe(1, 7)
			if err != nil {
				return err
			}
			if st.Source != 1 || st.Tag != 7 || st.Len != 7 {
				return fmt.Errorf("probe status %+v", st)
			}
			m, err := r.Recv(st.Source, st.Tag)
			if err != nil {
				return err
			}
			if string(m.Data) != "to-zero" {
				return fmt.Errorf("got %q, want %q", m.Data, "to-zero")
			}
			if _, ok, err := r.Iprobe(AnySource, AnyTag); err != nil || ok {
				return fmt.Errorf("iprobe after drain: ok=%v err=%v", ok, err)
			}
		case 1:
			if err := r.Send(0, 7, []byte("to-zero")); err != nil {
				return err
			}
			if err := r.Send(2, 9, []byte("relayed")); err != nil {
				return err
			}
		case 2:
			m, err := r.Recv(AnySource, AnyTag)
			if err != nil {
				return err
			}
			if m.Source != 1 || m.Tag != 9 || string(m.Data) != "relayed" {
				return fmt.Errorf("relay delivered %+v %q", m.Status, m.Data)
			}
		}
		return r.Barrier()
	})
	for rank, err := range errs {
		if err != nil {
			t.Errorf("rank %d: %v", rank, err)
		}
	}
}

// Rendezvous semantics must survive the wire: a forced-rendezvous send
// may not return before the receiver has matched the message.
func TestSocketWorldRendezvous(t *testing.T) {
	worlds := socketWorlds(t, 2, Options{EagerLimit: -1})
	var matched atomic.Bool
	errs := runSocketRanks(t, worlds, func(r *Rank) error {
		if r.ID() == 0 {
			if err := r.Send(1, 1, []byte("rendezvous")); err != nil {
				return err
			}
			if !matched.Load() {
				return errors.New("rendezvous send returned before the receive matched")
			}
			return nil
		}
		r.Sleep(50 * time.Millisecond)
		matched.Store(true)
		m, err := r.Recv(0, 1)
		if err != nil {
			return err
		}
		if string(m.Data) != "rendezvous" {
			return fmt.Errorf("got %q", m.Data)
		}
		return nil
	})
	for rank, err := range errs {
		if err != nil {
			t.Errorf("rank %d: %v", rank, err)
		}
	}
}

// Collectives are built on SendCtx/RecvCtx, so they must work unchanged
// over the socket transport.
func TestSocketWorldCollectives(t *testing.T) {
	worlds := socketWorlds(t, 3, Options{})
	errs := runSocketRanks(t, worlds, func(r *Rank) error {
		got, err := r.Bcast(0, []byte("seed"))
		if err != nil {
			return err
		}
		if string(got) != "seed" {
			return fmt.Errorf("bcast delivered %q", got)
		}
		all, err := r.Gather(0, []byte{byte('a' + r.ID())})
		if err != nil {
			return err
		}
		if r.ID() == 0 {
			joined := ""
			for _, part := range all {
				joined += string(part)
			}
			if joined != "abc" {
				return fmt.Errorf("gather assembled %q", joined)
			}
		}
		return nil
	})
	for rank, err := range errs {
		if err != nil {
			t.Errorf("rank %d: %v", rank, err)
		}
	}
}

// An abort raised by any rank must fan out: every blocked operation on
// every rank fails with ErrAborted and every World records the code.
func TestSocketWorldAbortFanOut(t *testing.T) {
	worlds := socketWorlds(t, 3, Options{})
	errs := runSocketRanks(t, worlds, func(r *Rank) error {
		switch r.ID() {
		case 1:
			r.Sleep(30 * time.Millisecond)
			r.Abort(42)
			return nil
		default:
			_, err := r.Recv((r.ID()+2)%3, 1) // blocks until the abort lands
			return err
		}
	})
	if !errors.Is(errs[0], ErrAborted) || !errors.Is(errs[2], ErrAborted) {
		t.Errorf("blocked ranks returned %v / %v, want ErrAborted", errs[0], errs[2])
	}
	for rank, w := range worlds {
		if !w.Aborted() || w.AbortCode() != 42 {
			t.Errorf("world %d: aborted=%v code=%d, want code 42", rank, w.Aborted(), w.AbortCode())
		}
	}
}

// A clean goodbye carries the rank's traffic counters, so after every
// rank has shut down the orchestrator's totals are complete.
func TestSocketWorldTrafficFolding(t *testing.T) {
	worlds := socketWorlds(t, 3, Options{})
	errs := runSocketRanks(t, worlds, func(r *Rank) error {
		payload := []byte("0123456789")
		switch r.ID() {
		case 0:
			for got := 0; got < 5; got++ {
				if _, err := r.Recv(AnySource, AnyTag); err != nil {
					return err
				}
			}
		case 1:
			for i := 0; i < 3; i++ {
				if err := r.Send(0, 1, payload); err != nil {
					return err
				}
			}
		case 2:
			for i := 0; i < 2; i++ {
				if err := r.Send(0, 2, payload); err != nil {
					return err
				}
			}
		}
		return nil
	})
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	// Goodbyes first, then the orchestrator waits out its readers — after
	// which the remote counters must have been folded in.
	for rank := 2; rank >= 0; rank-- {
		if err := worlds[rank].Shutdown(); err != nil {
			t.Fatalf("rank %d shutdown: %v", rank, err)
		}
	}
	tot := worlds[0].TotalTraffic()
	if tot.Sent != 5 || tot.SentBytes != 50 || tot.Received != 5 || tot.RecvBytes != 50 {
		t.Errorf("TotalTraffic = %+v, want 5 msgs / 50 bytes each way", tot)
	}
	if tr := worlds[0].Traffic(1); tr.Sent != 3 || tr.SentBytes != 30 {
		t.Errorf("Traffic(1) = %+v, want 3 sends / 30 bytes folded from the BYE", tr)
	}
}

// A connection that drops without a BYE is a lost rank: the hub must
// abort the world with FaultAbortCode — the same code an injected crash
// uses, so the layers above fall back to spill salvage identically.
func TestSocketWorldLostRankAborts(t *testing.T) {
	worlds := socketWorlds(t, 2, Options{})
	done := make(chan error, 1)
	go func() {
		_, err := worlds[0].Rank(0).Recv(1, 1)
		done <- err
	}()
	// Sever rank 1's connection without a goodbye: a crash, as the hub
	// sees it. Marking the rank closing first keeps its recovery path from
	// dialing back, so the hub's reconnect window must expire.
	st := worlds[1].t.(*socketTransport)
	st.closing.Store(true)
	st.hub.close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrAborted) {
			t.Fatalf("recv after lost rank: %v, want ErrAborted", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("lost rank did not abort the world")
	}
	if code := worlds[0].AbortCode(); code != FaultAbortCode {
		t.Fatalf("abort code %d, want FaultAbortCode %d", code, FaultAbortCode)
	}
}

// A link failure between a rank and the hub must heal transparently: the
// rank dials back, both sides retransmit their unacked windows, and the
// program's sends, receives and barriers complete as if nothing happened.
func TestSocketWorldReconnectHeals(t *testing.T) {
	mx := stats.New(2)
	worlds := socketWorlds(t, 2, Options{Metrics: mx})
	// Kill the rank's end of the link out from under it.
	worlds[1].t.(*socketTransport).hub.fail()
	errs := runSocketRanks(t, worlds, func(r *Rank) error {
		if r.ID() == 0 {
			if err := r.Send(1, 1, []byte("after-failure")); err != nil {
				return err
			}
		} else {
			m, err := r.Recv(0, 1)
			if err != nil {
				return err
			}
			if string(m.Data) != "after-failure" {
				return fmt.Errorf("delivered %q", m.Data)
			}
		}
		return r.Barrier()
	})
	for rank, err := range errs {
		if err != nil {
			t.Errorf("rank %d: %v", rank, err)
		}
	}
	if worlds[0].Aborted() {
		t.Fatalf("world aborted (code %d) instead of healing", worlds[0].AbortCode())
	}
	if tot := mx.Snapshot().Totals; tot["reconnects"] == 0 {
		t.Errorf("counters %v: link failure did not register a reconnect", tot)
	}
}

// Regression: a barrier RELEASE hitting a down link used to be dropped
// best-effort, leaving the released rank parked forever. It must now be
// buffered in the window and arrive via resume.
func TestSocketWorldBarrierReleaseSurvivesLinkFailure(t *testing.T) {
	worlds := socketWorlds(t, 2, Options{})
	res := make(chan error, 1)
	go func() { res <- worlds[1].Rank(1).Barrier() }()
	// Wait until rank 1's BARRIER has landed at the hub, then sever the
	// hub's side of the link so the RELEASE has nowhere to go.
	hub := worlds[0].t.(*socketTransport)
	deadline := time.Now().Add(2 * time.Second)
	for {
		hub.barMu.Lock()
		n := hub.barCount
		hub.barMu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("rank 1 never entered the barrier")
		}
		time.Sleep(time.Millisecond)
	}
	hub.links[1].fail()
	if err := worlds[0].Rank(0).Barrier(); err != nil {
		t.Fatalf("rank 0 barrier: %v", err)
	}
	select {
	case err := <-res:
		if err != nil {
			t.Fatalf("rank 1 barrier: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("rank 1 never released: RELEASE lost on the down link")
	}
	if worlds[0].Aborted() {
		t.Fatalf("world aborted (code %d) instead of healing", worlds[0].AbortCode())
	}
}

// Hostile connections to a live world's listener must be rejected
// without disturbing the ranks: wrong world size, out-of-range rank,
// first-connect epoch on the resume path, and raw garbage bytes.
func TestSocketWorldHostileResumeRejected(t *testing.T) {
	worlds := socketWorlds(t, 2, Options{})
	_, target, err := splitAddr(worlds[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	dial := func() net.Conn {
		c, err := net.Dial("unix", target)
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		return c
	}
	for name, hello := range map[string]*frame{
		"world mismatch":    {typ: frHello, rank: 1, world: 99, epoch: 1},
		"rank out of range": {typ: frHello, rank: 7, world: 2, epoch: 1},
		"zero epoch":        {typ: frHello, rank: 1, world: 2, epoch: 0},
		"wrong frame type":  {typ: frBarrier, rank: 1},
	} {
		c := dial()
		if err := writeRawFrame(c, hello, time.Second); err != nil {
			t.Fatalf("%s: write: %v", name, err)
		}
		// The hub must close the connection without a WELCOME.
		c.SetReadDeadline(time.Now().Add(3 * time.Second))
		if _, err := c.Read(make([]byte, 1)); err == nil {
			t.Errorf("%s: hub answered instead of closing", name)
		}
		c.Close()
	}
	// Raw garbage: an unparseable length prefix.
	c := dial()
	c.Write([]byte("not a frame at all"))
	c.SetReadDeadline(time.Now().Add(3 * time.Second))
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Error("garbage: hub answered instead of closing")
	}
	c.Close()

	// The world is unharmed.
	errs := runSocketRanks(t, worlds, func(r *Rank) error { return r.Barrier() })
	for rank, err := range errs {
		if err != nil {
			t.Errorf("rank %d after hostile dials: %v", rank, err)
		}
	}
}

// A joining rank built for a different world size must fail the
// orchestrator's Start with a diagnosis, not wedge it.
func TestSocketWorldHelloWorldMismatch(t *testing.T) {
	sock := filepath.Join(t.TempDir(), "world.sock")
	startErr := make(chan error, 1)
	go func() {
		w, err := Start(2, Options{Transport: TransportSocket, ListenAddr: sock, NoSpawn: true})
		if err == nil {
			w.Shutdown()
		}
		startErr <- err
	}()
	var conn net.Conn
	deadline := time.Now().Add(5 * time.Second)
	for {
		var err error
		conn, err = net.Dial("unix", sock)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("orchestrator never listened: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	defer conn.Close()
	if err := writeRawFrame(conn, &frame{typ: frHello, rank: 1, world: 5}, time.Second); err != nil {
		t.Fatalf("hello: %v", err)
	}
	select {
	case err := <-startErr:
		if err == nil || !strings.Contains(err.Error(), "world size") {
			t.Fatalf("Start err = %v, want world-size diagnosis", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("orchestrator hung on the mismatched hello")
	}
}

// The transport timeouts are tunable through PILOT_MPI_* durations;
// malformed or non-positive values fall back to the defaults.
func TestLoadSockTuningEnv(t *testing.T) {
	t.Setenv("PILOT_MPI_JOIN_TIMEOUT", "3s")
	t.Setenv("PILOT_MPI_DIAL_RETRY", "250ms")
	t.Setenv("PILOT_MPI_HEARTBEAT", "123ms")
	t.Setenv("PILOT_MPI_LIVENESS", "nonsense")
	t.Setenv("PILOT_MPI_WRITE_TIMEOUT", "-5s")
	t.Setenv("PILOT_MPI_RECONNECT_WINDOW", "7s")
	tn := loadSockTuning()
	if tn.join != 3*time.Second || tn.dialRetry != 250*time.Millisecond ||
		tn.heartbeat != 123*time.Millisecond || tn.reconnect != 7*time.Second {
		t.Errorf("tuning = %+v: env overrides not applied", tn)
	}
	if tn.liveness != livenessTimeout || tn.write != wireWriteTimeout {
		t.Errorf("tuning = %+v: bad values must keep defaults", tn)
	}
}
