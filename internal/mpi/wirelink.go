// The socket transport's link layer: one wireLink per connection, making
// the stream survive what the wire does to it.
//
// Every frame travels with a CRC32-C over its seq/ack/body, so a
// corrupted frame is detected and rejected, never deserialized into
// garbage. Program-visible frames (MSG, ACK, BARRIER, RELEASE, BYE)
// carry a per-link sequence number and stay in an unacked window until
// the peer's cumulative ack — piggybacked on every frame it sends —
// covers them. A broken connection is then recoverable: the rank end
// dials back, the HELLO/WELCOME exchange tells each side what the other
// has seen, and the unacked window is retransmitted in order. Sequence
// dedup at the receiver makes delivery exactly-once per link no matter
// how many times recovery (or an injected WireDup) replays a frame.
//
// Writes carry deadlines so a stalled peer turns into a diagnosable
// link failure instead of a wedged writer; reads are watched by the
// transport's heartbeat goroutines (see transport_socket.go), which
// declare a silent link dead. Failure of any invariant the layer cannot
// repair — a window overflow, a sequence hole — surfaces as an error to
// the transport, whose only moves are resume or diagnosed abort.
package mpi

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
)

const (
	// linkHdrLen is the link header past the length prefix:
	// crc32 (u32) + seq (u64) + ack (u64).
	linkHdrLen = 4 + 8 + 8
	// linkWindowMax bounds the unacked window. A peer that stops acking
	// for this many frames is not slow, it is gone — overflowing the
	// window is a link failure, not a reason to buffer gigabytes.
	linkWindowMax = 1 << 15
	// linkAckEvery makes the receiver volunteer an ack-carrying PONG
	// every so many sequenced frames, so one-directional traffic still
	// drains the sender's window. Each volunteered PONG is an extra
	// syscall on the reverse path, so the cadence sits well below the
	// window bound but far above "every frame".
	linkAckEvery = 256
)

// maxWireFrame bounds a frame so a corrupt length prefix cannot ask for
// gigabytes; it must exceed any message the examples or tests send.
const maxWireFrame = 1 << 30

var crcTable = crc32.MakeTable(crc32.Castagnoli)

var (
	errLinkDown    = errors.New("mpi: wire link down")
	errWindowFull  = errors.New("mpi: wire link retransmit window overflowed")
	errCRCMismatch = errors.New("mpi: wire frame CRC mismatch")
)

// packLink builds the full on-wire bytes of one frame.
func packLink(body []byte, seq, ack uint64) []byte {
	buf := make([]byte, 4+linkHdrLen+len(body))
	copy(buf[4+linkHdrLen:], body)
	sealLink(buf, seq, ack)
	return buf
}

// sealLink fills the outer header — length, seq, ack, then the CRC over
// everything the CRC protects — of a buffer whose body is already in
// place after the first 4+linkHdrLen bytes.
func sealLink(buf []byte, seq, ack uint64) {
	binary.LittleEndian.PutUint32(buf, uint32(len(buf)-4))
	binary.LittleEndian.PutUint64(buf[8:], seq)
	binary.LittleEndian.PutUint64(buf[16:], ack)
	binary.LittleEndian.PutUint32(buf[4:], crc32.Checksum(buf[8:], crcTable))
}

// readLinkFrame reads and verifies one frame from r: length bounds, CRC,
// then the inner codec. Returns the link seq/ack and the wire size.
func readLinkFrame(r *bufio.Reader) (fr *frame, seq, ack uint64, size int, err error) {
	var hdr [4]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return nil, 0, 0, 0, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n < linkHdrLen+1 || n > maxWireFrame {
		return nil, 0, 0, 0, fmt.Errorf("mpi: wire frame length %d out of range", n)
	}
	body := make([]byte, n)
	if _, err = io.ReadFull(r, body); err != nil {
		return nil, 0, 0, 0, err
	}
	if crc32.Checksum(body[4:], crcTable) != binary.LittleEndian.Uint32(body) {
		return nil, 0, 0, 0, errCRCMismatch
	}
	seq = binary.LittleEndian.Uint64(body[4:])
	ack = binary.LittleEndian.Uint64(body[12:])
	fr, err = decodeFrame(body[linkHdrLen:])
	if err != nil {
		return nil, 0, 0, 0, err
	}
	return fr, seq, ack, 4 + int(n), nil
}

// writeRawFrame writes one unsequenced frame directly to a connection
// not (yet) installed in a link — the HELLO/WELCOME handshake.
func writeRawFrame(c net.Conn, fr *frame, timeout time.Duration) error {
	if timeout > 0 {
		c.SetWriteDeadline(time.Now().Add(timeout))
		defer c.SetWriteDeadline(time.Time{})
	}
	_, err := c.Write(packLink(encodeFrame(fr), 0, 0))
	return err
}

// readRawFrame reads one frame during a handshake, bounded by timeout.
func readRawFrame(c net.Conn, r *bufio.Reader, timeout time.Duration) (*frame, error) {
	if timeout > 0 {
		c.SetReadDeadline(time.Now().Add(timeout))
		defer c.SetReadDeadline(time.Time{})
	}
	fr, _, _, _, err := readLinkFrame(r)
	return fr, err
}

// linkFrame is one windowed frame: the seq and its pristine wire bytes
// (fault injection corrupts copies, never the window).
type linkFrame struct {
	seq uint64
	buf []byte
}

// wireLink is one hardened connection. Writes are serialised by mu so
// concurrent senders interleave whole frames; reads happen from a single
// reader goroutine per link, which also drives recovery.
type wireLink struct {
	// Wire accounting: every frame written or read is attributed to the
	// local rank of the observing process (nil collector disables it for
	// free, as everywhere).
	mx   *stats.Collector
	attr int
	// peer is the non-hub rank of this link; side the writer-side
	// identity of this process (wireSideHub or wireSideRank). Together
	// they key the deterministic fault streams.
	peer   int
	side   int
	faults *wireFaults

	writeTimeout time.Duration

	mu      sync.Mutex
	conn    net.Conn
	r       *bufio.Reader
	down    bool
	sendSeq uint64
	peerAck uint64
	window  []linkFrame
	epoch   uint32
	// armedUntil is the absolute write deadline currently armed on conn
	// (UnixNano). Re-arming a runtime timer per frame costs more than the
	// write itself on fast paths, so the deadline is pushed out only when
	// less than half the timeout remains — every write still has at least
	// writeTimeout/2 of budget.
	armedUntil int64

	recvSeq  atomic.Uint64 // highest contiguous seq received; piggybacked as ack
	lastRead atomic.Int64  // UnixNano of the last successful read (liveness)
}

func newWireLink(conn net.Conn, r *bufio.Reader, mx *stats.Collector, attr, peer, side int, wf *wireFaults, writeTimeout time.Duration) *wireLink {
	if r == nil {
		r = bufio.NewReader(conn)
	}
	l := &wireLink{
		mx: mx, attr: attr, peer: peer, side: side, faults: wf,
		writeTimeout: writeTimeout, conn: conn, r: r,
	}
	l.lastRead.Store(time.Now().UnixNano())
	return l
}

// send transmits one frame. Sequenced frames are windowed first, so a
// connection failure mid-send is not an error for them — the frame is
// safe in the window and the next resume retransmits it. The errors
// that do surface (window overflow; an unsequenced write on a down
// link) are beyond the link's power to repair.
func (l *wireLink) send(fr *frame) error {
	// Encode straight into the outer wire buffer (off-lock); the header is
	// sealed under the lock once the seq is known. One allocation per frame.
	buf := appendFrame(make([]byte, 4+linkHdrLen, 4+linkHdrLen+wireSizeHint(fr)), fr)
	l.mu.Lock()
	defer l.mu.Unlock()
	var seq uint64
	if sequencedType(fr.typ) {
		if len(l.window) >= linkWindowMax {
			return errWindowFull
		}
		l.sendSeq++
		seq = l.sendSeq
	}
	sealLink(buf, seq, l.recvSeq.Load())
	if seq != 0 {
		l.window = append(l.window, linkFrame{seq: seq, buf: buf})
	}
	if l.down {
		if seq != 0 {
			return nil
		}
		return errLinkDown
	}
	err := l.transmitLocked(buf, seq)
	if seq != 0 {
		return nil
	}
	return err
}

// transmitLocked writes one first-transmission frame, applying any wire
// faults the plan selects for (peer, side, seq). Retransmissions bypass
// it (see resume), so recovery traffic is never re-faulted and every
// decision stays a pure function of the frame sequence.
func (l *wireLink) transmitLocked(buf []byte, seq uint64) error {
	out := buf
	if l.faults != nil && seq != 0 {
		if d, any := l.faults.writeDecide(l.peer, l.side, seq, len(buf)); any {
			if d.delay > 0 {
				// Sleep with the link locked: a slow wire serialises
				// everything behind it, heartbeats included.
				time.Sleep(d.delay)
			}
			if d.drop {
				l.failLocked()
				return errLinkDown
			}
			if d.resetAt >= 0 {
				cut := d.resetAt
				if cut > len(buf) {
					cut = len(buf)
				}
				if l.writeTimeout > 0 {
					l.conn.SetWriteDeadline(time.Now().Add(l.writeTimeout))
				}
				l.conn.Write(buf[:cut]) // torn write: deliberately partial
				l.failLocked()
				return errLinkDown
			}
			if len(d.corrupt) > 0 {
				out = append([]byte(nil), buf...)
				for _, off := range d.corrupt {
					if off >= 0 && off < len(out) {
						out[off] ^= 0x55
					}
				}
			}
			if d.dup {
				if err := l.rawWriteLocked(out); err != nil {
					return err
				}
			}
		}
	}
	return l.rawWriteLocked(out)
}

// rawWriteLocked writes bytes under a deadline; failure marks the link
// down and closes the conn so the blocked reader wakes into recovery.
func (l *wireLink) rawWriteLocked(b []byte) error {
	if l.writeTimeout > 0 {
		if now := time.Now(); l.armedUntil-now.UnixNano() < int64(l.writeTimeout)/2 {
			l.conn.SetWriteDeadline(now.Add(l.writeTimeout))
			l.armedUntil = now.UnixNano() + int64(l.writeTimeout)
		}
	}
	if _, err := l.conn.Write(b); err != nil {
		l.failLocked()
		return err
	}
	l.mx.WireObserved(l.attr, 1, len(b))
	return nil
}

func (l *wireLink) failLocked() {
	if l.down {
		return
	}
	l.down = true
	if l.conn != nil {
		l.conn.Close()
	}
}

// fail marks the link down, waking its reader with an error.
func (l *wireLink) fail() {
	l.mu.Lock()
	l.failLocked()
	l.mu.Unlock()
}

func (l *wireLink) isDown() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.down
}

// sinceRead is the time since the last successful read on this link.
func (l *wireLink) sinceRead() time.Duration {
	return time.Duration(time.Now().UnixNano() - l.lastRead.Load())
}

// ackTo prunes the window up to the peer's cumulative ack.
func (l *wireLink) ackTo(ack uint64) {
	l.mu.Lock()
	if ack > l.peerAck {
		l.peerAck = ack
		i := 0
		for i < len(l.window) && l.window[i].seq <= ack {
			i++
		}
		if i > 0 {
			l.window = append(l.window[:0], l.window[i:]...)
		}
	}
	l.mu.Unlock()
}

// recv returns the next program-visible frame: heartbeats are answered,
// acks folded, duplicates dropped, and a read raced by a concurrent
// resume retries on the fresh connection. A returned error means the
// link is down and already marked failed.
func (l *wireLink) recv() (*frame, error) {
	for {
		l.mu.Lock()
		r, down := l.r, l.down
		l.mu.Unlock()
		if down {
			return nil, errLinkDown
		}
		fr, seq, size, err := l.readFrame(r)
		if err != nil {
			l.mu.Lock()
			if l.r == r { // still the current conn: a real failure
				l.failLocked()
				l.mu.Unlock()
				return nil, err
			}
			l.mu.Unlock()
			continue // lost a race with resume; read the fresh conn
		}
		if fr == nil {
			continue // duplicate, dropped by seq dedup
		}
		l.mx.WireObserved(l.attr, 1, size)
		switch fr.typ {
		case frPing:
			l.send(&frame{typ: frPong}) // the reply carries a fresh ack
			continue
		case frPong:
			continue // pure ack carrier; already folded
		case frBye:
			// Flush our ack immediately so the goodbye leaves the
			// peer's window and its shutdown drain completes.
			l.send(&frame{typ: frPong})
		}
		if seq != 0 && seq%linkAckEvery == 0 {
			l.send(&frame{typ: frPong})
		}
		return fr, nil
	}
}

// readFrame reads one frame and runs the link-level protocol on it: CRC
// accounting, ack folding, liveness refresh, sequence dedup (nil frame
// = duplicate, dropped), hole detection and read-side stall injection.
func (l *wireLink) readFrame(r *bufio.Reader) (*frame, uint64, int, error) {
	fr, seq, ack, size, err := readLinkFrame(r)
	if err != nil {
		if errors.Is(err, errCRCMismatch) {
			l.mx.WireCounted(l.attr, stats.CtrCrcFailures, 1)
		}
		return nil, 0, 0, err
	}
	l.ackTo(ack)
	l.lastRead.Store(time.Now().UnixNano())
	if seq != 0 {
		cur := l.recvSeq.Load()
		if seq <= cur {
			return nil, seq, size, nil // dup: WireDup or a resume replay
		}
		if seq != cur+1 {
			// A hole means the stream lost a sequenced frame without
			// losing the connection. The link cannot repair that in
			// place; failing it makes resume refill the gap from the
			// peer's window.
			return nil, 0, 0, fmt.Errorf("mpi: wire link sequence hole: got %d, want %d", seq, cur+1)
		}
		l.recvSeq.Store(seq)
	}
	if l.faults != nil && seq != 0 {
		if d, ok := l.faults.stallDecide(l.peer, 1-l.side, seq); ok {
			time.Sleep(d) // stop reading: backpressure builds to the writer
		}
	}
	return fr, seq, size, nil
}

// nextEpoch issues a fresh resume epoch (rank side; each dial attempt
// uses a strictly larger one so the hub can tell a retry from a replay).
func (l *wireLink) nextEpoch() uint32 {
	l.mu.Lock()
	l.epoch++
	e := l.epoch
	l.mu.Unlock()
	return e
}

// resume installs a fresh connection: prune the window to the peer's
// ack, swap the conn, and retransmit what the peer has not seen — the
// original bytes with their original seqs, never re-faulted. strict
// rejects non-monotonic epochs (the hub side, where a stale or hostile
// resume must not clobber a live link).
func (l *wireLink) resume(conn net.Conn, r *bufio.Reader, peerAck uint64, epoch uint32, strict bool) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if strict && epoch <= l.epoch {
		return fmt.Errorf("mpi: stale resume epoch %d (link at %d)", epoch, l.epoch)
	}
	if peerAck > l.peerAck {
		l.peerAck = peerAck
	}
	i := 0
	for i < len(l.window) && l.window[i].seq <= l.peerAck {
		i++
	}
	if i > 0 {
		l.window = append(l.window[:0], l.window[i:]...)
	}
	if l.conn != nil && !l.down {
		l.conn.Close() // a live conn loses to a newer epoch
	}
	l.conn = conn
	l.armedUntil = 0 // fresh conn, no deadline armed yet
	if r == nil {
		r = bufio.NewReader(conn)
	}
	l.r = r
	l.down = false
	if epoch > l.epoch {
		l.epoch = epoch
	}
	l.lastRead.Store(time.Now().UnixNano())
	for _, f := range l.window {
		if err := l.rawWriteLocked(f.buf); err != nil {
			return err
		}
	}
	if n := len(l.window); n > 0 {
		l.mx.WireCounted(l.attr, stats.CtrRetransmits, int64(n))
	}
	l.mx.WireCounted(l.attr, stats.CtrReconnects, 1)
	return nil
}

// drain waits until every sequenced frame this side sent has been acked
// (the window is empty), the link dies, or the deadline passes — the
// flush before a clean goodbye closes the connection.
func (l *wireLink) drain(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		l.mu.Lock()
		empty := len(l.window) == 0
		down := l.down
		l.mu.Unlock()
		if empty {
			return true
		}
		if down || time.Now().After(deadline) {
			return false
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func (l *wireLink) close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.down = true
	if l.conn == nil {
		return nil
	}
	return l.conn.Close()
}
