package mpi

import (
	"fmt"
	"os"
	"sync"
)

// Transport names accepted by Options.Transport.
const (
	// TransportInproc (the default) runs every rank as a goroutine in
	// this process: deterministic, race-detectable, supports Manual
	// clocks and seeded fault injection — the substrate every test and
	// golden trace runs on.
	TransportInproc = "inproc"
	// TransportSocket runs every rank as its own OS process, exchanging
	// length-framed envelopes over unix-domain sockets with rank 0
	// orchestrating spawn, rank numbering, barrier and abort teardown.
	TransportSocket = "socket"
	// TransportTCP is TransportSocket over loopback TCP, for systems
	// without unix-domain sockets (or, with ListenAddr, real networks).
	TransportTCP = "tcp"
)

// Environment variables a spawned rank process reads to join its world.
// The parent sets them on every child it launches; a program that finds
// them set (see Spawned) is one rank of an existing world, not a new
// orchestrator.
const (
	// EnvRank is the child's rank number.
	EnvRank = "PILOT_MPI_RANK"
	// EnvAddr is the join address, "unix:<path>" or "tcp:<host:port>".
	EnvAddr = "PILOT_MPI_ADDR"
	// EnvWorld is the world size, cross-checked against the child's own
	// configuration so a drifted re-exec fails loudly instead of hanging.
	EnvWorld = "PILOT_MPI_WORLD"
)

// Spawned reports whether this process was launched as one rank of a
// multi-process world. Programs embedding a custom child entry point
// (benchmark harnesses, test binaries) check it before doing parent-only
// work.
func Spawned() bool { return os.Getenv(EnvAddr) != "" && os.Getenv(EnvRank) != "" }

// SpawnedTransport returns the transport name a spawned rank should pass
// to Start — derived from the join address the parent handed down — or
// "" when the process was not spawned.
func SpawnedTransport() string {
	addr := os.Getenv(EnvAddr)
	switch {
	case addr == "":
		return ""
	case len(addr) >= 4 && addr[:4] == "tcp:":
		return TransportTCP
	default:
		return TransportSocket
	}
}

// Envelope is one in-flight message as a Transport sees it.
type Envelope struct {
	Ctx, Src, Tag int
	Data          []byte
	// Done is non-nil for rendezvous sends; whoever matches the envelope
	// (the receiving Rank, directly or via the transport's ack machinery)
	// closes it, releasing the blocked sender.
	Done chan struct{}
}

// Transport is the substrate behind the mailbox: it moves envelopes
// between ranks and implements the world-wide control plane — matched
// delivery, probing, the barrier, and abort fan-out. The in-process
// transport keeps every mailbox in one address space; the socket
// transport hosts exactly one rank per OS process and carries everything
// else over the wire.
type Transport interface {
	// LocalRank returns the one rank hosted by this process, or -1 when
	// every rank is local (the in-process transport).
	LocalRank() int
	// Put delivers env to dst's mailbox, returning false once the world
	// is aborted. Put never waits for a rendezvous match; the sender
	// blocks on env.Done.
	Put(dst int, env *Envelope) bool
	// Take removes and returns the first envelope matching (ctx, src,
	// tag) addressed to rank me, blocking until one arrives. ok=false
	// means the world aborted. me must be hosted by this process.
	Take(me, ctx, src, tag int) (*Envelope, bool)
	// Probe reports a matching envelope's status without removing it.
	// With block set it waits for one; without, ok=false means none is
	// immediately available.
	Probe(me, ctx, src, tag int, block bool) (Status, bool)
	// Barrier blocks rank me until every rank in the world has entered.
	Barrier(me int) error
	// Abort tears the transport down everywhere: local mailboxes close,
	// blocked barriers fail, remote ranks are notified. Idempotent; the
	// World has already recorded the abort code when it is called.
	Abort(code int)
	// Shutdown releases transport resources after the job completes: the
	// orchestrator reaps rank processes (killing stragglers), a rank
	// announces a clean goodbye. It reports rank processes that exited
	// abnormally. Idempotent via World.Shutdown.
	Shutdown() error
	// Addr returns the address rank processes join at ("" in-process).
	Addr() string
}

// Start creates a world of n ranks on the transport opts selects. For
// the in-process transport it cannot fail (beyond a non-positive n). For
// a multi-process transport the calling process becomes either the
// orchestrator — rank 0, which listens, spawns the other ranks (unless
// Options.NoSpawn) and routes their traffic — or, when the spawn
// environment variables are present (see Spawned) or Options.JoinAddr is
// set, a single joining rank.
func Start(n int, opts Options) (*World, error) {
	if n < 1 {
		return nil, fmt.Errorf("mpi: Start with %d ranks", n)
	}
	w := newWorldShell(n, opts)
	switch opts.Transport {
	case "", TransportInproc:
		w.local = -1
		w.t = newInprocTransport(n)
	case TransportSocket, TransportTCP:
		t, err := newSocketTransport(w, n, opts)
		if err != nil {
			return nil, err
		}
		w.local = t.local
		w.t = t
		t.startReaders()
	default:
		return nil, fmt.Errorf("mpi: unknown transport %q", opts.Transport)
	}
	return w, nil
}

// inprocTransport is the original substrate: one mailbox per rank in one
// address space, a condition-variable barrier, and abort by closing every
// mailbox. It stays the default so determinism, chaos seeds and golden
// traces are untouched by the Transport extraction.
type inprocTransport struct {
	size    int
	boxes   []*mailbox
	barrier barrierState
}

func newInprocTransport(n int) *inprocTransport {
	t := &inprocTransport{size: n, boxes: make([]*mailbox, n)}
	for i := range t.boxes {
		t.boxes[i] = newMailbox()
	}
	t.barrier.cond = sync.NewCond(&t.barrier.mu)
	return t
}

func (t *inprocTransport) LocalRank() int { return -1 }

func (t *inprocTransport) Put(dst int, env *Envelope) bool { return t.boxes[dst].put(env) }

func (t *inprocTransport) Take(me, ctx, src, tag int) (*Envelope, bool) {
	return t.boxes[me].take(ctx, src, tag)
}

func (t *inprocTransport) Probe(me, ctx, src, tag int, block bool) (Status, bool) {
	return t.boxes[me].probe(ctx, src, tag, block)
}

func (t *inprocTransport) Barrier(int) error {
	b := &t.barrier
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.aborted {
		return ErrAborted
	}
	gen := b.gen
	b.count++
	if b.count == t.size {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		return nil
	}
	for b.gen == gen && !b.aborted {
		b.cond.Wait()
	}
	if b.aborted {
		return ErrAborted
	}
	return nil
}

func (t *inprocTransport) Abort(int) {
	for _, b := range t.boxes {
		b.close()
	}
	t.barrier.mu.Lock()
	t.barrier.aborted = true
	t.barrier.cond.Broadcast()
	t.barrier.mu.Unlock()
}

func (t *inprocTransport) Shutdown() error { return nil }

func (t *inprocTransport) Addr() string { return "" }

type barrierState struct {
	mu      sync.Mutex
	cond    *sync.Cond
	count   int
	gen     int
	aborted bool
}
