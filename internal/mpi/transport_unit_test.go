package mpi

// Unit tests for the small transport seams the process-level suites step
// around: accessors, address parsing, the spawn-environment sniffing, and
// the wire decoder's truncation handling.

import (
	"strings"
	"testing"
)

func TestInprocTransportAccessors(t *testing.T) {
	tr := newInprocTransport(2)
	if got := tr.LocalRank(); got != -1 {
		t.Errorf("LocalRank() = %d, want -1 (all ranks local)", got)
	}
	if got := tr.Addr(); got != "" {
		t.Errorf("Addr() = %q, want empty in-process", got)
	}
}

func TestRankAccessors(t *testing.T) {
	w := NewWorld(1, Options{})
	r := w.Rank(0)
	if r.World() != w {
		t.Error("Rank.World() does not return its world")
	}
	if r.Clock() == nil {
		t.Error("Rank.Clock() is nil")
	}
}

func TestInvariantError(t *testing.T) {
	err := invariantf("rank %d bad", 7)
	if err.Error() != "rank 7 bad" {
		t.Errorf("invariantf formatted %q", err.Error())
	}
}

func TestSpawnedTransport(t *testing.T) {
	t.Setenv(EnvAddr, "")
	if got := SpawnedTransport(); got != "" {
		t.Errorf("no env: %q, want empty", got)
	}
	t.Setenv(EnvAddr, "unix:/tmp/w.sock")
	if got := SpawnedTransport(); got != TransportSocket {
		t.Errorf("unix addr: %q, want %q", got, TransportSocket)
	}
	t.Setenv(EnvAddr, "tcp:127.0.0.1:9999")
	if got := SpawnedTransport(); got != TransportTCP {
		t.Errorf("tcp addr: %q, want %q", got, TransportTCP)
	}
}

func TestSplitAddrRejectsUnknownScheme(t *testing.T) {
	if _, _, err := splitAddr("ipx:whatever"); err == nil {
		t.Error("unknown scheme accepted")
	}
	network, target, err := splitAddr("tcp:127.0.0.1:80")
	if err != nil || network != "tcp" || target != "127.0.0.1:80" {
		t.Errorf("tcp addr parsed as (%q, %q, %v)", network, target, err)
	}
}

func TestStartRejectsUnknownTransport(t *testing.T) {
	if _, err := Start(2, Options{Transport: "carrier-pigeon"}); err == nil {
		t.Error("unknown transport accepted")
	}
	if _, err := Start(0, Options{}); err == nil {
		t.Error("zero-rank world accepted")
	}
}

// A socket transport hosts exactly one rank; asking it to operate on any
// other is an mpi-internal invariant violation, not an application error.
func TestSocketTransportChecksLocalRank(t *testing.T) {
	worlds := socketWorlds(t, 2, Options{})
	st := worlds[1].t.(*socketTransport)
	if got := st.LocalRank(); got != 1 {
		t.Fatalf("LocalRank() = %d, want 1", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Take for a non-hosted rank did not panic")
		}
	}()
	st.Take(0, CtxUser, AnySource, AnyTag)
}

// Every frame type must reject a truncated body instead of reading past
// it, and unknown types must fail loudly.
func TestDecodeFrameTruncation(t *testing.T) {
	whole := map[string]*frame{
		"hello":   {typ: frHello, rank: 3, world: 4},
		"msg":     {typ: frMsg, dst: 1, ctx: 2, src: 0, tag: 5, flags: flagNeedAck, seq: 9, payload: []byte("xy")},
		"ack":     {typ: frAck, dst: 1, seq: 9},
		"barrier": {typ: frBarrier, rank: 2},
		"abort":   {typ: frAbort, code: 137},
		"bye":     {typ: frBye, rank: 1, traffic: Traffic{Sent: 1, SentBytes: 2, Received: 3, RecvBytes: 4}},
	}
	for name, fr := range whole {
		body := encodeFrame(fr)
		if _, err := decodeFrame(body); err != nil {
			t.Errorf("%s: intact frame rejected: %v", name, err)
		}
		// Chop at every prefix short of the payload: each must error, never
		// panic or fabricate fields.
		limit := len(body)
		if fr.typ == frMsg {
			limit -= len(fr.payload) // any payload length is legal
		}
		for cut := 1; cut < limit; cut++ {
			if _, err := decodeFrame(body[:cut]); err == nil {
				t.Errorf("%s: truncation at %d/%d accepted", name, cut, len(body))
			} else if !strings.Contains(err.Error(), "truncated") {
				t.Errorf("%s: truncation at %d: %v", name, cut, err)
			}
		}
	}
	if _, err := decodeFrame(nil); err == nil {
		t.Error("empty frame accepted")
	}
	if _, err := decodeFrame([]byte{0xEE}); err == nil {
		t.Error("unknown frame type accepted")
	}
}
