// Deterministic wire-level fault injection for the socket transport.
//
// Unlike the per-rank operation faults in fault.go, which advance a
// stateful splitmix64 stream once per counted operation, wire fault
// decisions are *stateless*: each decision is drawn from a fresh
// splitmix64 state derived from (seed, link, writer side, rule index,
// frame sequence number). A link's frame seq is assigned exactly once —
// at first transmission — and retransmitted frames reuse their original
// bytes and are never re-faulted, so the decisions are a pure function
// of the link's frame sequence no matter how many times recovery
// replays a frame or how goroutines are scheduled around it.
//
// Write-side kinds (delay, corrupt, dup, drop, reset) are evaluated by
// whichever process writes the frame; the read-side kind (stall) by
// whichever reads it, but keyed on the writer's side so the two
// directions of a link always draw from disjoint streams.
package mpi

import (
	"time"

	"repro/internal/stats"
)

// Writer-side identities for wire fault streams: the hub end of a link
// and the rank end never share a decision stream.
const (
	wireSideHub  = 0
	wireSideRank = 1
)

// wireFaults is one process's wire-injection state, shared by all of its
// links. nil disables injection for free.
type wireFaults struct {
	fs    *faultState
	mx    *stats.Collector
	attr  int // local rank, for stats attribution
	seed  int64
	rules []wireRule
}

// wireRule pairs a wire-kind rule with its index in the full plan, so
// every process of the world keys the same rule to the same streams.
type wireRule struct {
	idx  int
	rule FaultRule
}

// newWireFaults extracts the wire-kind rules from a world's fault state;
// nil when there is no plan or it has no wire rules.
func newWireFaults(fs *faultState, mx *stats.Collector, attr int) *wireFaults {
	if fs == nil {
		return nil
	}
	var rules []wireRule
	for i, r := range fs.plan.Rules {
		if r.Kind.wire() {
			rules = append(rules, wireRule{idx: i, rule: r})
		}
	}
	if len(rules) == 0 {
		return nil
	}
	return &wireFaults{fs: fs, mx: mx, attr: attr, seed: fs.plan.Seed, rules: rules}
}

// mix64 is the splitmix64 finalizer: a strong stateless 64-bit mix.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// wireStream derives the decision state for one (link, writer side,
// rule, frame seq) tuple. Each component is folded through the full
// mixer so nearby tuples yield uncorrelated streams.
func wireStream(seed int64, link, side, rule int, seq uint64) uint64 {
	st := uint64(seed)
	for _, v := range [...]uint64{uint64(link) + 1, uint64(side) + 1, uint64(rule) + 1, seq} {
		st = mix64(st + v*0x9e3779b97f4a7c15)
	}
	return st
}

// fired evaluates one rule's trigger for frame seq, drawing from st.
// Op-indexed rules fire at exactly that frame seq; probabilistic rules
// draw once per first-transmitted frame.
func wireFired(r FaultRule, seq uint64, st *uint64) bool {
	if r.Op > 0 {
		return uint64(r.Op) == seq
	}
	return r.Prob > 0 && unitFrom(st) < r.Prob
}

// wireWriteFault is what the writer must do to one first-transmission
// frame. Zero value (resetAt -1) = transmit normally.
type wireWriteFault struct {
	delay   time.Duration
	corrupt []int // byte offsets into the full frame buffer to flip
	dup     bool
	drop    bool
	resetAt int // torn write: transmit buf[:resetAt] then kill the conn; -1 = off
}

func wireWriteKind(k FaultKind) bool {
	return k == FaultWireDelay || k == FaultWireCorrupt || k == FaultWireDup ||
		k == FaultWireDrop || k == FaultWireReset
}

// writeDecide evaluates the write-side rules for the first transmission
// of frame seq on the given link, recording every fired event.
func (wf *wireFaults) writeDecide(link, side int, seq uint64, frameLen int) (d wireWriteFault, any bool) {
	d.resetAt = -1
	for _, wr := range wf.rules {
		r := wr.rule
		if !wireWriteKind(r.Kind) || !r.appliesTo(link) {
			continue
		}
		st := wireStream(wf.seed, link, side, wr.idx, seq)
		if !wireFired(r, seq, &st) {
			continue
		}
		ev := FaultEvent{Kind: r.Kind, Rank: link, Rule: wr.idx, Op: int64(seq)}
		switch r.Kind {
		case FaultWireDelay:
			// Uniform in [Delay/2, Delay], like FaultDelay.
			ev.Delay = r.Delay/2 + time.Duration(unitFrom(&st)*float64(r.Delay)/2)
			d.delay += ev.Delay
		case FaultWireCorrupt:
			// Flip 1–3 bytes past the length prefix: framing stays
			// aligned, the CRC must catch the damage.
			if span := frameLen - 4; span > 0 {
				n := 1 + int(splitmix(&st)%3)
				for i := 0; i < n; i++ {
					d.corrupt = append(d.corrupt, 4+int(splitmix(&st)%uint64(span)))
				}
			}
		case FaultWireDup:
			d.dup = true
		case FaultWireDrop:
			d.drop = true
		case FaultWireReset:
			d.resetAt = 0
			if frameLen > 1 {
				d.resetAt = 1 + int(splitmix(&st)%uint64(frameLen-1))
			}
		}
		wf.record(ev)
		any = true
	}
	return d, any
}

// stallDecide evaluates the read-side stall rules for frame seq. side is
// the *writer's* side of the link (the opposite end from the caller).
func (wf *wireFaults) stallDecide(link, side int, seq uint64) (time.Duration, bool) {
	var total time.Duration
	for _, wr := range wf.rules {
		r := wr.rule
		if r.Kind != FaultWireStall || !r.appliesTo(link) {
			continue
		}
		st := wireStream(wf.seed, link, side, wr.idx, seq)
		if !wireFired(r, seq, &st) {
			continue
		}
		wf.record(FaultEvent{Kind: r.Kind, Rank: link, Rule: wr.idx, Op: int64(seq), Delay: r.Delay})
		total += r.Delay
	}
	return total, total > 0
}

func (wf *wireFaults) record(ev FaultEvent) {
	wf.fs.recordWire(ev)
	wf.mx.WireCounted(wf.attr, stats.CtrWireFaults, 1)
}
