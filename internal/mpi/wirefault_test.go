package mpi

// Wire-fault tests: the stateless decision streams in isolation, the
// -pifaults grammar extensions, and end-to-end recovery over in-process
// socket worlds — every injected wire fault must end in transparent
// recovery (here) or a diagnosed abort (the lost-rank test), never a
// hang or silent corruption.

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/stats"
)

// The decision stream is a pure function of its tuple, and distinct
// tuples give distinct draws — no component is ignored.
func TestWireStreamProperties(t *testing.T) {
	a := wireStream(7, 1, wireSideHub, 0, 5)
	if b := wireStream(7, 1, wireSideHub, 0, 5); a != b {
		t.Fatalf("same tuple drew %#x then %#x", a, b)
	}
	seen := map[uint64][4]int{}
	for link := 1; link <= 3; link++ {
		for side := 0; side <= 1; side++ {
			for rule := 0; rule < 3; rule++ {
				for seq := uint64(1); seq <= 8; seq++ {
					v := wireStream(7, link, side, rule, seq)
					if prev, dup := seen[v]; dup {
						t.Fatalf("collision: %v and %v draw %#x",
							prev, [4]int{link, side, rule, int(seq)}, v)
					}
					seen[v] = [4]int{link, side, rule, int(seq)}
				}
			}
		}
	}
}

func TestParseFaultPlanWireGrammar(t *testing.T) {
	plan, err := ParseFaultPlan(
		"seed=7;wirecorrupt:rank=1,prob=0.01;wiredrop:rank=*,op=20;" +
			"wiredelay:rank=1,prob=1,dur=5ms;wirestall:op=3,dur=10ms;" +
			"wiredup:prob=0.5;wirereset:op=2")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if plan.Seed != 7 || len(plan.Rules) != 6 {
		t.Fatalf("seed=%d rules=%d, want 7/6", plan.Seed, len(plan.Rules))
	}
	wantKinds := []FaultKind{FaultWireCorrupt, FaultWireDrop, FaultWireDelay,
		FaultWireStall, FaultWireDup, FaultWireReset}
	for i, k := range wantKinds {
		if plan.Rules[i].Kind != k {
			t.Errorf("rule %d kind = %s, want %s", i, plan.Rules[i].Kind, k)
		}
		if !plan.Rules[i].Kind.wire() {
			t.Errorf("rule %d (%s) not classified as wire", i, k)
		}
	}
	if plan.Rules[1].Op != 20 || plan.Rules[1].Rank != AnyRank {
		t.Errorf("wiredrop rule = %+v, want op=20 rank=*", plan.Rules[1])
	}
	for _, bad := range []string{
		"wiredelay:rank=1,prob=1",  // delay without dur
		"wirestall:op=3",           // stall without dur
		"wiredrop:op=1,sec=2",      // wire kinds take no clock jump
		"wirecorrupt:prob=1,sec=1", // ditto
	} {
		if _, err := ParseFaultPlan(bad); err == nil {
			t.Errorf("ParseFaultPlan(%q) accepted", bad)
		}
	}
}

// Op faults must not see wire rules (the transport injects those), and
// a wire-rule-bearing plan must leave the op-fault decision stream
// exactly where a wire-free plan does.
func TestWireRulesInvisibleToOpFaults(t *testing.T) {
	with, err := ParseFaultPlan("seed=3;delay:rank=0,prob=1,dur=1ms;wiredrop:rank=1,op=2")
	if err != nil {
		t.Fatal(err)
	}
	without, err := ParseFaultPlan("seed=3;delay:rank=0,prob=1,dur=1ms")
	if err != nil {
		t.Fatal(err)
	}
	evA := opFaultDelays(t, *with)
	evB := opFaultDelays(t, *without)
	if !reflect.DeepEqual(evA, evB) {
		t.Errorf("wire rule shifted the op-fault stream:\nwith:    %v\nwithout: %v", evA, evB)
	}
}

func opFaultDelays(t *testing.T, plan FaultPlan) []time.Duration {
	t.Helper()
	fs := newFaultState(plan, 2)
	var out []time.Duration
	for i := 0; i < 5; i++ {
		d, _ := fs.decide(0, true)
		out = append(out, d.delay)
	}
	return out
}

// writeDecide is deterministic and honours op-indexed targeting.
func TestWriteDecideDeterministic(t *testing.T) {
	plan := FaultPlan{Seed: 7, Rules: []FaultRule{
		{Kind: FaultWireDrop, Rank: AnyRank, Op: 20},
		{Kind: FaultWireCorrupt, Rank: 1, Prob: 1},
	}}
	fs := newFaultState(plan, 2)
	wf := newWireFaults(fs, nil, 0)
	if wf == nil {
		t.Fatal("newWireFaults returned nil for a wire-rule plan")
	}
	d1, any1 := wf.writeDecide(1, wireSideHub, 20, 64)
	d2, any2 := wf.writeDecide(1, wireSideHub, 20, 64)
	if !any1 || !any2 || !reflect.DeepEqual(d1, d2) {
		t.Fatalf("decisions differ across calls: %+v vs %+v", d1, d2)
	}
	if !d1.drop {
		t.Error("op=20 drop rule did not fire at seq 20")
	}
	if len(d1.corrupt) == 0 {
		t.Error("prob=1 corrupt rule did not fire")
	}
	for _, off := range d1.corrupt {
		if off < 4 || off >= 64 {
			t.Errorf("corrupt offset %d outside (4, 64]", off)
		}
	}
	if d, any := wf.writeDecide(1, wireSideHub, 19, 64); any && d.drop {
		t.Error("op=20 drop rule fired at seq 19")
	}
	// Rank 2 is outside the corrupt rule's target and before the drop op.
	if _, any := wf.writeDecide(2, wireSideHub, 3, 64); any {
		t.Error("rules fired for an untargeted link")
	}
}

func TestStallDecideOpIndexed(t *testing.T) {
	plan := FaultPlan{Seed: 1, Rules: []FaultRule{
		{Kind: FaultWireStall, Rank: AnyRank, Op: 3, Delay: 10 * time.Millisecond},
	}}
	wf := newWireFaults(newFaultState(plan, 2), nil, 0)
	if d, ok := wf.stallDecide(1, wireSideHub, 3); !ok || d != 10*time.Millisecond {
		t.Errorf("stall at op 3 = (%v, %v), want 10ms", d, ok)
	}
	if _, ok := wf.stallDecide(1, wireSideHub, 4); ok {
		t.Error("stall fired at seq 4")
	}
}

// No plan, or a plan with only op-kind rules, disables wire injection.
func TestNewWireFaultsNil(t *testing.T) {
	if wf := newWireFaults(nil, nil, 0); wf != nil {
		t.Error("nil fault state produced a wireFaults")
	}
	plan := FaultPlan{Seed: 1, Rules: []FaultRule{{Kind: FaultDelay, Rank: AnyRank, Prob: 1, Delay: time.Millisecond}}}
	if wf := newWireFaults(newFaultState(plan, 2), nil, 0); wf != nil {
		t.Error("op-only plan produced a wireFaults")
	}
}

// runWireFaultExchange runs a small deterministic exchange (three eager
// messages hub→rank 1, then a barrier) over an in-process socket world
// with the given plan, asserting completion, and returns each world's
// recorded fault events.
func runWireFaultExchange(t *testing.T, plan *FaultPlan, mx *stats.Collector) [][]FaultEvent {
	t.Helper()
	worlds := socketWorlds(t, 2, Options{Faults: plan, Metrics: mx})
	errs := runSocketRanks(t, worlds, func(r *Rank) error {
		if r.ID() == 0 {
			for i := 0; i < 3; i++ {
				if err := r.Send(1, i+1, []byte(fmt.Sprintf("msg-%d", i))); err != nil {
					return err
				}
			}
		} else {
			for i := 0; i < 3; i++ {
				m, err := r.Recv(0, i+1)
				if err != nil {
					return err
				}
				if want := fmt.Sprintf("msg-%d", i); string(m.Data) != want {
					return fmt.Errorf("tag %d delivered %q, want %q", i+1, m.Data, want)
				}
			}
		}
		return r.Barrier()
	})
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	if worlds[0].Aborted() || worlds[1].Aborted() {
		t.Fatalf("world aborted: codes %d/%d", worlds[0].AbortCode(), worlds[1].AbortCode())
	}
	return [][]FaultEvent{worlds[0].FaultEvents(), worlds[1].FaultEvents()}
}

// A dropped frame (connection killed at first transmission) recovers by
// resume + retransmit; the program sees nothing.
func TestSocketWireDropRecovers(t *testing.T) {
	plan, err := ParseFaultPlan("seed=11;wiredrop:rank=1,op=3")
	if err != nil {
		t.Fatal(err)
	}
	mx := stats.New(2)
	events := runWireFaultExchange(t, plan, mx)
	hub := events[0]
	if len(hub) == 0 || hub[0].Kind != FaultWireDrop || hub[0].Op != 3 {
		t.Fatalf("hub events = %v, want one wiredrop at seq 3", hub)
	}
	tot := mx.Snapshot().Totals
	if tot["wire_faults_injected"] == 0 || tot["reconnects"] == 0 || tot["frames_retransmitted"] == 0 {
		t.Errorf("counters %v: want wire fault, reconnect and retransmit all nonzero", tot)
	}
}

// A corrupted frame is caught by CRC, the link fails, and resume
// retransmits the pristine bytes — delivery is intact, never garbage.
func TestSocketWireCorruptRecovers(t *testing.T) {
	plan, err := ParseFaultPlan("seed=11;wirecorrupt:rank=1,op=3")
	if err != nil {
		t.Fatal(err)
	}
	mx := stats.New(2)
	runWireFaultExchange(t, plan, mx)
	tot := mx.Snapshot().Totals
	if tot["crc_failures"] == 0 {
		t.Errorf("counters %v: corrupt frame never tripped the CRC", tot)
	}
	if tot["reconnects"] == 0 {
		t.Errorf("counters %v: corrupt frame did not force a resume", tot)
	}
}

// A duplicated frame is delivered exactly once (link-seq dedup).
func TestSocketWireDupDeliversOnce(t *testing.T) {
	plan, err := ParseFaultPlan("seed=11;wiredup:rank=1,op=2")
	if err != nil {
		t.Fatal(err)
	}
	events := runWireFaultExchange(t, plan, nil)
	// The exchange itself asserts exactly-once delivery (tags 1..3 each
	// received once); here just confirm the fault actually fired.
	fired := false
	for _, evs := range events {
		for _, ev := range evs {
			fired = fired || ev.Kind == FaultWireDup
		}
	}
	if !fired {
		t.Error("wiredup rule never fired")
	}
}

// A torn write (connection reset mid-frame) recovers like a drop.
func TestSocketWireResetRecovers(t *testing.T) {
	plan, err := ParseFaultPlan("seed=5;wirereset:rank=1,op=2")
	if err != nil {
		t.Fatal(err)
	}
	mx := stats.New(2)
	runWireFaultExchange(t, plan, mx)
	if tot := mx.Snapshot().Totals; tot["reconnects"] == 0 {
		t.Errorf("counters %v: torn write did not force a resume", tot)
	}
}

// Delay and stall slow the link without breaking it.
func TestSocketWireDelayAndStall(t *testing.T) {
	plan, err := ParseFaultPlan("seed=5;wiredelay:rank=1,op=2,dur=20ms;wirestall:rank=1,op=3,dur=20ms")
	if err != nil {
		t.Fatal(err)
	}
	events := runWireFaultExchange(t, plan, nil)
	kinds := map[FaultKind]bool{}
	for _, evs := range events {
		for _, ev := range evs {
			kinds[ev.Kind] = true
		}
	}
	if !kinds[FaultWireDelay] || !kinds[FaultWireStall] {
		t.Errorf("fired kinds %v, want wiredelay and wirestall", kinds)
	}
}

// Replaying the same seeded plan over the same program reproduces the
// identical fault trace on every world — the determinism the chaos
// harness relies on to make failing seeds debuggable.
func TestSocketWireFaultReplayIdentity(t *testing.T) {
	run := func() [][]FaultEvent {
		plan, err := ParseFaultPlan("seed=11;wiredrop:rank=1,op=3;wiredup:rank=1,op=2")
		if err != nil {
			t.Fatal(err)
		}
		return runWireFaultExchange(t, plan, nil)
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("fault traces differ across replays:\nrun 1: %v\nrun 2: %v", a, b)
	}
	if len(a[0])+len(a[1]) == 0 {
		t.Error("no fault events recorded")
	}
}
