// The multi-process socket transport: every rank is its own OS process,
// connected hub-and-spoke to the orchestrator (the process hosting rank
// 0), which listens, spawns the other ranks, routes their envelopes, runs
// the barrier, and fans aborts out.
//
// Topology. A star rather than a full mesh keeps connection count linear
// and gives the world exactly one place that knows everything: rank 0,
// which is also where MPE's Finish merge and the Pilot main process
// already live. Rank-to-rank traffic relays through the hub — two hops,
// but each frame is routed by a single goroutine doing a map-free slice
// index, and the paper's workloads are master/worker shaped around rank 0
// anyway.
//
// Delivery. Each process drains its connection eagerly into the local
// in-memory mailbox (the same mailbox the in-process transport uses), so
// the wire never blocks on an unmatched receive and the non-overtaking
// guarantee reduces to per-connection FIFO plus single-goroutine routing.
// Rendezvous sends travel as ordinary frames carrying a sequence number;
// the receiving process acks when its Rank actually matches the message
// (closing Envelope.Done closes the loop), so blocking semantics are
// preserved end-to-end without a second round trip for eager traffic.
//
// Failure. Connections are wireLinks (wirelink.go): CRC-checked,
// sequence-numbered, heartbeat-monitored and resumable. A broken
// connection gets one reconnect window — the rank dials back with a
// resume HELLO, both sides retransmit their unacked windows, and the
// program never notices. A rank that stays gone past the window (a
// crashed process, an exhausted reconnect budget) is a lost rank: the
// transport aborts the world with FaultAbortCode, exactly as an injected
// crash would, and the layers above fall back to spill-v2 salvage for
// the dead rank's log segments. Every failure mode lands in one of those
// two buckets — transparent recovery or diagnosed abort — never a hang.
package mpi

import (
	"bufio"
	"fmt"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
)

const (
	// joinTimeout bounds spawn-to-HELLO; a rank that cannot start within
	// it fails the whole Start rather than hanging the job.
	joinTimeout = 60 * time.Second
	// dialRetry is how long a joining rank keeps retrying the hub address
	// (covers externally launched ranks racing the listener).
	dialRetry = 10 * time.Second
	// shutdownGrace is how long Shutdown waits for rank processes to exit
	// on their own before killing them.
	shutdownGrace = 10 * time.Second
	// heartbeatInterval is how often each link end sends a PING.
	heartbeatInterval = 500 * time.Millisecond
	// livenessTimeout declares a link dead when nothing — payload or
	// heartbeat — has arrived for this long.
	livenessTimeout = 10 * time.Second
	// wireWriteTimeout bounds every steady-state frame write, so a
	// stalled peer becomes a link failure instead of a wedged writer.
	wireWriteTimeout = 10 * time.Second
	// reconnectWindow is how long each side gives a broken link to
	// resume before treating the peer as lost.
	reconnectWindow = 2 * time.Second
	// resumeHelloTimeout bounds the resume handshake on one accepted
	// connection, so a hostile dial cannot wedge the accept loop.
	resumeHelloTimeout = 5 * time.Second
	// byeDrainTimeout is how long a rank's Shutdown waits for its
	// goodbye (and anything queued before it) to be acked.
	byeDrainTimeout = 2 * time.Second
)

// sockTuning carries the transport timeouts, each overridable through a
// PILOT_MPI_* environment variable (Go duration syntax) so slow CI
// machines can stretch them without code changes. The environment is
// inherited by spawned rank processes, so one setting covers the world.
type sockTuning struct {
	join, dialRetry, heartbeat, liveness, write, reconnect time.Duration
}

func loadSockTuning() sockTuning {
	tn := sockTuning{
		join: joinTimeout, dialRetry: dialRetry, heartbeat: heartbeatInterval,
		liveness: livenessTimeout, write: wireWriteTimeout, reconnect: reconnectWindow,
	}
	envDur := func(name string, d *time.Duration) {
		if v := os.Getenv(name); v != "" {
			if p, err := time.ParseDuration(v); err == nil && p > 0 {
				*d = p
			}
		}
	}
	envDur("PILOT_MPI_JOIN_TIMEOUT", &tn.join)
	envDur("PILOT_MPI_DIAL_RETRY", &tn.dialRetry)
	envDur("PILOT_MPI_HEARTBEAT", &tn.heartbeat)
	envDur("PILOT_MPI_LIVENESS", &tn.liveness)
	envDur("PILOT_MPI_WRITE_TIMEOUT", &tn.write)
	envDur("PILOT_MPI_RECONNECT_WINDOW", &tn.reconnect)
	return tn
}

type socketTransport struct {
	w       *World
	size    int
	local   int
	network string // "unix" or "tcp"
	addr    string // join form: "unix:<path>" or "tcp:<host:port>"
	box     *mailbox
	tune    sockTuning
	wf      *wireFaults

	// Rendezvous bookkeeping: outbound seq → the sender's Done channel,
	// closed when the matching ACK comes back.
	seq   atomic.Uint64
	ackMu sync.Mutex
	acks  map[uint64]chan struct{}

	teardown sync.Once
	closing  atomic.Bool
	hbStop   chan struct{}
	hbOnce   sync.Once

	// barCh delivers this process's barrier release; buffered one deep —
	// a rank has at most one barrier outstanding.
	barCh chan struct{}

	// Orchestrator state (rank 0 only).
	ln         net.Listener
	links      []*wireLink // by rank; nil for rank 0
	resumed    []chan struct{}
	cmds       []*exec.Cmd // by rank; nil when not spawned by us
	readerDone []chan struct{}
	acceptDone chan struct{}
	byed       []atomic.Bool
	barMu      sync.Mutex
	barCount   int
	sockDir    string // temp dir holding the unix socket, removed on Shutdown

	// Rank state (non-zero ranks).
	hub *wireLink
}

func newSocketTransport(w *World, n int, opts Options) (*socketTransport, error) {
	network := "unix"
	if opts.Transport == TransportTCP {
		network = "tcp"
	}
	t := &socketTransport{
		w:       w,
		size:    n,
		network: network,
		box:     newMailbox(),
		tune:    loadSockTuning(),
		acks:    map[uint64]chan struct{}{},
		barCh:   make(chan struct{}, 1),
	}
	if addr, rank, ok := joinTarget(opts); ok {
		if rank < 1 || rank >= n {
			return nil, fmt.Errorf("mpi: joining rank %d out of range [1,%d)", rank, n)
		}
		t.local = rank
		t.wf = newWireFaults(w.faults, w.metrics, rank)
		return t, t.join(addr, rank)
	}
	t.local = 0
	t.wf = newWireFaults(w.faults, w.metrics, 0)
	return t, t.orchestrate(opts)
}

// joinTarget decides whether this process joins an existing world and at
// which address/rank: an explicit Options.JoinAddr wins, else the
// PILOT_MPI_* environment a spawning orchestrator set. The environment
// variables are consumed (unset) so a joined rank that itself creates a
// nested world does not accidentally re-join its parent's.
func joinTarget(opts Options) (addr string, rank int, ok bool) {
	if opts.JoinAddr != "" {
		return opts.JoinAddr, opts.JoinRank, true
	}
	addr = os.Getenv(EnvAddr)
	rankStr := os.Getenv(EnvRank)
	if addr == "" || rankStr == "" {
		return "", 0, false
	}
	rank, err := strconv.Atoi(rankStr)
	if err != nil {
		return "", 0, false
	}
	os.Unsetenv(EnvAddr)
	os.Unsetenv(EnvRank)
	os.Unsetenv(EnvWorld)
	return addr, rank, true
}

func splitAddr(addr string) (network, target string, err error) {
	switch {
	case strings.HasPrefix(addr, "unix:"):
		return "unix", addr[len("unix:"):], nil
	case strings.HasPrefix(addr, "tcp:"):
		return "tcp", addr[len("tcp:"):], nil
	default:
		return "", "", fmt.Errorf("mpi: join address %q (want unix:<path> or tcp:<host:port>)", addr)
	}
}

// backoffSleep sleeps a jittered backoff and doubles it up to cap. The
// jitter decorrelates many ranks retrying the same hub; it carries no
// determinism obligation (fault decisions never draw from it).
func backoffSleep(backoff *time.Duration, cap time.Duration) {
	d := *backoff/2 + time.Duration(rand.Int63n(int64(*backoff/2)+1))
	time.Sleep(d)
	if *backoff < cap {
		*backoff *= 2
	}
}

// join connects this process to the hub as the given rank: a dial loop
// with exponential backoff (a tight retry loop would hammer a slow CI
// machine exactly when it is least able to cope), then the
// HELLO/WELCOME handshake.
func (t *socketTransport) join(addr string, rank int) error {
	network, target, err := splitAddr(addr)
	if err != nil {
		return err
	}
	t.network = network
	t.addr = addr
	var conn net.Conn
	deadline := time.Now().Add(t.tune.dialRetry)
	backoff := 10 * time.Millisecond
	for {
		conn, err = net.DialTimeout(network, target, time.Second)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("mpi: rank %d cannot reach hub at %s: %w", rank, addr, err)
		}
		backoffSleep(&backoff, 500*time.Millisecond)
	}
	r := bufio.NewReader(conn)
	err = writeRawFrame(conn, &frame{typ: frHello, rank: rank, world: t.size}, t.tune.write)
	if err == nil {
		var welcome *frame
		welcome, err = readRawFrame(conn, r, t.tune.join)
		if err == nil && welcome.typ != frWelcome {
			err = fmt.Errorf("frame type %d", welcome.typ)
		}
	}
	if err != nil {
		conn.Close()
		return fmt.Errorf("mpi: rank %d handshake: %w", rank, err)
	}
	t.hub = newWireLink(conn, r, t.w.metrics, rank, rank, wireSideRank, t.wf, t.tune.write)
	return nil
}

// orchestrate makes this process rank 0: listen, spawn the other ranks
// (unless Options.NoSpawn) and collect their HELLOs.
func (t *socketTransport) orchestrate(opts Options) error {
	target := opts.ListenAddr
	if t.network == "unix" && target == "" {
		dir, err := os.MkdirTemp("", "pilot-mpi-")
		if err != nil {
			return fmt.Errorf("mpi: socket dir: %w", err)
		}
		t.sockDir = dir
		target = filepath.Join(dir, "world.sock")
	}
	if t.network == "tcp" && target == "" {
		target = "127.0.0.1:0"
	}
	ln, err := net.Listen(t.network, target)
	if err != nil {
		t.cleanupDir()
		return fmt.Errorf("mpi: listen %s %s: %w", t.network, target, err)
	}
	t.ln = ln
	if t.network == "tcp" {
		target = ln.Addr().String()
	}
	t.addr = t.network + ":" + target
	t.links = make([]*wireLink, t.size)
	t.resumed = make([]chan struct{}, t.size)
	t.cmds = make([]*exec.Cmd, t.size)
	t.readerDone = make([]chan struct{}, t.size)
	t.byed = make([]atomic.Bool, t.size)
	for rank := 1; rank < t.size; rank++ {
		t.resumed[rank] = make(chan struct{}, 1)
	}

	fail := func(err error) error {
		for _, cmd := range t.cmds {
			if cmd != nil {
				cmd.Process.Kill()
				cmd.Wait()
			}
		}
		for _, l := range t.links {
			if l != nil {
				l.close()
			}
		}
		ln.Close()
		t.cleanupDir()
		return err
	}

	if !opts.NoSpawn {
		for rank := 1; rank < t.size; rank++ {
			cmd, err := t.spawn(rank, opts)
			if err != nil {
				return fail(fmt.Errorf("mpi: spawn rank %d: %w", rank, err))
			}
			t.cmds[rank] = cmd
		}
	}

	type deadliner interface{ SetDeadline(time.Time) error }
	if d, ok := ln.(deadliner); ok {
		d.SetDeadline(time.Now().Add(t.tune.join))
	}
	for joined := 1; joined < t.size; joined++ {
		conn, err := ln.Accept()
		if err != nil {
			return fail(fmt.Errorf("mpi: waiting for %d more ranks: %w", t.size-joined, err))
		}
		r := bufio.NewReader(conn)
		hello, err := readRawFrame(conn, r, t.tune.join)
		if err == nil && hello.typ != frHello {
			err = fmt.Errorf("frame type %d", hello.typ)
		}
		if err != nil {
			conn.Close()
			return fail(fmt.Errorf("mpi: bad handshake: %v", err))
		}
		if hello.world != t.size {
			conn.Close()
			return fail(fmt.Errorf("mpi: rank %d built for world size %d, want %d",
				hello.rank, hello.world, t.size))
		}
		if hello.rank < 1 || hello.rank >= t.size || hello.epoch != 0 || t.links[hello.rank] != nil {
			conn.Close()
			return fail(fmt.Errorf("mpi: bad or duplicate hello for rank %d", hello.rank))
		}
		if err := writeRawFrame(conn, &frame{typ: frWelcome}, t.tune.write); err != nil {
			conn.Close()
			return fail(fmt.Errorf("mpi: rank %d welcome: %v", hello.rank, err))
		}
		t.links[hello.rank] = newWireLink(conn, r, t.w.metrics, 0, hello.rank, wireSideHub, t.wf, t.tune.write)
	}
	if d, ok := ln.(deadliner); ok {
		d.SetDeadline(time.Time{})
	}
	return nil
}

func (t *socketTransport) cleanupDir() {
	if t.sockDir != "" {
		os.RemoveAll(t.sockDir)
	}
}

// spawn launches the process for one remote rank: the configured command
// or a re-exec of this binary, plus the PILOT_MPI_* join environment.
func (t *socketTransport) spawn(rank int, opts Options) (*exec.Cmd, error) {
	argv := opts.SpawnCommand
	if len(argv) == 0 {
		exe, err := os.Executable()
		if err != nil {
			return nil, err
		}
		argv = append([]string{exe}, os.Args[1:]...)
	}
	cmd := exec.Command(argv[0], argv[1:]...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Env = append(os.Environ(), opts.SpawnEnv...)
	cmd.Env = append(cmd.Env,
		EnvRank+"="+strconv.Itoa(rank),
		EnvAddr+"="+t.addr,
		EnvWorld+"="+strconv.Itoa(t.size),
	)
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	return cmd, nil
}

// startReaders launches the per-connection reader, heartbeat and (at the
// hub) resume-accept goroutines. Split from construction so the World is
// fully wired before any frame can call back into it.
func (t *socketTransport) startReaders() {
	t.hbStop = make(chan struct{})
	if t.local != 0 {
		go t.rankReader()
		go t.heartbeat(t.hub)
		return
	}
	t.acceptDone = make(chan struct{})
	go t.acceptLoop()
	for rank, l := range t.links {
		if l == nil {
			continue
		}
		t.readerDone[rank] = make(chan struct{})
		go t.hubReader(rank, l)
		go t.heartbeat(l)
	}
}

// heartbeat keeps one link's liveness clock honest: a PING every
// interval (the peer answers PONG, which also carries its cumulative
// ack) and a liveness check that declares the link dead when nothing —
// heartbeat or payload — has arrived within the timeout. "EOF is the
// only death signal" becomes "silence is a death signal too".
func (t *socketTransport) heartbeat(l *wireLink) {
	tick := time.NewTicker(t.tune.heartbeat)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
		case <-t.hbStop:
			return
		case <-t.w.abortCh:
			return
		}
		if t.closing.Load() || l.isDown() {
			continue // a down link is the recovery path's problem
		}
		if l.sinceRead() > t.tune.liveness {
			l.fail() // wakes the blocked reader into recovery
			continue
		}
		if l.send(&frame{typ: frPing}) == nil {
			t.w.metrics.WireCounted(t.local, stats.CtrHeartbeats, 1)
		}
	}
}

// expectedEOF reports whether a connection ending now is normal rather
// than a lost rank.
func (t *socketTransport) expectedEOF() bool {
	return t.closing.Load() || t.w.Aborted()
}

// acceptLoop accepts post-join connections: resume dials from ranks
// whose link broke. It exits when the listener closes at Shutdown.
func (t *socketTransport) acceptLoop() {
	defer close(t.acceptDone)
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return
		}
		go t.handleResume(conn)
	}
}

// handleResume vets one resume dial: a CRC-framed HELLO with a known
// rank, the right world size and a fresh epoch, all within a deadline —
// anything else is closed without touching the live links, so a hostile
// or stale connection can never wedge the world.
func (t *socketTransport) handleResume(conn net.Conn) {
	r := bufio.NewReader(conn)
	hello, err := readRawFrame(conn, r, resumeHelloTimeout)
	if err != nil || hello.typ != frHello || hello.world != t.size ||
		hello.rank < 1 || hello.rank >= t.size || hello.epoch == 0 ||
		t.links[hello.rank] == nil || t.byed[hello.rank].Load() || t.expectedEOF() {
		conn.Close()
		return
	}
	l := t.links[hello.rank]
	welcome := &frame{typ: frWelcome, epoch: hello.epoch, ack: l.recvSeq.Load()}
	if writeRawFrame(conn, welcome, t.tune.write) != nil {
		conn.Close()
		return
	}
	if l.resume(conn, r, hello.ack, uint32(hello.epoch), true) != nil {
		conn.Close()
		return
	}
	select {
	case t.resumed[hello.rank] <- struct{}{}:
	default:
	}
}

// hubReader drains one rank's link at the orchestrator: local deliveries
// go to the mailbox, everything else is routed. A broken link gets one
// reconnect window to resume before the rank is declared lost.
func (t *socketTransport) hubReader(rank int, l *wireLink) {
	defer close(t.readerDone[rank])
	for {
		fr, err := l.recv()
		if err != nil {
			if t.byed[rank].Load() || t.expectedEOF() {
				return
			}
			select {
			case <-t.resumed[rank]:
				continue
			case <-time.After(t.tune.reconnect):
				if !t.byed[rank].Load() && !t.expectedEOF() {
					// Lost rank: the process died, or its link could not
					// resume in time. Tear the job down like an injected
					// crash so salvage can run.
					t.w.abort(FaultAbortCode)
				}
				return
			case <-t.w.abortCh:
				return
			}
		}
		switch fr.typ {
		case frMsg, frAck:
			if fr.dst == 0 {
				t.deliver(fr)
				break
			}
			if fr.dst < 0 || fr.dst >= t.size || t.links[fr.dst] == nil {
				t.w.abort(FaultAbortCode)
				return
			}
			if t.byed[fr.dst].Load() {
				break // rank exited cleanly; drop like mail to a finished rank
			}
			if err := t.links[fr.dst].send(fr); err != nil && !t.byed[fr.dst].Load() && !t.expectedEOF() {
				t.w.abort(FaultAbortCode)
				return
			}
		case frBarrier:
			t.barrierEnter()
		case frAbort:
			t.w.abort(fr.code)
		case frBye:
			t.w.sent[rank].Add(fr.traffic.Sent)
			t.w.sentBytes[rank].Add(fr.traffic.SentBytes)
			t.w.recvd[rank].Add(fr.traffic.Received)
			t.w.recvdBytes[rank].Add(fr.traffic.RecvBytes)
			t.byed[rank].Store(true)
		}
	}
}

// rankReader drains the hub link at a non-zero rank, dialing the hub
// back whenever the link breaks.
func (t *socketTransport) rankReader() {
	for {
		fr, err := t.hub.recv()
		if err != nil {
			if t.expectedEOF() {
				return
			}
			if t.rankRecover() {
				continue
			}
			if !t.expectedEOF() {
				t.w.abort(FaultAbortCode)
			}
			return
		}
		switch fr.typ {
		case frMsg, frAck:
			t.deliver(fr)
		case frRelease:
			select {
			case t.barCh <- struct{}{}:
			default:
			}
		case frAbort:
			t.w.abort(fr.code)
		}
	}
}

// rankRecover dials the hub back and resumes the link within the
// reconnect window: exponential backoff between attempts, a fresh epoch
// per attempt so the hub can tell a retry from a replay. False means the
// window closed (or the world is going down) — the caller's move is then
// a diagnosed abort, never a hang.
func (t *socketTransport) rankRecover() bool {
	_, target, err := splitAddr(t.addr)
	if err != nil {
		return false
	}
	deadline := time.Now().Add(t.tune.reconnect)
	backoff := 10 * time.Millisecond
	// Gate on Aborted, not expectedEOF: Shutdown also recovers through
	// here to flush a goodbye lost to a link failure (the reader itself
	// checks expectedEOF before calling).
	for !t.w.Aborted() {
		conn, err := net.DialTimeout(t.network, target, time.Second)
		if err == nil && t.resumeHub(conn) {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		backoffSleep(&backoff, 200*time.Millisecond)
	}
	return false
}

// resumeHub runs the resume handshake on a fresh connection: HELLO with
// the next epoch and our cumulative ack, the hub's WELCOME with its ack,
// then window prune + retransmit inside resume.
func (t *socketTransport) resumeHub(conn net.Conn) bool {
	epoch := t.hub.nextEpoch()
	hello := &frame{typ: frHello, rank: t.local, world: t.size, epoch: int(epoch), ack: t.hub.recvSeq.Load()}
	if writeRawFrame(conn, hello, t.tune.write) != nil {
		conn.Close()
		return false
	}
	r := bufio.NewReader(conn)
	welcome, err := readRawFrame(conn, r, resumeHelloTimeout)
	if err != nil || welcome.typ != frWelcome {
		conn.Close()
		return false
	}
	if t.hub.resume(conn, r, welcome.ack, epoch, false) != nil {
		conn.Close()
		return false
	}
	return true
}

// deliver lands a MSG in the local mailbox (reconstructing the
// rendezvous Done/ACK linkage) or resolves an ACK.
func (t *socketTransport) deliver(fr *frame) {
	if fr.typ == frAck {
		t.ackMu.Lock()
		done := t.acks[fr.seq]
		delete(t.acks, fr.seq)
		t.ackMu.Unlock()
		if done != nil {
			close(done)
		}
		return
	}
	env := &Envelope{Ctx: fr.ctx, Src: fr.src, Tag: fr.tag, Data: fr.payload}
	if fr.flags&flagNeedAck != 0 {
		env.Done = make(chan struct{})
		src, seq := fr.src, fr.seq
		// The local Rank closes Done when it matches the message; relay
		// that release back to the blocked sender as an ACK.
		go func() {
			select {
			case <-env.Done:
				t.writeTo(src, &frame{typ: frAck, dst: src, seq: seq})
			case <-t.w.abortCh:
			}
		}()
	}
	t.box.put(env)
}

// errRankGone marks a write to a rank that already said goodbye; the
// message is dropped, matching the in-process semantics of mail to a
// finished rank sitting unread in its mailbox.
var errRankGone = fmt.Errorf("mpi: rank exited")

// writeTo sends one frame toward rank dst: directly at the hub, via the
// hub elsewhere. Link-level failures are absorbed by the window (the
// frame retransmits after resume); the errors that surface mean the
// frame can never arrive.
func (t *socketTransport) writeTo(dst int, fr *frame) error {
	if t.local != 0 {
		return t.hub.send(fr)
	}
	if dst < 1 || dst >= t.size || t.links[dst] == nil {
		return fmt.Errorf("mpi: no connection for rank %d", dst)
	}
	if t.byed[dst].Load() {
		return errRankGone
	}
	if err := t.links[dst].send(fr); err != nil {
		if t.byed[dst].Load() || t.expectedEOF() {
			return errRankGone
		}
		return err
	}
	return nil
}

func (t *socketTransport) LocalRank() int { return t.local }

func (t *socketTransport) Put(dst int, env *Envelope) bool {
	if t.w.Aborted() {
		return false
	}
	if dst == t.local {
		return t.box.put(env)
	}
	fr := &frame{typ: frMsg, dst: dst, ctx: env.Ctx, src: env.Src, tag: env.Tag, payload: env.Data}
	if env.Done != nil {
		fr.flags |= flagNeedAck
		fr.seq = t.seq.Add(1)
		t.ackMu.Lock()
		t.acks[fr.seq] = env.Done
		t.ackMu.Unlock()
	}
	if err := t.writeTo(dst, fr); err != nil {
		if env.Done != nil {
			t.ackMu.Lock()
			delete(t.acks, fr.seq)
			t.ackMu.Unlock()
		}
		if err == errRankGone {
			// Clean exit on the other side: the message is undeliverable
			// but the world is healthy. A rendezvous send to a finished
			// rank would block forever in-process too.
			return true
		}
		if !t.expectedEOF() {
			t.w.abort(FaultAbortCode)
		}
		return false
	}
	return true
}

func (t *socketTransport) Take(me, ctx, src, tag int) (*Envelope, bool) {
	t.checkLocal(me)
	return t.box.take(ctx, src, tag)
}

func (t *socketTransport) Probe(me, ctx, src, tag int, block bool) (Status, bool) {
	t.checkLocal(me)
	return t.box.probe(ctx, src, tag, block)
}

func (t *socketTransport) checkLocal(me int) {
	if me != t.local {
		panic(invariantf("mpi: rank %d is not hosted by this process (local rank %d)", me, t.local))
	}
}

// barrierEnter counts one rank into the barrier at the hub; the size'th
// entry releases everyone.
func (t *socketTransport) barrierEnter() {
	t.barMu.Lock()
	t.barCount++
	fire := t.barCount == t.size
	if fire {
		t.barCount = 0
	}
	t.barMu.Unlock()
	if !fire {
		return
	}
	for rank, l := range t.links {
		if l == nil {
			continue
		}
		if err := l.send(&frame{typ: frRelease}); err != nil && !t.byed[rank].Load() && !t.expectedEOF() {
			// A RELEASE that cannot even be buffered for retransmission
			// will never reach the rank, and a rank waiting on a barrier
			// that can never release is a hang. Fold it into the
			// lost-rank path instead of silently dropping it.
			t.w.abort(FaultAbortCode)
		}
	}
	select {
	case t.barCh <- struct{}{}:
	default:
	}
}

func (t *socketTransport) Barrier(me int) error {
	t.checkLocal(me)
	if t.w.Aborted() {
		return ErrAborted
	}
	if t.local == 0 {
		t.barrierEnter()
	} else if err := t.hub.send(&frame{typ: frBarrier, rank: me}); err != nil {
		if !t.expectedEOF() {
			t.w.abort(FaultAbortCode)
		}
		return ErrAborted
	}
	select {
	case <-t.barCh:
		return nil
	case <-t.w.abortCh:
		return ErrAborted
	}
}

func (t *socketTransport) Abort(code int) {
	t.teardown.Do(func() {
		t.box.close()
		fr := &frame{typ: frAbort, code: code}
		if t.hub != nil {
			t.hub.send(fr)
		}
		for _, l := range t.links {
			if l != nil {
				l.send(fr)
			}
		}
	})
}

func (t *socketTransport) Addr() string { return t.addr }

func (t *socketTransport) childPID(rank int) int {
	if t.local != 0 || rank < 0 || rank >= t.size || t.cmds[rank] == nil {
		return -1
	}
	return t.cmds[rank].Process.Pid
}

func (t *socketTransport) Shutdown() error {
	t.closing.Store(true)
	if t.hbStop != nil {
		t.hbOnce.Do(func() { close(t.hbStop) })
	}
	if t.local != 0 {
		// Goodbye carries this rank's traffic counters so the
		// orchestrator's totals stay complete after the process is gone;
		// the drain waits for the hub's ack so the goodbye (and anything
		// queued before it) survives the close.
		t.hub.send(&frame{typ: frBye, rank: t.local, traffic: t.w.Traffic(t.local)})
		if !t.hub.drain(byeDrainTimeout) && t.hub.isDown() && !t.w.Aborted() {
			// The goodbye was lost to a link failure, and the reader that
			// would normally drive recovery has already exited (closing is
			// set). One bounded recovery attempt flushes it, with a
			// throwaway reader pumping the hub's acks; otherwise the hub
			// diagnoses this rank as lost.
			if t.rankRecover() {
				go func() {
					for {
						if _, err := t.hub.recv(); err != nil {
							return
						}
					}
				}()
				t.hub.drain(byeDrainTimeout)
			}
		}
		return t.hub.close()
	}
	deadline := time.Now().Add(shutdownGrace)
	remaining := func() time.Duration {
		d := time.Until(deadline)
		if d < 0 {
			return 0
		}
		return d
	}
	// First let each rank's reader drain to EOF (clean exits close their
	// end after BYE), then reap the processes we spawned.
	for rank := 1; rank < t.size; rank++ {
		if ch := t.readerDone[rank]; ch != nil {
			select {
			case <-ch:
			case <-time.After(remaining()):
			}
		}
	}
	var failed []string
	for rank := 1; rank < t.size; rank++ {
		cmd := t.cmds[rank]
		if cmd == nil {
			continue
		}
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		var err error
		select {
		case err = <-done:
		case <-time.After(remaining()):
			cmd.Process.Kill()
			err = fmt.Errorf("killed after %s: %w", shutdownGrace, <-done)
		}
		if err != nil {
			failed = append(failed, fmt.Sprintf("rank %d: %v", rank, err))
		}
	}
	t.ln.Close()
	if t.acceptDone != nil {
		<-t.acceptDone
	}
	for _, l := range t.links {
		if l != nil {
			l.close()
		}
	}
	t.cleanupDir()
	if len(failed) > 0 && !t.w.Aborted() {
		return fmt.Errorf("mpi: rank processes failed: %s", strings.Join(failed, "; "))
	}
	return nil
}
