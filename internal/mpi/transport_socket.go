// The multi-process socket transport: every rank is its own OS process,
// connected hub-and-spoke to the orchestrator (the process hosting rank
// 0), which listens, spawns the other ranks, routes their envelopes, runs
// the barrier, and fans aborts out.
//
// Topology. A star rather than a full mesh keeps connection count linear
// and gives the world exactly one place that knows everything: rank 0,
// which is also where MPE's Finish merge and the Pilot main process
// already live. Rank-to-rank traffic relays through the hub — two hops,
// but each frame is routed by a single goroutine doing a map-free slice
// index, and the paper's workloads are master/worker shaped around rank 0
// anyway.
//
// Delivery. Each process drains its connection eagerly into the local
// in-memory mailbox (the same mailbox the in-process transport uses), so
// the wire never blocks on an unmatched receive and the non-overtaking
// guarantee reduces to per-connection FIFO plus single-goroutine routing.
// Rendezvous sends travel as ordinary frames carrying a sequence number;
// the receiving process acks when its Rank actually matches the message
// (closing Envelope.Done closes the loop), so blocking semantics are
// preserved end-to-end without a second round trip for eager traffic.
//
// Failure. A connection that drops without a BYE frame is a lost rank:
// the transport aborts the world with FaultAbortCode, exactly as an
// injected crash would, and the layers above fall back to spill-v2
// salvage for the dead rank's log segments.
package mpi

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

const (
	// joinTimeout bounds spawn-to-HELLO; a rank that cannot start within
	// it fails the whole Start rather than hanging the job.
	joinTimeout = 60 * time.Second
	// dialRetry is how long a joining rank keeps retrying the hub address
	// (covers externally launched ranks racing the listener).
	dialRetry = 10 * time.Second
	// shutdownGrace is how long Shutdown waits for rank processes to exit
	// on their own before killing them.
	shutdownGrace = 10 * time.Second
)

type socketTransport struct {
	w       *World
	size    int
	local   int
	network string // "unix" or "tcp"
	addr    string // join form: "unix:<path>" or "tcp:<host:port>"
	box     *mailbox

	// Rendezvous bookkeeping: outbound seq → the sender's Done channel,
	// closed when the matching ACK comes back.
	seq   atomic.Uint64
	ackMu sync.Mutex
	acks  map[uint64]chan struct{}

	teardown sync.Once
	closing  atomic.Bool

	// barCh delivers this process's barrier release; buffered one deep —
	// a rank has at most one barrier outstanding.
	barCh chan struct{}

	// Orchestrator state (rank 0 only).
	ln         net.Listener
	conns      []*wireConn // by rank; nil for rank 0
	cmds       []*exec.Cmd // by rank; nil when not spawned by us
	readerDone []chan struct{}
	byed       []atomic.Bool
	barMu      sync.Mutex
	barCount   int
	sockDir    string // temp dir holding the unix socket, removed on Shutdown

	// Rank state (non-zero ranks).
	hub *wireConn
}

func newSocketTransport(w *World, n int, opts Options) (*socketTransport, error) {
	network := "unix"
	if opts.Transport == TransportTCP {
		network = "tcp"
	}
	t := &socketTransport{
		w:       w,
		size:    n,
		network: network,
		box:     newMailbox(),
		acks:    map[uint64]chan struct{}{},
		barCh:   make(chan struct{}, 1),
	}
	if addr, rank, ok := joinTarget(opts); ok {
		if rank < 1 || rank >= n {
			return nil, fmt.Errorf("mpi: joining rank %d out of range [1,%d)", rank, n)
		}
		t.local = rank
		return t, t.join(addr, rank)
	}
	t.local = 0
	return t, t.orchestrate(opts)
}

// joinTarget decides whether this process joins an existing world and at
// which address/rank: an explicit Options.JoinAddr wins, else the
// PILOT_MPI_* environment a spawning orchestrator set. The environment
// variables are consumed (unset) so a joined rank that itself creates a
// nested world does not accidentally re-join its parent's.
func joinTarget(opts Options) (addr string, rank int, ok bool) {
	if opts.JoinAddr != "" {
		return opts.JoinAddr, opts.JoinRank, true
	}
	addr = os.Getenv(EnvAddr)
	rankStr := os.Getenv(EnvRank)
	if addr == "" || rankStr == "" {
		return "", 0, false
	}
	rank, err := strconv.Atoi(rankStr)
	if err != nil {
		return "", 0, false
	}
	os.Unsetenv(EnvAddr)
	os.Unsetenv(EnvRank)
	os.Unsetenv(EnvWorld)
	return addr, rank, true
}

func splitAddr(addr string) (network, target string, err error) {
	switch {
	case strings.HasPrefix(addr, "unix:"):
		return "unix", addr[len("unix:"):], nil
	case strings.HasPrefix(addr, "tcp:"):
		return "tcp", addr[len("tcp:"):], nil
	default:
		return "", "", fmt.Errorf("mpi: join address %q (want unix:<path> or tcp:<host:port>)", addr)
	}
}

// join connects this process to the hub as the given rank.
func (t *socketTransport) join(addr string, rank int) error {
	network, target, err := splitAddr(addr)
	if err != nil {
		return err
	}
	t.network = network
	t.addr = addr
	var conn net.Conn
	deadline := time.Now().Add(dialRetry)
	for {
		conn, err = net.DialTimeout(network, target, time.Second)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("mpi: rank %d cannot reach hub at %s: %w", rank, addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.hub = newWireConn(conn, t.w.metrics, rank)
	if err := t.hub.write(&frame{typ: frHello, rank: rank, world: t.size}); err != nil {
		conn.Close()
		return fmt.Errorf("mpi: rank %d handshake: %w", rank, err)
	}
	return nil
}

// orchestrate makes this process rank 0: listen, spawn the other ranks
// (unless Options.NoSpawn) and collect their HELLOs.
func (t *socketTransport) orchestrate(opts Options) error {
	target := opts.ListenAddr
	if t.network == "unix" && target == "" {
		dir, err := os.MkdirTemp("", "pilot-mpi-")
		if err != nil {
			return fmt.Errorf("mpi: socket dir: %w", err)
		}
		t.sockDir = dir
		target = filepath.Join(dir, "world.sock")
	}
	if t.network == "tcp" && target == "" {
		target = "127.0.0.1:0"
	}
	ln, err := net.Listen(t.network, target)
	if err != nil {
		t.cleanupDir()
		return fmt.Errorf("mpi: listen %s %s: %w", t.network, target, err)
	}
	t.ln = ln
	if t.network == "tcp" {
		target = ln.Addr().String()
	}
	t.addr = t.network + ":" + target
	t.conns = make([]*wireConn, t.size)
	t.cmds = make([]*exec.Cmd, t.size)
	t.readerDone = make([]chan struct{}, t.size)
	t.byed = make([]atomic.Bool, t.size)

	fail := func(err error) error {
		for _, cmd := range t.cmds {
			if cmd != nil {
				cmd.Process.Kill()
				cmd.Wait()
			}
		}
		for _, c := range t.conns {
			if c != nil {
				c.c.Close()
			}
		}
		ln.Close()
		t.cleanupDir()
		return err
	}

	if !opts.NoSpawn {
		for rank := 1; rank < t.size; rank++ {
			cmd, err := t.spawn(rank, opts)
			if err != nil {
				return fail(fmt.Errorf("mpi: spawn rank %d: %w", rank, err))
			}
			t.cmds[rank] = cmd
		}
	}

	type deadliner interface{ SetDeadline(time.Time) error }
	if d, ok := ln.(deadliner); ok {
		d.SetDeadline(time.Now().Add(joinTimeout))
	}
	for joined := 1; joined < t.size; joined++ {
		conn, err := ln.Accept()
		if err != nil {
			return fail(fmt.Errorf("mpi: waiting for %d more ranks: %w", t.size-joined, err))
		}
		conn.SetReadDeadline(time.Now().Add(joinTimeout))
		wc := newWireConn(conn, t.w.metrics, 0)
		hello, err := wc.read()
		if err == nil && hello.typ != frHello {
			err = fmt.Errorf("frame type %d", hello.typ)
		}
		if err != nil {
			conn.Close()
			return fail(fmt.Errorf("mpi: bad handshake: %v", err))
		}
		if hello.world != t.size {
			conn.Close()
			return fail(fmt.Errorf("mpi: rank %d built for world size %d, want %d",
				hello.rank, hello.world, t.size))
		}
		if hello.rank < 1 || hello.rank >= t.size || t.conns[hello.rank] != nil {
			conn.Close()
			return fail(fmt.Errorf("mpi: bad or duplicate hello for rank %d", hello.rank))
		}
		conn.SetReadDeadline(time.Time{})
		t.conns[hello.rank] = wc
	}
	if d, ok := ln.(deadliner); ok {
		d.SetDeadline(time.Time{})
	}
	return nil
}

func (t *socketTransport) cleanupDir() {
	if t.sockDir != "" {
		os.RemoveAll(t.sockDir)
	}
}

// spawn launches the process for one remote rank: the configured command
// or a re-exec of this binary, plus the PILOT_MPI_* join environment.
func (t *socketTransport) spawn(rank int, opts Options) (*exec.Cmd, error) {
	argv := opts.SpawnCommand
	if len(argv) == 0 {
		exe, err := os.Executable()
		if err != nil {
			return nil, err
		}
		argv = append([]string{exe}, os.Args[1:]...)
	}
	cmd := exec.Command(argv[0], argv[1:]...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Env = append(os.Environ(), opts.SpawnEnv...)
	cmd.Env = append(cmd.Env,
		EnvRank+"="+strconv.Itoa(rank),
		EnvAddr+"="+t.addr,
		EnvWorld+"="+strconv.Itoa(t.size),
	)
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	return cmd, nil
}

// startReaders launches the per-connection reader goroutines. Split from
// construction so the World is fully wired before any frame can call
// back into it.
func (t *socketTransport) startReaders() {
	if t.local != 0 {
		go t.rankReader()
		return
	}
	for rank, c := range t.conns {
		if c == nil {
			continue
		}
		t.readerDone[rank] = make(chan struct{})
		go t.hubReader(rank, c)
	}
}

// expectedEOF reports whether a connection ending now is normal rather
// than a lost rank.
func (t *socketTransport) expectedEOF() bool {
	return t.closing.Load() || t.w.Aborted()
}

// hubReader drains one rank's connection at the orchestrator: local
// deliveries go to the mailbox, everything else is routed.
func (t *socketTransport) hubReader(rank int, c *wireConn) {
	defer close(t.readerDone[rank])
	for {
		fr, err := c.read()
		if err != nil {
			if !t.byed[rank].Load() && !t.expectedEOF() {
				// Lost rank: the process died without a goodbye. Tear the
				// job down like an injected crash so salvage can run.
				t.w.abort(FaultAbortCode)
			}
			return
		}
		switch fr.typ {
		case frMsg, frAck:
			if fr.dst == 0 {
				t.deliver(fr)
				break
			}
			if fr.dst < 0 || fr.dst >= t.size || t.conns[fr.dst] == nil {
				t.w.abort(FaultAbortCode)
				return
			}
			if t.byed[fr.dst].Load() {
				break // rank exited cleanly; drop like mail to a finished rank
			}
			if err := t.conns[fr.dst].write(fr); err != nil && !t.byed[fr.dst].Load() && !t.expectedEOF() {
				t.w.abort(FaultAbortCode)
				return
			}
		case frBarrier:
			t.barrierEnter()
		case frAbort:
			t.w.abort(fr.code)
		case frBye:
			t.w.sent[rank].Add(fr.traffic.Sent)
			t.w.sentBytes[rank].Add(fr.traffic.SentBytes)
			t.w.recvd[rank].Add(fr.traffic.Received)
			t.w.recvdBytes[rank].Add(fr.traffic.RecvBytes)
			t.byed[rank].Store(true)
		}
	}
}

// rankReader drains the hub connection at a non-zero rank.
func (t *socketTransport) rankReader() {
	for {
		fr, err := t.hub.read()
		if err != nil {
			if !t.expectedEOF() {
				t.w.abort(FaultAbortCode)
			}
			return
		}
		switch fr.typ {
		case frMsg, frAck:
			t.deliver(fr)
		case frRelease:
			select {
			case t.barCh <- struct{}{}:
			default:
			}
		case frAbort:
			t.w.abort(fr.code)
		}
	}
}

// deliver lands a MSG in the local mailbox (reconstructing the
// rendezvous Done/ACK linkage) or resolves an ACK.
func (t *socketTransport) deliver(fr *frame) {
	if fr.typ == frAck {
		t.ackMu.Lock()
		done := t.acks[fr.seq]
		delete(t.acks, fr.seq)
		t.ackMu.Unlock()
		if done != nil {
			close(done)
		}
		return
	}
	env := &Envelope{Ctx: fr.ctx, Src: fr.src, Tag: fr.tag, Data: fr.payload}
	if fr.flags&flagNeedAck != 0 {
		env.Done = make(chan struct{})
		src, seq := fr.src, fr.seq
		// The local Rank closes Done when it matches the message; relay
		// that release back to the blocked sender as an ACK.
		go func() {
			select {
			case <-env.Done:
				t.writeTo(src, &frame{typ: frAck, dst: src, seq: seq})
			case <-t.w.abortCh:
			}
		}()
	}
	t.box.put(env)
}

// errRankGone marks a write to a rank that already said goodbye; the
// message is dropped, matching the in-process semantics of mail to a
// finished rank sitting unread in its mailbox.
var errRankGone = fmt.Errorf("mpi: rank exited")

// writeTo sends one frame toward rank dst: directly at the hub, via the
// hub elsewhere.
func (t *socketTransport) writeTo(dst int, fr *frame) error {
	if t.local != 0 {
		return t.hub.write(fr)
	}
	if dst < 1 || dst >= t.size || t.conns[dst] == nil {
		return fmt.Errorf("mpi: no connection for rank %d", dst)
	}
	if t.byed[dst].Load() {
		return errRankGone
	}
	if err := t.conns[dst].write(fr); err != nil {
		if t.byed[dst].Load() || t.expectedEOF() {
			return errRankGone
		}
		return err
	}
	return nil
}

func (t *socketTransport) LocalRank() int { return t.local }

func (t *socketTransport) Put(dst int, env *Envelope) bool {
	if t.w.Aborted() {
		return false
	}
	if dst == t.local {
		return t.box.put(env)
	}
	fr := &frame{typ: frMsg, dst: dst, ctx: env.Ctx, src: env.Src, tag: env.Tag, payload: env.Data}
	if env.Done != nil {
		fr.flags |= flagNeedAck
		fr.seq = t.seq.Add(1)
		t.ackMu.Lock()
		t.acks[fr.seq] = env.Done
		t.ackMu.Unlock()
	}
	if err := t.writeTo(dst, fr); err != nil {
		if env.Done != nil {
			t.ackMu.Lock()
			delete(t.acks, fr.seq)
			t.ackMu.Unlock()
		}
		if err == errRankGone {
			// Clean exit on the other side: the message is undeliverable
			// but the world is healthy. A rendezvous send to a finished
			// rank would block forever in-process too.
			return true
		}
		if !t.expectedEOF() {
			t.w.abort(FaultAbortCode)
		}
		return false
	}
	return true
}

func (t *socketTransport) Take(me, ctx, src, tag int) (*Envelope, bool) {
	t.checkLocal(me)
	return t.box.take(ctx, src, tag)
}

func (t *socketTransport) Probe(me, ctx, src, tag int, block bool) (Status, bool) {
	t.checkLocal(me)
	return t.box.probe(ctx, src, tag, block)
}

func (t *socketTransport) checkLocal(me int) {
	if me != t.local {
		panic(invariantf("mpi: rank %d is not hosted by this process (local rank %d)", me, t.local))
	}
}

// barrierEnter counts one rank into the barrier at the hub; the size'th
// entry releases everyone.
func (t *socketTransport) barrierEnter() {
	t.barMu.Lock()
	t.barCount++
	fire := t.barCount == t.size
	if fire {
		t.barCount = 0
	}
	t.barMu.Unlock()
	if !fire {
		return
	}
	for _, c := range t.conns {
		if c != nil {
			c.write(&frame{typ: frRelease}) // best-effort; a lost rank aborts elsewhere
		}
	}
	select {
	case t.barCh <- struct{}{}:
	default:
	}
}

func (t *socketTransport) Barrier(me int) error {
	t.checkLocal(me)
	if t.w.Aborted() {
		return ErrAborted
	}
	if t.local == 0 {
		t.barrierEnter()
	} else if err := t.hub.write(&frame{typ: frBarrier, rank: me}); err != nil {
		return ErrAborted
	}
	select {
	case <-t.barCh:
		return nil
	case <-t.w.abortCh:
		return ErrAborted
	}
}

func (t *socketTransport) Abort(code int) {
	t.teardown.Do(func() {
		t.box.close()
		fr := &frame{typ: frAbort, code: code}
		if t.hub != nil {
			t.hub.write(fr)
		}
		for _, c := range t.conns {
			if c != nil {
				c.write(fr)
			}
		}
	})
}

func (t *socketTransport) Addr() string { return t.addr }

func (t *socketTransport) childPID(rank int) int {
	if t.local != 0 || rank < 0 || rank >= t.size || t.cmds[rank] == nil {
		return -1
	}
	return t.cmds[rank].Process.Pid
}

func (t *socketTransport) Shutdown() error {
	t.closing.Store(true)
	if t.local != 0 {
		// Goodbye carries this rank's traffic counters so the
		// orchestrator's totals stay complete after the process is gone.
		t.hub.write(&frame{typ: frBye, rank: t.local, traffic: t.w.Traffic(t.local)})
		return t.hub.c.Close()
	}
	deadline := time.Now().Add(shutdownGrace)
	remaining := func() time.Duration {
		d := time.Until(deadline)
		if d < 0 {
			return 0
		}
		return d
	}
	// First let each rank's reader drain to EOF (clean exits close their
	// end after BYE), then reap the processes we spawned.
	for rank := 1; rank < t.size; rank++ {
		if ch := t.readerDone[rank]; ch != nil {
			select {
			case <-ch:
			case <-time.After(remaining()):
			}
		}
	}
	var failed []string
	for rank := 1; rank < t.size; rank++ {
		cmd := t.cmds[rank]
		if cmd == nil {
			continue
		}
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		var err error
		select {
		case err = <-done:
		case <-time.After(remaining()):
			cmd.Process.Kill()
			err = fmt.Errorf("killed after %s: %w", shutdownGrace, <-done)
		}
		if err != nil {
			failed = append(failed, fmt.Sprintf("rank %d: %v", rank, err))
		}
	}
	t.ln.Close()
	for _, c := range t.conns {
		if c != nil {
			c.c.Close()
		}
	}
	t.cleanupDir()
	if len(failed) > 0 && !t.w.Aborted() {
		return fmt.Errorf("mpi: rank processes failed: %s", strings.Join(failed, "; "))
	}
	return nil
}
