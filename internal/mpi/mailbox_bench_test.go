package mpi

import (
	"sync"
	"testing"
)

// BenchmarkMailboxBacklog measures put throughput while a receiver is
// blocked on a tag that never arrives until the end. The old
// cond.Broadcast mailbox woke the blocked taker on every put and made it
// rescan the whole (growing) queue — O(n²) across the backlog; the
// waiter-registration mailbox checks each put against the registered
// pattern once, so the backlog streams in O(n).
func BenchmarkMailboxBacklog(b *testing.B) {
	box := newMailbox()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		box.take(CtxUser, 0, 1) // tag 1 arrives only after the backlog
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		box.put(&Envelope{Ctx: CtxUser, Src: 0, Tag: 2, Data: nil})
	}
	b.StopTimer()
	box.put(&Envelope{Ctx: CtxUser, Src: 0, Tag: 1, Data: nil})
	wg.Wait()
}

// BenchmarkMailboxManyWaiters is the probe-side herd: many goroutines
// blocked on distinct tags while unrelated messages stream past.
func BenchmarkMailboxManyWaiters(b *testing.B) {
	const nWaiters = 64
	box := newMailbox()
	var wg sync.WaitGroup
	for i := 0; i < nWaiters; i++ {
		wg.Add(1)
		go func(tag int) {
			defer wg.Done()
			box.take(CtxUser, 0, tag)
		}(1000 + i)
	}
	// Let the waiters register; a missed registration only means the
	// benchmark measures the (cheaper) queue-append path for a few puts.
	for {
		box.mu.Lock()
		n := len(box.waiters)
		box.mu.Unlock()
		if n == nWaiters {
			break
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		box.put(&Envelope{Ctx: CtxUser, Src: 0, Tag: 2, Data: nil})
	}
	b.StopTimer()
	for i := 0; i < nWaiters; i++ {
		box.put(&Envelope{Ctx: CtxUser, Src: 0, Tag: 1000 + i, Data: nil})
	}
	wg.Wait()
}
