package mpi

// Link-layer tests: the CRC/seq/ack framing in isolation, hostile input
// through the frame reader, and the window/dedup/resume machinery over
// in-memory pipes — no real transport, no goroutine-per-rank worlds.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/stats"
)

func readFromBytes(t *testing.T, b []byte) (*frame, uint64, uint64, error) {
	t.Helper()
	fr, seq, ack, _, err := readLinkFrame(bufio.NewReader(bytes.NewReader(b)))
	return fr, seq, ack, err
}

func TestPackLinkRoundTrip(t *testing.T) {
	in := &frame{typ: frMsg, dst: 2, ctx: 1, src: 1, tag: 42, payload: []byte("payload")}
	buf := packLink(encodeFrame(in), 5, 9)
	fr, seq, ack, err := readFromBytes(t, buf)
	if err != nil {
		t.Fatalf("readLinkFrame: %v", err)
	}
	if seq != 5 || ack != 9 {
		t.Errorf("seq/ack = %d/%d, want 5/9", seq, ack)
	}
	if fr.typ != frMsg || fr.dst != 2 || fr.src != 1 || fr.tag != 42 || string(fr.payload) != "payload" {
		t.Errorf("decoded %+v", fr)
	}
}

func TestHelloWelcomeCodec(t *testing.T) {
	hello := &frame{typ: frHello, rank: 3, world: 4, epoch: 7, ack: 99}
	fr, err := decodeFrame(encodeFrame(hello))
	if err != nil {
		t.Fatalf("hello: %v", err)
	}
	if fr.rank != 3 || fr.world != 4 || fr.epoch != 7 || fr.ack != 99 {
		t.Errorf("hello decoded %+v", fr)
	}
	welcome := &frame{typ: frWelcome, epoch: 7, ack: 12}
	fr, err = decodeFrame(encodeFrame(welcome))
	if err != nil {
		t.Fatalf("welcome: %v", err)
	}
	if fr.epoch != 7 || fr.ack != 12 {
		t.Errorf("welcome decoded %+v", fr)
	}
	for _, typ := range []byte{frPing, frPong} {
		if fr, err := decodeFrame(encodeFrame(&frame{typ: typ})); err != nil || fr.typ != typ {
			t.Errorf("type %d: %+v, %v", typ, fr, err)
		}
	}
}

// Hostile bytes through the frame reader: every malformation must come
// back as a diagnosed error — never a panic, never a silent misparse.
func TestReadLinkFrameHostile(t *testing.T) {
	good := packLink(encodeFrame(&frame{typ: frMsg, dst: 1, payload: []byte("x")}), 1, 0)

	t.Run("truncated body", func(t *testing.T) {
		_, _, _, err := readFromBytes(t, good[:len(good)-1])
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("err = %v, want unexpected EOF", err)
		}
	})
	t.Run("length below minimum", func(t *testing.T) {
		b := append([]byte(nil), good...)
		binary.LittleEndian.PutUint32(b, linkHdrLen) // one short of the minimum
		_, _, _, err := readFromBytes(t, b)
		if err == nil || !strings.Contains(err.Error(), "out of range") {
			t.Fatalf("err = %v, want length out of range", err)
		}
	})
	t.Run("length above maxWireFrame", func(t *testing.T) {
		b := append([]byte(nil), good...)
		binary.LittleEndian.PutUint32(b, maxWireFrame+1)
		_, _, _, err := readFromBytes(t, b)
		if err == nil || !strings.Contains(err.Error(), "out of range") {
			t.Fatalf("err = %v, want length out of range", err)
		}
	})
	t.Run("flipped byte fails CRC", func(t *testing.T) {
		b := append([]byte(nil), good...)
		b[len(b)-1] ^= 0x01
		_, _, _, err := readFromBytes(t, b)
		if !errors.Is(err, errCRCMismatch) {
			t.Fatalf("err = %v, want errCRCMismatch", err)
		}
	})
	t.Run("unknown frame type", func(t *testing.T) {
		b := packLink([]byte{0xEE}, 0, 0) // valid envelope, nonsense inside
		_, _, _, err := readFromBytes(t, b)
		if err == nil || !strings.Contains(err.Error(), "unknown wire frame type") {
			t.Fatalf("err = %v, want unknown frame type", err)
		}
	})
	t.Run("truncated inner fields", func(t *testing.T) {
		b := packLink([]byte{frHello, 1, 2}, 0, 0) // HELLO needs 20 field bytes
		_, _, _, err := readFromBytes(t, b)
		if err == nil || !strings.Contains(err.Error(), "truncated wire frame") {
			t.Fatalf("err = %v, want truncated frame", err)
		}
	})
}

// linkPair builds a wireLink over one end of an in-memory pipe and hands
// back the raw other end for the test to script.
func linkPair(t *testing.T, mx *stats.Collector) (*wireLink, net.Conn) {
	t.Helper()
	raw, end := net.Pipe()
	l := newWireLink(end, nil, mx, 0, 1, wireSideHub, nil, time.Second)
	t.Cleanup(func() { l.close(); raw.Close() })
	return l, raw
}

// Sequence dedup: a replayed seq is dropped without reaching the caller,
// and a sequence hole is a diagnosed link error, not silent loss.
func TestWireLinkDedupAndHole(t *testing.T) {
	l, raw := linkPair(t, nil)
	msg := func(seq uint64, s string) []byte {
		return packLink(encodeFrame(&frame{typ: frMsg, payload: []byte(s)}), seq, 0)
	}
	go func() {
		raw.Write(msg(1, "one"))
		raw.Write(msg(2, "two"))
		raw.Write(msg(2, "two-again")) // replay: must be dropped
		raw.Write(msg(4, "hole"))      // 3 never sent: must fail the link
	}()
	for i, want := range []string{"one", "two"} {
		fr, err := l.recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if string(fr.payload) != want {
			t.Fatalf("recv %d = %q, want %q", i, fr.payload, want)
		}
	}
	_, err := l.recv()
	if err == nil || !strings.Contains(err.Error(), "sequence hole") {
		t.Fatalf("after hole: err = %v, want sequence hole", err)
	}
	if !l.isDown() {
		t.Error("link still up after sequence hole")
	}
	if got := l.recvSeq.Load(); got != 2 {
		t.Errorf("recvSeq = %d, want 2", got)
	}
}

// A CRC-corrupt frame fails the link and bumps the crc_failures counter.
func TestWireLinkCRCFailureCounted(t *testing.T) {
	mx := stats.New(2)
	l, raw := linkPair(t, mx)
	go func() {
		b := packLink(encodeFrame(&frame{typ: frMsg, payload: []byte("x")}), 1, 0)
		b[len(b)-1] ^= 0x40
		raw.Write(b)
	}()
	if _, err := l.recv(); !errors.Is(err, errCRCMismatch) {
		t.Fatalf("recv: %v, want errCRCMismatch", err)
	}
	if got := mx.Snapshot().Ranks[0].Counters["crc_failures"]; got != 1 {
		t.Errorf("crc_failures = %d, want 1", got)
	}
}

// The unacked window holds every sequenced frame until the peer's
// cumulative ack covers it; drain reports whether it emptied in time.
func TestWireLinkWindowAckDrain(t *testing.T) {
	l, raw := linkPair(t, nil)
	go io.Copy(io.Discard, raw) // net.Pipe is synchronous: somebody must read
	for i := 0; i < 3; i++ {
		if err := l.send(&frame{typ: frMsg, payload: []byte{byte(i)}}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	winLen := func() int {
		l.mu.Lock()
		defer l.mu.Unlock()
		return len(l.window)
	}
	if got := winLen(); got != 3 {
		t.Fatalf("window = %d frames, want 3", got)
	}
	if l.drain(20 * time.Millisecond) {
		t.Error("drain reported empty with 3 unacked frames")
	}
	l.ackTo(2)
	if got := winLen(); got != 1 {
		t.Fatalf("window after ackTo(2) = %d frames, want 1", got)
	}
	l.ackTo(1) // acks never regress
	if got := winLen(); got != 1 {
		t.Fatalf("window after stale ack = %d frames, want 1", got)
	}
	l.ackTo(3)
	if !l.drain(time.Second) {
		t.Error("drain did not report empty after full ack")
	}
}

// Resume on a fresh connection retransmits exactly the unacked suffix of
// the window, in order, with the original sequence numbers.
func TestWireLinkResumeRetransmits(t *testing.T) {
	mx := stats.New(2)
	l, raw := linkPair(t, mx)
	go io.Copy(io.Discard, raw)
	for i := 0; i < 3; i++ {
		if err := l.send(&frame{typ: frMsg, payload: []byte{'a' + byte(i)}}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	l.fail()
	if err := l.send(&frame{typ: frMsg, payload: []byte{'d'}}); err != nil {
		t.Fatalf("send while down must buffer, got %v", err)
	}

	raw2, end2 := net.Pipe()
	defer raw2.Close()
	type got struct {
		seq     uint64
		payload string
	}
	seen := make(chan got, 8)
	go func() {
		r := bufio.NewReader(raw2)
		for {
			fr, seq, _, _, err := readLinkFrame(r)
			if err != nil {
				return
			}
			seen <- got{seq, string(fr.payload)}
		}
	}()
	// Peer acked seq 1 before the break: 2, 3 and the buffered 4 remain.
	if err := l.resume(end2, nil, 1, 1, false); err != nil {
		t.Fatalf("resume: %v", err)
	}
	for _, want := range []got{{2, "b"}, {3, "c"}, {4, "d"}} {
		select {
		case g := <-seen:
			if g != want {
				t.Fatalf("retransmit = %+v, want %+v", g, want)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("timed out waiting for retransmit of seq %d", want.seq)
		}
	}
	ctr := mx.Snapshot().Ranks[0].Counters
	if ctr["reconnects"] != 1 || ctr["frames_retransmitted"] != 3 {
		t.Errorf("reconnects=%d retransmitted=%d, want 1/3",
			ctr["reconnects"], ctr["frames_retransmitted"])
	}
}

// The hub side rejects non-monotonic resume epochs, so a stale or
// replayed dial can never clobber a live link.
func TestWireLinkResumeStaleEpoch(t *testing.T) {
	l, raw := linkPair(t, nil)
	go io.Copy(io.Discard, raw)
	raw2, end2 := net.Pipe()
	defer raw2.Close()
	go io.Copy(io.Discard, raw2)
	if err := l.resume(end2, nil, 0, 2, true); err != nil {
		t.Fatalf("first resume: %v", err)
	}
	raw3, end3 := net.Pipe()
	defer raw3.Close()
	defer end3.Close()
	if err := l.resume(end3, nil, 0, 2, true); err == nil ||
		!strings.Contains(err.Error(), "stale resume epoch") {
		t.Fatalf("stale epoch resume: err = %v, want stale epoch", err)
	}
}

// A full window is a link failure the caller can diagnose, not an
// unbounded buffer.
func TestWireLinkWindowOverflow(t *testing.T) {
	l, raw := linkPair(t, nil)
	raw.Close() // writes fail instantly; frames pile into the window
	l.fail()
	var err error
	for i := 0; i <= linkWindowMax; i++ {
		if err = l.send(&frame{typ: frBarrier}); err != nil {
			break
		}
	}
	if !errors.Is(err, errWindowFull) {
		t.Fatalf("err = %v, want errWindowFull", err)
	}
}

// PINGs are answered with PONGs carrying the receiver's cumulative ack,
// which the sender folds into its window — the heartbeat doubles as the
// ack path for one-directional traffic.
func TestWireLinkPingPongAck(t *testing.T) {
	a, b := net.Pipe()
	la := newWireLink(a, nil, nil, 0, 1, wireSideHub, nil, time.Second)
	lb := newWireLink(b, nil, nil, 1, 1, wireSideRank, nil, time.Second)
	t.Cleanup(func() { la.close(); lb.close() })
	frames := make(chan *frame, 4)
	errs := make(chan error, 2)
	for _, l := range []*wireLink{la, lb} {
		go func(l *wireLink) {
			for {
				fr, err := l.recv()
				if err != nil {
					errs <- err
					return
				}
				frames <- fr
			}
		}(l)
	}
	if err := la.send(&frame{typ: frMsg, payload: []byte("hi")}); err != nil {
		t.Fatalf("send: %v", err)
	}
	select {
	case fr := <-frames:
		if string(fr.payload) != "hi" {
			t.Fatalf("delivered %q", fr.payload)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("message never delivered")
	}
	// b's answer to a PING acks seq 1, emptying a's window.
	if err := la.send(&frame{typ: frPing}); err != nil {
		t.Fatalf("ping: %v", err)
	}
	if !la.drain(2 * time.Second) {
		t.Error("window not drained by the PONG ack")
	}
}
