package mpi

import (
	"bytes"
	"math/rand"
	"testing"
)

// Property: broadcast delivers the root's exact payload to every rank for
// random sizes, roots and world sizes.
func TestBcastProperty(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(6) + 1
		root := rng.Intn(n)
		payload := make([]byte, rng.Intn(100000))
		rng.Read(payload)
		w := NewWorld(n, Options{EagerLimit: 1024})
		errs := w.Run(func(r *Rank) error {
			var in []byte
			if r.ID() == root {
				in = payload
			}
			out, err := r.Bcast(root, in)
			if err != nil {
				return err
			}
			if !bytes.Equal(out, payload) {
				t.Errorf("seed %d rank %d: payload corrupted", seed, r.ID())
			}
			return nil
		})
		for i, err := range errs {
			if err != nil {
				t.Fatalf("seed %d rank %d: %v", seed, i, err)
			}
		}
	}
}

// Property: scatter then gather is the identity on random partitions.
func TestScatterGatherIdentityProperty(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(5) + 1
		root := rng.Intn(n)
		parts := make([][]byte, n)
		for i := range parts {
			parts[i] = make([]byte, rng.Intn(5000))
			rng.Read(parts[i])
		}
		w := NewWorld(n, Options{EagerLimit: 256})
		gathered := make([][]byte, n)
		errs := w.Run(func(r *Rank) error {
			var in [][]byte
			if r.ID() == root {
				in = parts
			}
			mine, err := r.Scatter(root, in)
			if err != nil {
				return err
			}
			got, err := r.Gather(root, mine)
			if err != nil {
				return err
			}
			if r.ID() == root {
				copy(gathered, got)
			}
			return nil
		})
		for i, err := range errs {
			if err != nil {
				t.Fatalf("seed %d rank %d: %v", seed, i, err)
			}
		}
		for i := range parts {
			if !bytes.Equal(gathered[i], parts[i]) {
				t.Fatalf("seed %d: part %d corrupted (%d vs %d bytes)",
					seed, i, len(gathered[i]), len(parts[i]))
			}
		}
	}
}

// Reduce with a non-commutative op exposes the documented rank-order
// application.
func TestReduceAppliesInRankOrder(t *testing.T) {
	w := NewWorld(3, Options{})
	concat := func(a, b []byte) []byte { return append(append([]byte{}, a...), b...) }
	errs := w.Run(func(r *Rank) error {
		in := []byte{byte('a' + r.ID())}
		out, err := r.Reduce(0, in, concat)
		if err != nil {
			return err
		}
		if r.ID() == 0 && string(out) != "abc" {
			t.Errorf("reduce order: %q", out)
		}
		return nil
	})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
}

// Collectives with a non-root caller passing data are harmless (ignored),
// and out-of-range roots fail cleanly.
func TestCollectiveValidation(t *testing.T) {
	w := NewWorld(2, Options{})
	r := w.Rank(0)
	if _, err := r.Bcast(5, nil); err == nil {
		t.Error("bcast with bad root accepted")
	}
	if _, err := r.Gather(-1, nil); err == nil {
		t.Error("gather with bad root accepted")
	}
	if _, err := r.Scatter(9, nil); err == nil {
		t.Error("scatter with bad root accepted")
	}
	if _, err := r.Reduce(7, nil, func(a, b []byte) []byte { return a }); err == nil {
		t.Error("reduce with bad root accepted")
	}
}
