// Package mpi is a simulated Message Passing Interface substrate: a fixed
// set of ranks exchanging byte-slice messages matched by (source, tag)
// with MPI's non-overtaking ordering guarantee.
//
// The real Pilot library runs on a real MPI (OpenMPI, MPICH). Go has no
// mature MPI bindings, so this package supplies the closest synthetic
// equivalent that exercises the same code paths the paper's tooling
// observes: rank identity, blocking matched receives, eager versus
// rendezvous sends, per-rank wallclocks (MPI_Wtime) that may drift, an
// MPI_Abort that tears down every rank, and collectives.
//
// Ranks live behind a pluggable Transport. The default in-process
// transport runs every rank as a goroutine in one address space; the
// socket transport (Options.Transport = TransportSocket or TransportTCP)
// runs every rank as its own OS process and carries envelopes, barrier
// and abort traffic over length-framed stream connections, which is how
// the tooling escapes the one-process ceiling.
//
// Message contexts play the role of MPI communicators: traffic in one
// context never matches receives in another, so library-internal messages
// (collectives, log collection) cannot be stolen by user wildcard receives.
package mpi

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/stats"
)

// Wildcards for Recv and Probe, mirroring MPI_ANY_SOURCE / MPI_ANY_TAG.
const (
	AnySource = -1
	AnyTag    = -1
)

// Message contexts, the moral equivalent of MPI communicators.
const (
	// CtxUser carries application point-to-point traffic.
	CtxUser = 0
	// CtxColl carries collective-operation traffic.
	CtxColl = 1
	// CtxLog carries log-collection traffic (MPE final merge).
	CtxLog = 2
	// CtxSvc carries service traffic (deadlock detector, native log).
	CtxSvc = 3
	numCtx = 4
)

// ErrAborted is returned from every blocked or subsequent operation once
// Abort has been called by any rank. It models MPI_Abort killing the whole
// job: in-flight communication is lost, which is precisely why the paper's
// MPE log cannot survive PI_Abort.
var ErrAborted = errors.New("mpi: world aborted")

// DefaultEagerLimit is the message size (bytes) up to which Send buffers
// and returns immediately; larger messages rendezvous with the receiver.
// Real MPIs switch protocols the same way.
const DefaultEagerLimit = 64 << 10

// Options configures a World.
type Options struct {
	// Clocks supplies one wallclock per rank. If nil or short, missing
	// entries share a single Real clock (all ranks on one node). In a
	// multi-process world each process only consults its local rank's
	// entry.
	Clocks []clock.Source
	// EagerLimit overrides DefaultEagerLimit when non-zero. A negative
	// value forces every send to rendezvous. Every process of a
	// multi-process world must use the same value.
	EagerLimit int
	// Faults installs a deterministic fault-injection plan (nil = none).
	// See FaultPlan.
	Faults *FaultPlan
	// Metrics, when non-nil, receives live observability counters
	// (messages, bytes, wait times) for user-context traffic. A nil
	// collector disables collection at zero cost.
	Metrics *stats.Collector

	// Transport selects the rank substrate: TransportInproc (the default
	// when empty), TransportSocket or TransportTCP. The remaining fields
	// only apply to multi-process transports.
	Transport string
	// ListenAddr overrides the orchestrator's listen address: a socket
	// path for TransportSocket, host:port for TransportTCP. Empty picks a
	// fresh path in the temp directory / a loopback ephemeral port.
	ListenAddr string
	// SpawnCommand is the argv the orchestrator launches once per remote
	// rank. Empty re-executes the current binary with os.Args[1:], which
	// is correct for programs whose configuration is argv-deterministic.
	SpawnCommand []string
	// SpawnEnv appends environment entries ("K=V") to each child beyond
	// the inherited environment and the PILOT_MPI_* join variables.
	SpawnEnv []string
	// NoSpawn makes the orchestrator listen and wait for externally
	// launched ranks instead of spawning them itself.
	NoSpawn bool
	// JoinAddr, when set, makes Start join an existing world as rank
	// JoinRank instead of orchestrating one. Normally left empty: spawned
	// children discover the same thing through the PILOT_MPI_* variables.
	JoinAddr string
	// JoinRank is this process's rank when JoinAddr is set.
	JoinRank int
}

// World is a simulated MPI job of a fixed number of ranks.
type World struct {
	size       int
	eagerLimit int
	clocks     []clock.Source
	t          Transport
	// local is the one rank this process hosts, or -1 when every rank is
	// local (the in-process transport).
	local int
	// ranks holds the n immutable rank handles; Rank() hands out
	// pointers into it so the accessor never allocates (it sits on
	// every logging and messaging hot path).
	ranks []Rank

	abortCh   chan struct{}
	abortOnce sync.Once
	abortCode int

	shutOnce sync.Once
	shutErr  error

	faults *faultState

	metrics *stats.Collector

	// Per-rank traffic counters (user context only), maintained with
	// atomics so any goroutine can snapshot them. In a multi-process
	// world each process counts its local rank; remote ranks' counters
	// are folded in at the orchestrator when they say goodbye.
	sent, sentBytes, recvd, recvdBytes []atomic.Int64
}

// NewWorld creates an in-process world of n ranks (or whatever transport
// opts selects). It panics on any Start error; a world that cannot be
// built in-process is a programming error, not a runtime condition.
// Multi-process callers should prefer Start, whose failures (spawn,
// handshake) are ordinary runtime errors.
func NewWorld(n int, opts Options) *World {
	w, err := Start(n, opts)
	if err != nil {
		panic(invariantf("mpi: NewWorld: %v", err))
	}
	return w
}

// newWorldShell builds the transport-independent part of a World.
func newWorldShell(n int, opts Options) *World {
	eager := opts.EagerLimit
	switch {
	case eager == 0:
		eager = DefaultEagerLimit
	case eager < 0:
		eager = -1
	}
	w := &World{
		size:       n,
		eagerLimit: eager,
		clocks:     make([]clock.Source, n),
		abortCh:    make(chan struct{}),
	}
	shared := clock.Source(nil)
	for i := 0; i < n; i++ {
		if i < len(opts.Clocks) && opts.Clocks[i] != nil {
			w.clocks[i] = opts.Clocks[i]
		} else {
			if shared == nil {
				shared = clock.NewReal()
			}
			w.clocks[i] = shared
		}
	}
	w.ranks = make([]Rank, n)
	for i := range w.ranks {
		w.ranks[i] = Rank{w: w, id: i}
	}
	w.metrics = opts.Metrics
	w.sent = make([]atomic.Int64, n)
	w.sentBytes = make([]atomic.Int64, n)
	w.recvd = make([]atomic.Int64, n)
	w.recvdBytes = make([]atomic.Int64, n)
	if opts.Faults != nil {
		w.faults = newFaultState(*opts.Faults, n)
		if opts.Faults.hasKind(FaultClockJump) {
			// Per-rank shims so a jump on one rank never moves a clock
			// shared with its siblings.
			for i := range w.clocks {
				w.clocks[i] = &faultClock{base: w.clocks[i]}
			}
		}
	}
	return w
}

// Traffic summarises one rank's user-context message flow.
type Traffic struct {
	Sent, SentBytes     int64
	Received, RecvBytes int64
}

// Traffic returns rank id's counters (user context only; collective,
// logging and service traffic is internal bookkeeping). In a
// multi-process world a remote rank's counters are zero until its
// process exits cleanly, at which point the orchestrator folds them in.
func (w *World) Traffic(id int) Traffic {
	return Traffic{
		Sent:      w.sent[id].Load(),
		SentBytes: w.sentBytes[id].Load(),
		Received:  w.recvd[id].Load(),
		RecvBytes: w.recvdBytes[id].Load(),
	}
}

// TotalTraffic sums every rank's counters.
func (w *World) TotalTraffic() Traffic {
	var t Traffic
	for i := 0; i < w.size; i++ {
		r := w.Traffic(i)
		t.Sent += r.Sent
		t.SentBytes += r.SentBytes
		t.Received += r.Received
		t.RecvBytes += r.RecvBytes
	}
	return t
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Metrics returns the attached stats collector (nil when disabled).
func (w *World) Metrics() *stats.Collector { return w.metrics }

// LocalRank returns the one rank this process hosts, or -1 when every
// rank is local (the in-process transport).
func (w *World) LocalRank() int { return w.local }

// Local reports whether rank id runs in this process.
func (w *World) Local(id int) bool { return w.local < 0 || w.local == id }

// Addr returns the address rank processes join this world at ("" for the
// in-process transport).
func (w *World) Addr() string { return w.t.Addr() }

// Shutdown releases the world's transport after the job completes: the
// orchestrator of a multi-process world reaps its rank processes
// (killing stragglers after a grace period), a joined rank announces a
// clean goodbye. In-process worlds need no shutdown. Idempotent.
func (w *World) Shutdown() error {
	w.shutOnce.Do(func() { w.shutErr = w.t.Shutdown() })
	return w.shutErr
}

// ChildPID returns the OS process ID of the spawned process hosting rank
// id, or -1 when that rank was not spawned by this process (in-process
// worlds, externally launched ranks, the orchestrator itself). Chaos
// tests use it to kill a live rank mid-run.
func (w *World) ChildPID(id int) int {
	if t, ok := w.t.(*socketTransport); ok {
		return t.childPID(id)
	}
	return -1
}

// Rank returns the handle for rank id. It panics on an out-of-range id.
func (w *World) Rank(id int) *Rank {
	if id < 0 || id >= w.size {
		panic(invariantf("mpi: Rank(%d) out of range [0,%d)", id, w.size))
	}
	return &w.ranks[id]
}

// invariantError is the panic payload for mpi-internal invariant
// violations. Run re-panics these instead of converting them to per-rank
// errors: a broken runtime must never be masked as an application fault.
type invariantError string

// Error implements the error interface.
func (e invariantError) Error() string { return string(e) }

func invariantf(format string, args ...any) invariantError {
	return invariantError(fmt.Sprintf(format, args...))
}

// PanicAbortCode is the abort code used when a rank's work function
// panics under Run.
const PanicAbortCode = 1

// Aborted reports whether Abort has been called.
func (w *World) Aborted() bool {
	select {
	case <-w.abortCh:
		return true
	default:
		return false
	}
}

// AbortCode returns the code passed to the first Abort call, or 0.
func (w *World) AbortCode() int {
	if w.Aborted() {
		return w.abortCode
	}
	return 0
}

// Run executes f concurrently on every rank this process hosts and
// returns the per-rank results once all have finished — every rank
// in-process, exactly one in a multi-process world (the others' slots
// stay nil in their own processes).
//
// A panic in f is recovered and converted into that rank's error plus an
// Abort(PanicAbortCode), mirroring real MPI job teardown: one crashing
// rank must not take the whole process down with its siblings' state
// undumped. Panics raised by the mpi runtime itself (invariant failures)
// are re-panicked.
func (w *World) Run(f func(r *Rank) error) []error {
	errs := make([]error, w.size)
	runOne := func(id int) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if inv, ok := rec.(invariantError); ok {
				panic(inv)
			}
			errs[id] = fmt.Errorf("mpi: rank %d panicked: %v", id, rec)
			w.abort(PanicAbortCode)
		}()
		errs[id] = f(w.Rank(id))
	}
	if w.local >= 0 {
		runOne(w.local)
		return errs
	}
	var wg sync.WaitGroup
	for i := 0; i < w.size; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			runOne(id)
		}(i)
	}
	wg.Wait()
	return errs
}

// abort records the code, releases every local waiter and fans the abort
// out through the transport. Remote aborts arrive back here through the
// transport's reader, so the once guard is what stops the echo.
func (w *World) abort(code int) {
	w.abortOnce.Do(func() {
		w.abortCode = code
		close(w.abortCh)
		w.t.Abort(code)
	})
}

// Status describes a matched message.
type Status struct {
	Source int
	Tag    int
	Len    int
}

// Rank is one process's handle onto the world. A Rank's methods are safe to
// call from the single goroutine acting as that rank; distinct Ranks may be
// used concurrently.
type Rank struct {
	w  *World
	id int
}

// ID returns this rank's number (0-based).
func (r *Rank) ID() int { return r.id }

// Size returns the world size.
func (r *Rank) Size() int { return r.w.size }

// World returns the world this rank belongs to.
func (r *Rank) World() *World { return r.w }

// Wtime returns this rank's wallclock reading in seconds (MPI_Wtime).
func (r *Rank) Wtime() float64 { return r.w.clocks[r.id].Now() }

// Clock exposes the rank's clock source, used by the logging layer.
func (r *Rank) Clock() clock.Source { return r.w.clocks[r.id] }

// Abort terminates the whole world (MPI_Abort): every blocked operation on
// every rank fails with ErrAborted and all buffered traffic is lost.
func (r *Rank) Abort(code int) { r.w.abort(code) }

// Send transmits data to rank dst with the given tag in the user context.
// Sends up to the world's eager limit buffer and return immediately; larger
// sends block until the receiver has matched the message (rendezvous).
func (r *Rank) Send(dst, tag int, data []byte) error {
	return r.SendCtx(CtxUser, dst, tag, data)
}

// SendCtx is Send in an explicit message context.
func (r *Rank) SendCtx(ctx, dst, tag int, data []byte) error {
	if err := r.checkPeer(dst); err != nil {
		return err
	}
	if tag < 0 {
		return fmt.Errorf("mpi: send with negative tag %d", tag)
	}
	if ctx < 0 || ctx >= numCtx {
		return fmt.Errorf("mpi: send in invalid context %d", ctx)
	}
	if r.w.Aborted() {
		return ErrAborted
	}
	// Metrics gate hoisted once; the time reads happen only when a
	// collector is attached, keeping the disabled path free of them.
	mx := r.w.metrics
	var t0 time.Time
	if mx != nil && ctx == CtxUser {
		t0 = time.Now()
	}
	delay, forceRdv, err := r.w.faultOp(r.id, ctx, true)
	if err != nil {
		return err
	}
	if delay > 0 {
		r.w.faultSleep(delay)
		if r.w.Aborted() {
			return ErrAborted
		}
	}
	env := &Envelope{Ctx: ctx, Src: r.id, Tag: tag, Data: cloneBytes(data)}
	rendezvous := r.w.eagerLimit < 0 || len(data) > r.w.eagerLimit || forceRdv
	if rendezvous {
		env.Done = make(chan struct{})
	}
	if !r.w.t.Put(dst, env) {
		return ErrAborted
	}
	if rendezvous {
		select {
		case <-env.Done:
		case <-r.w.abortCh:
			return ErrAborted
		}
	}
	if ctx == CtxUser {
		r.w.sent[r.id].Add(1)
		r.w.sentBytes[r.id].Add(int64(len(data)))
		// The user-context tag is the Pilot channel ID, so this one call
		// feeds both the per-rank shard and the per-channel cell with the
		// same sizes LogSend puts in the trace.
		if mx != nil {
			mx.SendObserved(r.id, tag, len(data), time.Since(t0).Nanoseconds())
		}
	}
	return nil
}

// checkRecvArgs mirrors the send-side argument validation on the receive
// side: a typo'd tag or context must come back as an error, not block
// forever waiting for a message that cannot exist.
func checkRecvArgs(op string, ctx, tag int) error {
	if tag != AnyTag && tag < 0 {
		return fmt.Errorf("mpi: %s with invalid tag %d", op, tag)
	}
	if ctx < 0 || ctx >= numCtx {
		return fmt.Errorf("mpi: %s in invalid context %d", op, ctx)
	}
	return nil
}

// Recv blocks until a message matching (src, tag) in the user context
// arrives, removes it, and returns it. src may be AnySource and tag AnyTag.
func (r *Rank) Recv(src, tag int) (Message, error) {
	return r.RecvCtx(CtxUser, src, tag)
}

// RecvCtx is Recv in an explicit message context.
func (r *Rank) RecvCtx(ctx, src, tag int) (Message, error) {
	if err := r.checkWildPeer(src); err != nil {
		return Message{}, err
	}
	if err := checkRecvArgs("receive", ctx, tag); err != nil {
		return Message{}, err
	}
	mx := r.w.metrics
	var t0 time.Time
	if mx != nil && ctx == CtxUser {
		t0 = time.Now()
	}
	if _, _, err := r.w.faultOp(r.id, ctx, false); err != nil {
		return Message{}, err
	}
	env, ok := r.w.t.Take(r.id, ctx, src, tag)
	if !ok {
		return Message{}, ErrAborted
	}
	if env.Done != nil {
		close(env.Done)
	}
	if ctx == CtxUser {
		r.w.recvd[r.id].Add(1)
		r.w.recvdBytes[r.id].Add(int64(len(env.Data)))
		// env.Tag, not the argument: a wildcard receive charges the
		// channel that actually delivered.
		if mx != nil {
			mx.RecvObserved(r.id, env.Tag, len(env.Data), time.Since(t0).Nanoseconds())
		}
	}
	return Message{
		Status: Status{Source: env.Src, Tag: env.Tag, Len: len(env.Data)},
		Data:   env.Data,
	}, nil
}

// Message is a received payload plus its matching metadata.
type Message struct {
	Status
	Data []byte
}

// Probe blocks until a message matching (src, tag) in the user context is
// available and returns its status without removing it.
func (r *Rank) Probe(src, tag int) (Status, error) {
	if err := r.checkWildPeer(src); err != nil {
		return Status{}, err
	}
	if err := checkRecvArgs("probe", CtxUser, tag); err != nil {
		return Status{}, err
	}
	if err := r.w.crashedErr(r.id, CtxUser); err != nil {
		return Status{}, err
	}
	mx := r.w.metrics
	var t0 time.Time
	if mx != nil {
		t0 = time.Now()
	}
	st, ok := r.w.t.Probe(r.id, CtxUser, src, tag, true)
	if !ok {
		return Status{}, ErrAborted
	}
	if mx != nil {
		mx.ProbeWait(r.id, time.Since(t0).Nanoseconds())
	}
	return st, nil
}

// Iprobe reports whether a message matching (src, tag) in the user context
// is immediately available, and its status if so.
func (r *Rank) Iprobe(src, tag int) (Status, bool, error) {
	return r.IprobeCtx(CtxUser, src, tag)
}

// IprobeCtx is Iprobe in an explicit message context.
func (r *Rank) IprobeCtx(ctx, src, tag int) (Status, bool, error) {
	if err := r.checkWildPeer(src); err != nil {
		return Status{}, false, err
	}
	if err := checkRecvArgs("probe", ctx, tag); err != nil {
		return Status{}, false, err
	}
	if r.w.Aborted() {
		return Status{}, false, ErrAborted
	}
	if err := r.w.crashedErr(r.id, ctx); err != nil {
		return Status{}, false, err
	}
	st, ok := r.w.t.Probe(r.id, ctx, src, tag, false)
	return st, ok, nil
}

// Barrier blocks until every rank in the world has entered it. Barriers
// count as collective operations for fault injection.
func (r *Rank) Barrier() error {
	if _, _, err := r.w.faultOp(r.id, CtxColl, false); err != nil {
		return err
	}
	mx := r.w.metrics
	var t0 time.Time
	if mx != nil {
		t0 = time.Now()
	}
	if err := r.w.t.Barrier(r.id); err != nil {
		return err
	}
	if mx != nil {
		mx.BarrierWait(r.id, time.Since(t0).Nanoseconds())
	}
	return nil
}

func (r *Rank) checkPeer(p int) error {
	if p < 0 || p >= r.w.size {
		return fmt.Errorf("mpi: rank %d out of range [0,%d)", p, r.w.size)
	}
	return nil
}

func (r *Rank) checkWildPeer(p int) error {
	if p == AnySource {
		return nil
	}
	return r.checkPeer(p)
}

func cloneBytes(b []byte) []byte {
	if b == nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// Sleep pauses the calling rank. It exists so workloads can inject think
// time without importing package time everywhere.
func (r *Rank) Sleep(d time.Duration) { time.Sleep(d) }

// mailbox is a per-rank queue of in-flight messages with matched receives.
// Queue order is arrival order, which yields MPI's non-overtaking guarantee
// for any fixed (context, source, tag).
//
// Blocked take/probe calls register a waiter carrying their match pattern
// instead of sleeping on a shared condition variable. put checks each new
// envelope against the registered patterns — O(waiters), which is O(1) in
// practice since only the owning rank receives — and hands the envelope
// directly to the first matching take. The previous cond.Broadcast design
// woke every blocked caller to rescan the whole queue on every arrival:
// O(n²) thundering herd under an unmatched backlog (see
// BenchmarkMailboxBacklog).
type mailbox struct {
	mu      sync.Mutex
	queue   []*Envelope
	waiters []*waiter
	closed  bool
}

// waiter is one blocked take or probe call. ready is buffered so put
// never blocks delivering; close(ready) signals world abort.
type waiter struct {
	ctx, src, tag int
	take          bool // take removes the message; probe only observes it
	ready         chan *Envelope
}

func newMailbox() *mailbox {
	return &mailbox{}
}

func (b *mailbox) put(env *Envelope) bool {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return false
	}
	// Wake exactly the waiters whose pattern matches: probes observe the
	// envelope, the first matching take consumes it (FIFO among waiters,
	// preserving non-overtaking order — a registered taker found no
	// earlier match when it scanned the queue). Once a take has consumed
	// the envelope NO later waiter may see it — not even a probe: a probe
	// handed a consumed envelope would report a message that can never be
	// received, violating the probe-then-recv guarantee.
	taken := false
	if len(b.waiters) > 0 {
		kept := b.waiters[:0]
		for _, w := range b.waiters {
			if taken || !match(env, w.ctx, w.src, w.tag) {
				kept = append(kept, w)
				continue
			}
			w.ready <- env
			if w.take {
				taken = true
			}
		}
		for i := len(kept); i < len(b.waiters); i++ {
			b.waiters[i] = nil
		}
		b.waiters = kept
	}
	if !taken {
		b.queue = append(b.queue, env)
	}
	b.mu.Unlock()
	return true
}

func match(env *Envelope, ctx, src, tag int) bool {
	return env.Ctx == ctx &&
		(src == AnySource || env.Src == src) &&
		(tag == AnyTag || env.Tag == tag)
}

// take removes and returns the first matching message, blocking until one
// arrives. ok=false means the world aborted.
func (b *mailbox) take(ctx, src, tag int) (*Envelope, bool) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, false
	}
	for i, env := range b.queue {
		if match(env, ctx, src, tag) {
			// Shift left and nil the vacated tail slot so the consumed
			// envelope's payload is not pinned until the slot is reused.
			copy(b.queue[i:], b.queue[i+1:])
			last := len(b.queue) - 1
			b.queue[last] = nil
			b.queue = b.queue[:last]
			b.mu.Unlock()
			return env, true
		}
	}
	w := &waiter{ctx: ctx, src: src, tag: tag, take: true, ready: make(chan *Envelope, 1)}
	b.waiters = append(b.waiters, w)
	b.mu.Unlock()
	env, ok := <-w.ready
	if !ok {
		return nil, false
	}
	return env, true
}

func (b *mailbox) probe(ctx, src, tag int, block bool) (Status, bool) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return Status{}, false
	}
	for _, env := range b.queue {
		if match(env, ctx, src, tag) {
			st := Status{Source: env.Src, Tag: env.Tag, Len: len(env.Data)}
			b.mu.Unlock()
			return st, true
		}
	}
	if !block {
		b.mu.Unlock()
		return Status{}, false
	}
	w := &waiter{ctx: ctx, src: src, tag: tag, ready: make(chan *Envelope, 1)}
	b.waiters = append(b.waiters, w)
	b.mu.Unlock()
	env, ok := <-w.ready
	if !ok {
		return Status{}, false
	}
	return Status{Source: env.Src, Tag: env.Tag, Len: len(env.Data)}, true
}

func (b *mailbox) close() {
	b.mu.Lock()
	b.closed = true
	for _, w := range b.waiters {
		close(w.ready)
	}
	b.waiters = nil
	b.mu.Unlock()
}
