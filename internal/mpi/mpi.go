// Package mpi is a simulated Message Passing Interface substrate: a fixed
// set of ranks running as goroutines in one process, exchanging byte-slice
// messages matched by (source, tag) with MPI's non-overtaking ordering
// guarantee.
//
// The real Pilot library runs on a real MPI (OpenMPI, MPICH). Go has no
// mature MPI bindings, so this package supplies the closest synthetic
// equivalent that exercises the same code paths the paper's tooling
// observes: rank identity, blocking matched receives, eager versus
// rendezvous sends, per-rank wallclocks (MPI_Wtime) that may drift, an
// MPI_Abort that tears down every rank, and collectives.
//
// Message contexts play the role of MPI communicators: traffic in one
// context never matches receives in another, so library-internal messages
// (collectives, log collection) cannot be stolen by user wildcard receives.
package mpi

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/stats"
)

// Wildcards for Recv and Probe, mirroring MPI_ANY_SOURCE / MPI_ANY_TAG.
const (
	AnySource = -1
	AnyTag    = -1
)

// Message contexts, the moral equivalent of MPI communicators.
const (
	// CtxUser carries application point-to-point traffic.
	CtxUser = 0
	// CtxColl carries collective-operation traffic.
	CtxColl = 1
	// CtxLog carries log-collection traffic (MPE final merge).
	CtxLog = 2
	// CtxSvc carries service traffic (deadlock detector, native log).
	CtxSvc = 3
	numCtx = 4
)

// ErrAborted is returned from every blocked or subsequent operation once
// Abort has been called by any rank. It models MPI_Abort killing the whole
// job: in-flight communication is lost, which is precisely why the paper's
// MPE log cannot survive PI_Abort.
var ErrAborted = errors.New("mpi: world aborted")

// DefaultEagerLimit is the message size (bytes) up to which Send buffers
// and returns immediately; larger messages rendezvous with the receiver.
// Real MPIs switch protocols the same way.
const DefaultEagerLimit = 64 << 10

// Options configures a World.
type Options struct {
	// Clocks supplies one wallclock per rank. If nil or short, missing
	// entries share a single Real clock (all ranks on one node).
	Clocks []clock.Source
	// EagerLimit overrides DefaultEagerLimit when non-zero. A negative
	// value forces every send to rendezvous.
	EagerLimit int
	// Faults installs a deterministic fault-injection plan (nil = none).
	// See FaultPlan.
	Faults *FaultPlan
	// Metrics, when non-nil, receives live observability counters
	// (messages, bytes, wait times) for user-context traffic. A nil
	// collector disables collection at zero cost.
	Metrics *stats.Collector
}

// World is a simulated MPI job of a fixed number of ranks.
type World struct {
	size       int
	eagerLimit int
	clocks     []clock.Source
	boxes      []*mailbox
	// ranks holds the n immutable rank handles; Rank() hands out
	// pointers into it so the accessor never allocates (it sits on
	// every logging and messaging hot path).
	ranks []Rank

	abortCh   chan struct{}
	abortOnce sync.Once
	abortCode int

	faults *faultState

	metrics *stats.Collector

	barrier barrierState

	// Per-rank traffic counters (user context only), maintained with
	// atomics so any goroutine can snapshot them.
	sent, sentBytes, recvd, recvdBytes []atomic.Int64
}

// NewWorld creates a world of n ranks. It panics if n < 1; a world with no
// ranks is a programming error, not a runtime condition.
func NewWorld(n int, opts Options) *World {
	if n < 1 {
		panic(invariantf("mpi: NewWorld with %d ranks", n))
	}
	eager := opts.EagerLimit
	switch {
	case eager == 0:
		eager = DefaultEagerLimit
	case eager < 0:
		eager = -1
	}
	w := &World{
		size:       n,
		eagerLimit: eager,
		clocks:     make([]clock.Source, n),
		boxes:      make([]*mailbox, n),
		abortCh:    make(chan struct{}),
	}
	shared := clock.Source(nil)
	for i := 0; i < n; i++ {
		if i < len(opts.Clocks) && opts.Clocks[i] != nil {
			w.clocks[i] = opts.Clocks[i]
		} else {
			if shared == nil {
				shared = clock.NewReal()
			}
			w.clocks[i] = shared
		}
		w.boxes[i] = newMailbox()
	}
	w.ranks = make([]Rank, n)
	for i := range w.ranks {
		w.ranks[i] = Rank{w: w, id: i}
	}
	w.metrics = opts.Metrics
	w.barrier.cond = sync.NewCond(&w.barrier.mu)
	w.sent = make([]atomic.Int64, n)
	w.sentBytes = make([]atomic.Int64, n)
	w.recvd = make([]atomic.Int64, n)
	w.recvdBytes = make([]atomic.Int64, n)
	if opts.Faults != nil {
		w.faults = newFaultState(*opts.Faults, n)
		if opts.Faults.hasKind(FaultClockJump) {
			// Per-rank shims so a jump on one rank never moves a clock
			// shared with its siblings.
			for i := range w.clocks {
				w.clocks[i] = &faultClock{base: w.clocks[i]}
			}
		}
	}
	return w
}

// Traffic summarises one rank's user-context message flow.
type Traffic struct {
	Sent, SentBytes     int64
	Received, RecvBytes int64
}

// Traffic returns rank id's counters (user context only; collective,
// logging and service traffic is internal bookkeeping).
func (w *World) Traffic(id int) Traffic {
	return Traffic{
		Sent:      w.sent[id].Load(),
		SentBytes: w.sentBytes[id].Load(),
		Received:  w.recvd[id].Load(),
		RecvBytes: w.recvdBytes[id].Load(),
	}
}

// TotalTraffic sums every rank's counters.
func (w *World) TotalTraffic() Traffic {
	var t Traffic
	for i := 0; i < w.size; i++ {
		r := w.Traffic(i)
		t.Sent += r.Sent
		t.SentBytes += r.SentBytes
		t.Received += r.Received
		t.RecvBytes += r.RecvBytes
	}
	return t
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Metrics returns the attached stats collector (nil when disabled).
func (w *World) Metrics() *stats.Collector { return w.metrics }

// Rank returns the handle for rank id. It panics on an out-of-range id.
func (w *World) Rank(id int) *Rank {
	if id < 0 || id >= w.size {
		panic(invariantf("mpi: Rank(%d) out of range [0,%d)", id, w.size))
	}
	return &w.ranks[id]
}

// invariantError is the panic payload for mpi-internal invariant
// violations. Run re-panics these instead of converting them to per-rank
// errors: a broken runtime must never be masked as an application fault.
type invariantError string

// Error implements the error interface.
func (e invariantError) Error() string { return string(e) }

func invariantf(format string, args ...any) invariantError {
	return invariantError(fmt.Sprintf(format, args...))
}

// PanicAbortCode is the abort code used when a rank's work function
// panics under Run.
const PanicAbortCode = 1

// Aborted reports whether Abort has been called.
func (w *World) Aborted() bool {
	select {
	case <-w.abortCh:
		return true
	default:
		return false
	}
}

// AbortCode returns the code passed to the first Abort call, or 0.
func (w *World) AbortCode() int {
	if w.Aborted() {
		return w.abortCode
	}
	return 0
}

// Run executes f concurrently on every rank and returns the per-rank
// results once all have finished.
//
// A panic in f is recovered and converted into that rank's error plus an
// Abort(PanicAbortCode), mirroring real MPI job teardown: one crashing
// rank must not take the whole process down with its siblings' state
// undumped. Panics raised by the mpi runtime itself (invariant failures)
// are re-panicked.
func (w *World) Run(f func(r *Rank) error) []error {
	errs := make([]error, w.size)
	var wg sync.WaitGroup
	for i := 0; i < w.size; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			defer func() {
				rec := recover()
				if rec == nil {
					return
				}
				if inv, ok := rec.(invariantError); ok {
					panic(inv)
				}
				errs[id] = fmt.Errorf("mpi: rank %d panicked: %v", id, rec)
				w.abort(PanicAbortCode)
			}()
			errs[id] = f(w.Rank(id))
		}(i)
	}
	wg.Wait()
	return errs
}

func (w *World) abort(code int) {
	w.abortOnce.Do(func() {
		w.abortCode = code
		close(w.abortCh)
		for _, b := range w.boxes {
			b.close()
		}
		w.barrier.mu.Lock()
		w.barrier.aborted = true
		w.barrier.cond.Broadcast()
		w.barrier.mu.Unlock()
	})
}

// Status describes a matched message.
type Status struct {
	Source int
	Tag    int
	Len    int
}

// Rank is one process's handle onto the world. A Rank's methods are safe to
// call from the single goroutine acting as that rank; distinct Ranks may be
// used concurrently.
type Rank struct {
	w  *World
	id int
}

// ID returns this rank's number (0-based).
func (r *Rank) ID() int { return r.id }

// Size returns the world size.
func (r *Rank) Size() int { return r.w.size }

// World returns the world this rank belongs to.
func (r *Rank) World() *World { return r.w }

// Wtime returns this rank's wallclock reading in seconds (MPI_Wtime).
func (r *Rank) Wtime() float64 { return r.w.clocks[r.id].Now() }

// Clock exposes the rank's clock source, used by the logging layer.
func (r *Rank) Clock() clock.Source { return r.w.clocks[r.id] }

// Abort terminates the whole world (MPI_Abort): every blocked operation on
// every rank fails with ErrAborted and all buffered traffic is lost.
func (r *Rank) Abort(code int) { r.w.abort(code) }

// Send transmits data to rank dst with the given tag in the user context.
// Sends up to the world's eager limit buffer and return immediately; larger
// sends block until the receiver has matched the message (rendezvous).
func (r *Rank) Send(dst, tag int, data []byte) error {
	return r.SendCtx(CtxUser, dst, tag, data)
}

// SendCtx is Send in an explicit message context.
func (r *Rank) SendCtx(ctx, dst, tag int, data []byte) error {
	if err := r.checkPeer(dst); err != nil {
		return err
	}
	if tag < 0 {
		return fmt.Errorf("mpi: send with negative tag %d", tag)
	}
	if ctx < 0 || ctx >= numCtx {
		return fmt.Errorf("mpi: send in invalid context %d", ctx)
	}
	if r.w.Aborted() {
		return ErrAborted
	}
	// Metrics gate hoisted once; the time reads happen only when a
	// collector is attached, keeping the disabled path free of them.
	mx := r.w.metrics
	var t0 time.Time
	if mx != nil && ctx == CtxUser {
		t0 = time.Now()
	}
	delay, forceRdv, err := r.w.faultOp(r.id, ctx, true)
	if err != nil {
		return err
	}
	if delay > 0 {
		r.w.faultSleep(delay)
		if r.w.Aborted() {
			return ErrAborted
		}
	}
	env := &envelope{ctx: ctx, src: r.id, tag: tag, data: cloneBytes(data)}
	rendezvous := r.w.eagerLimit < 0 || len(data) > r.w.eagerLimit || forceRdv
	if rendezvous {
		env.done = make(chan struct{})
	}
	if !r.w.boxes[dst].put(env) {
		return ErrAborted
	}
	if rendezvous {
		select {
		case <-env.done:
		case <-r.w.abortCh:
			return ErrAborted
		}
	}
	if ctx == CtxUser {
		r.w.sent[r.id].Add(1)
		r.w.sentBytes[r.id].Add(int64(len(data)))
		// The user-context tag is the Pilot channel ID, so this one call
		// feeds both the per-rank shard and the per-channel cell with the
		// same sizes LogSend puts in the trace.
		if mx != nil {
			mx.SendObserved(r.id, tag, len(data), time.Since(t0).Nanoseconds())
		}
	}
	return nil
}

// Recv blocks until a message matching (src, tag) in the user context
// arrives, removes it, and returns it. src may be AnySource and tag AnyTag.
func (r *Rank) Recv(src, tag int) (Message, error) {
	return r.RecvCtx(CtxUser, src, tag)
}

// RecvCtx is Recv in an explicit message context.
func (r *Rank) RecvCtx(ctx, src, tag int) (Message, error) {
	if err := r.checkWildPeer(src); err != nil {
		return Message{}, err
	}
	mx := r.w.metrics
	var t0 time.Time
	if mx != nil && ctx == CtxUser {
		t0 = time.Now()
	}
	if _, _, err := r.w.faultOp(r.id, ctx, false); err != nil {
		return Message{}, err
	}
	env, ok := r.w.boxes[r.id].take(ctx, src, tag)
	if !ok {
		return Message{}, ErrAborted
	}
	if env.done != nil {
		close(env.done)
	}
	if ctx == CtxUser {
		r.w.recvd[r.id].Add(1)
		r.w.recvdBytes[r.id].Add(int64(len(env.data)))
		// env.tag, not the argument: a wildcard receive charges the
		// channel that actually delivered.
		if mx != nil {
			mx.RecvObserved(r.id, env.tag, len(env.data), time.Since(t0).Nanoseconds())
		}
	}
	return Message{
		Status: Status{Source: env.src, Tag: env.tag, Len: len(env.data)},
		Data:   env.data,
	}, nil
}

// Message is a received payload plus its matching metadata.
type Message struct {
	Status
	Data []byte
}

// Probe blocks until a message matching (src, tag) in the user context is
// available and returns its status without removing it.
func (r *Rank) Probe(src, tag int) (Status, error) {
	if err := r.checkWildPeer(src); err != nil {
		return Status{}, err
	}
	if err := r.w.crashedErr(r.id, CtxUser); err != nil {
		return Status{}, err
	}
	mx := r.w.metrics
	var t0 time.Time
	if mx != nil {
		t0 = time.Now()
	}
	st, ok := r.w.boxes[r.id].probe(CtxUser, src, tag, true)
	if !ok {
		return Status{}, ErrAborted
	}
	if mx != nil {
		mx.ProbeWait(r.id, time.Since(t0).Nanoseconds())
	}
	return st, nil
}

// Iprobe reports whether a message matching (src, tag) in the user context
// is immediately available, and its status if so.
func (r *Rank) Iprobe(src, tag int) (Status, bool, error) {
	return r.IprobeCtx(CtxUser, src, tag)
}

// IprobeCtx is Iprobe in an explicit message context.
func (r *Rank) IprobeCtx(ctx, src, tag int) (Status, bool, error) {
	if err := r.checkWildPeer(src); err != nil {
		return Status{}, false, err
	}
	if r.w.Aborted() {
		return Status{}, false, ErrAborted
	}
	if err := r.w.crashedErr(r.id, ctx); err != nil {
		return Status{}, false, err
	}
	st, ok := r.w.boxes[r.id].iprobe(ctx, src, tag)
	return st, ok, nil
}

// Barrier blocks until every rank in the world has entered it. Barriers
// count as collective operations for fault injection.
func (r *Rank) Barrier() error {
	if _, _, err := r.w.faultOp(r.id, CtxColl, false); err != nil {
		return err
	}
	mx := r.w.metrics
	var t0 time.Time
	if mx != nil {
		t0 = time.Now()
	}
	b := &r.w.barrier
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.aborted {
		return ErrAborted
	}
	gen := b.gen
	b.count++
	if b.count == r.w.size {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		if mx != nil {
			mx.BarrierWait(r.id, time.Since(t0).Nanoseconds())
		}
		return nil
	}
	for b.gen == gen && !b.aborted {
		b.cond.Wait()
	}
	if b.aborted {
		return ErrAborted
	}
	if mx != nil {
		mx.BarrierWait(r.id, time.Since(t0).Nanoseconds())
	}
	return nil
}

func (r *Rank) checkPeer(p int) error {
	if p < 0 || p >= r.w.size {
		return fmt.Errorf("mpi: rank %d out of range [0,%d)", p, r.w.size)
	}
	return nil
}

func (r *Rank) checkWildPeer(p int) error {
	if p == AnySource {
		return nil
	}
	return r.checkPeer(p)
}

func cloneBytes(b []byte) []byte {
	if b == nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// Sleep pauses the calling rank. It exists so workloads can inject think
// time without importing package time everywhere.
func (r *Rank) Sleep(d time.Duration) { time.Sleep(d) }

type barrierState struct {
	mu      sync.Mutex
	cond    *sync.Cond
	count   int
	gen     int
	aborted bool
}

// envelope is one in-flight message.
type envelope struct {
	ctx  int
	src  int
	tag  int
	data []byte
	// done is non-nil for rendezvous sends; the receiver closes it when the
	// message has been matched.
	done chan struct{}
}

// mailbox is a per-rank queue of in-flight messages with matched receives.
// Queue order is arrival order, which yields MPI's non-overtaking guarantee
// for any fixed (context, source, tag).
//
// Blocked take/probe calls register a waiter carrying their match pattern
// instead of sleeping on a shared condition variable. put checks each new
// envelope against the registered patterns — O(waiters), which is O(1) in
// practice since only the owning rank receives — and hands the envelope
// directly to the first matching take. The previous cond.Broadcast design
// woke every blocked caller to rescan the whole queue on every arrival:
// O(n²) thundering herd under an unmatched backlog (see
// BenchmarkMailboxBacklog).
type mailbox struct {
	mu      sync.Mutex
	queue   []*envelope
	waiters []*waiter
	closed  bool
}

// waiter is one blocked take or probe call. ready is buffered so put
// never blocks delivering; close(ready) signals world abort.
type waiter struct {
	ctx, src, tag int
	take          bool // take removes the message; probe only observes it
	ready         chan *envelope
}

func newMailbox() *mailbox {
	return &mailbox{}
}

func (b *mailbox) put(env *envelope) bool {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return false
	}
	// Wake exactly the waiters whose pattern matches: probes observe the
	// envelope, the first matching take consumes it (FIFO among waiters,
	// preserving non-overtaking order — a registered taker found no
	// earlier match when it scanned the queue).
	taken := false
	if len(b.waiters) > 0 {
		kept := b.waiters[:0]
		for _, w := range b.waiters {
			if (taken && w.take) || !match(env, w.ctx, w.src, w.tag) {
				kept = append(kept, w)
				continue
			}
			w.ready <- env
			if w.take {
				taken = true
			}
		}
		for i := len(kept); i < len(b.waiters); i++ {
			b.waiters[i] = nil
		}
		b.waiters = kept
	}
	if !taken {
		b.queue = append(b.queue, env)
	}
	b.mu.Unlock()
	return true
}

func match(env *envelope, ctx, src, tag int) bool {
	return env.ctx == ctx &&
		(src == AnySource || env.src == src) &&
		(tag == AnyTag || env.tag == tag)
}

// take removes and returns the first matching message, blocking until one
// arrives. ok=false means the world aborted.
func (b *mailbox) take(ctx, src, tag int) (*envelope, bool) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, false
	}
	for i, env := range b.queue {
		if match(env, ctx, src, tag) {
			b.queue = append(b.queue[:i], b.queue[i+1:]...)
			b.mu.Unlock()
			return env, true
		}
	}
	w := &waiter{ctx: ctx, src: src, tag: tag, take: true, ready: make(chan *envelope, 1)}
	b.waiters = append(b.waiters, w)
	b.mu.Unlock()
	env, ok := <-w.ready
	if !ok {
		return nil, false
	}
	return env, true
}

func (b *mailbox) probe(ctx, src, tag int, block bool) (Status, bool) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return Status{}, false
	}
	for _, env := range b.queue {
		if match(env, ctx, src, tag) {
			st := Status{Source: env.src, Tag: env.tag, Len: len(env.data)}
			b.mu.Unlock()
			return st, true
		}
	}
	if !block {
		b.mu.Unlock()
		return Status{}, false
	}
	w := &waiter{ctx: ctx, src: src, tag: tag, ready: make(chan *envelope, 1)}
	b.waiters = append(b.waiters, w)
	b.mu.Unlock()
	env, ok := <-w.ready
	if !ok {
		return Status{}, false
	}
	return Status{Source: env.src, Tag: env.tag, Len: len(env.data)}, true
}

func (b *mailbox) iprobe(ctx, src, tag int) (Status, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return Status{}, false
	}
	for _, env := range b.queue {
		if match(env, ctx, src, tag) {
			return Status{Source: env.src, Tag: env.tag, Len: len(env.data)}, true
		}
	}
	return Status{}, false
}

func (b *mailbox) close() {
	b.mu.Lock()
	b.closed = true
	for _, w := range b.waiters {
		close(w.ready)
	}
	b.waiters = nil
	b.mu.Unlock()
}
