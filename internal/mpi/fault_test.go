package mpi

import (
	"errors"
	"os"
	"os/exec"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestParseFaultPlan(t *testing.T) {
	plan, err := ParseFaultPlan("seed=42;mode=stop;delay:prob=0.25,dur=2ms;crash:rank=2,op=40;jump:rank=1,op=10,sec=0.5;rendezvous:prob=1;stall:rank=*,op=3,dur=1ms")
	if err != nil {
		t.Fatal(err)
	}
	if plan.Seed != 42 || plan.Mode != CrashStop || len(plan.Rules) != 5 {
		t.Fatalf("bad plan: %+v", plan)
	}
	want := []FaultRule{
		{Kind: FaultDelay, Rank: AnyRank, Prob: 0.25, Delay: 2 * time.Millisecond},
		{Kind: FaultCrash, Rank: 2, Op: 40},
		{Kind: FaultClockJump, Rank: 1, Op: 10, JumpSec: 0.5},
		{Kind: FaultRendezvous, Rank: AnyRank, Prob: 1},
		{Kind: FaultStall, Rank: AnyRank, Op: 3, Delay: time.Millisecond},
	}
	if !reflect.DeepEqual(plan.Rules, want) {
		t.Fatalf("rules:\n got %+v\nwant %+v", plan.Rules, want)
	}
}

func TestParseFaultPlanErrors(t *testing.T) {
	for _, spec := range []string{
		"",                          // no rules
		"seed=7",                    // still no rules
		"seed=x;crash:op=1",         // bad seed
		"mode=frob;crash:op=1",      // bad mode
		"explode:op=1",              // unknown kind
		"crash:op=1,frob=2",         // unknown param
		"crash",                     // needs op or prob
		"crash:prob=1.5",            // prob out of range
		"crash:op=-1",               // negative op
		"delay:op=1",                // needs dur
		"stall:op=1,dur=0s",         // dur must be positive
		"jump:op=1",                 // needs sec
		"delay:prob=0.5,dur=banana", // bad duration
	} {
		if _, err := ParseFaultPlan(spec); err == nil {
			t.Errorf("ParseFaultPlan(%q) succeeded, want error", spec)
		}
	}
}

// pingRing pushes rounds tokens around a ring of ranks; every rank does
// the same counted op sequence regardless of goroutine scheduling.
func pingRing(w *World, rounds int) []error {
	return w.Run(func(r *Rank) error {
		next := (r.ID() + 1) % r.Size()
		prev := (r.ID() + r.Size() - 1) % r.Size()
		for i := 0; i < rounds; i++ {
			if r.ID() == 0 {
				if err := r.Send(next, i, []byte("tok")); err != nil {
					return err
				}
				if _, err := r.Recv(prev, i); err != nil {
					return err
				}
			} else {
				if _, err := r.Recv(prev, i); err != nil {
					return err
				}
				if err := r.Send(next, i, []byte("tok")); err != nil {
					return err
				}
			}
		}
		return nil
	})
}

func TestFaultDeterminismReplay(t *testing.T) {
	plan, err := ParseFaultPlan("seed=9;delay:prob=0.4,dur=500us;rendezvous:prob=0.3;stall:rank=1,op=4,dur=300us;jump:rank=2,op=2,sec=0.25")
	if err != nil {
		t.Fatal(err)
	}
	run := func() []FaultEvent {
		w := NewWorld(3, Options{Faults: plan})
		for i, err := range pingRing(w, 10) {
			if err != nil {
				t.Fatalf("rank %d: %v", i, err)
			}
		}
		return w.FaultEvents()
	}
	first := run()
	if len(first) == 0 {
		t.Fatal("plan injected no faults; determinism check is vacuous")
	}
	for i := 0; i < 3; i++ {
		if again := run(); !reflect.DeepEqual(first, again) {
			t.Fatalf("replay %d diverged:\n got %v\nwant %v", i, again, first)
		}
	}
}

func TestCrashStopOnlyCrashedRankFails(t *testing.T) {
	// Rank 1 crashes at its 2nd op; rank 0 only consumes what rank 1
	// already sent, so nobody blocks on the dead rank.
	plan := &FaultPlan{Seed: 1, Mode: CrashStop, Rules: []FaultRule{{Kind: FaultCrash, Rank: 1, Op: 2}}}
	w := NewWorld(2, Options{Faults: plan})
	errs := w.Run(func(r *Rank) error {
		if r.ID() == 1 {
			if err := r.Send(0, 0, []byte("a")); err != nil {
				return err
			}
			return r.Send(0, 1, []byte("b")) // op 2: crash
		}
		_, err := r.Recv(1, 0)
		return err
	})
	if !errors.Is(errs[1], ErrRankCrashed) {
		t.Fatalf("rank 1: got %v, want ErrRankCrashed", errs[1])
	}
	if errs[0] != nil {
		t.Fatalf("rank 0: got %v, want nil", errs[0])
	}
	if w.Aborted() {
		t.Fatal("CrashStop must not abort the world")
	}
	// The dead rank can do nothing in the user world.
	r1 := w.Rank(1)
	if _, err := r1.Recv(0, 9); !errors.Is(err, ErrRankCrashed) {
		t.Fatalf("post-crash Recv: %v", err)
	}
	if err := r1.Send(0, 9, nil); !errors.Is(err, ErrRankCrashed) {
		t.Fatalf("post-crash Send: %v", err)
	}
	if _, _, err := r1.Iprobe(0, 9); !errors.Is(err, ErrRankCrashed) {
		t.Fatalf("post-crash Iprobe: %v", err)
	}
}

func TestCrashAbortTearsDownWorld(t *testing.T) {
	plan := &FaultPlan{Seed: 1, Mode: CrashAbort, Rules: []FaultRule{{Kind: FaultCrash, Rank: 1, Op: 1}}}
	w := NewWorld(2, Options{Faults: plan})
	errs := w.Run(func(r *Rank) error {
		if r.ID() == 1 {
			return r.Send(0, 0, nil) // op 1: crash -> abort
		}
		_, err := r.Recv(1, 0) // blocks, then unwinds on abort
		return err
	})
	if !errors.Is(errs[1], ErrRankCrashed) {
		t.Fatalf("rank 1: got %v, want ErrRankCrashed", errs[1])
	}
	if !errors.Is(errs[0], ErrAborted) {
		t.Fatalf("rank 0: got %v, want ErrAborted", errs[0])
	}
	if !w.Aborted() || w.AbortCode() != FaultAbortCode {
		t.Fatalf("aborted=%v code=%d, want true/%d", w.Aborted(), w.AbortCode(), FaultAbortCode)
	}
}

func TestCrashRankZeroAbortsEvenInStopMode(t *testing.T) {
	plan := &FaultPlan{Seed: 1, Mode: CrashStop, Rules: []FaultRule{{Kind: FaultCrash, Rank: 0, Op: 1}}}
	w := NewWorld(2, Options{Faults: plan})
	errs := w.Run(func(r *Rank) error {
		if r.ID() == 0 {
			return r.Send(1, 0, nil)
		}
		_, err := r.Recv(0, 0)
		return err
	})
	if !errors.Is(errs[0], ErrRankCrashed) {
		t.Fatalf("rank 0: got %v, want ErrRankCrashed", errs[0])
	}
	if !w.Aborted() {
		t.Fatal("rank 0 crash must abort the world even in CrashStop mode")
	}
}

func TestStallDelaysOperation(t *testing.T) {
	const stall = 40 * time.Millisecond
	plan := &FaultPlan{Seed: 1, Rules: []FaultRule{{Kind: FaultStall, Rank: 0, Op: 1, Delay: stall}}}
	w := NewWorld(2, Options{Faults: plan})
	var elapsed time.Duration
	errs := w.Run(func(r *Rank) error {
		if r.ID() == 0 {
			t0 := time.Now()
			err := r.Send(1, 0, nil)
			elapsed = time.Since(t0)
			return err
		}
		_, err := r.Recv(0, 0)
		return err
	})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
	if elapsed < stall/2 {
		t.Fatalf("stalled op took %v, want >= %v", elapsed, stall/2)
	}
}

func TestDelaySlowsMessage(t *testing.T) {
	const dur = 40 * time.Millisecond
	plan := &FaultPlan{Seed: 1, Rules: []FaultRule{{Kind: FaultDelay, Rank: 0, Op: 1, Delay: dur}}}
	w := NewWorld(2, Options{Faults: plan})
	var elapsed time.Duration
	errs := w.Run(func(r *Rank) error {
		if r.ID() == 0 {
			t0 := time.Now()
			err := r.Send(1, 0, nil)
			elapsed = time.Since(t0)
			return err
		}
		_, err := r.Recv(0, 0)
		return err
	})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
	// The drawn delay is uniform in [dur/2, dur].
	if elapsed < dur/4 {
		t.Fatalf("delayed send took %v, want >= %v", elapsed, dur/4)
	}
}

func TestForcedRendezvousBlocksSender(t *testing.T) {
	const lag = 50 * time.Millisecond
	plan := &FaultPlan{Seed: 1, Rules: []FaultRule{{Kind: FaultRendezvous, Rank: 0, Op: 1}}}
	w := NewWorld(2, Options{Faults: plan})
	var elapsed time.Duration
	errs := w.Run(func(r *Rank) error {
		if r.ID() == 0 {
			t0 := time.Now()
			err := r.Send(1, 0, []byte("x")) // tiny: eager without the fault
			elapsed = time.Since(t0)
			return err
		}
		time.Sleep(lag)
		_, err := r.Recv(0, 0)
		return err
	})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
	if elapsed < lag/2 {
		t.Fatalf("forced-rendezvous send returned in %v, want >= %v (sender must wait for the match)", elapsed, lag/2)
	}
}

func TestClockJumpShiftsWtime(t *testing.T) {
	plan := &FaultPlan{Seed: 1, Rules: []FaultRule{{Kind: FaultClockJump, Rank: 0, Op: 1, JumpSec: 5}}}
	w := NewWorld(2, Options{Faults: plan})
	var before, after float64
	errs := w.Run(func(r *Rank) error {
		if r.ID() == 0 {
			before = r.Wtime()
			if err := r.Send(1, 0, nil); err != nil {
				return err
			}
			after = r.Wtime()
			return nil
		}
		_, err := r.Recv(0, 0)
		return err
	})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
	if after-before < 5 {
		t.Fatalf("clock advanced %g s across the jump, want >= 5", after-before)
	}
}

func TestNegativeClockJumpStaysMonotonic(t *testing.T) {
	plan := &FaultPlan{Seed: 1, Rules: []FaultRule{{Kind: FaultClockJump, Rank: 0, Op: 1, JumpSec: -3600}}}
	w := NewWorld(2, Options{Faults: plan})
	errs := w.Run(func(r *Rank) error {
		if r.ID() == 0 {
			prev := r.Wtime()
			if err := r.Send(1, 0, nil); err != nil {
				return err
			}
			for i := 0; i < 100; i++ {
				now := r.Wtime()
				if now < prev {
					return invariantErrorf(t, "clock ran backwards: %g -> %g", prev, now)
				}
				prev = now
			}
			return nil
		}
		_, err := r.Recv(0, 0)
		return err
	})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
}

// invariantErrorf lets a work function report a failed assertion without
// calling t.Fatalf off the test goroutine.
func invariantErrorf(t *testing.T, format string, args ...any) error {
	t.Helper()
	err := errors.New("assertion failed")
	t.Errorf(format, args...)
	return err
}

func TestRunRecoversWorkFunctionPanic(t *testing.T) {
	w := NewWorld(2, Options{})
	errs := w.Run(func(r *Rank) error {
		if r.ID() == 1 {
			panic("boom")
		}
		_, err := r.Recv(1, 0) // blocks until the panic aborts the world
		return err
	})
	if errs[1] == nil || !w.Aborted() || w.AbortCode() != PanicAbortCode {
		t.Fatalf("panicking rank: err=%v aborted=%v code=%d", errs[1], w.Aborted(), w.AbortCode())
	}
	if !errors.Is(errs[0], ErrAborted) {
		t.Fatalf("sibling rank: got %v, want ErrAborted", errs[0])
	}
}

func TestRunRepanicsInvariantFailures(t *testing.T) {
	// The re-panic happens on a rank goroutine, so it takes the process
	// down — exactly the point. Verify in a subprocess.
	if os.Getenv("MPI_TEST_INVARIANT_PANIC") == "1" {
		w := NewWorld(1, Options{})
		w.Run(func(r *Rank) error {
			panic(invariantf("internal invariant broken"))
		})
		return
	}
	cmd := exec.Command(os.Args[0], "-test.run=TestRunRepanicsInvariantFailures")
	cmd.Env = append(os.Environ(), "MPI_TEST_INVARIANT_PANIC=1")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("subprocess exited cleanly; invariant panic was swallowed:\n%s", out)
	}
	if !strings.Contains(string(out), "internal invariant broken") {
		t.Fatalf("subprocess output missing the invariant message:\n%s", out)
	}
}

func TestFaultEventsOrderIsSchedulingIndependent(t *testing.T) {
	plan := &FaultPlan{Seed: 3, Rules: []FaultRule{{Kind: FaultDelay, Rank: AnyRank, Prob: 1, Delay: time.Microsecond}}}
	w := NewWorld(4, Options{Faults: plan})
	if errs := pingRing(w, 5); errs[0] != nil {
		t.Fatal(errs[0])
	}
	evs := w.FaultEvents()
	for i := 1; i < len(evs); i++ {
		a, b := evs[i-1], evs[i]
		if a.Rank > b.Rank || (a.Rank == b.Rank && a.Op > b.Op) {
			t.Fatalf("events not sorted by (rank, op): %v before %v", a, b)
		}
	}
}
