// Wire framing for the multi-process socket transport.
//
// Every connection carries a stream of length-prefixed frames:
//
//	u32  body length (little-endian, excludes itself)
//	u8   frame type
//	...  type-specific fields, little-endian, then the raw payload
//
// Frame types:
//
//	HELLO    rank u32, world u32            — joining rank's handshake
//	MSG      dst u32, ctx u8, src u32,      — one envelope; the hub routes
//	         tag i64, flags u8, seq u64,      on dst, the payload is the
//	         payload                          message body
//	ACK      dst u32, seq u64               — rendezvous release for the
//	                                          sender's seq
//	BARRIER  rank u32                       — rank entered the barrier
//	RELEASE  (empty)                        — hub: barrier is complete
//	ABORT    code i64                       — world teardown fan-out
//	BYE      rank u32, traffic 4×i64        — clean goodbye; carries the
//	                                          rank's user-traffic counters
//	                                          so the orchestrator's totals
//	                                          stay complete
//
// Integers that are rank numbers fit u32 by construction; tags and abort
// codes travel as i64 so the wire never narrows an application value.
package mpi

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/stats"
)

// Frame types.
const (
	frHello byte = iota + 1
	frMsg
	frAck
	frBarrier
	frRelease
	frAbort
	frBye
)

// MSG flags.
const flagNeedAck byte = 1 << 0

// maxWireFrame bounds a frame body so a corrupt length prefix cannot ask
// for gigabytes; it must exceed any message the examples or tests send.
const maxWireFrame = 1 << 30

// frame is the decoded form of one wire frame; only the fields of its
// type are meaningful.
type frame struct {
	typ     byte
	rank    int // hello, barrier, bye: the sending rank
	world   int // hello: expected world size
	dst     int // msg, ack: routing destination
	ctx     int // msg
	src     int // msg: originating rank
	tag     int // msg
	flags   byte
	seq     uint64 // msg, ack: rendezvous sequence number
	code    int    // abort
	traffic Traffic
	payload []byte
}

func encodeFrame(fr *frame) []byte {
	var b []byte
	u32 := func(v int) { b = binary.LittleEndian.AppendUint32(b, uint32(v)) }
	i64 := func(v int64) { b = binary.LittleEndian.AppendUint64(b, uint64(v)) }
	b = append(b, fr.typ)
	switch fr.typ {
	case frHello:
		u32(fr.rank)
		u32(fr.world)
	case frMsg:
		u32(fr.dst)
		b = append(b, byte(fr.ctx))
		u32(fr.src)
		i64(int64(fr.tag))
		b = append(b, fr.flags)
		b = binary.LittleEndian.AppendUint64(b, fr.seq)
		b = append(b, fr.payload...)
	case frAck:
		u32(fr.dst)
		b = binary.LittleEndian.AppendUint64(b, fr.seq)
	case frBarrier:
		u32(fr.rank)
	case frRelease:
	case frAbort:
		i64(int64(fr.code))
	case frBye:
		u32(fr.rank)
		i64(fr.traffic.Sent)
		i64(fr.traffic.SentBytes)
		i64(fr.traffic.Received)
		i64(fr.traffic.RecvBytes)
	}
	return b
}

func decodeFrame(b []byte) (*frame, error) {
	if len(b) < 1 {
		return nil, fmt.Errorf("mpi: empty wire frame")
	}
	fr := &frame{typ: b[0]}
	b = b[1:]
	short := fmt.Errorf("mpi: truncated wire frame type %d", fr.typ)
	u32 := func(dst *int) bool {
		if len(b) < 4 {
			return false
		}
		*dst = int(binary.LittleEndian.Uint32(b))
		b = b[4:]
		return true
	}
	i64 := func(dst *int64) bool {
		if len(b) < 8 {
			return false
		}
		*dst = int64(binary.LittleEndian.Uint64(b))
		b = b[8:]
		return true
	}
	switch fr.typ {
	case frHello:
		if !u32(&fr.rank) || !u32(&fr.world) {
			return nil, short
		}
	case frMsg:
		if !u32(&fr.dst) || len(b) < 1 {
			return nil, short
		}
		fr.ctx = int(b[0])
		b = b[1:]
		var tag int64
		if !u32(&fr.src) || !i64(&tag) {
			return nil, short
		}
		fr.tag = int(tag)
		if len(b) < 9 {
			return nil, short
		}
		fr.flags = b[0]
		fr.seq = binary.LittleEndian.Uint64(b[1:9])
		fr.payload = b[9:]
	case frAck:
		if !u32(&fr.dst) {
			return nil, short
		}
		if len(b) < 8 {
			return nil, short
		}
		fr.seq = binary.LittleEndian.Uint64(b)
	case frBarrier:
		if !u32(&fr.rank) {
			return nil, short
		}
	case frRelease:
	case frAbort:
		var code int64
		if !i64(&code) {
			return nil, short
		}
		fr.code = int(code)
	case frBye:
		if !u32(&fr.rank) ||
			!i64(&fr.traffic.Sent) || !i64(&fr.traffic.SentBytes) ||
			!i64(&fr.traffic.Received) || !i64(&fr.traffic.RecvBytes) {
			return nil, short
		}
	default:
		return nil, fmt.Errorf("mpi: unknown wire frame type %d", fr.typ)
	}
	return fr, nil
}

// wireConn is one framed connection. Writes are serialised by a mutex so
// concurrent senders interleave whole frames, never bytes; reads happen
// from a single reader goroutine per connection.
type wireConn struct {
	c  net.Conn
	r  *bufio.Reader
	mu sync.Mutex

	// Wire accounting: every frame written or read is attributed to the
	// local rank of the observing process (nil collector disables it for
	// free, as everywhere).
	mx   *stats.Collector
	attr int
}

func newWireConn(c net.Conn, mx *stats.Collector, attr int) *wireConn {
	return &wireConn{c: c, r: bufio.NewReader(c), mx: mx, attr: attr}
}

func (wc *wireConn) write(fr *frame) error {
	body := encodeFrame(fr)
	buf := make([]byte, 4+len(body))
	binary.LittleEndian.PutUint32(buf, uint32(len(body)))
	copy(buf[4:], body)
	wc.mu.Lock()
	_, err := wc.c.Write(buf)
	wc.mu.Unlock()
	if err == nil {
		wc.mx.WireObserved(wc.attr, 1, len(buf))
	}
	return err
}

func (wc *wireConn) read() (*frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(wc.r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > maxWireFrame {
		return nil, fmt.Errorf("mpi: wire frame length %d out of range", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(wc.r, body); err != nil {
		return nil, err
	}
	fr, err := decodeFrame(body)
	if err == nil {
		wc.mx.WireObserved(wc.attr, 1, 4+len(body))
	}
	return fr, err
}
