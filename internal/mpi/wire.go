// Wire framing for the multi-process socket transport.
//
// This file is the *inner* frame codec: the type byte and its
// little-endian fields. The link layer around it — the length prefix,
// CRC, link sequence/ack numbers, retransmission and heartbeats — lives
// in wirelink.go. On the wire each frame travels as:
//
//	u32  length (little-endian; everything after this field)
//	u32  crc32c over seq|ack|body
//	u64  link seq (0 for unsequenced control frames)
//	u64  cumulative ack (highest contiguous seq received)
//	u8   frame type
//	...  type-specific fields, little-endian, then the raw payload
//
// Frame types:
//
//	HELLO    rank u32, world u32,           — joining rank's handshake;
//	         epoch u32, ack u64               epoch > 0 resumes a broken
//	                                          link, ack tells the hub what
//	                                          to retransmit
//	MSG      dst u32, ctx u8, src u32,      — one envelope; the hub routes
//	         tag i64, flags u8, seq u64,      on dst, the payload is the
//	         payload                          message body
//	ACK      dst u32, seq u64               — rendezvous release for the
//	                                          sender's seq
//	BARRIER  rank u32                       — rank entered the barrier
//	RELEASE  (empty)                        — hub: barrier is complete
//	ABORT    code i64                       — world teardown fan-out
//	BYE      rank u32, traffic 4×i64        — clean goodbye; carries the
//	                                          rank's user-traffic counters
//	                                          so the orchestrator's totals
//	                                          stay complete
//	PING     (empty)                        — heartbeat probe
//	PONG     (empty)                        — heartbeat reply / ack carrier
//	WELCOME  epoch u32, ack u64             — hub's handshake reply
//
// Integers that are rank numbers fit u32 by construction; tags and abort
// codes travel as i64 so the wire never narrows an application value.
package mpi

import (
	"encoding/binary"
	"fmt"
)

// Frame types.
const (
	frHello byte = iota + 1
	frMsg
	frAck
	frBarrier
	frRelease
	frAbort
	frBye
	frPing
	frPong
	frWelcome
)

// sequencedType reports whether frames of this type carry a link seq:
// they are exactly the frames whose loss would change program-visible
// behaviour, so they are windowed, deduped and retransmitted. Control
// frames (handshakes, heartbeats, aborts) are regenerated instead.
func sequencedType(typ byte) bool {
	switch typ {
	case frMsg, frAck, frBarrier, frRelease, frBye:
		return true
	}
	return false
}

// MSG flags.
const flagNeedAck byte = 1 << 0

// frame is the decoded form of one wire frame; only the fields of its
// type are meaningful.
type frame struct {
	typ     byte
	rank    int // hello, barrier, bye: the sending rank
	world   int // hello: expected world size
	epoch   int    // hello, welcome: link resume epoch (0 = first connect)
	ack     uint64 // hello, welcome: sender's cumulative link ack
	dst     int // msg, ack: routing destination
	ctx     int // msg
	src     int // msg: originating rank
	tag     int // msg
	flags   byte
	seq     uint64 // msg, ack: rendezvous sequence number
	code    int    // abort
	traffic Traffic
	payload []byte
}

// wireSizeHint bounds the encoded size of fr: one type byte, at most 37
// bytes of fixed fields (BYE), and the payload. Used to pre-size encode
// buffers so a frame encodes with a single allocation.
func wireSizeHint(fr *frame) int {
	return 40 + len(fr.payload)
}

func encodeFrame(fr *frame) []byte {
	return appendFrame(make([]byte, 0, wireSizeHint(fr)), fr)
}

// appendFrame appends the encoded form of fr to b and returns the
// extended slice — the allocation-free core of encodeFrame, used by the
// link layer to encode directly into the outer wire buffer.
func appendFrame(b []byte, fr *frame) []byte {
	u32 := func(v int) { b = binary.LittleEndian.AppendUint32(b, uint32(v)) }
	i64 := func(v int64) { b = binary.LittleEndian.AppendUint64(b, uint64(v)) }
	b = append(b, fr.typ)
	switch fr.typ {
	case frHello:
		u32(fr.rank)
		u32(fr.world)
		u32(fr.epoch)
		b = binary.LittleEndian.AppendUint64(b, fr.ack)
	case frWelcome:
		u32(fr.epoch)
		b = binary.LittleEndian.AppendUint64(b, fr.ack)
	case frPing, frPong:
	case frMsg:
		u32(fr.dst)
		b = append(b, byte(fr.ctx))
		u32(fr.src)
		i64(int64(fr.tag))
		b = append(b, fr.flags)
		b = binary.LittleEndian.AppendUint64(b, fr.seq)
		b = append(b, fr.payload...)
	case frAck:
		u32(fr.dst)
		b = binary.LittleEndian.AppendUint64(b, fr.seq)
	case frBarrier:
		u32(fr.rank)
	case frRelease:
	case frAbort:
		i64(int64(fr.code))
	case frBye:
		u32(fr.rank)
		i64(fr.traffic.Sent)
		i64(fr.traffic.SentBytes)
		i64(fr.traffic.Received)
		i64(fr.traffic.RecvBytes)
	}
	return b
}

func decodeFrame(b []byte) (*frame, error) {
	if len(b) < 1 {
		return nil, fmt.Errorf("mpi: empty wire frame")
	}
	fr := &frame{typ: b[0]}
	b = b[1:]
	// Built lazily: allocating the error eagerly would cost a fmt call on
	// every healthy frame of the hot path.
	short := func() error { return fmt.Errorf("mpi: truncated wire frame type %d", fr.typ) }
	u32 := func(dst *int) bool {
		if len(b) < 4 {
			return false
		}
		*dst = int(binary.LittleEndian.Uint32(b))
		b = b[4:]
		return true
	}
	i64 := func(dst *int64) bool {
		if len(b) < 8 {
			return false
		}
		*dst = int64(binary.LittleEndian.Uint64(b))
		b = b[8:]
		return true
	}
	u64 := func(dst *uint64) bool {
		if len(b) < 8 {
			return false
		}
		*dst = binary.LittleEndian.Uint64(b)
		b = b[8:]
		return true
	}
	switch fr.typ {
	case frHello:
		if !u32(&fr.rank) || !u32(&fr.world) || !u32(&fr.epoch) || !u64(&fr.ack) {
			return nil, short()
		}
	case frWelcome:
		if !u32(&fr.epoch) || !u64(&fr.ack) {
			return nil, short()
		}
	case frPing, frPong:
	case frMsg:
		if !u32(&fr.dst) || len(b) < 1 {
			return nil, short()
		}
		fr.ctx = int(b[0])
		b = b[1:]
		var tag int64
		if !u32(&fr.src) || !i64(&tag) {
			return nil, short()
		}
		fr.tag = int(tag)
		if len(b) < 9 {
			return nil, short()
		}
		fr.flags = b[0]
		fr.seq = binary.LittleEndian.Uint64(b[1:9])
		fr.payload = b[9:]
	case frAck:
		if !u32(&fr.dst) {
			return nil, short()
		}
		if len(b) < 8 {
			return nil, short()
		}
		fr.seq = binary.LittleEndian.Uint64(b)
	case frBarrier:
		if !u32(&fr.rank) {
			return nil, short()
		}
	case frRelease:
	case frAbort:
		var code int64
		if !i64(&code) {
			return nil, short()
		}
		fr.code = int(code)
	case frBye:
		if !u32(&fr.rank) ||
			!i64(&fr.traffic.Sent) || !i64(&fr.traffic.SentBytes) ||
			!i64(&fr.traffic.Received) || !i64(&fr.traffic.RecvBytes) {
			return nil, short()
		}
	default:
		return nil, fmt.Errorf("mpi: unknown wire frame type %d", fr.typ)
	}
	return fr, nil
}

