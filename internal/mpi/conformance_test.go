package mpi

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/stats"
)

// Conformance property suite: randomized seeded send/recv programs
// assert the MPI ordering semantics the log pipeline depends on —
// non-overtaking (messages with the same source and tag arrive in send
// order) and tag/source wildcard matching — and cross-check the message
// accounting three ways: a naive reference matcher (per-pair FIFO
// sequence queues), the world's Traffic counters, and the stats
// collector.

// confPayload encodes (src, tag, seq) so a received message is
// self-describing independent of the envelope.
func confPayload(src, tag, seq, size int) []byte {
	b := make([]byte, 12+size)
	binary.LittleEndian.PutUint32(b[0:], uint32(src))
	binary.LittleEndian.PutUint32(b[4:], uint32(tag))
	binary.LittleEndian.PutUint32(b[8:], uint32(seq))
	return b
}

func decodeConfPayload(b []byte) (src, tag, seq int) {
	return int(binary.LittleEndian.Uint32(b[0:])),
		int(binary.LittleEndian.Uint32(b[4:])),
		int(binary.LittleEndian.Uint32(b[8:]))
}

func TestConformanceRandomized(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			runConformance(t, seed)
		})
	}
}

// sendRec is one planned send: its tag, its per-(src, tag) sequence
// number, and the padding appended after the 12-byte confPayload header.
type sendRec struct{ tag, seq, size int }

// confPlan is a fully deterministic function of its seed and shape, so
// the sender ranks of a multi-process conformance run can rebuild their
// own slices from nothing but the seed handed down in the environment.
type confPlan struct {
	nSenders, numTags, perSender int

	plans       [][]sendRec      // per sender rank, in send order
	queues      map[[2]int][]int // (src, tag) -> seqs in send order
	perTagCount map[int]int
	perTagBytes map[int]int64
	totalMsgs   int
	totalBytes  int64
}

// size returns the world size: the senders plus receiving rank 0.
func (p *confPlan) size() int { return p.nSenders + 1 }

// buildConfPlan plans every send up front with a seeded generator, so the
// reference matcher knows each (src, tag) pair's exact sequence order.
func buildConfPlan(seed int64, nSenders, numTags, perSender int) *confPlan {
	p := &confPlan{
		nSenders:    nSenders,
		numTags:     numTags,
		perSender:   perSender,
		plans:       make([][]sendRec, nSenders+1),
		queues:      map[[2]int][]int{},
		perTagCount: map[int]int{},
		perTagBytes: map[int]int64{},
	}
	planRng := rand.New(rand.NewSource(seed))
	for s := 1; s <= nSenders; s++ {
		seqs := map[int]int{}
		for i := 0; i < perSender; i++ {
			tag := 1 + planRng.Intn(numTags)
			size := planRng.Intn(48)
			rec := sendRec{tag: tag, seq: seqs[tag], size: size}
			seqs[tag]++
			p.plans[s] = append(p.plans[s], rec)
			p.queues[[2]int{s, tag}] = append(p.queues[[2]int{s, tag}], rec.seq)
			p.perTagCount[tag]++
			p.perTagBytes[tag] += int64(12 + size)
			p.totalMsgs++
			p.totalBytes += int64(12 + size)
		}
	}
	return p
}

// confSend replays rank r's planned sends toward rank 0.
func confSend(r *Rank, p *confPlan) error {
	for _, rec := range p.plans[r.ID()] {
		if err := r.Send(0, rec.tag, confPayload(r.ID(), rec.tag, rec.seq, rec.size)); err != nil {
			return err
		}
	}
	return nil
}

// confReceive consumes every planned message at rank 0, asserting
// envelope/payload agreement, wildcard honouring, and non-overtaking
// against the reference matcher. It mutates p.queues under mu and
// records assertion failures through fail; transport errors come back as
// the return value. The receiver draws its wildcard choices from its own
// seeded stream and anchors filters to a currently-available message
// (Iprobe), so no filter can starve regardless of scheduling.
func confReceive(r *Rank, p *confPlan, seed int64, mu *sync.Mutex, fail func(format string, args ...any)) error {
	recvRng := rand.New(rand.NewSource(seed * 7919))
	for got := 0; got < p.totalMsgs; got++ {
		// Pick a filter: anchored to an available message when one is
		// ready, a full wildcard otherwise.
		src, tag := AnySource, AnyTag
		if st, ok, err := r.Iprobe(AnySource, AnyTag); err != nil {
			return err
		} else if ok {
			switch recvRng.Intn(4) {
			case 0:
				src, tag = st.Source, st.Tag // exact
			case 1:
				tag = st.Tag // source wildcard
			case 2:
				src = st.Source // tag wildcard
			}
		}
		m, err := r.Recv(src, tag)
		if err != nil {
			return err
		}
		psrc, ptag, pseq := decodeConfPayload(m.Data)

		// Envelope and payload agree.
		if m.Source != psrc || m.Tag != ptag {
			fail("envelope (src=%d tag=%d) disagrees with payload (src=%d tag=%d)",
				m.Source, m.Tag, psrc, ptag)
		}
		// Wildcard filters were honoured.
		if src != AnySource && m.Source != src {
			fail("asked for source %d, got %d", src, m.Source)
		}
		if tag != AnyTag && m.Tag != tag {
			fail("asked for tag %d, got %d", tag, m.Tag)
		}
		// Non-overtaking: this message must be the oldest unreceived
		// one of its (source, tag) pair.
		key := [2]int{m.Source, m.Tag}
		mu.Lock()
		q := p.queues[key]
		if len(q) == 0 {
			fail("pair %v delivered more than was sent", key)
		} else {
			if q[0] != pseq {
				fail("non-overtaking violated on pair %v: got seq %d, want %d", key, pseq, q[0])
			}
			p.queues[key] = q[1:]
		}
		mu.Unlock()
	}
	return nil
}

// checkConfDrained asserts the reference matcher saw every planned send.
func checkConfDrained(t *testing.T, p *confPlan) {
	t.Helper()
	for key, q := range p.queues {
		if len(q) != 0 {
			t.Errorf("pair %v left %d undelivered seqs", key, len(q))
		}
	}
}

func runConformance(t *testing.T, seed int64) {
	p := buildConfPlan(seed, 3, 3, 50)
	n := p.size()
	mx := stats.New(n)
	mx.SetChannels(p.numTags)
	w := NewWorld(n, Options{Metrics: mx})

	var mu sync.Mutex // guards queues + failure notes from the rank goroutine
	var failures []string
	fail := func(format string, args ...any) {
		mu.Lock()
		failures = append(failures, fmt.Sprintf(format, args...))
		mu.Unlock()
	}

	errs := w.Run(func(r *Rank) error {
		if r.ID() != 0 {
			return confSend(r, p)
		}
		return confReceive(r, p, seed, &mu, fail)
	})
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	for _, f := range failures {
		t.Error(f)
	}
	checkConfDrained(t, p)

	// Cross-check 1: the world's own traffic counters.
	if tr := w.Traffic(0); tr.Received != int64(p.totalMsgs) || tr.RecvBytes != p.totalBytes {
		t.Errorf("Traffic(0) = %+v, want %d msgs / %d bytes received", tr, p.totalMsgs, p.totalBytes)
	}
	tot := w.TotalTraffic()
	if tot.Sent != int64(p.totalMsgs) || tot.SentBytes != p.totalBytes {
		t.Errorf("TotalTraffic = %+v, want %d msgs / %d bytes sent", tot, p.totalMsgs, p.totalBytes)
	}

	// Cross-check 2: the stats collector, totals and per-channel cells.
	if got := mx.Total(stats.CtrMsgsSent); got != int64(p.totalMsgs) {
		t.Errorf("stats msgs_sent = %d, want %d", got, p.totalMsgs)
	}
	if got := mx.Total(stats.CtrBytesRecv); got != p.totalBytes {
		t.Errorf("stats bytes_recv = %d, want %d", got, p.totalBytes)
	}
	snap := mx.Snapshot()
	for _, ch := range snap.Channels {
		if ch.Sent != int64(p.perTagCount[ch.Chan]) || ch.SentBytes != p.perTagBytes[ch.Chan] {
			t.Errorf("channel %d sent %d/%dB, plan says %d/%dB",
				ch.Chan, ch.Sent, ch.SentBytes, p.perTagCount[ch.Chan], p.perTagBytes[ch.Chan])
		}
		if ch.Recvd != int64(p.perTagCount[ch.Chan]) || ch.RecvdBytes != p.perTagBytes[ch.Chan] {
			t.Errorf("channel %d recvd %d/%dB, plan says %d/%dB",
				ch.Chan, ch.Recvd, ch.RecvdBytes, p.perTagCount[ch.Chan], p.perTagBytes[ch.Chan])
		}
	}
}

// Probe-then-receive: a receive anchored to exactly what a blocking Probe
// reported must deliver that same message, for every message, while
// senders keep racing new envelopes into the mailbox. Because only this
// rank consumes its mailbox and matching is non-overtaking, the probed
// message is the oldest of its (source, tag) pair — so the anchored
// receive must return a message whose status matches the probe's exactly,
// length included.
func TestConformanceProbeThenRecv(t *testing.T) {
	const (
		nSenders  = 3
		perSender = 60
	)
	n := nSenders + 1
	w := NewWorld(n, Options{})
	errs := w.Run(func(r *Rank) error {
		if r.ID() != 0 {
			for i := 0; i < perSender; i++ {
				tag := 1 + i%3
				if err := r.Send(0, tag, confPayload(r.ID(), tag, i, i%32)); err != nil {
					return err
				}
			}
			return nil
		}
		for got := 0; got < nSenders*perSender; got++ {
			st, err := r.Probe(AnySource, AnyTag)
			if err != nil {
				return err
			}
			m, err := r.Recv(st.Source, st.Tag)
			if err != nil {
				return err
			}
			if m.Source != st.Source || m.Tag != st.Tag || m.Len != st.Len {
				return fmt.Errorf("probe reported (src=%d tag=%d len=%d), recv delivered (src=%d tag=%d len=%d)",
					st.Source, st.Tag, st.Len, m.Source, m.Tag, m.Len)
			}
		}
		return nil
	})
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
}

// Non-overtaking must hold under rendezvous just as under eager
// delivery: with every send forced to rendezvous, a strict ping-pong
// still sees per-pair order preserved.
func TestConformanceRendezvousOrdering(t *testing.T) {
	const msgs = 30
	mx := stats.New(2)
	w := NewWorld(2, Options{EagerLimit: -1, Metrics: mx})
	errs := w.Run(func(r *Rank) error {
		if r.ID() == 0 {
			for i := 0; i < msgs; i++ {
				if err := r.Send(1, 1, confPayload(0, 1, i, 4)); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < msgs; i++ {
			m, err := r.Recv(AnySource, AnyTag)
			if err != nil {
				return err
			}
			if _, _, seq := decodeConfPayload(m.Data); seq != i {
				return fmt.Errorf("rendezvous overtaking: got seq %d at position %d", seq, i)
			}
		}
		return nil
	})
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	if got := mx.Total(stats.CtrMsgsSent); got != msgs {
		t.Errorf("stats msgs_sent = %d, want %d", got, msgs)
	}
	// Every send waited for its matching receive, so the write-block
	// histogram must have one sample per message.
	snap := mx.Snapshot()
	if h := snap.Hists["write_block_ns"]; h.Count != msgs {
		t.Errorf("write_block_ns count = %d, want %d", h.Count, msgs)
	}
}
