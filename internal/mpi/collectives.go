package mpi

import "fmt"

// Collective-operation tags within CtxColl. Each collective call site uses
// a fixed tag; correctness relies on MPI's guarantee that collectives are
// invoked in the same order on every rank, which the callers preserve.
const (
	tagBcast = iota
	tagGather
	tagScatter
	tagReduce
)

// Bcast distributes root's buffer to every rank. Every rank must call it
// with the same root; root passes the data, the others' data argument is
// ignored. Returns the broadcast payload on every rank.
func (r *Rank) Bcast(root int, data []byte) ([]byte, error) {
	if err := r.checkPeer(root); err != nil {
		return nil, err
	}
	if r.id == root {
		for dst := 0; dst < r.w.size; dst++ {
			if dst == root {
				continue
			}
			if err := r.SendCtx(CtxColl, dst, tagBcast, data); err != nil {
				return nil, err
			}
		}
		return cloneBytes(data), nil
	}
	m, err := r.RecvCtx(CtxColl, root, tagBcast)
	if err != nil {
		return nil, err
	}
	return m.Data, nil
}

// Gather collects one buffer from every rank at root. On root the result
// has one entry per rank in rank order; on other ranks it is nil.
func (r *Rank) Gather(root int, data []byte) ([][]byte, error) {
	if err := r.checkPeer(root); err != nil {
		return nil, err
	}
	if r.id != root {
		return nil, r.SendCtx(CtxColl, root, tagGather, data)
	}
	out := make([][]byte, r.w.size)
	out[root] = cloneBytes(data)
	for src := 0; src < r.w.size; src++ {
		if src == root {
			continue
		}
		m, err := r.RecvCtx(CtxColl, src, tagGather)
		if err != nil {
			return nil, err
		}
		out[src] = m.Data
	}
	return out, nil
}

// Scatter sends parts[i] from root to rank i and returns the local part.
// On root, parts must have exactly Size entries; on other ranks it is
// ignored.
func (r *Rank) Scatter(root int, parts [][]byte) ([]byte, error) {
	if err := r.checkPeer(root); err != nil {
		return nil, err
	}
	if r.id == root {
		if len(parts) != r.w.size {
			return nil, fmt.Errorf("mpi: Scatter with %d parts for %d ranks", len(parts), r.w.size)
		}
		for dst := 0; dst < r.w.size; dst++ {
			if dst == root {
				continue
			}
			if err := r.SendCtx(CtxColl, dst, tagScatter, parts[dst]); err != nil {
				return nil, err
			}
		}
		return cloneBytes(parts[root]), nil
	}
	m, err := r.RecvCtx(CtxColl, root, tagScatter)
	if err != nil {
		return nil, err
	}
	return m.Data, nil
}

// ReduceOp combines two operand buffers into one. It must be associative
// over the encoding the caller uses.
type ReduceOp func(a, b []byte) []byte

// Reduce combines every rank's buffer at root using op, applied in rank
// order: op(...op(op(buf0, buf1), buf2)..., bufN-1). On non-root ranks the
// result is nil.
func (r *Rank) Reduce(root int, data []byte, op ReduceOp) ([]byte, error) {
	if err := r.checkPeer(root); err != nil {
		return nil, err
	}
	if op == nil {
		return nil, fmt.Errorf("mpi: Reduce with nil op")
	}
	if r.id != root {
		return nil, r.SendCtx(CtxColl, root, tagReduce, data)
	}
	bufs := make([][]byte, r.w.size)
	bufs[root] = cloneBytes(data)
	for src := 0; src < r.w.size; src++ {
		if src == root {
			continue
		}
		m, err := r.RecvCtx(CtxColl, src, tagReduce)
		if err != nil {
			return nil, err
		}
		bufs[src] = m.Data
	}
	acc := bufs[0]
	for i := 1; i < len(bufs); i++ {
		acc = op(acc, bufs[i])
	}
	return acc, nil
}
