package mpi

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/clock"
)

func TestNewWorldPanicsOnZeroRanks(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewWorld(0) did not panic")
		}
	}()
	NewWorld(0, Options{})
}

func TestRankOutOfRangePanics(t *testing.T) {
	w := NewWorld(2, Options{})
	defer func() {
		if recover() == nil {
			t.Fatal("Rank(5) did not panic")
		}
	}()
	w.Rank(5)
}

func TestSendRecvBasic(t *testing.T) {
	w := NewWorld(2, Options{})
	errs := w.Run(func(r *Rank) error {
		if r.ID() == 0 {
			return r.Send(1, 7, []byte("hello"))
		}
		m, err := r.Recv(0, 7)
		if err != nil {
			return err
		}
		if string(m.Data) != "hello" || m.Source != 0 || m.Tag != 7 || m.Len != 5 {
			return fmt.Errorf("bad message: %+v", m)
		}
		return nil
	})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
}

func TestSendBufferIsCopied(t *testing.T) {
	w := NewWorld(2, Options{})
	buf := []byte("original")
	errs := w.Run(func(r *Rank) error {
		if r.ID() == 0 {
			if err := r.Send(1, 0, buf); err != nil {
				return err
			}
			copy(buf, "CLOBBER!")
			return nil
		}
		time.Sleep(10 * time.Millisecond)
		m, err := r.Recv(0, 0)
		if err != nil {
			return err
		}
		if string(m.Data) != "original" {
			return fmt.Errorf("sender mutation leaked: %q", m.Data)
		}
		return nil
	})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
}

func TestWildcardRecv(t *testing.T) {
	w := NewWorld(3, Options{})
	errs := w.Run(func(r *Rank) error {
		switch r.ID() {
		case 0:
			seen := map[int]bool{}
			for i := 0; i < 2; i++ {
				m, err := r.Recv(AnySource, AnyTag)
				if err != nil {
					return err
				}
				seen[m.Source] = true
			}
			if !seen[1] || !seen[2] {
				return fmt.Errorf("missing sources: %v", seen)
			}
			return nil
		default:
			return r.Send(0, 10+r.ID(), []byte{byte(r.ID())})
		}
	})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
}

func TestTagSelectivity(t *testing.T) {
	w := NewWorld(2, Options{})
	errs := w.Run(func(r *Rank) error {
		if r.ID() == 0 {
			if err := r.Send(1, 1, []byte("first")); err != nil {
				return err
			}
			return r.Send(1, 2, []byte("second"))
		}
		// Receive tag 2 first even though tag 1 arrived earlier.
		m2, err := r.Recv(0, 2)
		if err != nil {
			return err
		}
		m1, err := r.Recv(0, 1)
		if err != nil {
			return err
		}
		if string(m2.Data) != "second" || string(m1.Data) != "first" {
			return fmt.Errorf("tag matching broken: %q %q", m2.Data, m1.Data)
		}
		return nil
	})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
}

// Non-overtaking: messages with the same (source, tag) are received in send
// order, even through wildcard receives.
func TestNonOvertakingProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		w := NewWorld(2, Options{})
		ok := true
		w.Run(func(r *Rank) error {
			if r.ID() == 0 {
				for i := 0; i < n; i++ {
					var b [4]byte
					binary.LittleEndian.PutUint32(b[:], uint32(i))
					if err := r.Send(1, 3, b[:]); err != nil {
						return err
					}
				}
				return nil
			}
			for i := 0; i < n; i++ {
				m, err := r.Recv(AnySource, AnyTag)
				if err != nil {
					return err
				}
				if got := binary.LittleEndian.Uint32(m.Data); got != uint32(i) {
					ok = false
				}
			}
			return nil
		})
		_ = seed
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestRendezvousBlocksUntilReceived(t *testing.T) {
	w := NewWorld(2, Options{EagerLimit: 4})
	sendReturned := make(chan error, 1)
	go func() {
		sendReturned <- w.Rank(0).Send(1, 0, []byte("exceeds-eager-limit"))
	}()
	select {
	case <-sendReturned:
		t.Fatal("rendezvous send returned before any receive")
	case <-time.After(30 * time.Millisecond):
	}
	if _, err := w.Rank(1).Recv(0, 0); err != nil {
		t.Fatalf("recv: %v", err)
	}
	if err := <-sendReturned; err != nil {
		t.Fatalf("send: %v", err)
	}
}

func TestEagerSendDoesNotBlock(t *testing.T) {
	w := NewWorld(2, Options{EagerLimit: 1024})
	done := make(chan error, 1)
	go func() { done <- w.Rank(0).Send(1, 0, []byte("small")) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("send: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("eager send blocked")
	}
	if _, err := w.Rank(1).Recv(0, 0); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeEagerLimitForcesRendezvous(t *testing.T) {
	w := NewWorld(2, Options{EagerLimit: -1})
	done := make(chan struct{})
	go func() {
		w.Rank(0).Send(1, 0, []byte{1})
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("1-byte send completed without receiver under forced rendezvous")
	case <-time.After(30 * time.Millisecond):
	}
	if _, err := w.Rank(1).Recv(0, 0); err != nil {
		t.Fatal(err)
	}
	<-done
}

func TestAbortUnblocksEverything(t *testing.T) {
	w := NewWorld(3, Options{})
	var wg sync.WaitGroup
	errs := make([]error, 3)
	wg.Add(3)
	go func() { defer wg.Done(); _, errs[0] = w.Rank(0).Recv(1, 0) }()
	go func() { defer wg.Done(); _, errs[1] = w.Rank(1).Probe(0, 5) }()
	go func() { defer wg.Done(); errs[2] = w.Rank(2).Barrier() }()
	time.Sleep(20 * time.Millisecond)
	w.Rank(0).Abort(42)
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, ErrAborted) {
			t.Errorf("op %d: err = %v, want ErrAborted", i, err)
		}
	}
	if !w.Aborted() || w.AbortCode() != 42 {
		t.Fatalf("Aborted=%v code=%d, want true/42", w.Aborted(), w.AbortCode())
	}
}

func TestOpsAfterAbortFail(t *testing.T) {
	w := NewWorld(2, Options{})
	w.Rank(0).Abort(1)
	if err := w.Rank(0).Send(1, 0, nil); !errors.Is(err, ErrAborted) {
		t.Fatalf("Send after abort: %v", err)
	}
	if _, err := w.Rank(1).Recv(0, 0); !errors.Is(err, ErrAborted) {
		t.Fatalf("Recv after abort: %v", err)
	}
	if _, _, err := w.Rank(1).Iprobe(0, 0); !errors.Is(err, ErrAborted) {
		t.Fatalf("Iprobe after abort: %v", err)
	}
}

func TestSendValidation(t *testing.T) {
	w := NewWorld(2, Options{})
	r := w.Rank(0)
	if err := r.Send(9, 0, nil); err == nil {
		t.Error("send to out-of-range rank succeeded")
	}
	if err := r.Send(1, -3, nil); err == nil {
		t.Error("send with negative tag succeeded")
	}
	if err := r.SendCtx(99, 1, 0, nil); err == nil {
		t.Error("send in invalid context succeeded")
	}
	if _, err := r.Recv(17, 0); err == nil {
		t.Error("recv from out-of-range rank succeeded")
	}
}

func TestIprobeAndProbe(t *testing.T) {
	w := NewWorld(2, Options{})
	r1 := w.Rank(1)
	if _, ok, err := r1.Iprobe(AnySource, AnyTag); err != nil || ok {
		t.Fatalf("Iprobe on empty box: ok=%v err=%v", ok, err)
	}
	if err := w.Rank(0).Send(1, 9, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	st, err := r1.Probe(0, 9)
	if err != nil {
		t.Fatal(err)
	}
	if st.Len != 3 || st.Tag != 9 || st.Source != 0 {
		t.Fatalf("probe status %+v", st)
	}
	// Probe must not consume.
	if _, ok, _ := r1.Iprobe(0, 9); !ok {
		t.Fatal("probe consumed the message")
	}
	if _, err := r1.Recv(0, 9); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := r1.Iprobe(0, 9); ok {
		t.Fatal("message still present after recv")
	}
}

func TestContextsDoNotCross(t *testing.T) {
	w := NewWorld(2, Options{})
	if err := w.Rank(0).SendCtx(CtxColl, 1, 0, []byte("coll")); err != nil {
		t.Fatal(err)
	}
	// A user-context wildcard receive must not see collective traffic.
	if _, ok, _ := w.Rank(1).Iprobe(AnySource, AnyTag); ok {
		t.Fatal("user Iprobe matched collective-context message")
	}
	m, err := w.Rank(1).RecvCtx(CtxColl, 0, 0)
	if err != nil || string(m.Data) != "coll" {
		t.Fatalf("RecvCtx: %v %q", err, m.Data)
	}
}

func TestBarrierSynchronises(t *testing.T) {
	const n = 8
	w := NewWorld(n, Options{})
	var before, after int32
	var mu sync.Mutex
	errs := w.Run(func(r *Rank) error {
		mu.Lock()
		before++
		mu.Unlock()
		if err := r.Barrier(); err != nil {
			return err
		}
		mu.Lock()
		if before != n {
			mu.Unlock()
			return fmt.Errorf("rank %d passed barrier with only %d arrivals", r.ID(), before)
		}
		after++
		mu.Unlock()
		return nil
	})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
	if after != n {
		t.Fatalf("after = %d, want %d", after, n)
	}
}

func TestBarrierReusable(t *testing.T) {
	w := NewWorld(4, Options{})
	errs := w.Run(func(r *Rank) error {
		for i := 0; i < 10; i++ {
			if err := r.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
}

func TestWtimeUsesPerRankClocks(t *testing.T) {
	base := clock.NewManual(100)
	w := NewWorld(2, Options{
		Clocks: []clock.Source{base, clock.NewSkewed(base, 5, 0, 0)},
	})
	if got := w.Rank(0).Wtime(); got != 100 {
		t.Fatalf("rank 0 Wtime = %v", got)
	}
	if got := w.Rank(1).Wtime(); got != 105 {
		t.Fatalf("rank 1 Wtime = %v", got)
	}
}

func TestBcast(t *testing.T) {
	w := NewWorld(4, Options{})
	payload := []byte("broadcast-me")
	errs := w.Run(func(r *Rank) error {
		var in []byte
		if r.ID() == 1 {
			in = payload
		}
		out, err := r.Bcast(1, in)
		if err != nil {
			return err
		}
		if !bytes.Equal(out, payload) {
			return fmt.Errorf("rank %d got %q", r.ID(), out)
		}
		return nil
	})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
}

func TestGatherScatter(t *testing.T) {
	w := NewWorld(3, Options{})
	errs := w.Run(func(r *Rank) error {
		mine := []byte{byte(r.ID() * 10)}
		gathered, err := r.Gather(0, mine)
		if err != nil {
			return err
		}
		if r.ID() == 0 {
			for i, g := range gathered {
				if len(g) != 1 || g[0] != byte(i*10) {
					return fmt.Errorf("gather[%d] = %v", i, g)
				}
			}
		} else if gathered != nil {
			return fmt.Errorf("non-root got gather result")
		}

		var parts [][]byte
		if r.ID() == 0 {
			parts = [][]byte{{0}, {1}, {2}}
		}
		part, err := r.Scatter(0, parts)
		if err != nil {
			return err
		}
		if len(part) != 1 || part[0] != byte(r.ID()) {
			return fmt.Errorf("scatter part = %v", part)
		}
		return nil
	})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
}

func TestScatterWrongPartCount(t *testing.T) {
	w := NewWorld(1, Options{})
	if _, err := w.Rank(0).Scatter(0, [][]byte{{1}, {2}}); err == nil {
		t.Fatal("Scatter with wrong part count succeeded")
	}
}

func TestReduceSum(t *testing.T) {
	w := NewWorld(5, Options{})
	sumOp := func(a, b []byte) []byte {
		va := binary.LittleEndian.Uint64(a)
		vb := binary.LittleEndian.Uint64(b)
		var out [8]byte
		binary.LittleEndian.PutUint64(out[:], va+vb)
		return out[:]
	}
	errs := w.Run(func(r *Rank) error {
		var in [8]byte
		binary.LittleEndian.PutUint64(in[:], uint64(r.ID()+1))
		out, err := r.Reduce(0, in[:], sumOp)
		if err != nil {
			return err
		}
		if r.ID() == 0 {
			if got := binary.LittleEndian.Uint64(out); got != 15 {
				return fmt.Errorf("reduce = %d, want 15", got)
			}
		}
		return nil
	})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
}

func TestReduceNilOp(t *testing.T) {
	w := NewWorld(1, Options{})
	if _, err := w.Rank(0).Reduce(0, nil, nil); err == nil {
		t.Fatal("Reduce with nil op succeeded")
	}
}

// Stress: random all-to-all traffic completes and every payload survives
// intact.
func TestRandomTrafficIntegrity(t *testing.T) {
	const n = 6
	const msgsPerRank = 40
	w := NewWorld(n, Options{EagerLimit: 128})
	var mu sync.Mutex
	received := map[string]int{}
	errs := w.Run(func(r *Rank) error {
		rng := rand.New(rand.NewSource(int64(r.ID()) + 1))
		done := make(chan error, 1)
		go func() {
			for i := 0; i < msgsPerRank*(n-1); i++ {
				m, err := r.Recv(AnySource, AnyTag)
				if err != nil {
					done <- err
					return
				}
				mu.Lock()
				received[fmt.Sprintf("%d->%d:%s", m.Source, r.ID(), m.Data)]++
				mu.Unlock()
			}
			done <- nil
		}()
		for i := 0; i < msgsPerRank; i++ {
			for dst := 0; dst < n; dst++ {
				if dst == r.ID() {
					continue
				}
				size := rng.Intn(300)
				payload := fmt.Sprintf("m%d-%d", i, size)
				if err := r.Send(dst, i, []byte(payload)); err != nil {
					return err
				}
			}
		}
		return <-done
	})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
	want := n * (n - 1) * msgsPerRank
	total := 0
	for _, c := range received {
		total += c
	}
	if total != want {
		t.Fatalf("received %d messages, want %d", total, want)
	}
}

func TestTrafficCounters(t *testing.T) {
	w := NewWorld(2, Options{})
	errs := w.Run(func(r *Rank) error {
		if r.ID() == 0 {
			if err := r.Send(1, 1, []byte("hello")); err != nil {
				return err
			}
			if err := r.Send(1, 2, []byte("world!!")); err != nil {
				return err
			}
			// Collective and service traffic must not count.
			if err := r.SendCtx(CtxSvc, 1, 0, []byte("svc")); err != nil {
				return err
			}
			return nil
		}
		for i := 0; i < 2; i++ {
			if _, err := r.Recv(0, AnyTag); err != nil {
				return err
			}
		}
		if _, err := r.RecvCtx(CtxSvc, 0, 0); err != nil {
			return err
		}
		return nil
	})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
	t0 := w.Traffic(0)
	t1 := w.Traffic(1)
	if t0.Sent != 2 || t0.SentBytes != 12 || t0.Received != 0 {
		t.Fatalf("rank 0 traffic %+v", t0)
	}
	if t1.Received != 2 || t1.RecvBytes != 12 || t1.Sent != 0 {
		t.Fatalf("rank 1 traffic %+v", t1)
	}
	total := w.TotalTraffic()
	if total.Sent != 2 || total.Received != 2 || total.SentBytes != 12 {
		t.Fatalf("total traffic %+v", total)
	}
}
