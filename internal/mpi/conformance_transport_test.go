package mpi

// Cross-transport conformance: the same randomized seeded plan the
// in-process suite replays, with the sender ranks spawned as separate OS
// processes joined over the socket (or TCP) transport. The parent test
// process hosts rank 0 and runs the full reference matcher; each child is
// this test binary re-invoked on TestConformanceTransportChild, which
// rebuilds its send plan from nothing but the seed handed down in the
// environment.

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"

	"repro/internal/stats"
)

const confSeedEnv = "PILOT_MPI_CONF_SEED"

func TestConformanceSocketTransport(t *testing.T) {
	runTransportConformance(t, TransportSocket, 3)
}

func TestConformanceTCPTransport(t *testing.T) {
	runTransportConformance(t, TransportTCP, 4)
}

func runTransportConformance(t *testing.T, transport string, seed int64) {
	p := buildConfPlan(seed, 3, 3, 50)
	n := p.size()
	mx := stats.New(n)
	mx.SetChannels(p.numTags)
	w, err := Start(n, Options{
		Metrics:      mx,
		Transport:    transport,
		SpawnCommand: []string{os.Args[0], "-test.run=^TestConformanceTransportChild$"},
		SpawnEnv:     []string{confSeedEnv + "=" + strconv.FormatInt(seed, 10)},
	})
	if err != nil {
		t.Fatalf("Start(%s): %v", transport, err)
	}
	if got := w.LocalRank(); got != 0 {
		t.Fatalf("orchestrator LocalRank = %d, want 0", got)
	}

	var mu sync.Mutex
	var failures []string
	fail := func(format string, args ...any) {
		mu.Lock()
		failures = append(failures, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	errs := w.Run(func(r *Rank) error {
		return confReceive(r, p, seed, &mu, fail)
	})
	if errs[0] != nil {
		t.Fatalf("rank 0: %v", errs[0])
	}
	for _, f := range failures {
		t.Error(f)
	}
	checkConfDrained(t, p)

	// Clean shutdown reaps the children; their BYE frames have folded the
	// remote send counters into the orchestrator's totals by the time it
	// returns.
	if err := w.Shutdown(); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if tr := w.Traffic(0); tr.Received != int64(p.totalMsgs) || tr.RecvBytes != p.totalBytes {
		t.Errorf("Traffic(0) = %+v, want %d msgs / %d bytes received", tr, p.totalMsgs, p.totalBytes)
	}
	tot := w.TotalTraffic()
	if tot.Sent != int64(p.totalMsgs) || tot.SentBytes != p.totalBytes {
		t.Errorf("TotalTraffic = %+v, want %d msgs / %d bytes sent", tot, p.totalMsgs, p.totalBytes)
	}
	// Every remote message crossed the wire at least once.
	if frames := mx.Total(stats.CtrWireFrames); frames < int64(p.totalMsgs) {
		t.Errorf("wire_frames = %d, want >= %d for a multi-process run", frames, p.totalMsgs)
	}
}

// TestConformanceTransportChild is the spawned half of the transport
// conformance runs: skipped under a normal `go test`, it becomes one
// sender rank when launched with the PILOT_MPI_* join environment.
func TestConformanceTransportChild(t *testing.T) {
	if !Spawned() {
		t.Skip("not a spawned rank")
	}
	seed, err := strconv.ParseInt(os.Getenv(confSeedEnv), 10, 64)
	if err != nil {
		t.Fatalf("bad %s: %v", confSeedEnv, err)
	}
	p := buildConfPlan(seed, 3, 3, 50)
	w, err := Start(p.size(), Options{Transport: SpawnedTransport()})
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	local := w.LocalRank()
	errs := w.Run(func(r *Rank) error { return confSend(r, p) })
	if errs[local] != nil {
		t.Fatalf("rank %d: %v", local, errs[local])
	}
	if err := w.Shutdown(); err != nil {
		t.Fatalf("rank %d shutdown: %v", local, err)
	}
}
