package lab2

import (
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/vis"
)

func cfgFor(t *testing.T, services string) Config {
	t.Helper()
	return Config{
		W: 5, NUM: 10000, Seed: 1,
		Core: core.Config{
			Services:     services,
			CheckLevel:   3,
			JumpshotPath: filepath.Join(t.TempDir(), "lab2.clog2"),
			ArrowSpread:  -1,
		},
	}
}

func TestLab2Correct(t *testing.T) {
	res, err := Run(cfgFor(t, ""))
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != res.Expected {
		t.Fatalf("total %d != expected %d", res.Total, res.Expected)
	}
	if len(res.Subtotals) != 5 {
		t.Fatalf("subtotals %v", res.Subtotals)
	}
}

func TestLab2CaretFormEquivalent(t *testing.T) {
	plain, err := Run(cfgFor(t, ""))
	if err != nil {
		t.Fatal(err)
	}
	caret := cfgFor(t, "")
	caret.UseCaret = true
	withCaret, err := Run(caret)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Total != withCaret.Total {
		t.Fatalf("caret form changed the answer: %d vs %d", withCaret.Total, plain.Total)
	}
}

func TestLab2UnevenDivision(t *testing.T) {
	cfg := cfgFor(t, "")
	cfg.W = 3
	cfg.NUM = 10001 // NUM % W != 0: last worker gets the remainder
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != res.Expected {
		t.Fatalf("uneven split broke the sum")
	}
}

// Fig. 3's structure: with W=5, the visual log has 6 timelines, 15
// arrows, and per-worker red/red/green call sequences.
func TestLab2VisualLogMatchesFig3(t *testing.T) {
	cfg := cfgFor(t, "j")
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	f, rep, err := vis.ConvertFile(cfg.Core.JumpshotPath, vis.ConvertOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.UnmatchedSends+rep.UnmatchedRecvs+rep.NestingErrors != 0 {
		t.Fatalf("conversion not clean: %+v", rep)
	}
	legend := vis.Legend(f, f.Start, f.End)
	byName := map[string]vis.LegendEntry{}
	for _, e := range legend {
		byName[e.Name] = e
	}
	if byName["Compute"].Count != 6 {
		t.Errorf("timelines = %d, want 6", byName["Compute"].Count)
	}
	if byName["PI_Read"].Count != 15 || byName["PI_Write"].Count != 15 {
		t.Errorf("reads/writes = %d/%d, want 15/15",
			byName["PI_Read"].Count, byName["PI_Write"].Count)
	}
	arrows := vis.Search(f, vis.SearchOptions{Name: "arrow", Rank: -1})
	if len(arrows) != 15 {
		t.Errorf("arrows = %d, want 15", len(arrows))
	}
	// Each worker's two reads precede its write (red, red, green).
	for w := 1; w <= 5; w++ {
		hits := vis.Search(f, vis.SearchOptions{Rank: w})
		var seq []string
		for _, h := range hits {
			if h.Name == "PI_Read" || h.Name == "PI_Write" {
				seq = append(seq, h.Name)
			}
		}
		want := []string{"PI_Read", "PI_Read", "PI_Write"}
		if len(seq) != 3 {
			t.Fatalf("worker %d call sequence %v", w, seq)
		}
		for i := range want {
			if seq[i] != want[i] {
				t.Fatalf("worker %d sequence %v, want %v", w, seq, want)
			}
		}
	}
}

// The footnote-3 form must be "accurately reflected in the visual log":
// one read state per worker but still multiple wire messages overall.
func TestLab2CaretVisualLog(t *testing.T) {
	cfg := cfgFor(t, "j")
	cfg.UseCaret = true
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	f, _, err := vis.ConvertFile(cfg.Core.JumpshotPath, vis.ConvertOptions{})
	if err != nil {
		t.Fatal(err)
	}
	legend := vis.Legend(f, f.Start, f.End)
	for _, e := range legend {
		if e.Name == "PI_Read" && e.Count != 10 { // 1 per worker + 5 on main
			t.Errorf("caret-form PI_Read count = %d, want 10", e.Count)
		}
	}
}
