// Package lab2 is the paper's Fig. 3 hands-on exercise as a library: W
// workers each receive a work-allocation size and a data array over a
// channel, sum their share in a compute loop, and report the subtotal
// back to PI_MAIN, which prints the grand total. It is the program the
// course uses to "show students a graphical representation of exactly
// what these simple codes are doing".
package lab2

import (
	"fmt"
	"time"

	"repro/internal/core"
)

// Config sizes the exercise. The paper's source uses W=5 fixed workers
// and NUM=10000 array elements.
type Config struct {
	// W is the number of workers (default 5).
	W int
	// NUM is the data array length (default 10000).
	NUM int
	// Seed varies the random numbers.
	Seed int64
	// UseCaret switches the workers to the V2.1 single-call "%^d" form
	// described in the paper's footnote 3, replacing the two PI_Reads.
	UseCaret bool
	// Core carries Pilot options; NumProcs is computed from W.
	Core core.Config
}

// Result reports one run.
type Result struct {
	// Subtotals holds each worker's reported sum, in worker order.
	Subtotals []int
	// Total is the grand total.
	Total int
	// Expected is the directly computed sum for verification.
	Expected int
	// Elapsed excludes the MPE wrap-up.
	Elapsed time.Duration
	// Runtime exposes the finished Pilot runtime.
	Runtime *core.Runtime
}

// Run executes lab2.
func Run(cfg Config) (*Result, error) {
	if cfg.W < 1 {
		cfg.W = 5
	}
	if cfg.NUM < cfg.W {
		cfg.NUM = 10000
	}
	cc := cfg.Core
	cc.NumProcs = cfg.W + 1
	if cc.HasService(core.SvcNativeLog) || cc.HasService(core.SvcDeadlock) {
		cc.NumProcs++
	}
	r, err := core.NewRuntime(cc)
	if err != nil {
		return nil, err
	}

	toWorker := make([]*core.Channel, cfg.W)
	result := make([]*core.Channel, cfg.W)

	// The work function from Fig. 3: two reads (size then data), a sum
	// loop, one write. UseCaret collapses the reads into the "%^d" form.
	workerFunc := func(self *core.Self, index int, arg any) int {
		var myshare int
		var buff []int
		if cfg.UseCaret {
			if err := toWorker[index].Read("%^d", &buff); err != nil {
				return 1
			}
			myshare = len(buff)
		} else {
			if err := toWorker[index].Read("%d", &myshare); err != nil {
				return 1
			}
			buff = make([]int, myshare)
			if err := toWorker[index].Read("%*d", myshare, buff); err != nil {
				return 1
			}
		}
		sum := 0
		for i := 0; i < myshare; i++ {
			sum += buff[i]
		}
		if err := result[index].Write("%d", sum); err != nil {
			return 1
		}
		return 0
	}

	for i := 0; i < cfg.W; i++ {
		p, err := r.CreateProcess(workerFunc, i, nil)
		if err != nil {
			return nil, err
		}
		if toWorker[i], err = r.CreateChannel(r.MainProc(), p); err != nil {
			return nil, err
		}
		if result[i], err = r.CreateChannel(p, r.MainProc()); err != nil {
			return nil, err
		}
	}
	if _, err := r.StartAll(); err != nil {
		return nil, err
	}
	start := time.Now()

	// Fill the numbers array with pseudo-random values.
	numbers := make([]int, cfg.NUM)
	s := uint64(cfg.Seed)*2862933555777941757 + 3037000493
	expected := 0
	for i := range numbers {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		numbers[i] = int(s % 1000)
		expected += numbers[i]
	}

	res := &Result{Expected: expected, Runtime: r}
	// A mid-run channel error means the world aborted (PI_Abort, injected
	// crash, or a diagnosed deadlock). Still run StopMain so the workers
	// and service process are joined and the diagnosis — not the bare
	// channel error — is what the caller sees.
	fail := func(err error) (*Result, error) {
		if stopErr := r.StopMain(0); stopErr != nil {
			err = stopErr
		}
		return res, err
	}
	for i := 0; i < cfg.W; i++ {
		portion := cfg.NUM / cfg.W
		if i == cfg.W-1 {
			portion += cfg.NUM % cfg.W
		}
		share := numbers[i*(cfg.NUM/cfg.W) : i*(cfg.NUM/cfg.W)+portion]
		if cfg.UseCaret {
			if err := toWorker[i].Write("%^d", share); err != nil {
				return fail(err)
			}
		} else {
			if err := toWorker[i].Write("%d", portion); err != nil {
				return fail(err)
			}
			if err := toWorker[i].Write("%*d", portion, share); err != nil {
				return fail(err)
			}
		}
	}

	for i := 0; i < cfg.W; i++ {
		var sum int
		if err := result[i].Read("%d", &sum); err != nil {
			return fail(err)
		}
		res.Subtotals = append(res.Subtotals, sum)
		res.Total += sum
	}
	if err := r.StopMain(0); err != nil {
		return nil, err
	}
	res.Elapsed = time.Since(start) - r.WrapUpTime()
	if res.Total != res.Expected {
		return res, fmt.Errorf("lab2: grand total %d != expected %d", res.Total, res.Expected)
	}
	return res, nil
}
