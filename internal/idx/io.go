package idx

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/clog2"
)

// On-disk layout (all integers little-endian):
//
//	magic        10 bytes  "CLOGIDX-01"
//	version      u32
//	sourceSize   i64   ┐ generation stamp of the indexed log
//	sourceMtime  i64   ┘ (UnixNano; 0,0 = unstamped, always stale)
//	numRanks     i32
//	totalRecords i64
//	nblocks      u32, then per block (64 bytes):
//	  offset i64, length i64, rank i32, records i32, defs i32, msgs i32,
//	  tmin f64, tmax f64, rankMin i32, rankMax i32, chanMin i32, chanMax i32
//	nchannels    u32, then per channel (36 bytes):
//	  chan i32, sends i64, recvs i64, sendBytes i64, recvBytes i64
//	netypes      u32, then per etype (12 bytes):
//	  etype i32, count i64
//	crc32        u32 (IEEE, over every preceding byte)

const (
	blockEntrySize = 64
	chanEntrySize  = 36
	etypeEntrySize = 12
	fixedHeadSize  = len(Magic) + 4 + 8 + 8 + 4 + 8
)

// Encode serialises the index. The byte form is deterministic for a
// given Index (tables are kept sorted by Builder.Index).
func Encode(ix *Index) []byte {
	return AppendEncode(nil, ix)
}

// AppendEncode is Encode appending to dst — the allocation-free path
// when dst's capacity already fits (mpe's pooled emission reuses one
// buffer across runs).
func AppendEncode(dst []byte, ix *Index) []byte {
	need := fixedHeadSize + 4 + len(ix.Blocks)*blockEntrySize +
		4 + len(ix.Channels)*chanEntrySize + 4 + len(ix.Etypes)*etypeEntrySize + 4
	if cap(dst)-len(dst) < need {
		grown := make([]byte, len(dst), len(dst)+need)
		copy(grown, dst)
		dst = grown
	}
	base := len(dst)
	dst = append(dst, Magic...)
	dst = le32(dst, Version)
	dst = le64(dst, uint64(ix.SourceSize))
	dst = le64(dst, uint64(ix.SourceModNanos))
	dst = le32(dst, uint32(int32(ix.NumRanks)))
	dst = le64(dst, uint64(ix.TotalRecords))
	dst = le32(dst, uint32(len(ix.Blocks)))
	for i := range ix.Blocks {
		b := &ix.Blocks[i]
		dst = le64(dst, uint64(b.Offset))
		dst = le64(dst, uint64(b.Length))
		dst = le32(dst, uint32(b.Rank))
		dst = le32(dst, uint32(b.Records))
		dst = le32(dst, uint32(b.Defs))
		dst = le32(dst, uint32(b.Msgs))
		dst = le64(dst, math.Float64bits(b.TMin))
		dst = le64(dst, math.Float64bits(b.TMax))
		dst = le32(dst, uint32(b.RankMin))
		dst = le32(dst, uint32(b.RankMax))
		dst = le32(dst, uint32(b.ChanMin))
		dst = le32(dst, uint32(b.ChanMax))
	}
	dst = le32(dst, uint32(len(ix.Channels)))
	for i := range ix.Channels {
		c := &ix.Channels[i]
		dst = le32(dst, uint32(c.Chan))
		dst = le64(dst, uint64(c.Sends))
		dst = le64(dst, uint64(c.Recvs))
		dst = le64(dst, uint64(c.SendBytes))
		dst = le64(dst, uint64(c.RecvBytes))
	}
	dst = le32(dst, uint32(len(ix.Etypes)))
	for i := range ix.Etypes {
		e := &ix.Etypes[i]
		dst = le32(dst, uint32(e.Etype))
		dst = le64(dst, uint64(e.Count))
	}
	dst = le32(dst, crc32.ChecksumIEEE(dst[base:]))
	return dst
}

func le32(dst []byte, v uint32) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func le64(dst []byte, v uint64) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// Decode parses and validates a sidecar. Every failure — short data, bad
// magic or version, CRC mismatch, implausible geometry — wraps
// ErrCorrupt, so consumers can treat "fails validation" as one
// degradation case.
func Decode(data []byte) (*Index, error) {
	if len(data) < fixedHeadSize+3*4+4 {
		return nil, fmt.Errorf("%w: %d bytes is shorter than any index", ErrCorrupt, len(data))
	}
	if string(data[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, data[:len(Magic)])
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(tail); got != want {
		return nil, fmt.Errorf("%w: CRC mismatch (%08x != %08x)", ErrCorrupt, got, want)
	}
	c := cursor{data: body, pos: len(Magic)}
	if v := c.u32(); v != Version {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, v)
	}
	ix := &Index{
		SourceSize:     int64(c.u64()),
		SourceModNanos: int64(c.u64()),
		NumRanks:       int(int32(c.u32())),
		TotalRecords:   int64(c.u64()),
	}
	if ix.NumRanks < 1 || ix.NumRanks > 1<<20 {
		return nil, fmt.Errorf("%w: implausible rank count %d", ErrCorrupt, ix.NumRanks)
	}
	nblocks := int(c.u32())
	if c.err != nil || nblocks < 0 || !c.fits(nblocks, blockEntrySize) {
		return nil, fmt.Errorf("%w: block table overruns the file", ErrCorrupt)
	}
	ix.Blocks = make([]BlockMeta, nblocks)
	var sum int64
	for i := range ix.Blocks {
		b := &ix.Blocks[i]
		b.Offset = int64(c.u64())
		b.Length = int64(c.u64())
		b.Rank = int32(c.u32())
		b.Records = int32(c.u32())
		b.Defs = int32(c.u32())
		b.Msgs = int32(c.u32())
		b.TMin = math.Float64frombits(c.u64())
		b.TMax = math.Float64frombits(c.u64())
		b.RankMin = int32(c.u32())
		b.RankMax = int32(c.u32())
		b.ChanMin = int32(c.u32())
		b.ChanMax = int32(c.u32())
		if b.Offset < int64(clog2.HeaderSize) || b.Length <= 0 {
			return nil, fmt.Errorf("%w: block %d spans [%d,+%d)", ErrCorrupt, i, b.Offset, b.Length)
		}
		if i > 0 {
			prev := &ix.Blocks[i-1]
			if b.Offset < prev.Offset+prev.Length {
				return nil, fmt.Errorf("%w: block %d overlaps its predecessor", ErrCorrupt, i)
			}
		}
		if b.Records < 0 || b.Defs < 0 || b.Msgs < 0 ||
			b.Defs > b.Records || b.Msgs > b.Records-b.Defs {
			return nil, fmt.Errorf("%w: block %d counts are inconsistent", ErrCorrupt, i)
		}
		sum += int64(b.Records)
	}
	if sum != ix.TotalRecords {
		return nil, fmt.Errorf("%w: block records sum to %d, header says %d", ErrCorrupt, sum, ix.TotalRecords)
	}
	nchans := int(c.u32())
	if c.err != nil || nchans < 0 || !c.fits(nchans, chanEntrySize) {
		return nil, fmt.Errorf("%w: channel table overruns the file", ErrCorrupt)
	}
	ix.Channels = make([]ChannelCount, nchans)
	for i := range ix.Channels {
		cc := &ix.Channels[i]
		cc.Chan = int32(c.u32())
		cc.Sends = int64(c.u64())
		cc.Recvs = int64(c.u64())
		cc.SendBytes = int64(c.u64())
		cc.RecvBytes = int64(c.u64())
	}
	netypes := int(c.u32())
	if c.err != nil || netypes < 0 || !c.fits(netypes, etypeEntrySize) {
		return nil, fmt.Errorf("%w: etype table overruns the file", ErrCorrupt)
	}
	ix.Etypes = make([]EtypeCount, netypes)
	for i := range ix.Etypes {
		ix.Etypes[i].Etype = int32(c.u32())
		ix.Etypes[i].Count = int64(c.u64())
	}
	if c.err != nil {
		return nil, fmt.Errorf("%w: truncated", ErrCorrupt)
	}
	if c.pos != len(body) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(body)-c.pos)
	}
	return ix, nil
}

// cursor is a bounds-checked little-endian reader over a byte slice.
type cursor struct {
	data []byte
	pos  int
	err  error
}

func (c *cursor) fits(n, size int) bool {
	return c.err == nil && n <= (len(c.data)-c.pos)/size
}

func (c *cursor) u32() uint32 {
	if c.err != nil || c.pos+4 > len(c.data) {
		c.err = io.ErrUnexpectedEOF
		return 0
	}
	v := binary.LittleEndian.Uint32(c.data[c.pos:])
	c.pos += 4
	return v
}

func (c *cursor) u64() uint64 {
	if c.err != nil || c.pos+8 > len(c.data) {
		c.err = io.ErrUnexpectedEOF
		return 0
	}
	v := binary.LittleEndian.Uint64(c.data[c.pos:])
	c.pos += 8
	return v
}

// maxSidecarSize caps how much of a claimed sidecar Read will buffer: a
// hostile file cannot force an unbounded allocation. 64 MiB of entries
// indexes roughly a terabyte of log at the merge's block granularity.
const maxSidecarSize = 64 << 20

// Read parses a sidecar from r.
func Read(r io.Reader) (*Index, error) {
	data, err := io.ReadAll(io.LimitReader(r, maxSidecarSize+1))
	if err != nil {
		return nil, err
	}
	if len(data) > maxSidecarSize {
		return nil, fmt.Errorf("%w: sidecar exceeds %d bytes", ErrCorrupt, maxSidecarSize)
	}
	return Decode(data)
}

// Write serialises ix onto w.
func Write(w io.Writer, ix *Index) error {
	_, err := w.Write(Encode(ix))
	return err
}

// Generation returns the staleness stamp for the file behind info — the
// same size+mtime scheme internal/serve uses for its caches.
func Generation(info os.FileInfo) (size, modNanos int64) {
	return info.Size(), info.ModTime().UnixNano()
}

// WriteFileFor stamps ix with clogPath's current generation and writes
// the sidecar next to it (SidecarPath), via a temp file and rename so a
// crash never leaves a torn sidecar that parses.
func WriteFileFor(clogPath string, ix *Index) error {
	info, err := os.Stat(clogPath)
	if err != nil {
		return err
	}
	ix.SourceSize, ix.SourceModNanos = Generation(info)
	dir := filepath.Dir(clogPath)
	tmp, err := os.CreateTemp(dir, ".idx-*")
	if err != nil {
		return err
	}
	if err := Write(tmp, ix); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), SidecarPath(clogPath)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// Load reads and validates the sidecar for clogPath. Degradation is
// reported through the sentinel errors: ErrNoIndex when no sidecar
// exists, ErrCorrupt when it fails validation, ErrStale when its
// generation stamp no longer matches the log on disk.
func Load(clogPath string) (*Index, error) {
	f, err := os.Open(SidecarPath(clogPath))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w (%s)", ErrNoIndex, SidecarPath(clogPath))
		}
		return nil, err
	}
	defer f.Close()
	ix, err := Read(f)
	if err != nil {
		return nil, err
	}
	info, err := os.Stat(clogPath)
	if err != nil {
		return nil, err
	}
	if size, mod := Generation(info); size != ix.SourceSize || mod != ix.SourceModNanos {
		return nil, fmt.Errorf("%w: log is %d bytes @%d, index was built for %d bytes @%d",
			ErrStale, size, mod, ix.SourceSize, ix.SourceModNanos)
	}
	if n := ix.Blocks; len(n) > 0 {
		if last := n[len(n)-1]; last.Offset+last.Length > ix.SourceSize {
			return nil, fmt.Errorf("%w: block table extends past the log", ErrCorrupt)
		}
	}
	return ix, nil
}

// Status classifies a trace's sidecar for reporting (pilot-serve meta,
// pilot-index info).
type Status int

// Sidecar states.
const (
	StatusNone Status = iota
	StatusOK
	StatusStale
	StatusCorrupt
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusNone:
		return "none"
	case StatusOK:
		return "ok"
	case StatusStale:
		return "stale"
	case StatusCorrupt:
		return "corrupt"
	}
	return "unknown"
}

// ProbeHeader classifies clogPath's sidecar from its fixed header alone
// — magic, version, generation stamp — without reading or checksumming
// the body: the stat-cheap form directory listings use. Body corruption
// is invisible to it; Load still validates fully before any consumer
// trusts the index.
func ProbeHeader(clogPath string) Status {
	f, err := os.Open(SidecarPath(clogPath))
	if err != nil {
		return StatusNone
	}
	defer f.Close()
	var head [fixedHeadSize]byte
	if _, err := io.ReadFull(f, head[:]); err != nil {
		return StatusCorrupt
	}
	if string(head[:len(Magic)]) != Magic {
		return StatusCorrupt
	}
	c := cursor{data: head[:], pos: len(Magic)}
	if v := c.u32(); v != Version {
		return StatusCorrupt
	}
	srcSize, srcMod := int64(c.u64()), int64(c.u64())
	info, err := os.Stat(clogPath)
	if err != nil {
		return StatusStale
	}
	if size, mod := Generation(info); size != srcSize || mod != srcMod {
		return StatusStale
	}
	return StatusOK
}

// Probe reports the sidecar state for clogPath without returning the
// index.
func Probe(clogPath string) Status {
	_, err := Load(clogPath)
	switch {
	case err == nil:
		return StatusOK
	case errors.Is(err, ErrNoIndex):
		return StatusNone
	case errors.Is(err, ErrStale):
		return StatusStale
	default:
		return StatusCorrupt
	}
}

// BuildFile rebuilds an index by scanning the whole CLOG-2 file at path
// — the fallback producer for logs that predate inline emission.
func BuildFile(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br, err := clog2.NewBlockReader(f)
	if err != nil {
		return nil, err
	}
	return BuildReader(br)
}

// ScanFile visits the selected blocks of the log at path in file order,
// seeking over everything in between; consecutive selected blocks are
// read without a seek. Each visited block is checked against its index
// entry (rank and record count) — a mismatch means the index lies about
// the file and surfaces as an ErrCorrupt-wrapped error, so callers can
// degrade to the full scan. Block record slices are reused across
// callbacks: fn must not retain them.
func ScanFile(path string, ix *Index, sel []int, fn func(clog2.Block) error) error {
	if len(sel) == 0 {
		return nil
	}
	for _, i := range sel {
		if i < 0 || i >= len(ix.Blocks) {
			return fmt.Errorf("idx: block selection %d out of range", i)
		}
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	br, err := clog2.NewBlockReaderAt(f, ix.Blocks[sel[0]].Offset, ix.NumRanks)
	if err != nil {
		return err
	}
	pos := ix.Blocks[sel[0]].Offset
	var buf []clog2.Record
	for _, i := range sel {
		bm := &ix.Blocks[i]
		if bm.Offset != pos {
			if err := br.SeekTo(bm.Offset); err != nil {
				return err
			}
		}
		blk, err := br.NextReuse(buf)
		if err != nil {
			return fmt.Errorf("%w: block %d at offset %d: %v", ErrCorrupt, i, bm.Offset, err)
		}
		if blk.Rank != bm.Rank || int32(len(blk.Records)) != bm.Records {
			return fmt.Errorf("%w: block %d at offset %d does not match its index entry", ErrCorrupt, i, bm.Offset)
		}
		buf = blk.Records[:0]
		if err := fn(blk); err != nil {
			return err
		}
		pos = bm.Offset + bm.Length
	}
	return nil
}

func sortChannels(cs []ChannelCount) {
	sort.Slice(cs, func(i, j int) bool { return cs[i].Chan < cs[j].Chan })
}

func sortEtypes(es []EtypeCount) {
	sort.Slice(es, func(i, j int) bool { return es[i].Etype < es[j].Etype })
}
