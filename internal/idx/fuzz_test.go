package idx

import (
	"bytes"
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/clog2"
)

// fuzzSeedIndex builds a small real index to seed the corpus with a
// structurally valid encoding (mutations of which probe every
// validation branch, not just the magic check).
func fuzzSeedIndex(f *testing.F) []byte {
	f.Helper()
	path := filepath.Join(f.TempDir(), "seed.clog2")
	fh, err := os.Create(path)
	if err != nil {
		f.Fatal(err)
	}
	w, err := clog2.NewWriter(fh, 2)
	if err != nil {
		f.Fatal(err)
	}
	for rank := int32(0); rank < 2; rank++ {
		recs := []clog2.Record{
			{Type: clog2.RecStateDef, ID: 1, Aux1: 2, Aux2: 3, Name: "A", Color: "red"},
			{Type: clog2.RecBareEvt, Rank: rank, Time: float64(rank) + 0.5, ID: 2},
			{Type: clog2.RecMsgEvt, Rank: rank, Time: float64(rank) + 0.7,
				Dir: clog2.DirSend, Aux1: 1 - rank, Aux2: 5, Aux3: 64},
		}
		if err := w.WriteBlock(rank, recs); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	fh.Close()
	ix, err := BuildFile(path)
	if err != nil {
		f.Fatal(err)
	}
	ix.SourceSize, ix.SourceModNanos = 1000, 2000
	return Encode(ix)
}

// FuzzReadIndex asserts the sidecar decoder never panics or
// over-allocates on hostile bytes, and that anything it does accept
// round-trips: Decode(Encode(Decode(data))) is identity.
func FuzzReadIndex(f *testing.F) {
	valid := fuzzSeedIndex(f)
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte(Magic))
	// A few targeted mutants so the fuzzer starts at the deep branches.
	flip := append([]byte(nil), valid...)
	flip[len(flip)/2] ^= 0x40
	f.Add(flip)
	short := append([]byte(nil), valid[:len(valid)-9]...)
	f.Add(short)
	noCRC := append([]byte(nil), valid[:len(valid)-4]...)
	f.Add(noCRC)
	bigCounts := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(bigCounts[len(Magic)+4+8+8:], math.MaxUint32)
	f.Add(bigCounts)

	f.Fuzz(func(t *testing.T, data []byte) {
		ix, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted: the re-encoding must byte-match the input (the format
		// has exactly one encoding per index) and decode to the same index.
		re := Encode(ix)
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted input does not re-encode identically:\n in  %x\n out %x", data, re)
		}
		back, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded index failed to decode: %v", err)
		}
		if len(back.Blocks) != len(ix.Blocks) || back.TotalRecords != ix.TotalRecords {
			t.Fatalf("round trip changed the index: %+v vs %+v", back, ix)
		}
	})
}
