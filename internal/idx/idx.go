// Package idx implements the CLOG-2 index sidecar: a compact ".idx" file
// written next to a raw log that records where every block lives
// (byte offsets), what it contains (record/definition/message counts,
// a time fence of min/max timestamps, rank and channel fences), and the
// whole-file per-channel and per-etype totals. Consumers use it to seek
// straight to the blocks a time/rank/channel query can touch instead of
// streaming the entire multi-gigabyte log — the raw-log analogue of the
// level-of-detail index SLOG-2 keeps on the render side.
//
// The sidecar is strictly an accelerator: every answer computed through
// it must be identical to the full-scan answer, and every consumer
// degrades to the full scan when the sidecar is absent, stale (the
// source file's size/mtime generation no longer matches, the same
// scheme internal/serve uses for its caches), or fails validation.
package idx

import (
	"errors"
	"math"

	"repro/internal/clog2"
)

// Magic begins every sidecar; the trailing digits are the format version.
const Magic = "CLOGIDX-01"

// Version is the encoded format version (also implied by Magic).
const Version = 1

// Degradation sentinels: why a sidecar was not used. Consumers treat all
// three the same way — fall back to the full scan — but report them
// distinctly (pilot-serve meta, pilot-index info).
var (
	// ErrNoIndex: no sidecar file exists next to the log.
	ErrNoIndex = errors.New("idx: no index sidecar")
	// ErrStale: the sidecar's recorded source size/mtime generation does
	// not match the log on disk — the log was rewritten after indexing.
	ErrStale = errors.New("idx: index sidecar is stale")
	// ErrCorrupt: the sidecar failed structural validation (bad magic,
	// version, CRC, or implausible geometry).
	ErrCorrupt = errors.New("idx: index sidecar failed validation")
)

// SidecarPath derives the sidecar name for a CLOG-2 path:
// "run.clog2" → "run.clog2.idx".
func SidecarPath(clogPath string) string { return clogPath + ".idx" }

// BlockMeta describes one block of the source log.
type BlockMeta struct {
	// Offset/Length bracket the block's bytes (header through end-block
	// marker) — the seek target for clog2.NewBlockReaderAt.
	Offset, Length int64
	// Rank is the block header's rank.
	Rank int32
	// Records counts all records in the block; Defs the definition
	// records among them (StateDef/EventDef/ConstDef/SrcLoc — the records
	// a windowed consumer must always process regardless of its time
	// window); Msgs the MsgEvt records.
	Records, Defs, Msgs int32
	// TMin/TMax fence the timestamps of the block's non-definition
	// records (events, messages, timeshifts — everything a time window
	// filters). Valid only when Records > Defs; else TMin > TMax.
	TMin, TMax float64
	// RankMin/RankMax fence the Rank field of non-definition records
	// (normally all equal to Rank, but salvaged logs may interleave).
	RankMin, RankMax int32
	// ChanMin/ChanMax fence the channel (tag) of MsgEvt records.
	// Valid only when Msgs > 0.
	ChanMin, ChanMax int32
}

// ChannelCount is one channel's whole-file message totals.
type ChannelCount struct {
	Chan                 int32
	Sends, Recvs         int64
	SendBytes, RecvBytes int64
}

// EtypeCount is one event type's whole-file occurrence count
// (BareEvt/CargoEvt records by etype).
type EtypeCount struct {
	Etype int32
	Count int64
}

// Index is a decoded sidecar.
type Index struct {
	// NumRanks mirrors the source file header.
	NumRanks int
	// SourceSize/SourceModNanos are the generation stamp of the log the
	// index was built for; Load rejects the sidecar when they no longer
	// match the file on disk.
	SourceSize, SourceModNanos int64
	// TotalRecords sums Blocks[i].Records.
	TotalRecords int64
	Blocks       []BlockMeta
	Channels     []ChannelCount
	Etypes       []EtypeCount
}

// Query selects blocks. The zero Query matches nothing useful — start
// from MatchAll and narrow.
type Query struct {
	// T0/T1 bound the time window (inclusive); non-definition records
	// with Time outside [T0, T1] are out of scope.
	T0, T1 float64
	// Rank restricts to records of one rank; negative means any.
	Rank int32
	// Chan restricts to messages on one channel; negative means any.
	Chan int32
	// IncludeDefs also selects every block containing definition
	// records, whatever its fences say — windowed profiling needs the
	// defs to classify states no matter where the window lands.
	IncludeDefs bool
}

// MatchAll returns the query that selects every block.
func MatchAll() Query {
	return Query{T0: math.Inf(-1), T1: math.Inf(1), Rank: -1, Chan: -1}
}

// Select returns the indices (in file order) of the blocks a scan for q
// must visit: blocks whose fences intersect the query, plus — with
// q.IncludeDefs — every block holding definition records. The selection
// is conservative: a selected block may hold no matching record, but no
// unselected block can.
func (ix *Index) Select(q Query) []int {
	sel := make([]int, 0, len(ix.Blocks))
	for i := range ix.Blocks {
		if ix.blockMatches(&ix.Blocks[i], q) {
			sel = append(sel, i)
		}
	}
	return sel
}

func (ix *Index) blockMatches(b *BlockMeta, q Query) bool {
	if q.IncludeDefs && b.Defs > 0 {
		return true
	}
	// Only definition records left? Nothing a filtered scan wants.
	if b.Records <= b.Defs {
		return false
	}
	if b.TMax < q.T0 || b.TMin > q.T1 {
		return false
	}
	if q.Rank >= 0 && (q.Rank < b.RankMin || q.Rank > b.RankMax) {
		return false
	}
	if q.Chan >= 0 {
		if b.Msgs == 0 || q.Chan < b.ChanMin || q.Chan > b.ChanMax {
			return false
		}
	}
	return true
}

// Matches reports whether one decoded record is in scope for q — the
// record-level filter every consumer applies inside visited blocks, so
// the indexed and full-scan paths agree answer-for-answer. Definition
// records are metadata: they skip the time window (their timestamps mark
// when they were defined, not when anything happened) but still honour
// the rank and channel filters. A consumer that wants definitions must
// therefore select blocks with IncludeDefs set; Select's fences only
// cover non-definition records.
func (q Query) Matches(r *clog2.Record) bool {
	if !isDef(r.Type) && (r.Time < q.T0 || r.Time > q.T1) {
		return false
	}
	if q.Rank >= 0 && r.Rank != q.Rank {
		return false
	}
	if q.Chan >= 0 && (r.Type != clog2.RecMsgEvt || r.Aux2 != q.Chan) {
		return false
	}
	return true
}

// isDef reports whether a record type is a definition — always processed
// by windowed consumers, excluded from the time fences.
func isDef(t clog2.RecType) bool {
	switch t {
	case clog2.RecStateDef, clog2.RecEventDef, clog2.RecConstDef, clog2.RecSrcLoc:
		return true
	}
	return false
}
