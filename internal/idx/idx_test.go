package idx

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/clog2"
)

// writeLog writes a four-rank log with two blocks per rank, defs up
// front, and enough variety (messages on several channels, bare and
// cargo events, a timeshift) to exercise every fence.
func writeLog(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "run.clog2")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := clog2.NewWriter(f, 4)
	if err != nil {
		t.Fatal(err)
	}
	defs := []clog2.Record{
		{Type: clog2.RecStateDef, ID: 1, Aux1: 2, Aux2: 3, Color: "red", Name: "A"},
		{Type: clog2.RecEventDef, ID: 7, Color: "blue", Name: "E"},
		{Type: clog2.RecConstDef, ID: 8, Aux1: 42, Name: "K"},
	}
	for rank := int32(0); rank < 4; rank++ {
		base := float64(rank)
		first := []clog2.Record{
			{Type: clog2.RecBareEvt, Rank: rank, Time: base + 0.1, ID: 2},
			{Type: clog2.RecMsgEvt, Rank: rank, Time: base + 0.2, Dir: clog2.DirSend,
				Aux1: (rank + 1) % 4, Aux2: 10 + rank, Aux3: 100},
			{Type: clog2.RecBareEvt, Rank: rank, Time: base + 0.3, ID: 3},
		}
		if rank == 0 {
			first = append(defs, first...)
		}
		if err := w.WriteBlock(rank, first); err != nil {
			t.Fatal(err)
		}
		second := []clog2.Record{
			{Type: clog2.RecTimeShift, Rank: rank, Time: base + 0.4, Shift: 1e-6},
			{Type: clog2.RecMsgEvt, Rank: rank, Time: base + 0.5, Dir: clog2.DirRecv,
				Aux1: (rank + 3) % 4, Aux2: 10 + (rank+3)%4, Aux3: 100},
			{Type: clog2.RecBareEvt, Rank: rank, Time: base + 0.6, ID: 7},
		}
		if err := w.WriteBlock(rank, second); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func mustBuild(t *testing.T, path string) *Index {
	t.Helper()
	ix, err := BuildFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

// restamp recomputes the CRC trailer after a mutation, so the result
// passes the checksum and exercises the structural validation instead.
func restamp(data []byte) []byte {
	body := data[:len(data)-4]
	binary.LittleEndian.PutUint32(data[len(data)-4:], crc32.ChecksumIEEE(body))
	return data
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	path := writeLog(t)
	ix := mustBuild(t, path)
	ix.SourceSize, ix.SourceModNanos = 12345, 67890
	back, err := Decode(Encode(ix))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ix, back) {
		t.Errorf("round trip changed the index:\n got %+v\nwant %+v", back, ix)
	}
	if ix.NumRanks != 4 || len(ix.Blocks) != 8 {
		t.Errorf("built %d ranks, %d blocks; want 4, 8", ix.NumRanks, len(ix.Blocks))
	}
	if int(ix.TotalRecords) != 3+8*3 {
		t.Errorf("TotalRecords = %d, want %d", ix.TotalRecords, 3+8*3)
	}
}

func TestBuilderCountsAndFences(t *testing.T) {
	path := writeLog(t)
	ix := mustBuild(t, path)
	b0 := ix.Blocks[0]
	if b0.Rank != 0 || b0.Records != 6 || b0.Defs != 3 || b0.Msgs != 1 {
		t.Errorf("rank-0 first block meta = %+v", b0)
	}
	if b0.TMin != 0.1 || b0.TMax != 0.3 {
		t.Errorf("rank-0 time fence = [%v, %v], want [0.1, 0.3] (defs excluded)", b0.TMin, b0.TMax)
	}
	if b0.ChanMin != 10 || b0.ChanMax != 10 {
		t.Errorf("rank-0 chan fence = [%d, %d], want [10, 10]", b0.ChanMin, b0.ChanMax)
	}
	// Channels: rank r sends on 10+r and the peer receives on the same
	// channel, so each of 10..13 carries 1 send + 1 recv of 100 bytes.
	if len(ix.Channels) != 4 {
		t.Fatalf("channels = %+v", ix.Channels)
	}
	for i, c := range ix.Channels {
		want := ChannelCount{Chan: int32(10 + i), Sends: 1, Recvs: 1, SendBytes: 100, RecvBytes: 100}
		if c != want {
			t.Errorf("channel[%d] = %+v, want %+v", i, c, want)
		}
	}
	// Etypes: 2, 3 and 7 each fire once per rank.
	want := []EtypeCount{{2, 4}, {3, 4}, {7, 4}}
	if !reflect.DeepEqual(ix.Etypes, want) {
		t.Errorf("etypes = %+v, want %+v", ix.Etypes, want)
	}
}

// The pooled-builder path: Reset must produce the same index as a fresh
// builder on the same input.
func TestBuilderReset(t *testing.T) {
	path := writeLog(t)
	first := mustBuild(t, path)

	b := NewBuilder(1)
	for round := 0; round < 3; round++ {
		b.Reset(4)
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		br, err := clog2.NewBlockReader(f)
		if err != nil {
			t.Fatal(err)
		}
		var buf []clog2.Record
		for {
			blk, err := br.NextReuse(buf)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			start, end := br.BlockBounds()
			b.AddBlock(blk, start, end)
			buf = blk.Records[:0]
		}
		f.Close()
		if got := b.Index(); !bytes.Equal(Encode(got), Encode(first)) {
			t.Errorf("round %d: reused builder produced a different index:\n got %+v\nwant %+v", round, got, first)
		}
	}
}

// Every filtered answer through the index must equal the full scan, and
// narrow queries must actually prune blocks (the point of the sidecar).
func TestSelectScanEqualsFullScan(t *testing.T) {
	path := writeLog(t)
	ix := mustBuild(t, path)

	// The consumer contract: a scan that wants definitions selects with
	// IncludeDefs; one that does not must also drop them record-wise
	// (Matches alone always passes defs through the time window).
	matches := func(q Query, r *clog2.Record) bool {
		if !q.IncludeDefs && isDef(r.Type) {
			return false
		}
		return q.Matches(r)
	}

	fullScan := func(q Query) []clog2.Record {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		br, err := clog2.NewBlockReader(f)
		if err != nil {
			t.Fatal(err)
		}
		var out []clog2.Record
		for {
			b, err := br.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			for i := range b.Records {
				if matches(q, &b.Records[i]) {
					out = append(out, b.Records[i])
				}
			}
		}
		return out
	}

	narrow := func(mod func(*Query)) Query {
		q := MatchAll()
		q.IncludeDefs = true
		mod(&q)
		return q
	}
	cases := []struct {
		name      string
		q         Query
		wantPrune bool
	}{
		{"all", narrow(func(q *Query) {}), false},
		{"window", narrow(func(q *Query) { q.T0, q.T1 = 1.0, 1.9 }), true},
		{"empty-window", narrow(func(q *Query) { q.T0, q.T1 = 99, 100 }), true},
		{"rank", narrow(func(q *Query) { q.Rank = 2 }), true},
		{"chan", narrow(func(q *Query) { q.Chan = 11 }), true},
		{"rank+window", narrow(func(q *Query) { q.Rank = 3; q.T0, q.T1 = 3.0, 3.35 }), true},
		{"no-defs-window", func() Query {
			q := MatchAll()
			q.T0, q.T1 = 2.0, 2.9
			return q
		}(), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sel := ix.Select(tc.q)
			if tc.wantPrune && len(sel) >= len(ix.Blocks) {
				t.Errorf("query selected all %d blocks; fences pruned nothing", len(sel))
			}
			var got []clog2.Record
			err := ScanFile(path, ix, sel, func(b clog2.Block) error {
				for i := range b.Records {
					if matches(tc.q, &b.Records[i]) {
						got = append(got, b.Records[i])
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			want := fullScan(tc.q)
			if len(got) != len(want) {
				t.Fatalf("indexed scan found %d record(s), full scan %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Errorf("record %d differs: indexed %+v, scanned %+v", i, got[i], want[i])
				}
			}
		})
	}
}

func TestQueryMatchesDefs(t *testing.T) {
	q := Query{T0: 5, T1: 6, Rank: 1, Chan: -1}
	def := clog2.Record{Type: clog2.RecStateDef, Rank: 1, Time: 0}
	if !q.Matches(&def) {
		t.Error("a definition must pass the time window")
	}
	def.Rank = 0
	if q.Matches(&def) {
		t.Error("a definition must still honour the rank filter")
	}
	evt := clog2.Record{Type: clog2.RecBareEvt, Rank: 1, Time: 0}
	if q.Matches(&evt) {
		t.Error("an out-of-window event matched")
	}
	q.Chan = 3
	msg := clog2.Record{Type: clog2.RecMsgEvt, Rank: 1, Time: 5.5, Aux2: 3}
	if !q.Matches(&msg) {
		t.Error("an in-window message on the channel did not match")
	}
	msg.Aux2 = 4
	if q.Matches(&msg) {
		t.Error("a message on another channel matched")
	}
}

func TestLoadDegradations(t *testing.T) {
	path := writeLog(t)
	side := SidecarPath(path)

	// Missing sidecar.
	if _, err := Load(path); !errors.Is(err, ErrNoIndex) {
		t.Errorf("missing sidecar: err = %v, want ErrNoIndex", err)
	}
	if got := Probe(path); got != StatusNone {
		t.Errorf("Probe = %v, want none", got)
	}
	if got := ProbeHeader(path); got != StatusNone {
		t.Errorf("ProbeHeader = %v, want none", got)
	}

	// Valid sidecar.
	ix := mustBuild(t, path)
	if err := WriteFileFor(path, ix); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err != nil {
		t.Fatalf("valid sidecar failed to load: %v", err)
	}
	if got := Probe(path); got != StatusOK {
		t.Errorf("Probe = %v, want ok", got)
	}
	if got := ProbeHeader(path); got != StatusOK {
		t.Errorf("ProbeHeader = %v, want ok", got)
	}

	// Unstamped sidecar (written with Write, not WriteFileFor): always stale.
	raw, err := os.ReadFile(side)
	if err != nil {
		t.Fatal(err)
	}
	fresh := mustBuild(t, path)
	if err := func() error {
		f, err := os.Create(side)
		if err != nil {
			return err
		}
		defer f.Close()
		return Write(f, fresh)
	}(); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); !errors.Is(err, ErrStale) {
		t.Errorf("unstamped sidecar: err = %v, want ErrStale", err)
	}
	if err := os.WriteFile(side, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// Stale: the log grew after indexing.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := Load(path); !errors.Is(err, ErrStale) {
		t.Errorf("regrown log: err = %v, want ErrStale", err)
	}
	if got := Probe(path); got != StatusStale {
		t.Errorf("Probe = %v, want stale", got)
	}
	if got := ProbeHeader(path); got != StatusStale {
		t.Errorf("ProbeHeader = %v, want stale", got)
	}

	// Corrupt: flip one body byte (CRC catches it).
	if err := WriteFileFor(path, mustBuild(t, path)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(side)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(side, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); !errors.Is(err, ErrCorrupt) {
		t.Errorf("flipped byte: err = %v, want ErrCorrupt", err)
	}
	if got := Probe(path); got != StatusCorrupt {
		t.Errorf("Probe = %v, want corrupt", got)
	}
	// ...but ProbeHeader cannot see body corruption: the header is intact.
	if got := ProbeHeader(path); got != StatusOK {
		t.Errorf("ProbeHeader = %v, want ok (header-only probe)", got)
	}

	// Truncated at every prefix length: never panics, never loads.
	data[len(data)/2] ^= 0xff // restore
	for n := 0; n < len(data); n += 7 {
		if err := os.WriteFile(side, data[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(path); err == nil {
			t.Fatalf("truncation to %d bytes loaded successfully", n)
		}
	}
}

// An index that passes every structural check but lies about the file
// must be caught by ScanFile's per-block verification.
func TestScanFileDetectsLyingIndex(t *testing.T) {
	path := writeLog(t)
	ix := mustBuild(t, path)
	// Swap the rank labels of two blocks; offsets, counts and sums all
	// stay plausible, so Decode accepts the mutant.
	ix.Blocks[2].Rank, ix.Blocks[4].Rank = ix.Blocks[4].Rank, ix.Blocks[2].Rank
	if _, err := Decode(Encode(ix)); err != nil {
		t.Fatalf("mutant failed structural validation (wanted it to pass): %v", err)
	}
	err := ScanFile(path, ix, ix.Select(MatchAll()), func(clog2.Block) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Errorf("lying index: err = %v, want ErrCorrupt", err)
	}
}

func TestScanFileEmptySelection(t *testing.T) {
	path := writeLog(t)
	ix := mustBuild(t, path)
	called := false
	if err := ScanFile(path, ix, nil, func(clog2.Block) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Error("empty selection visited a block")
	}
	if err := ScanFile(path, ix, []int{len(ix.Blocks)}, func(clog2.Block) error { return nil }); err == nil {
		t.Error("out-of-range selection did not error")
	}
}

func TestDecodeHostile(t *testing.T) {
	path := writeLog(t)
	ix := mustBuild(t, path)
	valid := Encode(ix)

	mutate := func(f func(d []byte)) []byte {
		d := append([]byte(nil), valid...)
		f(d)
		return restamp(d)
	}
	le32at := func(d []byte, off int, v uint32) { binary.LittleEndian.PutUint32(d[off:], v) }
	le64at := func(d []byte, off int, v uint64) { binary.LittleEndian.PutUint64(d[off:], v) }

	const (
		offVersion  = len(Magic)
		offNumRanks = len(Magic) + 4 + 8 + 8
		offTotal    = offNumRanks + 4
		offNBlocks  = offTotal + 8
		offBlock0   = offNBlocks + 4
	)
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"short", valid[:10]},
		{"bad-magic", mutate(func(d []byte) { d[0] = 'X' })},
		{"bad-version", mutate(func(d []byte) { le32at(d, offVersion, 99) })},
		{"zero-ranks", mutate(func(d []byte) { le32at(d, offNumRanks, 0) })},
		{"absurd-ranks", mutate(func(d []byte) { le32at(d, offNumRanks, 1<<21) })},
		{"huge-block-table", mutate(func(d []byte) { le32at(d, offNBlocks, 1 << 30) })},
		{"offset-before-header", mutate(func(d []byte) { le64at(d, offBlock0, 0) })},
		{"negative-length", mutate(func(d []byte) { le64at(d, offBlock0+8, ^uint64(0)) })},
		{"overlapping-blocks", mutate(func(d []byte) {
			// Make block 1 start inside block 0.
			b0off := binary.LittleEndian.Uint64(d[offBlock0:])
			le64at(d, offBlock0+blockEntrySize, b0off+1)
		})},
		{"defs-exceed-records", mutate(func(d []byte) { le32at(d, offBlock0+20, 1<<20) })},
		{"sum-mismatch", mutate(func(d []byte) { le64at(d, offTotal, 1) })},
		{"trailing-bytes", restamp(append(append([]byte(nil), valid[:len(valid)-4]...), 0, 0, 0, 0, 0, 0, 0, 0))},
		{"crc-mismatch", func() []byte {
			d := append([]byte(nil), valid...)
			d[len(d)-1] ^= 0xff
			return d
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Decode(tc.data); !errors.Is(err, ErrCorrupt) {
				t.Errorf("Decode = %v, want ErrCorrupt", err)
			}
		})
	}
}

func TestReadCapsSidecarSize(t *testing.T) {
	huge := io.LimitReader(zeros{}, maxSidecarSize+2)
	if _, err := Read(huge); !errors.Is(err, ErrCorrupt) {
		t.Errorf("oversized sidecar: err = %v, want ErrCorrupt", err)
	}
}

type zeros struct{}

func (zeros) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = 0
	}
	return len(p), nil
}

// Load must reject an index whose block table extends past the log even
// when the generation stamp matches (a hand-crafted hostile pairing).
func TestLoadRejectsBlockTablePastEOF(t *testing.T) {
	path := writeLog(t)
	ix := mustBuild(t, path)
	last := &ix.Blocks[len(ix.Blocks)-1]
	last.Length += 1 << 20
	// Bypass WriteFileFor's stamping with the true generation plus the lie.
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	ix.SourceSize, ix.SourceModNanos = Generation(info)
	f, err := os.Create(SidecarPath(path))
	if err != nil {
		t.Fatal(err)
	}
	if err := Write(f, ix); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := Load(path); !errors.Is(err, ErrCorrupt) {
		t.Errorf("block table past EOF: err = %v, want ErrCorrupt", err)
	}
}

func TestSidecarPath(t *testing.T) {
	if got := SidecarPath("a/b/run.clog2"); got != "a/b/run.clog2.idx" {
		t.Errorf("SidecarPath = %q", got)
	}
}

func TestTimeFenceExcludesDefs(t *testing.T) {
	// A block holding only definitions must not fence any time range and
	// must never satisfy a pure time query, but IncludeDefs selects it.
	path := filepath.Join(t.TempDir(), "defs.clog2")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := clog2.NewWriter(f, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteBlock(0, []clog2.Record{
		{Type: clog2.RecStateDef, ID: 1, Aux1: 2, Aux2: 3, Name: "A", Color: "red"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	ix := mustBuild(t, path)
	if len(ix.Blocks) != 1 {
		t.Fatalf("blocks = %+v", ix.Blocks)
	}
	if b := ix.Blocks[0]; !(b.TMin > b.TMax) {
		t.Errorf("defs-only block has a live time fence [%v, %v]", b.TMin, b.TMax)
	}
	q := MatchAll()
	if sel := ix.Select(q); len(sel) != 0 {
		t.Errorf("defs-only block selected by a pure event query: %v", sel)
	}
	q.IncludeDefs = true
	if sel := ix.Select(q); len(sel) != 1 {
		t.Errorf("IncludeDefs did not select the defs block: %v", sel)
	}
}

func TestWriteFileForStampsGeneration(t *testing.T) {
	path := writeLog(t)
	if err := WriteFileFor(path, mustBuild(t, path)); err != nil {
		t.Fatal(err)
	}
	ix, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	size, mod := Generation(info)
	if ix.SourceSize != size || ix.SourceModNanos != mod {
		t.Errorf("generation = (%d, %d), want (%d, %d)", ix.SourceSize, ix.SourceModNanos, size, mod)
	}
	if math.IsNaN(ix.Blocks[0].TMin) {
		t.Error("fence decoded as NaN")
	}
}
