package idx

import (
	"io"
	"math"

	"repro/internal/clog2"
)

// Builder accumulates an Index while blocks stream past — the shape the
// MPE Finish merge feeds: StartBlock before a block's records are
// written, AddRecords for each chunk, EndBlock after the end-block
// marker. It is built to ride the merge's zero-allocation path: Reset
// keeps every slice's capacity and clears (not reallocates) the lookup
// maps, so a pooled Builder adds no per-record allocations in steady
// state (the mpe alloc gates hold it to that).
type Builder struct {
	numRanks int
	total    int64
	blocks   []BlockMeta
	cur      BlockMeta
	inBlock  bool

	chanIdx  map[int32]int
	chans    []ChannelCount
	etypeIdx map[int32]int
	etypes   []EtypeCount
}

// NewBuilder returns a Builder for a log with numRanks ranks.
func NewBuilder(numRanks int) *Builder {
	b := &Builder{}
	b.Reset(numRanks)
	return b
}

// Reset clears the Builder for a new log, keeping accumulated capacity.
func (b *Builder) Reset(numRanks int) {
	b.numRanks = numRanks
	b.total = 0
	b.blocks = b.blocks[:0]
	b.cur = BlockMeta{}
	b.inBlock = false
	if b.chanIdx == nil {
		b.chanIdx = make(map[int32]int)
		b.etypeIdx = make(map[int32]int)
	} else {
		clear(b.chanIdx)
		clear(b.etypeIdx)
	}
	b.chans = b.chans[:0]
	b.etypes = b.etypes[:0]
}

// StartBlock opens a block beginning at byte offset for rank.
func (b *Builder) StartBlock(rank int32, offset int64) {
	b.cur = BlockMeta{
		Offset:  offset,
		Rank:    rank,
		TMin:    math.Inf(1),
		TMax:    math.Inf(-1),
		RankMin: math.MaxInt32,
		RankMax: math.MinInt32,
		ChanMin: math.MaxInt32,
		ChanMax: math.MinInt32,
	}
	b.inBlock = true
}

// AddRecords accounts one chunk of the open block's records.
func (b *Builder) AddRecords(recs []clog2.Record) {
	for i := range recs {
		b.addRecord(&recs[i])
	}
}

// AddBlock is StartBlock + AddRecords + EndBlock for a fully decoded
// block spanning [start, end) — the full-scan rebuild path.
func (b *Builder) AddBlock(blk clog2.Block, start, end int64) {
	b.StartBlock(blk.Rank, start)
	b.AddRecords(blk.Records)
	b.EndBlock(end)
}

func (b *Builder) addRecord(r *clog2.Record) {
	b.total++
	b.cur.Records++
	if isDef(r.Type) {
		b.cur.Defs++
		return
	}
	if r.Time < b.cur.TMin {
		b.cur.TMin = r.Time
	}
	if r.Time > b.cur.TMax {
		b.cur.TMax = r.Time
	}
	if r.Rank < b.cur.RankMin {
		b.cur.RankMin = r.Rank
	}
	if r.Rank > b.cur.RankMax {
		b.cur.RankMax = r.Rank
	}
	switch r.Type {
	case clog2.RecMsgEvt:
		b.cur.Msgs++
		ch := r.Aux2
		if ch < b.cur.ChanMin {
			b.cur.ChanMin = ch
		}
		if ch > b.cur.ChanMax {
			b.cur.ChanMax = ch
		}
		j, ok := b.chanIdx[ch]
		if !ok {
			j = len(b.chans)
			b.chanIdx[ch] = j
			b.chans = append(b.chans, ChannelCount{Chan: ch})
		}
		cc := &b.chans[j]
		if r.Dir == clog2.DirSend {
			cc.Sends++
			cc.SendBytes += int64(r.Aux3)
		} else {
			cc.Recvs++
			cc.RecvBytes += int64(r.Aux3)
		}
	case clog2.RecBareEvt, clog2.RecCargoEvt:
		j, ok := b.etypeIdx[r.ID]
		if !ok {
			j = len(b.etypes)
			b.etypeIdx[r.ID] = j
			b.etypes = append(b.etypes, EtypeCount{Etype: r.ID})
		}
		b.etypes[j].Count++
	}
}

// EndBlock closes the open block at byte offset end (one past its
// end-block marker).
func (b *Builder) EndBlock(end int64) {
	if !b.inBlock {
		return
	}
	b.cur.Length = end - b.cur.Offset
	b.blocks = append(b.blocks, b.cur)
	b.inBlock = false
}

// Index assembles the accumulated metadata. Channel and etype tables are
// sorted by id for a deterministic encoding; the generation fields are
// zero until WriteFileFor stamps them from the source file. The returned
// Index copies the Builder's slices, so the Builder may be Reset and
// reused while the Index lives on.
func (b *Builder) Index() *Index {
	ix := &Index{
		NumRanks:     b.numRanks,
		TotalRecords: b.total,
		Blocks:       append([]BlockMeta(nil), b.blocks...),
		Channels:     append([]ChannelCount(nil), b.chans...),
		Etypes:       append([]EtypeCount(nil), b.etypes...),
	}
	sortChannels(ix.Channels)
	sortEtypes(ix.Etypes)
	return ix
}

// BuildReader indexes a CLOG-2 stream from its header on: the full-scan
// rebuild used when no merge-time index exists (pilot-index build,
// clog2slog). The reader must be positioned at the file start.
func BuildReader(br *clog2.BlockReader) (*Index, error) {
	b := NewBuilder(br.NumRanks())
	var buf []clog2.Record
	for {
		blk, err := br.NextReuse(buf)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		start, end := br.BlockBounds()
		b.AddBlock(blk, start, end)
		buf = blk.Records[:0]
	}
	return b.Index(), nil
}
