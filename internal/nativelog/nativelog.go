// Package nativelog parses and analyses Pilot's native text log — the
// original facility the paper's Section I criticises: timestamps recorded
// at arrival at a central process, events from all processes
// conglomerated, output scarcely human readable. Parsing it back into
// structure is how a tool (or a test) separates the conglomerate; the
// analyses here quantify exactly the properties the paper complains
// about.
//
// A line looks like:
//
//	[   12.345678] P3 PI_Read chan C2 fmt "%d" app.go:47
//
// The first field is the service process's arrival timestamp; the second
// is the reporting process's name; the third is the Pilot operation; the
// rest is free-form detail.
package nativelog

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// AppendLine appends one native-log line to dst in the exact format the
// service process writes (and Parse reads back): "[%12.6f] text\n", the
// timestamp right-aligned to 12 columns with six decimals. The service
// process formats every arriving line through here into a reused buffer,
// so a chatty program does not make the logger allocate per line.
func AppendLine(dst []byte, wtime float64, text string) []byte {
	dst = append(dst, '[')
	start := len(dst)
	dst = strconv.AppendFloat(dst, wtime, 'f', 6, 64)
	if pad := 12 - (len(dst) - start); pad > 0 {
		// Right-align as %12.6f does: shift the digits up and fill the
		// gap with spaces (copy is memmove-safe for the overlap).
		dst = append(dst, "            "[:pad]...)
		copy(dst[start+pad:], dst[start:len(dst)-pad])
		for i := 0; i < pad; i++ {
			dst[start+i] = ' '
		}
	}
	dst = append(dst, ']', ' ')
	dst = append(dst, text...)
	return append(dst, '\n')
}

// Entry is one parsed log line.
type Entry struct {
	// ArrivalTime is when the line reached the central service process —
	// not when the call happened (the paper's shortcoming 1).
	ArrivalTime float64
	// Proc is the reporting process's display name ("PI_MAIN", "P3", or a
	// PI_SetName value).
	Proc string
	// Op is the Pilot operation ("PI_Read", "PI_Write", "PI_Log",
	// "exited", ...).
	Op string
	// Detail is the rest of the line.
	Detail string
	// Line is the 1-based line number in the log file.
	Line int
}

// Parse reads a native log. Malformed lines are returned as entries with
// only Detail set rather than dropped — a debugging log should never
// silently lose data.
func Parse(r io.Reader) ([]Entry, error) {
	var out []Entry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		e, ok := parseLine(line)
		e.Line = lineNo
		if !ok {
			e = Entry{Detail: line, Line: lineNo}
		}
		out = append(out, e)
	}
	return out, sc.Err()
}

func parseLine(line string) (Entry, bool) {
	if !strings.HasPrefix(line, "[") {
		return Entry{}, false
	}
	close := strings.IndexByte(line, ']')
	if close < 0 {
		return Entry{}, false
	}
	ts, err := strconv.ParseFloat(strings.TrimSpace(line[1:close]), 64)
	if err != nil {
		return Entry{}, false
	}
	rest := strings.TrimSpace(line[close+1:])
	fields := strings.SplitN(rest, " ", 3)
	e := Entry{ArrivalTime: ts}
	switch len(fields) {
	case 0:
		return Entry{}, false
	case 1:
		e.Proc = fields[0]
	case 2:
		e.Proc, e.Op = fields[0], fields[1]
	default:
		e.Proc, e.Op, e.Detail = fields[0], fields[1], fields[2]
	}
	return e, true
}

// ByProc separates the conglomerated log into per-process streams — the
// manual chore the paper's shortcoming 2 describes, done once here.
func ByProc(entries []Entry) map[string][]Entry {
	out := map[string][]Entry{}
	for _, e := range entries {
		if e.Proc == "" {
			continue
		}
		out[e.Proc] = append(out[e.Proc], e)
	}
	return out
}

// CallCounts tallies operations per process: the quickest summary of what
// a program actually did.
func CallCounts(entries []Entry) map[string]map[string]int {
	out := map[string]map[string]int{}
	for _, e := range entries {
		if e.Proc == "" || e.Op == "" {
			continue
		}
		if out[e.Proc] == nil {
			out[e.Proc] = map[string]int{}
		}
		out[e.Proc][e.Op]++
	}
	return out
}

// Interleaving measures how conglomerated the log is: the fraction of
// adjacent line pairs that switch processes. A single-process log scores
// 0; a perfectly alternating two-process log scores 1. High values are
// why the native log is "painful to separate" by eye.
func Interleaving(entries []Entry) float64 {
	switches, pairs := 0, 0
	var prev string
	for _, e := range entries {
		if e.Proc == "" {
			continue
		}
		if prev != "" {
			pairs++
			if e.Proc != prev {
				switches++
			}
		}
		prev = e.Proc
	}
	if pairs == 0 {
		return 0
	}
	return float64(switches) / float64(pairs)
}

// FormatSummary renders per-process call counts as an aligned table.
func FormatSummary(entries []Entry) string {
	counts := CallCounts(entries)
	procs := make([]string, 0, len(counts))
	for p := range counts {
		procs = append(procs, p)
	}
	sort.Strings(procs)
	var b strings.Builder
	for _, p := range procs {
		ops := make([]string, 0, len(counts[p]))
		for op := range counts[p] {
			ops = append(ops, op)
		}
		sort.Strings(ops)
		fmt.Fprintf(&b, "%-10s", p)
		for _, op := range ops {
			fmt.Fprintf(&b, " %s=%d", op, counts[p][op])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Grep returns the entries whose operation or detail contains the pattern
// (case-insensitive).
func Grep(entries []Entry, pattern string) []Entry {
	p := strings.ToLower(pattern)
	var out []Entry
	for _, e := range entries {
		if strings.Contains(strings.ToLower(e.Op), p) ||
			strings.Contains(strings.ToLower(e.Detail), p) ||
			strings.Contains(strings.ToLower(e.Proc), p) {
			out = append(out, e)
		}
	}
	return out
}
