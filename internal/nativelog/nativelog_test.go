package nativelog_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lab2"
	"repro/internal/nativelog"
)

const sample = `[    0.000100] PI_MAIN PI_Write chan C1 fmt "%d" main.go:10
[    0.000150] P1 PI_Read chan C1 fmt "%d" worker.go:5
[    0.000200] PI_MAIN PI_Write chan C2 fmt "%d" main.go:11
[    0.000220] P2 PI_Read chan C2 fmt "%d" worker.go:5
[    0.000300] P1 exited
garbage line that is not a log entry
[    0.000400] P2 exited
`

func TestParse(t *testing.T) {
	entries, err := nativelog.Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 7 {
		t.Fatalf("parsed %d entries, want 7", len(entries))
	}
	e := entries[0]
	if e.ArrivalTime != 0.0001 || e.Proc != "PI_MAIN" || e.Op != "PI_Write" {
		t.Fatalf("first entry %+v", e)
	}
	if !strings.Contains(e.Detail, "main.go:10") {
		t.Fatalf("detail lost: %q", e.Detail)
	}
	// The garbage line survives as a detail-only entry with its line number.
	g := entries[5]
	if g.Proc != "" || g.Line != 6 || !strings.Contains(g.Detail, "garbage") {
		t.Fatalf("garbage entry %+v", g)
	}
}

func TestByProcSeparatesConglomerate(t *testing.T) {
	entries, _ := nativelog.Parse(strings.NewReader(sample))
	per := nativelog.ByProc(entries)
	if len(per["PI_MAIN"]) != 2 || len(per["P1"]) != 2 || len(per["P2"]) != 2 {
		t.Fatalf("per-proc counts: main=%d p1=%d p2=%d",
			len(per["PI_MAIN"]), len(per["P1"]), len(per["P2"]))
	}
	// Per-process streams stay in arrival order.
	if per["P1"][0].Op != "PI_Read" || per["P1"][1].Op != "exited" {
		t.Fatalf("P1 stream %+v", per["P1"])
	}
}

func TestCallCountsAndSummary(t *testing.T) {
	entries, _ := nativelog.Parse(strings.NewReader(sample))
	counts := nativelog.CallCounts(entries)
	if counts["PI_MAIN"]["PI_Write"] != 2 {
		t.Fatalf("counts %+v", counts)
	}
	out := nativelog.FormatSummary(entries)
	if !strings.Contains(out, "PI_MAIN") || !strings.Contains(out, "PI_Write=2") {
		t.Fatalf("summary:\n%s", out)
	}
}

func TestInterleaving(t *testing.T) {
	entries, _ := nativelog.Parse(strings.NewReader(sample))
	// Sequence: MAIN P1 MAIN P2 P1 P2 -> every adjacent pair switches.
	if got := nativelog.Interleaving(entries); got != 1.0 {
		t.Fatalf("interleaving = %v, want 1.0", got)
	}
	single, _ := nativelog.Parse(strings.NewReader("[1.0] P1 PI_Read x\n[2.0] P1 PI_Read y\n"))
	if got := nativelog.Interleaving(single); got != 0 {
		t.Fatalf("single-proc interleaving = %v", got)
	}
	if got := nativelog.Interleaving(nil); got != 0 {
		t.Fatalf("empty interleaving = %v", got)
	}
}

func TestGrep(t *testing.T) {
	entries, _ := nativelog.Parse(strings.NewReader(sample))
	if hits := nativelog.Grep(entries, "pi_read"); len(hits) != 2 {
		t.Fatalf("grep pi_read: %d hits", len(hits))
	}
	if hits := nativelog.Grep(entries, "C2"); len(hits) != 2 {
		t.Fatalf("grep C2: %d hits", len(hits))
	}
	if hits := nativelog.Grep(entries, "nomatch-xyz"); len(hits) != 0 {
		t.Fatalf("grep nomatch: %d hits", len(hits))
	}
}

// Round trip against the real runtime: run lab2 with -pisvc=c and parse
// what the service process wrote.
func TestParseRealNativeLog(t *testing.T) {
	dir := t.TempDir()
	cfg := lab2.Config{W: 3, NUM: 300, Seed: 2}
	cfg.Core.Services = "c"
	cfg.Core.NativePath = filepath.Join(dir, "lab2.log")
	cfg.Core.JumpshotPath = filepath.Join(dir, "unused.clog2")
	if _, err := lab2.Run(cfg); err != nil {
		t.Fatal(err)
	}
	f, err := openFile(cfg.Core.NativePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	entries, err := nativelog.Parse(f)
	if err != nil {
		t.Fatal(err)
	}
	counts := nativelog.CallCounts(entries)
	// Per worker: 2 reads + 1 write; PI_MAIN: 6 writes + 3 reads.
	for _, p := range []string{"P1", "P2", "P3"} {
		if counts[p]["PI_Read"] != 2 || counts[p]["PI_Write"] != 1 {
			t.Errorf("%s counts %+v", p, counts[p])
		}
	}
	if counts["PI_MAIN"]["PI_Write"] != 6 || counts["PI_MAIN"]["PI_Read"] != 3 {
		t.Errorf("PI_MAIN counts %+v", counts["PI_MAIN"])
	}
	// Arrival timestamps are nondecreasing: the central process stamps in
	// arrival order (the paper's shortcoming 1, faithfully reproduced).
	prev := -1.0
	for _, e := range entries {
		if e.Proc == "" {
			continue
		}
		if e.ArrivalTime < prev {
			t.Fatalf("arrival times not monotone: %v after %v", e.ArrivalTime, prev)
		}
		prev = e.ArrivalTime
	}
	// With several processes the stream really is interleaved.
	if il := nativelog.Interleaving(entries); il == 0 {
		t.Error("real log shows no interleaving; expected a conglomerate")
	}
}

func openFile(path string) (*os.File, error) { return os.Open(path) }
