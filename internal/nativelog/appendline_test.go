package nativelog_test

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/nativelog"
)

// AppendLine must match the Fprintf format the service process always
// used ("[%12.6f] %s\n"), byte for byte, so logs remain parseable and
// diffable across versions.
func TestAppendLineMatchesFprintf(t *testing.T) {
	times := []float64{0, 0.000001, 12.345678, 99999.123456, 12345678.9,
		123456789012.3, -1.5, math.Inf(1), math.NaN()}
	texts := []string{"", "P1 exited", "PI_MAIN PI_Write chan C1 fmt \"%d\" main.go:10"}
	for _, ts := range times {
		for _, text := range texts {
			want := fmt.Sprintf("[%12.6f] %s\n", ts, text)
			got := string(nativelog.AppendLine(nil, ts, text))
			if got != want {
				t.Errorf("AppendLine(%v, %q) = %q, want %q", ts, text, got, want)
			}
		}
	}
}

// Lines built by AppendLine parse back into the entry they encode.
func TestAppendLineRoundTrip(t *testing.T) {
	var buf []byte
	buf = nativelog.AppendLine(buf, 1.5, "P3 PI_Read chan C2 fmt \"%d\" app.go:47")
	buf = nativelog.AppendLine(buf, 2.25, "P3 exited")
	entries, err := nativelog.Parse(strings.NewReader(string(buf)))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("parsed %d entries, want 2", len(entries))
	}
	if entries[0].ArrivalTime != 1.5 || entries[0].Proc != "P3" || entries[0].Op != "PI_Read" {
		t.Fatalf("first entry %+v", entries[0])
	}
	if entries[1].ArrivalTime != 2.25 || entries[1].Op != "exited" {
		t.Fatalf("second entry %+v", entries[1])
	}
}

// Reusing the buffer must not allocate once it has grown.
func TestAppendLineAllocFree(t *testing.T) {
	buf := make([]byte, 0, 128)
	if n := testing.AllocsPerRun(200, func() {
		buf = nativelog.AppendLine(buf[:0], 123.456789, "P1 PI_Write chan C1")
	}); n != 0 {
		t.Errorf("AppendLine allocates %.1f per run, want 0", n)
	}
}
