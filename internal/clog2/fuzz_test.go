package clog2

import (
	"bytes"
	"encoding/binary"
	"io"
	"reflect"
	"testing"
)

// validFileBytes serialises a small, well-formed two-block file.
func validFileBytes(t testing.TB) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteBlock(0, sampleRecords()); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteBlock(1, []Record{{Type: RecBareEvt, Time: 1, Rank: 1, ID: 4}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// corruptHeader returns a valid file with the block's declared record
// count overwritten by n (little-endian), leaving the payload intact.
func corruptRecordCount(t testing.TB, n int32) []byte {
	t.Helper()
	data := append([]byte(nil), validFileBytes(t)...)
	// Layout: magic(10) + nranks(4) + rank(4) + nrec(4) + ...
	off := len(Magic) + 4 + 4
	binary.LittleEndian.PutUint32(data[off:], uint32(n))
	return data
}

// drainBlockReader consumes a stream and returns the blocks read before
// the first error (io.EOF means a clean end).
func drainBlockReader(r io.Reader) ([]Block, error) {
	br, err := NewBlockReader(r)
	if err != nil {
		return nil, err
	}
	var blocks []Block
	for {
		b, err := br.Next()
		if err == io.EOF {
			return blocks, nil
		}
		if err != nil {
			return blocks, err
		}
		blocks = append(blocks, b)
	}
}

// FuzzReadFile feeds arbitrary bytes to every reader entry point. The
// contract under fuzzing: return errors, never panic, never over-allocate
// from untrusted length fields — and the streaming BlockReader must agree
// with Read on what a file contains.
func FuzzReadFile(f *testing.F) {
	valid := validFileBytes(f)
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte(Magic))                                                // header cut before rank count
	f.Add(valid[:len(Magic)+4+4])                                       // truncated inside a block header
	f.Add(valid[:len(valid)-1])                                         // missing end-log marker
	f.Add(valid[:len(valid)/2])                                         // torn mid-block
	f.Add(corruptRecordCount(f, -5))                                    // negative record count
	f.Add(corruptRecordCount(f, 1<<28))                                 // huge record count
	f.Add(bytes.Replace(valid, []byte(Magic), []byte("XLOG-R0260"), 1)) // bad magic
	bad := append([]byte(nil), valid...)
	bad[len(Magic)+4+4+4] = 0xEE // clobber first record's type byte
	f.Add(bad)

	f.Fuzz(func(t *testing.T, data []byte) {
		full, err := Read(bytes.NewReader(data))
		if err == nil && full == nil {
			t.Fatal("Read returned nil file with nil error")
		}
		lenient, complete, lerr := ReadLenient(bytes.NewReader(data))
		if lerr == nil && lenient == nil {
			t.Fatal("ReadLenient returned nil file with nil error")
		}
		if err == nil && (!complete || lerr != nil) {
			t.Fatalf("Read succeeded but ReadLenient reported complete=%v err=%v", complete, lerr)
		}
		// Streaming reader agrees with Read on parse success and content.
		blocks, serr := drainBlockReader(bytes.NewReader(data))
		if (err == nil) != (serr == nil) {
			t.Fatalf("Read err=%v but BlockReader err=%v", err, serr)
		}
		if err == nil {
			if len(blocks) != len(full.Blocks) {
				t.Fatalf("BlockReader saw %d blocks, Read saw %d", len(blocks), len(full.Blocks))
			}
			for i := range blocks {
				if !reflect.DeepEqual(blocks[i], full.Blocks[i]) {
					t.Fatalf("block %d differs between streaming and full read", i)
				}
			}
		}
	})
}

// The seed corpus cases, run as a plain test so `go test` covers them
// without -fuzz.
func TestReaderRejectsCorruptInputs(t *testing.T) {
	cases := map[string][]byte{
		"empty":             {},
		"magic only":        []byte(Magic),
		"bad magic":         bytes.Replace(validFileBytes(t), []byte(Magic), []byte("XLOG-R0260"), 1),
		"torn block header": validFileBytes(t)[:len(Magic)+4+4],
		"no end-log":        validFileBytes(t)[:len(validFileBytes(t))-1],
		"torn mid-block":    validFileBytes(t)[:len(validFileBytes(t))/2],
		"negative count":    corruptRecordCount(t, -1),
		"huge count":        corruptRecordCount(t, 1<<28),
	}
	bad := validFileBytes(t)
	bad[len(Magic)+4+4+4] = 0xEE
	cases["bad record type"] = bad
	for name, data := range cases {
		if _, err := Read(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: Read succeeded", name)
		}
		if _, err := drainBlockReader(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: BlockReader succeeded", name)
		}
	}
}

// A header declaring 2^28 records must not reserve gigabytes before the
// decoder has seen a single valid record (maxRecordPrealloc caps it).
func TestReaderNoOverAllocationOnHugeCount(t *testing.T) {
	data := corruptRecordCount(t, 1<<28)
	allocs := testing.AllocsPerRun(5, func() {
		Read(bytes.NewReader(data)) //nolint:errcheck — must fail, cheaply
	})
	// The exact number is incidental; the point is it is small: record
	// structs are ~112 bytes, so a faithful 2^28 prealloc would be one
	// ~30 GB allocation that either OOMs or dwarfs this bound.
	if allocs > 100 {
		t.Fatalf("rejecting a huge record count cost %.0f allocations", allocs)
	}
}

// BlockReader.NextReuse recycles the caller's record buffer.
func TestBlockReaderNextReuse(t *testing.T) {
	data := validFileBytes(t)
	br, err := NewBlockReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]Record, 0, 64)
	b1, err := br.NextReuse(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(b1.Records, sampleRecords()) {
		t.Fatalf("first block changed: %+v", b1.Records)
	}
	if &b1.Records[0] != &buf[:1][0] {
		t.Fatal("NextReuse did not reuse the provided buffer")
	}
	b2, err := br.NextReuse(buf)
	if err != nil {
		t.Fatal(err)
	}
	if b2.Rank != 1 || len(b2.Records) != 1 {
		t.Fatalf("second block: %+v", b2)
	}
	if _, err := br.NextReuse(buf); err != io.EOF {
		t.Fatalf("want io.EOF at end, got %v", err)
	}
	if _, err := br.NextReuse(buf); err != io.EOF {
		t.Fatalf("want io.EOF on repeat call, got %v", err)
	}
}
