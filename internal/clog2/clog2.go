// Package clog2 implements a CLOG-2-style logfile format: the raw,
// per-rank, append-only event log that MPE produces and that is later
// converted to SLOG-2 for display ("the literature calls the conversion
// approach preferred").
//
// A file is a header followed by per-rank blocks of time-stamped records —
// state and event definitions, bare events, cargo events (with the MPE
// 40-byte text limit), point-to-point message events, and timeshift
// records from clock synchronisation — terminated by an end-log marker.
// Like real CLOG-2, the file is unmerged and unsorted across ranks: sorting
// and pairing are the converter's job, and diagnosing problems by reading
// the raw records is exactly the use case the paper quotes for keeping the
// two-step pipeline.
package clog2

import "unicode/utf8"

// RecType identifies a record's body layout.
type RecType uint8

// Record types.
const (
	RecEndLog    RecType = iota // end of file
	RecEndBlock                 // end of one rank's block
	RecStateDef                 // define a state: id, colour, name
	RecEventDef                 // define a solo event: id, colour, name
	RecConstDef                 // named integer constant
	RecBareEvt                  // event with no payload
	RecCargoEvt                 // event with ≤40 bytes of text cargo
	RecMsgEvt                   // message send or receive half
	RecTimeShift                // clock-synchronisation offset applied to this rank
	RecSrcLoc                   // source-location annotation
	numRecTypes
)

// String implements fmt.Stringer.
func (t RecType) String() string {
	names := [...]string{"EndLog", "EndBlock", "StateDef", "EventDef",
		"ConstDef", "BareEvt", "CargoEvt", "MsgEvt", "TimeShift", "SrcLoc"}
	if int(t) < len(names) {
		return names[t]
	}
	return "RecType(?)"
}

// MaxCargo is the cargo-text byte limit, matching MPE's 40-byte field (the
// paper: "optional text (limited to 40 bytes)").
const MaxCargo = 40

// Message-event directions.
const (
	DirSend uint8 = 1
	DirRecv uint8 = 2
)

// Record is one logged record. Which fields are meaningful depends on
// Type; unused fields are zero. A flat struct rather than an interface
// keeps the per-event logging cost at one append with no allocation.
type Record struct {
	Time float64
	Rank int32
	Type RecType

	// StateDef: ID=state id, Aux1=start etype, Aux2=end etype.
	// EventDef: ID=etype. ConstDef: ID=etype, Aux1=value.
	// BareEvt/CargoEvt: ID=etype.
	// MsgEvt: Dir, Aux1=peer rank, Aux2=tag, Aux3=size.
	ID   int32
	Aux1 int32
	Aux2 int32
	Aux3 int32
	Dir  uint8

	// Color and Name are used by definitions; Text carries the filename
	// for SrcLoc records. Event cargo lives in the fixed Cargo buffer (see
	// SetCargo) so the per-event hot path carries no heap strings.
	Color string
	Name  string
	Text  string

	// Cargo holds the first CargoLen bytes of a cargo event's text,
	// in-record, matching MPE's fixed 40-byte field. Use SetCargo /
	// SetCargoBytes to fill it and CargoBytes / CargoText to read it.
	Cargo    [MaxCargo]byte
	CargoLen uint8

	// Shift is the timeshift value for RecTimeShift records.
	Shift float64
}

// SetCargo stores cargo text in the record's fixed buffer, truncating
// rune-safely at MaxCargo bytes.
func (r *Record) SetCargo(s string) {
	r.CargoLen = uint8(copy(r.Cargo[:], Trunc(s, MaxCargo)))
}

// SetCargoBytes is SetCargo for an already-assembled byte slice.
func (r *Record) SetCargoBytes(b []byte) {
	r.CargoLen = uint8(copy(r.Cargo[:], TruncBytes(b, MaxCargo)))
}

// CargoBytes returns the cargo text as a view into the record; the slice
// is only valid while the record is.
func (r *Record) CargoBytes() []byte { return r.Cargo[:r.CargoLen] }

// CargoText returns the cargo text as a string (allocating; meant for the
// converter and tools, not the logging hot path).
func (r *Record) CargoText() string { return string(r.Cargo[:r.CargoLen]) }

// Trunc returns s truncated to at most n bytes without splitting a
// multi-byte UTF-8 rune at the boundary: a rune that straddles byte n is
// dropped whole. Invalid UTF-8 falls back to a plain byte cut.
func Trunc(s string, n int) string {
	if len(s) <= n {
		return s
	}
	if !utf8.RuneStart(s[n]) {
		// Byte n continues a rune that started before the boundary:
		// back up to the rune's start and drop it whole. Garbage that
		// never reaches a start byte gets a plain byte cut.
		for cut := n - 1; cut >= 0 && cut > n-utf8.UTFMax; cut-- {
			if utf8.RuneStart(s[cut]) {
				return s[:cut]
			}
		}
	}
	return s[:n]
}

// TruncBytes is Trunc for byte slices.
func TruncBytes(b []byte, n int) []byte {
	if len(b) <= n {
		return b
	}
	if !utf8.RuneStart(b[n]) {
		for cut := n - 1; cut >= 0 && cut > n-utf8.UTFMax; cut-- {
			if utf8.RuneStart(b[cut]) {
				return b[:cut]
			}
		}
	}
	return b[:n]
}

// File is a parsed CLOG-2 file.
type File struct {
	NumRanks int
	// Blocks holds each rank's records in the order blocks appear in the
	// file; one rank may own several blocks.
	Blocks []Block
}

// Block is one rank's contiguous run of records.
type Block struct {
	Rank    int32
	Records []Record
}

// Records returns every record from every block, in file order.
func (f *File) Records() []Record {
	var out []Record
	for _, b := range f.Blocks {
		out = append(out, b.Records...)
	}
	return out
}

// StateDefs returns the state definitions in file order.
func (f *File) StateDefs() []Record {
	var out []Record
	for _, r := range f.Records() {
		if r.Type == RecStateDef {
			out = append(out, r)
		}
	}
	return out
}

// EventDefs returns the solo-event definitions in file order.
func (f *File) EventDefs() []Record {
	var out []Record
	for _, r := range f.Records() {
		if r.Type == RecEventDef {
			out = append(out, r)
		}
	}
	return out
}
