package clog2_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/clog2"
	"repro/internal/mpe"
	"repro/internal/mpi"
)

// lab2ShapedSpill writes a real v2 spill fragment through the mpe
// write-through path, with the record mix a lab2 worker produces (Compute
// state, PI_Read/PI_Write pairs with source-location cargo, message
// halves), and returns the fragment's bytes — the fuzz seed corpus.
func lab2ShapedSpill(t testing.TB) []byte {
	t.Helper()
	dir := t.TempDir()
	prefix := filepath.Join(dir, "lab2.clog2")
	w := mpi.NewWorld(3, mpi.Options{})
	g := mpe.NewGroup(w, true)
	g.EnableSpill(prefix)
	compute := g.DescribeState("Compute", "gray")
	read := g.DescribeState("PI_Read", "red")
	write := g.DescribeState("PI_Write", "green")
	arrival := g.DescribeEvent("MsgArrival", "yellow")
	if err := g.SpillDefs(); err != nil {
		t.Fatal(err)
	}
	l := g.Logger(1)
	l.StateStart(compute, "proc: W1 idx: 0")
	for i := 0; i < 8; i++ {
		l.StateStart(read, "line: lab2.go:57")
		l.LogRecv(0, 21, 8)
		l.Event(arrival, "chan: C1")
		l.StateEnd(read, "")
		l.StateStart(write, "line: lab2.go:64")
		l.LogSend(0, 22, 8)
		l.StateEnd(write, "")
	}
	if err := l.SpillError(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(prefix + ".rank1.spill")
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("spill fragment empty")
	}
	return data
}

// FuzzSalvageSegments drives the segment scanner with arbitrary bytes and
// with valid/corrupt splices. The contract: never panic, account for
// every input byte as either recovered-segment bytes or quarantined
// bytes, and — when valid segments are spliced around the fuzz input —
// recover every one of them regardless of what the input contains.
func FuzzSalvageSegments(f *testing.F) {
	spill := lab2ShapedSpill(f)
	f.Add(spill)
	f.Add(spill[:len(spill)/2])        // torn mid-segment
	f.Add(spill[3:])                   // head shorn off
	f.Add([]byte{})                    // empty fragment
	f.Add(bytes.Repeat(clog2.SegMarker(), 40)) // marker-dense junk
	flipped := append([]byte(nil), spill...)
	flipped[len(flipped)/3] ^= 0xFF
	f.Add(flipped)

	// Fixed valid segments to splice around the fuzz input.
	var payload bytes.Buffer
	rec := clog2.Record{Type: clog2.RecCargoEvt, Time: 1.5, Rank: 2, ID: 4}
	rec.SetCargo("line: splice.go:1")
	if err := clog2.EncodeBlockPayload(&payload, 2, []clog2.Record{rec}); err != nil {
		f.Fatal(err)
	}
	valid := make([][]byte, 3)
	for i := range valid {
		valid[i] = clog2.AppendSegment(nil, 2, uint64(i), payload.Bytes())
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		// Raw scan: no panic, full byte accounting.
		segs, stats := clog2.ScanSegments(data)
		var recovered int64
		for _, s := range segs {
			recovered += int64(clog2.SegHeaderSize + len(s.Payload))
			// Payload decode must not panic either; errors are fine (a
			// CRC-valid frame holding a non-block payload is corrupt).
			_, _ = clog2.DecodeBlockPayload(s.Payload)
		}
		if recovered+stats.BytesQuarantined != int64(len(data)) {
			t.Fatalf("scan accounting: %d recovered + %d quarantined != %d input",
				recovered, stats.BytesQuarantined, len(data))
		}

		// Splice: valid segments interleaved with the fuzz input as
		// damage. Every uncorrupted segment must be recovered.
		half := len(data) / 2
		var file []byte
		file = append(file, valid[0]...)
		file = append(file, data[:half]...)
		file = append(file, valid[1]...)
		file = append(file, data[half:]...)
		file = append(file, valid[2]...)
		got, _ := clog2.ScanSegments(file)
		found := make([]bool, len(valid))
		for _, s := range got {
			if s.Rank == 2 && s.Seq < uint64(len(valid)) && bytes.Equal(s.Payload, payload.Bytes()) {
				found[s.Seq] = true
			}
		}
		for i, ok := range found {
			if !ok {
				t.Fatalf("spliced segment %d not recovered (input %d bytes)", i, len(data))
			}
		}
	})
}
