package clog2

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Magic begins every file; the trailing digits are this format's version.
const Magic = "CLOG-R0260"

// Writer emits a CLOG-2 file incrementally: a header, then blocks of
// records, then Close writes the end-log marker.
type Writer struct {
	w      *bufio.Writer
	closed bool
	err    error
}

// NewWriter writes the file header for numRanks ranks onto w.
func NewWriter(w io.Writer, numRanks int) (*Writer, error) {
	if numRanks < 1 {
		return nil, fmt.Errorf("clog2: writer with %d ranks", numRanks)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(Magic); err != nil {
		return nil, err
	}
	if err := binary.Write(bw, binary.LittleEndian, int32(numRanks)); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// WriteBlock appends one rank's block of records.
func (w *Writer) WriteBlock(rank int32, recs []Record) error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return fmt.Errorf("clog2: write after Close")
	}
	if rank < 0 {
		return fmt.Errorf("clog2: block with negative rank %d", rank)
	}
	// Ranks are shifted by +1 on the wire so a block header's first byte
	// can never equal the RecEndLog marker (see decoder.peekType).
	w.put32(rank + 1)
	w.put32(int32(len(recs)))
	for i := range recs {
		w.writeRecord(&recs[i])
	}
	w.putType(RecEndBlock)
	return w.err
}

// Flush pushes buffered bytes to the underlying writer without closing
// the log: the write-through mode used by the abort-surviving spill files.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// Close writes the end-log marker and flushes. The underlying writer is
// not closed.
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return nil
	}
	w.closed = true
	w.putType(RecEndLog)
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

func (w *Writer) writeRecord(r *Record) {
	w.putType(r.Type)
	w.putF64(r.Time)
	w.put32(r.Rank)
	switch r.Type {
	case RecStateDef:
		w.put32(r.ID)
		w.put32(r.Aux1)
		w.put32(r.Aux2)
		w.putStr(r.Color)
		w.putStr(r.Name)
	case RecEventDef:
		w.put32(r.ID)
		w.putStr(r.Color)
		w.putStr(r.Name)
	case RecConstDef:
		w.put32(r.ID)
		w.put32(r.Aux1)
		w.putStr(r.Name)
	case RecBareEvt:
		w.put32(r.ID)
	case RecCargoEvt:
		w.put32(r.ID)
		w.putStr(truncCargo(r.Text))
	case RecMsgEvt:
		w.putByte(r.Dir)
		w.put32(r.Aux1)
		w.put32(r.Aux2)
		w.put32(r.Aux3)
	case RecTimeShift:
		w.putF64(r.Shift)
	case RecSrcLoc:
		w.put32(r.Aux1)
		w.putStr(r.Text)
	default:
		w.fail(fmt.Errorf("clog2: cannot write record type %v", r.Type))
	}
}

func truncCargo(s string) string {
	if len(s) > MaxCargo {
		return s[:MaxCargo]
	}
	return s
}

func (w *Writer) fail(err error) {
	if w.err == nil {
		w.err = err
	}
}

func (w *Writer) putType(t RecType) { w.putByte(uint8(t)) }

func (w *Writer) putByte(b uint8) {
	if w.err != nil {
		return
	}
	w.fail(w.w.WriteByte(b))
}

func (w *Writer) put32(v int32) {
	if w.err != nil {
		return
	}
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], uint32(v))
	_, err := w.w.Write(buf[:])
	w.fail(err)
}

func (w *Writer) putF64(v float64) {
	if w.err != nil {
		return
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
	_, err := w.w.Write(buf[:])
	w.fail(err)
}

func (w *Writer) putStr(s string) {
	if w.err != nil {
		return
	}
	if len(s) > math.MaxUint16 {
		w.fail(fmt.Errorf("clog2: string of %d bytes exceeds format limit", len(s)))
		return
	}
	var buf [2]byte
	binary.LittleEndian.PutUint16(buf[:], uint16(len(s)))
	if _, err := w.w.Write(buf[:]); err != nil {
		w.fail(err)
		return
	}
	_, err := w.w.WriteString(s)
	w.fail(err)
}

// ReadLenient parses as much of a CLOG-2 stream as possible: complete
// blocks are returned even when the end-log marker is missing or the tail
// is torn mid-block, as happens to spill files from an aborted program.
// The second result reports whether the file was complete.
func ReadLenient(r io.Reader) (*File, bool, error) {
	f, err := Read(r)
	if err == nil {
		return f, true, nil
	}
	pf, ok := err.(*partialError)
	if !ok {
		return nil, false, err
	}
	return pf.file, false, nil
}

// Read parses a complete CLOG-2 file.
func Read(r io.Reader) (*File, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("clog2: reading magic: %w", err)
	}
	if string(magic) != Magic {
		return nil, fmt.Errorf("clog2: bad magic %q (not a CLOG-2 file?)", magic)
	}
	var nranks int32
	if err := binary.Read(br, binary.LittleEndian, &nranks); err != nil {
		return nil, fmt.Errorf("clog2: reading rank count: %w", err)
	}
	if nranks < 1 || nranks > 1<<20 {
		return nil, fmt.Errorf("clog2: implausible rank count %d", nranks)
	}
	f := &File{NumRanks: int(nranks)}
	d := &decoder{r: br}
	partial := func(err error) (*File, error) {
		return nil, &partialError{file: f, err: err}
	}
	for {
		// Either a block header (rank, nrec) or the end-log marker.
		t, err := d.peekType()
		if err != nil {
			return partial(err)
		}
		if t == RecEndLog {
			d.getByte()
			if d.err != nil {
				return partial(d.err)
			}
			return f, nil
		}
		rank := d.get32() - 1 // undo the +1 wire shift
		n := d.get32()
		if d.err != nil {
			return partial(d.err)
		}
		if n < 0 || n > 1<<28 {
			return partial(fmt.Errorf("clog2: implausible record count %d", n))
		}
		b := Block{Rank: rank, Records: make([]Record, 0, n)}
		for i := int32(0); i < n; i++ {
			rec, err := d.readRecord()
			if err != nil {
				return partial(err)
			}
			b.Records = append(b.Records, rec)
		}
		if tt := RecType(d.getByte()); d.err == nil && tt != RecEndBlock {
			return partial(fmt.Errorf("clog2: block for rank %d not terminated (got %v)", rank, tt))
		}
		if d.err != nil {
			return partial(d.err)
		}
		f.Blocks = append(f.Blocks, b)
	}
}

// partialError carries the complete blocks parsed before a failure, so
// ReadLenient can salvage torn spill files.
type partialError struct {
	file *File
	err  error
}

func (e *partialError) Error() string { return e.err.Error() }
func (e *partialError) Unwrap() error { return e.err }

type decoder struct {
	r   *bufio.Reader
	err error
}

// peekType distinguishes an end-log byte from a block header. A block
// header begins with a rank int32 whose first byte could collide with
// RecEndLog (0); disambiguate by peeking 1 byte and treating exactly the
// single-byte RecEndLog value followed by EOF-or-anything as end only when
// the next 8 bytes cannot form a header. To avoid that ambiguity entirely,
// block ranks are written shifted by +1 on the wire.
func (d *decoder) peekType() (RecType, error) {
	b, err := d.r.Peek(1)
	if err != nil {
		return 0, fmt.Errorf("clog2: truncated file: %w", err)
	}
	if b[0] == uint8(RecEndLog) {
		return RecEndLog, nil
	}
	return RecEndBlock, nil // "not end-log"; caller reads the header
}

func (d *decoder) readRecord() (Record, error) {
	var r Record
	r.Type = RecType(d.getByte())
	r.Time = d.getF64()
	r.Rank = d.get32()
	switch r.Type {
	case RecStateDef:
		r.ID = d.get32()
		r.Aux1 = d.get32()
		r.Aux2 = d.get32()
		r.Color = d.getStr()
		r.Name = d.getStr()
	case RecEventDef:
		r.ID = d.get32()
		r.Color = d.getStr()
		r.Name = d.getStr()
	case RecConstDef:
		r.ID = d.get32()
		r.Aux1 = d.get32()
		r.Name = d.getStr()
	case RecBareEvt:
		r.ID = d.get32()
	case RecCargoEvt:
		r.ID = d.get32()
		r.Text = d.getStr()
	case RecMsgEvt:
		r.Dir = d.getByte()
		r.Aux1 = d.get32()
		r.Aux2 = d.get32()
		r.Aux3 = d.get32()
	case RecTimeShift:
		r.Shift = d.getF64()
	case RecSrcLoc:
		r.Aux1 = d.get32()
		r.Text = d.getStr()
	default:
		if d.err == nil {
			d.err = fmt.Errorf("clog2: unknown record type %d", r.Type)
		}
	}
	return r, d.err
}

func (d *decoder) getByte() uint8 {
	if d.err != nil {
		return 0
	}
	b, err := d.r.ReadByte()
	if err != nil {
		d.err = fmt.Errorf("clog2: truncated file: %w", err)
		return 0
	}
	return b
}

func (d *decoder) get32() int32 {
	if d.err != nil {
		return 0
	}
	var buf [4]byte
	if _, err := io.ReadFull(d.r, buf[:]); err != nil {
		d.err = fmt.Errorf("clog2: truncated file: %w", err)
		return 0
	}
	return int32(binary.LittleEndian.Uint32(buf[:]))
}

func (d *decoder) getF64() float64 {
	if d.err != nil {
		return 0
	}
	var buf [8]byte
	if _, err := io.ReadFull(d.r, buf[:]); err != nil {
		d.err = fmt.Errorf("clog2: truncated file: %w", err)
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
}

func (d *decoder) getStr() string {
	if d.err != nil {
		return ""
	}
	var buf [2]byte
	if _, err := io.ReadFull(d.r, buf[:]); err != nil {
		d.err = fmt.Errorf("clog2: truncated file: %w", err)
		return ""
	}
	n := binary.LittleEndian.Uint16(buf[:])
	s := make([]byte, n)
	if _, err := io.ReadFull(d.r, s); err != nil {
		d.err = fmt.Errorf("clog2: truncated file: %w", err)
		return ""
	}
	return string(s)
}
