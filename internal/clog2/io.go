package clog2

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Magic begins every file; the trailing digits are this format's version.
const Magic = "CLOG-R0260"

// HeaderSize is the byte length of the file header (magic plus the
// little-endian int32 rank count): the offset of the first block.
const HeaderSize = len(Magic) + 4

// Writer emits a CLOG-2 file incrementally: a header, then blocks of
// records, then Close writes the end-log marker.
type Writer struct {
	w      *bufio.Writer
	closed bool
	err    error
	// off counts the bytes emitted so far (including any still sitting in
	// the bufio buffer): the byte offset the next write lands at, which is
	// what an index sidecar records as a block's position.
	off int64
	// num is the fixed-size field scratch buffer. Local [N]byte arrays
	// escape to the heap here (they cross the io.Writer interface), which
	// costs an allocation per record field; a struct field does not.
	num [8]byte
}

// NewWriter writes the file header for numRanks ranks onto w.
func NewWriter(w io.Writer, numRanks int) (*Writer, error) {
	if numRanks < 1 {
		return nil, fmt.Errorf("clog2: writer with %d ranks", numRanks)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(Magic); err != nil {
		return nil, err
	}
	if err := binary.Write(bw, binary.LittleEndian, int32(numRanks)); err != nil {
		return nil, err
	}
	return &Writer{w: bw, off: int64(HeaderSize)}, nil
}

// Offset returns the byte offset the next write will land at, counting
// from the start of the file (the header is HeaderSize bytes). Calling it
// immediately before WriteBlock gives the block's start offset;
// immediately after, the offset one past its end-block marker.
func (w *Writer) Offset() int64 { return w.off }

// WriteBlock appends one rank's block of records.
func (w *Writer) WriteBlock(rank int32, recs []Record) error {
	return w.WriteBlockChunks(rank, recs)
}

// WriteBlockChunks appends one rank block whose records arrive in
// consecutive chunks (as handed out by the mpe record arenas), producing
// exactly the bytes WriteBlock would for the concatenated records: one
// header carrying the total count, every record in chunk order, then the
// end-block marker.
func (w *Writer) WriteBlockChunks(rank int32, chunks ...[]Record) error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return fmt.Errorf("clog2: write after Close")
	}
	if rank < 0 {
		return fmt.Errorf("clog2: block with negative rank %d", rank)
	}
	total := 0
	for _, c := range chunks {
		total += len(c)
	}
	// Ranks are shifted by +1 on the wire so a block header's first byte
	// can never equal the RecEndLog marker (see decoder.peekType).
	w.put32(rank + 1)
	w.put32(int32(total))
	for _, c := range chunks {
		for i := range c {
			w.writeRecord(&c[i])
		}
	}
	w.putType(RecEndBlock)
	return w.err
}

// Flush pushes buffered bytes to the underlying writer without closing
// the log: the write-through mode used by the abort-surviving spill files.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// Close writes the end-log marker and flushes. The underlying writer is
// not closed.
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return nil
	}
	w.closed = true
	w.putType(RecEndLog)
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

func (w *Writer) writeRecord(r *Record) {
	w.putType(r.Type)
	w.putF64(r.Time)
	w.put32(r.Rank)
	switch r.Type {
	case RecStateDef:
		w.put32(r.ID)
		w.put32(r.Aux1)
		w.put32(r.Aux2)
		w.putStr(r.Color)
		w.putStr(r.Name)
	case RecEventDef:
		w.put32(r.ID)
		w.putStr(r.Color)
		w.putStr(r.Name)
	case RecConstDef:
		w.put32(r.ID)
		w.put32(r.Aux1)
		w.putStr(r.Name)
	case RecBareEvt:
		w.put32(r.ID)
	case RecCargoEvt:
		w.put32(r.ID)
		w.putBytes(r.CargoBytes())
	case RecMsgEvt:
		w.putByte(r.Dir)
		w.put32(r.Aux1)
		w.put32(r.Aux2)
		w.put32(r.Aux3)
	case RecTimeShift:
		w.putF64(r.Shift)
	case RecSrcLoc:
		w.put32(r.Aux1)
		w.putStr(r.Text)
	default:
		w.fail(fmt.Errorf("clog2: cannot write record type %v", r.Type))
	}
}

func (w *Writer) fail(err error) {
	if w.err == nil {
		w.err = err
	}
}

func (w *Writer) putType(t RecType) { w.putByte(uint8(t)) }

func (w *Writer) putByte(b uint8) {
	if w.err != nil {
		return
	}
	if err := w.w.WriteByte(b); err != nil {
		w.fail(err)
		return
	}
	w.off++
}

func (w *Writer) put32(v int32) {
	if w.err != nil {
		return
	}
	binary.LittleEndian.PutUint32(w.num[:4], uint32(v))
	if _, err := w.w.Write(w.num[:4]); err != nil {
		w.fail(err)
		return
	}
	w.off += 4
}

func (w *Writer) putF64(v float64) {
	if w.err != nil {
		return
	}
	binary.LittleEndian.PutUint64(w.num[:8], math.Float64bits(v))
	if _, err := w.w.Write(w.num[:8]); err != nil {
		w.fail(err)
		return
	}
	w.off += 8
}

func (w *Writer) putBytes(b []byte) {
	if w.err != nil {
		return
	}
	if len(b) > math.MaxUint16 {
		w.fail(fmt.Errorf("clog2: string of %d bytes exceeds format limit", len(b)))
		return
	}
	binary.LittleEndian.PutUint16(w.num[:2], uint16(len(b)))
	if _, err := w.w.Write(w.num[:2]); err != nil {
		w.fail(err)
		return
	}
	if _, err := w.w.Write(b); err != nil {
		w.fail(err)
		return
	}
	w.off += 2 + int64(len(b))
}

func (w *Writer) putStr(s string) {
	if w.err != nil {
		return
	}
	if len(s) > math.MaxUint16 {
		w.fail(fmt.Errorf("clog2: string of %d bytes exceeds format limit", len(s)))
		return
	}
	binary.LittleEndian.PutUint16(w.num[:2], uint16(len(s)))
	if _, err := w.w.Write(w.num[:2]); err != nil {
		w.fail(err)
		return
	}
	if _, err := w.w.WriteString(s); err != nil {
		w.fail(err)
		return
	}
	w.off += 2 + int64(len(s))
}

// ReadLenient parses as much of a CLOG-2 stream as possible: complete
// blocks are returned even when the end-log marker is missing or the tail
// is torn mid-block, as happens to spill files from an aborted program.
// The second result reports whether the file was complete.
func ReadLenient(r io.Reader) (*File, bool, error) {
	f, err := Read(r)
	if err == nil {
		return f, true, nil
	}
	pf, ok := err.(*partialError)
	if !ok {
		return nil, false, err
	}
	return pf.file, false, nil
}

// maxRecordPrealloc caps the record-slice capacity reserved from a block
// header's declared count, so a corrupt or hostile header cannot force a
// multi-gigabyte allocation before a single record has been decoded.
const maxRecordPrealloc = 4096

// BlockReader streams a CLOG-2 file one block at a time, without ever
// materializing File.Blocks: the converter's partitioning phase and the
// end-of-run merge both consume blocks as they arrive. Next returns io.EOF
// after the end-log marker.
type BlockReader struct {
	d        *decoder
	numRanks int
	done     bool
	// rs is the underlying seekable source when the reader was opened via
	// NewBlockReaderAt; nil for plain streams (SeekTo then fails).
	rs io.ReadSeeker
	// lastStart/lastEnd bracket the block most recently returned by
	// NextReuse: [lastStart, lastEnd) are its bytes in the file, header
	// through end-block marker inclusive.
	lastStart, lastEnd int64
}

// NewBlockReader reads the file header from r and returns a streaming
// block iterator.
func NewBlockReader(r io.Reader) (*BlockReader, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("clog2: reading magic: %w", err)
	}
	if string(magic) != Magic {
		return nil, fmt.Errorf("clog2: bad magic %q (not a CLOG-2 file?)", magic)
	}
	var nranks int32
	if err := binary.Read(br, binary.LittleEndian, &nranks); err != nil {
		return nil, fmt.Errorf("clog2: reading rank count: %w", err)
	}
	if nranks < 1 || nranks > 1<<20 {
		return nil, fmt.Errorf("clog2: implausible rank count %d", nranks)
	}
	return &BlockReader{d: &decoder{r: br, off: int64(HeaderSize)}, numRanks: int(nranks)}, nil
}

// NewBlockReaderAt opens a block iterator positioned at offset in rs — a
// block-start byte offset previously reported by BlockBounds or recorded
// in an index sidecar. The file header is not re-read or re-validated
// (the caller brings numRanks, typically from the index); the returned
// reader supports SeekTo for jumping between blocks.
func NewBlockReaderAt(rs io.ReadSeeker, offset int64, numRanks int) (*BlockReader, error) {
	if numRanks < 1 || numRanks > 1<<20 {
		return nil, fmt.Errorf("clog2: implausible rank count %d", numRanks)
	}
	if offset < int64(HeaderSize) {
		return nil, fmt.Errorf("clog2: block offset %d inside the file header", offset)
	}
	if _, err := rs.Seek(offset, io.SeekStart); err != nil {
		return nil, err
	}
	return &BlockReader{
		d:        &decoder{r: bufio.NewReader(rs), off: offset},
		numRanks: numRanks,
		rs:       rs,
	}, nil
}

// SeekTo repositions the reader at a block-start offset, discarding any
// buffered bytes. Only readers opened with NewBlockReaderAt are seekable.
func (br *BlockReader) SeekTo(offset int64) error {
	if br.rs == nil {
		return fmt.Errorf("clog2: block reader over a plain stream is not seekable")
	}
	if offset < int64(HeaderSize) {
		return fmt.Errorf("clog2: block offset %d inside the file header", offset)
	}
	if _, err := br.rs.Seek(offset, io.SeekStart); err != nil {
		return err
	}
	br.d.r.Reset(br.rs)
	br.d.off = offset
	br.d.err = nil
	br.done = false
	return nil
}

// NumRanks returns the rank count from the file header.
func (br *BlockReader) NumRanks() int { return br.numRanks }

// BlockBounds returns the byte range [start, end) of the block most
// recently returned by Next/NextReuse: its header through its end-block
// marker. Zero before the first successful Next.
func (br *BlockReader) BlockBounds() (start, end int64) { return br.lastStart, br.lastEnd }

// Next returns the next block, or io.EOF after the end-log marker. The
// returned Records slice is freshly allocated and owned by the caller.
func (br *BlockReader) Next() (Block, error) { return br.NextReuse(nil) }

// NextReuse is Next reusing buf's backing array for the record slice (buf
// may be nil). The returned Block.Records aliases buf and is only valid
// until the next NextReuse call with the same buffer — the zero-allocation
// path the merge loop uses.
func (br *BlockReader) NextReuse(buf []Record) (Block, error) {
	if br.done {
		return Block{}, io.EOF
	}
	d := br.d
	// Either a block header (rank, nrec) or the end-log marker.
	t, err := d.peekType()
	if err != nil {
		return Block{}, err
	}
	start := d.off
	if t == RecEndLog {
		d.getByte()
		if d.err != nil {
			return Block{}, d.err
		}
		br.done = true
		return Block{}, io.EOF
	}
	rank := d.get32() - 1 // undo the +1 wire shift
	n := d.get32()
	if d.err != nil {
		return Block{}, d.err
	}
	if n < 0 || n > 1<<28 {
		return Block{}, fmt.Errorf("clog2: implausible record count %d", n)
	}
	recs := buf[:0]
	if cap(recs) == 0 {
		prealloc := n
		if prealloc > maxRecordPrealloc {
			prealloc = maxRecordPrealloc
		}
		recs = make([]Record, 0, prealloc)
	}
	b := Block{Rank: rank}
	for i := int32(0); i < n; i++ {
		rec, err := d.readRecord()
		if err != nil {
			return Block{}, err
		}
		recs = append(recs, rec)
	}
	if tt := RecType(d.getByte()); d.err == nil && tt != RecEndBlock {
		return Block{}, fmt.Errorf("clog2: block for rank %d not terminated (got %v)", rank, tt)
	}
	if d.err != nil {
		return Block{}, d.err
	}
	br.lastStart, br.lastEnd = start, d.off
	b.Records = recs
	return b, nil
}

// Read parses a complete CLOG-2 file.
func Read(r io.Reader) (*File, error) {
	br, err := NewBlockReader(r)
	if err != nil {
		return nil, err
	}
	f := &File{NumRanks: br.NumRanks()}
	for {
		b, err := br.Next()
		if err == io.EOF {
			return f, nil
		}
		if err != nil {
			return nil, &partialError{file: f, err: err}
		}
		f.Blocks = append(f.Blocks, b)
	}
}

// partialError carries the complete blocks parsed before a failure, so
// ReadLenient can salvage torn spill files.
type partialError struct {
	file *File
	err  error
}

func (e *partialError) Error() string { return e.err.Error() }
func (e *partialError) Unwrap() error { return e.err }

type decoder struct {
	r   *bufio.Reader
	err error
	// off is the byte offset of the next unread byte, counted from the
	// start of the file — the source of block-bounds reporting.
	off int64
	// num is the fixed-size field scratch buffer: local [N]byte arrays
	// escape to the heap when passed through io.ReadFull, costing an
	// allocation per record field; a struct field does not.
	num [8]byte
	// scratch is the reusable string-read buffer: getStr decodes into it
	// and allocates only the final string, so record decoding costs one
	// allocation per non-empty string instead of two.
	scratch []byte
	// cargo is the cargo-read staging buffer: reading straight into
	// r.Cargo[:n] would slice the caller's record through the io.Reader
	// interface and force the whole Record to escape, one heap
	// allocation per cargo record on the merge path.
	cargo [MaxCargo]byte
}

// peekType distinguishes an end-log byte from a block header. A block
// header begins with a rank int32 whose first byte could collide with
// RecEndLog (0); disambiguate by peeking 1 byte and treating exactly the
// single-byte RecEndLog value followed by EOF-or-anything as end only when
// the next 8 bytes cannot form a header. To avoid that ambiguity entirely,
// block ranks are written shifted by +1 on the wire.
func (d *decoder) peekType() (RecType, error) {
	b, err := d.r.Peek(1)
	if err != nil {
		return 0, fmt.Errorf("clog2: truncated file: %w", err)
	}
	if b[0] == uint8(RecEndLog) {
		return RecEndLog, nil
	}
	return RecEndBlock, nil // "not end-log"; caller reads the header
}

func (d *decoder) readRecord() (Record, error) {
	var r Record
	r.Type = RecType(d.getByte())
	r.Time = d.getF64()
	r.Rank = d.get32()
	switch r.Type {
	case RecStateDef:
		r.ID = d.get32()
		r.Aux1 = d.get32()
		r.Aux2 = d.get32()
		r.Color = d.getStr()
		r.Name = d.getStr()
	case RecEventDef:
		r.ID = d.get32()
		r.Color = d.getStr()
		r.Name = d.getStr()
	case RecConstDef:
		r.ID = d.get32()
		r.Aux1 = d.get32()
		r.Name = d.getStr()
	case RecBareEvt:
		r.ID = d.get32()
	case RecCargoEvt:
		r.ID = d.get32()
		d.getCargo(&r)
	case RecMsgEvt:
		r.Dir = d.getByte()
		r.Aux1 = d.get32()
		r.Aux2 = d.get32()
		r.Aux3 = d.get32()
	case RecTimeShift:
		r.Shift = d.getF64()
	case RecSrcLoc:
		r.Aux1 = d.get32()
		r.Text = d.getStr()
	default:
		if d.err == nil {
			d.err = fmt.Errorf("clog2: unknown record type %d", r.Type)
		}
	}
	return r, d.err
}

func (d *decoder) getByte() uint8 {
	if d.err != nil {
		return 0
	}
	b, err := d.r.ReadByte()
	if err != nil {
		d.err = fmt.Errorf("clog2: truncated file: %w", err)
		return 0
	}
	d.off++
	return b
}

func (d *decoder) get32() int32 {
	if d.err != nil {
		return 0
	}
	if _, err := io.ReadFull(d.r, d.num[:4]); err != nil {
		d.err = fmt.Errorf("clog2: truncated file: %w", err)
		return 0
	}
	d.off += 4
	return int32(binary.LittleEndian.Uint32(d.num[:4]))
}

func (d *decoder) getF64() float64 {
	if d.err != nil {
		return 0
	}
	if _, err := io.ReadFull(d.r, d.num[:8]); err != nil {
		d.err = fmt.Errorf("clog2: truncated file: %w", err)
		return 0
	}
	d.off += 8
	return math.Float64frombits(binary.LittleEndian.Uint64(d.num[:8]))
}

// getCargo reads a length-prefixed cargo string straight into the
// record's fixed buffer — no per-record string allocation. Our writer
// never emits more than MaxCargo bytes, but a hostile file may declare
// more; the excess is consumed and dropped.
func (d *decoder) getCargo(r *Record) {
	if d.err != nil {
		return
	}
	if _, err := io.ReadFull(d.r, d.num[:2]); err != nil {
		d.err = fmt.Errorf("clog2: truncated file: %w", err)
		return
	}
	n := int(binary.LittleEndian.Uint16(d.num[:2]))
	keep := n
	if keep > MaxCargo {
		keep = MaxCargo
	}
	if _, err := io.ReadFull(d.r, d.cargo[:keep]); err != nil {
		d.err = fmt.Errorf("clog2: truncated file: %w", err)
		return
	}
	copy(r.Cargo[:], d.cargo[:keep])
	r.CargoLen = uint8(keep)
	if n > keep {
		if _, err := d.r.Discard(n - keep); err != nil {
			d.err = fmt.Errorf("clog2: truncated file: %w", err)
			return
		}
	}
	d.off += 2 + int64(n)
}

func (d *decoder) getStr() string {
	if d.err != nil {
		return ""
	}
	if _, err := io.ReadFull(d.r, d.num[:2]); err != nil {
		d.err = fmt.Errorf("clog2: truncated file: %w", err)
		return ""
	}
	n := int(binary.LittleEndian.Uint16(d.num[:2]))
	if n == 0 {
		d.off += 2
		return ""
	}
	if cap(d.scratch) < n {
		d.scratch = make([]byte, n)
	}
	s := d.scratch[:n]
	if _, err := io.ReadFull(d.r, s); err != nil {
		d.err = fmt.Errorf("clog2: truncated file: %w", err)
		return ""
	}
	d.off += 2 + int64(n)
	return string(s)
}
