package clog2

import (
	"bytes"
	"io"
	"reflect"
	"testing"
)

// offsetsLog writes a three-rank log and returns its bytes.
func offsetsLog(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Offset(); got != int64(HeaderSize) {
		t.Fatalf("fresh writer offset = %d, want %d", got, HeaderSize)
	}
	for rank := int32(0); rank < 3; rank++ {
		recs := []Record{
			{Type: RecStateDef, ID: 1, Aux1: 2, Aux2: 3, Name: "A", Color: "red"},
			{Type: RecBareEvt, Rank: rank, Time: float64(rank), ID: 2},
			{Type: RecMsgEvt, Rank: rank, Time: float64(rank) + 0.5,
				Dir: DirSend, Aux1: (rank + 1) % 3, Aux2: 4, Aux3: 32},
			{Type: RecSrcLoc, Rank: rank, Aux1: 17, Text: "file.go"},
		}
		if err := w.WriteBlock(rank, recs); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if got := w.Offset(); got != int64(buf.Len()) {
		t.Fatalf("writer offset = %d after close, file is %d bytes", got, buf.Len())
	}
	return buf.Bytes()
}

// The writer's running offset, the reader's block bounds, and the
// actual bytes must all agree: every reported [start, end) slice must
// re-decode to exactly the block it brackets.
func TestBlockBoundsBracketBlocks(t *testing.T) {
	raw := offsetsLog(t)
	br, err := NewBlockReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	type span struct {
		start, end int64
		block      Block
	}
	var spans []span
	prevEnd := int64(HeaderSize)
	for {
		b, err := br.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		start, end := br.BlockBounds()
		if start != prevEnd {
			t.Fatalf("block starts at %d, previous ended at %d", start, prevEnd)
		}
		if end <= start || end > int64(len(raw)) {
			t.Fatalf("block bounds [%d, %d) out of file [0, %d)", start, end, len(raw))
		}
		spans = append(spans, span{start, end, b})
		prevEnd = end
	}
	if len(spans) != 3 {
		t.Fatalf("decoded %d blocks, want 3", len(spans))
	}

	// Re-open each block independently at its recorded offset.
	for i, sp := range spans {
		at, err := NewBlockReaderAt(bytes.NewReader(raw), sp.start, 3)
		if err != nil {
			t.Fatal(err)
		}
		b, err := at.Next()
		if err != nil {
			t.Fatalf("block %d at offset %d: %v", i, sp.start, err)
		}
		if !reflect.DeepEqual(b, sp.block) {
			t.Errorf("block %d re-read at offset %d differs:\n got %+v\nwant %+v", i, sp.start, b, sp.block)
		}
		if s, e := at.BlockBounds(); s != sp.start || e != sp.end {
			t.Errorf("block %d bounds after seek-read = [%d, %d), want [%d, %d)", i, s, e, sp.start, sp.end)
		}
	}

	// SeekTo jumps around out of order on one reader.
	at, err := NewBlockReaderAt(bytes.NewReader(raw), spans[2].start, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{2, 0, 1, 0, 2} {
		if err := at.SeekTo(spans[i].start); err != nil {
			t.Fatal(err)
		}
		b, err := at.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(b, spans[i].block) {
			t.Errorf("seek to block %d decoded the wrong block: %+v", i, b)
		}
	}
}

func TestSeekGuards(t *testing.T) {
	raw := offsetsLog(t)
	// A plain stream reader is not seekable.
	br, err := NewBlockReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if err := br.SeekTo(int64(HeaderSize)); err == nil {
		t.Error("SeekTo on a streaming reader did not error")
	}
	// Offsets inside the header are rejected.
	if _, err := NewBlockReaderAt(bytes.NewReader(raw), 0, 3); err == nil {
		t.Error("NewBlockReaderAt(0) did not error")
	}
	at, err := NewBlockReaderAt(bytes.NewReader(raw), int64(HeaderSize), 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := at.SeekTo(1); err == nil {
		t.Error("SeekTo(1) did not error")
	}
	// Absurd rank counts are rejected (no header is read to check them).
	if _, err := NewBlockReaderAt(bytes.NewReader(raw), int64(HeaderSize), 0); err == nil {
		t.Error("NewBlockReaderAt with 0 ranks did not error")
	}
	// Seeking into the middle of a record decodes garbage or errors, but
	// never panics.
	if err := at.SeekTo(int64(HeaderSize) + 3); err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := at.Next(); err != nil {
			break
		}
	}
}
