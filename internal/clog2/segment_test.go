package clog2

import (
	"bytes"
	"reflect"
	"testing"
)

// segRecords builds a small record batch shaped like real spill traffic.
func segRecords(rank int32, n int, base float64) []Record {
	recs := make([]Record, 0, n)
	for i := 0; i < n; i++ {
		r := Record{Type: RecCargoEvt, Time: base + float64(i), Rank: rank, ID: 2}
		r.SetCargo("line: x.go:42")
		if i%3 == 2 {
			r = Record{Type: RecMsgEvt, Time: base + float64(i), Rank: rank,
				Dir: DirSend, Aux1: 1, Aux2: 7, Aux3: 64}
		}
		recs = append(recs, r)
	}
	return recs
}

// buildSegmentFile frames nseg batches for rank into one spill image and
// returns the file bytes plus each segment's payload for comparison.
func buildSegmentFile(t testing.TB, rank int32, nseg int) ([]byte, [][]byte) {
	t.Helper()
	var file []byte
	var payloads [][]byte
	for s := 0; s < nseg; s++ {
		var buf bytes.Buffer
		if err := EncodeBlockPayload(&buf, rank, segRecords(rank, 3, float64(s)*10)); err != nil {
			t.Fatal(err)
		}
		p := append([]byte(nil), buf.Bytes()...)
		payloads = append(payloads, p)
		file = AppendSegment(file, rank, uint64(s), p)
	}
	return file, payloads
}

func TestSegmentRoundTrip(t *testing.T) {
	file, payloads := buildSegmentFile(t, 3, 5)
	segs, stats := ScanSegments(file)
	if !stats.Clean() || stats.TailTorn {
		t.Fatalf("clean file scanned dirty: %+v", stats)
	}
	if len(segs) != 5 {
		t.Fatalf("recovered %d segments, want 5", len(segs))
	}
	for i, s := range segs {
		if s.Rank != 3 || s.Seq != uint64(i) {
			t.Fatalf("segment %d: rank=%d seq=%d", i, s.Rank, s.Seq)
		}
		if !bytes.Equal(s.Payload, payloads[i]) {
			t.Fatalf("segment %d payload differs", i)
		}
		b, err := DecodeBlockPayload(s.Payload)
		if err != nil {
			t.Fatalf("segment %d payload undecodable: %v", i, err)
		}
		if b.Rank != 3 || len(b.Records) != 3 {
			t.Fatalf("segment %d decoded block: rank=%d n=%d", i, b.Rank, len(b.Records))
		}
		if !reflect.DeepEqual(b.Records, segRecords(3, 3, float64(i)*10)) {
			t.Fatalf("segment %d records differ", i)
		}
	}
}

// FinalizeSegmentHeader (the spill hot path's copy-free framing) must
// produce the byte-identical frame AppendSegment does.
func TestFinalizeSegmentHeaderMatchesAppend(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeBlockPayload(&buf, 5, segRecords(5, 3, 2.0)); err != nil {
		t.Fatal(err)
	}
	payload := buf.Bytes()
	want := AppendSegment(nil, 5, 77, payload)
	got := make([]byte, SegHeaderSize+len(payload))
	copy(got[SegHeaderSize:], payload)
	FinalizeSegmentHeader(got, 5, 77)
	if !bytes.Equal(got, want) {
		t.Fatalf("frames differ:\n got %x\nwant %x", got, want)
	}
}

// The acceptance property at the scanner level: flipping any single byte
// of a v2 spill loses at most the one segment holding that byte — every
// other segment, including the whole tail of the file, still scans.
func TestSegmentSingleByteFlipSweep(t *testing.T) {
	const nseg = 6
	file, _ := buildSegmentFile(t, 1, nseg)
	pristine, _ := ScanSegments(file)
	if len(pristine) != nseg {
		t.Fatalf("pristine scan found %d segments", len(pristine))
	}
	// Map each byte offset to the segment that owns it.
	owner := make([]int, len(file))
	for i := range owner {
		owner[i] = -1
	}
	for idx, s := range pristine {
		end := int(s.Offset) + SegHeaderSize + len(s.Payload)
		for i := int(s.Offset); i < end; i++ {
			owner[i] = idx
		}
	}
	for off := 0; off < len(file); off++ {
		mut := append([]byte(nil), file...)
		mut[off] ^= 0xA5
		segs, stats := ScanSegments(mut)
		got := map[uint64]bool{}
		for _, s := range segs {
			got[s.Seq] = true
		}
		lost := 0
		for seq := 0; seq < nseg; seq++ {
			if !got[uint64(seq)] {
				lost++
				if seq != owner[off] {
					t.Fatalf("flip at %d (segment %d) lost segment %d", off, owner[off], seq)
				}
			}
		}
		if lost > 1 {
			t.Fatalf("flip at %d lost %d segments", off, lost)
		}
		// A flip always breaks its segment's CRC (header or payload), so
		// exactly one segment is lost and its bytes are quarantined —
		// unless the flip forged another valid frame, which the CRC makes
		// effectively impossible.
		if lost != 1 {
			t.Fatalf("flip at %d lost %d segments, want exactly 1", off, lost)
		}
		if stats.BytesQuarantined == 0 {
			t.Fatalf("flip at %d quarantined nothing", off)
		}
		// The recovered segments must be byte-identical to the pristine
		// ones.
		for _, s := range segs {
			if !bytes.Equal(s.Payload, pristine[s.Seq].Payload) {
				t.Fatalf("flip at %d altered surviving segment %d", off, s.Seq)
			}
		}
	}
}

// Truncation at any offset — the SIGKILL torn-tail case — keeps every
// segment that fits and reports the ragged remainder as a torn tail.
func TestSegmentTruncationSweep(t *testing.T) {
	const nseg = 4
	file, _ := buildSegmentFile(t, 0, nseg)
	pristine, _ := ScanSegments(file)
	for cut := 0; cut <= len(file); cut++ {
		segs, stats := ScanSegments(file[:cut])
		want := 0
		for _, s := range pristine {
			if int(s.Offset)+SegHeaderSize+len(s.Payload) <= cut {
				want++
			}
		}
		if len(segs) != want {
			t.Fatalf("cut at %d: recovered %d segments, want %d", cut, len(segs), want)
		}
		partial := cut > 0 && want < nseg && int(pristine[want].Offset) < cut
		if partial && !stats.TailTorn {
			t.Fatalf("cut at %d inside segment %d not reported as torn tail", cut, want)
		}
		if !partial && stats.TailTorn {
			t.Fatalf("cut at %d on a segment boundary reported torn", cut)
		}
	}
}

// Garbage between segments — and garbage that itself contains marker
// bytes — is skipped, with the segments on both sides recovered.
func TestSegmentResyncAcrossGarbage(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeBlockPayload(&buf, 2, segRecords(2, 4, 0)); err != nil {
		t.Fatal(err)
	}
	payload := buf.Bytes()
	garbage := append([]byte("torn write debris"), segMarker[:]...)
	garbage = append(garbage, 0xF8, 0xF8, 0x00)

	var file []byte
	file = AppendSegment(file, 2, 0, payload)
	file = append(file, garbage...)
	file = AppendSegment(file, 2, 1, payload)
	file = append(file, garbage...)

	segs, stats := ScanSegments(file)
	if len(segs) != 2 {
		t.Fatalf("recovered %d segments, want 2", len(segs))
	}
	if segs[0].Seq != 0 || segs[1].Seq != 1 {
		t.Fatalf("bad seqs: %d %d", segs[0].Seq, segs[1].Seq)
	}
	if stats.BytesQuarantined != int64(2*len(garbage)) {
		t.Fatalf("quarantined %d bytes, want %d", stats.BytesQuarantined, 2*len(garbage))
	}
	if stats.DamagedRegions != 2 {
		t.Fatalf("damaged regions = %d, want 2", stats.DamagedRegions)
	}
	if !stats.TailTorn {
		t.Fatal("trailing garbage not reported as torn tail")
	}
}

func TestScanSegmentsDegenerate(t *testing.T) {
	if segs, stats := ScanSegments(nil); len(segs) != 0 || !stats.Clean() {
		t.Fatalf("empty scan: %d segs, %+v", len(segs), stats)
	}
	junk := bytes.Repeat([]byte{0xF8, 'S', 'G'}, 100)
	segs, stats := ScanSegments(junk)
	if len(segs) != 0 {
		t.Fatalf("marker-dense junk yielded %d segments", len(segs))
	}
	if stats.BytesQuarantined != int64(len(junk)) || !stats.TailTorn {
		t.Fatalf("junk accounting: %+v", stats)
	}
	// A header claiming a payload longer than the file must not validate.
	p := []byte("payload")
	seg := AppendSegment(nil, 0, 0, p)
	if segs, _ := ScanSegments(seg[:len(seg)-1]); len(segs) != 0 {
		t.Fatal("truncated payload still validated")
	}
	// An unknown version must not validate even with a correct CRC layout.
	bad := AppendSegment(nil, 0, 0, p)
	bad[4] = 3
	if segs, _ := ScanSegments(bad); len(segs) != 0 {
		t.Fatal("future-version segment validated as v2")
	}
}

func TestDetectSpillFormat(t *testing.T) {
	var v1 bytes.Buffer
	w, err := NewWriter(&v1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteBlock(0, segRecords(0, 2, 0)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if got := DetectSpillFormat(v1.Bytes()); got != SpillFormatV1 {
		t.Fatalf("v1 detected as %d", got)
	}
	v2, _ := buildSegmentFile(t, 0, 2)
	if got := DetectSpillFormat(v2); got != SpillFormatV2 {
		t.Fatalf("v2 detected as %d", got)
	}
	if got := DetectSpillFormat([]byte("not a spill at all")); got != SpillFormatUnknown {
		t.Fatalf("garbage detected as %d", got)
	}
	if got := DetectSpillFormat(nil); got != SpillFormatUnknown {
		t.Fatalf("empty detected as %d", got)
	}
}

func TestDecodeBlockPayloadRejects(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeBlockPayload(&buf, 1, segRecords(1, 2, 0)); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	if _, err := DecodeBlockPayload(good); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeBlockPayload(good[:len(good)-2]); err == nil {
		t.Fatal("truncated payload decoded")
	}
	if _, err := DecodeBlockPayload(append(append([]byte(nil), good...), 0x00)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	if _, err := DecodeBlockPayload(nil); err == nil {
		t.Fatal("empty payload decoded")
	}
}
