package clog2

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Spill segment framing, version 2.
//
// A v1 spill file is a raw CLOG-2 stream: the per-record write-through
// keeps it abort-proof against clean truncation, but a single torn write
// or flipped byte mid-file desynchronizes the decoder and silently
// discards everything after it — exactly the records needed when
// debugging a dirty death. v2 wraps every spill write in a
// self-synchronizing segment:
//
//	offset size  field
//	0      4     marker  0xF8 'S' 'G' '2'
//	4      1     version (SegVersion)
//	5      4     rank    (int32 LE)
//	9      8     seq     (uint64 LE, per-rank, starts at 0)
//	17     4     payload length (uint32 LE)
//	21     4     CRC-32C over bytes [0,21) + payload
//	25     ...   payload (one bare CLOG-2 block encoding)
//
// The CRC covers header and payload, so any single corrupted byte
// invalidates exactly the segment holding it; the scanner resynchronizes
// on the next marker whose header and CRC validate, so damage never
// cascades past the segment boundary. Per-rank sequence numbers make
// interior losses detectable as gaps.

// SegVersion is the current spill segment format version.
const SegVersion = 2

// SegHeaderSize is the byte size of a segment header (marker through CRC).
const SegHeaderSize = 25

// MaxSegPayload bounds a segment's declared payload length; anything
// larger is treated as corruption (the spill writer frames one batch per
// segment, far below this).
const MaxSegPayload = 1 << 24

// segMarker begins every segment. The lead byte can never start a UTF-8
// rune, making accidental collisions in text-ish payloads unlikely; real
// collisions are rejected by the CRC anyway.
var segMarker = [4]byte{0xF8, 'S', 'G', '2'}

// SegMarker returns the 4-byte segment marker (tests and tools).
func SegMarker() []byte { return append([]byte(nil), segMarker[:]...) }

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// AppendSegment appends one framed segment carrying payload for rank with
// sequence number seq, and returns the extended slice.
func AppendSegment(dst []byte, rank int32, seq uint64, payload []byte) []byte {
	start := len(dst)
	dst = append(dst, segMarker[:]...)
	dst = append(dst, SegVersion)
	var num [8]byte
	binary.LittleEndian.PutUint32(num[:4], uint32(rank))
	dst = append(dst, num[:4]...)
	binary.LittleEndian.PutUint64(num[:8], seq)
	dst = append(dst, num[:8]...)
	binary.LittleEndian.PutUint32(num[:4], uint32(len(payload)))
	dst = append(dst, num[:4]...)
	crc := crc32.Update(0, castagnoli, dst[start:start+21])
	crc = crc32.Update(crc, castagnoli, payload)
	binary.LittleEndian.PutUint32(num[:4], crc)
	dst = append(dst, num[:4]...)
	return append(dst, payload...)
}

// FinalizeSegmentHeader fills in the segment header at the front of
// frame, whose layout must be SegHeaderSize placeholder bytes followed by
// the payload. It is AppendSegment without the payload copy: the spill
// hot path encodes the payload directly behind a reserved header and
// patches the header afterwards, so each spill write moves the record
// bytes exactly once before the write syscall.
func FinalizeSegmentHeader(frame []byte, rank int32, seq uint64) {
	_ = frame[SegHeaderSize-1]
	copy(frame, segMarker[:])
	frame[4] = SegVersion
	binary.LittleEndian.PutUint32(frame[5:9], uint32(rank))
	binary.LittleEndian.PutUint64(frame[9:17], seq)
	binary.LittleEndian.PutUint32(frame[17:21], uint32(len(frame)-SegHeaderSize))
	crc := crc32.Update(0, castagnoli, frame[:21])
	crc = crc32.Update(crc, castagnoli, frame[SegHeaderSize:])
	binary.LittleEndian.PutUint32(frame[21:25], crc)
}

// Segment is one validated frame recovered by ScanSegments.
type Segment struct {
	// Offset is the segment's byte offset in the scanned data.
	Offset int64
	Rank   int32
	Seq    uint64
	// Payload aliases the scanned buffer; it is valid as long as the
	// buffer is.
	Payload []byte
}

// ScanStats is the damage accounting for one scan.
type ScanStats struct {
	// BytesScanned is the total input length.
	BytesScanned int64
	// BytesQuarantined counts bytes that belong to no valid segment —
	// corrupted segments, torn partial writes, and any garbage between
	// markers.
	BytesQuarantined int64
	// DamagedRegions counts contiguous quarantined byte runs.
	DamagedRegions int
	// TailTorn reports that the data ended inside a quarantined region —
	// the signature of a write cut short by SIGKILL or a full disk.
	TailTorn bool
}

// Clean reports a scan with nothing quarantined.
func (s ScanStats) Clean() bool { return s.BytesQuarantined == 0 }

// ScanSegments walks data for valid v2 segments. It is the resync half of
// the corruption-tolerance contract: after any checksum, version or
// length failure it advances to the next candidate marker instead of
// aborting, so one damaged byte quarantines at most the segment holding
// it and never the tail of the file. Returned payloads alias data.
func ScanSegments(data []byte) ([]Segment, ScanStats) {
	var segs []Segment
	stats := ScanStats{BytesScanned: int64(len(data))}
	i := 0
	regionStart := -1 // start of the current quarantined run, -1 when none
	quarantine := func(upto int) {
		if regionStart < 0 {
			return
		}
		stats.BytesQuarantined += int64(upto - regionStart)
		stats.DamagedRegions++
		regionStart = -1
	}
	for i < len(data) {
		// Jump to the next possible marker position.
		j := bytes.Index(data[i:], segMarker[:])
		if j < 0 {
			if regionStart < 0 {
				regionStart = i
			}
			break
		}
		if j > 0 && regionStart < 0 {
			regionStart = i
		}
		i += j
		if seg, ok := validSegmentAt(data, i); ok {
			quarantine(i)
			segs = append(segs, seg)
			i += SegHeaderSize + len(seg.Payload)
			continue
		}
		// A marker without a validating frame behind it: quarantine this
		// byte and keep scanning from the next one.
		if regionStart < 0 {
			regionStart = i
		}
		i++
	}
	if regionStart >= 0 {
		stats.BytesQuarantined += int64(len(data) - regionStart)
		stats.DamagedRegions++
		stats.TailTorn = true
	}
	return segs, stats
}

// validSegmentAt validates the frame starting at data[i] (which is known
// to start with the marker).
func validSegmentAt(data []byte, i int) (Segment, bool) {
	if len(data)-i < SegHeaderSize {
		return Segment{}, false
	}
	h := data[i : i+SegHeaderSize]
	if h[4] != SegVersion {
		return Segment{}, false
	}
	plen := int(binary.LittleEndian.Uint32(h[17:21]))
	if plen > MaxSegPayload || len(data)-i-SegHeaderSize < plen {
		return Segment{}, false
	}
	want := binary.LittleEndian.Uint32(h[21:25])
	crc := crc32.Update(0, castagnoli, h[:21])
	crc = crc32.Update(crc, castagnoli, data[i+SegHeaderSize:i+SegHeaderSize+plen])
	if crc != want {
		return Segment{}, false
	}
	return Segment{
		Offset:  int64(i),
		Rank:    int32(binary.LittleEndian.Uint32(h[5:9])),
		Seq:     binary.LittleEndian.Uint64(h[9:17]),
		Payload: data[i+SegHeaderSize : i+SegHeaderSize+plen],
	}, true
}

// Spill file formats, as detected by DetectSpillFormat.
const (
	// SpillFormatUnknown marks data that is neither a CLOG-2 stream nor
	// contains a single valid v2 segment.
	SpillFormatUnknown = 0
	// SpillFormatV1 is the legacy raw CLOG-2 stream.
	SpillFormatV1 = 1
	// SpillFormatV2 is the framed self-synchronizing segment stream.
	SpillFormatV2 = 2
)

// DetectSpillFormat classifies a spill fragment: a CLOG-2 magic prefix
// means legacy v1; otherwise any recoverable v2 segment means v2. A
// damaged v1 head is indistinguishable from garbage and reports unknown.
func DetectSpillFormat(data []byte) int {
	if bytes.HasPrefix(data, []byte(Magic)) {
		return SpillFormatV1
	}
	if segs, _ := ScanSegments(data); len(segs) > 0 {
		return SpillFormatV2
	}
	return SpillFormatUnknown
}

// NewBareBlockWriter returns a Writer that emits no file header: it
// encodes naked rank blocks, the payload encoding spill segments carry.
func NewBareBlockWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// EncodeBlockPayload appends the bare block encoding of recs (block
// header, records, end-block marker) for rank onto buf — the segment
// payload a v2 spill write frames.
func EncodeBlockPayload(buf *bytes.Buffer, rank int32, recs []Record) error {
	w := NewBareBlockWriter(buf)
	if err := w.WriteBlockChunks(rank, recs); err != nil {
		return err
	}
	return w.w.Flush()
}

// DecodeBlockPayload parses one bare block encoding, as produced by
// EncodeBlockPayload. Trailing bytes after the end-block marker are an
// error: a segment payload is exactly one block.
func DecodeBlockPayload(data []byte) (Block, error) {
	d := &decoder{r: bufio.NewReader(bytes.NewReader(data))}
	rank := d.get32() - 1 // undo the +1 wire shift
	n := d.get32()
	if d.err != nil {
		return Block{}, d.err
	}
	if rank < 0 {
		return Block{}, fmt.Errorf("clog2: block payload with negative rank %d", rank)
	}
	if n < 0 || n > 1<<28 {
		return Block{}, fmt.Errorf("clog2: implausible record count %d", n)
	}
	prealloc := n
	if prealloc > maxRecordPrealloc {
		prealloc = maxRecordPrealloc
	}
	recs := make([]Record, 0, prealloc)
	for i := int32(0); i < n; i++ {
		rec, err := d.readRecord()
		if err != nil {
			return Block{}, err
		}
		recs = append(recs, rec)
	}
	if tt := RecType(d.getByte()); d.err == nil && tt != RecEndBlock {
		return Block{}, fmt.Errorf("clog2: block payload for rank %d not terminated (got %v)", rank, tt)
	}
	if d.err != nil {
		return Block{}, d.err
	}
	if _, err := d.r.ReadByte(); err != io.EOF {
		return Block{}, fmt.Errorf("clog2: %d trailing bytes after block payload", d.r.Buffered()+1)
	}
	return Block{Rank: rank, Records: recs}, nil
}
