package clog2

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func sampleRecords() []Record {
	recs := []Record{
		{Type: RecStateDef, Time: 0, Rank: 0, ID: 1, Aux1: 2, Aux2: 3, Color: "red", Name: "PI_Read"},
		{Type: RecEventDef, Time: 0, Rank: 0, ID: 100, Color: "yellow", Name: "MsgArrival"},
		{Type: RecConstDef, Time: 0, Rank: 0, ID: 7, Aux1: 42, Name: "answer"},
		{Type: RecBareEvt, Time: 1.5, Rank: 0, ID: 2},
		{Type: RecCargoEvt, Time: 2.25, Rank: 0, ID: 3},
		{Type: RecMsgEvt, Time: 2.5, Rank: 0, Dir: DirSend, Aux1: 1, Aux2: 9, Aux3: 800},
		{Type: RecMsgEvt, Time: 2.75, Rank: 0, Dir: DirRecv, Aux1: 1, Aux2: 9, Aux3: 800},
		{Type: RecTimeShift, Time: 3, Rank: 0, Shift: -0.001},
		{Type: RecSrcLoc, Time: 3.5, Rank: 0, Aux1: 99, Text: "lab2.go"},
	}
	recs[4].SetCargo("line: 17 proc: P3")
	return recs
}

func TestRoundtripSingleBlock(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 3)
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleRecords()
	if err := w.WriteBlock(0, recs); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumRanks != 3 {
		t.Fatalf("NumRanks = %d, want 3", f.NumRanks)
	}
	if len(f.Blocks) != 1 || f.Blocks[0].Rank != 0 {
		t.Fatalf("blocks: %+v", f.Blocks)
	}
	if !reflect.DeepEqual(f.Blocks[0].Records, recs) {
		t.Fatalf("records changed:\n got %+v\nwant %+v", f.Blocks[0].Records, recs)
	}
}

func TestRoundtripMultipleBlocksIncludingRankZero(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 4)
	if err != nil {
		t.Fatal(err)
	}
	for rank := int32(0); rank < 4; rank++ {
		recs := []Record{{Type: RecBareEvt, Time: float64(rank), Rank: rank, ID: rank * 10}}
		if err := w.WriteBlock(rank, recs); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Blocks) != 4 {
		t.Fatalf("got %d blocks, want 4", len(f.Blocks))
	}
	for i, b := range f.Blocks {
		if b.Rank != int32(i) {
			t.Errorf("block %d rank = %d", i, b.Rank)
		}
	}
}

func TestEmptyBlocksAndEmptyFile(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 1)
	if err := w.WriteBlock(0, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Blocks) != 1 || len(f.Blocks[0].Records) != 0 {
		t.Fatalf("blocks: %+v", f.Blocks)
	}

	buf.Reset()
	w, _ = NewWriter(&buf, 2)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f, err = Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Blocks) != 0 {
		t.Fatalf("empty file has %d blocks", len(f.Blocks))
	}
}

func TestCargoTruncatedToMPELimit(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 1)
	var rec Record
	rec.Type, rec.ID = RecCargoEvt, 1
	rec.SetCargo(strings.Repeat("x", 100))
	w.WriteBlock(0, []Record{rec})
	w.Close()
	f, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := f.Blocks[0].Records[0].CargoText()
	if len(got) != MaxCargo {
		t.Fatalf("cargo length %d, want %d", len(got), MaxCargo)
	}
}

// Truncation at the cargo limit must not split a multi-byte UTF-8 rune:
// a rune straddling byte 40 is dropped whole.
func TestCargoTruncationRuneSafe(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{strings.Repeat("x", 39) + "é", strings.Repeat("x", 39)},        // 2-byte rune at 39..40
		{strings.Repeat("x", 38) + "世界", strings.Repeat("x", 38)},       // 3-byte rune at 38..40
		{strings.Repeat("x", 37) + "🙂ab", strings.Repeat("x", 37) + ""}, // 4-byte rune at 37..40
		{strings.Repeat("x", 36) + "🙂ab", strings.Repeat("x", 36) + "🙂"},
		{strings.Repeat("x", 40) + "é", strings.Repeat("x", 40)}, // boundary on a rune edge
		{strings.Repeat("é", 20), strings.Repeat("é", 20)},       // exactly 40 bytes
	}
	for _, c := range cases {
		if got := Trunc(c.in, MaxCargo); got != c.want {
			t.Errorf("Trunc(%q) = %q, want %q", c.in, got, c.want)
		}
		if got := string(TruncBytes([]byte(c.in), MaxCargo)); got != c.want {
			t.Errorf("TruncBytes(%q) = %q, want %q", c.in, got, c.want)
		}
		var rec Record
		rec.SetCargo(c.in)
		if rec.CargoText() != c.want {
			t.Errorf("SetCargo(%q) kept %q, want %q", c.in, rec.CargoText(), c.want)
		}
	}
	// Garbage with no rune start near the boundary falls back to a byte cut.
	junk := strings.Repeat("x", 36) + "\x80\x80\x80\x80\x80\x80"
	if got := Trunc(junk, MaxCargo); len(got) != MaxCargo {
		t.Errorf("Trunc(junk) kept %d bytes, want %d", len(got), MaxCargo)
	}
}

// WriteBlockChunks must produce bytes identical to WriteBlock over the
// concatenated records, however the records are split into chunks.
func TestWriteBlockChunksMatchesWriteBlock(t *testing.T) {
	recs := sampleRecords()
	flat := func() []byte {
		var buf bytes.Buffer
		w, _ := NewWriter(&buf, 2)
		w.WriteBlock(1, recs)
		w.Close()
		return buf.Bytes()
	}()
	for split := 0; split <= len(recs); split++ {
		var buf bytes.Buffer
		w, _ := NewWriter(&buf, 2)
		if err := w.WriteBlockChunks(1, recs[:split], recs[split:]); err != nil {
			t.Fatal(err)
		}
		w.Close()
		if !bytes.Equal(buf.Bytes(), flat) {
			t.Fatalf("split at %d: chunked bytes differ from flat WriteBlock", split)
		}
	}
	// Empty and nil chunks contribute nothing.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 2)
	if err := w.WriteBlockChunks(1, nil, recs, nil, []Record{}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	if !bytes.Equal(buf.Bytes(), flat) {
		t.Fatal("nil/empty chunks changed the output")
	}
}

func TestWriterValidation(t *testing.T) {
	if _, err := NewWriter(&bytes.Buffer{}, 0); err == nil {
		t.Error("NewWriter(0 ranks) succeeded")
	}
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 1)
	if err := w.WriteBlock(-1, nil); err == nil {
		t.Error("WriteBlock(-1) succeeded")
	}
	w.Close()
	if err := w.WriteBlock(0, nil); err == nil {
		t.Error("WriteBlock after Close succeeded")
	}
	if err := w.Close(); err != nil {
		t.Errorf("double Close: %v", err)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("short"),
		[]byte("NOTCLOG-22\x01\x00\x00\x00"),
	}
	for _, c := range cases {
		if _, err := Read(bytes.NewReader(c)); err == nil {
			t.Errorf("Read(%q) succeeded", c)
		}
	}
}

func TestReadRejectsTruncated(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 2)
	w.WriteBlock(1, sampleRecords())
	w.Close()
	full := buf.Bytes()
	// Every proper prefix (beyond the header) must fail, not crash or
	// silently succeed.
	for cut := len(Magic) + 4; cut < len(full)-1; cut += 7 {
		if _, err := Read(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d bytes read successfully", cut)
		}
	}
}

func TestRecTypeString(t *testing.T) {
	if RecMsgEvt.String() != "MsgEvt" || RecEndLog.String() != "EndLog" {
		t.Error("RecType names wrong")
	}
	if RecType(200).String() != "RecType(?)" {
		t.Error("unknown RecType name wrong")
	}
}

func TestFileAccessors(t *testing.T) {
	f := &File{Blocks: []Block{
		{Rank: 0, Records: sampleRecords()},
		{Rank: 1, Records: []Record{{Type: RecStateDef, ID: 5, Name: "PI_Write"}}},
	}}
	if got := len(f.Records()); got != len(sampleRecords())+1 {
		t.Errorf("Records() len = %d", got)
	}
	if got := len(f.StateDefs()); got != 2 {
		t.Errorf("StateDefs() len = %d", got)
	}
	if got := len(f.EventDefs()); got != 1 {
		t.Errorf("EventDefs() len = %d", got)
	}
}

// Property: random well-formed records roundtrip byte-exactly.
func TestRoundtripProperty(t *testing.T) {
	genRecord := func(rng *rand.Rand) Record {
		types := []RecType{RecStateDef, RecEventDef, RecConstDef, RecBareEvt,
			RecCargoEvt, RecMsgEvt, RecTimeShift, RecSrcLoc}
		r := Record{
			Type: types[rng.Intn(len(types))],
			Time: rng.Float64() * 100,
			Rank: int32(rng.Intn(16)),
		}
		str := func(n int) string {
			b := make([]byte, rng.Intn(n))
			for i := range b {
				b[i] = byte('a' + rng.Intn(26))
			}
			return string(b)
		}
		switch r.Type {
		case RecStateDef:
			r.ID, r.Aux1, r.Aux2 = int32(rng.Intn(1000)), int32(rng.Intn(1000)), int32(rng.Intn(1000))
			r.Color, r.Name = str(12), str(20)
		case RecEventDef:
			r.ID = int32(rng.Intn(1000))
			r.Color, r.Name = str(12), str(20)
		case RecConstDef:
			r.ID, r.Aux1 = int32(rng.Intn(1000)), rng.Int31()
			r.Name = str(20)
		case RecBareEvt:
			r.ID = int32(rng.Intn(1000))
		case RecCargoEvt:
			r.ID = int32(rng.Intn(1000))
			r.SetCargo(str(MaxCargo))
		case RecMsgEvt:
			r.Dir = []uint8{DirSend, DirRecv}[rng.Intn(2)]
			r.Aux1, r.Aux2, r.Aux3 = int32(rng.Intn(16)), int32(rng.Intn(100)), rng.Int31()
		case RecTimeShift:
			r.Shift = rng.NormFloat64()
		case RecSrcLoc:
			r.Aux1 = int32(rng.Intn(10000))
			r.Text = str(30)
		}
		return r
	}
	f := func(seed int64, nBlocksRaw, nRecsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		nBlocks := int(nBlocksRaw%5) + 1
		var buf bytes.Buffer
		w, err := NewWriter(&buf, nBlocks)
		if err != nil {
			return false
		}
		want := make([]Block, nBlocks)
		for b := 0; b < nBlocks; b++ {
			n := int(nRecsRaw % 20)
			recs := make([]Record, n)
			for i := range recs {
				recs[i] = genRecord(rng)
			}
			want[b] = Block{Rank: int32(b), Records: recs}
			if err := w.WriteBlock(int32(b), recs); err != nil {
				return false
			}
		}
		if err := w.Close(); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if len(got.Blocks) != nBlocks {
			return false
		}
		for b := range want {
			if got.Blocks[b].Rank != want[b].Rank {
				return false
			}
			if len(want[b].Records) == 0 {
				if len(got.Blocks[b].Records) != 0 {
					return false
				}
				continue
			}
			if !reflect.DeepEqual(got.Blocks[b].Records, want[b].Records) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
