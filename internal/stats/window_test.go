package stats

import (
	"bytes"
	"io"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/clog2"
	"repro/internal/idx"
)

var goldenLogs = []string{"lab2", "collisions", "thumbnail"}

// copyGolden stages one golden CLOG-2 in a temp dir (sidecar games must
// not touch the committed files).
func copyGolden(t *testing.T, name string) string {
	t.Helper()
	src := filepath.Join("..", "..", "testdata", "golden", name+".clog2")
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	dst := filepath.Join(t.TempDir(), name+".clog2")
	if err := os.WriteFile(dst, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return dst
}

func mustJSON(t *testing.T, p *Profile) []byte {
	t.Helper()
	data, err := p.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// windowsFor derives a battery of windows from a file's own time span.
func windowsFor(t *testing.T, path string) [][2]float64 {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	br, err := clog2.NewBlockReader(f)
	if err != nil {
		t.Fatal(err)
	}
	tmin, tmax := math.Inf(1), math.Inf(-1)
	for {
		b, err := br.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range b.Records {
			switch r.Type {
			case clog2.RecStateDef, clog2.RecEventDef, clog2.RecConstDef, clog2.RecSrcLoc:
				continue
			}
			tmin = math.Min(tmin, r.Time)
			tmax = math.Max(tmax, r.Time)
		}
	}
	if tmin > tmax {
		tmin, tmax = 0, 0
	}
	mid := tmin + (tmax-tmin)/2
	return [][2]float64{
		{math.Inf(-1), math.Inf(1)},
		{tmin, mid},
		{mid, tmax},
		{tmin + (tmax-tmin)/4, tmin + 3*(tmax-tmin)/4},
		{tmax + 1, tmax + 2}, // empty
	}
}

// The tentpole equality contract on real logs: for every golden and
// every window, the indexed profile is byte-identical to the full scan.
func TestWindowedIndexedEqualsScanOnGoldens(t *testing.T) {
	for _, name := range goldenLogs {
		t.Run(name, func(t *testing.T) {
			path := copyGolden(t, name)
			ix, err := idx.BuildFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := idx.WriteFileFor(path, ix); err != nil {
				t.Fatal(err)
			}
			for _, w := range windowsFor(t, path) {
				p, used, err := ComputeProfileFileWindowed(path, w[0], w[1])
				if err != nil {
					t.Fatalf("window %v: %v", w, err)
				}
				if !used {
					t.Fatalf("window %v: valid sidecar was not used", w)
				}
				scan, err := computeProfileScan(path, w[0], w[1])
				if err != nil {
					t.Fatal(err)
				}
				if a, b := mustJSON(t, p), mustJSON(t, scan); !bytes.Equal(a, b) {
					t.Errorf("window %v: indexed != scan\nindexed: %s\nscan:    %s", w, a, b)
				}
			}
		})
	}
}

// Every way a sidecar can go bad must degrade to the full scan with an
// identical answer — never an error, never a wrong profile.
func TestWindowedDegradation(t *testing.T) {
	sabotages := []struct {
		name string
		do   func(t *testing.T, clogPath string)
	}{
		{"missing", func(t *testing.T, p string) {
			os.Remove(idx.SidecarPath(p))
		}},
		{"stale", func(t *testing.T, p string) {
			f, err := os.OpenFile(p, os.O_APPEND|os.O_WRONLY, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write([]byte{0}); err != nil {
				t.Fatal(err)
			}
			f.Close()
		}},
		{"corrupt", func(t *testing.T, p string) {
			side := idx.SidecarPath(p)
			data, err := os.ReadFile(side)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)/3] ^= 0x80
			if err := os.WriteFile(side, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"truncated", func(t *testing.T, p string) {
			side := idx.SidecarPath(p)
			data, err := os.ReadFile(side)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(side, data[:len(data)*2/3], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		// A structurally valid sidecar that lies about the file: Load
		// accepts it, the mid-scan block check catches it, and the
		// consumer silently re-answers with the full scan.
		{"lying", func(t *testing.T, p string) {
			ix, err := idx.Load(p)
			if err != nil {
				t.Fatal(err)
			}
			swapped := false
			for i := 1; i < len(ix.Blocks); i++ {
				if ix.Blocks[i].Rank != ix.Blocks[0].Rank {
					ix.Blocks[0].Rank, ix.Blocks[i].Rank = ix.Blocks[i].Rank, ix.Blocks[0].Rank
					swapped = true
					break
				}
			}
			if !swapped {
				t.Skip("single-rank log: no ranks to swap")
			}
			if err := idx.WriteFileFor(p, ix); err != nil {
				t.Fatal(err)
			}
			if _, err := idx.Load(p); err != nil {
				t.Fatalf("lying sidecar should pass validation, got %v", err)
			}
		}},
	}
	for _, name := range goldenLogs {
		for _, sb := range sabotages {
			t.Run(name+"/"+sb.name, func(t *testing.T) {
				path := copyGolden(t, name)
				ix, err := idx.BuildFile(path)
				if err != nil {
					t.Fatal(err)
				}
				if err := idx.WriteFileFor(path, ix); err != nil {
					t.Fatal(err)
				}
				sb.do(t, path)
				w := windowsFor(t, path)[1] // a real, non-trivial window
				p, used, err := ComputeProfileFileWindowed(path, w[0], w[1])
				if err != nil {
					t.Fatalf("degraded profile errored: %v", err)
				}
				if used {
					t.Error("a sabotaged sidecar was reported as used")
				}
				scan, err := computeProfileScan(path, w[0], w[1])
				if err != nil {
					t.Fatal(err)
				}
				if a, b := mustJSON(t, p), mustJSON(t, scan); !bytes.Equal(a, b) {
					t.Errorf("degraded answer differs from the full scan")
				}
			})
		}
	}
}

// The unbounded window is the plain profile: same answer, no Window
// stanza in the JSON.
func TestWindowedUnboundedIsPlainProfile(t *testing.T) {
	path := copyGolden(t, "lab2")
	plain, err := ComputeProfileFile(path)
	if err != nil {
		t.Fatal(err)
	}
	p, used, err := ComputeProfileFileWindowed(path, math.Inf(-1), math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if used {
		t.Error("no sidecar exists, yet the index was reportedly used")
	}
	if p.Window != nil {
		t.Errorf("unbounded profile has Window = %+v", p.Window)
	}
	if a, b := mustJSON(t, p), mustJSON(t, plain); !bytes.Equal(a, b) {
		t.Error("unbounded windowed profile differs from the plain profile")
	}
}

// Windowed semantics on a known log: defs always apply, out-of-window
// activity vanishes, and a state end whose start precedes the window
// counts as unpaired rather than inventing a duration.
func TestWindowSemantics(t *testing.T) {
	raw := writeTestLog(t, 2, map[int32][]clog2.Record{
		0: {
			stateDef(1, 2, 3, "PI_Read"),
			bare(0, 0.1, 2),                        // starts before the window
			bare(0, 0.5, 3),                        // ends inside it: unpaired
			msg(0, 0.6, clog2.DirSend, 1, 7, 100),  // inside
			msg(0, 2.0, clog2.DirSend, 1, 7, 999),  // outside
		},
		1: {
			msg(1, 0.65, clog2.DirRecv, 0, 7, 100), // inside
		},
	})
	p, err := ComputeProfileWindowed(bytes.NewReader(raw), 0.4, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Window == nil || p.Window.T0 == nil || *p.Window.T0 != 0.4 ||
		p.Window.T1 == nil || *p.Window.T1 != 1.0 {
		t.Fatalf("window stanza = %+v", p.Window)
	}
	if p.Totals.Sends != 1 || p.Totals.SendBytes != 100 {
		t.Errorf("out-of-window message leaked into totals: %+v", p.Totals)
	}
	if p.Unpaired != 1 {
		t.Errorf("unpaired = %d, want 1 (end whose start precedes the window)", p.Unpaired)
	}
	if len(p.States) != 0 {
		t.Errorf("no state completes inside the window, got %+v", p.States)
	}
}
