// The post-run half of the observability layer: a Profile computed by
// one streaming pass over a merged CLOG-2 file. Where the Collector
// counts what the runtime *did*, the Profile recounts what the trace
// *recorded* — per-channel and per-rank message totals, per-state
// duration statistics (p50/p95/max from the same bounded log2 histograms
// the live side uses), and a busy-vs-blocked breakdown from state
// self-times. The conformance suite holds the two accountings exactly
// equal.
package stats

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"

	"repro/internal/clog2"
	"repro/internal/colors"
)

// ProfileSchema names the JSON schema version written by Profile.JSON.
const ProfileSchema = "pilot-profile/1"

// profSoloBase mirrors the mpe etype split (solo etypes live at 1<<20
// and above; state s uses etypes 2s/2s+1 below it). Restated here rather
// than imported: mpe sits above mpi, which depends on this package, and
// the split is a stable on-disk property of the log format.
const profSoloBase = 1 << 20

// ChannelProfile is one channel's message accounting. Chan is the wire
// tag (Pilot channel IDs are 1-based).
type ChannelProfile struct {
	Chan      int   `json:"chan"`
	Sends     int64 `json:"sends"`
	Recvs     int64 `json:"recvs"`
	SendBytes int64 `json:"send_bytes"`
	RecvBytes int64 `json:"recv_bytes"`
}

// RankProfile is one rank's accounting.
type RankProfile struct {
	Rank      int   `json:"rank"`
	Records   int64 `json:"records"`
	Sends     int64 `json:"sends"`
	Recvs     int64 `json:"recvs"`
	SendBytes int64 `json:"send_bytes"`
	RecvBytes int64 `json:"recv_bytes"`
	Events    int64 `json:"events"`
	// BusySec and BlockedSec split the rank's state self-time: input and
	// output states (reads, writes, collectives, selects — the operations
	// that block on a peer) count as blocked, everything else (Compute,
	// PI_Configure) as busy. Self-time, so nested states never double
	// count a second.
	BusySec    float64 `json:"busy_sec"`
	BlockedSec float64 `json:"blocked_sec"`
	// WallSec spans the rank's first to last record timestamp.
	WallSec float64 `json:"wall_sec"`
}

// StateProfile aggregates every occurrence of one state across ranks.
type StateProfile struct {
	Name     string `json:"name"`
	Category string `json:"category"`
	Count    int64  `json:"count"`
	// TotalSec sums full durations; SelfSec subtracts nested children.
	TotalSec float64 `json:"total_sec"`
	SelfSec  float64 `json:"self_sec"`
	MaxSec   float64 `json:"max_sec"`
	// P50Sec / P95Sec are duration quantiles from a bounded log2
	// histogram over nanoseconds (see HistSnapshot.Quantile); 0 when the
	// state never completed an occurrence.
	P50Sec float64 `json:"p50_sec"`
	P95Sec float64 `json:"p95_sec"`
	// Durations is the underlying histogram, kept in the JSON so
	// downstream tools can compute other quantiles.
	Durations HistSnapshot `json:"durations"`
}

// ProfileTotals is the whole-run roll-up.
type ProfileTotals struct {
	Records   int64 `json:"records"`
	Sends     int64 `json:"sends"`
	Recvs     int64 `json:"recvs"`
	SendBytes int64 `json:"send_bytes"`
	RecvBytes int64 `json:"recv_bytes"`
	Events    int64 `json:"events"`
}

// ProfileWindow records the time bounds a windowed profile was computed
// over (absent from whole-run profiles, so their JSON is unchanged). An
// open-ended bound is a nil pointer: encoding/json cannot represent the
// infinities the open bounds use internally.
type ProfileWindow struct {
	T0 *float64 `json:"t0,omitempty"`
	T1 *float64 `json:"t1,omitempty"`
}

// Profile is the post-run report computed from a merged CLOG-2 stream.
type Profile struct {
	Schema   string           `json:"schema"`
	NumRanks int              `json:"num_ranks"`
	Channels []ChannelProfile `json:"channels,omitempty"`
	Ranks    []RankProfile    `json:"ranks"`
	States   []StateProfile   `json:"states,omitempty"`
	Totals   ProfileTotals    `json:"totals"`
	// Unpaired counts state ends with no matching start (salvaged or
	// damaged logs); well-formed logs have 0. A state that opened before
	// a window's T0 and closes inside it counts here too: the windowed
	// semantics are "profile exactly the records whose timestamps fall in
	// [T0, T1]", identical between the full-scan and indexed paths.
	Unpaired int64 `json:"unpaired,omitempty"`
	// Window is set on windowed profiles only.
	Window *ProfileWindow `json:"window,omitempty"`
}

// openState is one entry of a rank's pairing stack.
type openState struct {
	etype    int32
	start    float64
	childSec float64
}

// stateAgg accumulates one state's occurrences during the pass.
type stateAgg struct {
	name    string
	count   int64
	total   float64
	self    float64
	max     float64
	durHist hist
}

// profRank is one rank's in-pass state.
type profRank struct {
	rp       RankProfile
	stack    []openState
	haveWall bool
	wall0    float64
	wall1    float64
}

// profiler is the in-pass state of one profile computation: the
// streaming full scan, the windowed scan, and the index-accelerated
// windowed scan all feed the same addBlock/finish pair, which is what
// makes "indexed answers == full-scan answers" an identity rather than
// an approximation.
type profiler struct {
	p      *Profile
	t0, t1 float64

	startOf   map[int32]int32 // start etype -> state def ID
	endOf     map[int32]int32 // end etype -> state def ID
	stateName map[int32]string
	states    map[int32]*stateAgg // keyed by state def ID (or synthetic etype/2)
	ranks     map[int32]*profRank
	chans     map[int32]*ChannelProfile
}

// newProfiler builds a profiler over the inclusive window [t0, t1]; an
// unbounded window (-Inf, +Inf) reproduces the whole-run profile.
func newProfiler(numRanks int, t0, t1 float64) *profiler {
	return &profiler{
		p:         &Profile{Schema: ProfileSchema, NumRanks: numRanks},
		t0:        t0,
		t1:        t1,
		startOf:   map[int32]int32{},
		endOf:     map[int32]int32{},
		stateName: map[int32]string{},
		states:    map[int32]*stateAgg{},
		ranks:     map[int32]*profRank{},
		chans:     map[int32]*ChannelProfile{},
	}
}

func (pp *profiler) agg(id int32, name string) *stateAgg {
	a := pp.states[id]
	if a == nil {
		a = &stateAgg{name: name}
		a.durHist.min.Store(math.MaxInt64)
		pp.states[id] = a
	}
	return a
}

func (pp *profiler) rank(id int32) *profRank {
	pr := pp.ranks[id]
	if pr == nil {
		pr = &profRank{rp: RankProfile{Rank: int(id)}}
		pp.ranks[id] = pr
	}
	return pr
}

// classify maps an event etype to (state ID, isStart, isEnd, name).
func (pp *profiler) classify(etype int32) (int32, bool, bool, string) {
	if id, ok := pp.startOf[etype]; ok {
		return id, true, false, pp.stateName[id]
	}
	if id, ok := pp.endOf[etype]; ok {
		return id, false, true, pp.stateName[id]
	}
	if etype < profSoloBase {
		// No def for this etype: fall back to the mpe parity rule so
		// salvaged logs still pair.
		id := etype / 2
		name := fmt.Sprintf("state %d", id)
		if etype%2 == 0 {
			return id, true, false, name
		}
		return id, false, true, name
	}
	return 0, false, false, ""
}

// addBlock feeds one block's records through the profiler. Blocks must
// arrive in file order — the order both the full scan and idx.ScanFile
// deliver.
func (pp *profiler) addBlock(b clog2.Block) {
	for i := range b.Records {
		pp.addRecord(&b.Records[i])
	}
}

func (pp *profiler) addRecord(rec *clog2.Record) {
	switch rec.Type {
	case clog2.RecStateDef:
		// Definitions are metadata: always processed, whatever the
		// window, so windowed classification matches the whole run's.
		pp.startOf[rec.Aux1] = rec.ID
		pp.endOf[rec.Aux2] = rec.ID
		pp.stateName[rec.ID] = rec.Name
		return
	case clog2.RecEventDef, clog2.RecConstDef, clog2.RecSrcLoc,
		clog2.RecEndBlock, clog2.RecEndLog:
		return
	}
	if rec.Time < pp.t0 || rec.Time > pp.t1 {
		return
	}
	pr := pp.rank(rec.Rank)
	pr.rp.Records++
	if !pr.haveWall || rec.Time < pr.wall0 {
		pr.wall0 = rec.Time
	}
	if !pr.haveWall || rec.Time > pr.wall1 {
		pr.wall1 = rec.Time
	}
	pr.haveWall = true

	switch rec.Type {
	case clog2.RecMsgEvt:
		cp := pp.chans[rec.Aux2]
		if cp == nil {
			cp = &ChannelProfile{Chan: int(rec.Aux2)}
			pp.chans[rec.Aux2] = cp
		}
		if rec.Dir == clog2.DirSend {
			cp.Sends++
			cp.SendBytes += int64(rec.Aux3)
			pr.rp.Sends++
			pr.rp.SendBytes += int64(rec.Aux3)
		} else {
			cp.Recvs++
			cp.RecvBytes += int64(rec.Aux3)
			pr.rp.Recvs++
			pr.rp.RecvBytes += int64(rec.Aux3)
		}
	case clog2.RecBareEvt, clog2.RecCargoEvt:
		etype := rec.ID
		if etype >= profSoloBase {
			pr.rp.Events++
			return
		}
		id, isStart, _, name := pp.classify(etype)
		if isStart {
			pr.stack = append(pr.stack, openState{etype: etype, start: rec.Time})
			return
		}
		// State end: pop the innermost open state (the converter
		// reports mismatches as nesting errors; the profile just
		// keeps the stack depth honest, as mpe.popOpenState does).
		n := len(pr.stack)
		if n == 0 {
			pp.p.Unpaired++
			return
		}
		top := pr.stack[n-1]
		pr.stack = pr.stack[:n-1]
		dur := rec.Time - top.start
		if dur < 0 {
			dur = 0
		}
		self := dur - top.childSec
		if self < 0 {
			self = 0
		}
		if len(pr.stack) > 0 {
			pr.stack[len(pr.stack)-1].childSec += dur
		}
		a := pp.agg(id, name)
		a.count++
		a.total += dur
		a.self += self
		if dur > a.max {
			a.max = dur
		}
		a.durHist.observe(int64(dur * 1e9))
		switch colors.CategoryOf(name) {
		case colors.Input, colors.Output:
			pr.rp.BlockedSec += self
		default:
			pr.rp.BusySec += self
		}
	}
}

// finish assembles the sorted tables and returns the Profile.
func (pp *profiler) finish() *Profile {
	p := pp.p
	if !math.IsInf(pp.t0, -1) || !math.IsInf(pp.t1, 1) {
		p.Window = &ProfileWindow{}
		if !math.IsInf(pp.t0, -1) {
			t0 := pp.t0
			p.Window.T0 = &t0
		}
		if !math.IsInf(pp.t1, 1) {
			t1 := pp.t1
			p.Window.T1 = &t1
		}
	}
	chanIDs := make([]int, 0, len(pp.chans))
	for id := range pp.chans {
		chanIDs = append(chanIDs, int(id))
	}
	sort.Ints(chanIDs)
	for _, id := range chanIDs {
		p.Channels = append(p.Channels, *pp.chans[int32(id)])
	}

	rankIDs := make([]int, 0, len(pp.ranks))
	for id := range pp.ranks {
		rankIDs = append(rankIDs, int(id))
	}
	sort.Ints(rankIDs)
	for _, id := range rankIDs {
		pr := pp.ranks[int32(id)]
		pr.rp.WallSec = pr.wall1 - pr.wall0
		p.Ranks = append(p.Ranks, pr.rp)
		p.Totals.Records += pr.rp.Records
		p.Totals.Sends += pr.rp.Sends
		p.Totals.Recvs += pr.rp.Recvs
		p.Totals.SendBytes += pr.rp.SendBytes
		p.Totals.RecvBytes += pr.rp.RecvBytes
		p.Totals.Events += pr.rp.Events
	}

	stateIDs := make([]int, 0, len(pp.states))
	for id := range pp.states {
		stateIDs = append(stateIDs, int(id))
	}
	sort.Ints(stateIDs)
	for _, id := range stateIDs {
		a := pp.states[int32(id)]
		h := a.durHist.snapshot()
		p.States = append(p.States, StateProfile{
			Name:      a.name,
			Category:  colors.CategoryOf(a.name).String(),
			Count:     a.count,
			TotalSec:  a.total,
			SelfSec:   a.self,
			MaxSec:    a.max,
			P50Sec:    float64(h.Quantile(0.50)) / 1e9,
			P95Sec:    float64(h.Quantile(0.95)) / 1e9,
			Durations: h,
		})
	}
	return p
}

// ComputeProfile streams the CLOG-2 file in r (via clog2.BlockReader, so
// the raw log is never fully materialized) and computes its Profile.
// State and event classification comes from the StateDef/EventDef
// records in the stream itself, with the etype parity rules as fallback
// for defs-less salvaged fragments.
func ComputeProfile(r io.Reader) (*Profile, error) {
	return ComputeProfileWindowed(r, math.Inf(-1), math.Inf(1))
}

// ComputeProfileWindowed is ComputeProfile restricted to records whose
// timestamps fall in the inclusive window [t0, t1]. Definition records
// are always processed (classification must not depend on where the
// window lands); everything else outside the window is skipped entirely.
// An unbounded window reproduces ComputeProfile exactly, without the
// Window field.
func ComputeProfileWindowed(r io.Reader, t0, t1 float64) (*Profile, error) {
	br, err := clog2.NewBlockReader(r)
	if err != nil {
		return nil, err
	}
	pp := newProfiler(br.NumRanks(), t0, t1)
	var buf []clog2.Record
	for {
		b, err := br.NextReuse(buf)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		pp.addBlock(b)
		buf = b.Records[:0]
	}
	return pp.finish(), nil
}

// ComputeProfileFile is ComputeProfile over the CLOG-2 file at path.
func ComputeProfileFile(path string) (*Profile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	p, err := ComputeProfile(f)
	if err != nil {
		return nil, fmt.Errorf("stats: profiling %s: %w", path, err)
	}
	return p, nil
}

// JSON renders the profile as indented JSON with a trailing newline.
func (p *Profile) JSON() ([]byte, error) {
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// WriteJSON writes the JSON form to path.
func (p *Profile) WriteJSON(path string) error {
	data, err := p.JSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// Format renders the profile as aligned text tables for terminals.
func (p *Profile) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "profile: %d rank(s), %d record(s), %d send(s) / %d recv(s), %d / %d byte(s)\n",
		p.NumRanks, p.Totals.Records, p.Totals.Sends, p.Totals.Recvs,
		p.Totals.SendBytes, p.Totals.RecvBytes)
	if p.Unpaired > 0 {
		fmt.Fprintf(&b, "warning: %d unpaired state end(s) (damaged or salvaged log)\n", p.Unpaired)
	}
	if len(p.Channels) > 0 {
		b.WriteString("\nchannels:\n")
		fmt.Fprintf(&b, "  %-6s %10s %12s %10s %12s\n", "chan", "sends", "sbytes", "recvs", "rbytes")
		for _, c := range p.Channels {
			fmt.Fprintf(&b, "  C%-5d %10d %12d %10d %12d\n",
				c.Chan, c.Sends, c.SendBytes, c.Recvs, c.RecvBytes)
		}
	}
	b.WriteString("\nranks:\n")
	fmt.Fprintf(&b, "  %-6s %8s %8s %8s %8s %10s %10s %10s\n",
		"rank", "records", "sends", "recvs", "events", "busy_s", "blocked_s", "wall_s")
	for _, r := range p.Ranks {
		fmt.Fprintf(&b, "  P%-5d %8d %8d %8d %8d %10.4f %10.4f %10.4f\n",
			r.Rank, r.Records, r.Sends, r.Recvs, r.Events, r.BusySec, r.BlockedSec, r.WallSec)
	}
	if len(p.States) > 0 {
		b.WriteString("\nstates:\n")
		fmt.Fprintf(&b, "  %-14s %-8s %8s %10s %10s %10s %10s\n",
			"name", "cat", "count", "total_s", "max_s", "p50_s", "p95_s")
		for _, s := range p.States {
			fmt.Fprintf(&b, "  %-14s %-8s %8d %10.4f %10.4f %10.4f %10.4f\n",
				s.Name, s.Category, s.Count, s.TotalSec, s.MaxSec, s.P50Sec, s.P95Sec)
		}
	}
	return b.String()
}
