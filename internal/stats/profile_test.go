package stats

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/clog2"
)

// writeTestLog encodes blocks of records as a CLOG-2 stream.
func writeTestLog(t *testing.T, numRanks int, blocks map[int32][]clog2.Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := clog2.NewWriter(&buf, numRanks)
	if err != nil {
		t.Fatal(err)
	}
	for rank := int32(0); rank < int32(numRanks); rank++ {
		if recs := blocks[rank]; len(recs) > 0 {
			if err := w.WriteBlock(rank, recs); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func stateDef(id, start, end int32, name string) clog2.Record {
	return clog2.Record{Type: clog2.RecStateDef, ID: id, Aux1: start, Aux2: end, Name: name}
}

func bare(rank int32, tm float64, etype int32) clog2.Record {
	return clog2.Record{Type: clog2.RecBareEvt, Rank: rank, Time: tm, ID: etype}
}

func msg(rank int32, tm float64, dir uint8, peer, tag, size int32) clog2.Record {
	return clog2.Record{Type: clog2.RecMsgEvt, Rank: rank, Time: tm, Dir: dir,
		Aux1: peer, Aux2: tag, Aux3: size}
}

func TestComputeProfileSynthetic(t *testing.T) {
	// Two ranks. State 1 ("PI_Read", input → blocked) over etypes 2/3;
	// state 2 ("Compute", admin → busy) over etypes 4/5. Rank 0 nests a
	// read inside compute, so self-time splits: compute 1.0s total minus
	// the 0.25s read.
	raw := writeTestLog(t, 2, map[int32][]clog2.Record{
		0: {
			stateDef(1, 2, 3, "PI_Read"),
			stateDef(2, 4, 5, "Compute"),
			bare(0, 0.0, 4),                           // Compute start
			bare(0, 0.5, 2),                           // PI_Read start (nested)
			msg(0, 0.70, clog2.DirRecv, 1, 7, 100),    // recv 100 B on chan 7
			bare(0, 0.75, 3),                          // PI_Read end: 0.25 s
			bare(0, 1.0, 5),                           // Compute end: 1.0 s total, 0.75 s self
			bare(0, 1.0, profSoloBase+1),              // a solo event
			msg(0, 1.25, clog2.DirSend, 1, 9, 40),     // send 40 B on chan 9
		},
		1: {
			bare(1, 0.1, 4),
			msg(1, 0.60, clog2.DirSend, 0, 7, 100),
			bare(1, 0.9, 5),
			msg(1, 1.30, clog2.DirRecv, 0, 9, 40),
		},
	})

	p, err := ComputeProfile(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if p.Schema != ProfileSchema {
		t.Errorf("schema = %q, want %q", p.Schema, ProfileSchema)
	}
	if p.NumRanks != 2 {
		t.Errorf("num_ranks = %d, want 2", p.NumRanks)
	}
	if p.Unpaired != 0 {
		t.Errorf("unpaired = %d, want 0", p.Unpaired)
	}

	// Channel accounting.
	if len(p.Channels) != 2 {
		t.Fatalf("got %d channels, want 2: %+v", len(p.Channels), p.Channels)
	}
	c7, c9 := p.Channels[0], p.Channels[1]
	if c7.Chan != 7 || c7.Sends != 1 || c7.SendBytes != 100 || c7.Recvs != 1 || c7.RecvBytes != 100 {
		t.Errorf("chan 7 = %+v", c7)
	}
	if c9.Chan != 9 || c9.Sends != 1 || c9.SendBytes != 40 || c9.Recvs != 1 || c9.RecvBytes != 40 {
		t.Errorf("chan 9 = %+v", c9)
	}

	// Rank accounting.
	if len(p.Ranks) != 2 {
		t.Fatalf("got %d ranks", len(p.Ranks))
	}
	r0 := p.Ranks[0]
	if r0.Sends != 1 || r0.Recvs != 1 || r0.SendBytes != 40 || r0.RecvBytes != 100 {
		t.Errorf("rank 0 message accounting = %+v", r0)
	}
	if r0.Events != 1 {
		t.Errorf("rank 0 events = %d, want 1 (the solo)", r0.Events)
	}
	approx := func(got, want float64) bool { return math.Abs(got-want) < 1e-9 }
	if !approx(r0.BlockedSec, 0.25) {
		t.Errorf("rank 0 blocked = %v, want 0.25 (the nested read)", r0.BlockedSec)
	}
	if !approx(r0.BusySec, 0.75) {
		t.Errorf("rank 0 busy = %v, want 0.75 (compute self-time)", r0.BusySec)
	}
	if !approx(r0.WallSec, 1.25) {
		t.Errorf("rank 0 wall = %v, want 1.25", r0.WallSec)
	}

	// Totals.
	if p.Totals.Sends != 2 || p.Totals.Recvs != 2 || p.Totals.SendBytes != 140 || p.Totals.RecvBytes != 140 {
		t.Errorf("totals = %+v", p.Totals)
	}

	// States, sorted by ID: PI_Read (1) then Compute (2).
	if len(p.States) != 2 {
		t.Fatalf("got %d states: %+v", len(p.States), p.States)
	}
	read, comp := p.States[0], p.States[1]
	if read.Name != "PI_Read" || read.Category != "input" || read.Count != 1 {
		t.Errorf("read state = %+v", read)
	}
	if !approx(read.TotalSec, 0.25) || !approx(read.SelfSec, 0.25) || !approx(read.MaxSec, 0.25) {
		t.Errorf("read durations = %+v", read)
	}
	if comp.Name != "Compute" || comp.Category != "admin" || comp.Count != 2 {
		t.Errorf("compute state = %+v", comp)
	}
	if !approx(comp.TotalSec, 1.8) || !approx(comp.SelfSec, 1.55) {
		t.Errorf("compute total/self = %v/%v, want 1.8/1.55", comp.TotalSec, comp.SelfSec)
	}
	if !approx(comp.MaxSec, 1.0) {
		t.Errorf("compute max = %v, want 1.0", comp.MaxSec)
	}
	// Quantiles come from a log2 histogram over nanoseconds: bounded
	// above by max, below by min.
	if comp.P95Sec > comp.MaxSec+1e-9 || comp.P50Sec > comp.P95Sec+1e-9 {
		t.Errorf("quantile ordering violated: p50=%v p95=%v max=%v", comp.P50Sec, comp.P95Sec, comp.MaxSec)
	}

	// Text rendering mentions the load-bearing numbers.
	text := p.Format()
	for _, want := range []string{"C7", "C9", "PI_Read", "Compute", "2 send(s)"} {
		if !strings.Contains(text, want) {
			t.Errorf("Format() missing %q:\n%s", want, text)
		}
	}
}

// A state that only ever starts (no end before the log stops) yields
// zero completed samples; the per-state report must still render with
// zeroed quantiles rather than dividing by the empty count.
func TestProfileZeroSampleState(t *testing.T) {
	raw := writeTestLog(t, 1, map[int32][]clog2.Record{
		0: {
			stateDef(1, 2, 3, "PI_Write"),
			bare(0, 0.0, 2), // starts, never ends
		},
	})
	p, err := ComputeProfile(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.States) != 0 {
		// No completed occurrence: no state row at all is also fine, but
		// if one appears its quantiles must be zero.
		s := p.States[0]
		if s.Count != 0 || s.P50Sec != 0 || s.P95Sec != 0 {
			t.Errorf("zero-sample state rendered %+v", s)
		}
	}
	if p.Unpaired != 0 {
		t.Errorf("an unclosed start is not an unpaired end: %d", p.Unpaired)
	}
}

// Ends with no start (salvaged fragment shapes) are counted, not fatal.
func TestProfileUnpairedEnds(t *testing.T) {
	raw := writeTestLog(t, 1, map[int32][]clog2.Record{
		0: {
			stateDef(1, 2, 3, "PI_Read"),
			bare(0, 0.5, 3), // end without start
			bare(0, 0.6, 3), // again
		},
	})
	p, err := ComputeProfile(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if p.Unpaired != 2 {
		t.Errorf("unpaired = %d, want 2", p.Unpaired)
	}
	if !strings.Contains(p.Format(), "unpaired") {
		t.Error("Format() does not warn about unpaired ends")
	}
}

// Without StateDef records (a defs-less salvaged log) the etype parity
// fallback still pairs starts with ends.
func TestProfileParityFallback(t *testing.T) {
	raw := writeTestLog(t, 1, map[int32][]clog2.Record{
		0: {
			bare(0, 0.0, 8), // etype 8 = start of state 4
			bare(0, 0.5, 9), // etype 9 = its end
		},
	})
	p, err := ComputeProfile(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.States) != 1 {
		t.Fatalf("got %d states", len(p.States))
	}
	s := p.States[0]
	if s.Count != 1 || math.Abs(s.TotalSec-0.5) > 1e-9 {
		t.Errorf("parity-paired state = %+v", s)
	}
	if s.Name != "state 4" {
		t.Errorf("synthesized name = %q", s.Name)
	}
}

func TestProfileJSONRoundTrip(t *testing.T) {
	raw := writeTestLog(t, 1, map[int32][]clog2.Record{
		0: {msg(0, 0.1, clog2.DirSend, 0, 1, 10)},
	})
	p, err := ComputeProfile(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	data, err := p.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Profile
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != ProfileSchema || back.Totals.Sends != 1 || back.Totals.SendBytes != 10 {
		t.Errorf("round trip lost data: %+v", back)
	}
}

func TestProfileEmptyLog(t *testing.T) {
	raw := writeTestLog(t, 3, nil)
	p, err := ComputeProfile(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if p.NumRanks != 3 {
		t.Errorf("num_ranks = %d", p.NumRanks)
	}
	if p.Totals != (ProfileTotals{}) {
		t.Errorf("empty log produced totals %+v", p.Totals)
	}
	if out := p.Format(); !strings.Contains(out, "0 record(s)") {
		t.Errorf("empty Format() = %q", out)
	}
}

func TestComputeProfileBadInput(t *testing.T) {
	if _, err := ComputeProfile(bytes.NewReader([]byte("not a clog2 file"))); err == nil {
		t.Error("garbage input did not error")
	}
	if _, err := ComputeProfileFile("/nonexistent/path.clog2"); err == nil {
		t.Error("missing file did not error")
	}
}
