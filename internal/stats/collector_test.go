package stats

import (
	"encoding/json"
	"expvar"
	"math"
	"testing"
)

func TestCountersAndChannels(t *testing.T) {
	c := New(3)
	c.SetChannels(2)

	c.SendObserved(0, 1, 100, 5)
	c.SendObserved(0, 1, 50, 5)
	c.RecvObserved(1, 1, 100, 7)
	c.RecvObserved(1, 1, 50, 7)
	c.SendObserved(2, 2, 8, 1)
	c.RecvObserved(0, 2, 8, 1)
	c.BarrierWait(1, 10)
	c.ProbeWait(2, 20)
	c.SelectObserved(0, 4, 30)
	c.SpillWrite(1, 64)
	c.SpillWrite(1, 64)
	c.FaultInjected(2)

	if got := c.Counter(0, CtrMsgsSent); got != 2 {
		t.Errorf("rank 0 msgs_sent = %d, want 2", got)
	}
	if got := c.Total(CtrMsgsSent); got != 3 {
		t.Errorf("total msgs_sent = %d, want 3", got)
	}
	if got := c.Total(CtrBytesSent); got != 158 {
		t.Errorf("total bytes_sent = %d, want 158", got)
	}
	if got := c.Total(CtrBytesRecv); got != 158 {
		t.Errorf("total bytes_recv = %d, want 158", got)
	}
	if got := c.Total(CtrBarriers); got != 1 {
		t.Errorf("total barriers = %d, want 1", got)
	}
	if got := c.Total(CtrSpillSegments); got != 2 {
		t.Errorf("total spill_segments = %d, want 2", got)
	}
	if got := c.Total(CtrSpillBytes); got != 128 {
		t.Errorf("total spill_bytes = %d, want 128", got)
	}
	if got := c.Total(CtrFaultsInjected); got != 1 {
		t.Errorf("total faults_injected = %d, want 1", got)
	}

	snap := c.Snapshot()
	if len(snap.Channels) != 2 {
		t.Fatalf("got %d channel snapshots, want 2", len(snap.Channels))
	}
	ch1 := snap.Channels[0]
	if ch1.Chan != 1 || ch1.Sent != 2 || ch1.SentBytes != 150 || ch1.Recvd != 2 || ch1.RecvdBytes != 150 {
		t.Errorf("channel 1 snapshot wrong: %+v", ch1)
	}
	ch2 := snap.Channels[1]
	if ch2.Chan != 2 || ch2.Sent != 1 || ch2.SentBytes != 8 {
		t.Errorf("channel 2 snapshot wrong: %+v", ch2)
	}
	if snap.Totals["msgs_sent"] != 3 || snap.Totals["selects"] != 1 || snap.Totals["probes"] != 1 {
		t.Errorf("snapshot totals wrong: %v", snap.Totals)
	}
	fan, ok := snap.Hists["select_fan_in"]
	if !ok || fan.Count != 1 || fan.Min != 4 || fan.Max != 4 {
		t.Errorf("select_fan_in hist wrong: %+v (present=%v)", fan, ok)
	}
}

// Observations addressed outside the sized ranges must neither panic nor
// corrupt neighbouring cells: out-of-range ranks are dropped, channel IDs
// outside [1, n] fall through to the per-rank counters only.
func TestOutOfRangeObservations(t *testing.T) {
	c := New(2)
	c.SetChannels(1)

	c.SendObserved(-1, 1, 10, 0)
	c.SendObserved(99, 1, 10, 0)
	c.RecvObserved(-1, 1, 10, 0)
	c.BarrierWait(99, 1)
	c.FaultInjected(-5)
	if got := c.Total(CtrMsgsSent); got != 0 {
		t.Errorf("out-of-range ranks counted: total msgs_sent = %d", got)
	}

	c.SendObserved(0, 0, 10, 0)  // channel 0: no cell (IDs are 1-based)
	c.SendObserved(0, 42, 10, 0) // channel 42: beyond the sized table
	if got := c.Total(CtrMsgsSent); got != 2 {
		t.Errorf("rank counters should still see out-of-range channels: got %d, want 2", got)
	}
	snap := c.Snapshot()
	if snap.Channels[0].Sent != 0 {
		t.Errorf("channel 1 charged for out-of-range IDs: %+v", snap.Channels[0])
	}

	// Counter accessors with bad indices.
	if c.Counter(0, -1) != 0 || c.Counter(0, numCounters) != 0 || c.Total(-1) != 0 {
		t.Error("bad counter indices should read 0")
	}
}

// A nil collector is the disabled state: every method must be callable.
func TestNilCollectorSafe(t *testing.T) {
	var c *Collector
	if c.Enabled() {
		t.Error("nil collector reports enabled")
	}
	c.SetChannels(4)
	c.SendObserved(0, 1, 10, 5)
	c.RecvObserved(0, 1, 10, 5)
	c.BarrierWait(0, 1)
	c.ProbeWait(0, 1)
	c.SelectObserved(0, 2, 1)
	c.SpillWrite(0, 10)
	c.FaultInjected(0)
	if c.Counter(0, CtrMsgsSent) != 0 || c.Total(CtrMsgsSent) != 0 {
		t.Error("nil collector returned nonzero counters")
	}
	if c.NumRanks() != 0 {
		t.Error("nil collector has ranks")
	}
	if c.Snapshot() != nil {
		t.Error("nil collector produced a snapshot")
	}
	Publish(nil) // must not register or panic
}

func TestHistObserve(t *testing.T) {
	var h hist
	h.min.Store(math.MaxInt64)
	for _, v := range []int64{1, 2, 3, 100, 1000, -5} { // -5 clamps to 0
		h.observe(v)
	}
	s := h.snapshot()
	if s.Count != 6 {
		t.Errorf("count = %d, want 6", s.Count)
	}
	if s.Min != 0 {
		t.Errorf("min = %d, want 0 (negative clamped)", s.Min)
	}
	if s.Max != 1000 {
		t.Errorf("max = %d, want 1000", s.Max)
	}
	if s.Sum != 1106 {
		t.Errorf("sum = %d, want 1106", s.Sum)
	}
	if got := s.Mean(); math.Abs(got-1106.0/6) > 1e-9 {
		t.Errorf("mean = %v", got)
	}
	// Quantile returns a log2-bucket upper bound: it may overestimate
	// within a bucket but never exceeds Max or drops below Min.
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 1} {
		v := s.Quantile(q)
		if v < s.Min || v > s.Max {
			t.Errorf("Quantile(%v) = %d outside [%d, %d]", q, v, s.Min, s.Max)
		}
	}
	if v := s.Quantile(1); v != 1000 {
		t.Errorf("Quantile(1) = %d, want clamped to max 1000", v)
	}
	if v := s.Quantile(0.5); v > 3 {
		// 6 samples; the 3rd is 3 → bucket [2,3], bound 3.
		t.Errorf("Quantile(0.5) = %d, want ≤ 3", v)
	}
}

// The zero-sample regression from the satellite list: percentile math on
// an empty histogram must return 0, not divide by zero or read a bogus
// MaxInt64 min.
func TestHistQuantileEmpty(t *testing.T) {
	var s HistSnapshot
	for _, q := range []float64{-1, 0, 0.5, 0.95, 1, 2} {
		if v := s.Quantile(q); v != 0 {
			t.Errorf("empty Quantile(%v) = %d, want 0", q, v)
		}
	}
	if s.Mean() != 0 {
		t.Errorf("empty Mean = %v, want 0", s.Mean())
	}

	var h hist
	h.min.Store(math.MaxInt64)
	snap := h.snapshot()
	if snap.Min != 0 || snap.Max != 0 || snap.Count != 0 {
		t.Errorf("empty hist snapshot = %+v, want zeros", snap)
	}
	if len(snap.Buckets) != 0 {
		t.Errorf("empty hist has %d buckets", len(snap.Buckets))
	}
}

func TestMergeHists(t *testing.T) {
	var a, b, empty hist
	for _, h := range []*hist{&a, &b, &empty} {
		h.min.Store(math.MaxInt64)
	}
	a.observe(1)
	a.observe(10)
	b.observe(100)
	m := mergeHists([]HistSnapshot{a.snapshot(), b.snapshot(), empty.snapshot()})
	if m.Count != 3 || m.Sum != 111 || m.Min != 1 || m.Max != 100 {
		t.Errorf("merge = %+v", m)
	}
	if me := mergeHists([]HistSnapshot{empty.snapshot()}); me.Count != 0 || me.Min != 0 {
		t.Errorf("all-empty merge = %+v, want zeros", me)
	}
}

func TestQuantileClampsToObservedRange(t *testing.T) {
	var h hist
	h.min.Store(math.MaxInt64)
	h.observe(1000) // bucket 10: bound 1023, must clamp to 1000
	s := h.snapshot()
	if v := s.Quantile(0.5); v != 1000 {
		t.Errorf("Quantile = %d, want 1000 (clamped to max)", v)
	}
	var h2 hist
	h2.min.Store(math.MaxInt64)
	h2.observe(0)
	s2 := h2.snapshot()
	if v := s2.Quantile(1); v != 0 {
		t.Errorf("Quantile of all-zero = %d, want 0", v)
	}
}

// Observations are the hot path: they must not allocate, with or without
// channel cells in place — the same gate the PR-3 logging paths carry.
func TestObservationsDoNotAllocate(t *testing.T) {
	c := New(4)
	c.SetChannels(8)
	cases := map[string]func(){
		"SendObserved":   func() { c.SendObserved(1, 3, 128, 250) },
		"RecvObserved":   func() { c.RecvObserved(2, 3, 128, 250) },
		"BarrierWait":    func() { c.BarrierWait(0, 10) },
		"ProbeWait":      func() { c.ProbeWait(0, 10) },
		"SelectObserved": func() { c.SelectObserved(1, 5, 99) },
		"SpillWrite":     func() { c.SpillWrite(2, 4096) },
		"FaultInjected":  func() { c.FaultInjected(3) },
	}
	for name, fn := range cases {
		if n := testing.AllocsPerRun(200, fn); n != 0 {
			t.Errorf("%s allocates %v per op, want 0", name, n)
		}
	}
	var nilC *Collector
	if n := testing.AllocsPerRun(200, func() { nilC.SendObserved(0, 1, 1, 1) }); n != 0 {
		t.Errorf("disabled SendObserved allocates %v per op, want 0", n)
	}
}

func TestPublishExpvar(t *testing.T) {
	c := New(2)
	c.SendObserved(0, 1, 10, 1)
	Publish(c)
	if Published() != c {
		t.Fatal("Published() did not return the collector")
	}
	v := expvar.Get("pilot_stats")
	if v == nil {
		t.Fatal("pilot_stats not registered with expvar")
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(v.String()), &snap); err != nil {
		t.Fatalf("pilot_stats did not render as JSON: %v", err)
	}
	if snap.Totals["msgs_sent"] != 1 {
		t.Errorf("expvar totals = %v, want msgs_sent 1", snap.Totals)
	}

	// Re-publishing (a second runtime in the same process) swaps the
	// collector without panicking on a duplicate expvar name.
	c2 := New(1)
	c2.SendObserved(0, 1, 10, 1)
	c2.SendObserved(0, 1, 10, 1)
	Publish(c2)
	if err := json.Unmarshal([]byte(expvar.Get("pilot_stats").String()), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Totals["msgs_sent"] != 2 {
		t.Errorf("after swap, expvar totals = %v, want msgs_sent 2", snap.Totals)
	}
}

func TestSnapshotJSONShape(t *testing.T) {
	c := New(1)
	c.SetChannels(1)
	c.SendObserved(0, 1, 5, 2)
	data, err := json.Marshal(c.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"ranks", "channels", "totals"} {
		if _, ok := m[key]; !ok {
			t.Errorf("snapshot JSON missing %q: %s", key, data)
		}
	}
}
