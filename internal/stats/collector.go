// Package stats is the runtime observability layer: live, queryable
// numbers while ranks are running, and a machine-readable profile of the
// finished run.
//
// The live half (this file) is a Collector of per-rank, per-channel
// counters and bounded histograms, fed from the same allocation-free hot
// path the MPE logging uses. Every observation is a handful of atomic
// adds on the observing rank's own shard — no locks, no allocation — and
// aggregation happens only when somebody asks, by merging the shards
// into a Snapshot. The merged view is exported through expvar
// ("pilot_stats" on /debug/vars) so a live run can be inspected with
// nothing fancier than curl.
//
// The post-run half (profile.go) recomputes the same totals from the
// merged CLOG-2 stream; the conformance suite holds the two accountings
// exactly equal, so the live counters and the trace may never disagree.
package stats

import (
	"expvar"
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
)

// Counter indices into a shard's counter array.
const (
	// CtrMsgsSent / CtrMsgsRecv count user-data messages through Pilot
	// channels (one per wire message, matching the CLOG-2 MsgEvt records).
	CtrMsgsSent = iota
	CtrMsgsRecv
	// CtrBytesSent / CtrBytesRecv count framed payload bytes — the same
	// sizes LogSend/LogRecv put in the trace, so the cross-validation
	// against the CLOG-2 recount is exact.
	CtrBytesSent
	CtrBytesRecv
	// CtrBarriers counts completed barrier entries.
	CtrBarriers
	// CtrSelects counts PI_Select completions.
	CtrSelects
	// CtrProbes counts blocking Probe completions.
	CtrProbes
	// CtrSpillSegments / CtrSpillBytes count RobustLog write-through spill
	// traffic (one segment per writeBlock, bytes as landed on disk).
	CtrSpillSegments
	CtrSpillBytes
	// CtrFaultsInjected counts fired fault-plan events.
	CtrFaultsInjected
	// CtrWireFrames / CtrWireBytes count multi-process transport frames
	// and bytes this process wrote to the wire, attributed to its local
	// rank (always zero under the in-process transport).
	CtrWireFrames
	CtrWireBytes
	// CtrWireFaults counts wire-level fault-plan injections (delays,
	// corruptions, drops...) this process applied to its links.
	CtrWireFaults
	// CtrCrcFailures counts frames rejected by the link-layer CRC check.
	CtrCrcFailures
	// CtrHeartbeats counts PING frames this process sent to keep its
	// links' liveness clocks fresh.
	CtrHeartbeats
	// CtrReconnects counts successful link resumes after a connection
	// failure.
	CtrReconnects
	// CtrRetransmits counts sequenced frames re-sent from the unacked
	// window during a link resume.
	CtrRetransmits
	numCounters
)

// counterNames index-aligns with the counter constants (JSON keys).
var counterNames = [numCounters]string{
	"msgs_sent", "msgs_recv", "bytes_sent", "bytes_recv",
	"barriers", "selects", "probes",
	"spill_segments", "spill_bytes", "faults_injected",
	"wire_frames", "wire_bytes",
	"wire_faults_injected", "crc_failures", "heartbeats",
	"reconnects", "frames_retransmitted",
}

// Histogram indices into a shard's histogram array.
const (
	// HistWriteBlockNs / HistReadBlockNs are the time a channel write or
	// read spent blocked in the MPI substrate, nanoseconds.
	HistWriteBlockNs = iota
	HistReadBlockNs
	// HistBarrierWaitNs is time blocked inside Barrier.
	HistBarrierWaitNs
	// HistProbeWaitNs is time blocked inside a blocking Probe or Select.
	HistProbeWaitNs
	// HistSelectFanIn is the channel count of each completed Select.
	HistSelectFanIn
	numHists
)

// histNames index-aligns with the histogram constants (JSON keys).
var histNames = [numHists]string{
	"write_block_ns", "read_block_ns", "barrier_wait_ns",
	"probe_wait_ns", "select_fan_in",
}

// numBuckets covers bits.Len64 of any non-negative int64: bucket 0 holds
// the value 0, bucket i holds [2^(i-1), 2^i). Fixed size, so a histogram
// is one flat array of atomics — bounded memory no matter the run length.
const numBuckets = 64

// hist is one bounded log2 histogram, updated with atomics only.
type hist struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	min     atomic.Int64 // math.MaxInt64 while empty
	buckets [numBuckets]atomic.Int64
}

func (h *hist) observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
}

// shard is one rank's private slice of the collector. Ranks only ever
// write their own shard, so the atomics never contend in the steady
// state; padding keeps neighbouring shards off one cache line.
type shard struct {
	counters [numCounters]atomic.Int64
	hists    [numHists]hist
	_        [64]byte
}

// chanCell is one channel's counters. A Pilot channel has exactly one
// writing and one reading rank, so at most two goroutines touch a cell.
type chanCell struct {
	sent, sentBytes   atomic.Int64
	recvd, recvdBytes atomic.Int64
	writeNs, readNs   atomic.Int64
}

// Collector gathers live metrics for one Pilot run. A nil *Collector is
// the disabled state: every method is a no-op on a nil receiver, so call
// sites hoist a single `mx := r.metrics` and need no second flag.
type Collector struct {
	shards []shard
	chans  atomic.Pointer[[]chanCell]
}

// New creates a collector for a world of numRanks ranks.
func New(numRanks int) *Collector {
	if numRanks < 1 {
		numRanks = 1
	}
	c := &Collector{shards: make([]shard, numRanks)}
	for i := range c.shards {
		for j := range c.shards[i].hists {
			c.shards[i].hists[j].min.Store(math.MaxInt64)
		}
	}
	return c
}

// Enabled reports whether metrics are being collected.
func (c *Collector) Enabled() bool { return c != nil }

// NumRanks returns the shard count.
func (c *Collector) NumRanks() int {
	if c == nil {
		return 0
	}
	return len(c.shards)
}

// SetChannels sizes the per-channel cells for channel IDs 1..n. Pilot
// calls it at PI_StartAll, once the channel table is final; observations
// carrying an ID outside the sized range fall through to the per-rank
// counters only.
func (c *Collector) SetChannels(n int) {
	if c == nil || n < 0 {
		return
	}
	cells := make([]chanCell, n)
	c.chans.Store(&cells)
}

// cell returns channel id's cell (1-based IDs), or nil.
func (c *Collector) cell(id int) *chanCell {
	cells := c.chans.Load()
	if cells == nil || id < 1 || id > len(*cells) {
		return nil
	}
	return &(*cells)[id-1]
}

func (c *Collector) shard(rank int) *shard {
	if rank < 0 || rank >= len(c.shards) {
		return nil
	}
	return &c.shards[rank]
}

// SendObserved records one channel send: nbytes framed bytes from rank
// down channel ch, having spent blockNs blocked in the substrate.
func (c *Collector) SendObserved(rank, ch, nbytes int, blockNs int64) {
	if c == nil {
		return
	}
	s := c.shard(rank)
	if s == nil {
		return // unknown rank: drop the whole observation, cells included
	}
	s.counters[CtrMsgsSent].Add(1)
	s.counters[CtrBytesSent].Add(int64(nbytes))
	s.hists[HistWriteBlockNs].observe(blockNs)
	if cell := c.cell(ch); cell != nil {
		cell.sent.Add(1)
		cell.sentBytes.Add(int64(nbytes))
		cell.writeNs.Add(blockNs)
	}
}

// RecvObserved records one channel receive, the mirror of SendObserved.
func (c *Collector) RecvObserved(rank, ch, nbytes int, blockNs int64) {
	if c == nil {
		return
	}
	s := c.shard(rank)
	if s == nil {
		return
	}
	s.counters[CtrMsgsRecv].Add(1)
	s.counters[CtrBytesRecv].Add(int64(nbytes))
	s.hists[HistReadBlockNs].observe(blockNs)
	if cell := c.cell(ch); cell != nil {
		cell.recvd.Add(1)
		cell.recvdBytes.Add(int64(nbytes))
		cell.readNs.Add(blockNs)
	}
}

// BarrierWait records one completed barrier entry and its blocked time.
func (c *Collector) BarrierWait(rank int, ns int64) {
	if c == nil {
		return
	}
	if s := c.shard(rank); s != nil {
		s.counters[CtrBarriers].Add(1)
		s.hists[HistBarrierWaitNs].observe(ns)
	}
}

// ProbeWait records one completed blocking probe and its blocked time.
func (c *Collector) ProbeWait(rank int, ns int64) {
	if c == nil {
		return
	}
	if s := c.shard(rank); s != nil {
		s.counters[CtrProbes].Add(1)
		s.hists[HistProbeWaitNs].observe(ns)
	}
}

// SelectObserved records one completed PI_Select over fanIn channels,
// having waited ns nanoseconds for a ready one.
func (c *Collector) SelectObserved(rank, fanIn int, ns int64) {
	if c == nil {
		return
	}
	if s := c.shard(rank); s != nil {
		s.counters[CtrSelects].Add(1)
		s.hists[HistSelectFanIn].observe(int64(fanIn))
		s.hists[HistProbeWaitNs].observe(ns)
	}
}

// SpillWrite records one spill segment of nbytes landing on disk.
func (c *Collector) SpillWrite(rank, nbytes int) {
	if c == nil {
		return
	}
	if s := c.shard(rank); s != nil {
		s.counters[CtrSpillSegments].Add(1)
		s.counters[CtrSpillBytes].Add(int64(nbytes))
	}
}

// WireObserved records frames/nbytes written to the multi-process
// transport wire by the process hosting rank.
func (c *Collector) WireObserved(rank, frames, nbytes int) {
	if c == nil {
		return
	}
	if s := c.shard(rank); s != nil {
		s.counters[CtrWireFrames].Add(int64(frames))
		s.counters[CtrWireBytes].Add(int64(nbytes))
	}
}

// WireCounted adds n to one of the wire-hardening counters (CtrWireFaults,
// CtrCrcFailures, CtrHeartbeats, CtrReconnects, CtrRetransmits) for the
// process hosting rank. One entry point keeps the transport's accounting
// calls as cheap as the frames they count.
func (c *Collector) WireCounted(rank, ctr int, n int64) {
	if c == nil || ctr < CtrWireFaults || ctr > CtrRetransmits {
		return
	}
	if s := c.shard(rank); s != nil {
		s.counters[ctr].Add(n)
	}
}

// FaultInjected records one fired fault-plan event on rank.
func (c *Collector) FaultInjected(rank int) {
	if c == nil {
		return
	}
	if s := c.shard(rank); s != nil {
		s.counters[CtrFaultsInjected].Add(1)
	}
}

// Counter returns one rank's live value of counter ctr.
func (c *Collector) Counter(rank, ctr int) int64 {
	if c == nil || ctr < 0 || ctr >= numCounters {
		return 0
	}
	s := c.shard(rank)
	if s == nil {
		return 0
	}
	return s.counters[ctr].Load()
}

// Total sums counter ctr across all ranks.
func (c *Collector) Total(ctr int) int64 {
	if c == nil || ctr < 0 || ctr >= numCounters {
		return 0
	}
	var t int64
	for i := range c.shards {
		t += c.shards[i].counters[ctr].Load()
	}
	return t
}

// HistSnapshot is one histogram's merged, immutable view.
type HistSnapshot struct {
	Count   int64   `json:"count"`
	Sum     int64   `json:"sum"`
	Min     int64   `json:"min"`
	Max     int64   `json:"max"`
	Buckets []int64 `json:"buckets,omitempty"` // log2 buckets, trailing zeros trimmed
}

// Mean returns the arithmetic mean, 0 when empty.
func (h HistSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Quantile returns an upper bound on the q-quantile (0 ≤ q ≤ 1) from the
// log2 buckets: the largest value the bucket holding the q'th sample
// could contain, clamped to the observed Max. An empty histogram returns
// 0 for every q — the zero-sample edge the report paths must survive.
func (h HistSnapshot) Quantile(q float64) int64 {
	if h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(h.Count)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, n := range h.Buckets {
		cum += n
		if cum >= target {
			var hi int64
			if i == 0 {
				hi = 0
			} else if i >= 63 {
				hi = math.MaxInt64
			} else {
				hi = int64(1)<<uint(i) - 1
			}
			if hi > h.Max {
				hi = h.Max
			}
			if hi < h.Min {
				hi = h.Min
			}
			return hi
		}
	}
	return h.Max
}

func (h *hist) snapshot() HistSnapshot {
	s := HistSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Min:   h.min.Load(),
		Max:   h.max.Load(),
	}
	if s.Count == 0 {
		s.Min = 0
		return s
	}
	last := -1
	var raw [numBuckets]int64
	for i := range h.buckets {
		raw[i] = h.buckets[i].Load()
		if raw[i] != 0 {
			last = i
		}
	}
	if last >= 0 {
		s.Buckets = append([]int64(nil), raw[:last+1]...)
	}
	return s
}

// mergeHists folds per-rank snapshots of the same histogram into one.
func mergeHists(hs []HistSnapshot) HistSnapshot {
	out := HistSnapshot{Min: math.MaxInt64}
	for _, h := range hs {
		if h.Count == 0 {
			continue
		}
		out.Count += h.Count
		out.Sum += h.Sum
		if h.Max > out.Max {
			out.Max = h.Max
		}
		if h.Min < out.Min {
			out.Min = h.Min
		}
		for i, n := range h.Buckets {
			for len(out.Buckets) <= i {
				out.Buckets = append(out.Buckets, 0)
			}
			out.Buckets[i] += n
		}
	}
	if out.Count == 0 {
		out.Min = 0
	}
	return out
}

// RankSnapshot is one rank's merged counters and histograms.
type RankSnapshot struct {
	Rank     int                     `json:"rank"`
	Counters map[string]int64        `json:"counters"`
	Hists    map[string]HistSnapshot `json:"hists,omitempty"`
}

// ChanSnapshot is one channel's counters.
type ChanSnapshot struct {
	Chan       int   `json:"chan"` // 1-based channel ID (the wire tag)
	Sent       int64 `json:"sent"`
	SentBytes  int64 `json:"sent_bytes"`
	Recvd      int64 `json:"recvd"`
	RecvdBytes int64 `json:"recvd_bytes"`
	WriteNs    int64 `json:"write_ns"`
	ReadNs     int64 `json:"read_ns"`
}

// Snapshot is a consistent-enough merged view of the collector: each
// value is an atomic load, so a snapshot taken mid-run may straddle an
// in-flight observation, but a snapshot taken after the run is exact.
type Snapshot struct {
	Ranks    []RankSnapshot          `json:"ranks"`
	Channels []ChanSnapshot          `json:"channels,omitempty"`
	Totals   map[string]int64        `json:"totals"`
	Hists    map[string]HistSnapshot `json:"hists,omitempty"`
}

// Snapshot merges the shards into an immutable view.
func (c *Collector) Snapshot() *Snapshot {
	if c == nil {
		return nil
	}
	snap := &Snapshot{Totals: map[string]int64{}, Hists: map[string]HistSnapshot{}}
	perHist := make([][]HistSnapshot, numHists)
	for rank := range c.shards {
		s := &c.shards[rank]
		rs := RankSnapshot{Rank: rank, Counters: map[string]int64{}}
		for i := 0; i < numCounters; i++ {
			v := s.counters[i].Load()
			rs.Counters[counterNames[i]] = v
			snap.Totals[counterNames[i]] += v
		}
		for i := 0; i < numHists; i++ {
			hs := s.hists[i].snapshot()
			perHist[i] = append(perHist[i], hs)
			if hs.Count > 0 {
				if rs.Hists == nil {
					rs.Hists = map[string]HistSnapshot{}
				}
				rs.Hists[histNames[i]] = hs
			}
		}
		snap.Ranks = append(snap.Ranks, rs)
	}
	for i := 0; i < numHists; i++ {
		if m := mergeHists(perHist[i]); m.Count > 0 {
			snap.Hists[histNames[i]] = m
		}
	}
	if cells := c.chans.Load(); cells != nil {
		for i := range *cells {
			cell := &(*cells)[i]
			cs := ChanSnapshot{
				Chan:       i + 1,
				Sent:       cell.sent.Load(),
				SentBytes:  cell.sentBytes.Load(),
				Recvd:      cell.recvd.Load(),
				RecvdBytes: cell.recvdBytes.Load(),
				WriteNs:    cell.writeNs.Load(),
				ReadNs:     cell.readNs.Load(),
			}
			snap.Channels = append(snap.Channels, cs)
		}
	}
	return snap
}

// expvar export. The name can be published exactly once per process, so
// the registration happens through a Once and reads through an atomic
// pointer that always reflects the most recent collector — a test suite
// creating many runtimes never panics on a duplicate name.
var (
	publishOnce sync.Once
	publishedC  atomic.Pointer[Collector]
)

// Publish exposes c as the expvar variable "pilot_stats" (visible on any
// /debug/vars endpoint). Later calls atomically swap which collector the
// variable reads; a nil c is ignored.
func Publish(c *Collector) {
	if c == nil {
		return
	}
	publishedC.Store(c)
	publishOnce.Do(func() {
		expvar.Publish("pilot_stats", expvar.Func(func() any {
			return publishedC.Load().Snapshot()
		}))
	})
}

// Published returns the collector currently exported via expvar, or nil.
func Published() *Collector { return publishedC.Load() }
