// The windowed, index-accelerated profile path: profile only the blocks
// whose time fences intersect [t0, t1] by seeking through the ".idx"
// sidecar, degrading to the streaming windowed scan whenever the sidecar
// is absent, stale, or fails validation. Both paths feed the same
// profiler, so their answers are identical by construction: the index
// only skips blocks that contain no in-window non-definition records,
// definition-bearing blocks are always visited (IncludeDefs), and blocks
// arrive in file order either way.
package stats

import (
	"fmt"
	"math"
	"os"

	"repro/internal/clog2"
	"repro/internal/idx"
)

// ComputeProfileFileWindowed profiles the CLOG-2 file at path over the
// inclusive time window [t0, t1] (use math.Inf bounds for "no limit").
// When a valid index sidecar sits next to the file, only the blocks the
// window can touch are decoded; the boolean result reports whether the
// index was used. Every degradation — no sidecar, stale sidecar,
// validation failure, or an index that turns out to lie about the file —
// falls back to the full streaming scan.
func ComputeProfileFileWindowed(path string, t0, t1 float64) (*Profile, bool, error) {
	if ix, err := idx.Load(path); err == nil {
		p, err := ComputeProfileIndexed(path, ix, t0, t1)
		if err == nil {
			return p, true, nil
		}
		// The sidecar validated but disagreed with the file (or the file
		// grew unreadable mid-scan): re-answer from the log itself.
	}
	p, err := computeProfileScan(path, t0, t1)
	return p, false, err
}

func computeProfileScan(path string, t0, t1 float64) (*Profile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	p, err := ComputeProfileWindowed(f, t0, t1)
	if err != nil {
		return nil, fmt.Errorf("stats: profiling %s: %w", path, err)
	}
	return p, nil
}

// ComputeProfileIndexed profiles through a specific, already-validated
// index, with no fallback: an index/file disagreement surfaces as an
// error. Callers that want graceful degradation use
// ComputeProfileFileWindowed; this entry point exists for equality
// verification (pilot-index verify), where a silent fallback would
// defeat the purpose.
func ComputeProfileIndexed(path string, ix *idx.Index, t0, t1 float64) (*Profile, error) {
	q := idx.MatchAll()
	q.T0, q.T1 = t0, t1
	q.IncludeDefs = true
	sel := ix.Select(q)
	pp := newProfiler(ix.NumRanks, t0, t1)
	if err := idx.ScanFile(path, ix, sel, func(b clog2.Block) error {
		pp.addBlock(b)
		return nil
	}); err != nil {
		return nil, err
	}
	return pp.finish(), nil
}

// NoLimit returns the unbounded window bounds — a convenience for
// callers threading optional -t0/-t1 flags.
func NoLimit() (t0, t1 float64) { return math.Inf(-1), math.Inf(1) }
