package colors

import "testing"

func TestHex(t *testing.T) {
	if got := Red.Hex(); got != "#ff0000" {
		t.Errorf("Red.Hex() = %q", got)
	}
	if got := ForestGreen.Hex(); got != "#228b22" {
		t.Errorf("ForestGreen.Hex() = %q", got)
	}
}

func TestPaperAssignments(t *testing.T) {
	// The explicit colour assignments from the paper.
	checks := map[string]Color{
		"PI_Read":      Red,
		"PI_Write":     Green,
		"PI_Broadcast": ForestGreen,
		"PI_Gather":    IndianRed,
		"PI_Configure": Bisque,
		"Compute":      Gray,
	}
	for name, want := range checks {
		if got := StateColor(name); got != want {
			t.Errorf("StateColor(%q) = %v, want %v", name, got, want)
		}
	}
	if EventColor != Yellow {
		t.Errorf("EventColor = %v, want yellow", EventColor)
	}
	if ArrowColor != White {
		t.Errorf("ArrowColor = %v, want white", ArrowColor)
	}
}

func TestFirstPrincipleSameCategorySimilarColours(t *testing.T) {
	// All input states must be red-dominant, all output states
	// green-dominant: the "at least recognise input vs output at a glance"
	// property promised by the paper.
	for name, cat := range Categories {
		c, ok := StateColors[name]
		if !ok {
			continue // bubble-only functions have no state colour
		}
		switch cat {
		case Input:
			if c.R <= c.G {
				t.Errorf("%s is Input but colour %v is not red-dominant", name, c)
			}
		case Output:
			if c.G <= c.R {
				t.Errorf("%s is Output but colour %v is not green-dominant", name, c)
			}
		}
	}
}

func TestSecondPrincipleCollectiveShades(t *testing.T) {
	// Collective greens are darker shades of the point-to-point green.
	lum := func(c Color) int { return int(c.R) + int(c.G) + int(c.B) }
	if lum(StateColor("PI_Broadcast")) >= lum(StateColor("PI_Write")) {
		t.Error("PI_Broadcast should be a darker shade than PI_Write")
	}
	if lum(StateColor("PI_Scatter")) >= lum(StateColor("PI_Write")) {
		t.Error("PI_Scatter should be a darker shade than PI_Write")
	}
	// Collective reds are distinct, desaturated shades of the
	// point-to-point red (IndianRed per the paper), still red-dominant.
	sat := func(c Color) int {
		max, min := int(c.R), int(c.R)
		for _, v := range []int{int(c.G), int(c.B)} {
			if v > max {
				max = v
			}
			if v < min {
				min = v
			}
		}
		return max - min
	}
	for _, name := range []string{"PI_Gather", "PI_Reduce"} {
		c := StateColor(name)
		if c == StateColor("PI_Read") {
			t.Errorf("%s must be a different shade from PI_Read", name)
		}
		if sat(c) >= sat(StateColor("PI_Read")) {
			t.Errorf("%s should be a desaturated shade of red", name)
		}
	}
}

func TestUnknownDefaults(t *testing.T) {
	if got := StateColor("NoSuchState"); got != Gray {
		t.Errorf("unknown state colour = %v, want gray", got)
	}
	if got := CategoryOf("NoSuchFunc"); got != Other {
		t.Errorf("unknown category = %v, want Other", got)
	}
}

func TestEveryDisplayableStateHasCategory(t *testing.T) {
	for name := range StateColors {
		if _, ok := Categories[name]; !ok {
			t.Errorf("state %q has a colour but no category", name)
		}
	}
}

func TestCategoryString(t *testing.T) {
	cases := map[Category]string{Output: "output", Input: "input", Admin: "admin", Other: "other"}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("%v.String() = %q, want %q", uint8(c), got, want)
		}
	}
	if got := Category(9).String(); got != "Category(9)" {
		t.Errorf("invalid category String() = %q", got)
	}
}

func TestCategoryColors(t *testing.T) {
	if CategoryColor(Input) != Red || CategoryColor(Output) != Green ||
		CategoryColor(Admin) != Gray || CategoryColor(Other) != Yellow {
		t.Error("category preview colours diverge from the paper's stripes (red, green, gray)")
	}
}
