// Package colors implements the paper's colour plan (Section III.A): Pilot
// functions are split into output, input, administrative, and other
// categories; functions in a category share similar colours, and within a
// category light shades mark simple channel I/O while dark shades mark
// collective operations. Red is the input theme ("red" ~ "read", red means
// stop — reads always block) and green the output theme (green means go —
// a write signals a waiting reader).
//
// This package is the Go equivalent of the colour-assignment header file
// the paper describes: change the tables here and rebuild to retheme the
// visual log.
package colors

import "fmt"

// Category classifies a Pilot function for colouring (Section III.A).
type Category uint8

// Function categories.
const (
	// Output covers message-producing functions (PI_Write and the
	// collective output operations).
	Output Category = iota
	// Input covers message-consuming functions (PI_Read, collective input
	// operations, and PI_Select, which blocks like a read).
	Input
	// Admin covers non-I/O lifecycle functions (PI_Configure phase, the
	// Compute state between PI_StartAll and PI_StopMain).
	Admin
	// Other covers functions too minor to display as states; they appear
	// only as event bubbles, if at all.
	Other
)

// String implements fmt.Stringer.
func (c Category) String() string {
	switch c {
	case Output:
		return "output"
	case Input:
		return "input"
	case Admin:
		return "admin"
	case Other:
		return "other"
	}
	return fmt.Sprintf("Category(%d)", uint8(c))
}

// Color is a named RGB colour. Names follow the X11/Jumpshot palette the
// paper uses (red, green, ForestGreen, IndianRed, bisque, gray...).
type Color struct {
	Name    string
	R, G, B uint8
}

// Hex renders the colour as an SVG/CSS hex string.
func (c Color) Hex() string { return fmt.Sprintf("#%02x%02x%02x", c.R, c.G, c.B) }

// The palette. The paper's explicit assignments: PI_Read red, PI_Write
// green, PI_Broadcast ForestGreen, PI_Gather IndianRed, Configure bisque,
// Compute gray, bubbles yellow, arrows white.
var (
	Red         = Color{"red", 0xff, 0x00, 0x00}
	Green       = Color{"green", 0x00, 0xff, 0x00} // X11 green, as in Jumpshot's palette
	ForestGreen = Color{"ForestGreen", 0x22, 0x8b, 0x22}
	DarkGreen   = Color{"DarkGreen", 0x00, 0x64, 0x00}
	IndianRed   = Color{"IndianRed", 0xcd, 0x5c, 0x5c}
	Firebrick   = Color{"firebrick", 0xb2, 0x22, 0x22}
	Salmon      = Color{"salmon", 0xfa, 0x80, 0x72}
	Bisque      = Color{"bisque", 0xff, 0xe4, 0xc4}
	Gray        = Color{"gray", 0x80, 0x80, 0x80}
	Yellow      = Color{"yellow", 0xff, 0xff, 0x00}
	White       = Color{"white", 0xff, 0xff, 0xff}
	Black       = Color{"black", 0x00, 0x00, 0x00}
	Orange      = Color{"orange", 0xff, 0xa5, 0x00}
	Magenta     = Color{"magenta", 0xff, 0x00, 0xff}
)

// StateColors maps each displayable Pilot state name to its colour.
// Light red/green = point-to-point; dark shades = collective (second
// principle of the plan).
var StateColors = map[string]Color{
	"PI_Read":      Red,
	"PI_Write":     Green,
	"PI_Broadcast": ForestGreen,
	"PI_Scatter":   DarkGreen,
	"PI_Gather":    IndianRed,
	"PI_Reduce":    Firebrick,
	"PI_Select":    Salmon,
	"PI_Configure": Bisque,
	"Compute":      Gray,
}

// EventColor is the colour for solo-event bubbles (message arrivals,
// PI_Log, PI_TrySelect and friends).
var EventColor = Yellow

// FaultEventColor marks injected-fault bubbles: orange is reserved so a
// stall, delay, crash or clock jump planted by an mpi.FaultPlan stands
// apart from ordinary yellow events in the timeline.
var FaultEventColor = Orange

// DeadlockEventColor marks the detector's deadlock report bubble on the
// service timeline — the one event you most want to be able to point at.
var DeadlockEventColor = Magenta

// ArrowColor is the colour for message arrows between timelines.
var ArrowColor = White

// Categories maps Pilot function names to their category.
var Categories = map[string]Category{
	"PI_Write":          Output,
	"PI_Broadcast":      Output,
	"PI_Scatter":        Output,
	"PI_Read":           Input,
	"PI_Gather":         Input,
	"PI_Reduce":         Input,
	"PI_Select":         Input,
	"PI_Configure":      Admin,
	"Compute":           Admin,
	"PI_ChannelHasData": Other,
	"PI_TrySelect":      Other,
	"PI_Log":            Other,
	"PI_StartTime":      Other,
	"PI_EndTime":        Other,
	"PI_SetName":        Other,
	"PI_Abort":          Other,
	"FaultInjected":     Other,
	"Deadlock":          Other,
}

// StateColor returns the colour assigned to a state name, defaulting to
// gray for unknown names so a new state is visible rather than invisible.
func StateColor(name string) Color {
	if c, ok := StateColors[name]; ok {
		return c
	}
	return Gray
}

// CategoryOf returns the category of a function name, defaulting to Other.
func CategoryOf(name string) Category {
	if c, ok := Categories[name]; ok {
		return c
	}
	return Other
}

// CategoryColor returns a representative colour per category, used for the
// striped preview rectangles Jumpshot draws in zoomed-out intervals (the
// paper's "red, green or gray" stripes).
func CategoryColor(c Category) Color {
	switch c {
	case Output:
		return Green
	case Input:
		return Red
	case Admin:
		return Gray
	default:
		return Yellow
	}
}
