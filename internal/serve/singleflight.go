package serve

import "sync"

// flightGroup collapses concurrent duplicate work: when n requests ask
// for the same cold tile (or the same undecoded trace) at once, one
// does the work and n-1 wait for its result. A miniature of
// golang.org/x/sync/singleflight — the stdlib-only constraint rules
// out the real one, and pilot-serve needs exactly Do.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	wg  sync.WaitGroup
	val any
	err error
}

// Do runs fn once per key among concurrent callers; every caller gets
// the same result. shared reports whether the result came from another
// caller's flight.
func (g *flightGroup) Do(key string, fn func() (any, error)) (val any, err error, shared bool) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*flightCall)
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, c.err, true
	}
	c := &flightCall{}
	c.wg.Add(1)
	g.calls[key] = c
	g.mu.Unlock()

	func() {
		defer func() {
			// A panicking fn must not strand waiters: record it as an
			// error and release them, then let the panic continue to
			// the handler's recovery layer.
			if r := recover(); r != nil {
				c.err = panicError{r}
				g.finish(key, c)
				panic(r)
			}
		}()
		c.val, c.err = fn()
	}()
	g.finish(key, c)
	return c.val, c.err, false
}

func (g *flightGroup) finish(key string, c *flightCall) {
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	c.wg.Done()
}

// panicError is the error waiters see when the flight's worker panics.
type panicError struct{ v any }

func (p panicError) Error() string { return "serve: concurrent request panicked" }
