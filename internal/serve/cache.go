package serve

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// lruCache is a mutex-guarded, entry-bounded LRU. pilot-serve keeps two:
// decoded *slog2.File traces (few entries, each potentially large) and
// rendered tile bytes (many small entries). Bounding by entry count
// keeps the policy obvious; the tile key embeds the trace generation so
// tiles of a replaced trace fall out by never being asked for again.
type lruCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List
	items map[string]*list.Element

	hits, misses atomic.Int64
}

type lruEntry struct {
	key string
	val any
}

func newLRU(max int) *lruCache {
	if max < 1 {
		max = 1
	}
	return &lruCache{max: max, ll: list.New(), items: make(map[string]*list.Element)}
}

// get returns the cached value and marks it most-recently-used.
func (c *lruCache) get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// add inserts or refreshes key, evicting the least-recently-used
// entries beyond the bound.
func (c *lruCache) add(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry).val = val
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	for c.ll.Len() > c.max {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.items, el.Value.(*lruEntry).key)
	}
}

func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
