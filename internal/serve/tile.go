package serve

import (
	"encoding/json"
	"fmt"
	"net/url"
	"strconv"

	"repro/internal/jumpshot"
	"repro/internal/slog2"
)

// tileParams is one parsed tile query: the time×rank window, the zoom
// level (raster width for SVG tiles), and the output format.
type tileParams struct {
	win    jumpshot.Window
	zoom   int
	format string // "json" or "svg"
}

const (
	// tileBaseWidth is the SVG pixel width at zoom 0; each zoom level
	// doubles it.
	tileBaseWidth = 512
	maxZoom       = 6
)

// parseTileParams reads t0/t1/r0/r1/zoom/format from the query,
// defaulting to the whole log, all ranks, zoom 0, JSON. Hostile or
// nonsensical values come back as errors for a 400, never a panic.
func parseTileParams(q url.Values, f *slog2.File) (tileParams, error) {
	p := tileParams{
		win:    jumpshot.Window{T0: f.Start, T1: f.End, RankLo: 0, RankHi: -1},
		format: "json",
	}
	getF := func(key string, dst *float64) error {
		s := q.Get(key)
		if s == "" {
			return nil
		}
		v, err := strconv.ParseFloat(s, 64)
		if err != nil || v != v { // reject NaN: it poisons window math
			return fmt.Errorf("serve: bad %s=%q", key, s)
		}
		*dst = v
		return nil
	}
	getI := func(key string, dst *int) error {
		s := q.Get(key)
		if s == "" {
			return nil
		}
		v, err := strconv.Atoi(s)
		if err != nil {
			return fmt.Errorf("serve: bad %s=%q", key, s)
		}
		*dst = v
		return nil
	}
	if err := getF("t0", &p.win.T0); err != nil {
		return p, err
	}
	if err := getF("t1", &p.win.T1); err != nil {
		return p, err
	}
	if err := getI("r0", &p.win.RankLo); err != nil {
		return p, err
	}
	if err := getI("r1", &p.win.RankHi); err != nil {
		return p, err
	}
	if err := getI("zoom", &p.zoom); err != nil {
		return p, err
	}
	if p.win.T1 < p.win.T0 {
		return p, fmt.Errorf("serve: empty time window [%g,%g]", p.win.T0, p.win.T1)
	}
	if p.zoom < 0 || p.zoom > maxZoom {
		return p, fmt.Errorf("serve: zoom %d outside [0,%d]", p.zoom, maxZoom)
	}
	if p.win.RankLo < 0 {
		return p, fmt.Errorf("serve: r0 %d negative", p.win.RankLo)
	}
	switch fm := q.Get("format"); fm {
	case "", "json":
		p.format = "json"
	case "svg":
		p.format = "svg"
	default:
		return p, fmt.Errorf("serve: unknown format %q", fm)
	}
	return p, nil
}

// cacheKey identifies one rendered tile: trace identity+generation
// crossed with every parameter that affects the bytes.
func (p tileParams) cacheKey(tr *Trace) string {
	return fmt.Sprintf("tile\x00%s\x00%s\x00%s|t0=%.12g|t1=%.12g|r0=%d|r1=%d|z=%d",
		tr.ID, tr.Gen, p.format, p.win.T0, p.win.T1, p.win.RankLo, p.win.RankHi, p.zoom)
}

// Tile JSON DTOs: the wire schema, decoupled from the slog2 structs.
type tileStateJSON struct {
	Rank  int     `json:"rank"`
	Cat   int     `json:"cat"`
	Start float64 `json:"t0"`
	End   float64 `json:"t1"`
	Cargo string  `json:"cargo,omitempty"`
}

type tileArrowJSON struct {
	Src   int     `json:"src"`
	Dst   int     `json:"dst"`
	Start float64 `json:"t0"`
	End   float64 `json:"t1"`
	Tag   int     `json:"tag"`
	Size  int     `json:"size"`
}

type tileEventJSON struct {
	Rank  int     `json:"rank"`
	Cat   int     `json:"cat"`
	Time  float64 `json:"t"`
	Cargo string  `json:"cargo,omitempty"`
}

type tileJSON struct {
	Trace  string          `json:"trace"`
	T0     float64         `json:"t0"`
	T1     float64         `json:"t1"`
	RankLo int             `json:"r0"`
	RankHi int             `json:"r1"`
	States []tileStateJSON `json:"states"`
	Arrows []tileArrowJSON `json:"arrows"`
	Events []tileEventJSON `json:"events"`
}

// RenderTileJSON fetches the tile's drawables via the frame tree and
// marshals them. Exported so tests and the smoke client can byte-compare
// a served tile against a direct render.
func RenderTileJSON(tr *Trace, win jumpshot.Window) ([]byte, error) {
	states, arrows, events := jumpshot.Tile(tr.File, win)
	out := tileJSON{
		Trace: tr.ID, T0: win.T0, T1: win.T1, RankLo: win.RankLo, RankHi: win.RankHi,
		States: make([]tileStateJSON, 0, len(states)),
		Arrows: make([]tileArrowJSON, 0, len(arrows)),
		Events: make([]tileEventJSON, 0, len(events)),
	}
	for _, s := range states {
		out.States = append(out.States, tileStateJSON{
			Rank: s.Rank, Cat: s.Cat, Start: s.Start, End: s.End, Cargo: s.StartCargo,
		})
	}
	for _, a := range arrows {
		out.Arrows = append(out.Arrows, tileArrowJSON{
			Src: a.SrcRank, Dst: a.DstRank, Start: a.Start, End: a.End, Tag: a.Tag, Size: a.Size,
		})
	}
	for _, e := range events {
		out.Events = append(out.Events, tileEventJSON{
			Rank: e.Rank, Cat: e.Cat, Time: e.Time, Cargo: e.Cargo,
		})
	}
	return json.Marshal(out)
}

// RenderTileSVG renders the tile as an SVG document via the jumpshot
// renderer, rank-windowed through View.RankOrder; zoom picks the raster
// width (512px at zoom 0, doubling per level).
func RenderTileSVG(tr *Trace, win jumpshot.Window, zoom int) []byte {
	v := jumpshot.View{
		From: win.T0, To: win.T1,
		Width:     tileBaseWidth << zoom,
		RankOrder: jumpshot.TileRankOrder(tr.File, win),
		Title:     fmt.Sprintf("%s [%.6g, %.6g]", tr.ID, win.T0, win.T1),
	}
	return []byte(jumpshot.RenderSVG(tr.File, v))
}

// renderTile dispatches on format and returns (body, content type).
func renderTile(tr *Trace, p tileParams) ([]byte, string, error) {
	if p.format == "svg" {
		return RenderTileSVG(tr, p.win, p.zoom), "image/svg+xml; charset=utf-8", nil
	}
	body, err := RenderTileJSON(tr, p.win)
	return body, "application/json; charset=utf-8", err
}

// Legend JSON DTO.
type legendEntryJSON struct {
	Name  string  `json:"name"`
	Color string  `json:"color"`
	Kind  string  `json:"kind"`
	Count int     `json:"count"`
	Incl  float64 `json:"incl"`
	Excl  float64 `json:"excl"`
}

// RenderLegendJSON computes the legend table over [t0, t1] and
// marshals it.
func RenderLegendJSON(tr *Trace, t0, t1 float64) ([]byte, error) {
	entries := jumpshot.Legend(tr.File, t0, t1)
	out := make([]legendEntryJSON, 0, len(entries))
	for _, e := range entries {
		kind := "state"
		if e.Kind == slog2.KindEvent {
			kind = "event"
		}
		out = append(out, legendEntryJSON{
			Name: e.Name, Color: e.Color, Kind: kind,
			Count: e.Count, Incl: e.Incl, Excl: e.Excl,
		})
	}
	return json.Marshal(out)
}

// searchHitJSON is one /search result row.
type searchHitJSON struct {
	Kind   string  `json:"kind"`
	Name   string  `json:"name"`
	Rank   int     `json:"rank"`
	Start  float64 `json:"t0"`
	End    float64 `json:"t1"`
	Detail string  `json:"detail"`
}

// RenderSearchJSON wraps jumpshot.Search and marshals its hits.
func RenderSearchJSON(tr *Trace, opts jumpshot.SearchOptions) ([]byte, error) {
	hits := jumpshot.Search(tr.File, opts)
	out := make([]searchHitJSON, 0, len(hits))
	for _, h := range hits {
		out = append(out, searchHitJSON{
			Kind: h.Kind, Name: h.Name, Rank: h.Rank,
			Start: h.Start, End: h.End, Detail: h.Detail,
		})
	}
	return json.Marshal(out)
}
