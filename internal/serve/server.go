package serve

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"hash/fnv"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/jumpshot"
)

// Config tunes a Server.
type Config struct {
	// RepoDir is the trace repository directory (required).
	RepoDir string
	// MaxTraces bounds the decoded-file LRU (default 8).
	MaxTraces int
	// MaxTiles bounds the rendered-tile LRU (default 4096).
	MaxTiles int
	// Logf, when set, receives one line per request error; nil is quiet.
	Logf func(format string, args ...any)
}

// Server answers tile queries over a trace repository. Create with
// New, mount via Handler, or run with Serve for the full production
// posture (graceful shutdown included).
type Server struct {
	repo  *Repo
	tiles *lruCache
	sf    flightGroup
	mux   *http.ServeMux
	logf  func(string, ...any)

	// counters behind the "pilot_serve" expvar.
	requests      atomic.Int64
	errors        atomic.Int64
	tilesRendered atomic.Int64
	tilesShared   atomic.Int64 // singleflight-collapsed tile renders
	notModified   atomic.Int64
	bytesSent     atomic.Int64
	// windowed-profile accounting: how many t0/t1 profile queries ran,
	// and how many of those the index sidecar answered (the rest fell
	// back to the full streaming scan).
	profilesWindowed atomic.Int64
	profilesIndexed  atomic.Int64
	// analysis accounting: verdict reports actually computed (cache
	// misses that did real work) and computes collapsed by singleflight.
	analyzesComputed atomic.Int64
	analyzesShared   atomic.Int64
}

// New builds a Server over cfg.RepoDir.
func New(cfg Config) (*Server, error) {
	repo, err := NewRepo(cfg.RepoDir, cfg.MaxTraces)
	if err != nil {
		return nil, err
	}
	if cfg.MaxTiles < 1 {
		cfg.MaxTiles = 4096
	}
	s := &Server{
		repo:  repo,
		tiles: newLRU(cfg.MaxTiles),
		logf:  cfg.Logf,
	}
	if s.logf == nil {
		s.logf = func(string, ...any) {}
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /{$}", s.handleViewer)
	s.mux.HandleFunc("GET /traces", s.handleTraces)
	s.mux.HandleFunc("GET /trace/{id}", s.handleMeta)
	s.mux.HandleFunc("GET /trace/{id}/tile", s.handleTile)
	s.mux.HandleFunc("GET /trace/{id}/legend", s.handleLegend)
	s.mux.HandleFunc("GET /trace/{id}/profile", s.handleProfile)
	s.mux.HandleFunc("GET /trace/{id}/analyze", s.handleAnalyze)
	s.mux.HandleFunc("GET /search", s.handleSearch)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	// Observability: the expvar page (carrying "pilot_serve" and, when a
	// run publishes one, "pilot_stats") and the pprof family — the same
	// endpoint machinery pilot-bench -metrics-addr exposes, mounted on
	// this mux instead of the default one.
	s.mux.Handle("GET /debug/vars", expvar.Handler())
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	publishServeExpvar(s)
	return s, nil
}

// Repo exposes the underlying repository (the load harness asserts on
// its decode counter).
func (s *Server) Repo() *Repo { return s.repo }

// Handler returns the server's HTTP handler, wrapped in panic
// recovery: a bug in a render path becomes a 500, never a dead server.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		defer func() {
			if rec := recover(); rec != nil {
				s.errors.Add(1)
				s.logf("serve: panic serving %s: %v", r.URL.Path, rec)
				// Headers may already be out; WriteHeader after that is
				// a no-op and the connection just drops.
				http.Error(w, "internal error", http.StatusInternalServerError)
			}
		}()
		s.mux.ServeHTTP(w, r)
	})
}

// Serve runs the server on ln until ctx is cancelled, then drains
// in-flight requests (graceful shutdown, 10s grace).
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	done := make(chan error, 1)
	go func() {
		<-ctx.Done()
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- srv.Shutdown(shutCtx)
	}()
	err := srv.Serve(ln)
	if !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return <-done
}

// ---- response plumbing: errors, ETag, gzip ----

// httpStatus maps repository/parse errors onto status codes: the
// hostile-file contract is "4xx/5xx, never die".
func httpStatus(err error) int {
	switch {
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrBadID):
		return http.StatusBadRequest
	case errors.Is(err, ErrCorrupt):
		return http.StatusUnprocessableEntity
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) fail(w http.ResponseWriter, r *http.Request, err error) {
	s.errors.Add(1)
	code := httpStatus(err)
	s.logf("serve: %s %s: %d %v", r.Method, r.URL.Path, code, err)
	http.Error(w, err.Error(), code)
}

func (s *Server) failBadRequest(w http.ResponseWriter, r *http.Request, err error) {
	s.errors.Add(1)
	s.logf("serve: %s %s: 400 %v", r.Method, r.URL.Path, err)
	http.Error(w, err.Error(), http.StatusBadRequest)
}

// etagOf computes the strong ETag for a response body.
func etagOf(body []byte) string {
	h := fnv.New64a()
	h.Write(body)
	return fmt.Sprintf(`"%016x"`, h.Sum64())
}

// etagMatch implements the If-None-Match comparison (strong tags only,
// plus the "*" wildcard).
func etagMatch(header, etag string) bool {
	if header == "" {
		return false
	}
	if header == "*" {
		return true
	}
	for _, part := range splitComma(header) {
		if part == etag {
			return true
		}
	}
	return false
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			part := s[start:i]
			for len(part) > 0 && (part[0] == ' ' || part[0] == '\t') {
				part = part[1:]
			}
			for len(part) > 0 && (part[len(part)-1] == ' ' || part[len(part)-1] == '\t') {
				part = part[:len(part)-1]
			}
			if part != "" {
				out = append(out, part)
			}
			start = i + 1
		}
	}
	return out
}

var gzipPool = sync.Pool{New: func() any { return gzip.NewWriter(nil) }}

// gzipMinBytes is the body size below which compression costs more
// than it saves.
const gzipMinBytes = 512

func acceptsGzip(r *http.Request) bool {
	for _, part := range splitComma(r.Header.Get("Accept-Encoding")) {
		if part == "gzip" || len(part) > 4 && part[:5] == "gzip;" {
			return true
		}
	}
	return false
}

// writeBody sends body with ETag revalidation and optional gzip: a
// matching If-None-Match costs a 304 and zero payload bytes — the
// cache policy that makes a browser viewer cheap to refresh.
func (s *Server) writeBody(w http.ResponseWriter, r *http.Request, ctype, etag string, body []byte) {
	s.writeBodyGz(w, r, ctype, etag, body, nil)
}

// writeBodyGz is writeBody with an optional pre-compressed form: when
// gz is non-nil and the client accepts gzip, it goes out as-is — the
// hot path for cached tiles, which compress once at render time and
// never again.
func (s *Server) writeBodyGz(w http.ResponseWriter, r *http.Request, ctype, etag string, body, gz []byte) {
	h := w.Header()
	h.Set("Content-Type", ctype)
	h.Set("ETag", etag)
	h.Set("Vary", "Accept-Encoding")
	h.Set("Cache-Control", "no-cache") // revalidate via ETag, don't go stale
	if etagMatch(r.Header.Get("If-None-Match"), etag) {
		s.notModified.Add(1)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	if acceptsGzip(r) {
		if gz != nil {
			h.Set("Content-Encoding", "gzip")
			h.Set("Content-Length", strconv.Itoa(len(gz)))
			n, _ := w.Write(gz)
			s.bytesSent.Add(int64(n))
			return
		}
		if len(body) >= gzipMinBytes {
			h.Set("Content-Encoding", "gzip")
			zw := gzipPool.Get().(*gzip.Writer)
			zw.Reset(&countingWriter{w: w, n: &s.bytesSent})
			zw.Write(body)
			zw.Close()
			gzipPool.Put(zw)
			return
		}
	}
	h.Set("Content-Length", strconv.Itoa(len(body)))
	n, _ := w.Write(body)
	s.bytesSent.Add(int64(n))
}

type countingWriter struct {
	w http.ResponseWriter
	n *atomic.Int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n.Add(int64(n))
	return n, err
}

// cachedBody is one tile-cache entry: the rendered bytes, their
// precomputed ETag, and (for bodies worth compressing) the gzip form,
// built once so cache hits never pay for compression again.
type cachedBody struct {
	body  []byte
	gz    []byte // nil when body is below gzipMinBytes
	ctype string
	etag  string
}

// newCachedBody precomputes the ETag and, for large bodies, the gzip
// form of one rendered tile.
func newCachedBody(body []byte, ctype string) *cachedBody {
	cb := &cachedBody{body: body, ctype: ctype, etag: etagOf(body)}
	if len(body) >= gzipMinBytes {
		var buf bytes.Buffer
		zw := gzipPool.Get().(*gzip.Writer)
		zw.Reset(&buf)
		zw.Write(body)
		zw.Close()
		gzipPool.Put(zw)
		cb.gz = buf.Bytes()
	}
	return cb
}

// ---- handlers ----

func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	list, err := s.repo.List()
	if err != nil {
		s.fail(w, r, err)
		return
	}
	body, err := json.Marshal(list)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	s.writeBody(w, r, "application/json; charset=utf-8", etagOf(body), body)
}

// traceMetaJSON is the /trace/{id} header card.
type traceMetaJSON struct {
	ID         string            `json:"id"`
	NumRanks   int               `json:"num_ranks"`
	Start      float64           `json:"start"`
	End        float64           `json:"end"`
	Depth      int               `json:"tree_depth"`
	Categories []legendEntryJSON `json:"categories"`
	Warnings   []string          `json:"warnings,omitempty"`
	HasProfile bool              `json:"has_profile"`
	// HasClog/Index surface the raw-log index sidecar: whether windowed
	// (t0/t1) profile queries are possible and whether they will go
	// through the index ("ok") or degrade to a full scan ("stale",
	// "corrupt", "none"). Index here is fully validated (CRC included).
	HasClog bool   `json:"has_clog"`
	Index   string `json:"index,omitempty"`
}

func (s *Server) handleMeta(w http.ResponseWriter, r *http.Request) {
	tr, err := s.repo.Open(r.PathValue("id"))
	if err != nil {
		s.fail(w, r, err)
		return
	}
	f := tr.File
	meta := traceMetaJSON{
		ID: tr.ID, NumRanks: f.NumRanks, Start: f.Start, End: f.End,
		Depth: f.Depth(), Warnings: f.Warnings,
	}
	for _, c := range f.Categories {
		kind := "state"
		if c.Kind != 0 {
			kind = "event"
		}
		meta.Categories = append(meta.Categories, legendEntryJSON{Name: c.Name, Color: c.Color, Kind: kind})
	}
	if _, perr := s.repo.Profile(tr.ID); perr == nil {
		meta.HasProfile = true
	}
	if hasClog, st := s.repo.IndexStatus(tr.ID); hasClog {
		meta.HasClog = true
		meta.Index = st.String()
	}
	body, err := json.Marshal(meta)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	s.writeBody(w, r, "application/json; charset=utf-8", etagOf(body), body)
}

func (s *Server) handleTile(w http.ResponseWriter, r *http.Request) {
	tr, err := s.repo.Open(r.PathValue("id"))
	if err != nil {
		s.fail(w, r, err)
		return
	}
	p, err := parseTileParams(r.URL.Query(), tr.File)
	if err != nil {
		s.failBadRequest(w, r, err)
		return
	}
	key := p.cacheKey(tr)
	if v, ok := s.tiles.get(key); ok {
		cb := v.(*cachedBody)
		s.writeBodyGz(w, r, cb.ctype, cb.etag, cb.body, cb.gz)
		return
	}
	v, err, shared := s.sf.Do(key, func() (any, error) {
		if v, ok := s.tiles.get(key); ok {
			return v, nil
		}
		body, ctype, err := renderTile(tr, p)
		if err != nil {
			return nil, err
		}
		s.tilesRendered.Add(1)
		cb := newCachedBody(body, ctype)
		s.tiles.add(key, cb)
		return cb, nil
	})
	if err != nil {
		s.fail(w, r, err)
		return
	}
	if shared {
		s.tilesShared.Add(1)
	}
	cb := v.(*cachedBody)
	s.writeBodyGz(w, r, cb.ctype, cb.etag, cb.body, cb.gz)
}

func (s *Server) handleLegend(w http.ResponseWriter, r *http.Request) {
	tr, err := s.repo.Open(r.PathValue("id"))
	if err != nil {
		s.fail(w, r, err)
		return
	}
	q := r.URL.Query()
	t0, t1 := tr.File.Start, tr.File.End
	if v := q.Get("t0"); v != "" {
		if t0, err = strconv.ParseFloat(v, 64); err != nil {
			s.failBadRequest(w, r, fmt.Errorf("serve: bad t0=%q", v))
			return
		}
	}
	if v := q.Get("t1"); v != "" {
		if t1, err = strconv.ParseFloat(v, 64); err != nil {
			s.failBadRequest(w, r, fmt.Errorf("serve: bad t1=%q", v))
			return
		}
	}
	body, err := RenderLegendJSON(tr, t0, t1)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	s.writeBody(w, r, "application/json; charset=utf-8", etagOf(body), body)
}

func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	if q.Get("t0") == "" && q.Get("t1") == "" {
		// Whole-run profile: serve the precomputed sidecar JSON.
		body, err := s.repo.Profile(r.PathValue("id"))
		if err != nil {
			s.fail(w, r, err)
			return
		}
		s.writeBody(w, r, "application/json; charset=utf-8", etagOf(body), body)
		return
	}
	// Windowed profile: recompute from the registered raw CLOG-2,
	// through the index sidecar when one is valid.
	t0, t1 := math.Inf(-1), math.Inf(1)
	var err error
	if v := q.Get("t0"); v != "" {
		if t0, err = strconv.ParseFloat(v, 64); err != nil || math.IsNaN(t0) {
			s.failBadRequest(w, r, fmt.Errorf("serve: bad t0=%q", v))
			return
		}
	}
	if v := q.Get("t1"); v != "" {
		if t1, err = strconv.ParseFloat(v, 64); err != nil || math.IsNaN(t1) {
			s.failBadRequest(w, r, fmt.Errorf("serve: bad t1=%q", v))
			return
		}
	}
	p, usedIndex, err := s.repo.WindowedProfile(r.PathValue("id"), t0, t1)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	s.profilesWindowed.Add(1)
	if usedIndex {
		s.profilesIndexed.Add(1)
	}
	body, err := p.JSON()
	if err != nil {
		s.fail(w, r, err)
		return
	}
	s.writeBody(w, r, "application/json; charset=utf-8", etagOf(body), body)
}

// handleAnalyze serves the pathology-analysis verdict for a trace's
// registered raw CLOG-2, with the same cache posture as tiles: results
// live in the rendered-body LRU keyed by the raw log's generation (a
// re-registered trace invalidates naturally), cold misses collapse via
// singleflight, and the body goes out with ETag revalidation and gzip.
func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	q := r.URL.Query()
	t0, t1 := math.Inf(-1), math.Inf(1)
	var err error
	if v := q.Get("t0"); v != "" {
		if t0, err = strconv.ParseFloat(v, 64); err != nil || math.IsNaN(t0) {
			s.failBadRequest(w, r, fmt.Errorf("serve: bad t0=%q", v))
			return
		}
	}
	if v := q.Get("t1"); v != "" {
		if t1, err = strconv.ParseFloat(v, 64); err != nil || math.IsNaN(t1) {
			s.failBadRequest(w, r, fmt.Errorf("serve: bad t1=%q", v))
			return
		}
	}
	gen, err := s.repo.ClogGen(id)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	key := fmt.Sprintf("analyze\x00%s\x00%s\x00%g\x00%g", id, gen, t0, t1)
	if v, ok := s.tiles.get(key); ok {
		cb := v.(*cachedBody)
		s.writeBodyGz(w, r, cb.ctype, cb.etag, cb.body, cb.gz)
		return
	}
	v, err, shared := s.sf.Do(key, func() (any, error) {
		if v, ok := s.tiles.get(key); ok {
			return v, nil
		}
		body, err := s.repo.AnalyzeJSON(id, t0, t1)
		if err != nil {
			return nil, err
		}
		s.analyzesComputed.Add(1)
		cb := newCachedBody(body, "application/json; charset=utf-8")
		s.tiles.add(key, cb)
		return cb, nil
	})
	if err != nil {
		s.fail(w, r, err)
		return
	}
	if shared {
		s.analyzesShared.Add(1)
	}
	cb := v.(*cachedBody)
	s.writeBodyGz(w, r, cb.ctype, cb.etag, cb.body, cb.gz)
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	id := q.Get("trace")
	if id == "" {
		s.failBadRequest(w, r, fmt.Errorf("serve: /search needs ?trace="))
		return
	}
	tr, err := s.repo.Open(id)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	opts := jumpshot.SearchOptions{Rank: -1, Limit: 1000}
	opts.Name = q.Get("name")
	opts.Cargo = q.Get("cargo")
	parse := func(key string, set func(float64)) error {
		if v := q.Get(key); v != "" {
			x, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return fmt.Errorf("serve: bad %s=%q", key, v)
			}
			set(x)
		}
		return nil
	}
	if err := parse("from", func(x float64) { opts.From = x }); err != nil {
		s.failBadRequest(w, r, err)
		return
	}
	if err := parse("to", func(x float64) { opts.To = x }); err != nil {
		s.failBadRequest(w, r, err)
		return
	}
	if err := parse("mindur", func(x float64) { opts.MinDuration = x }); err != nil {
		s.failBadRequest(w, r, err)
		return
	}
	for _, key := range []string{"rank", "limit"} {
		if v := q.Get(key); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				s.failBadRequest(w, r, fmt.Errorf("serve: bad %s=%q", key, v))
				return
			}
			if key == "rank" {
				opts.Rank = n
			} else if n > 0 && n < opts.Limit {
				opts.Limit = n
			}
		}
	}
	body, err := RenderSearchJSON(tr, opts)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	s.writeBody(w, r, "application/json; charset=utf-8", etagOf(body), body)
}

// ---- expvar ----

// Like stats.Publish, the expvar name registers once per process and
// reads through an atomic pointer, so test suites creating many
// servers never panic on a duplicate name.
var (
	serveExpvarOnce sync.Once
	publishedServer atomic.Pointer[Server]
)

func publishServeExpvar(s *Server) {
	publishedServer.Store(s)
	serveExpvarOnce.Do(func() {
		expvar.Publish("pilot_serve", expvar.Func(func() any {
			srv := publishedServer.Load()
			if srv == nil {
				return nil
			}
			return map[string]any{
				"counters":    srv.MetricsSnapshot(),
				"trace_index": srv.TraceIndexSnapshot(),
			}
		}))
	})
}

// MetricsSnapshot returns the server's counters as a flat map — the
// "pilot_serve" expvar payload.
func (s *Server) MetricsSnapshot() map[string]int64 {
	return map[string]int64{
		"requests":                  s.requests.Load(),
		"errors":                    s.errors.Load(),
		"tiles_rendered":            s.tilesRendered.Load(),
		"tiles_singleflight_shared": s.tilesShared.Load(),
		"tile_cache_hits":           s.tiles.hits.Load(),
		"tile_cache_misses":         s.tiles.misses.Load(),
		"trace_cache_hits":          s.repo.traces.hits.Load(),
		"trace_cache_misses":        s.repo.traces.misses.Load(),
		"trace_decodes":             s.repo.Decodes(),
		"responses_304":             s.notModified.Load(),
		"bytes_sent":                s.bytesSent.Load(),
		"profiles_windowed":         s.profilesWindowed.Load(),
		"profiles_windowed_indexed": s.profilesIndexed.Load(),
		"analyzes_computed":         s.analyzesComputed.Load(),
		"analyzes_singleflight":     s.analyzesShared.Load(),
	}
}

// TraceIndexSnapshot reports each registered trace's raw-log index
// sidecar state ("ok"/"stale"/"corrupt"; "none" covers both no sidecar
// and no raw log) — the per-trace half of the "pilot_serve" expvar.
func (s *Server) TraceIndexSnapshot() map[string]string {
	out := map[string]string{}
	list, err := s.repo.List()
	if err != nil {
		return out
	}
	for _, ti := range list {
		if ti.Index != "" {
			out[ti.ID] = ti.Index
		} else {
			out[ti.ID] = "none"
		}
	}
	return out
}
