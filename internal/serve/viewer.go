package serve

import "net/http"

// handleViewer serves the embedded single-file browser viewer: pick a
// trace, pan/drag and wheel-zoom over SVG tiles fetched from the tile
// endpoint, with the legend table alongside — the Jumpshot experience
// over HTTP, no assets beyond this page.
func (s *Server) handleViewer(w http.ResponseWriter, r *http.Request) {
	s.writeBody(w, r, "text/html; charset=utf-8", etagOf(viewerHTML), viewerHTML)
}

var viewerHTML = []byte(`<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>pilot-serve</title>
<style>
body { background:#181818; color:#d0d0d0; font-family:monospace; margin:1em; }
a { color:#7ab7ff; }
select, button { background:#282828; color:#d0d0d0; border:1px solid #444; font-family:monospace; padding:2px 6px; }
#tile { border:1px solid #333; margin-top:0.6em; min-height:200px; cursor:grab; user-select:none; }
#tile:active { cursor:grabbing; }
table { border-collapse:collapse; margin-top:1em; }
td, th { border:1px solid #333; padding:2px 8px; text-align:right; }
td:first-child, th:first-child { text-align:left; }
.swatch { display:inline-block; width:10px; height:10px; margin-right:4px; }
#status { color:#909090; margin-left:1em; }
h2 { font-size:14px; }
</style></head><body>
<h2>pilot-serve — SLOG-2 trace tiles</h2>
<div>
trace: <select id="traces"></select>
<button id="reset">reset view</button>
<span>wheel: zoom &middot; drag: pan</span>
<span id="status"></span>
</div>
<div id="tile"></div>
<table id="legend"><thead><tr><th>category</th><th>kind</th><th>count</th><th>incl (s)</th><th>excl (s)</th></tr></thead><tbody></tbody></table>
<script>
(function() {
  const sel = document.getElementById('traces');
  const tile = document.getElementById('tile');
  const status = document.getElementById('status');
  const legendBody = document.querySelector('#legend tbody');
  let meta = null, t0 = 0, t1 = 1, inflight = null, pending = false;

  function fetchJSON(url) { return fetch(url).then(r => { if (!r.ok) throw new Error(url + ': ' + r.status); return r.json(); }); }

  function loadList() {
    fetchJSON('/traces').then(list => {
      sel.innerHTML = '';
      for (const t of list) {
        const o = document.createElement('option');
        o.value = t.id; o.textContent = t.id;
        sel.appendChild(o);
      }
      if (list.length) loadTrace(list[0].id);
      else status.textContent = 'repository is empty';
    }).catch(e => status.textContent = e.message);
  }

  function loadTrace(id) {
    fetchJSON('/trace/' + encodeURIComponent(id)).then(m => {
      meta = m; t0 = m.start; t1 = m.end;
      refresh(); loadLegend();
    }).catch(e => status.textContent = e.message);
  }

  function loadLegend() {
    fetchJSON('/trace/' + encodeURIComponent(meta.id) + '/legend').then(rows => {
      legendBody.innerHTML = '';
      for (const e of rows) {
        const tr = document.createElement('tr');
        const name = document.createElement('td');
        const sw = document.createElement('span');
        sw.className = 'swatch'; sw.style.background = e.color;
        name.appendChild(sw); name.appendChild(document.createTextNode(e.name));
        tr.appendChild(name);
        for (const v of [e.kind, e.count, e.kind === 'event' ? '-' : e.incl.toFixed(6), e.kind === 'event' ? '-' : e.excl.toFixed(6)]) {
          const td = document.createElement('td'); td.textContent = v; tr.appendChild(td);
        }
        legendBody.appendChild(tr);
      }
    }).catch(e => status.textContent = e.message);
  }

  function refresh() {
    if (!meta) return;
    if (inflight) { pending = true; return; }
    const url = '/trace/' + encodeURIComponent(meta.id) +
      '/tile?format=svg&zoom=1&t0=' + t0 + '&t1=' + t1;
    status.textContent = 'loading [' + t0.toFixed(6) + ', ' + t1.toFixed(6) + ']';
    inflight = fetch(url).then(r => {
      if (!r.ok) throw new Error('tile: ' + r.status);
      return r.text();
    }).then(svg => {
      tile.innerHTML = svg;
      status.textContent = '[' + t0.toFixed(6) + ', ' + t1.toFixed(6) + ']';
    }).catch(e => status.textContent = e.message)
      .finally(() => { inflight = null; if (pending) { pending = false; refresh(); } });
  }

  tile.addEventListener('wheel', ev => {
    ev.preventDefault();
    if (!meta) return;
    const span = t1 - t0;
    const frac = (ev.offsetX / tile.clientWidth) || 0.5;
    const factor = ev.deltaY < 0 ? 0.8 : 1.25;
    const centre = t0 + span * frac;
    t0 = Math.max(meta.start, centre - (centre - t0) * factor);
    t1 = Math.min(meta.end, centre + (t1 - centre) * factor);
    refresh();
  }, { passive: false });

  let dragX = null;
  tile.addEventListener('mousedown', ev => { dragX = ev.clientX; });
  window.addEventListener('mouseup', () => { dragX = null; });
  window.addEventListener('mousemove', ev => {
    if (dragX === null || !meta) return;
    const span = t1 - t0;
    const dt = (dragX - ev.clientX) / tile.clientWidth * span;
    if (t0 + dt >= meta.start && t1 + dt <= meta.end) { t0 += dt; t1 += dt; }
    dragX = ev.clientX;
    refresh();
  });

  document.getElementById('reset').addEventListener('click', () => {
    if (meta) { t0 = meta.start; t1 = meta.end; refresh(); }
  });
  sel.addEventListener('change', () => loadTrace(sel.value));
  loadList();
})();
</script>
</body></html>
`)
