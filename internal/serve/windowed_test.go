package serve

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/idx"
	"repro/internal/stats"
)

// stageTrace copies one golden trace (slog2 + profile + raw clog) into
// dir so sidecar sabotage cannot touch the committed goldens.
func stageTrace(t *testing.T, dir, id string) {
	t.Helper()
	for _, suffix := range []string{".slog2", ".profile.json", ".clog2"} {
		data, err := os.ReadFile(filepath.Join(goldenDir, id+suffix))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, id+suffix), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestWindowedProfileEndpoint(t *testing.T) {
	dir := t.TempDir()
	stageTrace(t, dir, "lab2")
	clog := filepath.Join(dir, "lab2.clog2")
	ix, err := idx.BuildFile(clog)
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.WriteFileFor(clog, ix); err != nil {
		t.Fatal(err)
	}
	srv, ts := newTestServer(t, dir)

	// Trace meta reports the raw log and a healthy index.
	resp, body := get(t, ts.URL+"/trace/lab2", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("meta: status %d", resp.StatusCode)
	}
	var meta traceMetaJSON
	if err := json.Unmarshal(body, &meta); err != nil {
		t.Fatal(err)
	}
	if !meta.HasClog || meta.Index != "ok" {
		t.Fatalf("meta = has_clog %v, index %q; want true, ok", meta.HasClog, meta.Index)
	}

	// A windowed query answers exactly what the library computes.
	resp, body = get(t, ts.URL+"/trace/lab2/profile?t0=0&t1=1", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("windowed profile: status %d (%s)", resp.StatusCode, body)
	}
	want, used, err := stats.ComputeProfileFileWindowed(clog, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !used {
		t.Fatal("library did not use the index the test just built")
	}
	wantJSON, err := want.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, wantJSON) {
		t.Errorf("served windowed profile differs from direct computation")
	}

	// Only t0: open-ended upper bound.
	resp, _ = get(t, ts.URL+"/trace/lab2/profile?t0=0", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("t0-only profile: status %d", resp.StatusCode)
	}

	// Malformed and NaN bounds answer 400.
	for _, bad := range []string{"?t0=abc", "?t1=NaN", "?t0=--3"} {
		resp, _ = get(t, ts.URL+"/trace/lab2/profile"+bad, nil)
		if resp.StatusCode != 400 {
			t.Errorf("%s: status %d, want 400", bad, resp.StatusCode)
		}
	}

	// The windowed counters moved and the expvar report carries the
	// per-trace index state.
	m := srv.MetricsSnapshot()
	if m["profiles_windowed"] < 2 {
		t.Errorf("profiles_windowed = %v", m["profiles_windowed"])
	}
	ti := srv.TraceIndexSnapshot()
	if ti["lab2"] != "ok" {
		t.Errorf("TraceIndexSnapshot = %v", ti)
	}

	// Sabotage the sidecar: meta degrades to "corrupt", windowed queries
	// still answer (full scan), and the answer matches the library scan.
	side := idx.SidecarPath(clog)
	data, err := os.ReadFile(side)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(side, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	resp, body = get(t, ts.URL+"/trace/lab2", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("meta after sabotage: status %d", resp.StatusCode)
	}
	meta = traceMetaJSON{}
	if err := json.Unmarshal(body, &meta); err != nil {
		t.Fatal(err)
	}
	if meta.Index != "corrupt" {
		t.Errorf("index after truncation = %q, want corrupt", meta.Index)
	}
	resp, body = get(t, ts.URL+"/trace/lab2/profile?t0=0&t1=1", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("degraded windowed profile: status %d", resp.StatusCode)
	}
	if !bytes.Equal(body, wantJSON) {
		t.Errorf("degraded windowed profile differs from the indexed answer")
	}
}

func TestWindowedProfileWithoutClog(t *testing.T) {
	dir := t.TempDir()
	// Stage only the rendered artifacts — no raw log.
	for _, suffix := range []string{".slog2", ".profile.json"} {
		data, err := os.ReadFile(filepath.Join(goldenDir, "thumbnail"+suffix))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "thumbnail"+suffix), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	_, ts := newTestServer(t, dir)

	var meta traceMetaJSON
	resp, body := get(t, ts.URL+"/trace/thumbnail", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("meta: status %d", resp.StatusCode)
	}
	if err := json.Unmarshal(body, &meta); err != nil {
		t.Fatal(err)
	}
	if meta.HasClog || meta.Index != "" {
		t.Errorf("clog-less meta = has_clog %v, index %q", meta.HasClog, meta.Index)
	}

	// The plain profile still serves from its sidecar JSON...
	resp, _ = get(t, ts.URL+"/trace/thumbnail/profile", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("plain profile: status %d", resp.StatusCode)
	}
	// ...but a windowed query needs the raw log: 404.
	resp, _ = get(t, ts.URL+"/trace/thumbnail/profile?t0=0&t1=1", nil)
	if resp.StatusCode != 404 {
		t.Errorf("windowed profile without clog: status %d, want 404", resp.StatusCode)
	}
}

func TestRepoWindowedProfileDirect(t *testing.T) {
	dir := t.TempDir()
	stageTrace(t, dir, "collisions")
	repo, err := NewRepo(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	p, used, err := repo.WindowedProfile("collisions", math.Inf(-1), math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if used {
		t.Error("no sidecar exists, yet the index was reportedly used")
	}
	if p.NumRanks < 1 {
		t.Errorf("profile = %+v", p)
	}
	if _, _, err := repo.WindowedProfile("../evil", 0, 1); err == nil {
		t.Error("traversal id did not error")
	}
	hasClog, status := repo.IndexStatus("collisions")
	if !hasClog || status != idx.StatusNone {
		t.Errorf("IndexStatus = %v, %v; want true, none", hasClog, status)
	}
}
