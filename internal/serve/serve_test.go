package serve

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/jumpshot"
	"repro/internal/slog2"
)

const goldenDir = "../../testdata/golden"

var goldenIDs = []string{"collisions", "lab2", "thumbnail"}

func newTestServer(t *testing.T, dir string) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(Config{RepoDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func get(t *testing.T, url string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	// Transport-level DisableCompression keeps Go from transparently
	// injecting Accept-Encoding and hiding the gzip layer from tests.
	client := &http.Client{Transport: &http.Transport{DisableCompression: true}}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// Served tiles must byte-agree with a direct Query + render over
// random windows on all three golden traces — the acceptance contract.
func TestTileAgreesWithDirectRender(t *testing.T) {
	_, ts := newTestServer(t, goldenDir)
	rng := rand.New(rand.NewSource(42))
	for _, id := range goldenIDs {
		f, err := slog2.ReadFile(filepath.Join(goldenDir, id+".slog2"))
		if err != nil {
			t.Fatal(err)
		}
		tr := &Trace{ID: id, File: f}
		for trial := 0; trial < 12; trial++ {
			span := f.End - f.Start
			t0 := f.Start + rng.Float64()*span
			t1 := t0 + rng.Float64()*(f.End-t0)
			lo, hi := 0, -1
			if trial%3 == 0 && f.NumRanks > 1 {
				lo = rng.Intn(f.NumRanks)
				hi = lo + rng.Intn(f.NumRanks-lo)
			}
			win := jumpshot.Window{T0: t0, T1: t1, RankLo: lo, RankHi: hi}
			url := fmt.Sprintf("%s/trace/%s/tile?t0=%v&t1=%v&r0=%d&r1=%d", ts.URL, id, t0, t1, lo, hi)

			resp, body := get(t, url, nil)
			if resp.StatusCode != 200 {
				t.Fatalf("%s: status %d: %s", url, resp.StatusCode, body)
			}
			want, err := RenderTileJSON(tr, win)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(body, want) {
				t.Fatalf("%s: served JSON tile differs from direct render", url)
			}

			resp, body = get(t, url+"&format=svg&zoom=2", nil)
			if resp.StatusCode != 200 {
				t.Fatalf("%s svg: status %d", url, resp.StatusCode)
			}
			if wantSVG := RenderTileSVG(tr, win, 2); !bytes.Equal(body, wantSVG) {
				t.Fatalf("%s: served SVG tile differs from direct render", url)
			}
		}
	}
}

// Corrupt and truncated repository files must answer with an HTTP
// error — including fuzz-shaped inputs — never kill the server.
func TestCorruptTraceAnswersHTTPError(t *testing.T) {
	dir := t.TempDir()
	good, err := os.ReadFile(filepath.Join(goldenDir, "lab2.slog2"))
	if err != nil {
		t.Fatal(err)
	}
	writeTrace := func(name string, data []byte) {
		if err := os.WriteFile(filepath.Join(dir, name+".slog2"), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeTrace("garbage", []byte("this is not a slog2 file at all"))
	writeTrace("truncated", good[:len(good)/3])
	writeTrace("rootless", []byte(slog2.Magic+"\x01\x00\x00\x0000000000"+
		"00000000\x00\x00\x00\x00\x00\x00\x00\x00\x00")) // fuzz-found shape: header only, no root
	writeTrace("empty", nil)
	writeTrace("ok", good)

	_, ts := newTestServer(t, dir)
	for _, id := range []string{"garbage", "truncated", "rootless", "empty"} {
		for _, ep := range []string{"/tile", "/legend", ""} {
			resp, _ := get(t, ts.URL+"/trace/"+id+ep, nil)
			if resp.StatusCode < 400 || resp.StatusCode > 599 {
				t.Fatalf("%s%s: status %d, want 4xx/5xx", id, ep, resp.StatusCode)
			}
		}
		resp, _ := get(t, ts.URL+"/search?trace="+id, nil)
		if resp.StatusCode < 400 || resp.StatusCode > 599 {
			t.Fatalf("search %s: status %d, want 4xx/5xx", id, resp.StatusCode)
		}
	}
	// The server survived all of it and still serves the good trace.
	resp, _ := get(t, ts.URL+"/trace/ok/tile", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("good trace after corrupt ones: status %d", resp.StatusCode)
	}
	resp, _ = get(t, ts.URL+"/trace/missing/tile", nil)
	if resp.StatusCode != 404 {
		t.Fatalf("missing trace: status %d, want 404", resp.StatusCode)
	}
}

func TestBadParamsAnswer400(t *testing.T) {
	_, ts := newTestServer(t, goldenDir)
	for _, q := range []string{
		"t0=abc", "t1=NaN", "r0=-1", "r0=x", "zoom=99", "zoom=-1",
		"format=gif", "t0=5&t1=1",
	} {
		resp, _ := get(t, ts.URL+"/trace/lab2/tile?"+q, nil)
		if resp.StatusCode != 400 {
			t.Fatalf("tile?%s: status %d, want 400", q, resp.StatusCode)
		}
	}
	resp, _ := get(t, ts.URL+"/search", nil)
	if resp.StatusCode != 400 {
		t.Fatalf("search without trace: status %d, want 400", resp.StatusCode)
	}
}

func TestRepoRejectsTraversalIDs(t *testing.T) {
	repo, err := NewRepo(goldenDir, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"", ".", "..", "../lab2", "a/../b", `a\b`, ".hidden", strings.Repeat("x", 300)} {
		if _, err := repo.Open(id); err == nil {
			t.Fatalf("Open(%q) succeeded", id)
		}
	}
}

// ETag revalidation: the second fetch with If-None-Match costs a 304
// with no payload; a changed file changes the tag.
func TestETagRevalidation(t *testing.T) {
	dir := t.TempDir()
	good, err := os.ReadFile(filepath.Join(goldenDir, "lab2.slog2"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "run.slog2"), good, 0o644); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, dir)
	url := ts.URL + "/trace/run/tile"

	resp, body := get(t, url, nil)
	etag := resp.Header.Get("ETag")
	if resp.StatusCode != 200 || etag == "" || len(body) == 0 {
		t.Fatalf("first fetch: status %d etag %q", resp.StatusCode, etag)
	}
	resp, body = get(t, url, map[string]string{"If-None-Match": etag})
	if resp.StatusCode != 304 {
		t.Fatalf("revalidation: status %d, want 304", resp.StatusCode)
	}
	if len(body) != 0 {
		t.Fatalf("304 carried %d payload bytes", len(body))
	}
	resp, _ = get(t, url, map[string]string{"If-None-Match": `"deadbeef", ` + etag})
	if resp.StatusCode != 304 {
		t.Fatalf("list revalidation: status %d, want 304", resp.StatusCode)
	}
	resp, _ = get(t, url, map[string]string{"If-None-Match": `"stale"`})
	if resp.StatusCode != 200 {
		t.Fatalf("stale tag: status %d, want 200", resp.StatusCode)
	}

	// Rewriting the trace invalidates: new generation, new tile, and the
	// old ETag no longer matches.
	f, err := slog2.ReadFile(filepath.Join(goldenDir, "collisions.slog2"))
	if err != nil {
		t.Fatal(err)
	}
	if err := slog2.WriteFile(filepath.Join(dir, "run.slog2"), f); err != nil {
		t.Fatal(err)
	}
	resp, _ = get(t, url, map[string]string{"If-None-Match": etag})
	if resp.StatusCode != 200 {
		t.Fatalf("after rewrite: status %d, want 200", resp.StatusCode)
	}
	if resp.Header.Get("ETag") == etag {
		t.Fatal("ETag unchanged after the trace file changed")
	}
}

func TestGzipOnTiles(t *testing.T) {
	_, ts := newTestServer(t, goldenDir)
	url := ts.URL + "/trace/thumbnail/tile"
	resp, body := get(t, url, map[string]string{"Accept-Encoding": "gzip"})
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if resp.Header.Get("Content-Encoding") != "gzip" {
		t.Fatal("tile not gzipped despite Accept-Encoding")
	}
	gz, err := gzip.NewReader(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := io.ReadAll(gz)
	if err != nil {
		t.Fatal(err)
	}
	_, raw := get(t, url, nil)
	if !bytes.Equal(plain, raw) {
		t.Fatal("gzipped tile decompresses to different bytes")
	}
	if len(body) >= len(raw) {
		t.Fatalf("gzip did not shrink the tile: %d >= %d", len(body), len(raw))
	}
}

// Concurrent first hits must collapse to one decode per trace and one
// render per tile (singleflight).
func TestSingleflightCollapsesColdHits(t *testing.T) {
	dir := t.TempDir()
	for _, id := range goldenIDs {
		data, err := os.ReadFile(filepath.Join(goldenDir, id+".slog2"))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, id+".slog2"), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	s, ts := newTestServer(t, dir)
	const clients = 24
	var wg sync.WaitGroup
	errs := make(chan error, clients*len(goldenIDs))
	for _, id := range goldenIDs {
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(id string) {
				defer wg.Done()
				resp, err := http.Get(ts.URL + "/trace/" + id + "/tile")
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					errs <- fmt.Errorf("%s: status %d", id, resp.StatusCode)
				}
			}(id)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := s.Repo().Decodes(); got != int64(len(goldenIDs)) {
		t.Fatalf("decodes = %d under concurrent first hits, want %d (one per trace)", got, len(goldenIDs))
	}
	if got := s.tilesRendered.Load(); got != int64(len(goldenIDs)) {
		t.Fatalf("tile renders = %d, want %d (one per distinct tile)", got, len(goldenIDs))
	}
}

func TestLegendAndSearchMatchDirect(t *testing.T) {
	_, ts := newTestServer(t, goldenDir)
	f, err := slog2.ReadFile(filepath.Join(goldenDir, "lab2.slog2"))
	if err != nil {
		t.Fatal(err)
	}
	tr := &Trace{ID: "lab2", File: f}

	resp, body := get(t, ts.URL+"/trace/lab2/legend", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("legend: status %d", resp.StatusCode)
	}
	want, err := RenderLegendJSON(tr, f.Start, f.End)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want) {
		t.Fatal("served legend differs from direct render")
	}

	resp, body = get(t, ts.URL+"/search?trace=lab2&name=PI_Read&limit=5", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("search: status %d", resp.StatusCode)
	}
	want, err = RenderSearchJSON(tr, jumpshot.SearchOptions{Name: "PI_Read", Rank: -1, Limit: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want) {
		t.Fatal("served search differs from direct call")
	}
	var hits []searchHitJSON
	if err := json.Unmarshal(body, &hits); err != nil || len(hits) == 0 || len(hits) > 5 {
		t.Fatalf("search hits: %v (%d)", err, len(hits))
	}
}

func TestTracesMetaProfileViewer(t *testing.T) {
	_, ts := newTestServer(t, goldenDir)

	resp, body := get(t, ts.URL+"/traces", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("/traces: status %d", resp.StatusCode)
	}
	var list []TraceInfo
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 3 || list[0].ID != "collisions" || !list[0].HasProfile {
		t.Fatalf("listing %+v", list)
	}

	resp, body = get(t, ts.URL+"/trace/lab2", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("meta: status %d", resp.StatusCode)
	}
	var meta traceMetaJSON
	if err := json.Unmarshal(body, &meta); err != nil {
		t.Fatal(err)
	}
	if meta.NumRanks < 2 || len(meta.Categories) == 0 || !meta.HasProfile {
		t.Fatalf("meta %+v", meta)
	}

	resp, body = get(t, ts.URL+"/trace/lab2/profile", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("profile: status %d", resp.StatusCode)
	}
	disk, err := os.ReadFile(filepath.Join(goldenDir, "lab2.profile.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, disk) {
		t.Fatal("served profile differs from sidecar")
	}

	resp, body = get(t, ts.URL+"/", nil)
	if resp.StatusCode != 200 || !bytes.Contains(body, []byte("pilot-serve")) {
		t.Fatalf("viewer: status %d", resp.StatusCode)
	}
	resp, _ = get(t, ts.URL+"/healthz", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}
	resp, _ = get(t, ts.URL+"/debug/vars", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("debug/vars: status %d", resp.StatusCode)
	}
}

// Serve drains gracefully when its context is cancelled.
func TestServeGracefulShutdown(t *testing.T) {
	s, err := New(Config{RepoDir: goldenDir})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, ln) }()

	resp, err := http.Get("http://" + ln.Addr().String() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Serve returned %v after graceful shutdown", err)
	}
}

func TestLRUCache(t *testing.T) {
	c := newLRU(2)
	c.add("a", 1)
	c.add("b", 2)
	if v, ok := c.get("a"); !ok || v.(int) != 1 {
		t.Fatal("a missing")
	}
	c.add("c", 3) // evicts b (a was refreshed)
	if _, ok := c.get("b"); ok {
		t.Fatal("b not evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a evicted out of order")
	}
	if _, ok := c.get("c"); !ok {
		t.Fatal("c missing")
	}
	if c.len() != 2 {
		t.Fatalf("len %d", c.len())
	}
	c.add("a", 10) // refresh in place
	if v, _ := c.get("a"); v.(int) != 10 {
		t.Fatal("refresh lost")
	}
	if c.hits.Load() == 0 || c.misses.Load() == 0 {
		t.Fatal("hit/miss counters dead")
	}
}

func TestFlightGroupCollapses(t *testing.T) {
	var g flightGroup
	var calls, shared atomic_int
	var wg sync.WaitGroup
	gate := make(chan struct{})
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err, sh := g.Do("k", func() (any, error) {
				calls.add(1)
				<-gate
				return 7, nil
			})
			if err != nil || v.(int) != 7 {
				panic("wrong flight result")
			}
			if sh {
				shared.add(1)
			}
		}()
	}
	close(gate)
	wg.Wait()
	if calls.load()+shared.load() != 16 {
		t.Fatalf("calls %d + shared %d != 16", calls.load(), shared.load())
	}
	if calls.load() < 1 {
		t.Fatal("no call ran")
	}
}

// tiny atomic int to avoid importing sync/atomic twice in tests.
type atomic_int struct {
	mu sync.Mutex
	v  int64
}

func (a *atomic_int) add(d int64) { a.mu.Lock(); a.v += d; a.mu.Unlock() }
func (a *atomic_int) load() int64 { a.mu.Lock(); defer a.mu.Unlock(); return a.v }
