// Package serve is the trace-tile HTTP service behind pilot-serve: a
// long-lived server hosting a repository of SLOG-2 traces (plus their
// .profile.json sidecars) and answering tile queries — time window ×
// rank window at a zoom level — by walking only the frames that
// intersect the viewport, exactly the level-of-detail access pattern
// the SLOG-2 frame tree exists for. Production posture: LRU caches
// over decoded files and rendered tiles, singleflight collapse on hot
// misses, ETag revalidation and gzip on the wire, graceful shutdown,
// and expvar/pprof observability.
package serve

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/analyze"
	"repro/internal/idx"
	"repro/internal/slog2"
	"repro/internal/stats"
)

// Errors the HTTP layer maps onto status codes.
var (
	// ErrNotFound: no such trace in the repository (404).
	ErrNotFound = errors.New("serve: trace not found")
	// ErrBadID: the trace id could escape the repository dir (400).
	ErrBadID = errors.New("serve: invalid trace id")
	// ErrCorrupt: the trace file exists but does not decode (422) — the
	// hostile-file case the hardened slog2 reader turns into an error
	// instead of a panic.
	ErrCorrupt = errors.New("serve: corrupt trace")
)

// maxProfileSidecar caps how much profile JSON the server will buffer.
const maxProfileSidecar = 64 << 20

// Repo is the trace repository: a directory of <id>.slog2 files and
// optional <id>.profile.json sidecars, fronted by an LRU of decoded
// files with singleflight collapse so a thundering herd on a cold
// trace costs one decode.
type Repo struct {
	dir    string
	traces *lruCache // id+"\x00"+generation -> *Trace
	sf     flightGroup

	// decodes counts real slog2.ReadFile calls — the singleflight
	// verification hook the load harness and tests assert on.
	decodes atomic.Int64
}

// NewRepo opens the repository at dir, caching up to maxTraces decoded
// files.
func NewRepo(dir string, maxTraces int) (*Repo, error) {
	info, err := os.Stat(dir)
	if err != nil {
		return nil, err
	}
	if !info.IsDir() {
		return nil, fmt.Errorf("serve: %s is not a directory", dir)
	}
	if maxTraces < 1 {
		maxTraces = 8
	}
	return &Repo{dir: dir, traces: newLRU(maxTraces)}, nil
}

// Dir returns the repository directory.
func (r *Repo) Dir() string { return r.dir }

// Decodes returns how many times a trace file was actually decoded
// (cache misses that did real work).
func (r *Repo) Decodes() int64 { return r.decodes.Load() }

// Trace is one decoded repository entry, immutable once built.
type Trace struct {
	ID   string
	File *slog2.File
	// Gen fingerprints the on-disk bytes (mtime+size); it feeds tile
	// cache keys and ETags so a rewritten trace invalidates both.
	Gen string
}

// TraceInfo is one /traces listing row: cheap stat-level facts, no
// decode.
type TraceInfo struct {
	ID         string `json:"id"`
	SizeBytes  int64  `json:"size_bytes"`
	ModTime    string `json:"mod_time"`
	HasProfile bool   `json:"has_profile"`
	// HasClog reports a registered raw CLOG-2 next to the trace — the
	// prerequisite for windowed (t0/t1) profile queries.
	HasClog bool `json:"has_clog"`
	// Index is the raw log's ".idx" sidecar state ("ok", "stale",
	// "corrupt", "none"), classified from its header (idx.ProbeHeader —
	// stat-cheap, no body read); empty when there is no raw log.
	Index string `json:"index,omitempty"`
}

// validID rejects ids that could traverse outside the repository dir.
func validID(id string) bool {
	if id == "" || len(id) > 255 {
		return false
	}
	if strings.ContainsAny(id, "/\\") || strings.Contains(id, "..") {
		return false
	}
	return id[0] != '.'
}

// List enumerates the repository's traces by scanning the directory;
// nothing is decoded.
func (r *Repo) List() ([]TraceInfo, error) {
	ents, err := os.ReadDir(r.dir)
	if err != nil {
		return nil, err
	}
	var out []TraceInfo
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".slog2") {
			continue
		}
		id := strings.TrimSuffix(name, ".slog2")
		if !validID(id) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		_, perr := os.Stat(r.profilePath(id))
		ti := TraceInfo{
			ID:         id,
			SizeBytes:  info.Size(),
			ModTime:    info.ModTime().UTC().Format("2006-01-02T15:04:05Z"),
			HasProfile: perr == nil,
		}
		if _, cerr := os.Stat(r.clogPath(id)); cerr == nil {
			ti.HasClog = true
			ti.Index = idx.ProbeHeader(r.clogPath(id)).String()
		}
		out = append(out, ti)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

func (r *Repo) tracePath(id string) string   { return filepath.Join(r.dir, id+".slog2") }
func (r *Repo) profilePath(id string) string { return filepath.Join(r.dir, id+".profile.json") }
func (r *Repo) clogPath(id string) string    { return filepath.Join(r.dir, id+".clog2") }

// IndexStatus reports whether id has a registered raw CLOG-2 and, if
// so, the fully validated state of its ".idx" sidecar (idx.Probe: CRC
// and geometry checked, not just the header).
func (r *Repo) IndexStatus(id string) (hasClog bool, status idx.Status) {
	if !validID(id) {
		return false, idx.StatusNone
	}
	if _, err := os.Stat(r.clogPath(id)); err != nil {
		return false, idx.StatusNone
	}
	return true, idx.Probe(r.clogPath(id))
}

// WindowedProfile computes a profile of id's raw CLOG-2 restricted to
// the time window [t0, t1], through the index sidecar when one is valid
// (the returned bool reports which path answered). Traces registered
// without a raw log cannot answer windowed queries — ErrNotFound.
func (r *Repo) WindowedProfile(id string, t0, t1 float64) (*stats.Profile, bool, error) {
	if !validID(id) {
		return nil, false, ErrBadID
	}
	path := r.clogPath(id)
	if _, err := os.Stat(path); err != nil {
		if os.IsNotExist(err) {
			return nil, false, fmt.Errorf("%w: %s has no raw log registered", ErrNotFound, id)
		}
		return nil, false, err
	}
	p, usedIndex, err := stats.ComputeProfileFileWindowed(path, t0, t1)
	if err != nil {
		return nil, false, fmt.Errorf("%w: %s: %v", ErrCorrupt, id, err)
	}
	return p, usedIndex, nil
}

// ClogGen fingerprints id's registered raw CLOG-2 (mtime+size), the
// cache-key generation for analysis results. ErrNotFound when the
// trace was registered without a raw log.
func (r *Repo) ClogGen(id string) (string, error) {
	if !validID(id) {
		return "", ErrBadID
	}
	info, err := os.Stat(r.clogPath(id))
	if err != nil {
		if os.IsNotExist(err) {
			return "", fmt.Errorf("%w: %s has no raw log registered", ErrNotFound, id)
		}
		return "", err
	}
	return fmt.Sprintf("%d-%d", info.ModTime().UnixNano(), info.Size()), nil
}

// AnalyzeJSON runs the pathology analyzer over id's registered raw
// CLOG-2 restricted to [t0, t1] (math.Inf bounds for the whole run)
// and returns the verdict report as JSON. The analyzer reuses the
// trace's .profile.json sidecar for whole-run queries and the ".idx"
// sidecar for windowed ones, like every other raw-log consumer.
func (r *Repo) AnalyzeJSON(id string, t0, t1 float64) ([]byte, error) {
	if !validID(id) {
		return nil, ErrBadID
	}
	path := r.clogPath(id)
	if _, err := os.Stat(path); err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %s has no raw log registered", ErrNotFound, id)
		}
		return nil, err
	}
	rep, err := analyze.AnalyzeFile(path, analyze.Options{T0: t0, T1: t1})
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, id, err)
	}
	return rep.JSON()
}

// Open returns the decoded trace for id, via the LRU, collapsing
// concurrent cold opens into one decode.
func (r *Repo) Open(id string) (*Trace, error) {
	if !validID(id) {
		return nil, ErrBadID
	}
	info, err := os.Stat(r.tracePath(id))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
		}
		return nil, err
	}
	gen := fmt.Sprintf("%d-%d", info.ModTime().UnixNano(), info.Size())
	key := id + "\x00" + gen
	if v, ok := r.traces.get(key); ok {
		return v.(*Trace), nil
	}
	v, err, _ := r.sf.Do("decode\x00"+key, func() (any, error) {
		// Double-check under the flight: a racing caller may have
		// populated the cache between our miss and the flight start.
		if v, ok := r.traces.get(key); ok {
			return v, nil
		}
		r.decodes.Add(1)
		f, err := slog2.ReadFile(r.tracePath(id))
		if err != nil {
			return nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, id, err)
		}
		tr := &Trace{ID: id, File: f, Gen: gen}
		r.traces.add(key, tr)
		return tr, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*Trace), nil
}

// Profile returns the raw profile sidecar JSON for id, or ErrNotFound.
func (r *Repo) Profile(id string) ([]byte, error) {
	if !validID(id) {
		return nil, ErrBadID
	}
	info, err := os.Stat(r.profilePath(id))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %s profile", ErrNotFound, id)
		}
		return nil, err
	}
	if info.Size() > maxProfileSidecar {
		return nil, fmt.Errorf("%w: %s profile sidecar is %d bytes", ErrCorrupt, id, info.Size())
	}
	return os.ReadFile(r.profilePath(id))
}
