package serve

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/analyze"
)

// The served verdict must byte-agree with a direct analyze.AnalyzeFile
// over the registered raw log, for all three golden traces.
func TestAnalyzeAgreesWithDirectRun(t *testing.T) {
	_, ts := newTestServer(t, goldenDir)
	for _, id := range goldenIDs {
		resp, body := get(t, ts.URL+"/trace/"+id+"/analyze", nil)
		if resp.StatusCode != 200 {
			t.Fatalf("%s: status %d: %s", id, resp.StatusCode, body)
		}
		rep, err := analyze.AnalyzeFile(filepath.Join(goldenDir, id+".clog2"), analyze.Options{})
		if err != nil {
			t.Fatal(err)
		}
		want, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(body, want) {
			t.Fatalf("%s: served verdict differs from direct analysis", id)
		}
		var parsed analyze.Report
		if err := json.Unmarshal(body, &parsed); err != nil {
			t.Fatalf("%s: served verdict is not valid JSON: %v", id, err)
		}
		if parsed.Schema != analyze.Schema {
			t.Fatalf("%s: schema %q", id, parsed.Schema)
		}
		if !parsed.Clean {
			t.Fatalf("%s: golden run reported findings: %+v", id, parsed.Findings)
		}
	}
}

// Verdicts are cached by raw-log generation: a repeat request must not
// recompute, and a matching If-None-Match must answer 304.
func TestAnalyzeCachedAndRevalidated(t *testing.T) {
	s, ts := newTestServer(t, goldenDir)
	url := ts.URL + "/trace/lab2/analyze"
	resp, _ := get(t, url, nil)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("no ETag on analyze response")
	}
	computed := s.MetricsSnapshot()["analyzes_computed"]
	if computed != 1 {
		t.Fatalf("analyzes_computed = %d after one request", computed)
	}
	resp, _ = get(t, url, nil)
	if resp.StatusCode != 200 {
		t.Fatalf("repeat status %d", resp.StatusCode)
	}
	if got := s.MetricsSnapshot()["analyzes_computed"]; got != 1 {
		t.Fatalf("analyzes_computed = %d after repeat (cache miss)", got)
	}
	resp, body := get(t, url, map[string]string{"If-None-Match": etag})
	if resp.StatusCode != 304 {
		t.Fatalf("revalidation status %d, want 304", resp.StatusCode)
	}
	if len(body) != 0 {
		t.Fatalf("304 carried %d body bytes", len(body))
	}
}

// Windowed analyze queries restrict the pass like the windowed profile.
func TestAnalyzeWindowed(t *testing.T) {
	_, ts := newTestServer(t, goldenDir)
	resp, body := get(t, ts.URL+"/trace/lab2/analyze?t0=0&t1=1e9", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var rep analyze.Report
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Window == nil || rep.Window.T0 == nil || rep.Window.T1 == nil {
		t.Fatalf("window not echoed: %+v", rep.Window)
	}
	want, err := analyze.AnalyzeFile(filepath.Join(goldenDir, "lab2.clog2"),
		analyze.Options{T0: 0, T1: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := want.JSON()
	if !bytes.Equal(body, wantJSON) {
		t.Fatal("windowed served verdict differs from direct analysis")
	}
	if resp, _ := get(t, ts.URL+"/trace/lab2/analyze?t0=nan", nil); resp.StatusCode != 400 {
		t.Fatalf("bad t0 status %d, want 400", resp.StatusCode)
	}
}

// Traces registered without a raw CLOG-2 cannot be analyzed: 404, and
// corrupt raw logs answer 422 — never a dead server.
func TestAnalyzeErrorMapping(t *testing.T) {
	dir := t.TempDir()
	good, err := os.ReadFile(filepath.Join(goldenDir, "lab2.slog2"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "noraw.slog2"), good, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "badraw.slog2"), good, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "badraw.clog2"), []byte("not a clog"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, dir)
	for _, tc := range []struct {
		path string
		want int
	}{
		{"/trace/noraw/analyze", 404},
		{"/trace/badraw/analyze", 422},
		{"/trace/missing/analyze", 404},
		{"/trace/..%2Fescape/analyze", 400},
	} {
		resp, _ := get(t, ts.URL+tc.path, nil)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.path, resp.StatusCode, tc.want)
		}
	}
}

// Repo.AnalyzeJSON validates ids and windows like every repo entry
// point.
func TestRepoAnalyzeJSON(t *testing.T) {
	repo, err := NewRepo(goldenDir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := repo.AnalyzeJSON("../evil", math.Inf(-1), math.Inf(1)); err != ErrBadID {
		t.Fatalf("bad id error %v", err)
	}
	if _, err := repo.ClogGen("../evil"); err != ErrBadID {
		t.Fatalf("ClogGen bad id error %v", err)
	}
	gen, err := repo.ClogGen("lab2")
	if err != nil || gen == "" {
		t.Fatalf("ClogGen: %q, %v", gen, err)
	}
	body, err := repo.AnalyzeJSON("lab2", math.Inf(-1), math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	var rep analyze.Report
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	// The repo layout puts the profile sidecar next to the raw log, so
	// whole-run analyses must reuse it instead of recomputing.
	if rep.ProfileSource != "sidecar" {
		t.Fatalf("profile source %q, want sidecar", rep.ProfileSource)
	}
}
